/**
 * @file
 * Cross-validation driver: runs real reduced-parameter CKKS primitives
 * (Mult, Rotate, KeySwitch, PtMatVecMult, bootstrap) under memory
 * tracing, replays each trace through a limb-granularity cache model,
 * and compares the replayed DRAM traffic against SimFHE's analytical
 * prediction. Exits nonzero when any primitive diverges beyond its
 * tolerance band, so CI can use it as a model-drift tripwire.
 *
 * With --per-opt-level the tool instead sweeps every MADFHE_STREAM
 * policy over the key-switch primitives, comparing each against the
 * analytical model at the matching Section 3.1 opt level and checking
 * that traced DRAM bytes drop monotonically off -> fuse -> cache ->
 * full.
 *
 * With --graph the tool compares the evaluation-graph executor against
 * the imperative path: the PtMatVecMult fusion pass must strictly
 * reduce traced DRAM bytes (shrinking the traced-vs-model gap) and the
 * hoisted-rotation pass must collapse N same-source rotations into one
 * Decomp+ModUp's worth of traffic.
 *
 * Usage: trace_validate [--cache-limbs N] [--policy lru|belady|infinite]
 *                       [--no-bootstrap] [--per-opt-level] [--graph]
 */
#include <cstring>
#include <iostream>
#include <string>

#include "memtrace/crossval.h"

namespace {

int
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " [--cache-limbs N] [--policy lru|belady|infinite]"
                 " [--no-bootstrap] [--per-opt-level] [--graph]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace madfhe;

    memtrace::CrossValConfig cfg;
    bool per_opt_level = false;
    bool graph_mode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache-limbs" && i + 1 < argc) {
            try {
                cfg.cache_limbs = std::stoul(argv[++i]);
            } catch (const std::exception&) {
                return usage(argv[0]);
            }
            if (cfg.cache_limbs == 0)
                return usage(argv[0]);
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "lru")
                cfg.policy = memtrace::ReplayConfig::Policy::Lru;
            else if (p == "belady")
                cfg.policy = memtrace::ReplayConfig::Policy::Belady;
            else if (p == "infinite")
                cfg.policy = memtrace::ReplayConfig::Policy::Infinite;
            else
                return usage(argv[0]);
        } else if (arg == "--no-bootstrap") {
            cfg.run_bootstrap = false;
        } else if (arg == "--per-opt-level") {
            per_opt_level = true;
        } else if (arg == "--graph") {
            graph_mode = true;
        } else {
            return usage(argv[0]);
        }
    }

    std::cout << "Cross-validating traced DRAM traffic against the SimFHE "
                 "analytical model\n"
              << "params: N = 2^" << cfg.params.log_n << ", "
              << cfg.params.chainLength() << " limbs, dnum = "
              << cfg.params.dnum << "; cache = " << cfg.cache_limbs
              << " limbs\n\n";

    if (per_opt_level) {
        memtrace::PolicySweepReport sweep = memtrace::runPolicySweep(cfg);
        std::cout << sweep.format();
        if (!sweep.allOk()) {
            std::cout << "\nFAIL: per-opt-level divergence or "
                         "non-monotone traffic\n";
            return 1;
        }
        std::cout << "\nPASS: every stream policy agrees with its model "
                     "opt level\n";
        return 0;
    }

    if (graph_mode) {
        memtrace::GraphFusionReport rep = memtrace::runGraphFusion(cfg);
        std::cout << rep.format();
        if (!rep.ok()) {
            std::cout << "\nFAIL: graph passes did not reduce traced DRAM "
                         "traffic\n";
            return 1;
        }
        std::cout << "\nPASS: graph fusion and rotation hoisting reduce "
                     "traced DRAM traffic\n";
        return 0;
    }

    memtrace::CrossValReport report = memtrace::runCrossValidation(cfg);
    std::cout << report.format();

    if (!report.allOk()) {
        std::cout << "\nFAIL: traced/analytic divergence beyond tolerance\n";
        return 1;
    }
    std::cout << "\nPASS: all primitives within tolerance\n";
    return 0;
}
