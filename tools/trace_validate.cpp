/**
 * @file
 * Cross-validation driver: runs real reduced-parameter CKKS primitives
 * (Mult, Rotate, KeySwitch, PtMatVecMult, bootstrap) under memory
 * tracing, replays each trace through a limb-granularity cache model,
 * and compares the replayed DRAM traffic against SimFHE's analytical
 * prediction. Exits nonzero when any primitive diverges beyond its
 * tolerance band, so CI can use it as a model-drift tripwire.
 *
 * Usage: trace_validate [--cache-limbs N] [--policy lru|belady|infinite]
 *                       [--no-bootstrap]
 */
#include <cstring>
#include <iostream>
#include <string>

#include "memtrace/crossval.h"

namespace {

int
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " [--cache-limbs N] [--policy lru|belady|infinite]"
                 " [--no-bootstrap]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace madfhe;

    memtrace::CrossValConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--cache-limbs" && i + 1 < argc) {
            try {
                cfg.cache_limbs = std::stoul(argv[++i]);
            } catch (const std::exception&) {
                return usage(argv[0]);
            }
            if (cfg.cache_limbs == 0)
                return usage(argv[0]);
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "lru")
                cfg.policy = memtrace::ReplayConfig::Policy::Lru;
            else if (p == "belady")
                cfg.policy = memtrace::ReplayConfig::Policy::Belady;
            else if (p == "infinite")
                cfg.policy = memtrace::ReplayConfig::Policy::Infinite;
            else
                return usage(argv[0]);
        } else if (arg == "--no-bootstrap") {
            cfg.run_bootstrap = false;
        } else {
            return usage(argv[0]);
        }
    }

    std::cout << "Cross-validating traced DRAM traffic against the SimFHE "
                 "analytical model\n"
              << "params: N = 2^" << cfg.params.log_n << ", "
              << cfg.params.chainLength() << " limbs, dnum = "
              << cfg.params.dnum << "; cache = " << cfg.cache_limbs
              << " limbs\n\n";

    memtrace::CrossValReport report = memtrace::runCrossValidation(cfg);
    std::cout << report.format();

    if (!report.allOk()) {
        std::cout << "\nFAIL: traced/analytic divergence beyond tolerance\n";
        return 1;
    }
    std::cout << "\nPASS: all primitives within tolerance\n";
    return 0;
}
