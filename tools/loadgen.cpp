/**
 * @file
 * loadgen: closed-loop (and optionally open-loop) load generator for the
 * serving runtime, designed around the virtual plaintext backend so a
 * single process can drive thousands of concurrent simulated tenants
 * through the real control plane — sessions, key-cache budgets,
 * batching, overload governor, deadlines — at plaintext speed.
 *
 * Modes:
 *   --quick    CI gate: >=1000 tenants at CkksParams::loadTest() on the
 *              virtual backend. Three phases: warmup (Encrypt+Put per
 *              tenant), hot (hoisted Rotate under a one-key cache budget
 *              -> sustained overcommit -> governor degrade 0->1->2),
 *              calm (EvalAdd rounds -> clean batches -> restore to 0).
 *              Asserts the degrade transitions, exactly-one-response
 *              per request, counter consistency, and percentile sanity.
 *   --compare  Same mixed workload (EvalMul / hoisted Rotate / MatVec)
 *              against a real-backend server and a virtual-backend
 *              server at CkksParams::unitTest(); reports the throughput
 *              ratio and gates it with --min-speedup.
 *   (default)  Configurable run: --tenants/--rounds/--workers/--mix/
 *              --backend/--zipf/--open/--deadline-ms.
 *
 * Tenant selection: round 0 of each phase covers every tenant (so
 * every session and key is touched); later rounds draw tenants from a
 * Zipf(s) popularity distribution (--zipf, default 1.1) to skew the
 * key-cache working set the way real multi-tenant traffic does.
 *
 * --out writes BENCH_serve.json (telemetry/serve_report.h): the same
 * {op, threads, ns_per_op, backend} row shape as BENCH_kernels.json,
 * plus latency percentiles and the resilience counters. In virtual
 * mode the report also carries the SimFHE-predicted cost per request
 * (model ns on the GPU design) next to the harness-measured ns.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "support/threadpool.h"
#include "telemetry/export.h"
#include "telemetry/serve_report.h"
#include "virtual/backend.h"

namespace {

using namespace madfhe;
using Clock = std::chrono::steady_clock;

struct Options
{
    size_t tenants = 16;
    size_t rounds = 4;
    size_t workers = 8;
    std::string mix = "mixed"; // mult|rotate|matvec|boot|add|mixed
    BackendKind backend = BackendKind::Virtual;
    double zipf = 1.1;
    double open_rate = 0.0; // req/s across all workers; 0 = closed loop
    u64 deadline_ms = 0;
    std::string out;
    double min_speedup = 0.0;
    bool quick = false;
    bool compare = false;
    u64 seed = 42;
};

double
wallNs(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/** Zipf(s) sampler over ranks [0, n): precomputed CDF + binary search. */
class ZipfSampler
{
  public:
    ZipfSampler(size_t n, double s)
    {
        cdf.reserve(n);
        double total = 0;
        for (size_t r = 0; r < n; ++r) {
            total += 1.0 / std::pow(static_cast<double>(r + 1), s);
            cdf.push_back(total);
        }
        for (double& c : cdf)
            c /= total;
    }

    size_t
    sample(std::mt19937_64& rng) const
    {
        const double u =
            std::uniform_real_distribution<double>(0.0, 1.0)(rng);
        return static_cast<size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    }

  private:
    std::vector<double> cdf;
};

struct Tenant
{
    u64 id = 0;
    Ciphertext ct; ///< backend-native operand obtained via Op::Encrypt
};

/** Per-run bookkeeping shared by the worker threads. */
struct RunStats
{
    std::atomic<u64> submitted{0};
    std::atomic<u64> ok{0};
    std::atomic<u64> errors{0};
    std::atomic<u64> response_id_mismatches{0};
    std::atomic<u64> duplicate_responses{0};
    std::mutex mu;
    std::map<std::string, u64> error_kinds; ///< guarded by mu
    /** responses per request id — the "exactly one terminal answer"
     *  invariant (a request must never be both shed and answered). */
    std::map<u64, u32> per_id; ///< guarded by mu
};

class Harness
{
  public:
    Harness(const CkksParams& params, const Options& opt,
            BackendKind backend, bool starve_cache)
        : opt_(opt)
    {
        ctx = std::make_shared<CkksContext>(params);
        KeyGenerator sizing_keygen(ctx);
        SecretKey sizing_sk = sizing_keygen.secretKey();
        serve::ServerOptions sopts;
        sopts.backend = backend;
        if (starve_cache) {
            // One expanded key of budget while hoisted rotations pin
            // two per tenant: permanent overcommit -> degradation.
            sopts.keycache_bytes = sizing_keygen.relinKey(sizing_sk).aBytes();
        }
        server = std::make_unique<serve::Server>(ctx, sopts);

        // A shared diagonal transform every tenant's MatVec references.
        std::map<int, std::vector<std::complex<double>>> diags;
        diags[0].assign(ctx->slots(), {0.5, 0.0});
        diags[1].assign(ctx->slots(), {0.25, 0.0});
        server->registerTransform(
            "layer", LinearTransform(ctx, std::move(diags), ctx->scale()));

        // Register tenants; keygen fans out across workers (one
        // KeyGenerator per thread — the generator is stateful).
        tenants.resize(opt.tenants);
        std::vector<serve::TenantKeys> keysets(opt.tenants);
        const size_t kg_workers =
            std::min<size_t>(std::max<size_t>(opt.workers, 1), opt.tenants);
        std::vector<std::thread> kg;
        for (size_t w = 0; w < kg_workers; ++w) {
            kg.emplace_back([&, w] {
                KeyGenerator keygen(ctx);
                for (size_t i = w; i < opt.tenants; i += kg_workers) {
                    SecretKey sk = keygen.secretKey();
                    serve::TenantKeys keys;
                    keys.pk = keygen.publicKey(sk);
                    keys.rlk = keygen.relinKey(sk);
                    keys.gks = keygen.galoisKeys(sk, {1, 2});
                    keys.sk = std::move(sk);
                    keysets[i] = std::move(keys);
                }
            });
        }
        for (auto& t : kg)
            t.join();
        for (size_t i = 0; i < opt.tenants; ++i)
            tenants[i].id = server->addTenant(std::move(keysets[i]));
    }

    /** Build one request of the given workload op for tenant `t`. */
    serve::Request
    makeRequest(const std::string& op, Tenant& t, std::mt19937_64& rng)
    {
        serve::Request req;
        req.tenant = t.id;
        req.id = next_id.fetch_add(1, std::memory_order_relaxed);
        if (opt_.deadline_ms > 0) {
            // Spread deadlines over [D, 3D): a distribution, not a wall.
            req.deadline_ms =
                opt_.deadline_ms + rng() % (2 * opt_.deadline_ms);
        }
        if (op == "mult") {
            req.op = serve::Op::EvalMul;
            req.cts = {t.ct, t.ct};
        } else if (op == "rotate") {
            req.op = serve::Op::Rotate;
            req.steps = {1, 2}; // hoisted pair: pins two Galois keys
            req.cts = {t.ct};
        } else if (op == "matvec") {
            req.op = serve::Op::MatVec;
            req.name = "layer";
            req.cts = {t.ct};
        } else if (op == "boot") {
            req.op = serve::Op::Bootstrap;
            req.cts = {t.ct};
        } else if (op == "add") {
            req.op = serve::Op::EvalAdd;
            req.cts = {t.ct, t.ct};
        } else {
            throw UserError("unknown workload op '" + op + "'");
        }
        return req;
    }

    /** The op cycle a mix expands to (boot only on the virtual path). */
    std::vector<std::string>
    mixOps(const std::string& mix, bool allow_boot) const
    {
        if (mix == "mixed") {
            std::vector<std::string> ops = {"mult", "rotate", "add",
                                            "matvec"};
            if (allow_boot)
                ops.push_back("boot");
            return ops;
        }
        return {mix};
    }

    void
    record(RunStats& stats, const serve::Response& resp, u64 expect_id)
    {
        if (resp.ok)
            stats.ok.fetch_add(1, std::memory_order_relaxed);
        else
            stats.errors.fetch_add(1, std::memory_order_relaxed);
        if (resp.id != expect_id && !(resp.id == 0 && !resp.ok))
            stats.response_id_mismatches.fetch_add(
                1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(stats.mu);
        if (!resp.ok)
            ++stats.error_kinds[resp.error];
        if (++stats.per_id[expect_id] > 1)
            stats.duplicate_responses.fetch_add(1,
                                                std::memory_order_relaxed);
    }

    /**
     * Run `rounds` rounds of `ops` over the tenant population with
     * `workers` client threads and return measured wall ns/request.
     * Round 0 covers every tenant in order; later rounds draw from the
     * Zipf popularity distribution. Closed loop: each worker keeps one
     * request outstanding. Open loop (open_rate > 0): workers pace
     * submissions by exponential inter-arrival gaps and collect the
     * futures at round end.
     */
    double
    runPhase(const std::string& label, const std::vector<std::string>& ops,
             size_t rounds, RunStats& stats)
    {
        const size_t workers = std::max<size_t>(opt_.workers, 1);
        const ZipfSampler zipf(opt_.tenants, opt_.zipf);
        const auto t0 = Clock::now();
        u64 phase_reqs = 0;
        std::vector<std::thread> threads;
        std::atomic<u64> reqs{0};
        for (size_t w = 0; w < workers; ++w) {
            threads.emplace_back([&, w] {
                std::mt19937_64 rng(opt_.seed * 7919 + w);
                std::exponential_distribution<double> gap(
                    opt_.open_rate / static_cast<double>(workers));
                std::vector<std::pair<u64, std::future<serve::Response>>>
                    open_futures;
                for (size_t r = 0; r < rounds; ++r) {
                    for (size_t i = w; i < opt_.tenants; i += workers) {
                        const size_t pick =
                            r == 0 ? i : zipf.sample(rng);
                        Tenant& t = tenants[pick];
                        serve::Request req = makeRequest(
                            ops[(r + i) % ops.size()], t, rng);
                        const u64 id = req.id;
                        stats.submitted.fetch_add(
                            1, std::memory_order_relaxed);
                        reqs.fetch_add(1, std::memory_order_relaxed);
                        auto fut = server->submit(std::move(req));
                        if (opt_.open_rate > 0) {
                            open_futures.emplace_back(id, std::move(fut));
                            std::this_thread::sleep_for(
                                std::chrono::duration<double>(gap(rng)));
                        } else {
                            record(stats, fut.get(), id);
                        }
                    }
                }
                for (auto& [id, fut] : open_futures)
                    record(stats, fut.get(), id);
            });
        }
        for (auto& t : threads)
            t.join();
        server->drain();
        phase_reqs = reqs.load();
        const double ns =
            phase_reqs ? wallNs(t0, Clock::now()) /
                             static_cast<double>(phase_reqs)
                       : 0.0;
        std::cout << "  phase " << label << ": " << phase_reqs
                  << " requests, " << std::fixed << ns / 1000.0
                  << " us/req (" << (ns > 0 ? 1e9 / ns : 0.0) << " req/s)\n"
                  << std::defaultfloat;
        return ns;
    }

    /** Warmup: server-side Encrypt per tenant (the only way to obtain a
     *  backend-native operand), then Put it under "x". */
    double
    warmup(RunStats& stats)
    {
        const size_t workers = std::max<size_t>(opt_.workers, 1);
        const auto t0 = Clock::now();
        std::vector<std::thread> threads;
        for (size_t w = 0; w < workers; ++w) {
            threads.emplace_back([&, w] {
                for (size_t i = w; i < opt_.tenants; i += workers) {
                    Tenant& t = tenants[i];
                    serve::Request enc;
                    enc.tenant = t.id;
                    enc.id = next_id.fetch_add(1);
                    enc.op = serve::Op::Encrypt;
                    enc.values.resize(ctx->slots());
                    for (size_t k = 0; k < enc.values.size(); ++k)
                        enc.values[k] =
                            0.001 * static_cast<double>(k % 97) +
                            0.001 * static_cast<double>(i % 101);
                    const u64 enc_id = enc.id;
                    stats.submitted.fetch_add(1);
                    serve::Response r =
                        server->submit(std::move(enc)).get();
                    record(stats, r, enc_id);
                    if (r.ok && r.cts.size() == 1)
                        t.ct = r.cts[0];

                    serve::Request put;
                    put.tenant = t.id;
                    put.id = next_id.fetch_add(1);
                    put.op = serve::Op::Put;
                    put.name = "x";
                    put.cts = {t.ct};
                    const u64 put_id = put.id;
                    stats.submitted.fetch_add(1);
                    record(stats, server->submit(std::move(put)).get(),
                           put_id);
                }
            });
        }
        for (auto& t : threads)
            t.join();
        server->drain();
        const double ns = wallNs(t0, Clock::now()) /
                          static_cast<double>(2 * opt_.tenants);
        std::cout << "  phase warmup: " << 2 * opt_.tenants
                  << " requests, " << ns / 1000.0 << " us/req\n";
        return ns;
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<serve::Server> server;
    std::vector<Tenant> tenants;
    std::atomic<u64> next_id{1};
    Options opt_;
};

/** Predicted model-cost summary of a virtual-backend server. */
struct PredictedCost
{
    bool available = false;
    u64 ops = 0;
    double total_model_ns = 0; ///< modeled on the GPU roofline design
};

PredictedCost
predictedCost(const serve::Server& server)
{
    PredictedCost p;
    const auto* vb = dynamic_cast<const vbackend::VirtualBackend*>(
        &server.backend());
    if (!vb)
        return p;
    p.available = true;
    p.ops = vb->chargedOps();
    p.total_model_ns = simfhe::OpCostQuery::modelNs(
        simfhe::HardwareDesign::gpu(), vb->chargedCost());
    return p;
}

u64
counterValue(const telemetry::Snapshot& snap, const std::string& name)
{
    for (const auto& row : snap.counters)
        if (row.name == name)
            return row.value;
    return 0;
}

/** Shared post-run invariant checks; returns the number of failures. */
int
checkInvariants(const RunStats& stats, const telemetry::Snapshot& snap,
                bool require_all_ok)
{
    int failures = 0;
    auto fail = [&](const std::string& msg) {
        std::cerr << "FAIL: " << msg << "\n";
        ++failures;
    };

    const u64 submitted = stats.submitted.load();
    const u64 answered = stats.ok.load() + stats.errors.load();
    if (answered != submitted)
        fail("answered " + std::to_string(answered) + " != submitted " +
             std::to_string(submitted));
    if (stats.duplicate_responses.load() != 0)
        fail(std::to_string(stats.duplicate_responses.load()) +
             " requests answered more than once (shed+answered?)");
    if (stats.response_id_mismatches.load() != 0)
        fail(std::to_string(stats.response_id_mismatches.load()) +
             " responses carried the wrong request id");
    for (const auto& [id, n] : stats.per_id)
        if (n != 1) {
            fail("request " + std::to_string(id) + " resolved " +
                 std::to_string(n) + " times");
            break;
        }
    if (counterValue(snap, "serve.requests") != submitted)
        fail("serve.requests counter " +
             std::to_string(counterValue(snap, "serve.requests")) +
             " != submitted " + std::to_string(submitted));
    if (require_all_ok && stats.errors.load() != 0)
        fail(std::to_string(stats.errors.load()) + " requests failed");

    for (const auto& row : snap.histograms) {
        if (row.name != "serve.latency_ns")
            continue;
        const u64 p50 = row.stats.quantileBound(0.50);
        const u64 p95 = row.stats.quantileBound(0.95);
        const u64 p99 = row.stats.quantileBound(0.99);
        if (!(p50 <= p95 && p95 <= p99))
            fail("latency percentiles not monotone: p50 " +
                 std::to_string(p50) + ", p95 " + std::to_string(p95) +
                 ", p99 " + std::to_string(p99));
    }
    return failures;
}

void
printResilience(const telemetry::Snapshot& snap)
{
    std::cout << "  resilience: shed "
              << counterValue(snap, "serve.shed") << ", retries "
              << counterValue(snap, "serve.retry") << ", breaker "
              << counterValue(snap, "serve.breaker_open") << ", stepdowns "
              << counterValue(snap, "serve.degrade.stepdown")
              << ", restores "
              << counterValue(snap, "serve.degrade.restore") << "\n";
    for (const auto& row : snap.histograms)
        if (row.name == "serve.latency_ns")
            std::cout << "  latency: p50 <= "
                      << row.stats.quantileBound(0.5) / 1000
                      << " us, p95 <= "
                      << row.stats.quantileBound(0.95) / 1000
                      << " us, p99 <= "
                      << row.stats.quantileBound(0.99) / 1000
                      << " us over " << row.stats.count << " requests\n";
}

bool
writeReport(const Options& opt, const std::string& bench,
            const CkksParams& params,
            std::vector<std::pair<std::string, std::string>> extra,
            const std::vector<telemetry::ServeBenchRow>& rows,
            const telemetry::Snapshot& snap)
{
    if (opt.out.empty())
        return true;
    std::vector<std::pair<std::string, std::string>> p = {
        {"log_n", std::to_string(static_cast<size_t>(params.log_n))},
        {"num_levels", std::to_string(static_cast<size_t>(params.num_levels))},
        {"tenants", std::to_string(opt.tenants)},
        {"workers", std::to_string(opt.workers)},
        {"mix", "\"" + opt.mix + "\""},
        {"zipf", std::to_string(opt.zipf)},
    };
    for (auto& kv : extra)
        p.push_back(std::move(kv));
    if (!telemetry::writeServeBenchJson(opt.out, bench, p, rows, snap)) {
        std::cerr << "FAIL: could not write " << opt.out << "\n";
        return false;
    }
    std::cout << "wrote " << opt.out << "\n";
    return true;
}

/** --quick: the CI load-smoke gate (see file header). */
int
runQuick(Options opt)
{
    if (opt.tenants < 1000)
        opt.tenants = 1000;
    opt.backend = BackendKind::Virtual;
    std::cout << "loadgen --quick: " << opt.tenants
              << " virtual tenants, " << opt.workers << " workers\n";

    const CkksParams params = CkksParams::loadTest();
    Harness h(params, opt, BackendKind::Virtual, /*starve_cache=*/true);
    RunStats stats;

    const double warm_ns = h.warmup(stats);
    // Hot phase: hoisted rotations pin two Galois keys per tenant into
    // a one-key budget — every batch overcommits, the governor must
    // step 0 -> 1 -> 2.
    const double hot_ns =
        h.runPhase("rotate_overcommit", {"rotate"},
                   std::max<size_t>(opt.rounds / 2, 2), stats);
    // Calm phase: EvalAdd pins no keys — pressure-free batches must
    // step the level back up to 0.
    const double calm_ns = h.runPhase(
        "evaladd_calm", {"add"}, std::max<size_t>(opt.rounds / 2, 2),
        stats);

    const telemetry::Snapshot snap = telemetry::snapshot();
    int failures = checkInvariants(stats, snap, /*require_all_ok=*/true);
    auto fail = [&](const std::string& msg) {
        std::cerr << "FAIL: " << msg << "\n";
        ++failures;
    };
    if (counterValue(snap, "serve.degrade.stepdown") < 2)
        fail("expected >=2 degrade stepdowns (0->1->2) under overcommit, "
             "saw " +
             std::to_string(counterValue(snap, "serve.degrade.stepdown")));
    if (counterValue(snap, "serve.degrade.restore") < 2)
        fail("expected >=2 degrade restores after the calm phase, saw " +
             std::to_string(counterValue(snap, "serve.degrade.restore")));
    long long level = -1;
    for (const auto& row : snap.gauges)
        if (row.name == "serve.degrade_level")
            level = row.value;
    if (level != 0)
        fail("degrade level did not restore to 0 (gauge reads " +
             std::to_string(level) + ")");
    if (h.server->keyCacheStats().overcommits == 0)
        fail("hot phase never overcommitted the key cache — the run is "
             "not exercising degradation");
    printResilience(snap);

    const PredictedCost pred = predictedCost(*h.server);
    if (pred.available && pred.ops > 0)
        std::cout << "  model: " << pred.ops
                  << " primitive ops charged, predicted "
                  << pred.total_model_ns / static_cast<double>(pred.ops) /
                         1000.0
                  << " us/op on the GPU design\n";

    std::vector<telemetry::ServeBenchRow> rows = {
        {"warmup_encrypt_put", opt.workers, warm_ns, "virtual"},
        {"rotate_hoisted_overcommit", opt.workers, hot_ns, "virtual"},
        {"evaladd_calm", opt.workers, calm_ns, "virtual"},
    };
    std::vector<std::pair<std::string, std::string>> extra = {
        {"backend", "\"virtual\""},
        {"mode", "\"quick\""},
    };
    if (pred.available && pred.ops > 0)
        extra.push_back(
            {"predicted_gpu_ns_per_op",
             std::to_string(pred.total_model_ns /
                            static_cast<double>(pred.ops))});
    if (!writeReport(opt, "loadgen", params, std::move(extra), rows, snap))
        ++failures;

    std::cout << (failures == 0 ? "OK: loadgen quick gate passed\n"
                                : "loadgen quick gate FAILED\n");
    return failures == 0 ? 0 : 1;
}

/** --compare: real-vs-virtual throughput on the same mix. */
int
runCompare(Options opt)
{
    // Real keygen dominates setup at N = 2^13; four tenants keeps that
    // bounded while still batching requests, and enough rounds
    // amortizes the one-time key-cache expansions into a stable
    // per-request number for both sides. The ring is one notch above
    // medium() because real evaluator work scales ~ N * L * log N while
    // the virtual carrier scales ~ N: a larger ring measures the
    // backend gap, not the serving fixed costs.
    if (opt.tenants > 4)
        opt.tenants = 4;
    if (opt.rounds < 30)
        opt.rounds = 30;
    if (opt.mix == "mixed")
        opt.mix = "compare"; // mult/rotate/matvec — the heavy real ops
    const std::vector<std::string> ops = {"mult", "rotate", "matvec"};
    CkksParams params = CkksParams::medium();
    params.log_n = 13;

    auto measure = [&](BackendKind kind) {
        telemetry::resetAll();
        Harness h(params, opt, kind, /*starve_cache=*/false);
        RunStats stats;
        h.warmup(stats);
        // Prime: run every op once per tenant so the switching-key
        // expansions (a one-time cache fill, identical for both
        // backends) happen outside the measured window and the phase
        // below compares steady-state throughput.
        {
            std::mt19937_64 rng(opt.seed);
            for (Tenant& t : h.tenants)
                for (const std::string& op : ops) {
                    serve::Request req = h.makeRequest(op, t, rng);
                    const u64 id = req.id;
                    stats.submitted.fetch_add(1);
                    h.record(stats, h.server->submit(std::move(req)).get(),
                             id);
                }
        }
        const double ns = h.runPhase(backendKindName(kind), ops,
                                     opt.rounds, stats);
        const telemetry::Snapshot snap = telemetry::snapshot();
        int failures = checkInvariants(stats, snap, /*require_all_ok=*/true);
        return std::make_tuple(ns, failures, snap, predictedCost(*h.server));
    };

    std::cout << "loadgen --compare: " << opt.tenants << " tenants x "
              << opt.rounds << " rounds (mult/rotate/matvec)\n";
    auto [real_ns, real_fail, real_snap, real_pred] =
        measure(BackendKind::Real);
    auto [virt_ns, virt_fail, virt_snap, virt_pred] =
        measure(BackendKind::Virtual);
    (void)real_pred;

    int failures = real_fail + virt_fail;
    const double speedup = virt_ns > 0 ? real_ns / virt_ns : 0.0;
    std::cout << "  real: " << real_ns / 1000.0 << " us/req, virtual: "
              << virt_ns / 1000.0 << " us/req -> speedup "
              << std::fixed << speedup << "x\n"
              << std::defaultfloat;
    if (virt_pred.available && virt_pred.ops > 0)
        std::cout << "  virtual charged " << virt_pred.ops
                  << " primitive ops, predicted "
                  << virt_pred.total_model_ns /
                         static_cast<double>(virt_pred.ops) / 1000.0
                  << " us/op on the GPU design\n";
    if (opt.min_speedup > 0 && speedup < opt.min_speedup) {
        std::cerr << "FAIL: virtual speedup " << speedup << "x < required "
                  << opt.min_speedup << "x\n";
        ++failures;
    }

    std::vector<telemetry::ServeBenchRow> rows = {
        {"compare_mix", opt.workers, real_ns, "real"},
        {"compare_mix", opt.workers, virt_ns, "virtual"},
    };
    std::vector<std::pair<std::string, std::string>> extra = {
        {"mode", "\"compare\""},
        {"speedup", std::to_string(speedup)},
    };
    // The snapshot in the artifact is the virtual run's (metrics were
    // reset between runs; the real run's numbers are in its row).
    if (!writeReport(opt, "loadgen", params, std::move(extra), rows,
                     virt_snap))
        ++failures;

    std::cout << (failures == 0 ? "OK: loadgen compare passed\n"
                                : "loadgen compare FAILED\n");
    return failures == 0 ? 0 : 1;
}

int
runCustom(const Options& opt)
{
    const CkksParams params = opt.backend == BackendKind::Virtual
                                  ? CkksParams::loadTest()
                                  : CkksParams::unitTest();
    std::cout << "loadgen: " << opt.tenants << " tenants x " << opt.rounds
              << " rounds, mix " << opt.mix << ", backend "
              << backendKindName(opt.backend)
              << (opt.open_rate > 0 ? ", open loop" : ", closed loop")
              << "\n";
    Harness h(params, opt, opt.backend, /*starve_cache=*/false);
    RunStats stats;
    const double warm_ns = h.warmup(stats);
    const bool allow_boot = opt.backend == BackendKind::Virtual;
    const double ns = h.runPhase(
        opt.mix, h.mixOps(opt.mix, allow_boot), opt.rounds, stats);
    const telemetry::Snapshot snap = telemetry::snapshot();
    // Deadlines / open-loop overload may legitimately fail requests;
    // only the accounting invariants are hard.
    int failures = checkInvariants(stats, snap, /*require_all_ok=*/false);
    printResilience(snap);
    if (!stats.error_kinds.empty()) {
        std::cout << "  error kinds:\n";
        std::lock_guard<std::mutex> lock(stats.mu);
        for (const auto& [msg, n] : stats.error_kinds)
            std::cout << "    " << n << "x " << msg << "\n";
    }
    const PredictedCost pred = predictedCost(*h.server);
    std::vector<telemetry::ServeBenchRow> rows = {
        {"warmup_encrypt_put", opt.workers, warm_ns,
         backendKindName(opt.backend)},
        {opt.mix, opt.workers, ns, backendKindName(opt.backend)},
    };
    std::vector<std::pair<std::string, std::string>> extra = {
        {"backend",
         "\"" + std::string(backendKindName(opt.backend)) + "\""},
        {"mode", "\"custom\""},
    };
    if (pred.available && pred.ops > 0)
        extra.push_back(
            {"predicted_gpu_ns_per_op",
             std::to_string(pred.total_model_ns /
                            static_cast<double>(pred.ops))});
    if (!writeReport(opt, "loadgen", params, std::move(extra), rows, snap))
        ++failures;
    std::cout << (failures == 0 ? "OK: loadgen run passed\n"
                                : "loadgen run FAILED\n");
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << argv[i] << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--quick") == 0) {
            opt.quick = true;
        } else if (std::strcmp(argv[i], "--compare") == 0) {
            opt.compare = true;
        } else if (std::strcmp(argv[i], "--tenants") == 0) {
            opt.tenants = static_cast<size_t>(std::atol(next()));
        } else if (std::strcmp(argv[i], "--rounds") == 0) {
            opt.rounds = static_cast<size_t>(std::atol(next()));
        } else if (std::strcmp(argv[i], "--workers") == 0) {
            opt.workers = static_cast<size_t>(std::atol(next()));
        } else if (std::strcmp(argv[i], "--mix") == 0) {
            opt.mix = next();
        } else if (std::strcmp(argv[i], "--backend") == 0) {
            const std::string b = next();
            if (b == "real")
                opt.backend = BackendKind::Real;
            else if (b == "virtual")
                opt.backend = BackendKind::Virtual;
            else {
                std::cerr << "--backend must be real or virtual\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--zipf") == 0) {
            opt.zipf = std::atof(next());
        } else if (std::strcmp(argv[i], "--open") == 0) {
            opt.open_rate = std::atof(next());
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0) {
            opt.deadline_ms = static_cast<u64>(std::atoll(next()));
        } else if (std::strcmp(argv[i], "--out") == 0) {
            opt.out = next();
        } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
            opt.min_speedup = std::atof(next());
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            opt.seed = static_cast<u64>(std::atoll(next()));
        } else {
            std::cerr
                << "usage: loadgen [--quick | --compare] [--tenants N] "
                   "[--rounds N] [--workers N]\n"
                   "               [--mix mult|rotate|matvec|boot|add|mixed] "
                   "[--backend real|virtual]\n"
                   "               [--zipf S] [--open RATE] "
                   "[--deadline-ms D] [--out PATH]\n"
                   "               [--min-speedup X] [--seed S]\n";
            return 2;
        }
    }

    ThreadPool::setGlobalThreads(2);
    telemetry::setLevel(telemetry::Level::Counters);

    try {
        if (opt.quick)
            return runQuick(opt);
        if (opt.compare)
            return runCompare(opt);
        return runCustom(opt);
    } catch (const MadError& e) {
        std::cerr << "loadgen FAILED: " << e.message() << "\n";
        return 1;
    } catch (const std::exception& e) {
        std::cerr << "loadgen FAILED: " << e.what() << "\n";
        return 1;
    }
}
