/**
 * @file
 * Fault-injection campaign: sweeps every registered injection site ×
 * every applicable fault kind over Mult / Rotate / serialize round-trip
 * / bootstrap workloads, with runtime integrity checks enabled, and
 * verifies that no injected fault escapes undetected.
 *
 * Outcomes per (site, kind):
 *   DETECTED  an exception fired (FaultDetectedError, CorruptStreamError,
 *             InjectedFault, bad_alloc, ...) — the fault was caught
 *   MASKED    the fault fired but the workload result is byte-identical
 *             to the clean run (overwritten before it could matter)
 *   SILENT    the result differs from the clean run and nothing fired —
 *             silent corruption; the campaign fails
 *   UNREACHED no workload drives this site (fails outside --quick)
 *
 * Usage: fault_campaign [--quick] [--list] [serve-chaos]
 *   --quick  skip the bootstrap workload (CI mode; boot.modraise is
 *            reported as skipped rather than unreached)
 *   --list   print the site registry and exit
 *
 * The `serve-chaos` mode runs an overload/fault campaign against the
 * serving runtime instead of the site sweep: hostile TCP clients
 * (mid-frame kills, corrupt length prefixes, stalled and slow-trickle
 * writers), injected decode/key-expansion faults under server-side
 * retry, key-cache starvation driving graceful degradation, and forced
 * circuit-breaker trips. It asserts zero silent corruptions (every
 * success is byte-identical to the clean reference), typed errors for
 * every failure, and no stuck key leases after any phase.
 */
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "boot/bootstrapper.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "ckks/stream.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "support/faultinject.h"
#include "support/random.h"
#include "support/threadpool.h"
#include "telemetry/telemetry.h"

namespace {

using namespace madfhe;

/** Small end-to-end CKKS setup shared by the workloads. */
struct Setup
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    SecretKey sk;
    PublicKey pk;
    SwitchingKey rlk;
    GaloisKeys gks;
    std::unique_ptr<Encryptor> encryptor;
    std::unique_ptr<Evaluator> eval;
    Ciphertext ct_a, ct_b;

    explicit Setup(const CkksParams& params, const std::vector<int>& steps,
                   bool conj)
    {
        ctx = std::make_shared<CkksContext>(params);
        encoder = std::make_unique<CkksEncoder>(ctx);
        KeyGenerator keygen(ctx);
        sk = keygen.secretKey();
        pk = keygen.publicKey(sk);
        rlk = keygen.relinKey(sk);
        gks = keygen.galoisKeys(sk, steps, conj);
        encryptor = std::make_unique<Encryptor>(ctx, pk);
        eval = std::make_unique<Evaluator>(ctx);
        ct_a = encryptSeeded(1, ctx->maxLevel());
        ct_b = encryptSeeded(2, ctx->maxLevel());
    }

    Ciphertext
    encryptSeeded(u64 seed, size_t level)
    {
        Prng rng(seed);
        std::vector<std::complex<double>> v(ctx->slots());
        for (auto& z : v)
            z = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
        return encryptor->encrypt(encoder->encode(v, ctx->scale(), level));
    }
};

/** Result fingerprint: raw limb data + scale of a ciphertext. */
std::string
fingerprint(const Ciphertext& ct)
{
    std::string out;
    for (const RnsPoly* p : {&ct.c0, &ct.c1}) {
        for (size_t i = 0; i < p->numLimbs(); ++i)
            out.append(reinterpret_cast<const char*>(p->limb(i)),
                       p->degree() * sizeof(u64));
    }
    out.append(reinterpret_cast<const char*>(&ct.scale), sizeof(ct.scale));
    return out;
}

struct Workload
{
    const char* name;
    std::function<std::string()> run;
};

struct Outcome
{
    std::string site;
    std::string kind;
    std::string workload;
    std::string result; // DETECTED(<type>) / MASKED / SILENT / SKIPPED
    bool silent = false;
};

std::string
runCatching(const Workload& w, std::string& caught)
{
    try {
        return w.run();
    } catch (const FaultDetectedError&) {
        caught = "FaultDetectedError";
    } catch (const CorruptStreamError&) {
        caught = "CorruptStreamError";
    } catch (const faultinject::InjectedFault&) {
        caught = "InjectedFault";
    } catch (const std::bad_alloc&) {
        caught = "bad_alloc";
    } catch (const std::exception& e) {
        caught = std::string("exception(") + typeid(e).name() + ")";
    }
    return {};
}

// --- serve-chaos ----------------------------------------------------------

int g_chaos_failures = 0;

void
chaosCheck(bool ok, const std::string& what)
{
    if (ok) {
        std::cout << "  ok: " << what << "\n";
    } else {
        std::cerr << "  CHAOS FAIL: " << what << "\n";
        ++g_chaos_failures;
    }
}

std::string
fingerprintAll(const std::vector<Ciphertext>& cts)
{
    std::string out;
    for (const Ciphertext& ct : cts)
        out += fingerprint(ct);
    return out;
}

int
rawConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
rawSend(int fd, const void* data, size_t n)
{
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w <= 0)
            return false;
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
rawRecv(int fd, void* dst, size_t n)
{
    char* p = static_cast<char*>(dst);
    while (n > 0) {
        const ssize_t r = ::recv(fd, p, n, 0);
        if (r <= 0)
            return false;
        p += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

u64
chaosCounter(const char* name)
{
    return telemetry::counter(name).value();
}

/**
 * Overload/fault campaign against the serving runtime. Returns the
 * process exit code (0 = every check passed).
 */
int
runServeChaos(const CkksParams& params, bool quick)
{
    // Aggressive socket timeouts so stalled clients are reaped quickly;
    // applied to every connection the front end accepts below.
    ::setenv("MADFHE_TCP_TIMEOUT_MS", "250", 1);
    // The campaign asserts on serve.* counters.
    telemetry::setLevel(telemetry::Level::Counters);

    const std::vector<int> steps{1, 2};
    Setup base(params, steps, /*conj=*/false);

    // Clean references: every chaos-phase success must be byte-identical
    // to these (retries and degraded stream policies included).
    const std::string ref_mul =
        fingerprint(base.eval->mul(base.ct_a, base.ct_b, base.rlk));
    const std::string ref_rot =
        fingerprintAll(base.eval->rotateHoisted(base.ct_a, steps, base.gks));

    // Resilient server: one-key cache budget (hoisted rotations *must*
    // overcommit), bounded retry, degradation on, breaker off.
    serve::ServerOptions opts;
    opts.keycache_bytes = base.rlk.aBytes();
    resilience::RetryPolicy retry;
    retry.max_attempts = 3;
    retry.base_backoff_ns = 200'000; // 0.2 ms: fast runs, real backoff
    opts.retry = retry;
    serve::Server server(base.ctx, opts);
    serve::TenantKeys keys;
    keys.pk = base.pk;
    keys.rlk = base.rlk;
    keys.gks = base.gks;
    const u64 tenant = server.addTenant(std::move(keys));
    serve::TcpFrontEnd tcp(server, 0);

    u64 rid = 1;
    auto makeMul = [&] {
        serve::Request m;
        m.tenant = tenant;
        m.id = rid++;
        m.op = serve::Op::EvalMul;
        m.cts = {base.ct_a, base.ct_b};
        m.deadline_ms = 30'000; // generous: exercises propagation only
        return m;
    };
    auto noStuckLeases = [&](serve::Server& s, const char* when) {
        s.drain();
        // Responses are fulfilled before the executing batch releases
        // its leases, so allow the dispatcher a moment to unwind; a
        // *stuck* lease is one that persists.
        size_t pinned = 0;
        for (int spin = 0; spin < 400; ++spin) {
            pinned = s.keyCacheStats().pinned_entries;
            if (pinned == 0)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        chaosCheck(pinned == 0, std::string("no stuck key leases ") + when);
    };

    // --- phase 1: hostile TCP clients ------------------------------------
    std::cout << "phase 1: hostile clients (mid-frame kills, corrupt "
                 "prefixes, stalls, slow writers)\n";
    const int kills = quick ? 4 : 16;
    for (int k = 0; k < kills; ++k) {
        const int fd = rawConnect(tcp.port());
        if (fd < 0)
            continue;
        const u64 promise = 4096; // die after 16 of 4096 promised bytes
        rawSend(fd, &promise, sizeof(promise));
        const char junk[16] = {};
        rawSend(fd, junk, sizeof(junk));
        ::close(fd);
    }
    {
        const int fd = rawConnect(tcp.port());
        if (fd >= 0) {
            const u64 hostile = ~u64{0}; // must be rejected pre-allocation
            rawSend(fd, &hostile, sizeof(hostile));
            ::close(fd);
        }
    }
    {
        // Stalled mid-frame: promises bytes, then goes silent past the
        // socket timeout. The receive timeout must reap it.
        const int fd = rawConnect(tcp.port());
        if (fd >= 0) {
            const u64 promise = 64;
            rawSend(fd, &promise, sizeof(promise));
            std::this_thread::sleep_for(std::chrono::milliseconds(400));
            ::close(fd);
        }
    }
    {
        // Slow but live writer: trickles a whole valid frame in small
        // chunks, each within the timeout — must still be served.
        const std::string frame = serve::encodeRequest(makeMul());
        const int fd = rawConnect(tcp.port());
        bool ok = fd >= 0;
        if (ok) {
            const u64 len = frame.size();
            ok = rawSend(fd, &len, sizeof(len));
            for (size_t off = 0; ok && off < frame.size(); off += 4096) {
                const size_t n = std::min<size_t>(4096, frame.size() - off);
                ok = rawSend(fd, frame.data() + off, n);
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
            u64 resp_len = 0;
            ok = ok && rawRecv(fd, &resp_len, sizeof(resp_len));
            std::string resp_bytes(resp_len, '\0');
            ok = ok && rawRecv(fd, resp_bytes.data(), resp_bytes.size());
            if (ok) {
                const serve::Response resp =
                    serve::decodeResponse(resp_bytes, base.ctx->ring());
                ok = resp.ok && fingerprintAll(resp.cts) == ref_mul;
            }
            ::close(fd);
        }
        chaosCheck(ok, "slow-trickle client served byte-identically");
    }
    for (int spin = 0; spin < 400 && tcp.liveConnections() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    chaosCheck(tcp.liveConnections() == 0,
               "all hostile connections reaped (no leaks)");
    chaosCheck(chaosCounter("serve.tcp.midframe_drops") > 0,
               "mid-frame drops were detected and counted");
    {
        const serve::Response resp = serve::decodeResponse(
            serve::tcpRequest("127.0.0.1", tcp.port(),
                              serve::encodeRequest(makeMul())),
            base.ctx->ring());
        chaosCheck(resp.ok && fingerprintAll(resp.cts) == ref_mul,
                   "front end still serves byte-identically after abuse");
    }
    noStuckLeases(server, "after hostile clients");

    // --- phase 2: injected faults under server-side retry ----------------
    std::cout << "phase 2: injected decode/key-expansion faults under "
                 "retry\n";
    size_t chaos_silent = 0, recovered = 0, typed_failures = 0;
    for (const char* site : {"serve.decode", "serve.evict"}) {
        u32 site_kinds = 0;
        for (const auto& s : faultinject::allSites())
            if (s.name == std::string(site))
                site_kinds = s.kinds;
        for (faultinject::Kind kind :
             {faultinject::Kind::BitFlip, faultinject::Kind::AllocFail,
              faultinject::Kind::TaskThrow}) {
            if (!(site_kinds & faultinject::kindBit(kind)))
                continue;
            const u64 max_nth = quick ? 3 : 8;
            for (u64 nth = 0; nth < max_nth; ++nth) {
                faultinject::arm({site, nth, kind, 11});
                const serve::Response resp =
                    server.submitFrame(serve::encodeRequest(makeMul()))
                        .get();
                const u64 fired = faultinject::firedCount();
                faultinject::disarm();
                if (resp.ok) {
                    if (fingerprintAll(resp.cts) == ref_mul)
                        ++recovered;
                    else
                        ++chaos_silent;
                } else if (resp.error_kind != serve::ErrorKind::None) {
                    ++typed_failures;
                } else {
                    ++chaos_silent; // failed without a typed kind
                }
                if (fired == 0)
                    break; // nth beyond this request's occurrences
            }
        }
    }
    chaosCheck(chaos_silent == 0, "zero silent corruptions (" +
                                      std::to_string(recovered) +
                                      " byte-identical recoveries, " +
                                      std::to_string(typed_failures) +
                                      " typed failures)");
    chaosCheck(recovered > 0, "retry recovered at least one injected fault");
    chaosCheck(chaosCounter("serve.retry") > 0, "serve.retry counted");
    noStuckLeases(server, "after injected faults");

    // --- phase 3: key-cache starvation -> graceful degradation ------------
    std::cout << "phase 3: key-cache starvation and degradation\n";
    const int rounds = quick ? 6 : 24;
    bool rot_identical = true;
    for (int r = 0; r < rounds; ++r) {
        serve::Request rot;
        rot.tenant = tenant;
        rot.id = rid++;
        rot.op = serve::Op::Rotate;
        rot.steps = steps;
        rot.cts = {base.ct_a};
        rot.deadline_ms = 30'000;
        const serve::Response resp =
            server.submitFrame(serve::encodeRequest(rot)).get();
        if (!resp.ok || fingerprintAll(resp.cts) != ref_rot)
            rot_identical = false;
    }
    chaosCheck(rot_identical,
               "every starved rotation succeeded byte-identically");
    chaosCheck(chaosCounter("serve.degrade.stepdown") > 0,
               "governor stepped down under memory pressure");
    chaosCheck(chaosCounter("serve.keycache.proactive_evictions") > 0,
               "governor proactively evicted unleased keys");
    for (int r = 0; r < 8; ++r) { // pressure-free traffic restores
        serve::Request put;
        put.tenant = tenant;
        put.id = rid++;
        put.op = serve::Op::Put;
        put.name = "chaos";
        put.cts = {base.ct_a};
        server.submit(std::move(put)).get();
    }
    bool restored = false;
    for (int spin = 0; spin < 400 && !restored; ++spin) {
        restored = server.governor().degradeLevel() == 0;
        if (!restored)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    chaosCheck(restored, "degrade level restored to 0 after pressure");
    noStuckLeases(server, "after starvation");

    // --- phase 4: forced circuit-breaker trips ----------------------------
    std::cout << "phase 4: forced breaker trips\n";
    serve::ServerOptions b_opts;
    b_opts.keycache_bytes = base.rlk.aBytes();
    resilience::RetryPolicy no_retry; // failures must reach the breaker
    no_retry.max_attempts = 1;
    b_opts.retry = no_retry;
    serve::GovernorOptions b_gov;
    b_gov.breaker_threshold = 2;
    b_gov.breaker_cooldown_ms = 50;
    b_opts.governor = b_gov;
    serve::Server brittle(base.ctx, b_opts);
    serve::TenantKeys bkeys;
    bkeys.pk = base.pk;
    bkeys.rlk = base.rlk;
    bkeys.gks = base.gks;
    const u64 btenant = brittle.addTenant(std::move(bkeys));
    auto brittleMul = [&] {
        serve::Request m;
        m.tenant = btenant;
        m.id = rid++;
        m.op = serve::Op::EvalMul;
        m.cts = {base.ct_a, base.ct_b};
        return brittle.submit(std::move(m)).get();
    };
    bool tripped_typed = true;
    for (int i = 0; i < 2; ++i) {
        faultinject::arm({"serve.evict", 0, faultinject::Kind::BitFlip, 5});
        const serve::Response resp = brittleMul();
        faultinject::disarm();
        if (resp.ok ||
            resp.error_kind != serve::ErrorKind::FaultDetected)
            tripped_typed = false;
    }
    chaosCheck(tripped_typed, "corrupted expansions fail typed, not silent");
    chaosCheck(brittle.governor().breakerTrips(btenant) == 1,
               "two consecutive failures tripped the breaker");
    {
        const serve::Response resp = brittleMul();
        chaosCheck(!resp.ok &&
                       resp.error_kind == serve::ErrorKind::Overloaded,
                   "open breaker sheds without executing");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    {
        const serve::Response resp = brittleMul();
        chaosCheck(resp.ok && fingerprintAll(resp.cts) == ref_mul,
                   "half-open probe restored byte-identical service");
    }
    noStuckLeases(brittle, "after breaker trips");

    std::cout << "\nserve-chaos: " << g_chaos_failures << " failures\n";
    if (g_chaos_failures > 0) {
        std::cerr << "FAIL: serve-chaos checks failed\n";
        return 1;
    }
    std::cout << "OK: serving runtime survived the chaos campaign\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false, list = false, chaos = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--list") == 0)
            list = true;
        else if (std::strcmp(argv[i], "serve-chaos") == 0)
            chaos = true;
        else {
            std::cerr
                << "usage: fault_campaign [--quick] [--list] [serve-chaos]\n";
            return 2;
        }
    }

    // Two threads: exercises pool exception propagation without
    // oversubscribing CI runners; results are thread-count independent.
    ThreadPool::setGlobalThreads(2);
    integrity::setEnabled(true);

    if (list) {
        for (const auto& s : faultinject::allSites()) {
            std::cout << s.name << " :";
            for (faultinject::Kind k :
                 {faultinject::Kind::BitFlip, faultinject::Kind::Truncate,
                  faultinject::Kind::ByteCorrupt, faultinject::Kind::AllocFail,
                  faultinject::Kind::TaskThrow}) {
                if (s.kinds & faultinject::kindBit(k))
                    std::cout << ' ' << faultinject::kindName(k);
            }
            std::cout << '\n';
        }
        return 0;
    }

    CkksParams params;
    params.log_n = 10;
    params.log_scale = 35;
    params.first_prime_bits = 45;
    params.num_levels = 5;
    params.dnum = 3;

    if (chaos)
        return runServeChaos(params, quick);

    Setup base(params, {1}, /*conj=*/false);

    std::vector<Workload> workloads;
    // The hot-path workloads are pinned to explicit stream policies so
    // the campaign's coverage does not depend on the ambient
    // MADFHE_STREAM: the full-policy pair drives keyswitch.stream (the
    // fused engine whose intermediates never materialize — its limb
    // digests are the only detection point), the off-policy pair drives
    // the materializing sites (ckks.decompose, ckks.ksk_innerprod,
    // ckks.moddown, ckks.moddown_merged, ckks.pmodup, rns.basis_convert).
    // The trailing explicit rescale reaches ckks.rescale, which the
    // merged-ModDown mul path bypasses.
    workloads.push_back({"mult", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Full);
                             return fingerprint(base.eval->rescale(
                                 base.eval->mul(base.ct_a, base.ct_b,
                                                base.rlk)));
                         }});
    workloads.push_back({"rotate", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Full);
                             return fingerprint(base.eval->rotate(
                                 base.ct_a, 1, base.gks));
                         }});
    workloads.push_back({"mult_off", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Off);
                             return fingerprint(base.eval->rescale(
                                 base.eval->mul(base.ct_a, base.ct_b,
                                                base.rlk)));
                         }});
    workloads.push_back({"rotate_off", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Off);
                             return fingerprint(base.eval->rotate(
                                 base.ct_a, 1, base.gks));
                         }});
    workloads.push_back({"serialize", [&] {
                             std::stringstream ss;
                             saveCiphertext(ss, base.ct_a);
                             return fingerprint(
                                 loadCiphertext(ss, base.ctx->ring()));
                         }});

    // Serving workload: one tenant behind a one-key cache budget so
    // every eval request re-expands and evicts (reaches serve.evict),
    // with all traffic entering as wire frames (reaches serve.decode).
    // throwIfError() re-raises whatever typed error the server caught,
    // so detections classify exactly like direct-call workloads.
    serve::TenantKeys tenant_keys;
    tenant_keys.pk = base.pk;
    tenant_keys.rlk = base.rlk;
    tenant_keys.gks = base.gks;
    serve::ServerOptions serve_opts;
    serve_opts.keycache_bytes = base.rlk.aBytes();
    auto server = std::make_unique<serve::Server>(base.ctx, serve_opts);
    const u64 serve_tenant = server->addTenant(std::move(tenant_keys));
    workloads.push_back(
        {"serve", [&, serve_tenant] {
             std::string out;
             u64 rid = 1; // per-run ids keep Encrypt seeds deterministic
             auto call = [&](serve::Request req) {
                 req.tenant = serve_tenant;
                 req.id = rid++;
                 serve::Response resp =
                     server->submitFrame(serve::encodeRequest(req)).get();
                 serve::throwIfError(resp);
                 for (const Ciphertext& ct : resp.cts)
                     out += fingerprint(ct);
             };
             serve::Request put;
             put.op = serve::Op::Put;
             put.name = "a";
             put.cts = {base.ct_a};
             call(std::move(put));
             serve::Request get;
             get.op = serve::Op::Get;
             get.name = "a";
             call(std::move(get));
             serve::Request mul;
             mul.op = serve::Op::EvalMul;
             mul.cts = {base.ct_a, base.ct_b};
             call(std::move(mul));
             serve::Request rot;
             rot.op = serve::Op::Rotate;
             rot.steps = {1};
             rot.cts = {base.ct_a};
             call(std::move(rot));
             serve::Request mul2;
             mul2.op = serve::Op::EvalMul;
             mul2.cts = {base.ct_b, base.ct_a};
             call(std::move(mul2));
             return out;
         }});

    std::unique_ptr<Setup> boot_setup;
    std::unique_ptr<Bootstrapper> boot;
    if (!quick) {
        CkksParams bp = CkksParams::bootstrapToy();
        bp.log_n = 11;
        bp.hamming_weight = 16;
        BootstrapParams bparms;
        bparms.ctos_iters = 3;
        bparms.stoc_iters = 3;
        bparms.sine_degree = 71;
        bparms.k_bound = 8.0;
        auto tmp_ctx = std::make_shared<CkksContext>(bp);
        auto probe_boot = Bootstrapper(tmp_ctx, bparms);
        boot_setup = std::make_unique<Setup>(
            bp, probe_boot.requiredRotations(), /*conj=*/true);
        boot = std::make_unique<Bootstrapper>(boot_setup->ctx, bparms);
        workloads.push_back(
            {"bootstrap", [&] {
                 Ciphertext one = boot_setup->eval->dropToLevel(
                     boot_setup->ct_a, 1);
                 return fingerprint(boot->bootstrap(*boot_setup->eval,
                                                    *boot_setup->encoder, one,
                                                    boot_setup->gks,
                                                    boot_setup->rlk));
             }});
    }

    // Clean (fault-free) fingerprints, integrity checks on.
    std::vector<std::string> clean;
    for (const auto& w : workloads) {
        std::cout << "clean run: " << w.name << "...\n";
        clean.push_back(w.run());
    }

    const auto sites = faultinject::allSites();
    std::vector<Outcome> outcomes;
    size_t silent = 0, unreached_sites = 0;

    for (const auto& site : sites) {
        // One occurrence-count probe per (site, workload) pair; the count
        // does not depend on the fault kind.
        faultinject::Kind probe_kind = faultinject::Kind::BitFlip;
        for (faultinject::Kind k :
             {faultinject::Kind::BitFlip, faultinject::Kind::AllocFail,
              faultinject::Kind::Truncate}) {
            if (site.kinds & faultinject::kindBit(k)) {
                probe_kind = k;
                break;
            }
        }
        size_t wl = workloads.size();
        u64 occurrences = 0;
        for (size_t i = 0; i < workloads.size(); ++i) {
            faultinject::arm({site.name, ~u64{0}, probe_kind, 1});
            std::string ignored;
            runCatching(workloads[i], ignored);
            occurrences = faultinject::armedSiteOccurrences();
            faultinject::disarm();
            if (occurrences > 0) {
                wl = i;
                break;
            }
        }
        if (wl == workloads.size()) {
            const bool boot_site =
                std::strncmp(site.name, "boot.", 5) == 0;
            const char* why = (quick && boot_site) ? "SKIPPED (--quick)"
                                                   : "UNREACHED";
            if (!(quick && boot_site))
                ++unreached_sites;
            outcomes.push_back({site.name, "*", "-", why, false});
            continue;
        }

        for (faultinject::Kind kind :
             {faultinject::Kind::BitFlip, faultinject::Kind::Truncate,
              faultinject::Kind::ByteCorrupt, faultinject::Kind::AllocFail,
              faultinject::Kind::TaskThrow}) {
            if (!(site.kinds & faultinject::kindBit(kind)))
                continue;
            // Fire in the middle of the dynamic occurrence stream: deep
            // enough that upstream state is real, early enough that the
            // fault has downstream consumers.
            faultinject::arm({site.name, occurrences / 2, kind, 7});
            std::string caught;
            std::string result = runCatching(workloads[wl], caught);
            const u64 fired = faultinject::firedCount();
            faultinject::disarm();

            Outcome o;
            o.site = site.name;
            o.kind = faultinject::kindName(kind);
            o.workload = workloads[wl].name;
            if (!caught.empty()) {
                o.result = "DETECTED(" + caught + ")";
            } else if (fired == 0) {
                o.result = "NOT-FIRED";
            } else if (result == clean[wl]) {
                o.result = "MASKED";
            } else {
                o.result = "SILENT";
                o.silent = true;
                ++silent;
            }
            outcomes.push_back(std::move(o));
        }
    }

    std::cout << "\nsite                     kind         workload    result\n";
    std::cout << "---------------------------------------------------------\n";
    size_t covered_pairs = 0;
    for (const auto& o : outcomes) {
        std::printf("%-24s %-12s %-11s %s\n", o.site.c_str(), o.kind.c_str(),
                    o.workload.c_str(), o.result.c_str());
        if (o.result.rfind("DETECTED", 0) == 0 || o.result == "MASKED")
            ++covered_pairs;
    }
    std::cout << "\n" << sites.size() << " sites, " << covered_pairs
              << " (site, kind) pairs exercised, " << silent
              << " silent corruptions, " << unreached_sites
              << " unreached sites\n";

    if (silent > 0) {
        std::cerr << "FAIL: injected faults escaped undetected\n";
        return 1;
    }
    if (unreached_sites > 0) {
        std::cerr << "FAIL: registered sites not reached by any workload\n";
        return 1;
    }
    std::cout << "OK: every injected fault was detected or masked\n";
    return 0;
}
