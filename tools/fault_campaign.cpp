/**
 * @file
 * Fault-injection campaign: sweeps every registered injection site ×
 * every applicable fault kind over Mult / Rotate / serialize round-trip
 * / bootstrap workloads, with runtime integrity checks enabled, and
 * verifies that no injected fault escapes undetected.
 *
 * Outcomes per (site, kind):
 *   DETECTED  an exception fired (FaultDetectedError, CorruptStreamError,
 *             InjectedFault, bad_alloc, ...) — the fault was caught
 *   MASKED    the fault fired but the workload result is byte-identical
 *             to the clean run (overwritten before it could matter)
 *   SILENT    the result differs from the clean run and nothing fired —
 *             silent corruption; the campaign fails
 *   UNREACHED no workload drives this site (fails outside --quick)
 *
 * Usage: fault_campaign [--quick] [--list]
 *   --quick  skip the bootstrap workload (CI mode; boot.modraise is
 *            reported as skipped rather than unreached)
 *   --list   print the site registry and exit
 */
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "boot/bootstrapper.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/serialize.h"
#include "ckks/stream.h"
#include "serve/server.h"
#include "support/faultinject.h"
#include "support/random.h"
#include "support/threadpool.h"

namespace {

using namespace madfhe;

/** Small end-to-end CKKS setup shared by the workloads. */
struct Setup
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    SecretKey sk;
    PublicKey pk;
    SwitchingKey rlk;
    GaloisKeys gks;
    std::unique_ptr<Encryptor> encryptor;
    std::unique_ptr<Evaluator> eval;
    Ciphertext ct_a, ct_b;

    explicit Setup(const CkksParams& params, const std::vector<int>& steps,
                   bool conj)
    {
        ctx = std::make_shared<CkksContext>(params);
        encoder = std::make_unique<CkksEncoder>(ctx);
        KeyGenerator keygen(ctx);
        sk = keygen.secretKey();
        pk = keygen.publicKey(sk);
        rlk = keygen.relinKey(sk);
        gks = keygen.galoisKeys(sk, steps, conj);
        encryptor = std::make_unique<Encryptor>(ctx, pk);
        eval = std::make_unique<Evaluator>(ctx);
        ct_a = encryptSeeded(1, ctx->maxLevel());
        ct_b = encryptSeeded(2, ctx->maxLevel());
    }

    Ciphertext
    encryptSeeded(u64 seed, size_t level)
    {
        Prng rng(seed);
        std::vector<std::complex<double>> v(ctx->slots());
        for (auto& z : v)
            z = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
        return encryptor->encrypt(encoder->encode(v, ctx->scale(), level));
    }
};

/** Result fingerprint: raw limb data + scale of a ciphertext. */
std::string
fingerprint(const Ciphertext& ct)
{
    std::string out;
    for (const RnsPoly* p : {&ct.c0, &ct.c1}) {
        for (size_t i = 0; i < p->numLimbs(); ++i)
            out.append(reinterpret_cast<const char*>(p->limb(i)),
                       p->degree() * sizeof(u64));
    }
    out.append(reinterpret_cast<const char*>(&ct.scale), sizeof(ct.scale));
    return out;
}

struct Workload
{
    const char* name;
    std::function<std::string()> run;
};

struct Outcome
{
    std::string site;
    std::string kind;
    std::string workload;
    std::string result; // DETECTED(<type>) / MASKED / SILENT / SKIPPED
    bool silent = false;
};

std::string
runCatching(const Workload& w, std::string& caught)
{
    try {
        return w.run();
    } catch (const FaultDetectedError&) {
        caught = "FaultDetectedError";
    } catch (const CorruptStreamError&) {
        caught = "CorruptStreamError";
    } catch (const faultinject::InjectedFault&) {
        caught = "InjectedFault";
    } catch (const std::bad_alloc&) {
        caught = "bad_alloc";
    } catch (const std::exception& e) {
        caught = std::string("exception(") + typeid(e).name() + ")";
    }
    return {};
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false, list = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--list") == 0)
            list = true;
        else {
            std::cerr << "usage: fault_campaign [--quick] [--list]\n";
            return 2;
        }
    }

    // Two threads: exercises pool exception propagation without
    // oversubscribing CI runners; results are thread-count independent.
    ThreadPool::setGlobalThreads(2);
    integrity::setEnabled(true);

    if (list) {
        for (const auto& s : faultinject::allSites()) {
            std::cout << s.name << " :";
            for (faultinject::Kind k :
                 {faultinject::Kind::BitFlip, faultinject::Kind::Truncate,
                  faultinject::Kind::ByteCorrupt, faultinject::Kind::AllocFail,
                  faultinject::Kind::TaskThrow}) {
                if (s.kinds & faultinject::kindBit(k))
                    std::cout << ' ' << faultinject::kindName(k);
            }
            std::cout << '\n';
        }
        return 0;
    }

    CkksParams params;
    params.log_n = 10;
    params.log_scale = 35;
    params.first_prime_bits = 45;
    params.num_levels = 5;
    params.dnum = 3;
    Setup base(params, {1}, /*conj=*/false);

    std::vector<Workload> workloads;
    // The hot-path workloads are pinned to explicit stream policies so
    // the campaign's coverage does not depend on the ambient
    // MADFHE_STREAM: the full-policy pair drives keyswitch.stream (the
    // fused engine whose intermediates never materialize — its limb
    // digests are the only detection point), the off-policy pair drives
    // the materializing sites (ckks.decompose, ckks.ksk_innerprod,
    // ckks.moddown, ckks.moddown_merged, ckks.pmodup, rns.basis_convert).
    // The trailing explicit rescale reaches ckks.rescale, which the
    // merged-ModDown mul path bypasses.
    workloads.push_back({"mult", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Full);
                             return fingerprint(base.eval->rescale(
                                 base.eval->mul(base.ct_a, base.ct_b,
                                                base.rlk)));
                         }});
    workloads.push_back({"rotate", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Full);
                             return fingerprint(base.eval->rotate(
                                 base.ct_a, 1, base.gks));
                         }});
    workloads.push_back({"mult_off", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Off);
                             return fingerprint(base.eval->rescale(
                                 base.eval->mul(base.ct_a, base.ct_b,
                                                base.rlk)));
                         }});
    workloads.push_back({"rotate_off", [&] {
                             ScopedStreamPolicy sp(StreamPolicy::Off);
                             return fingerprint(base.eval->rotate(
                                 base.ct_a, 1, base.gks));
                         }});
    workloads.push_back({"serialize", [&] {
                             std::stringstream ss;
                             saveCiphertext(ss, base.ct_a);
                             return fingerprint(
                                 loadCiphertext(ss, base.ctx->ring()));
                         }});

    // Serving workload: one tenant behind a one-key cache budget so
    // every eval request re-expands and evicts (reaches serve.evict),
    // with all traffic entering as wire frames (reaches serve.decode).
    // throwIfError() re-raises whatever typed error the server caught,
    // so detections classify exactly like direct-call workloads.
    serve::TenantKeys tenant_keys;
    tenant_keys.pk = base.pk;
    tenant_keys.rlk = base.rlk;
    tenant_keys.gks = base.gks;
    serve::ServerOptions serve_opts;
    serve_opts.keycache_bytes = base.rlk.aBytes();
    auto server = std::make_unique<serve::Server>(base.ctx, serve_opts);
    const u64 serve_tenant = server->addTenant(std::move(tenant_keys));
    workloads.push_back(
        {"serve", [&, serve_tenant] {
             std::string out;
             u64 rid = 1; // per-run ids keep Encrypt seeds deterministic
             auto call = [&](serve::Request req) {
                 req.tenant = serve_tenant;
                 req.id = rid++;
                 serve::Response resp =
                     server->submitFrame(serve::encodeRequest(req)).get();
                 serve::throwIfError(resp);
                 for (const Ciphertext& ct : resp.cts)
                     out += fingerprint(ct);
             };
             serve::Request put;
             put.op = serve::Op::Put;
             put.name = "a";
             put.cts = {base.ct_a};
             call(std::move(put));
             serve::Request get;
             get.op = serve::Op::Get;
             get.name = "a";
             call(std::move(get));
             serve::Request mul;
             mul.op = serve::Op::EvalMul;
             mul.cts = {base.ct_a, base.ct_b};
             call(std::move(mul));
             serve::Request rot;
             rot.op = serve::Op::Rotate;
             rot.steps = {1};
             rot.cts = {base.ct_a};
             call(std::move(rot));
             serve::Request mul2;
             mul2.op = serve::Op::EvalMul;
             mul2.cts = {base.ct_b, base.ct_a};
             call(std::move(mul2));
             return out;
         }});

    std::unique_ptr<Setup> boot_setup;
    std::unique_ptr<Bootstrapper> boot;
    if (!quick) {
        CkksParams bp = CkksParams::bootstrapToy();
        bp.log_n = 11;
        bp.hamming_weight = 16;
        BootstrapParams bparms;
        bparms.ctos_iters = 3;
        bparms.stoc_iters = 3;
        bparms.sine_degree = 71;
        bparms.k_bound = 8.0;
        auto tmp_ctx = std::make_shared<CkksContext>(bp);
        auto probe_boot = Bootstrapper(tmp_ctx, bparms);
        boot_setup = std::make_unique<Setup>(
            bp, probe_boot.requiredRotations(), /*conj=*/true);
        boot = std::make_unique<Bootstrapper>(boot_setup->ctx, bparms);
        workloads.push_back(
            {"bootstrap", [&] {
                 Ciphertext one = boot_setup->eval->dropToLevel(
                     boot_setup->ct_a, 1);
                 return fingerprint(boot->bootstrap(*boot_setup->eval,
                                                    *boot_setup->encoder, one,
                                                    boot_setup->gks,
                                                    boot_setup->rlk));
             }});
    }

    // Clean (fault-free) fingerprints, integrity checks on.
    std::vector<std::string> clean;
    for (const auto& w : workloads) {
        std::cout << "clean run: " << w.name << "...\n";
        clean.push_back(w.run());
    }

    const auto sites = faultinject::allSites();
    std::vector<Outcome> outcomes;
    size_t silent = 0, unreached_sites = 0;

    for (const auto& site : sites) {
        // One occurrence-count probe per (site, workload) pair; the count
        // does not depend on the fault kind.
        faultinject::Kind probe_kind = faultinject::Kind::BitFlip;
        for (faultinject::Kind k :
             {faultinject::Kind::BitFlip, faultinject::Kind::AllocFail,
              faultinject::Kind::Truncate}) {
            if (site.kinds & faultinject::kindBit(k)) {
                probe_kind = k;
                break;
            }
        }
        size_t wl = workloads.size();
        u64 occurrences = 0;
        for (size_t i = 0; i < workloads.size(); ++i) {
            faultinject::arm({site.name, ~u64{0}, probe_kind, 1});
            std::string ignored;
            runCatching(workloads[i], ignored);
            occurrences = faultinject::armedSiteOccurrences();
            faultinject::disarm();
            if (occurrences > 0) {
                wl = i;
                break;
            }
        }
        if (wl == workloads.size()) {
            const bool boot_site =
                std::strncmp(site.name, "boot.", 5) == 0;
            const char* why = (quick && boot_site) ? "SKIPPED (--quick)"
                                                   : "UNREACHED";
            if (!(quick && boot_site))
                ++unreached_sites;
            outcomes.push_back({site.name, "*", "-", why, false});
            continue;
        }

        for (faultinject::Kind kind :
             {faultinject::Kind::BitFlip, faultinject::Kind::Truncate,
              faultinject::Kind::ByteCorrupt, faultinject::Kind::AllocFail,
              faultinject::Kind::TaskThrow}) {
            if (!(site.kinds & faultinject::kindBit(kind)))
                continue;
            // Fire in the middle of the dynamic occurrence stream: deep
            // enough that upstream state is real, early enough that the
            // fault has downstream consumers.
            faultinject::arm({site.name, occurrences / 2, kind, 7});
            std::string caught;
            std::string result = runCatching(workloads[wl], caught);
            const u64 fired = faultinject::firedCount();
            faultinject::disarm();

            Outcome o;
            o.site = site.name;
            o.kind = faultinject::kindName(kind);
            o.workload = workloads[wl].name;
            if (!caught.empty()) {
                o.result = "DETECTED(" + caught + ")";
            } else if (fired == 0) {
                o.result = "NOT-FIRED";
            } else if (result == clean[wl]) {
                o.result = "MASKED";
            } else {
                o.result = "SILENT";
                o.silent = true;
                ++silent;
            }
            outcomes.push_back(std::move(o));
        }
    }

    std::cout << "\nsite                     kind         workload    result\n";
    std::cout << "---------------------------------------------------------\n";
    size_t covered_pairs = 0;
    for (const auto& o : outcomes) {
        std::printf("%-24s %-12s %-11s %s\n", o.site.c_str(), o.kind.c_str(),
                    o.workload.c_str(), o.result.c_str());
        if (o.result.rfind("DETECTED", 0) == 0 || o.result == "MASKED")
            ++covered_pairs;
    }
    std::cout << "\n" << sites.size() << " sites, " << covered_pairs
              << " (site, kind) pairs exercised, " << silent
              << " silent corruptions, " << unreached_sites
              << " unreached sites\n";

    if (silent > 0) {
        std::cerr << "FAIL: injected faults escaped undetected\n";
        return 1;
    }
    if (unreached_sites > 0) {
        std::cerr << "FAIL: registered sites not reached by any workload\n";
        return 1;
    }
    std::cout << "OK: every injected fault was detected or masked\n";
    return 0;
}
