#include <cstdio>
#include <cmath>
#include "boot/bootstrapper.h"
#include "boot/dft.h"
#include "ckks/encryptor.h"

using namespace madfhe;

int main() {
    CkksParams p = CkksParams::bootstrapToy();
    p.log_n = 11;
    p.hamming_weight = 16;
    auto ctx = std::make_shared<CkksContext>(p);
    CkksEncoder enc(ctx);
    KeyGenerator kg(ctx);
    auto sk = kg.secretKey();
    auto pk = kg.publicKey(sk);
    auto rlk = kg.relinKey(sk);
    Encryptor encryptor(ctx, pk);
    Decryptor dec(ctx, sk);
    Evaluator eval(ctx);

    BootstrapParams bp; bp.k_bound = 8.0; bp.sine_degree = 71;
    Bootstrapper boot(ctx, bp);
    auto gks = kg.galoisKeys(sk, boot.requiredRotations(), true);

    const size_t slots = ctx->slots();
    std::vector<std::complex<double>> v(slots);
    for (size_t i = 0; i < slots; ++i) v[i] = {0.5*std::sin(i*0.1), 0.25*std::cos(i*0.3)};
    Plaintext pt = enc.encode(v, ctx->scale(), 1);
    Ciphertext ct = encryptor.encrypt(pt);

    double delta = ctx->scale();
    double q0 = (double)ctx->qValue(0);
    double K = bp.k_bound;

    // reference coefficients of message (t' = Delta*m)
    Plaintext ptd = dec.decrypt(ct);
    RnsPoly cpoly = ptd.poly; cpoly.setRep(Rep::Coeff);
    auto tprime = enc.decodeCoefficients(cpoly); // Delta*m_k + noise

    // step 1: modRaise
    Ciphertext raised = boot.modRaise(ct);
    Plaintext praise = dec.decrypt(raised);
    RnsPoly rp = praise.poly; rp.setRep(Rep::Coeff);
    auto t = enc.decodeCoefficients(rp);
    double maxI = 0, maxres = 0;
    for (size_t k = 0; k < t.size(); ++k) {
        double I = std::round(t[k]/q0);
        maxI = std::max(maxI, std::abs(I));
        double res = t[k] - I*q0;   // should equal tprime
        maxres = std::max(maxres, std::abs(res - tprime[k]));
    }
    printf("modRaise: max|I| = %.1f, max|t mod q0 - t'| = %.3g (Delta=%.3g)\n", maxI, maxres, delta);

    // step 2: CtoS
    auto ctos_factors_check = coeffToSlotFactors(slots, 3, delta/(2*q0*K));
    Ciphertext tcs = raised;
    {
        // replicate the private pipeline: use bootstrap's own via friend? Just rebuild LinearTransforms
        MatVecOptions mv;
        for (auto& m : ctos_factors_check) {
            LinearTransform lt(ctx, m, delta, mv);
            tcs = lt.apply(eval, enc, tcs, gks);
        }
    }
    auto cs_slots = enc.decode(dec.decrypt(tcs));
    // expected: slot k = c * w_{br(k)} where w_k = (t_k + i t_{k+n})/Delta, c = delta/(2 q0 K) => value=(t_k+i t_{k+n})/(2 q0 K)
    unsigned logn = 0; while ((1u<<logn) < slots) logn++;
    auto br = [&](size_t i){ size_t r=0; for (unsigned b=0;b<logn;b++) r |= ((i>>b)&1)<<(logn-1-b); return r; };
    double maxcs = 0;
    for (size_t k = 0; k < slots; ++k) {
        size_t src = br(k);
        std::complex<double> expect = {t[src]/(2*q0*K), t[src+slots]/(2*q0*K)};
        maxcs = std::max(maxcs, std::abs(cs_slots[k]-expect));
    }
    printf("CtoS: max err vs expected = %.3g (typical magnitude %.3g), level=%zu scale=%.3g\n",
           maxcs, std::abs(cs_slots[0]), tcs.level(), tcs.scale/delta);
    // step 3: conj split
    Ciphertext tconj = eval.conjugate(tcs, gks);
    Ciphertext ct_re = eval.add(tcs, tconj);
    // build monomial
    RnsPoly mono(ctx->ring(), ctx->ring()->qIndices(ctx->maxLevel()), Rep::Coeff);
    for (size_t i = 0; i < mono.numLimbs(); ++i) mono.limb(i)[ctx->degree()/2] = 1;
    mono.toEval();
    auto mulI = [&](const Ciphertext& c){
        Ciphertext o = c;
        RnsPoly mm = extractLimbs(mono, c.c0.basis());
        o.c0.mulPointwise(mm); o.c1.mulPointwise(mm);
        return o;
    };
    Ciphertext ct_im = eval.negate(mulI(eval.sub(tcs, tconj)));
    auto re_slots = enc.decode(dec.decrypt(ct_re));
    auto im_slots = enc.decode(dec.decrypt(ct_im));
    double maxre = 0, maxim = 0, maxx = 0;
    for (size_t k = 0; k < slots; ++k) {
        size_t src = br(k);
        maxre = std::max(maxre, std::abs(re_slots[k] - std::complex<double>(t[src]/(q0*K),0)));
        maxim = std::max(maxim, std::abs(im_slots[k] - std::complex<double>(t[src+slots]/(q0*K),0)));
        maxx = std::max({maxx, std::abs(t[src]/(q0*K)), std::abs(t[src+slots]/(q0*K))});
    }
    printf("conj split: re err=%.3g im err=%.3g, max|x|=%.3f\n", maxre, maxim, maxx);

    // step 4: EvalMod
    const double two_pi_k = 2.0*std::acos(-1.0)*K;
    ChebyshevEvaluator sine(ctx, chebyshevInterpolate([two_pi_k](double x){return std::sin(two_pi_k*x)/two_pi_k;}, bp.sine_degree));
    Ciphertext re2 = sine.evaluate(eval, enc, ct_re, rlk);
    Ciphertext im2 = sine.evaluate(eval, enc, ct_im, rlk);
    auto re2s = enc.decode(dec.decrypt(re2));
    auto im2s = enc.decode(dec.decrypt(im2));
    double maxe = 0;
    for (size_t k = 0; k < slots; ++k) {
        size_t src = br(k);
        double expect_re = (t[src] - std::round(t[src]/q0)*q0)/(q0*K);
        double expect_im = (t[src+slots] - std::round(t[src+slots]/q0)*q0)/(q0*K);
        maxe = std::max({maxe, std::abs(re2s[k]-std::complex<double>(expect_re,0)), std::abs(im2s[k]-std::complex<double>(expect_im,0))});
    }
    printf("EvalMod: err=%.3g (expected magnitude ~ %.3g) level=%zu scale/delta=%.4f\n",
           maxe, delta/(q0*K)*0.5, re2.level(), re2.scale/delta);

    // step 5: recombine + StoC
    size_t lvl = std::min(re2.level(), im2.level());
    re2 = eval.dropToLevel(re2, lvl); im2 = eval.dropToLevel(im2, lvl);
    Ciphertext u = eval.add(re2, mulI(im2));
    auto stoc_factors = slotToCoeffFactors(slots, 3, q0*K/delta);
    for (auto& m : stoc_factors) {
        MatVecOptions mv;
        LinearTransform lt(ctx, m, delta, mv);
        u = lt.apply(eval, enc, u, gks);
    }
    auto final_slots = enc.decode(dec.decrypt(u));
    double maxfin = 0;
    for (size_t k = 0; k < slots; ++k)
        maxfin = std::max(maxfin, std::abs(final_slots[k] - v[k]));
    printf("final: err=%.3g level=%zu scale/delta=%.4f\n", maxfin, u.level(), u.scale/delta);
    return 0;
}
