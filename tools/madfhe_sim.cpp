/**
 * @file
 * madfhe_sim — command-line front end to SimFHE: evaluate a CKKS
 * parameter set + cache size + optimization selection on a hardware
 * design, printing ops, DRAM breakdown, roofline runtime and the Eq. 3
 * throughput.
 *
 * Usage:
 *   madfhe_sim [--logn N] [--q BITS] [--limbs L] [--dnum D] [--fftiter I]
 *              [--cache-mb MB] [--opts none|caching|all]
 *              [--design gpu|f1|bts|ark|craterlake] [--op OP]
 *
 * --op selects what to cost: bootstrap (default), mult, rotate, ptmult,
 * add, keyswitch.
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "simfhe/hardware.h"
#include "simfhe/report.h"

using namespace madfhe::simfhe;

namespace {

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--logn N] [--q BITS] [--limbs L] [--dnum D]\n"
                 "          [--fftiter I] [--cache-mb MB]\n"
                 "          [--opts none|caching|all]\n"
                 "          [--design gpu|f1|bts|ark|craterlake]\n"
                 "          [--op bootstrap|mult|rotate|ptmult|add|"
                 "keyswitch]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    SchemeConfig s = SchemeConfig::madOptimal();
    double cache_mb = 32;
    std::string opts_name = "all";
    std::string design_name = "gpu";
    std::string op = "bootstrap";

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--logn"))
            s.log_n = static_cast<unsigned>(std::stoul(need("--logn")));
        else if (!std::strcmp(argv[i], "--q"))
            s.limb_bits = static_cast<unsigned>(std::stoul(need("--q")));
        else if (!std::strcmp(argv[i], "--limbs"))
            s.boot_limbs = std::stoul(need("--limbs"));
        else if (!std::strcmp(argv[i], "--dnum"))
            s.dnum = std::stoul(need("--dnum"));
        else if (!std::strcmp(argv[i], "--fftiter"))
            s.fft_iter = std::stoul(need("--fftiter"));
        else if (!std::strcmp(argv[i], "--cache-mb"))
            cache_mb = std::stod(need("--cache-mb"));
        else if (!std::strcmp(argv[i], "--opts"))
            opts_name = need("--opts");
        else if (!std::strcmp(argv[i], "--design"))
            design_name = need("--design");
        else if (!std::strcmp(argv[i], "--op"))
            op = need("--op");
        else
            usage(argv[0]);
    }

    Optimizations opts;
    if (opts_name == "none")
        opts = Optimizations::none();
    else if (opts_name == "caching")
        opts = Optimizations::allCaching();
    else if (opts_name == "all")
        opts = Optimizations::all();
    else
        usage(argv[0]);

    HardwareDesign hw = HardwareDesign::gpu();
    if (design_name == "gpu")
        hw = HardwareDesign::gpu();
    else if (design_name == "f1")
        hw = HardwareDesign::f1();
    else if (design_name == "bts")
        hw = HardwareDesign::bts();
    else if (design_name == "ark")
        hw = HardwareDesign::ark();
    else if (design_name == "craterlake")
        hw = HardwareDesign::craterlake();
    else
        usage(argv[0]);
    hw = hw.withCache(cache_mb);

    CostModel model(s, CacheConfig::megabytes(cache_mb), opts);
    Cost c;
    if (op == "bootstrap")
        c = model.bootstrap();
    else if (op == "mult")
        c = model.mult(s.boot_limbs);
    else if (op == "rotate")
        c = model.rotate(s.boot_limbs);
    else if (op == "ptmult")
        c = model.ptMult(s.boot_limbs);
    else if (op == "add")
        c = model.add(s.boot_limbs);
    else if (op == "keyswitch")
        c = model.keySwitch(s.boot_limbs);
    else
        usage(argv[0]);

    std::printf("scheme: N=2^%u q=%u L=%zu dnum=%zu (alpha=%zu) "
                "fftIter=%zu logQ1=%.0f\n",
                s.log_n, s.limb_bits, s.boot_limbs, s.dnum, s.alpha(),
                s.fft_iter, s.logQ1());
    std::printf("cache: %.1f MB; effective opts: %s\n", cache_mb,
                model.effective().describe().c_str());
    std::printf("design: %s (%g modmult @%.1f GHz eff %.2f, %.0f GB/s)\n",
                hw.name.c_str(), hw.modmult_count, hw.freq_hz / 1e9,
                hw.efficiency, hw.bandwidth / 1e9);
    std::printf("\n%s cost:\n", op.c_str());
    std::printf("  compute : %.3f Gops (%.3f Gmul + %.3f Gadd)\n",
                c.ops() / 1e9, c.mul / 1e9, c.add / 1e9);
    std::printf("  DRAM    : %.3f GB (ct rd %.3f, ct wr %.3f, key %.3f, "
                "pt %.3f)\n",
                c.bytes() / 1e9, c.ct_read / 1e9, c.ct_write / 1e9,
                c.key_read / 1e9, c.pt_read / 1e9);
    std::printf("  AI      : %.3f op/byte\n", c.intensity());
    double rt = runtimeSec(hw, c);
    std::printf("  runtime : %.3f ms (%s-bound; compute %.3f ms, memory "
                "%.3f ms)\n",
                rt * 1e3, memoryBound(hw, c) ? "memory" : "compute",
                computeTimeSec(hw, c) * 1e3, memoryTimeSec(hw, c) * 1e3);
    if (op == "bootstrap")
        std::printf("  Eq.3 throughput: %.0f\n",
                    bootstrapThroughput(s, rt));
    return 0;
}
