/**
 * @file
 * Per-stage bootstrap observability check: runs one full bootstrap at
 * the crossval toy parameters with telemetry spans and memtrace both
 * live, installs the SimFHE per-stage predictions, and prints one row
 * per stage (ModRaise / CoeffToSlot / EvalMod / SlotToCoeff) with
 * wall-clock, traced DRAM bytes, model-predicted bytes, and divergence.
 *
 * Usage:
 *   boot_profile [--check] [--calibrate] [--trace-out <path>] [--json]
 *
 *   --check             exit 1 unless every stage's measured-vs-modeled
 *                       divergence is within ±10%
 *   --calibrate         print the materialization factors that would
 *                       zero the divergence (paste into
 *                       src/telemetry/simfhe_bridge.cpp after a kernel
 *                       restructure)
 *   --trace-out <path>  write the Chrome trace of the run
 *   --json              dump the full telemetry snapshot as JSON
 */
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "boot/bootstrapper.h"
#include "ckks/encryptor.h"
#include "ckks/stream.h"
#include "memtrace/trace.h"
#include "support/random.h"
#include "telemetry/export.h"
#include "telemetry/simfhe_bridge.h"
#include "telemetry/telemetry.h"

namespace {

using namespace madfhe;

std::vector<std::complex<double>>
randomSlots(size_t count, u64 seed)
{
    Prng rng(seed);
    std::vector<std::complex<double>> v(count);
    for (auto& z : v)
        z = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
    return v;
}

double
mb(double bytes)
{
    return bytes / (1024.0 * 1024.0);
}

} // namespace

int
main(int argc, char** argv)
{
    bool check = false;
    bool calibrate = false;
    bool dump_json = false;
    std::string trace_out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            check = true;
        } else if (arg == "--calibrate") {
            calibrate = true;
        } else if (arg == "--json") {
            dump_json = true;
        } else if (arg == "--trace-out" && i + 1 < argc) {
            trace_out = argv[++i];
        } else {
            std::fprintf(stderr, "boot_profile: unknown argument '%s'\n",
                         arg.c_str());
            return 2;
        }
    }

    // The crossval bootstrap configuration: toy ring, sparse secret.
    CkksParams params = CkksParams::bootstrapToy();
    params.log_n = 11;
    params.hamming_weight = 16;

    BootstrapParams boot_params;
    boot_params.ctos_iters = 3;
    boot_params.stoc_iters = 3;
    boot_params.sine_degree = 71;
    boot_params.k_bound = 8.0;

    telemetry::setLevel(trace_out.empty() ? telemetry::Level::Spans
                                          : telemetry::Level::Trace);
    telemetry::BootstrapShape shape;
    shape.ctos_iters = boot_params.ctos_iters;
    shape.stoc_iters = boot_params.stoc_iters;
    shape.sine_degree = boot_params.sine_degree;
    telemetry::installBootstrapPredictions(params, shape);

    auto ctx = std::make_shared<CkksContext>(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    Encryptor encryptor(ctx, pk);
    Evaluator eval(ctx);
    Bootstrapper boot(ctx, boot_params);
    GaloisKeys gks = keygen.galoisKeys(sk, boot.requiredRotations(), true);

    Plaintext pt = encoder.encode(randomSlots(ctx->slots(), 51),
                                  ctx->scale(), 1);
    Ciphertext ct = encryptor.encrypt(pt);

    // Trace only the bootstrap itself, not setup/keygen.
    memtrace::TraceSink& sink = memtrace::TraceSink::instance();
    sink.clear();
    sink.enable();
    Ciphertext out = boot.bootstrap(eval, encoder, ct, gks, rlk);
    sink.disable();
    (void)out;

    auto snap = telemetry::snapshot();

    const char* stages[] = {"Bootstrap/ModRaise", "Bootstrap/CoeffToSlot",
                            "Bootstrap/EvalMod", "Bootstrap/SlotToCoeff",
                            "Bootstrap"};
    std::printf("%-24s %10s %12s %12s %8s\n", "stage", "wall ms",
                "traced MB", "model MB", "div");
    bool all_within = true;
    for (const char* path : stages) {
        const telemetry::SpanRow* row = snap.span(path);
        if (!row) {
            std::printf("%-24s      (no span recorded)\n", path);
            all_within = false;
            continue;
        }
        const auto div = row->divergence();
        std::printf("%-24s %10.1f %12.2f %12.2f ", path,
                    static_cast<double>(row->total_ns) / 1e6,
                    mb(static_cast<double>(row->traced_bytes)),
                    row->model_bytes ? mb(*row->model_bytes) : 0.0);
        if (div) {
            std::printf("%+7.1f%%\n", *div * 100.0);
            if (std::fabs(*div) > 0.10)
                all_within = false;
        } else {
            std::printf("%8s\n", "n/a");
            all_within = false;
        }
    }

    // Limb-streaming executor counters (MADFHE_STREAM): how much work
    // the fused key-switch paths kept on-chip during this bootstrap.
    {
        bool any = false;
        for (const auto& c : snap.counters) {
            if (c.name.rfind("stream.", 0) != 0)
                continue;
            if (!any)
                std::printf("\nstream counters (policy %s):\n",
                            streamPolicyName(streamPolicy()));
            any = true;
            std::printf("    %-28s %12llu\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.value));
        }
        for (const auto& g : snap.gauges) {
            if (g.name.rfind("stream.", 0) != 0)
                continue;
            if (!any)
                std::printf("\nstream counters (policy %s):\n",
                            streamPolicyName(streamPolicy()));
            any = true;
            std::printf("    %-28s %12lld\n", g.name.c_str(),
                        static_cast<long long>(g.value));
        }
        if (!any)
            std::printf("\nstream counters: none recorded (policy %s)\n",
                        streamPolicyName(streamPolicy()));
    }

    if (calibrate) {
        std::printf("\nmeasured materialization factors (traced bytes / "
                    "uncalibrated model bytes):\n");
        for (const char* path : stages) {
            const telemetry::SpanRow* row = snap.span(path);
            if (!row || !row->model_bytes || *row->model_bytes <= 0)
                continue;
            const double current = telemetry::materializationFactor(path);
            const double uncalibrated = *row->model_bytes / current;
            std::printf("    {\"%s\", %.2f},\n", path,
                        static_cast<double>(row->traced_bytes) /
                            uncalibrated);
        }
    }

    if (dump_json)
        std::printf("%s\n", telemetry::toJson(snap).c_str());

    if (!trace_out.empty()) {
        std::ofstream os(trace_out);
        if (!os) {
            std::fprintf(stderr, "boot_profile: cannot write %s\n",
                         trace_out.c_str());
            return 2;
        }
        os << telemetry::chromeTraceJson();
        std::printf("wrote %s\n", trace_out.c_str());
    }

    if (check && !all_within) {
        std::fprintf(stderr,
                     "boot_profile: FAIL — a stage diverged more than 10%% "
                     "from the model prediction\n");
        return 1;
    }
    return 0;
}
