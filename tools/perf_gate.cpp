/**
 * @file
 * Kernel performance regression gate: runs the shared kernel
 * microbenchmarks (bench/kernels_common.h), writes BENCH_kernels.json,
 * diffs the measured ns/op against a checked-in baseline, and exits
 * nonzero when any kernel regressed past the threshold.
 *
 * Usage:
 *   perf_gate [--quick] [--baseline <path>] [--out <path>]
 *             [--threshold <percent>] [--write-baseline]
 *
 *   --quick            1-thread sweep with a short sampling target
 *                      (~25 ms/kernel) — the CI smoke configuration
 *   --baseline <path>  baseline JSON (default bench/baselines/kernels.json,
 *                      resolved relative to the working directory)
 *   --out <path>       where to write the measurement artifact
 *                      (default BENCH_kernels.json)
 *   --threshold <pct>  max tolerated slowdown per kernel (default 15)
 *   --write-baseline   write the measurements to the baseline path
 *                      instead of gating (refreshes the baseline)
 *
 * Only (op, threads) pairs present in both the run and the baseline are
 * compared, so a --quick run gates against the 1-thread baseline rows
 * and ignores the rest. Speedups are reported but never fail the gate.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/kernels_common.h"
#include "telemetry/json.h"

namespace {

using namespace madfhe;
using namespace madfhe::benchkit;

struct Options
{
    bool quick = false;
    bool write_baseline = false;
    std::string baseline = "bench/baselines/kernels.json";
    std::string out = "BENCH_kernels.json";
    double threshold_pct = 15.0;
};

bool
parseArgs(int argc, char** argv, Options& opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--write-baseline") {
            opt.write_baseline = true;
        } else if (arg == "--baseline") {
            const char* v = next();
            if (!v)
                return false;
            opt.baseline = v;
        } else if (arg == "--out") {
            const char* v = next();
            if (!v)
                return false;
            opt.out = v;
        } else if (arg == "--threshold") {
            const char* v = next();
            if (!v)
                return false;
            opt.threshold_pct = std::atof(v);
            if (opt.threshold_pct <= 0) {
                std::fprintf(stderr, "perf_gate: bad --threshold '%s'\n", v);
                return false;
            }
        } else {
            std::fprintf(stderr, "perf_gate: unknown argument '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

/** Baseline rows keyed by (op, threads). */
struct BaselineRow
{
    std::string op;
    size_t threads = 0;
    double ns_per_op = 0;
};

std::vector<BaselineRow>
loadBaseline(const std::string& path, bool* io_error)
{
    *io_error = false;
    std::ifstream is(path);
    if (!is) {
        *io_error = true;
        return {};
    }
    std::stringstream ss;
    ss << is.rdbuf();
    auto doc = telemetry::json::parse(ss.str());
    if (!doc) {
        *io_error = true;
        return {};
    }
    std::vector<BaselineRow> rows;
    const telemetry::json::Value* results = doc->find("results");
    if (!results || !results->isArray()) {
        *io_error = true;
        return {};
    }
    for (const auto& r : results->array) {
        BaselineRow row;
        row.op = r.stringOr("op", "");
        row.threads = static_cast<size_t>(r.numberOr("threads", 0));
        row.ns_per_op = r.numberOr("ns_per_op", 0);
        if (!row.op.empty() && row.threads > 0 && row.ns_per_op > 0)
            rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    const std::vector<size_t> sweep =
        opt.quick ? std::vector<size_t>{1} : std::vector<size_t>{1, 2, 4, 8};
    const double target_ns = opt.quick ? 25e6 : 200e6;

    auto params = benchParams();
    KernelBench bench(params);
    auto results = bench.run(sweep, target_ns);

    const std::string artifact = opt.write_baseline ? opt.baseline : opt.out;
    if (!writeKernelsJson(artifact.c_str(), params, *bench.ctx, results)) {
        std::fprintf(stderr, "perf_gate: cannot write %s\n",
                     artifact.c_str());
        return 2;
    }
    std::printf("wrote %s\n", artifact.c_str());
    if (opt.write_baseline)
        return 0;

    bool io_error = false;
    auto baseline = loadBaseline(opt.baseline, &io_error);
    if (io_error) {
        std::fprintf(stderr,
                     "perf_gate: cannot read baseline %s (run with "
                     "--write-baseline to create it)\n",
                     opt.baseline.c_str());
        return 2;
    }

    std::printf("%-16s %8s %14s %14s %9s\n", "op", "threads", "baseline ns",
                "measured ns", "delta");
    bool regressed = false;
    size_t compared = 0;
    for (const auto& r : results) {
        const BaselineRow* base = nullptr;
        for (const auto& b : baseline)
            if (b.op == r.op && b.threads == r.threads)
                base = &b;
        if (!base)
            continue;
        ++compared;
        const double delta_pct =
            (r.ns_per_op / base->ns_per_op - 1.0) * 100.0;
        const bool bad = delta_pct > opt.threshold_pct;
        regressed = regressed || bad;
        std::printf("%-16s %8zu %14.0f %14.0f %+8.1f%%%s\n", r.op.c_str(),
                    r.threads, base->ns_per_op, r.ns_per_op, delta_pct,
                    bad ? "  REGRESSED" : "");
    }
    if (compared == 0) {
        std::fprintf(stderr,
                     "perf_gate: baseline %s has no rows matching this "
                     "sweep\n",
                     opt.baseline.c_str());
        return 2;
    }
    if (regressed) {
        std::fprintf(stderr,
                     "perf_gate: FAIL — kernel(s) slower than baseline by "
                     ">%.0f%%\n",
                     opt.threshold_pct);
        return 1;
    }
    std::printf("perf_gate: OK (%zu comparisons within %.0f%%)\n", compared,
                opt.threshold_pct);
    return 0;
}
