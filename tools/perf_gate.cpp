/**
 * @file
 * Kernel performance regression gate: runs the shared kernel
 * microbenchmarks (bench/kernels_common.h), writes BENCH_kernels.json,
 * diffs the measured ns/op against a checked-in baseline, and exits
 * nonzero when any kernel regressed past the threshold.
 *
 * The gated sweep is pinned to the *scalar* SIMD backend so the
 * comparison is stable across hosts with different vector units, and
 * the baseline is rescaled by the ratio of a locally re-measured
 * reference kernel (a fixed serial Shoup-multiply pass) to the
 * `reference_ns` recorded when the baseline was written — absolute
 * nanoseconds from another machine are never compared directly.
 *
 * After the gate, every runnable vector backend is measured on the
 * forward NTT, its output checked byte-for-byte against scalar, and
 * its speedup reported; `--min-ntt-speedup` turns the report into a
 * gate.
 *
 * After the SIMD report, the limb-streaming executor is measured: Mult
 * and Rotate wall-clock under MADFHE_STREAM=off vs full, samples
 * interleaved the same way, and the speedup reported;
 * `--min-stream-speedup` turns the Mult row into a gate.
 *
 * Usage:
 *   perf_gate [--quick] [--baseline <path>] [--out <path>]
 *             [--threshold <percent>] [--rebaseline]
 *             [--min-ntt-speedup <x>] [--min-stream-speedup <x>]
 *
 *   --quick            1-thread sweep with a short sampling target
 *                      (~25 ms/kernel) — the CI smoke configuration
 *   --baseline <path>  baseline JSON (default bench/baselines/kernels.json,
 *                      resolved relative to the working directory)
 *   --out <path>       where to write the measurement artifact
 *                      (default BENCH_kernels.json)
 *   --threshold <pct>  max tolerated slowdown per kernel (default 15)
 *   --rebaseline       write the measurements (plus this host's
 *                      reference_ns) to the baseline path instead of
 *                      gating; --write-baseline is kept as an alias
 *   --min-ntt-speedup <x>
 *                      fail unless every runnable vector backend's
 *                      forward-NTT speedup over scalar is >= x
 *   --min-stream-speedup <x>
 *                      fail unless MADFHE_STREAM=full Mult wall-clock
 *                      speedup over off is >= x (Rotate is reported but
 *                      not gated)
 *
 * Only (op, threads) pairs present in both the run and the baseline are
 * compared, so a --quick run gates against the 1-thread baseline rows
 * and ignores the rest. Speedups are reported but never fail the gate.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/kernels_common.h"
#include "telemetry/json.h"

namespace {

using namespace madfhe;
using namespace madfhe::benchkit;

struct Options
{
    bool quick = false;
    bool write_baseline = false;
    std::string baseline = "bench/baselines/kernels.json";
    std::string out = "BENCH_kernels.json";
    double threshold_pct = 15.0;
    double min_ntt_speedup = 0.0;
    double min_stream_speedup = 0.0;
};

bool
parseArgs(int argc, char** argv, Options& opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--rebaseline" || arg == "--write-baseline") {
            opt.write_baseline = true;
        } else if (arg == "--baseline") {
            const char* v = next();
            if (!v)
                return false;
            opt.baseline = v;
        } else if (arg == "--out") {
            const char* v = next();
            if (!v)
                return false;
            opt.out = v;
        } else if (arg == "--threshold") {
            const char* v = next();
            if (!v)
                return false;
            opt.threshold_pct = std::atof(v);
            if (opt.threshold_pct <= 0) {
                std::fprintf(stderr, "perf_gate: bad --threshold '%s'\n", v);
                return false;
            }
        } else if (arg == "--min-ntt-speedup") {
            const char* v = next();
            if (!v)
                return false;
            opt.min_ntt_speedup = std::atof(v);
            if (opt.min_ntt_speedup <= 0) {
                std::fprintf(stderr,
                             "perf_gate: bad --min-ntt-speedup '%s'\n", v);
                return false;
            }
        } else if (arg == "--min-stream-speedup") {
            const char* v = next();
            if (!v)
                return false;
            opt.min_stream_speedup = std::atof(v);
            if (opt.min_stream_speedup <= 0) {
                std::fprintf(stderr,
                             "perf_gate: bad --min-stream-speedup '%s'\n",
                             v);
                return false;
            }
        } else {
            std::fprintf(stderr, "perf_gate: unknown argument '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

/** Baseline rows keyed by (op, threads). */
struct BaselineRow
{
    std::string op;
    size_t threads = 0;
    double ns_per_op = 0;
    std::string backend;
};

struct Baseline
{
    std::vector<BaselineRow> rows;
    double reference_ns = 0;
};

Baseline
loadBaseline(const std::string& path, bool* io_error)
{
    *io_error = false;
    Baseline out;
    std::ifstream is(path);
    if (!is) {
        *io_error = true;
        return out;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    auto doc = telemetry::json::parse(ss.str());
    if (!doc) {
        *io_error = true;
        return out;
    }
    out.reference_ns = doc->numberOr("reference_ns", 0);
    const telemetry::json::Value* results = doc->find("results");
    if (!results || !results->isArray()) {
        *io_error = true;
        return out;
    }
    for (const auto& r : results->array) {
        BaselineRow row;
        row.op = r.stringOr("op", "");
        row.threads = static_cast<size_t>(r.numberOr("threads", 0));
        row.ns_per_op = r.numberOr("ns_per_op", 0);
        row.backend = r.stringOr("backend", "scalar");
        if (!row.op.empty() && row.threads > 0 && row.ns_per_op > 0)
            out.rows.push_back(std::move(row));
    }
    return out;
}

/**
 * Forward-NTT the same random polynomial under `b` and under scalar and
 * compare the transforms byte-for-byte — the bit-exactness contract the
 * vector kernels must honor before their timings mean anything.
 */
bool
nttBitExact(const KernelBench& bench, simd::Backend b)
{
    const size_t level = bench.ctx->maxLevel();
    RnsPoly ref = randomPoly(bench.ctx->ring(), level, 17);
    RnsPoly vec = ref;
    simd::setBackend(simd::Backend::Scalar);
    ref.toEval();
    simd::setBackend(b);
    vec.toEval();
    for (size_t i = 0; i < ref.numLimbs(); ++i)
        if (std::memcmp(ref.limb(i), vec.limb(i),
                        ref.degree() * sizeof(u64)) != 0)
            return false;
    ref.toCoeff();
    simd::setBackend(b);
    vec.toCoeff();
    for (size_t i = 0; i < ref.numLimbs(); ++i)
        if (std::memcmp(ref.limb(i), vec.limb(i),
                        ref.degree() * sizeof(u64)) != 0)
            return false;
    return true;
}

/**
 * Forward-NTT ns/op for scalar and for backend `b`, sampled in
 * alternating rounds and reduced to per-backend medians. Interleaving
 * matters on shared/virtualized hosts whose effective clock drifts over
 * seconds: both backends then sample the same machine phases, so the
 * drift divides out of the reported ratio instead of biasing it the way
 * two back-to-back measurement blocks would.
 */
struct PairedNtt
{
    double scalar_ns = 0;
    double vec_ns = 0;
};

PairedNtt
interleavedNttNs(const KernelBench& bench, simd::Backend b, bool quick)
{
    ThreadPool::setGlobalThreads(1);
    const size_t level = bench.ctx->maxLevel();
    RnsPoly poly = randomPoly(bench.ctx->ring(), level, 13);
    auto pair_op = [&] {
        poly.toEval();
        poly.toCoeff();
    };
    const size_t rounds = quick ? 9 : 17;
    const double slice_ns = (quick ? 60e6 : 240e6) / (2.0 * rounds);
    std::vector<double> s, v;
    for (size_t r = 0; r < rounds; ++r) {
        simd::setBackend(simd::Backend::Scalar);
        s.push_back(nsPerOp(pair_op, 2, slice_ns, 1) / 2.0);
        simd::setBackend(b);
        v.push_back(nsPerOp(pair_op, 2, slice_ns, 1) / 2.0);
    }
    simd::setBackend(simd::Backend::Scalar);
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
    auto median = [](std::vector<double>& x) {
        std::sort(x.begin(), x.end());
        return x[x.size() / 2];
    };
    return {median(s), median(v)};
}

/**
 * Mult / Rotate wall-clock under MADFHE_STREAM=off vs full, samples
 * interleaved round-robin for the same clock-drift immunity as
 * interleavedNttNs. Byte-identity of the two policies is a test-suite
 * invariant, so only time is compared here.
 */
struct PairedStream
{
    double off_ns = 0;
    double full_ns = 0;
};

PairedStream
interleavedStreamNs(KernelBench& bench, bool rotate, bool quick)
{
    ThreadPool::setGlobalThreads(1);
    auto op = [&] {
        if (rotate) {
            Ciphertext c = bench.eval->rotate(bench.ct_a, 1, bench.gks);
            (void)c;
        } else {
            Ciphertext c = bench.eval->mul(bench.ct_a, bench.ct_b, bench.rlk);
            (void)c;
        }
    };
    const size_t rounds = quick ? 9 : 17;
    const double slice_ns = (quick ? 60e6 : 240e6) / (2.0 * rounds);
    std::vector<double> off, full;
    for (size_t r = 0; r < rounds; ++r) {
        {
            ScopedStreamPolicy sp(StreamPolicy::Off);
            off.push_back(nsPerOp(op, 1, slice_ns, 1));
        }
        {
            ScopedStreamPolicy sp(StreamPolicy::Full);
            full.push_back(nsPerOp(op, 1, slice_ns, 1));
        }
    }
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
    auto median = [](std::vector<double>& x) {
        std::sort(x.begin(), x.end());
        return x[x.size() / 2];
    };
    return {median(off), median(full)};
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    const std::vector<size_t> sweep =
        opt.quick ? std::vector<size_t>{1} : std::vector<size_t>{1, 2, 4, 8};
    const double target_ns = opt.quick ? 25e6 : 200e6;

    // The machine-speed reference is sampled before AND after the sweep
    // and the slower reading wins: on hosts whose effective clock drifts
    // (shared vCPUs, thermal throttling), a reference taken only at
    // startup can claim a fast machine while the sweep itself ran a slow
    // phase, turning drift into phantom regressions. On steady machines
    // the two readings agree and nothing changes.
    const double ref_pre_ns = referenceKernelNs();
    std::printf("reference kernel (pre-sweep): %.0f ns\n", ref_pre_ns);

    // The gated sweep always runs scalar (see file header); vector
    // backends are handled separately below.
    simd::setBackend(simd::Backend::Scalar);
    auto params = benchParams();
    KernelBench bench(params);
    auto results = bench.run(sweep, target_ns);

    const double ref_post_ns = referenceKernelNs();
    const double ref_ns = std::max(ref_pre_ns, ref_post_ns);
    std::printf("reference kernel (post-sweep): %.0f ns; using %.0f ns\n",
                ref_post_ns, ref_ns);

    // Vector backends: verify byte-identity against scalar, then time
    // the forward NTT single-threaded — scalar and vector samples
    // interleaved (see interleavedNttNs) — and record the speedup.
    struct SimdRow
    {
        simd::Backend backend;
        double ns_per_op;
        double speedup;
    };
    std::vector<SimdRow> simd_rows;
    bool exactness_failed = false;
    for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Avx512}) {
        if (!simd::supported(b))
            continue;
        if (!nttBitExact(bench, b)) {
            std::fprintf(stderr,
                         "perf_gate: FAIL — %s NTT output differs from "
                         "scalar\n",
                         simd::backendName(b));
            exactness_failed = true;
            continue;
        }
        const PairedNtt p = interleavedNttNs(bench, b, opt.quick);
        simd_rows.push_back(
            {b, p.vec_ns, p.vec_ns > 0 ? p.scalar_ns / p.vec_ns : 0});
        results.push_back({"ntt_forward", 1, p.vec_ns, simd::backendName(b)});
    }
    simd::setBackend(simd::Backend::Scalar);
    if (exactness_failed)
        return 1;

    const std::string artifact = opt.write_baseline ? opt.baseline : opt.out;
    if (!writeKernelsJson(artifact.c_str(), params, *bench.ctx, results,
                          ref_ns)) {
        std::fprintf(stderr, "perf_gate: cannot write %s\n",
                     artifact.c_str());
        return 2;
    }
    std::printf("wrote %s\n", artifact.c_str());

    for (const auto& row : simd_rows)
        std::printf("simd %-8s ntt_forward %10.0f ns/op  %.2fx vs scalar "
                    "(bit-exact)\n",
                    simd::backendName(row.backend), row.ns_per_op,
                    row.speedup);
    if (opt.min_ntt_speedup > 0) {
        if (simd_rows.empty()) {
            std::printf("perf_gate: no vector backend runnable on this "
                        "host; --min-ntt-speedup skipped\n");
        } else {
            for (const auto& row : simd_rows) {
                if (row.speedup < opt.min_ntt_speedup) {
                    std::fprintf(stderr,
                                 "perf_gate: FAIL — %s NTT speedup %.2fx "
                                 "below required %.2fx\n",
                                 simd::backendName(row.backend), row.speedup,
                                 opt.min_ntt_speedup);
                    return 1;
                }
            }
        }
    }

    // Limb-streaming executor: Mult (gated) and Rotate (reported)
    // wall-clock, MADFHE_STREAM=full vs off, interleaved samples.
    {
        const PairedStream mult_p =
            interleavedStreamNs(bench, /*rotate=*/false, opt.quick);
        const PairedStream rot_p =
            interleavedStreamNs(bench, /*rotate=*/true, opt.quick);
        const double mult_speedup =
            mult_p.full_ns > 0 ? mult_p.off_ns / mult_p.full_ns : 0;
        const double rot_speedup =
            rot_p.full_ns > 0 ? rot_p.off_ns / rot_p.full_ns : 0;
        std::printf("stream mult       off %10.0f ns/op  full %10.0f "
                    "ns/op  %.2fx\n",
                    mult_p.off_ns, mult_p.full_ns, mult_speedup);
        std::printf("stream rotate     off %10.0f ns/op  full %10.0f "
                    "ns/op  %.2fx\n",
                    rot_p.off_ns, rot_p.full_ns, rot_speedup);
        if (opt.min_stream_speedup > 0 &&
            mult_speedup < opt.min_stream_speedup) {
            std::fprintf(stderr,
                         "perf_gate: FAIL — streaming Mult speedup %.2fx "
                         "below required %.2fx\n",
                         mult_speedup, opt.min_stream_speedup);
            return 1;
        }
    }

    if (opt.write_baseline)
        return 0;

    bool io_error = false;
    auto baseline = loadBaseline(opt.baseline, &io_error);
    if (io_error) {
        std::fprintf(stderr,
                     "perf_gate: cannot read baseline %s (run with "
                     "--rebaseline to create it)\n",
                     opt.baseline.c_str());
        return 2;
    }

    // Rescale the baseline to this machine. A missing reference_ns (an
    // old baseline) degrades to comparing raw nanoseconds.
    double scale = 1.0;
    if (baseline.reference_ns > 0 && ref_ns > 0) {
        scale = ref_ns / baseline.reference_ns;
        std::printf("machine normalization: baseline reference %.0f ns, "
                    "local %.0f ns, scale %.3f\n",
                    baseline.reference_ns, ref_ns, scale);
    } else {
        std::printf("machine normalization: baseline has no reference_ns; "
                    "comparing raw ns\n");
    }

    std::printf("%-16s %8s %14s %14s %9s\n", "op", "threads", "expected ns",
                "measured ns", "delta");
    bool regressed = false;
    size_t compared = 0;
    for (const auto& r : results) {
        if (r.backend != "scalar")
            continue; // vector rows are gated by --min-ntt-speedup
        const BaselineRow* base = nullptr;
        for (const auto& b : baseline.rows)
            if (b.op == r.op && b.threads == r.threads &&
                b.backend == "scalar")
                base = &b;
        if (!base)
            continue;
        ++compared;
        const double expected = base->ns_per_op * scale;
        const double delta_pct = (r.ns_per_op / expected - 1.0) * 100.0;
        const bool bad = delta_pct > opt.threshold_pct;
        regressed = regressed || bad;
        std::printf("%-16s %8zu %14.0f %14.0f %+8.1f%%%s\n", r.op.c_str(),
                    r.threads, expected, r.ns_per_op, delta_pct,
                    bad ? "  REGRESSED" : "");
    }
    if (compared == 0) {
        std::fprintf(stderr,
                     "perf_gate: baseline %s has no rows matching this "
                     "sweep\n",
                     opt.baseline.c_str());
        return 2;
    }
    if (regressed) {
        std::fprintf(stderr,
                     "perf_gate: FAIL — kernel(s) slower than baseline by "
                     ">%.0f%%\n",
                     opt.threshold_pct);
        return 1;
    }
    std::printf("perf_gate: OK (%zu comparisons within %.0f%%)\n", compared,
                opt.threshold_pct);
    return 0;
}
