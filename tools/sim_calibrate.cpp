/**
 * Calibration harness: prints the SimFHE model outputs next to the
 * paper's Table 4 / Figure 2 / Figure 3 reference values.
 */
#include <cstdio>
#include "simfhe/model.h"
#include "simfhe/hardware.h"

using namespace madfhe::simfhe;

int main() {
    SchemeConfig s = SchemeConfig::baselineJung();
    CacheConfig small = CacheConfig::megabytes(2);
    CostModel base(s, small, Optimizations::none());

    const size_t l = 35;
    struct Row { const char* name; Cost c; double paper_ops, paper_gb, paper_ai; };
    Row rows[] = {
        {"PtAdd", base.ptAdd(l), 0.0046, 0.1101, 0.04},
        {"Add", base.add(l), 0.0092, 0.2202, 0.04},
        {"PtMult", base.ptMult(l), 0.2747, 0.3282, 0.84},
        {"Decomp", base.decomp(l), 0.0092, 0.0734, 0.12},
        {"ModUp", base.modUpDigit(l), 0.2847, 0.1510, 1.88},
        {"KSKIP", base.kskInnerProd(l), 0.0629, 0.4530, 0.13},
        {"ModDown", base.modDownPoly(l), 0.3000, 0.1877, 1.59},
        {"Mult", base.mult(l), 1.8333, 1.9293, 0.95},
        {"Automorph", base.automorph(l), 0.0, 0.1468, 0.0},
        {"Rotate", base.rotate(l), 1.5310, 1.5645, 0.98},
        {"Bootstrap", base.bootstrap(), 149.546, 207.982, 0.72},
    };
    printf("%-10s %10s %10s %8s | %10s %10s %8s\n", "op", "Gops", "GB", "AI", "paperGops", "paperGB", "paperAI");
    for (auto& r : rows) {
        printf("%-10s %10.4f %10.4f %8.2f | %10.4f %10.4f %8.2f\n",
            r.name, r.c.ops()/1e9, r.c.bytes()/1e9, r.c.intensity(),
            r.paper_ops, r.paper_gb, r.paper_ai);
    }

    printf("\nFigure 2 (cumulative caching opts, bootstrap DRAM):\n");
    Cost c0 = base.bootstrap();
    struct F2 { const char* name; Optimizations o; double paper_red; double cache_mb; };
    F2 f2[] = {
        {"baseline", Optimizations::none(), 0.00, 2},
        {"O(1)", Optimizations::o1(), 0.15, 2},
        {"O(beta)", Optimizations::upToBeta(), 0.22, 6},
        {"O(alpha)", Optimizations::upToAlpha(), 0.44, 27},
        {"reorder", Optimizations::allCaching(), 0.52, 27},
    };
    for (auto& f : f2) {
        CostModel m(s, CacheConfig::megabytes(f.cache_mb > 2 ? f.cache_mb : 2), f.o);
        Cost c = m.bootstrap();
        printf("%-10s GB=%8.2f red=%5.1f%% (paper %4.0f%%)  AI=%5.2f ops=%7.2fG\n",
            f.name, c.bytes()/1e9, 100*(1 - c.bytes()/c0.bytes()), 100*f.paper_red,
            c.intensity(), c.ops()/1e9);
    }
    printf("paper: caching AI 0.72 -> 1.25\n");

    printf("\nFigure 3 (algorithmic opts on optimal params, 32MB):\n");
    SchemeConfig so = SchemeConfig::madOptimal();
    CacheConfig c32 = CacheConfig::megabytes(32);
    struct F3 { const char* name; Optimizations o; };
    F3 f3[] = {
        {"caching", Optimizations::allCaching()},
        {"+merge", Optimizations::withMerge()},
        {"+hoist", Optimizations::withHoist()},
        {"+keycomp", Optimizations::all()},
    };
    Cost prev;
    for (size_t i = 0; i < 4; ++i) {
        CostModel m(so, c32, f3[i].o);
        Cost c = m.bootstrap();
        printf("%-9s ops=%7.2fG bytes=%7.2fGB (ct r=%6.2f w=%6.2f key=%6.2f pt=%6.2f) AI=%5.2f\n",
            f3[i].name, c.ops()/1e9, c.bytes()/1e9, c.ct_read/1e9, c.ct_write/1e9,
            c.key_read/1e9, c.pt_read/1e9, c.intensity());
        prev = c;
    }
    printf("paper: merge -6%% compute; hoist -34%% compute, -19%% ct DRAM, +25%% key reads; keycomp -50%% key reads; final AI ~3x baseline (0.72 -> ~2.2)\n");

    printf("\nTable 6 MAD rows (roofline):\n");
    for (auto hw : HardwareDesign::all()) {
        auto h32 = hw.withCache(32);
        SchemeConfig sm = SchemeConfig::madOptimal();
        CostModel m(sm, CacheConfig::megabytes(32), Optimizations::all());
        Cost c = m.bootstrap();
        double rt = runtimeSec(h32, c);
        printf("%-22s rt=%7.2f ms tput=%7.0f (paper boot orig %.2f ms) %s\n",
            hw.name.c_str(), rt*1e3, bootstrapThroughput(sm, rt),
            hw.published_boot_ms, memoryBound(h32, c) ? "mem-bound" : "compute-bound");
    }
    return 0;
}
