/**
 * @file
 * Serving smoke test (the CI `serve-smoke` job): N concurrent in-proc
 * tenants fire mixed PUT/GET/eval traffic — part direct submits, part
 * wire frames through the TCP front end — at a server whose key cache
 * runs under a deliberately tight byte budget. The run asserts:
 *
 *   - every request succeeds and the server never drops a frame,
 *   - the key cache stayed within its budget (peak counter),
 *   - the madfhe.telemetry.v1 JSON export carries the serving metrics
 *     (serve.latency_ns / serve.deadline_remaining_ns histograms,
 *     per-tenant request counters),
 *
 * then prints p50/p99 request latency, p50/p99 deadline headroom, the
 * key-cache counters, and the resilience counters (serve.shed,
 * serve.retry, serve.breaker_open, serve.degrade_level).
 *
 * Every request carries a generous deadline so the deadline-propagation
 * path and its headroom histogram are exercised end to end.
 *
 * Usage: serve_smoke [--quick] [--starve] [--tenants N] [--rounds N]
 *                    [--out PATH]
 *   --quick   CI mode: 4 tenants x 8 rounds (a few seconds)
 *   --starve  key cache holds ONE expanded key and every rotation pins
 *             two: permanent overcommit. The run must still complete
 *             every request via graceful degradation (stream-policy
 *             step-down + proactive eviction), not fail.
 *   --out     write the run as a BENCH_serve.json artifact (the same
 *             {op, threads, ns_per_op, backend} row shape as
 *             BENCH_kernels.json, plus latency percentiles and the
 *             resilience counters — see telemetry/serve_report.h).
 */
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "ckks/serialize.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "support/threadpool.h"
#include "telemetry/export.h"
#include "telemetry/serve_report.h"

namespace {

using namespace madfhe;

struct TenantClient
{
    u64 id = 0;
    SecretKey sk;
    PublicKey pk;
    Ciphertext ct;
};

} // namespace

int
main(int argc, char** argv)
{
    size_t tenants = 4, rounds = 8;
    bool starve = false;
    std::string out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            tenants = 4;
            rounds = 8;
        } else if (std::strcmp(argv[i], "--starve") == 0) {
            starve = true;
        } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
            tenants = static_cast<size_t>(std::atol(argv[++i]));
        } else if (std::strcmp(argv[i], "--rounds") == 0 && i + 1 < argc) {
            rounds = static_cast<size_t>(std::atol(argv[++i]));
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::cerr << "usage: serve_smoke [--quick] [--starve] "
                         "[--tenants N] [--rounds N] [--out PATH]\n";
            return 2;
        }
    }

    ThreadPool::setGlobalThreads(2);
    telemetry::setLevel(telemetry::Level::Spans);

    CkksParams params = CkksParams::unitTest();
    auto ctx = std::make_shared<CkksContext>(params);
    CkksEncoder encoder(ctx);

    // Tight budget: every tenant holds 3 switching keys (rlk + 2 Galois
    // keys) but the cache only fits `tenants + 1` expanded keys, so the
    // mixed traffic constantly evicts and re-expands.
    KeyGenerator keygen(ctx);
    std::vector<TenantClient> clients(tenants);
    serve::ServerOptions opts;
    // Clients encrypt locally with Encryptor, so this smoke test is
    // real-backend by construction — pin it so a stray MADFHE_BACKEND
    // in the environment cannot flip the server under the clients.
    opts.backend = BackendKind::Real;
    {
        TenantClient& c = clients[0];
        c.sk = keygen.secretKey();
        // Starvation mode: the cache holds one expanded key while every
        // hoisted rotation pins two, so the governor must degrade (and
        // keep serving) instead of the cache staying within budget.
        const size_t key_bytes = keygen.relinKey(c.sk).aBytes();
        opts.keycache_bytes = starve ? key_bytes : (tenants + 1) * key_bytes;
    }
    serve::Server server(ctx, opts);
    for (size_t i = 0; i < tenants; ++i) {
        TenantClient& c = clients[i];
        if (i > 0)
            c.sk = keygen.secretKey();
        c.pk = keygen.publicKey(c.sk);
        serve::TenantKeys keys;
        keys.pk = c.pk;
        keys.rlk = keygen.relinKey(c.sk);
        keys.gks = keygen.galoisKeys(c.sk, {1, 2});
        keys.sk = c.sk;
        c.id = server.addTenant(std::move(keys));
        Encryptor enc(ctx, c.pk, 1000 + i);
        std::vector<double> v(ctx->slots());
        for (size_t k = 0; k < v.size(); ++k)
            v[k] = 0.001 * static_cast<double>(k % 97) + double(i);
        c.ct = enc.encrypt(encoder.encodeReal(v, ctx->scale(), ctx->maxLevel()));
    }

    serve::TcpFrontEnd tcp(server, 0);
    std::cout << "serve_smoke: " << tenants << " tenants x " << rounds
              << " rounds, tcp port " << tcp.port() << "\n";

    // Concurrent client threads, one per tenant: PUT, GET, EvalAdd
    // against the stored value, EvalMul, Rotate — half direct submits,
    // half length-prefixed frames over TCP.
    const auto traffic_t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    std::atomic<u64> failures{0};
    std::atomic<u64> requests{0};
    for (size_t i = 0; i < tenants; ++i) {
        workers.emplace_back([&, i] {
            TenantClient& c = clients[i];
            u64 rid = 1;
            auto check = [&](serve::Response resp) {
                ++requests;
                if (!resp.ok) {
                    ++failures;
                    std::cerr << "tenant " << c.id << ": " << resp.error
                              << "\n";
                }
                return resp;
            };
            auto direct = [&](serve::Request req) {
                req.tenant = c.id;
                req.id = rid++;
                req.deadline_ms = 30'000; // generous: propagation only
                return check(server.submit(std::move(req)).get());
            };
            auto viaTcp = [&](serve::Request req) {
                req.tenant = c.id;
                req.id = rid++;
                req.deadline_ms = 30'000;
                return check(serve::decodeResponse(
                    serve::tcpRequest("127.0.0.1", tcp.port(),
                                      serve::encodeRequest(req)),
                    ctx->ring()));
            };
            for (size_t r = 0; r < rounds; ++r) {
                serve::Request put;
                put.op = serve::Op::Put;
                put.name = "slot";
                put.cts = {c.ct};
                direct(std::move(put));

                serve::Request get;
                get.op = serve::Op::Get;
                get.name = "slot";
                viaTcp(std::move(get));

                serve::Request add;
                add.op = serve::Op::EvalAdd;
                add.name = "slot";
                add.cts = {c.ct};
                direct(std::move(add));

                serve::Request mul;
                mul.op = serve::Op::EvalMul;
                mul.cts = {c.ct, c.ct};
                viaTcp(std::move(mul));

                serve::Request rot;
                rot.op = serve::Op::Rotate;
                if (starve) // hoisted pair: pins both Galois keys at once
                    rot.steps = {1, 2};
                else
                    rot.steps = {static_cast<int>(1 + (r % 2))};
                rot.cts = {c.ct};
                direct(std::move(rot));
            }
        });
    }
    for (auto& w : workers)
        w.join();
    server.drain();
    const double traffic_ns_per_req =
        requests.load()
            ? std::chrono::duration<double, std::nano>(
                  std::chrono::steady_clock::now() - traffic_t0)
                      .count() /
                  static_cast<double>(requests.load())
            : 0.0;

    // --- assertions -------------------------------------------------------
    int rc = 0;
    const serve::KeyCache::Stats cache = server.keyCacheStats();
    if (failures.load() != 0) {
        std::cerr << "FAIL: " << failures.load() << " of " << requests.load()
                  << " requests failed\n";
        rc = 1;
    }
    if (starve) {
        // Permanent overcommit is the *point*; what must hold is that
        // the governor visibly degraded and every request completed.
        if (cache.overcommits == 0) {
            std::cerr << "FAIL: --starve never overcommitted the cache — "
                         "the run is not exercising degradation\n";
            rc = 1;
        }
        if (telemetry::counter("serve.degrade.stepdown").value() == 0) {
            std::cerr << "FAIL: --starve never stepped the degrade level "
                         "down\n";
            rc = 1;
        }
    } else if (cache.peak_bytes > cache.budget_bytes ||
               cache.overcommits != 0) {
        std::cerr << "FAIL: key cache exceeded its budget (peak "
                  << cache.peak_bytes << " > " << cache.budget_bytes << ", "
                  << cache.overcommits << " overcommits)\n";
        rc = 1;
    }
    if (cache.evictions == 0) {
        std::cerr << "FAIL: budget never forced an eviction — smoke test "
                     "is not exercising the cache\n";
        rc = 1;
    }

    const telemetry::Snapshot snap = telemetry::snapshot();
    const std::string json = telemetry::toJson(snap);
    if (json.find("madfhe.telemetry.v1") == std::string::npos ||
        json.find("serve.latency_ns") == std::string::npos ||
        json.find("serve.deadline_remaining_ns") == std::string::npos ||
        json.find("serve.tenant.1.requests") == std::string::npos) {
        std::cerr << "FAIL: telemetry JSON export is missing serving "
                     "metrics\n";
        rc = 1;
    }
    const u64 expected = static_cast<u64>(tenants) * rounds * 5;
    u64 counted = 0;
    for (const auto& row : snap.counters)
        if (row.name == "serve.requests")
            counted = row.value;
    if (counted != expected) {
        std::cerr << "FAIL: serve.requests=" << counted << ", expected "
                  << expected << "\n";
        rc = 1;
    }

    // --- report -----------------------------------------------------------
    for (const auto& row : snap.histograms) {
        if (row.name == "serve.latency_ns") {
            std::cout << "latency: p50 <= "
                      << row.stats.quantileBound(0.5) / 1000 << " us, p99 <= "
                      << row.stats.quantileBound(0.99) / 1000 << " us over "
                      << row.stats.count << " requests\n";
        } else if (row.name == "serve.deadline_remaining_ns") {
            // Headroom at execution start: how close requests came to
            // their deadline before the evaluator even ran.
            std::cout << "deadline headroom: p50 <= "
                      << row.stats.quantileBound(0.5) / 1'000'000
                      << " ms, p99 <= "
                      << row.stats.quantileBound(0.99) / 1'000'000
                      << " ms over " << row.stats.count << " requests\n";
        }
    }
    std::cout << "resilience: shed "
              << telemetry::counter("serve.shed").value() << ", retries "
              << telemetry::counter("serve.retry").value()
              << ", breaker rejections "
              << telemetry::counter("serve.breaker_open").value()
              << ", degrade stepdowns "
              << telemetry::counter("serve.degrade.stepdown").value()
              << ", restores "
              << telemetry::counter("serve.degrade.restore").value() << "\n";
    for (const auto& row : snap.gauges)
        if (row.name == "serve.degrade_level")
            std::cout << "degrade level at exit: " << row.value << "\n";
    std::cout << "key cache: budget " << cache.budget_bytes << " B, peak "
              << cache.peak_bytes << " B, " << cache.hits << " hits, "
              << cache.misses << " misses, " << cache.evictions
              << " evictions\n";
    std::cout << "batching: coalesced "
              << telemetry::counter("serve.batch.coalesced").value()
              << " of " << requests.load() << " requests into "
              << telemetry::counter("serve.batches").value() << " batches\n";
    if (!out.empty()) {
        const std::vector<telemetry::ServeBenchRow> bench_rows = {
            {starve ? "smoke_mix_starve" : "smoke_mix", tenants,
             traffic_ns_per_req, server.backend().name()},
        };
        const std::vector<std::pair<std::string, std::string>> bench_params =
            {
                {"log_n", std::to_string(params.log_n)},
                {"num_levels", std::to_string(params.num_levels)},
                {"tenants", std::to_string(tenants)},
                {"rounds", std::to_string(rounds)},
                {"starve", starve ? "true" : "false"},
                {"mode", "\"smoke\""},
            };
        if (!telemetry::writeServeBenchJson(out, "serve_smoke", bench_params,
                                            bench_rows, snap)) {
            std::cerr << "FAIL: could not write " << out << "\n";
            rc = 1;
        } else {
            std::cout << "wrote " << out << "\n";
        }
    }
    std::cout << (rc == 0 ? "OK: serving smoke passed\n"
                          : "serving smoke FAILED\n");
    return rc;
}
