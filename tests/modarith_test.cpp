/**
 * @file
 * Unit and property tests for word-sized modular arithmetic.
 */
#include <gtest/gtest.h>

#include "rns/modarith.h"
#include "support/random.h"

namespace madfhe {
namespace {

TEST(Modulus, RejectsEvenAndTiny)
{
    EXPECT_THROW(Modulus(4), std::invalid_argument);
    EXPECT_THROW(Modulus(1), std::invalid_argument);
    EXPECT_THROW(Modulus(1ULL << 62), std::invalid_argument);
}

TEST(Modulus, AddSubNegBasics)
{
    Modulus q(17);
    EXPECT_EQ(q.add(16, 5), 4u);
    EXPECT_EQ(q.sub(3, 5), 15u);
    EXPECT_EQ(q.neg(0), 0u);
    EXPECT_EQ(q.neg(5), 12u);
}

TEST(Modulus, MulMatchesNaive)
{
    Modulus q(0x1FFFFFFFFFE00001ULL); // 61-bit NTT prime
    Prng rng(42);
    for (int i = 0; i < 2000; ++i) {
        u64 a = rng.uniform(q.value());
        u64 b = rng.uniform(q.value());
        u64 expect = static_cast<u64>(
            (static_cast<u128>(a) * b) % q.value());
        EXPECT_EQ(q.mul(a, b), expect);
    }
}

TEST(Modulus, Reduce128RandomAgainstNative)
{
    Modulus q(998244353); // small NTT prime
    Prng rng(7);
    for (int i = 0; i < 2000; ++i) {
        u128 x = (static_cast<u128>(rng.next()) << 64) | rng.next();
        EXPECT_EQ(q.reduce128(x), static_cast<u64>(x % q.value()));
    }
}

TEST(Modulus, ShoupMatchesBarrett)
{
    Modulus q(0x0FFFFFFFFFFC0001ULL);
    ASSERT_TRUE(isPrime(q.value()));
    Prng rng(11);
    for (int i = 0; i < 2000; ++i) {
        u64 a = rng.uniform(q.value());
        u64 w = rng.uniform(q.value());
        u64 pre = q.shoupPrecompute(w);
        EXPECT_EQ(q.mulShoup(a, w, pre), q.mul(a, w));
    }
}

TEST(Modulus, PowAndInverse)
{
    Modulus q(65537);
    EXPECT_EQ(q.pow(3, 0), 1u);
    EXPECT_EQ(q.pow(3, 1), 3u);
    EXPECT_EQ(q.pow(2, 16), 65536u);
    Prng rng(3);
    for (int i = 0; i < 500; ++i) {
        u64 a = 1 + rng.uniform(q.value() - 1);
        u64 inv = q.inverse(a);
        EXPECT_EQ(q.mul(a, inv), 1u);
    }
    EXPECT_THROW(q.inverse(0), std::invalid_argument);
}

TEST(Modulus, SignedRoundTrip)
{
    Modulus q(1000003);
    for (i64 v : {0LL, 1LL, -1LL, 500001LL, -500001LL, 123456789LL,
                  -987654321LL}) {
        u64 r = q.fromSigned(v);
        EXPECT_LT(r, q.value());
        i64 back = q.toSigned(r);
        i64 expect = v % static_cast<i64>(q.value());
        if (expect > static_cast<i64>(q.value() / 2))
            expect -= q.value();
        if (expect < -static_cast<i64>(q.value() / 2))
            expect += q.value();
        EXPECT_EQ(back, expect) << "v=" << v;
    }
}

TEST(IsPrime, KnownValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(998244353));
    EXPECT_FALSE(isPrime(998244353ULL * 3));
    EXPECT_TRUE(isPrime(0x1FFFFFFFFFE00001ULL));
    EXPECT_FALSE(isPrime((1ULL << 61) - 3));
    EXPECT_TRUE(isPrime((1ULL << 61) - 1)); // Mersenne prime M61
    // Carmichael numbers must not fool the test.
    EXPECT_FALSE(isPrime(561));
    EXPECT_FALSE(isPrime(41041));
    EXPECT_FALSE(isPrime(825265));
}

class ModulusSweep : public ::testing::TestWithParam<u64>
{
};

TEST_P(ModulusSweep, FieldAxiomsHold)
{
    Modulus q(GetParam());
    Prng rng(GetParam());
    for (int i = 0; i < 300; ++i) {
        u64 a = rng.uniform(q.value());
        u64 b = rng.uniform(q.value());
        u64 c = rng.uniform(q.value());
        // Commutativity and associativity.
        EXPECT_EQ(q.mul(a, b), q.mul(b, a));
        EXPECT_EQ(q.mul(q.mul(a, b), c), q.mul(a, q.mul(b, c)));
        // Distributivity.
        EXPECT_EQ(q.mul(a, q.add(b, c)), q.add(q.mul(a, b), q.mul(a, c)));
        // Additive inverse.
        EXPECT_EQ(q.add(a, q.neg(a)), 0u);
        // Subtraction consistency.
        EXPECT_EQ(q.sub(a, b), q.add(a, q.neg(b)));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, ModulusSweep,
    ::testing::Values(3ULL, 65537ULL, 998244353ULL, 4293918721ULL,
                      1125899906826241ULL, 0x0FFFFFFFFFFC0001ULL,
                      0x1FFFFFFFFFE00001ULL));

} // namespace
} // namespace madfhe
