/**
 * @file
 * Key-switching internals: Decomp/ModUp/KSKInnerProd/ModDown (Algorithms
 * 1-3), PModUp (Algorithm 5), and the merged ModDown, each checked against
 * its algebraic contract.
 */
#include <gtest/gtest.h>

#include "ckks/stream.h"
#include "support/threadpool.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::maxError;
using test::randomSlots;

class KeySwitchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(KeySwitchTest, DigitCountMatchesBeta)
{
    const auto& ksw = h->eval->keySwitcher();
    for (size_t level = 1; level <= h->ctx->maxLevel(); ++level) {
        RnsPoly x(h->ctx->ring(), h->ctx->ring()->qIndices(level), Rep::Eval);
        auto digits = ksw.decomposeAndRaise(x);
        EXPECT_EQ(digits.size(), h->ctx->numDigits(level))
            << "level " << level;
        for (const auto& d : digits) {
            EXPECT_EQ(d.numLimbs(), level + h->ctx->ring()->numP());
            EXPECT_EQ(d.rep(), Rep::Eval);
        }
    }
}

TEST_F(KeySwitchTest, PModUpThenModDownIsIdentityUpToRounding)
{
    // modDown(pModUp(y)) = y exactly up to the +-1 rounding of the
    // division by P (P * y is exactly divisible, so it is exact here).
    auto v = randomSlots(h->ctx->slots(), 1);
    auto ct = h->encryptSlots(v, 3);
    const auto& ksw = h->eval->keySwitcher();
    RnsPoly lifted = ksw.pModUp(ct.c0);
    RnsPoly back = ksw.modDown(lifted);
    EXPECT_TRUE(back.equals(ct.c0));
}

TEST_F(KeySwitchTest, PModUpPLimbsAreZero)
{
    auto v = randomSlots(h->ctx->slots(), 2);
    auto ct = h->encryptSlots(v, 2);
    RnsPoly lifted = h->eval->keySwitcher().pModUp(ct.c0);
    size_t level = 2;
    for (size_t i = level; i < lifted.numLimbs(); ++i)
        for (size_t c = 0; c < lifted.degree(); ++c)
            ASSERT_EQ(lifted.limb(i)[c], 0u);
}

TEST_F(KeySwitchTest, KeySwitchProducesEncryptionOfXTimesSFrom)
{
    // Build a ksk for a known s_from (= sigma_5(s)) and check
    // u + v*s ~ x * s_from for random x.
    KeyGenerator keygen(h->ctx);
    const u64 t = 5;
    SwitchingKey ksk = keygen.galoisKey(h->sk, t);
    const size_t level = 3;
    auto basis = h->ctx->ring()->qIndices(level);

    // Random "ciphertext part" x, small coefficients to keep the check
    // numeric-friendly.
    Sampler s(99);
    RnsPoly x(h->ctx->ring(), basis, Rep::Coeff);
    x.setFromSigned(s.centeredBinomial(h->ctx->degree()));
    x.toEval();

    auto [u, v] = h->eval->keySwitcher().keySwitch(x, ksk);

    RnsPoly s_q = extractLimbs(h->sk.s, basis);
    RnsPoly s_from = s_q.automorph(t);

    // lhs = u + v*s ; rhs = x * s_from; difference must be tiny.
    RnsPoly lhs = v;
    lhs.mulPointwise(s_q);
    lhs.add(u);
    RnsPoly rhs = x;
    rhs.mulPointwise(s_from);
    lhs.sub(rhs);
    lhs.toCoeff();

    auto err = CkksEncoder(h->ctx).decodeCoefficients(lhs);
    double max_err = 0;
    for (double e : err)
        max_err = std::max(max_err, std::abs(e));
    // Key-switch noise is far below one scale unit.
    EXPECT_LT(max_err, 1e9); // |err| << q_0 ~ 2^45 and << Delta = 2^35
    EXPECT_GT(max_err, 0.0); // but it is not exactly zero (there IS noise)
}

TEST_F(KeySwitchTest, MergedModDownEqualsModDownThenRescale)
{
    // On an exact multiple of P, merged ModDown must equal
    // rescale(modDown(x)) up to the +-1 rounding in each step.
    auto vv = randomSlots(h->ctx->slots(), 3);
    auto ct = h->encryptSlots(vv, 3);
    const auto& ksw = h->eval->keySwitcher();

    RnsPoly raised = ksw.pModUp(ct.c0);
    RnsPoly merged = ksw.modDownMerged(raised);

    RnsPoly down = ksw.modDown(raised);
    // Reference rescale of `down` by its top limb.
    Ciphertext tmp;
    tmp.c0 = down;
    tmp.c1 = down;
    tmp.scale = h->ctx->scale();
    Ciphertext rs = h->eval->rescale(tmp);

    // Compare coefficient-wise: difference at most 1 (rounding).
    RnsPoly diff = merged;
    diff.sub(rs.c0);
    diff.toCoeff();
    for (size_t i = 0; i < diff.numLimbs(); ++i) {
        const Modulus& q = diff.modulus(i);
        for (size_t c = 0; c < diff.degree(); ++c) {
            i64 d = q.toSigned(diff.limb(i)[c]);
            ASSERT_LE(std::abs(d), 1) << "limb " << i << " coeff " << c;
        }
    }
}

TEST_F(KeySwitchTest, InnerProductRejectsTooManyDigits)
{
    KeyGenerator keygen(h->ctx);
    SwitchingKey rlk = keygen.relinKey(h->sk);
    const auto& ksw = h->eval->keySwitcher();
    RnsPoly x(h->ctx->ring(), h->ctx->ring()->qIndices(h->ctx->maxLevel()),
              Rep::Eval);
    auto digits = ksw.decomposeAndRaise(x);
    digits.push_back(digits[0]);
    EXPECT_THROW(ksw.innerProduct(digits, rlk), std::invalid_argument);
}

/** Restore the global pool size when a sweep test exits. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t t)
        : prev(ThreadPool::global().size())
    {
        ThreadPool::setGlobalThreads(t);
    }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(prev); }

  private:
    size_t prev;
};

TEST_F(KeySwitchTest, KeySwitchByteIdenticalAcrossStreamPolicies)
{
    // The tentpole contract: every MADFHE_STREAM policy produces the
    // exact same bytes as the materializing composition, at every level
    // (incl. level 1, where a single digit has no non-own Q limbs) and
    // at every thread count (chunk boundaries shift with the pool size).
    KeyGenerator keygen(h->ctx);
    SwitchingKey ksk = keygen.galoisKey(h->sk, 5);
    const auto& ksw = h->eval->keySwitcher();
    for (size_t level = 1; level <= h->ctx->maxLevel(); ++level) {
        Sampler s(1000 + level);
        RnsPoly x(h->ctx->ring(), h->ctx->ring()->qIndices(level),
                  Rep::Coeff);
        x.setFromSigned(s.centeredBinomial(h->ctx->degree()));
        x.toEval();

        RnsPoly ref_u, ref_v;
        {
            ScopedStreamPolicy off(StreamPolicy::Off);
            auto [u, v] = ksw.keySwitch(x, ksk);
            ref_u = std::move(u);
            ref_v = std::move(v);
        }
        for (StreamPolicy p : kStreamPolicies) {
            for (size_t threads : {size_t{1}, size_t{4}}) {
                ScopedThreads st(threads);
                ScopedStreamPolicy sp(p);
                auto [u, v] = ksw.keySwitch(x, ksk);
                EXPECT_TRUE(u.equals(ref_u))
                    << "u diverges: policy " << streamPolicyName(p)
                    << " level " << level << " threads " << threads;
                EXPECT_TRUE(v.equals(ref_v))
                    << "v diverges: policy " << streamPolicyName(p)
                    << " level " << level << " threads " << threads;
            }
        }
    }
}

TEST_F(KeySwitchTest, KeySwitchMergedByteIdenticalAcrossStreamPolicies)
{
    // Same sweep for the Mult tail (merged ModDown + fused P-lift).
    const auto& ksw = h->eval->keySwitcher();
    for (size_t level = 2; level <= h->ctx->maxLevel(); ++level) {
        Sampler s(2000 + level);
        auto basis = h->ctx->ring()->qIndices(level);
        RnsPoly d2(h->ctx->ring(), basis, Rep::Coeff);
        d2.setFromSigned(s.centeredBinomial(h->ctx->degree()));
        d2.toEval();
        RnsPoly d0(h->ctx->ring(), basis, Rep::Coeff);
        d0.setFromSigned(s.centeredBinomial(h->ctx->degree()));
        d0.toEval();
        RnsPoly d1(h->ctx->ring(), basis, Rep::Coeff);
        d1.setFromSigned(s.centeredBinomial(h->ctx->degree()));
        d1.toEval();

        RnsPoly ref_u, ref_v;
        {
            ScopedStreamPolicy off(StreamPolicy::Off);
            auto [u, v] = ksw.keySwitchMerged(d2, h->rlk, d0, d1);
            ref_u = std::move(u);
            ref_v = std::move(v);
        }
        for (StreamPolicy p : kStreamPolicies) {
            for (size_t threads : {size_t{1}, size_t{4}}) {
                ScopedThreads st(threads);
                ScopedStreamPolicy sp(p);
                auto [u, v] = ksw.keySwitchMerged(d2, h->rlk, d0, d1);
                EXPECT_TRUE(u.equals(ref_u))
                    << "u diverges: policy " << streamPolicyName(p)
                    << " level " << level << " threads " << threads;
                EXPECT_TRUE(v.equals(ref_v))
                    << "v diverges: policy " << streamPolicyName(p)
                    << " level " << level << " threads " << threads;
            }
        }
    }
}

TEST_F(KeySwitchTest, ScopedStreamPolicyRestores)
{
    const StreamPolicy before = streamPolicy();
    {
        ScopedStreamPolicy sp(StreamPolicy::Fuse);
        EXPECT_EQ(streamPolicy(), StreamPolicy::Fuse);
        {
            ScopedStreamPolicy inner(StreamPolicy::Off);
            EXPECT_EQ(streamPolicy(), StreamPolicy::Off);
        }
        EXPECT_EQ(streamPolicy(), StreamPolicy::Fuse);
    }
    EXPECT_EQ(streamPolicy(), before);
}

TEST_F(KeySwitchTest, LowLevelCiphertextUsesFewerDigits)
{
    // At level <= alpha only one digit should be produced, and key
    // switching must still be correct end to end (via Rotate).
    auto v = randomSlots(h->ctx->slots(), 4);
    size_t level = h->ctx->alpha(); // exactly one digit
    auto ct = h->encryptSlots(v, level);
    auto gks = h->makeGaloisKeys({1});
    auto w = h->decryptSlots(h->eval->rotate(ct, 1, gks));
    const size_t slots = h->ctx->slots();
    for (size_t k = 0; k < slots; ++k)
        EXPECT_LT(std::abs(w[k] - v[(k + 1) % slots]), 1e-4);
}

} // namespace
} // namespace madfhe
