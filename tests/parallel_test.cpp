/**
 * @file
 * Thread-pool unit tests plus the limb-parallel determinism contract:
 * every kernel must produce byte-identical polynomials AND a
 * bit-identical trace/replayed-DRAM accounting whether it runs on one
 * thread or four. The parallel partitioning is purely an execution-order
 * change — results and the memtrace observability layer may not drift
 * with MADFHE_THREADS.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "boot/bootstrapper.h"
#include "ckks/keyswitch.h"
#include "memtrace/crossval.h"
#include "memtrace/replay.h"
#include "support/parallel.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;

TEST(ThreadPoolTest, RunCoversEachIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits)
        h = 0;
    pool.run(hits.size(), [&](size_t i) { hits[i]++; });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, PropagatesTaskException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.run(16,
                 [&](size_t i) {
                     if (i == 7)
                         throw std::runtime_error("boom");
                 }),
        std::runtime_error);
    // Pool stays usable after a throwing run.
    std::atomic<int> count{0};
    pool.run(8, [&](size_t) { count++; });
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, FirstExceptionWinsDeterministically)
{
    // Several tasks throw; the pool must always rethrow the exception
    // from the lowest task index, independent of the thread count and
    // of which worker happened to reach its task first.
    for (size_t threads : {1u, 2u, 4u, 8u}) {
        ThreadPool pool(threads);
        for (int round = 0; round < 8; ++round) {
            try {
                pool.run(64, [&](size_t i) {
                    if (i == 11 || i == 12 || i == 40 || i == 63)
                        throw std::runtime_error("task " + std::to_string(i));
                });
                FAIL() << "run() must rethrow";
            } catch (const std::runtime_error& e) {
                EXPECT_STREQ(e.what(), "task 11")
                    << "threads=" << threads << " round=" << round;
            }
        }
    }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughNestedParallelFor)
{
    ThreadPool::setGlobalThreads(4);
    std::atomic<int> outer_started{0};
    try {
        parallelFor(4, [&](size_t i) {
            outer_started++;
            parallelFor(8, [&](size_t j) {
                if (i == 2 && j == 5)
                    throw std::runtime_error("nested boom");
            });
        });
        FAIL() << "nested exception must reach the caller";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "nested boom");
    }
    EXPECT_EQ(outer_started.load(), 4);
    // The global pool stays usable after the nested throw.
    std::atomic<int> count{0};
    parallelFor(16, [&](size_t) { count++; });
    EXPECT_EQ(count.load(), 16);
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
}

TEST(ThreadPoolTest, UsableAfterRepeatedThrowsAtAnyThreadCount)
{
    for (size_t threads : {1u, 2u, 4u}) {
        ThreadPool pool(threads);
        for (int round = 0; round < 4; ++round) {
            EXPECT_THROW(pool.run(32,
                                  [&](size_t i) {
                                      if (i % 3 == 0)
                                          throw std::runtime_error("boom");
                                  }),
                         std::runtime_error);
            std::atomic<int> count{0};
            pool.run(32, [&](size_t) { count++; });
            EXPECT_EQ(count.load(), 32) << "threads=" << threads;
        }
    }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline)
{
    ThreadPool::setGlobalThreads(4);
    std::atomic<int> outer{0}, inner{0};
    parallelFor(4, [&](size_t) {
        EXPECT_TRUE(ThreadPool::inTask());
        outer++;
        parallelFor(4, [&](size_t) { inner++; });
    });
    EXPECT_EQ(outer.load(), 4);
    EXPECT_EQ(inner.load(), 16);
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
}

TEST(ThreadPoolTest, EnvOverrideControlsDefault)
{
    ::setenv("MADFHE_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreads(), 3u);
    ::setenv("MADFHE_THREADS", "0", 1); // invalid -> hardware default
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
    ::unsetenv("MADFHE_THREADS");
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

TEST(ParallelForTest, RangeChunksPartitionTheIndexSpace)
{
    ThreadPool::setGlobalThreads(4);
    std::vector<std::atomic<int>> hits(1001);
    for (auto& h : hits)
        h = 0;
    parallelForRange(hits.size(), [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            hits[i]++;
    });
    for (auto& h : hits)
        EXPECT_EQ(h.load(), 1);
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
}

/** Fixture: one small CKKS stack; ops re-run at 1 and 4 threads. */
class ParallelDeterminismTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        harness = new CkksHarness(memtrace::crossvalParams());
        gks = new GaloisKeys(harness->makeGaloisKeys({1}));
    }
    static void
    TearDownTestSuite()
    {
        delete gks;
        delete harness;
        gks = nullptr;
        harness = nullptr;
    }
    void TearDown() override
    {
        ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
    }

    /** Run `op` on `threads` pool threads and return its result. */
    template <typename Op>
    auto
    runWith(size_t threads, Op&& op)
    {
        ThreadPool::setGlobalThreads(threads);
        return op();
    }

    /** Run `op` under tracing and return the captured stream. */
    template <typename Op>
    memtrace::Trace
    traceWith(size_t threads, Op&& op)
    {
        ThreadPool::setGlobalThreads(threads);
        auto& sink = memtrace::TraceSink::instance();
        sink.clear();
        sink.enable();
        op();
        sink.disable();
        memtrace::Trace t = sink.snapshot();
        sink.clear();
        return t;
    }

    static void
    expectIdenticalTraces(const memtrace::Trace& a, const memtrace::Trace& b)
    {
        ASSERT_EQ(a.events.size(), b.events.size());
        for (size_t i = 0; i < a.events.size(); ++i) {
            const auto& x = a.events[i];
            const auto& y = b.events[i];
            ASSERT_EQ(x.addr, y.addr) << "event " << i;
            ASSERT_EQ(x.bytes, y.bytes) << "event " << i;
            ASSERT_EQ(x.kind, y.kind) << "event " << i;
            ASSERT_EQ(x.cls, y.cls) << "event " << i;
        }
        EXPECT_EQ(a.scope_names, b.scope_names);
        // And the replayed DRAM accounting agrees byte for byte.
        auto rc = memtrace::scaledReplayConfig(
            memtrace::crossvalParams(), 32, memtrace::ReplayConfig::Policy::Lru);
        auto ra = memtrace::replay(a, rc);
        auto rb = memtrace::replay(b, rc);
        EXPECT_EQ(ra.total.ct_read, rb.total.ct_read);
        EXPECT_EQ(ra.total.ct_write, rb.total.ct_write);
        EXPECT_EQ(ra.total.key_read, rb.total.key_read);
        EXPECT_EQ(ra.total.pt_read, rb.total.pt_read);
    }

    static CkksHarness* harness;
    static GaloisKeys* gks;
};

CkksHarness* ParallelDeterminismTest::harness = nullptr;
GaloisKeys* ParallelDeterminismTest::gks = nullptr;

TEST_F(ParallelDeterminismTest, MultIsByteIdenticalAcrossThreadCounts)
{
    auto& h = *harness;
    auto a = h.encryptSlots(test::randomSlots(h.ctx->slots(), 21),
                            h.ctx->maxLevel());
    auto b = h.encryptSlots(test::randomSlots(h.ctx->slots(), 22),
                            h.ctx->maxLevel());
    auto mul = [&] { return h.eval->mul(a, b, h.rlk); };
    Ciphertext serial = runWith(1, mul);
    Ciphertext parallel = runWith(4, mul);
    EXPECT_TRUE(serial.c0.equals(parallel.c0));
    EXPECT_TRUE(serial.c1.equals(parallel.c1));
    expectIdenticalTraces(traceWith(1, mul), traceWith(4, mul));
}

TEST_F(ParallelDeterminismTest, RotateIsByteIdenticalAcrossThreadCounts)
{
    auto& h = *harness;
    auto a = h.encryptSlots(test::randomSlots(h.ctx->slots(), 23),
                            h.ctx->maxLevel());
    auto rot = [&] { return h.eval->rotate(a, 1, *gks); };
    Ciphertext serial = runWith(1, rot);
    Ciphertext parallel = runWith(4, rot);
    EXPECT_TRUE(serial.c0.equals(parallel.c0));
    EXPECT_TRUE(serial.c1.equals(parallel.c1));
    expectIdenticalTraces(traceWith(1, rot), traceWith(4, rot));
}

TEST_F(ParallelDeterminismTest, KeySwitchIsByteIdenticalAcrossThreadCounts)
{
    auto& h = *harness;
    auto a = h.encryptSlots(test::randomSlots(h.ctx->slots(), 24),
                            h.ctx->maxLevel());
    KeySwitcher ksw(h.ctx);
    auto ks = [&] { return ksw.keySwitch(a.c1, h.rlk); };
    auto serial = runWith(1, ks);
    auto parallel = runWith(4, ks);
    EXPECT_TRUE(serial.first.equals(parallel.first));
    EXPECT_TRUE(serial.second.equals(parallel.second));
    expectIdenticalTraces(traceWith(1, ks), traceWith(4, ks));
}

TEST_F(ParallelDeterminismTest, BootstrapSlotIsByteIdenticalAcrossThreadCounts)
{
    CkksParams p = CkksParams::bootstrapToy();
    p.log_n = 11;
    p.hamming_weight = 16;
    CkksHarness h(p);
    BootstrapParams bp;
    bp.ctos_iters = 3;
    bp.stoc_iters = 3;
    bp.sine_degree = 71;
    bp.k_bound = 8.0;
    Bootstrapper boot(h.ctx, bp);
    KeyGenerator keygen(h.ctx);
    GaloisKeys boot_gks =
        keygen.galoisKeys(h.sk, boot.requiredRotations(), /*conj=*/true);

    auto v = test::randomSlots(h.ctx->slots(), 25);
    for (auto& z : v)
        z *= 0.5;
    auto ct = h.encryptSlots(v, 1);
    auto bs = [&] {
        return boot.bootstrap(*h.eval, *h.encoder, ct, boot_gks, h.rlk);
    };
    Ciphertext serial = runWith(1, bs);
    Ciphertext parallel = runWith(4, bs);
    EXPECT_TRUE(serial.c0.equals(parallel.c0));
    EXPECT_TRUE(serial.c1.equals(parallel.c1));
    expectIdenticalTraces(traceWith(1, bs), traceWith(4, bs));
}

} // namespace
} // namespace madfhe
