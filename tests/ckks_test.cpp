/**
 * @file
 * End-to-end CKKS scheme tests: every Table 2 primitive against its
 * plaintext reference, scale/level bookkeeping, and equivalence of the
 * MAD algorithmic variants (merged ModDown, hoisting) with the naive
 * implementations.
 */
#include <gtest/gtest.h>

#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::maxError;
using test::randomSlots;

class CkksTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(CkksTest, EncryptDecryptRoundTrip)
{
    auto v = randomSlots(h->ctx->slots(), 1);
    auto ct = h->encryptSlots(v, h->ctx->maxLevel());
    auto w = h->decryptSlots(ct);
    EXPECT_LT(maxError(v, w), 1e-5);
}

TEST_F(CkksTest, SymmetricEncryption)
{
    auto v = randomSlots(h->ctx->slots(), 2);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 3);
    Ciphertext ct = h->encryptor->encryptSymmetric(pt, h->sk);
    EXPECT_LT(maxError(v, h->decryptSlots(ct)), 1e-5);
}

TEST_F(CkksTest, EncryptZero)
{
    Ciphertext ct = h->encryptor->encryptZero(2, h->ctx->scale());
    auto w = h->decryptSlots(ct);
    for (auto z : w)
        EXPECT_LT(std::abs(z), 1e-5);
}

TEST_F(CkksTest, AddSubNegate)
{
    auto a = randomSlots(h->ctx->slots(), 3);
    auto b = randomSlots(h->ctx->slots(), 4);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);

    auto sum = h->decryptSlots(h->eval->add(ca, cb));
    auto diff = h->decryptSlots(h->eval->sub(ca, cb));
    auto neg = h->decryptSlots(h->eval->negate(ca));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_LT(std::abs(sum[i] - (a[i] + b[i])), 1e-5);
        EXPECT_LT(std::abs(diff[i] - (a[i] - b[i])), 1e-5);
        EXPECT_LT(std::abs(neg[i] + a[i]), 1e-5);
    }
}

TEST_F(CkksTest, PtAddPtSub)
{
    auto a = randomSlots(h->ctx->slots(), 5);
    auto b = randomSlots(h->ctx->slots(), 6);
    auto ca = h->encryptSlots(a, 2);
    Plaintext pb = h->encoder->encode(b, ca.scale, 2);

    auto sum = h->decryptSlots(h->eval->addPlain(ca, pb));
    auto diff = h->decryptSlots(h->eval->subPlain(ca, pb));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_LT(std::abs(sum[i] - (a[i] + b[i])), 1e-5);
        EXPECT_LT(std::abs(diff[i] - (a[i] - b[i])), 1e-5);
    }
}

TEST_F(CkksTest, PtMultWithRescale)
{
    auto a = randomSlots(h->ctx->slots(), 7);
    auto b = randomSlots(h->ctx->slots(), 8);
    auto ca = h->encryptSlots(a, 3);
    Plaintext pb = h->encoder->encode(b, h->ctx->scale(), 3);
    Ciphertext prod = h->eval->mulPlainRescale(ca, pb);
    EXPECT_EQ(prod.level(), 2u);
    auto w = h->decryptSlots(prod);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - a[i] * b[i]), 1e-4);
}

TEST_F(CkksTest, MultEncryptedWithMergedModDown)
{
    auto a = randomSlots(h->ctx->slots(), 9);
    auto b = randomSlots(h->ctx->slots(), 10);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    Ciphertext prod = h->eval->mul(ca, cb, h->rlk);
    EXPECT_EQ(prod.level(), 2u);
    auto w = h->decryptSlots(prod);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - a[i] * b[i]), 1e-4);
}

TEST_F(CkksTest, MergedAndUnmergedMultAgree)
{
    CkksHarness plain_h(CkksParams::unitTest(),
                        EvalOptions{.merged_moddown = false});
    auto a = randomSlots(h->ctx->slots(), 11);
    auto b = randomSlots(h->ctx->slots(), 12);

    auto ca = h->encryptSlots(a, 4);
    auto cb = h->encryptSlots(b, 4);
    auto merged = h->decryptSlots(h->eval->mul(ca, cb, h->rlk));

    Evaluator unmerged_eval(h->ctx, EvalOptions{.merged_moddown = false});
    auto unmerged_ct = unmerged_eval.mul(ca, cb, h->rlk);
    auto unmerged = h->decryptSlots(unmerged_ct);

    // Same inputs, same keys: both variants must agree to within noise.
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(merged[i] - unmerged[i]), 1e-5);
}

TEST_F(CkksTest, SquareMatchesMul)
{
    auto a = randomSlots(h->ctx->slots(), 13);
    auto ca = h->encryptSlots(a, 3);
    auto w = h->decryptSlots(h->eval->square(ca, h->rlk));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - a[i] * a[i]), 1e-4);
}

TEST_F(CkksTest, DepthChainUsesAllLevels)
{
    // x^(2^depth) by repeated squaring until one limb remains.
    const size_t slots = h->ctx->slots();
    std::vector<std::complex<double>> a(slots, {0.9, 0.0});
    auto ct = h->encryptSlots(a, h->ctx->maxLevel());
    double expect = 0.9;
    while (ct.level() >= 2) {
        ct = h->eval->square(ct, h->rlk);
        expect = expect * expect;
    }
    auto w = h->decryptSlots(ct);
    for (auto z : w)
        EXPECT_NEAR(z.real(), expect, 5e-3);
}

TEST_F(CkksTest, RescaleTracksScale)
{
    auto a = randomSlots(h->ctx->slots(), 14);
    auto ca = h->encryptSlots(a, 3);
    Plaintext pb = h->encoder->encode(a, h->ctx->scale(), 3);
    Ciphertext prod = h->eval->mulPlain(ca, pb);
    double scale_before = prod.scale;
    Ciphertext rs = h->eval->rescale(prod);
    EXPECT_EQ(rs.level(), 2u);
    double q_top = static_cast<double>(h->ctx->qValue(2));
    EXPECT_NEAR(rs.scale, scale_before / q_top, scale_before * 1e-12);
}

TEST_F(CkksTest, DropToLevelPreservesValues)
{
    auto a = randomSlots(h->ctx->slots(), 15);
    auto ca = h->encryptSlots(a, 4);
    Ciphertext dropped = h->eval->dropToLevel(ca, 2);
    EXPECT_EQ(dropped.level(), 2u);
    EXPECT_DOUBLE_EQ(dropped.scale, ca.scale);
    EXPECT_LT(maxError(a, h->decryptSlots(dropped)), 1e-5);
}

TEST_F(CkksTest, RotateShiftsSlots)
{
    const size_t slots = h->ctx->slots();
    auto a = randomSlots(slots, 16);
    auto ca = h->encryptSlots(a, 3);
    for (int step : {1, 5, -3}) {
        auto gks = h->makeGaloisKeys({step});
        auto w = h->decryptSlots(h->eval->rotate(ca, step, gks));
        for (size_t k = 0; k < slots; ++k) {
            size_t src = (k + slots + static_cast<size_t>(
                              (step % int(slots) + int(slots)))) % slots;
            EXPECT_LT(std::abs(w[k] - a[src]), 1e-4)
                << "step " << step << " slot " << k;
        }
    }
}

TEST_F(CkksTest, RotateByZeroIsIdentity)
{
    auto a = randomSlots(h->ctx->slots(), 17);
    auto ca = h->encryptSlots(a, 2);
    GaloisKeys empty;
    auto w = h->decryptSlots(h->eval->rotate(ca, 0, empty));
    EXPECT_LT(maxError(a, w), 1e-5);
}

TEST_F(CkksTest, ConjugateConjugatesSlots)
{
    auto a = randomSlots(h->ctx->slots(), 18);
    auto ca = h->encryptSlots(a, 3);
    auto gks = h->makeGaloisKeys({}, /*conj=*/true);
    auto w = h->decryptSlots(h->eval->conjugate(ca, gks));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - std::conj(a[i])), 1e-4);
}

TEST_F(CkksTest, HoistedRotationsMatchRegular)
{
    auto a = randomSlots(h->ctx->slots(), 19);
    auto ca = h->encryptSlots(a, 3);
    std::vector<int> steps = {0, 1, 2, 7};
    auto gks = h->makeGaloisKeys(steps);
    auto hoisted = h->eval->rotateHoisted(ca, steps, gks);
    ASSERT_EQ(hoisted.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
        auto expect = h->decryptSlots(h->eval->rotate(ca, steps[i], gks));
        auto got = h->decryptSlots(hoisted[i]);
        EXPECT_LT(maxError(expect, got), 1e-5) << "step " << steps[i];
    }
}

TEST_F(CkksTest, RaisedRotationMatchesAfterModDown)
{
    auto a = randomSlots(h->ctx->slots(), 20);
    auto ca = h->encryptSlots(a, 3);
    auto gks = h->makeGaloisKeys({4});
    auto digits = h->eval->keySwitcher().decomposeAndRaise(ca.c1);
    RaisedCiphertext raised = h->eval->rotateRaised(digits, ca, 4, gks);
    Ciphertext ct = h->eval->modDownPair(raised);
    auto expect = h->decryptSlots(h->eval->rotate(ca, 4, gks));
    EXPECT_LT(maxError(expect, h->decryptSlots(ct)), 1e-5);
}

TEST_F(CkksTest, RaisedLinearCombination)
{
    // Accumulating plaintext products in the raised basis and ModDown-ing
    // once equals doing each product separately (ModDown hoisting).
    const size_t slots = h->ctx->slots();
    auto a = randomSlots(slots, 21);
    auto ca = h->encryptSlots(a, 3);
    std::vector<int> steps = {1, 3};
    auto gks = h->makeGaloisKeys(steps);
    auto b1 = randomSlots(slots, 22);
    auto b2 = randomSlots(slots, 23);

    auto digits = h->eval->keySwitcher().decomposeAndRaise(ca.c1);
    RaisedCiphertext r1 = h->eval->rotateRaised(digits, ca, 1, gks);
    RaisedCiphertext r2 = h->eval->rotateRaised(digits, ca, 3, gks);
    Plaintext p1 = h->encoder->encodeRaised(b1, h->ctx->scale(), 3);
    Plaintext p2 = h->encoder->encodeRaised(b2, h->ctx->scale(), 3);
    h->eval->mulPlainRaised(r1, p1);
    h->eval->mulPlainRaised(r2, p2);
    h->eval->addRaised(r1, r2);
    Ciphertext got = h->eval->rescale(h->eval->modDownPair(r1));

    auto w = h->decryptSlots(got);
    for (size_t k = 0; k < slots; ++k) {
        auto expect = b1[k] * a[(k + 1) % slots] + b2[k] * a[(k + 3) % slots];
        EXPECT_LT(std::abs(w[k] - expect), 1e-4) << "slot " << k;
    }
}

TEST_F(CkksTest, MulScalarRescale)
{
    auto a = randomSlots(h->ctx->slots(), 24);
    auto ca = h->encryptSlots(a, 3);
    Ciphertext scaled = h->eval->mulScalarRescale(ca, 0.375);
    EXPECT_EQ(scaled.level(), 2u);
    EXPECT_NEAR(scaled.scale, ca.scale, ca.scale * 1e-9);
    auto w = h->decryptSlots(scaled);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - 0.375 * a[i]), 1e-4);
}

TEST_F(CkksTest, AddScalar)
{
    auto a = randomSlots(h->ctx->slots(), 25);
    auto ca = h->encryptSlots(a, 2);
    auto w = h->decryptSlots(h->eval->addScalar(ca, 1.5, *h->encoder));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - (a[i] + 1.5)), 1e-4);
}


TEST_F(CkksTest, MulImaginaryMultipliesSlotsByI)
{
    auto a = randomSlots(h->ctx->slots(), 27);
    auto ca = h->encryptSlots(a, 2);
    Ciphertext rotated = h->eval->mulImaginary(ca);
    EXPECT_EQ(rotated.level(), ca.level());
    EXPECT_DOUBLE_EQ(rotated.scale, ca.scale);
    auto w = h->decryptSlots(rotated);
    const std::complex<double> i_unit{0.0, 1.0};
    for (size_t k = 0; k < a.size(); ++k)
        EXPECT_LT(std::abs(w[k] - i_unit * a[k]), 1e-4);
    // Four applications are the identity.
    Ciphertext back = h->eval->mulImaginary(h->eval->mulImaginary(
        h->eval->mulImaginary(rotated)));
    EXPECT_LT(test::maxError(a, h->decryptSlots(back)), 1e-4);
}

TEST_F(CkksTest, MulMonomialMatchesEncoderSemantics)
{
    // Multiplying by x^p scales slot j by zeta^(p * 5^j); check against
    // an explicit plaintext computation through the encoder.
    auto a = randomSlots(h->ctx->slots(), 28);
    auto ca = h->encryptSlots(a, 2);
    const size_t p = 3;
    Ciphertext mono = h->eval->mulMonomial(ca, p);
    auto w = h->decryptSlots(mono);

    const size_t big_n = 2 * h->ctx->degree();
    const double pi = std::acos(-1.0);
    u64 pow5 = 1;
    for (size_t j = 0; j < a.size(); ++j) {
        double angle = 2.0 * pi * static_cast<double>(p) *
                       static_cast<double>(pow5) /
                       static_cast<double>(big_n);
        std::complex<double> zeta{std::cos(angle), std::sin(angle)};
        EXPECT_LT(std::abs(w[j] - zeta * a[j]), 1e-4) << "slot " << j;
        pow5 = (pow5 * 5) % big_n;
    }
}

TEST_F(CkksTest, MismatchedShapesRejected)
{
    auto a = randomSlots(h->ctx->slots(), 26);
    auto c3 = h->encryptSlots(a, 3);
    auto c2 = h->encryptSlots(a, 2);
    EXPECT_THROW(h->eval->add(c3, c2), std::invalid_argument);

    Ciphertext bad_scale = c3;
    bad_scale.scale *= 2.0;
    EXPECT_THROW(h->eval->add(c3, bad_scale), std::invalid_argument);
}

class CkksParamSweep : public ::testing::TestWithParam<CkksParams>
{
};

TEST_P(CkksParamSweep, MulAndRotateAcrossParams)
{
    CkksHarness h(GetParam());
    const size_t slots = h.ctx->slots();
    auto a = randomSlots(slots, 31);
    auto b = randomSlots(slots, 32);
    auto ca = h.encryptSlots(a, h.ctx->maxLevel());
    auto cb = h.encryptSlots(b, h.ctx->maxLevel());
    auto prod = h.decryptSlots(h.eval->mul(ca, cb, h.rlk));
    for (size_t i = 0; i < slots; ++i)
        EXPECT_LT(std::abs(prod[i] - a[i] * b[i]), 1e-3);

    auto gks = h.makeGaloisKeys({2});
    auto rot = h.decryptSlots(h.eval->rotate(ca, 2, gks));
    for (size_t k = 0; k < slots; ++k)
        EXPECT_LT(std::abs(rot[k] - a[(k + 2) % slots]), 1e-3);
}

static CkksParams
sweepParams(unsigned log_n, size_t levels, size_t dnum)
{
    CkksParams p = CkksParams::unitTest();
    p.log_n = log_n;
    p.num_levels = levels;
    p.dnum = dnum;
    return p;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CkksParamSweep,
    ::testing::Values(sweepParams(10, 2, 1), sweepParams(10, 4, 2),
                      sweepParams(10, 5, 3), sweepParams(11, 6, 2),
                      sweepParams(12, 4, 4)));

} // namespace
} // namespace madfhe
