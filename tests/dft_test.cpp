/**
 * @file
 * DFT factorization tests: the grouped butterfly factors must reproduce
 * the dense special DFT matrix E (and its inverse) exactly, including the
 * bit-reversal order contract between CoeffToSlot and SlotToCoeff.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "boot/dft.h"
#include "support/random.h"

namespace madfhe {
namespace {

std::vector<std::complex<double>>
randomVec(size_t n, u64 seed)
{
    Prng rng(seed);
    std::vector<std::complex<double>> v(n);
    for (auto& z : v)
        z = {2 * rng.uniformReal() - 1, 2 * rng.uniformReal() - 1};
    return v;
}

double
maxDiff(const std::vector<std::complex<double>>& a,
        const std::vector<std::complex<double>>& b)
{
    double m = 0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

std::vector<std::complex<double>>
applyFactors(const std::vector<DiagonalMap>& factors,
             std::vector<std::complex<double>> x)
{
    for (const auto& f : factors)
        x = applyDiagonalMap(f, x);
    return x;
}

std::vector<std::complex<double>>
denseApply(const std::vector<std::vector<std::complex<double>>>& m,
           const std::vector<std::complex<double>>& x)
{
    std::vector<std::complex<double>> y(x.size(), {0, 0});
    for (size_t j = 0; j < x.size(); ++j)
        for (size_t k = 0; k < x.size(); ++k)
            y[j] += m[j][k] * x[k];
    return y;
}

TEST(Dft, ComposeMatchesSequentialApplication)
{
    const size_t n = 16;
    auto f1 = slotToCoeffFactors(n, 4); // 4 single-stage factors
    auto x = randomVec(n, 1);
    auto seq = applyDiagonalMap(f1[1], applyDiagonalMap(f1[0], x));
    auto composed = composeDiagonalMaps(f1[1], f1[0], n);
    EXPECT_LT(maxDiff(applyDiagonalMap(composed, x), seq), 1e-12);
}

TEST(Dft, SlotToCoeffFactorsEqualDenseE)
{
    const size_t n = 32;
    auto e = specialDftMatrix(n);
    auto factors = slotToCoeffFactors(n, 5); // log2(32) stages, one each
    auto w = randomVec(n, 2);
    // Factors expect bit-reversed input.
    auto got = applyFactors(factors, bitReverse(w));
    auto expect = denseApply(e, w);
    EXPECT_LT(maxDiff(got, expect), 1e-9);
}

TEST(Dft, GroupedFactorsEqualUngrouped)
{
    const size_t n = 64;
    auto w = randomVec(n, 3);
    auto fine = applyFactors(slotToCoeffFactors(n, 6), bitReverse(w));
    for (size_t iters : {1u, 2u, 3u}) {
        auto coarse =
            applyFactors(slotToCoeffFactors(n, iters), bitReverse(w));
        EXPECT_LT(maxDiff(fine, coarse), 1e-9) << "iters " << iters;
    }
}

TEST(Dft, CoeffToSlotInvertsSlotToCoeff)
{
    const size_t n = 32;
    auto w = randomVec(n, 4);
    auto e = specialDftMatrix(n);
    auto z = denseApply(e, w);
    // CtoS(z) should equal bitrev(w).
    auto got = applyFactors(coeffToSlotFactors(n, 3), z);
    EXPECT_LT(maxDiff(got, bitReverse(w)), 1e-9);
}

TEST(Dft, RoundTripWithScaleFactors)
{
    const size_t n = 16;
    const double c = 0.015625, cinv = 64.0;
    auto w = randomVec(n, 5);
    auto e = specialDftMatrix(n);
    auto z = denseApply(e, w);
    auto mid = applyFactors(coeffToSlotFactors(n, 2, c), z);
    auto back = applyFactors(slotToCoeffFactors(n, 2, cinv), mid);
    EXPECT_LT(maxDiff(back, z), 1e-9);
}

TEST(Dft, FactorDiagonalCountsStayCompact)
{
    // Grouping g radix-2 stages yields at most 2^(g+1) - 1 diagonals.
    const size_t n = 256; // 8 stages
    for (size_t iters : {2u, 4u, 8u}) {
        auto factors = slotToCoeffFactors(n, iters);
        size_t per_group = 8 / iters;
        size_t bound = (size_t(2) << per_group) - 1;
        for (const auto& f : factors)
            EXPECT_LE(f.size(), bound) << "iters " << iters;
    }
}

TEST(Dft, RejectsBadIterCounts)
{
    EXPECT_THROW(slotToCoeffFactors(16, 0), std::invalid_argument);
    EXPECT_THROW(slotToCoeffFactors(16, 5), std::invalid_argument);
    EXPECT_THROW(slotToCoeffFactors(17, 2), std::invalid_argument);
}

class DftSweep : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(DftSweep, FactorizationIsExactAcrossShapes)
{
    auto [logn, iters] = GetParam();
    const size_t n = size_t(1) << logn;
    if (iters > logn)
        GTEST_SKIP();
    auto w = randomVec(n, logn * 10 + iters);
    auto expect = denseApply(specialDftMatrix(n), w);
    auto got = applyFactors(slotToCoeffFactors(n, iters), bitReverse(w));
    EXPECT_LT(maxDiff(got, expect), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, DftSweep,
    ::testing::Combine(::testing::Values(size_t(3), size_t(5), size_t(7)),
                       ::testing::Values(size_t(1), size_t(2), size_t(3),
                                         size_t(5))));

} // namespace
} // namespace madfhe
