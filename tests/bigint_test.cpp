/**
 * @file
 * BigUint tests: arithmetic identities and the CRT-composition use case.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "rns/modarith.h"
#include "support/bigint.h"
#include "support/random.h"

namespace madfhe {
namespace {

TEST(BigUint, ConstructionAndZero)
{
    BigUint z;
    EXPECT_TRUE(z.isZero());
    BigUint one(1);
    EXPECT_FALSE(one.isZero());
    EXPECT_EQ(one.word(0), 1u);
    BigUint from_zero(0);
    EXPECT_TRUE(from_zero.isZero());
}

TEST(BigUint, AddCarriesAcrossWords)
{
    BigUint a(~0ULL);
    BigUint b(1);
    a.add(b);
    EXPECT_EQ(a.wordCount(), 2u);
    EXPECT_EQ(a.word(0), 0u);
    EXPECT_EQ(a.word(1), 1u);
}

TEST(BigUint, SubBorrowsAndNormalizes)
{
    BigUint a(~0ULL);
    a.add(BigUint(1)); // 2^64
    a.sub(BigUint(1)); // 2^64 - 1
    EXPECT_EQ(a.wordCount(), 1u);
    EXPECT_EQ(a.word(0), ~0ULL);
    BigUint b(5);
    b.sub(BigUint(5));
    EXPECT_TRUE(b.isZero());
}

TEST(BigUint, SubUnderflowThrows)
{
    BigUint a(3);
    EXPECT_THROW(a.sub(BigUint(4)), std::logic_error);
}

TEST(BigUint, MulWordAndDivModRoundTrip)
{
    Prng rng(1);
    for (int i = 0; i < 200; ++i) {
        u64 base = rng.next();
        u64 m = rng.next() | 1;
        BigUint a(base);
        a.mulWord(m);
        a.add(BigUint(7));
        BigUint b = a;
        u64 rem = b.divModWord(m);
        // a = base*m + 7, so a/m == base when 7 < m, rem == 7.
        if (m > 7) {
            EXPECT_EQ(rem, 7u);
            EXPECT_EQ(b.word(0), base);
        }
    }
}

TEST(BigUint, ModWordMatchesDivMod)
{
    Prng rng(2);
    for (int i = 0; i < 100; ++i) {
        BigUint a(rng.next());
        a.mulWord(rng.next() | 1);
        a.add(BigUint(rng.next()));
        u64 d = (rng.next() | 1);
        BigUint b = a;
        EXPECT_EQ(a.modWord(d), b.divModWord(d));
    }
}

TEST(BigUint, CompareOrdersCorrectly)
{
    BigUint small(5);
    BigUint big(7);
    BigUint wide(1);
    wide.mulWord(~0ULL);
    wide.mulWord(~0ULL);
    EXPECT_LT(small.compare(big), 0);
    EXPECT_GT(big.compare(small), 0);
    EXPECT_EQ(small.compare(BigUint(5)), 0);
    EXPECT_LT(big.compare(wide), 0);
}

TEST(BigUint, ToDoubleAndLog2)
{
    BigUint a(1);
    for (int i = 0; i < 3; ++i)
        a.mulWord(1ULL << 40); // 2^120
    EXPECT_NEAR(a.log2(), 120.0, 1e-9);
    EXPECT_NEAR(a.toDouble(), std::pow(2.0, 120.0), std::pow(2.0, 100.0));
}

TEST(BigUint, ProductOfFactors)
{
    std::vector<u64> factors = {3, 5, 7, 11};
    BigUint p = BigUint::product(factors);
    EXPECT_EQ(p.word(0), 1155u);
}

TEST(BigUint, CrtCompositionRecoversValue)
{
    // Value v < q1*q2*q3 recovered from residues via Garner-free direct
    // composition: sum_i ((v_i * qt_i) mod q_i) * qs_i - k*Q.
    const u64 q1 = 998244353, q2 = 985661441, q3 = 976224257;
    BigUint bigq = BigUint::product({q1, q2, q3});
    Prng rng(3);
    for (int t = 0; t < 50; ++t) {
        u64 v64 = rng.next() >> 8;
        BigUint v(v64);

        Modulus m1(q1), m2(q2), m3(q3);
        u64 r1 = v.modWord(q1), r2 = v.modWord(q2), r3 = v.modWord(q3);
        // Compose using Q/q_i and inverses.
        BigUint acc;
        struct Part { const Modulus* m; u64 r; u64 other1, other2; };
        Part parts[3] = {{&m1, r1, q2, q3}, {&m2, r2, q1, q3},
                         {&m3, r3, q1, q2}};
        for (auto& p : parts) {
            u64 qstar_mod = p.m->mul(p.m->reduce(p.other1),
                                     p.m->reduce(p.other2));
            u64 qtilde = p.m->inverse(qstar_mod);
            u64 scaled = p.m->mul(p.r, qtilde);
            BigUint qs = BigUint::product({p.other1, p.other2});
            acc.addMulWord(qs, scaled);
        }
        while (!(acc < bigq))
            acc.sub(bigq);
        EXPECT_EQ(acc.word(0), v64);
        EXPECT_EQ(acc.wordCount(), v64 ? 1u : 0u);
    }
}

} // namespace
} // namespace madfhe
