/**
 * @file
 * Tests for the resilience primitives (support/resilience.h): monotonic
 * deadlines, retry policy determinism, and the circuit breaker state
 * machine — all driven with fake clocks so every transition is exact.
 */
#include <gtest/gtest.h>

#include <set>

#include "serve/request.h"
#include "support/resilience.h"

namespace madfhe {
namespace {

using resilience::CircuitBreaker;
using resilience::Deadline;
using resilience::RetryPolicy;

// --- Deadline -------------------------------------------------------------

TEST(DeadlineTest, InactiveByDefault)
{
    const Deadline d;
    EXPECT_FALSE(d.active());
    EXPECT_FALSE(d.expiredAt(~u64{0} - 1));
    EXPECT_EQ(d.remainingNsAt(123), ~u64{0});
    EXPECT_EQ(d.absNs(), ~u64{0});
}

TEST(DeadlineTest, ExpiryAndRemainingAreExact)
{
    const u64 t0 = 1'000'000'000;
    const Deadline d = Deadline::afterMs(5, t0); // expires at t0 + 5ms
    EXPECT_TRUE(d.active());
    EXPECT_EQ(d.absNs(), t0 + 5'000'000);

    EXPECT_FALSE(d.expiredAt(t0));
    EXPECT_EQ(d.remainingNsAt(t0), 5'000'000u);
    EXPECT_FALSE(d.expiredAt(t0 + 4'999'999));
    EXPECT_EQ(d.remainingNsAt(t0 + 4'999'999), 1u);
    EXPECT_TRUE(d.expiredAt(t0 + 5'000'000)); // boundary is inclusive
    EXPECT_EQ(d.remainingNsAt(t0 + 5'000'000), 0u);
    EXPECT_TRUE(d.expiredAt(t0 + 6'000'000));
    EXPECT_EQ(d.remainingNsAt(t0 + 6'000'000), 0u);
}

TEST(DeadlineTest, AfterMsClampsHostileBudgets)
{
    // deadline_ms comes off the wire: a huge value must saturate, not
    // wrap to already-expired or land on the inactive sentinel.
    const Deadline wrap = Deadline::afterMs(~u64{0}, 1'000);
    EXPECT_TRUE(wrap.active());
    EXPECT_EQ(wrap.absNs(), ~u64{0} - 1); // saturated, not wrapped
    EXPECT_FALSE(wrap.expiredAt(~u64{0} - 2));

    // t0 + ms*1e6 == 2^64-1 exactly: one below the unclamped sum would
    // be the inactive sentinel; the clamp keeps it active and maximal.
    const Deadline pin = Deadline::afterMs(18'446'744'073'709ULL, 551'615);
    EXPECT_TRUE(pin.active());
    EXPECT_EQ(pin.absNs(), ~u64{0} - 1);

    // Sane budgets are untouched.
    EXPECT_EQ(Deadline::afterMs(5, 1'000).absNs(), 5'001'000u);
}

TEST(DeadlineTest, AtConstructsAbsolute)
{
    const Deadline d = Deadline::at(42);
    EXPECT_TRUE(d.active());
    EXPECT_TRUE(d.expiredAt(42));
    EXPECT_FALSE(d.expiredAt(41));
}

TEST(DeadlineTest, MonotonicClockAdvances)
{
    const u64 a = resilience::monotonicNs();
    const u64 b = resilience::monotonicNs();
    EXPECT_LE(a, b);
}

// --- RetryPolicy ----------------------------------------------------------

TEST(RetryPolicyTest, DefaultIsNoRetries)
{
    const RetryPolicy p;
    EXPECT_FALSE(p.enabled());
    EXPECT_FALSE(p.shouldRetry(1, /*transient=*/true));
}

TEST(RetryPolicyTest, ZeroAttemptsNormalizesToOne)
{
    RetryPolicy p;
    p.max_attempts = 0;
    EXPECT_FALSE(p.enabled());
    // One attempt (the first) is the whole budget.
    EXPECT_FALSE(p.shouldRetry(1, true));
    EXPECT_FALSE(p.shouldRetry(2, true));
}

TEST(RetryPolicyTest, BoundsAttemptsAndRequiresTransience)
{
    RetryPolicy p;
    p.max_attempts = 3;
    EXPECT_TRUE(p.enabled());
    EXPECT_TRUE(p.shouldRetry(1, true));
    EXPECT_TRUE(p.shouldRetry(2, true));
    EXPECT_FALSE(p.shouldRetry(3, true)); // budget exhausted
    EXPECT_FALSE(p.shouldRetry(1, false)); // permanent error: never retry
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps)
{
    RetryPolicy p;
    p.base_backoff_ns = 1'000;
    p.max_backoff_ns = 6'000;
    p.seed = 7;
    const u64 b1 = p.backoffNs(1);
    const u64 b2 = p.backoffNs(2);
    const u64 b3 = p.backoffNs(3);
    const u64 b9 = p.backoffNs(9);
    // base * 2^(n-1) plus at most +25% jitter.
    EXPECT_GE(b1, 1'000u);
    EXPECT_LE(b1, 1'250u);
    EXPECT_GE(b2, 2'000u);
    EXPECT_LE(b2, 2'500u);
    EXPECT_GE(b3, 4'000u);
    EXPECT_LE(b3, 5'000u);
    EXPECT_GE(b9, 6'000u); // capped
    EXPECT_LE(b9, 7'500u);
}

TEST(RetryPolicyTest, JitterIsDeterministicInSeedAndAttempt)
{
    RetryPolicy a;
    a.max_attempts = 4;
    a.seed = 99;
    RetryPolicy b = a;
    for (u32 attempt = 1; attempt <= 4; ++attempt)
        EXPECT_EQ(a.backoffNs(attempt), b.backoffNs(attempt));

    // Different seeds should usually pick different jitter somewhere.
    RetryPolicy c = a;
    c.seed = 100;
    std::set<u64> distinct;
    for (u32 attempt = 1; attempt <= 4; ++attempt) {
        distinct.insert(a.backoffNs(attempt));
        distinct.insert(c.backoffNs(attempt));
    }
    EXPECT_GT(distinct.size(), 4u);
}

// --- transient classification --------------------------------------------

TEST(RetryPolicyTest, TransientErrorKinds)
{
    using serve::ErrorKind;
    using serve::transientErrorKind;
    EXPECT_TRUE(transientErrorKind(ErrorKind::CorruptStream));
    EXPECT_TRUE(transientErrorKind(ErrorKind::FaultDetected));
    EXPECT_TRUE(transientErrorKind(ErrorKind::Injected));
    EXPECT_TRUE(transientErrorKind(ErrorKind::BadAlloc));
    EXPECT_TRUE(transientErrorKind(ErrorKind::Overloaded));
    EXPECT_FALSE(transientErrorKind(ErrorKind::None));
    EXPECT_FALSE(transientErrorKind(ErrorKind::User));
    EXPECT_FALSE(transientErrorKind(ErrorKind::Other));
    EXPECT_FALSE(transientErrorKind(ErrorKind::DeadlineExceeded));
}

// --- CircuitBreaker -------------------------------------------------------

TEST(CircuitBreakerTest, DisabledByDefault)
{
    CircuitBreaker b;
    for (int i = 0; i < 10; ++i) {
        EXPECT_TRUE(b.allow(i));
        b.onFailure(i);
    }
    EXPECT_EQ(b.trips(), 0u);
    EXPECT_EQ(b.state(100), CircuitBreaker::State::Closed);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures)
{
    CircuitBreaker::Config cfg;
    cfg.threshold = 3;
    cfg.cooldown_ns = 1'000;
    CircuitBreaker b(cfg);

    u64 now = 10;
    EXPECT_TRUE(b.allow(now));
    b.onFailure(now);
    EXPECT_TRUE(b.allow(now));
    b.onFailure(now);
    // A success resets the consecutive count.
    EXPECT_TRUE(b.allow(now));
    b.onSuccess();
    EXPECT_TRUE(b.allow(now));
    b.onFailure(now);
    EXPECT_TRUE(b.allow(now));
    b.onFailure(now);
    EXPECT_TRUE(b.allow(now));
    b.onFailure(now); // third consecutive: trips
    EXPECT_EQ(b.trips(), 1u);
    EXPECT_EQ(b.state(now), CircuitBreaker::State::Open);
    EXPECT_FALSE(b.allow(now));
    EXPECT_FALSE(b.allow(now + 999)); // still cooling down
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess)
{
    CircuitBreaker::Config cfg;
    cfg.threshold = 1;
    cfg.cooldown_ns = 1'000;
    CircuitBreaker b(cfg);

    b.allow(0);
    b.onFailure(0); // trips immediately (threshold 1)
    EXPECT_FALSE(b.allow(500));

    // Cooldown elapsed: exactly one probe is admitted.
    EXPECT_EQ(b.state(1'000), CircuitBreaker::State::HalfOpen);
    EXPECT_TRUE(b.allow(1'000));
    EXPECT_FALSE(b.allow(1'001)); // second request while probe in flight
    b.onSuccess();
    EXPECT_EQ(b.state(1'002), CircuitBreaker::State::Closed);
    EXPECT_TRUE(b.allow(1'002));
}

TEST(CircuitBreakerTest, FailedProbeReopens)
{
    CircuitBreaker::Config cfg;
    cfg.threshold = 1;
    cfg.cooldown_ns = 1'000;
    CircuitBreaker b(cfg);

    b.allow(0);
    b.onFailure(0);
    EXPECT_TRUE(b.allow(1'000)); // probe
    b.onFailure(1'000);          // probe failed: back to Open
    EXPECT_EQ(b.state(1'500), CircuitBreaker::State::Open);
    EXPECT_FALSE(b.allow(1'999));
    EXPECT_TRUE(b.allow(2'000)); // new cooldown elapsed: next probe
    b.onSuccess();
    EXPECT_TRUE(b.allow(2'001));
    EXPECT_EQ(b.trips(), 1u); // reopen from HalfOpen is not a new trip
}

TEST(CircuitBreakerTest, AbandonedProbeReopensInsteadOfLockingOut)
{
    // Regression: a probe admitted in HalfOpen and then resolved
    // without executing (shed under overload, deadline-expired at
    // dispatch) used to leak the probe slot, rejecting the tenant
    // forever. onAbandoned must hand the slot back.
    CircuitBreaker::Config cfg;
    cfg.threshold = 1;
    cfg.cooldown_ns = 1'000;
    CircuitBreaker b(cfg);

    b.allow(0);
    b.onFailure(0);              // trips
    EXPECT_TRUE(b.allow(1'000)); // probe admitted
    b.onAbandoned(1'100);        // probe shed before executing
    EXPECT_EQ(b.state(1'100), CircuitBreaker::State::Open);
    EXPECT_FALSE(b.allow(1'500)); // fresh cooldown in force
    EXPECT_TRUE(b.allow(2'100));  // cooldown elapsed: fresh probe
    b.onSuccess();
    EXPECT_TRUE(b.allow(2'101));
    EXPECT_EQ(b.state(2'101), CircuitBreaker::State::Closed);

    // Abandonment outside HalfOpen is a no-op (shed traffic of a
    // healthy tenant must not open its breaker).
    b.onAbandoned(3'000);
    EXPECT_EQ(b.state(3'000), CircuitBreaker::State::Closed);
}

TEST(CircuitBreakerTest, UnreportedProbeTimesOutAndReadmits)
{
    // Even if the probe outcome is never reported at all, HalfOpen is
    // time-bounded: after another cooldown allow() lends the slot out
    // again instead of rejecting forever.
    CircuitBreaker::Config cfg;
    cfg.threshold = 1;
    cfg.cooldown_ns = 1'000;
    CircuitBreaker b(cfg);

    b.allow(0);
    b.onFailure(0);
    EXPECT_TRUE(b.allow(1'000));  // probe admitted, then vanishes
    EXPECT_FALSE(b.allow(1'999)); // within the probe window: one at a time
    EXPECT_TRUE(b.allow(2'000));  // window elapsed: fresh probe
    EXPECT_FALSE(b.allow(2'500)); // the new window re-armed
    b.onSuccess();
    EXPECT_TRUE(b.allow(2'501));
}

TEST(CircuitBreakerTest, OpenIgnoresStragglerSuccess)
{
    // Regression: a slow success from a request admitted before the
    // trip used to close an Open breaker immediately, bypassing the
    // cooldown (onFailure already ignored Open-state stragglers).
    CircuitBreaker::Config cfg;
    cfg.threshold = 1;
    cfg.cooldown_ns = 1'000;
    CircuitBreaker b(cfg);

    b.allow(10);
    b.allow(10);    // two admitted while Closed
    b.onFailure(10); // first one fails: trips
    EXPECT_EQ(b.state(11), CircuitBreaker::State::Open);
    b.onSuccess(); // straggler success from the second
    EXPECT_EQ(b.state(11), CircuitBreaker::State::Open);
    EXPECT_FALSE(b.allow(500));  // cooldown still in force
    EXPECT_TRUE(b.allow(1'010)); // probe only after the cooldown
    b.onSuccess();               // the probe's success does close it
    EXPECT_EQ(b.state(1'011), CircuitBreaker::State::Closed);
}

} // namespace
} // namespace madfhe
