/**
 * @file
 * Application schedule tests (HELR logistic regression, ResNet-20): cost
 * scaling, bootstrap dominance, and the Figure 6 qualitative claims.
 */
#include <gtest/gtest.h>

#include "apps/helr.h"
#include "apps/resnet.h"
#include "simfhe/hardware.h"

namespace madfhe {
namespace apps {
namespace {

using simfhe::CacheConfig;
using simfhe::Cost;
using simfhe::CostModel;
using simfhe::HardwareDesign;
using simfhe::Optimizations;
using simfhe::SchemeConfig;

CostModel
madModel(double cache_mb = 32)
{
    return CostModel(SchemeConfig::madOptimal(),
                     CacheConfig::megabytes(cache_mb),
                     Optimizations::all());
}

TEST(Helr, BootstrapCountMatchesInterval)
{
    HelrConfig cfg;
    cfg.iterations = 30;
    cfg.boot_interval = 3;
    EXPECT_EQ(helrBootstrapCount(cfg), 10u);
    cfg.iterations = 31;
    EXPECT_EQ(helrBootstrapCount(cfg), 11u);
}

TEST(Helr, CostScalesWithIterations)
{
    CostModel m = madModel();
    HelrConfig small;
    small.iterations = 6;
    HelrConfig big;
    big.iterations = 30;
    double c6 = helrTrainingCost(m, small).ops();
    double c30 = helrTrainingCost(m, big).ops();
    EXPECT_GT(c30, 4.0 * c6);
    EXPECT_LT(c30, 6.0 * c6);
}

TEST(Helr, MadReducesTrainingDram)
{
    SchemeConfig s = SchemeConfig::baselineJung();
    CostModel base(s, CacheConfig::megabytes(6), Optimizations::none());
    CostModel opt(s, CacheConfig::megabytes(6), Optimizations::all());
    // At 6 MB only O(1)/O(beta) caching plus the algorithmic opts apply
    // (the GPU+MAD-6 bar of Figure 6(a)).
    double b = helrTrainingCost(base).bytes();
    double o = helrTrainingCost(opt).bytes();
    EXPECT_LT(o, b);
}

TEST(Helr, Figure6aGpuSpeedups)
{
    // GPU+MAD-6 vs GPU baseline-6: the paper reports 3.5x; GPU+MAD-32 vs
    // baseline: 17x. Our model must show large, ordered gains.
    SchemeConfig s = SchemeConfig::baselineJung();
    HardwareDesign gpu = HardwareDesign::gpu();

    auto runtime = [&](double mb, Optimizations o, SchemeConfig cfg) {
        CostModel m(cfg, CacheConfig::megabytes(mb), o);
        return simfhe::runtimeSec(gpu.withCache(mb), helrTrainingCost(m));
    };
    double base6 = runtime(6, Optimizations::none(), s);
    double mad6 = runtime(6, Optimizations::all(), s);
    double mad32 =
        runtime(32, Optimizations::all(), SchemeConfig::madOptimal());

    EXPECT_GT(base6 / mad6, 1.3);  // clear win at the same cache size
    EXPECT_GT(base6 / mad32, 2.5); // bigger win with the 32 MB cache
    EXPECT_GT(mad6 / mad32, 1.3);  // and 32 MB beats 6 MB
}

TEST(Resnet, BootstrapsDominateRuntime)
{
    CostModel m = madModel();
    ResnetConfig cfg;
    Cost total = resnetInferenceCost(m, cfg);
    Cost boots = m.bootstrap() * static_cast<double>(cfg.bootstraps);
    // Section 1: bootstrapping consumes ~80% of ML runtime.
    EXPECT_GT(boots.ops() / total.ops(), 0.5);
    EXPECT_GT(boots.bytes() / total.bytes(), 0.5);
}

TEST(Resnet, MadReducesInference)
{
    SchemeConfig s = SchemeConfig::baselineJung();
    HardwareDesign bts = HardwareDesign::bts();

    auto runtime = [&](double mb, Optimizations o, SchemeConfig cfg) {
        CostModel m(cfg, CacheConfig::megabytes(mb), o);
        return simfhe::runtimeSec(bts.withCache(mb),
                                  resnetInferenceCost(m));
    };
    // BTS+MAD at growing cache sizes (Figure 6(g)): monotone improvement.
    double mad32 =
        runtime(32, Optimizations::all(), SchemeConfig::madOptimal());
    double mad512 =
        runtime(512, Optimizations::all(), SchemeConfig::madOptimal());
    EXPECT_LE(mad512, mad32 * 1.0001);

    // And MAD at 32 MB beats the unoptimized model at 512 MB.
    double base512 = runtime(512, Optimizations::none(), s);
    EXPECT_LT(mad32, base512);
}

TEST(Resnet, CostScalesWithLayers)
{
    CostModel m = madModel();
    ResnetConfig a;
    a.conv_layers = 10;
    a.bootstraps = 9;
    ResnetConfig b;
    b.conv_layers = 20;
    b.bootstraps = 19;
    EXPECT_GT(resnetInferenceCost(m, b).ops(),
              1.7 * resnetInferenceCost(m, a).ops());
}


TEST(Helr, SparseBootstrapsCostLessThanFullyPacked)
{
    CostModel m = madModel();
    HelrConfig sparse;           // default: 2^13 boot slots
    HelrConfig full;
    full.boot_slots = 0;         // fully packed
    EXPECT_LT(helrTrainingCost(m, sparse).ops(),
              helrTrainingCost(m, full).ops());
}

TEST(Helr, MoreRotationsCostMore)
{
    CostModel m = madModel();
    HelrConfig few;
    few.rotations_per_iter = 8;
    HelrConfig many;
    many.rotations_per_iter = 32;
    EXPECT_LT(helrTrainingCost(m, few).ops(),
              helrTrainingCost(m, many).ops());
}

TEST(Resnet, MoreDiagonalsCostMore)
{
    CostModel m = madModel();
    ResnetConfig small;
    small.conv_diagonals = 9;
    ResnetConfig big;
    big.conv_diagonals = 49;
    EXPECT_LT(resnetInferenceCost(m, small).ops(),
              resnetInferenceCost(m, big).ops());
}

} // namespace
} // namespace apps
} // namespace madfhe
