/**
 * @file
 * RnsPoly and RingContext tests: representation changes, limb arithmetic,
 * automorphisms in both representations, and basis bookkeeping.
 */
#include <gtest/gtest.h>

#include "ring/poly.h"
#include "rns/primegen.h"
#include "support/random.h"

namespace madfhe {
namespace {

std::shared_ptr<RingContext>
makeRing(size_t n = 1 << 8, size_t num_q = 4, size_t num_p = 2)
{
    auto q = generateNttPrimes(40, n, num_q);
    auto p = generateNttPrimes(41, n, num_p, q);
    return std::make_shared<RingContext>(n, q, p);
}

RnsPoly
randomPoly(std::shared_ptr<const RingContext> ctx, std::vector<u32> basis,
           u64 seed, Rep rep = Rep::Coeff)
{
    RnsPoly p(ctx, basis, Rep::Coeff);
    Sampler s(seed);
    for (size_t i = 0; i < p.numLimbs(); ++i) {
        auto vals = s.uniformMod(p.degree(), p.modulus(i).value());
        std::copy(vals.begin(), vals.end(), p.limb(i));
    }
    if (rep == Rep::Eval)
        p.toEval();
    return p;
}

TEST(RingContext, ChainLayout)
{
    auto ring = makeRing(1 << 8, 4, 2);
    EXPECT_EQ(ring->numQ(), 4u);
    EXPECT_EQ(ring->numP(), 2u);
    EXPECT_EQ(ring->numModuli(), 6u);
    auto qi = ring->qIndices(3);
    EXPECT_EQ(qi, (std::vector<u32>{0, 1, 2}));
    auto pi = ring->pIndices();
    EXPECT_EQ(pi, (std::vector<u32>{4, 5}));
    EXPECT_THROW(ring->qIndices(5), std::invalid_argument);
}

TEST(RingContext, GaloisElements)
{
    auto ring = makeRing();
    EXPECT_EQ(ring->galoisElt(0), 1u);
    EXPECT_EQ(ring->galoisElt(1), 5u);
    EXPECT_EQ(ring->galoisElt(2), 25u);
    EXPECT_EQ(ring->conjugateElt(), 2 * ring->degree() - 1);
    // Negative rotations wrap.
    size_t slots = ring->degree() / 2;
    EXPECT_EQ(ring->galoisElt(-1), ring->galoisElt(int(slots) - 1));
}

TEST(RnsPoly, RepRoundTrip)
{
    auto ring = makeRing();
    auto p = randomPoly(ring, ring->qIndices(3), 1);
    RnsPoly q = p;
    q.toEval();
    EXPECT_EQ(q.rep(), Rep::Eval);
    q.toCoeff();
    EXPECT_TRUE(p.equals(q));
}

TEST(RnsPoly, AddSubNegateRoundTrip)
{
    auto ring = makeRing();
    auto a = randomPoly(ring, ring->qIndices(4), 2);
    auto b = randomPoly(ring, ring->qIndices(4), 3);
    RnsPoly c = a;
    c.add(b);
    c.sub(b);
    EXPECT_TRUE(c.equals(a));
    RnsPoly d = a;
    d.negate();
    d.add(a);
    RnsPoly zero(ring, ring->qIndices(4), Rep::Coeff);
    EXPECT_TRUE(d.equals(zero));
}

TEST(RnsPoly, PointwiseMulIsNegacyclicProduct)
{
    auto ring = makeRing(1 << 6, 2, 1);
    // a = x, b = x^(n-1): a*b = x^n = -1.
    RnsPoly a(ring, ring->qIndices(2), Rep::Coeff);
    RnsPoly b(ring, ring->qIndices(2), Rep::Coeff);
    for (size_t i = 0; i < 2; ++i) {
        a.limb(i)[1] = 1;
        b.limb(i)[ring->degree() - 1] = 1;
    }
    a.toEval();
    b.toEval();
    a.mulPointwise(b);
    a.toCoeff();
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(a.limb(i)[0], a.modulus(i).value() - 1);
        for (size_t c = 1; c < ring->degree(); ++c)
            EXPECT_EQ(a.limb(i)[c], 0u);
    }
}

TEST(RnsPoly, AddMulMatchesSeparateOps)
{
    auto ring = makeRing();
    auto basis = ring->qIndices(3);
    auto acc = randomPoly(ring, basis, 4, Rep::Eval);
    auto a = randomPoly(ring, basis, 5, Rep::Eval);
    auto b = randomPoly(ring, basis, 6, Rep::Eval);

    RnsPoly expect = acc;
    RnsPoly prod = a;
    prod.mulPointwise(b);
    expect.add(prod);

    acc.addMul(a, b);
    EXPECT_TRUE(acc.equals(expect));
}

TEST(RnsPoly, AutomorphismsComposeAndInvert)
{
    auto ring = makeRing(1 << 7, 2, 1);
    auto a = randomPoly(ring, ring->qIndices(2), 7);
    const u64 m = 2 * ring->degree();
    u64 t = 5, t_inv = 0;
    // find inverse of 5 mod 2N
    for (u64 x = 1; x < m; x += 2) {
        if ((x * t) % m == 1) {
            t_inv = x;
            break;
        }
    }
    ASSERT_NE(t_inv, 0u);
    auto b = a.automorph(t).automorph(t_inv);
    EXPECT_TRUE(b.equals(a));
}

TEST(RnsPoly, AutomorphismCommutesWithNtt)
{
    auto ring = makeRing(1 << 7, 3, 1);
    auto a = randomPoly(ring, ring->qIndices(3), 8);
    const u64 t = ring->galoisElt(3);

    // Path 1: automorph in coeff rep, then NTT.
    auto c1 = a.automorph(t);
    c1.toEval();
    // Path 2: NTT, then automorph in eval rep.
    auto c2 = a;
    c2.toEval();
    c2 = c2.automorph(t);
    EXPECT_TRUE(c1.equals(c2));
}

TEST(RnsPoly, ConjugateAutomorphismIsInvolution)
{
    auto ring = makeRing(1 << 7, 2, 1);
    auto a = randomPoly(ring, ring->qIndices(2), 9, Rep::Eval);
    auto b = a.automorph(ring->conjugateElt())
                 .automorph(ring->conjugateElt());
    EXPECT_TRUE(b.equals(a));
}

TEST(RnsPoly, ScalarMultiplication)
{
    auto ring = makeRing();
    auto a = randomPoly(ring, ring->qIndices(2), 10);
    RnsPoly b = a;
    b.mulScalar(3);
    RnsPoly c = a;
    c.add(a);
    c.add(a);
    EXPECT_TRUE(b.equals(c));
}

TEST(RnsPoly, TruncateLimbs)
{
    auto ring = makeRing();
    auto a = randomPoly(ring, ring->qIndices(4), 11);
    RnsPoly b = a;
    b.truncateLimbs(2);
    EXPECT_EQ(b.numLimbs(), 2u);
    for (size_t i = 0; i < 2; ++i)
        for (size_t c = 0; c < ring->degree(); ++c)
            EXPECT_EQ(b.limb(i)[c], a.limb(i)[c]);
    EXPECT_THROW(b.truncateLimbs(0), std::invalid_argument);
    EXPECT_THROW(b.truncateLimbs(3), std::invalid_argument);
}

TEST(RnsPoly, SetFromSignedReducesPerLimb)
{
    auto ring = makeRing(1 << 6, 2, 0);
    RnsPoly a(ring, ring->qIndices(2), Rep::Coeff);
    std::vector<i64> vals(ring->degree());
    for (size_t i = 0; i < vals.size(); ++i)
        vals[i] = static_cast<i64>(i) - 32;
    a.setFromSigned(vals);
    for (size_t i = 0; i < 2; ++i)
        for (size_t c = 0; c < ring->degree(); ++c)
            EXPECT_EQ(a.limb(i)[c], a.modulus(i).fromSigned(vals[c]));
}

TEST(RnsPoly, MismatchedBasisThrows)
{
    auto ring = makeRing();
    auto a = randomPoly(ring, ring->qIndices(3), 12);
    auto b = randomPoly(ring, ring->qIndices(2), 13);
    EXPECT_THROW(a.add(b), std::logic_error);
}

class AutomorphSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AutomorphSweep, RotationElementsPermuteEvalRep)
{
    auto ring = makeRing(1 << 7, 2, 1);
    int step = GetParam();
    auto a = randomPoly(ring, ring->qIndices(2), 100 + step, Rep::Eval);
    u64 t = ring->galoisElt(step);
    auto b = a.automorph(t);
    // A permutation preserves the multiset of values per limb.
    for (size_t i = 0; i < a.numLimbs(); ++i) {
        std::vector<u64> va(a.limb(i), a.limb(i) + a.degree());
        std::vector<u64> vb(b.limb(i), b.limb(i) + b.degree());
        std::sort(va.begin(), va.end());
        std::sort(vb.begin(), vb.end());
        EXPECT_EQ(va, vb);
    }
}

INSTANTIATE_TEST_SUITE_P(Steps, AutomorphSweep,
                         ::testing::Values(1, 2, 3, 7, 15, 31, -1, -5));

} // namespace
} // namespace madfhe
