/**
 * @file
 * Tests for the memory-trace subsystem: replay cache semantics on
 * hand-built traces (LRU eviction order, write-validate, Belady vs LRU),
 * TraceSink behavior (enable gating, class tagging, scope pairing), and
 * the traced-vs-analytical cross-validation of KeySwitch.
 */
#include <gtest/gtest.h>

#include "memtrace/crossval.h"
#include "memtrace/replay.h"
#include "memtrace/trace.h"
#include "simfhe/model.h"
#include "test_util.h"

namespace madfhe {
namespace {

using memtrace::Class;
using memtrace::Event;
using memtrace::Kind;
using memtrace::ReplayConfig;
using memtrace::ReplayResult;
using memtrace::Trace;
using memtrace::TraceSink;

constexpr u32 kBlock = 64;

Event
ev(Kind kind, u64 block, Class cls = Class::Ct)
{
    return Event{block * kBlock, kBlock, kind, cls};
}

ReplayConfig
lruConfig(size_t capacity_blocks)
{
    ReplayConfig rc;
    rc.policy = ReplayConfig::Policy::Lru;
    rc.capacity_bytes = capacity_blocks * kBlock;
    rc.block_bytes = kBlock;
    return rc;
}

TEST(Replay, LruEvictionOrderAndCounts)
{
    // Capacity 2, fully associative. The reuse of block 0 at step 3 makes
    // block 1 the LRU victim at step 4 — FIFO would evict block 0 instead,
    // so the hit/miss pattern below pins down true LRU order.
    Trace t;
    for (u64 b : {0, 1, 0, 2, 1, 2})
        t.events.push_back(ev(Kind::Read, b));

    ReplayResult r = memtrace::replay(t, lruConfig(2));
    EXPECT_EQ(r.accesses, 6u);
    EXPECT_EQ(r.misses, 4u); // 0, 1, 2 compulsory + 1 after its eviction
    EXPECT_EQ(r.hits, 2u);   // 0 at step 3, 2 at step 6
    EXPECT_DOUBLE_EQ(r.total.ct_read, 4.0 * kBlock);
    EXPECT_DOUBLE_EQ(r.total.ct_write, 0.0); // nothing dirty
    EXPECT_EQ(r.writebacks, 0u);
}

TEST(Replay, WriteValidateInstallsDirtyWithoutFetch)
{
    // A write miss must not charge a DRAM read (kernels produce whole
    // limbs), and the dirty block pays exactly one write when evicted.
    Trace t;
    t.events.push_back(ev(Kind::Write, 0));
    t.events.push_back(ev(Kind::Read, 1));
    t.events.push_back(ev(Kind::Read, 2)); // evicts dirty block 0

    ReplayResult r = memtrace::replay(t, lruConfig(2));
    EXPECT_DOUBLE_EQ(r.total.ct_read, 2.0 * kBlock);
    EXPECT_DOUBLE_EQ(r.total.ct_write, 1.0 * kBlock);
    EXPECT_EQ(r.writebacks, 1u);
}

TEST(Replay, AllocInstallsCleanAndDropsDirtyBit)
{
    // Alloc means "contents are dead": a dirty block that gets
    // re-allocated must not write back, and reads after an Alloc hit at
    // zero traffic.
    Trace t;
    t.events.push_back(ev(Kind::Write, 0));
    t.events.push_back(ev(Kind::Alloc, 0)); // drops the dirty bit
    t.events.push_back(ev(Kind::Read, 0));
    t.events.push_back(ev(Kind::Alloc, 1));
    t.events.push_back(ev(Kind::Read, 1));

    ReplayResult r = memtrace::replay(t, lruConfig(4));
    EXPECT_EQ(r.misses, 1u); // only the initial write miss
    EXPECT_EQ(r.hits, 2u);
    EXPECT_DOUBLE_EQ(r.total.ct_read, 0.0);
    EXPECT_DOUBLE_EQ(r.total.ct_write, 0.0); // final flush finds no dirty
    EXPECT_EQ(r.writebacks, 0u);
}

TEST(Replay, AttributesTrafficToOutermostScope)
{
    Trace t;
    t.scope_names = {"Outer", "Inner"};
    t.events.push_back(Event{0, 0, Kind::ScopeBegin, Class::Ct});
    t.events.push_back(ev(Kind::Read, 0));
    t.events.push_back(Event{1, 0, Kind::ScopeBegin, Class::Ct});
    t.events.push_back(ev(Kind::Read, 1)); // nested: still Outer's
    t.events.push_back(Event{0, 0, Kind::ScopeEnd, Class::Ct});
    t.events.push_back(ev(Kind::Write, 2));
    t.events.push_back(Event{0, 0, Kind::ScopeEnd, Class::Ct});
    t.events.push_back(ev(Kind::Read, 3)); // outside any scope

    ReplayResult r = memtrace::replay(t, lruConfig(8));
    const memtrace::ScopeStats* outer = r.scope("Outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_DOUBLE_EQ(outer->traffic.ct_read, 2.0 * kBlock);
    // flush_at_top_scope: the dirty block written inside Outer is flushed
    // (and charged to Outer) when the outermost scope closes.
    EXPECT_DOUBLE_EQ(outer->traffic.ct_write, 1.0 * kBlock);

    EXPECT_EQ(r.scope("Inner"), nullptr); // aggregated into Outer
    const memtrace::ScopeStats* unscoped = r.scope("(unscoped)");
    ASSERT_NE(unscoped, nullptr);
    EXPECT_DOUBLE_EQ(unscoped->traffic.ct_read, 1.0 * kBlock);
}

TEST(Replay, KeyAndPtClassesSplitReadsAndSkipWritebacks)
{
    Trace t;
    t.events.push_back(ev(Kind::Read, 0, Class::Key));
    t.events.push_back(ev(Kind::Read, 1, Class::Pt));
    t.events.push_back(ev(Kind::Read, 2, Class::Ct));
    t.events.push_back(ev(Kind::Write, 3, Class::Key));

    ReplayResult r = memtrace::replay(t, lruConfig(8));
    EXPECT_DOUBLE_EQ(r.total.key_read, 1.0 * kBlock);
    EXPECT_DOUBLE_EQ(r.total.pt_read, 1.0 * kBlock);
    EXPECT_DOUBLE_EQ(r.total.ct_read, 1.0 * kBlock);
    // Key/Pt material is read-only input in the analytical model, so a
    // dirty Key block is dropped at flush rather than charged as a write.
    EXPECT_DOUBLE_EQ(r.total.ct_write, 0.0);
    EXPECT_EQ(r.writebacks, 0u);
}

TEST(Replay, BeladyNoWorseThanLruOnRandomTrace)
{
    // Deterministic LCG access stream over a footprint 3x the capacity.
    Trace t;
    u64 state = 0x243f6a8885a308d3ull;
    for (int i = 0; i < 600; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const u64 block = (state >> 33) % 12;
        const Kind kind = ((state >> 13) & 3) == 0 ? Kind::Write : Kind::Read;
        t.events.push_back(ev(kind, block));
    }

    ReplayConfig lru = lruConfig(4);
    ReplayConfig belady = lru;
    belady.policy = ReplayConfig::Policy::Belady;
    ReplayConfig infinite = lru;
    infinite.policy = ReplayConfig::Policy::Infinite;

    ReplayResult r_lru = memtrace::replay(t, lru);
    ReplayResult r_opt = memtrace::replay(t, belady);
    ReplayResult r_inf = memtrace::replay(t, infinite);

    EXPECT_LE(r_opt.misses, r_lru.misses);
    EXPECT_LE(r_inf.misses, r_opt.misses); // compulsory lower bound
    EXPECT_EQ(r_lru.accesses, r_opt.accesses);
}

TEST(Replay, BeladyBeatsLruOnCyclicScan)
{
    // The classic LRU worst case: a cyclic scan one block wider than the
    // cache makes LRU miss every access, while OPT keeps part of the
    // working set resident.
    Trace t;
    for (int round = 0; round < 10; ++round)
        for (u64 b = 0; b < 4; ++b)
            t.events.push_back(ev(Kind::Read, b));

    ReplayConfig lru = lruConfig(3);
    ReplayConfig belady = lru;
    belady.policy = ReplayConfig::Policy::Belady;

    ReplayResult r_lru = memtrace::replay(t, lru);
    ReplayResult r_opt = memtrace::replay(t, belady);
    EXPECT_EQ(r_lru.misses, r_lru.accesses); // LRU thrashes
    EXPECT_LT(r_opt.misses, r_lru.misses);
}

TEST(Replay, SetAssociativityRestrictsVictimChoice)
{
    // 4 blocks, 2 ways -> 2 sets; blocks 0 and 2 share set 0. With a
    // fully associative cache the three distinct blocks all fit; with
    // 2-way sets, block 4 (set 0) evicts from {0, 2} only.
    Trace t;
    for (u64 b : {0, 2, 4, 0})
        t.events.push_back(ev(Kind::Read, b));

    ReplayConfig full = lruConfig(4);
    ReplayResult r_full = memtrace::replay(t, full);
    EXPECT_EQ(r_full.misses, 3u);
    EXPECT_EQ(r_full.hits, 1u);

    ReplayConfig assoc = full;
    assoc.ways = 2;
    ReplayResult r_assoc = memtrace::replay(t, assoc);
    EXPECT_EQ(r_assoc.misses, 4u); // block 0 was the set-0 LRU victim
    EXPECT_EQ(r_assoc.hits, 0u);
}

#ifndef MADFHE_MEMTRACE_DISABLED

/** Clears the global sink before and after each sink-facing test. */
class TraceSinkTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        TraceSink::instance().disable();
        TraceSink::instance().clear();
    }
    void
    TearDown() override
    {
        TraceSink::instance().disable();
        TraceSink::instance().clear();
    }
};

TEST_F(TraceSinkTest, DisabledSinkRecordsNothing)
{
    u64 buf[8] = {};
    MAD_TRACE_READ(buf, sizeof(buf));
    MAD_TRACE_WRITE(buf, sizeof(buf));
    {
        MAD_TRACE_SCOPE("ShouldNotAppear");
        MAD_TRACE_ALLOC(buf, sizeof(buf));
    }
    EXPECT_EQ(TraceSink::instance().eventCount(), 0u);
}

TEST_F(TraceSinkTest, TagClassifiesReadsAndAllocRetiresTag)
{
    u64 buf[8] = {};
    TraceSink& sink = TraceSink::instance();
    // Tags are accepted while disabled (keys are made during setup).
    sink.tagRegion(buf, sizeof(buf), Class::Key);

    sink.enable();
    MAD_TRACE_READ(buf, sizeof(buf));
    MAD_TRACE_ALLOC(buf, sizeof(buf)); // recycled address: tag retired
    MAD_TRACE_READ(buf, sizeof(buf));
    sink.disable();

    Trace t = sink.snapshot();
    ASSERT_EQ(t.events.size(), 3u);
    EXPECT_EQ(t.events[0].kind, Kind::Read);
    EXPECT_EQ(t.events[0].cls, Class::Key);
    EXPECT_EQ(t.events[1].kind, Kind::Alloc);
    EXPECT_EQ(t.events[2].kind, Kind::Read);
    EXPECT_EQ(t.events[2].cls, Class::Ct);
}

TEST_F(TraceSinkTest, ScopeEventsPairUpWithNames)
{
    TraceSink& sink = TraceSink::instance();
    sink.enable();
    {
        MAD_TRACE_SCOPE("Outer");
        {
            MAD_TRACE_SCOPE("Inner");
        }
    }
    sink.disable();

    Trace t = sink.snapshot();
    ASSERT_EQ(t.events.size(), 4u);
    EXPECT_EQ(t.events[0].kind, Kind::ScopeBegin);
    EXPECT_EQ(t.events[1].kind, Kind::ScopeBegin);
    EXPECT_EQ(t.events[2].kind, Kind::ScopeEnd);
    EXPECT_EQ(t.events[3].kind, Kind::ScopeEnd);
    ASSERT_LT(t.events[0].addr, t.scope_names.size());
    ASSERT_LT(t.events[1].addr, t.scope_names.size());
    EXPECT_EQ(t.scope_names[t.events[0].addr], "Outer");
    EXPECT_EQ(t.scope_names[t.events[1].addr], "Inner");
}

TEST(MemtraceCrossVal, KeySwitchMatchesAnalyticalModel)
{
    // Trace a real key switch at the cross-validation parameter set and
    // check the replayed DRAM bytes against CostModel::keySwitch. The
    // band matches tools/trace_validate (observed ratio ~1.06). Pinned
    // to the materializing baseline — the model side is none(); the
    // streaming policies are swept against their matching opt levels by
    // runPolicySweep / trace_validate --per-opt-level.
    ScopedStreamPolicy sp(StreamPolicy::Off);
    const CkksParams params = memtrace::crossvalParams();
    test::CkksHarness h(params);
    const size_t L = h.ctx->maxLevel();
    Ciphertext ct =
        h.encryptSlots(test::randomSlots(h.ctx->slots(), 77), L);

    TraceSink& sink = TraceSink::instance();
    sink.clear();
    sink.enable();
    (void)h.eval->keySwitcher().keySwitch(ct.c1, h.rlk);
    sink.disable();
    Trace trace = sink.snapshot();
    sink.clear();
    ASSERT_FALSE(trace.empty());

    const size_t cache_limbs = 32;
    ReplayResult r = memtrace::replay(
        trace, memtrace::scaledReplayConfig(
                   params, cache_limbs, ReplayConfig::Policy::Lru));
    const memtrace::ScopeStats* s = r.scope("KeySwitch");
    ASSERT_NE(s, nullptr);

    const simfhe::SchemeConfig scheme = memtrace::matchedScheme(params);
    const simfhe::CacheConfig cache{static_cast<double>(cache_limbs) *
                                    scheme.limbBytes()};
    const simfhe::Cost analytic =
        simfhe::CostModel(scheme, cache, simfhe::Optimizations::none())
            .keySwitch(L);

    ASSERT_GT(analytic.bytes(), 0.0);
    const double ratio = s->traffic.bytes() / analytic.bytes();
    EXPECT_GE(ratio, 0.8) << "traced " << s->traffic.bytes()
                          << " B vs analytic " << analytic.bytes() << " B";
    EXPECT_LE(ratio, 1.4) << "traced " << s->traffic.bytes()
                          << " B vs analytic " << analytic.bytes() << " B";
    // Key material must show up as key reads, not ciphertext traffic.
    EXPECT_GT(s->traffic.key_read, 0.0);
}

#endif // MADFHE_MEMTRACE_DISABLED

} // namespace
} // namespace madfhe
