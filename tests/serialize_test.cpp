/**
 * @file
 * Serialization round trips for polynomials, ciphertexts, plaintexts and
 * switching keys, including the wire-size halving of seed-compressed
 * keys and corruption rejection.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "ckks/serialize.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::maxError;
using test::randomSlots;

class SerializeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(SerializeTest, PolyRoundTrip)
{
    auto v = randomSlots(h->ctx->slots(), 1);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 3);

    std::stringstream ss;
    savePoly(ss, pt.poly);
    EXPECT_EQ(static_cast<size_t>(ss.tellp()), polyWireSize(pt.poly));
    RnsPoly back = loadPoly(ss, h->ctx->ring());
    EXPECT_TRUE(back.equals(pt.poly));
}

TEST_F(SerializeTest, CoeffRepPolyRoundTrip)
{
    auto v = randomSlots(h->ctx->slots(), 2);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 2);
    pt.poly.toCoeff();
    std::stringstream ss;
    savePoly(ss, pt.poly);
    RnsPoly back = loadPoly(ss, h->ctx->ring());
    EXPECT_EQ(back.rep(), Rep::Coeff);
    EXPECT_TRUE(back.equals(pt.poly));
}

TEST_F(SerializeTest, CiphertextRoundTripDecrypts)
{
    auto v = randomSlots(h->ctx->slots(), 3);
    Ciphertext ct = h->encryptSlots(v, 3);
    std::stringstream ss;
    saveCiphertext(ss, ct);
    Ciphertext back = loadCiphertext(ss, h->ctx->ring());
    EXPECT_DOUBLE_EQ(back.scale, ct.scale);
    EXPECT_LT(maxError(v, h->decryptSlots(back)), 1e-5);
}

TEST_F(SerializeTest, PlaintextRoundTrip)
{
    auto v = randomSlots(h->ctx->slots(), 4);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 2);
    std::stringstream ss;
    savePlaintext(ss, pt);
    Plaintext back = loadPlaintext(ss, h->ctx->ring());
    EXPECT_LT(maxError(v, h->encoder->decode(back)), 1e-6);
}

TEST_F(SerializeTest, SwitchingKeyRoundTripStillWorks)
{
    std::stringstream ss;
    saveSwitchingKey(ss, h->rlk);
    SwitchingKey back = loadSwitchingKey(ss, h->ctx->ring());
    ASSERT_EQ(back.numDigits(), h->rlk.numDigits());

    auto a = randomSlots(h->ctx->slots(), 5);
    auto b = randomSlots(h->ctx->slots(), 6);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    auto w = h->decryptSlots(h->eval->mul(ca, cb, back));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - a[i] * b[i]), 1e-4);
}

TEST_F(SerializeTest, CompressedKeyHalvesWireSize)
{
    KeyGenerator keygen(h->ctx);
    SwitchingKey key = keygen.galoisKey(h->sk, 5);
    size_t full = switchingKeyWireSize(key);

    SwitchingKey compressed = key;
    compressed.compress();
    size_t small = switchingKeyWireSize(compressed);
    // Headers aside, the a-halves are gone: strictly under 55% of full.
    EXPECT_LT(static_cast<double>(small), 0.55 * static_cast<double>(full));

    // Round trip through bytes, re-expand, compare bit-exactly.
    std::stringstream ss;
    saveSwitchingKey(ss, compressed);
    SwitchingKey back = loadSwitchingKey(ss, h->ctx->ring());
    EXPECT_TRUE(back.isCompressed());
    back.expand(*h->ctx);
    for (size_t j = 0; j < key.numDigits(); ++j) {
        EXPECT_TRUE(back.a(j).equals(key.a(j))) << "digit " << j;
        EXPECT_TRUE(back.b(j).equals(key.b(j))) << "digit " << j;
    }
}


TEST_F(SerializeTest, CompressedSaveOfExpandedKeyShipsSeedOnly)
{
    // The serving wire form: an *expanded* key can be saved seed-only
    // without mutating it, and re-expands bit-exactly at the receiver.
    KeyGenerator keygen(h->ctx);
    SwitchingKey key = keygen.galoisKey(h->sk, 5);
    ASSERT_FALSE(key.isCompressed());

    std::stringstream ss;
    saveSwitchingKeyCompressed(ss, key);
    ASSERT_FALSE(key.isCompressed()); // the key itself is untouched

    SwitchingKey compressed = key;
    compressed.compress();
    EXPECT_EQ(ss.str().size(), switchingKeyWireSize(compressed));

    SwitchingKey back = loadSwitchingKey(ss, h->ctx->ring());
    EXPECT_TRUE(back.isCompressed());
    back.expandA(*h->ctx);
    for (size_t j = 0; j < key.numDigits(); ++j) {
        EXPECT_TRUE(back.a(j).equals(key.a(j))) << "digit " << j;
        EXPECT_TRUE(back.b(j).equals(key.b(j))) << "digit " << j;
    }
}

TEST_F(SerializeTest, CompressedGaloisKeysShipSeedsOnly)
{
    GaloisKeys gks = h->makeGaloisKeys({1, 3});
    std::stringstream full_ss, small_ss;
    saveGaloisKeys(full_ss, gks);
    saveGaloisKeysCompressed(small_ss, gks);
    EXPECT_LT(static_cast<double>(small_ss.str().size()),
              0.55 * static_cast<double>(full_ss.str().size()));

    // Reloaded compressed keys still rotate correctly once expanded.
    GaloisKeys back = loadGaloisKeys(small_ss, h->ctx->ring());
    ASSERT_EQ(back.size(), gks.size());
    for (auto& [elt, key] : back) {
        EXPECT_TRUE(key.isCompressed());
        key.expandA(*h->ctx);
    }
    auto a = randomSlots(h->ctx->slots(), 21);
    auto ca = h->encryptSlots(a, 3);
    auto w = h->decryptSlots(h->eval->rotate(ca, 1, back));
    const size_t slots = h->ctx->slots();
    for (size_t k = 0; k < slots; ++k)
        EXPECT_LT(std::abs(w[k] - a[(k + 1) % slots]), 1e-4);
}

TEST_F(SerializeTest, CorruptSeedInCompressedKeyIsDetected)
{
    // Every byte of a compressed key's wire form is checksummed —
    // including the seed, whose corruption would otherwise silently
    // re-expand a *different* (wrong but well-formed) key.
    KeyGenerator keygen(h->ctx);
    SwitchingKey key = keygen.galoisKey(h->sk, 5);
    std::stringstream ss;
    saveSwitchingKeyCompressed(ss, key);
    const std::string bytes = ss.str();

    // Exhaustively flip one bit in each byte of the header region,
    // which contains the 32-byte seed.
    for (size_t off = 0; off < 96 && off < bytes.size(); ++off) {
        std::string bad = bytes;
        bad[off] = static_cast<char>(bad[off] ^ 0x20);
        std::stringstream in(bad);
        EXPECT_THROW(loadSwitchingKey(in, h->ctx->ring()),
                     CorruptStreamError)
            << "flip at offset " << off;
    }
}

TEST_F(SerializeTest, GaloisKeysRoundTrip)
{
    GaloisKeys gks = h->makeGaloisKeys({1, 3}, /*conj=*/true);
    std::stringstream ss;
    saveGaloisKeys(ss, gks);
    GaloisKeys back = loadGaloisKeys(ss, h->ctx->ring());
    ASSERT_EQ(back.size(), gks.size());

    // The reloaded keys must still rotate correctly.
    auto a = randomSlots(h->ctx->slots(), 9);
    auto ca = h->encryptSlots(a, 3);
    auto w = h->decryptSlots(h->eval->rotate(ca, 3, back));
    const size_t slots = h->ctx->slots();
    for (size_t k = 0; k < slots; ++k)
        EXPECT_LT(std::abs(w[k] - a[(k + 3) % slots]), 1e-4);
}

TEST_F(SerializeTest, PublicKeyRoundTripEncrypts)
{
    std::stringstream ss;
    savePublicKey(ss, h->pk);
    PublicKey back = loadPublicKey(ss, h->ctx->ring());
    Encryptor enc2(h->ctx, back);
    auto v = randomSlots(h->ctx->slots(), 10);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 2);
    Ciphertext ct = enc2.encrypt(pt);
    EXPECT_LT(maxError(v, h->decryptSlots(ct)), 1e-5);
}

TEST_F(SerializeTest, SeededCiphertextHalvesWireSizeAndDecrypts)
{
    auto v = randomSlots(h->ctx->slots(), 11);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 3);
    SeededCiphertext sct =
        h->encryptor->encryptSymmetricSeeded(pt, h->sk);

    std::stringstream ss;
    saveSeededCiphertext(ss, sct);
    size_t seeded_bytes = static_cast<size_t>(ss.tellp());

    Ciphertext full = expandSeeded(*h->ctx, sct);
    std::stringstream fs;
    saveCiphertext(fs, full);
    size_t full_bytes = static_cast<size_t>(fs.tellp());
    EXPECT_LT(static_cast<double>(seeded_bytes), 0.55 * full_bytes);

    // Round trip, re-expand, decrypt.
    SeededCiphertext back = loadSeededCiphertext(ss, h->ctx->ring());
    Ciphertext ct = expandSeeded(*h->ctx, back);
    EXPECT_TRUE(ct.c1.equals(full.c1)); // bit-exact expansion
    EXPECT_LT(maxError(v, h->decryptSlots(ct)), 1e-5);
}

TEST_F(SerializeTest, RejectsCorruptedStreams)
{
    auto v = randomSlots(h->ctx->slots(), 7);
    Ciphertext ct = h->encryptSlots(v, 2);
    std::stringstream ss;
    saveCiphertext(ss, ct);
    std::string bytes = ss.str();

    // Wrong magic.
    {
        std::string bad = bytes;
        bad[0] ^= 0xFF;
        std::stringstream in(bad);
        EXPECT_THROW(loadCiphertext(in, h->ctx->ring()),
                     std::invalid_argument);
    }
    // Truncated.
    {
        std::stringstream in(bytes.substr(0, bytes.size() / 2));
        EXPECT_THROW(loadCiphertext(in, h->ctx->ring()),
                     std::invalid_argument);
    }
    // Out-of-range limb value: flip high bits of a data word.
    {
        std::string bad = bytes;
        bad[bad.size() - 5] = char(0xFF);
        bad[bad.size() - 4] = char(0xFF);
        std::stringstream in(bad);
        EXPECT_THROW(loadCiphertext(in, h->ctx->ring()),
                     std::invalid_argument);
    }
}

TEST_F(SerializeTest, PolyFromDifferentRingRejected)
{
    auto v = randomSlots(h->ctx->slots(), 8);
    Plaintext pt = h->encoder->encode(v, h->ctx->scale(), 2);
    std::stringstream ss;
    savePoly(ss, pt.poly);

    CkksParams other = CkksParams::unitTest();
    other.log_n = 11;
    auto other_ctx = std::make_shared<CkksContext>(other);
    EXPECT_THROW(loadPoly(ss, other_ctx->ring()), std::invalid_argument);
}

TEST_F(SerializeTest, SecretKeyRoundTrip)
{
    std::stringstream ss;
    saveSecretKey(ss, h->sk);
    SecretKey back = loadSecretKey(ss, h->ctx->ring());
    EXPECT_TRUE(back.s.equals(h->sk.s));
    EXPECT_EQ(back.s_coeffs, h->sk.s_coeffs);
}

TEST_F(SerializeTest, CorruptStreamErrorCarriesContext)
{
    auto v = randomSlots(h->ctx->slots(), 12);
    Ciphertext ct = h->encryptSlots(v, 2);
    std::stringstream ss;
    saveCiphertext(ss, ct);
    std::string bytes = ss.str();
    bytes[40] ^= 0x10;
    std::stringstream in(bytes);
    try {
        loadCiphertext(in, h->ctx->ring());
        FAIL() << "corrupted stream was accepted";
    } catch (const CorruptStreamError& e) {
        EXPECT_FALSE(e.message().empty());
        EXPECT_NE(e.file(), nullptr);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(std::string(e.what()).find(e.message()),
                  std::string::npos);
    }
}

/**
 * Fuzz-lite: every deterministic single-byte flip and every truncation
 * point (at a stride) of a serialized blob must be rejected with a
 * typed CorruptStreamError — never a crash, std::bad_alloc, silent
 * success, or unbounded allocation.
 */
template <typename LoadFn>
void
fuzzBlob(const std::string& bytes, size_t flip_stride, size_t trunc_stride,
         LoadFn load)
{
    for (size_t off = 0; off < bytes.size(); off += flip_stride) {
        std::string bad = bytes;
        bad[off] = static_cast<char>(bad[off] ^ 0x04);
        std::stringstream in(bad);
        EXPECT_THROW(load(in), CorruptStreamError) << "flip at " << off;
    }
    for (size_t len = 0; len < bytes.size(); len += trunc_stride) {
        std::stringstream in(bytes.substr(0, len));
        EXPECT_THROW(load(in), CorruptStreamError) << "truncate to " << len;
    }
}

TEST_F(SerializeTest, FuzzLiteCiphertext)
{
    auto v = randomSlots(h->ctx->slots(), 13);
    Ciphertext ct = h->encryptSlots(v, 2);
    std::stringstream ss;
    saveCiphertext(ss, ct);
    fuzzBlob(ss.str(), 13, 17, [&](std::istream& in) {
        return loadCiphertext(in, h->ctx->ring());
    });
}

TEST_F(SerializeTest, FuzzLiteSecretKey)
{
    std::stringstream ss;
    saveSecretKey(ss, h->sk);
    fuzzBlob(ss.str(), 97, 101, [&](std::istream& in) {
        return loadSecretKey(in, h->ctx->ring());
    });
}

TEST_F(SerializeTest, FuzzLiteGaloisKeys)
{
    GaloisKeys gks = h->makeGaloisKeys({1});
    for (auto& [elt, key] : gks)
        key.compress();
    std::stringstream ss;
    saveGaloisKeys(ss, gks);
    fuzzBlob(ss.str(), 499, 503, [&](std::istream& in) {
        return loadGaloisKeys(in, h->ctx->ring());
    });
}

} // namespace
} // namespace madfhe
