/**
 * @file
 * Key-material tests, in particular the MAD switching-key seed compression
 * (Section 3.2): the expanded key must be bit-identical, and storage must
 * halve while compressed.
 */
#include <gtest/gtest.h>

#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::maxError;
using test::randomSlots;

class KeysTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(KeysTest, SecretKeyShape)
{
    EXPECT_EQ(h->sk.s.numLimbs(),
              h->ctx->maxLevel() + h->ctx->ring()->numP());
    EXPECT_EQ(h->sk.s.rep(), Rep::Eval);
    EXPECT_EQ(h->sk.s_coeffs.size(), h->ctx->degree());
    for (i64 c : h->sk.s_coeffs) {
        ASSERT_GE(c, -1);
        ASSERT_LE(c, 1);
    }
}

TEST_F(KeysTest, SparseSecretRespectsHammingWeight)
{
    CkksParams p = CkksParams::unitTest();
    p.hamming_weight = 32;
    CkksHarness sparse(p);
    size_t nonzero = 0;
    for (i64 c : sparse.sk.s_coeffs)
        nonzero += (c != 0);
    EXPECT_EQ(nonzero, 32u);

    // The scheme still works with a sparse secret.
    auto v = randomSlots(sparse.ctx->slots(), 1);
    auto ct = sparse.encryptSlots(v, 2);
    EXPECT_LT(maxError(v, sparse.decryptSlots(ct)), 1e-4);
}

TEST_F(KeysTest, SwitchingKeyHasDnumDigits)
{
    EXPECT_EQ(h->rlk.numDigits(), h->ctx->dnum());
}

TEST_F(KeysTest, SeedCompressionRoundTripIsBitExact)
{
    KeyGenerator keygen(h->ctx);
    SwitchingKey key = keygen.galoisKey(h->sk, 5);

    std::vector<RnsPoly> original_a;
    for (size_t j = 0; j < key.numDigits(); ++j)
        original_a.push_back(key.a(j));

    key.compress();
    EXPECT_TRUE(key.isCompressed());
    EXPECT_THROW(key.a(0), std::invalid_argument);

    key.expand(*h->ctx);
    EXPECT_FALSE(key.isCompressed());
    for (size_t j = 0; j < key.numDigits(); ++j)
        EXPECT_TRUE(key.a(j).equals(original_a[j])) << "digit " << j;
}

TEST_F(KeysTest, CompressionHalvesStorage)
{
    KeyGenerator keygen(h->ctx);
    SwitchingKey key = keygen.relinKey(h->sk);
    size_t full = key.storedBytes();
    EXPECT_EQ(full, key.expandedBytes());
    key.compress();
    EXPECT_EQ(key.storedBytes(), full / 2);
}

TEST_F(KeysTest, CompressedKeyStillSwitchesCorrectly)
{
    KeyGenerator keygen(h->ctx);
    SwitchingKey rlk = keygen.relinKey(h->sk);
    rlk.compress();
    rlk.expand(*h->ctx);

    auto a = randomSlots(h->ctx->slots(), 2);
    auto b = randomSlots(h->ctx->slots(), 3);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    auto w = h->decryptSlots(h->eval->mul(ca, cb, rlk));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - a[i] * b[i]), 1e-4);
}

TEST_F(KeysTest, GaloisKeysCoverRequestedStepsOnly)
{
    GaloisKeys gks = h->makeGaloisKeys({1, 2, -1}, /*conj=*/true);
    EXPECT_TRUE(gks.count(h->ctx->ring()->galoisElt(1)));
    EXPECT_TRUE(gks.count(h->ctx->ring()->galoisElt(2)));
    EXPECT_TRUE(gks.count(h->ctx->ring()->galoisElt(-1)));
    EXPECT_TRUE(gks.count(h->ctx->ring()->conjugateElt()));
    EXPECT_FALSE(gks.count(h->ctx->ring()->galoisElt(3)));
    // Step 0 maps to the identity element and never gets a key.
    EXPECT_FALSE(gks.count(1));
}

TEST_F(KeysTest, DistinctKeysFromDistinctSeeds)
{
    KeyGenerator keygen(h->ctx);
    SwitchingKey k1 = keygen.galoisKey(h->sk, 5);
    SwitchingKey k2 = keygen.galoisKey(h->sk, 5);
    // Fresh randomness every call: the two keys must differ.
    EXPECT_FALSE(k1.a(0).equals(k2.a(0)));
    EXPECT_FALSE(k1.b(0).equals(k2.b(0)));
}

TEST_F(KeysTest, PublicKeyDecryptsToNoiseOnly)
{
    // b + a*s = e: must decode to near-zero.
    RnsPoly check = h->pk.a;
    auto basis = check.basis();
    RnsPoly s_q = extractLimbs(h->sk.s, basis);
    check.mulPointwise(s_q);
    check.add(h->pk.b);
    check.toCoeff();
    auto coeffs = CkksEncoder(h->ctx).decodeCoefficients(check);
    for (double c : coeffs)
        ASSERT_LT(std::abs(c), 100.0); // centered-binomial error bound
}

} // namespace
} // namespace madfhe
