/**
 * @file
 * End-to-end bootstrapping test (Algorithm 4) at toy parameters, plus
 * unit tests of ModRaise and the level/shape contracts.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "boot/bootstrapper.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;

BootstrapParams
toyBootParams()
{
    BootstrapParams bp;
    bp.ctos_iters = 3;
    bp.stoc_iters = 3;
    bp.sine_degree = 71;
    bp.k_bound = 8.0;
    return bp;
}

class BootstrapTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        CkksParams p = CkksParams::bootstrapToy();
        p.log_n = 11;
        p.hamming_weight = 16; // keeps |I| < K = 8 w.h.p.
        harness = new CkksHarness(p);
        boot = new Bootstrapper(harness->ctx, toyBootParams());
        KeyGenerator keygen(harness->ctx);
        gks = new GaloisKeys(keygen.galoisKeys(
            harness->sk, boot->requiredRotations(), /*conj=*/true));
    }
    static void
    TearDownTestSuite()
    {
        delete gks;
        delete boot;
        delete harness;
        gks = nullptr;
        boot = nullptr;
        harness = nullptr;
    }
    static CkksHarness* harness;
    static Bootstrapper* boot;
    static GaloisKeys* gks;
};

CkksHarness* BootstrapTest::harness = nullptr;
Bootstrapper* BootstrapTest::boot = nullptr;
GaloisKeys* BootstrapTest::gks = nullptr;

TEST_F(BootstrapTest, ModRaisePreservesMessageModQ0)
{
    auto& h = *harness;
    auto v = test::randomSlots(h.ctx->slots(), 1);
    for (auto& z : v)
        z *= 0.5;
    auto ct = h.encryptSlots(v, 1);
    Ciphertext raised = boot->modRaise(ct);
    EXPECT_EQ(raised.level(), h.ctx->maxLevel());
    // Decrypting the raised ciphertext gives Delta*m + q0*I; dropping it
    // back to one limb removes the q0*I part exactly.
    Ciphertext back = h.eval->dropToLevel(raised, 1);
    EXPECT_LT(test::maxError(v, h.decryptSlots(back)), 1e-4);
}

TEST_F(BootstrapTest, ModRaiseRequiresOneLimb)
{
    auto& h = *harness;
    auto ct = h.encryptSlots(test::randomSlots(h.ctx->slots(), 2), 2);
    EXPECT_THROW(boot->modRaise(ct), std::invalid_argument);
}

TEST_F(BootstrapTest, DepthFitsChain)
{
    EXPECT_LT(boot->depth(), harness->ctx->maxLevel() - 1);
}


TEST_F(BootstrapTest, DoubleHoistedMatvecBootstrapAgrees)
{
    auto& h = *harness;
    BootstrapParams bp = toyBootParams();
    bp.matvec.double_hoist = true;
    Bootstrapper boot2(h.ctx, bp);
    // Same DFT structure => same rotation keys work.
    auto v = test::randomSlots(h.ctx->slots(), 5);
    for (auto& z : v)
        z *= 0.5;
    auto ct = h.encryptSlots(v, 1);
    Ciphertext fresh = boot2.bootstrap(*h.eval, *h.encoder, ct, *gks, h.rlk);
    EXPECT_LT(test::maxError(v, h.decryptSlots(fresh)), 0.02);
}

TEST_F(BootstrapTest, EndToEndRefreshesLevels)
{
    auto& h = *harness;
    const size_t slots = h.ctx->slots();
    // Modest-magnitude messages: the sine approximation needs
    // |Delta*m| << q0.
    auto v = test::randomSlots(slots, 3);
    for (auto& z : v)
        z *= 0.5;

    auto ct = h.encryptSlots(v, 1);
    ASSERT_EQ(ct.level(), 1u);

    Ciphertext fresh = boot->bootstrap(*h.eval, *h.encoder, ct, *gks, h.rlk);

    // Levels were recovered...
    EXPECT_GE(fresh.level(), 2u);
    // ...and the message survived.
    auto w = h.decryptSlots(fresh);
    double max_err = test::maxError(v, w);
    EXPECT_LT(max_err, 0.02) << "bootstrapping precision too low";

    // The refreshed ciphertext is usable: square it.
    Ciphertext sq = h.eval->square(fresh, h.rlk);
    auto w2 = h.decryptSlots(sq);
    for (size_t i = 0; i < slots; ++i)
        EXPECT_LT(std::abs(w2[i] - v[i] * v[i]), 0.05);
}

} // namespace
} // namespace madfhe
