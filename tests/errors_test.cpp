/**
 * @file
 * Error-taxonomy and fault-injection engine tests: throw-site capture,
 * breadcrumbs, legacy catch compatibility, MADFHE_FAULT spec parsing,
 * nth-occurrence arming, and end-to-end detection of an injected limb
 * bit flip by the integrity guards.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "boot/bootstrapper.h"
#include "ckks/serialize.h"
#include "support/faultinject.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::randomSlots;

TEST(ErrorTaxonomyTest, RequireMacroCapturesSiteAndStdBase)
{
    try {
        MAD_REQUIRE(false, "bad argument");
        FAIL();
    } catch (const UserError& e) {
        EXPECT_EQ(e.message(), "bad argument");
        ASSERT_NE(e.file(), nullptr);
        EXPECT_NE(std::string(e.file()).find("errors_test"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(std::string(e.what()).find("errors_test"),
                  std::string::npos);
    }
    // Legacy catch sites keep working: UserError is invalid_argument,
    // InvariantError is logic_error.
    EXPECT_THROW(MAD_REQUIRE(false, "x"), std::invalid_argument);
    EXPECT_THROW(MAD_CHECK(false, "x"), std::logic_error);
    EXPECT_THROW(MAD_REQUIRE(false, "x"), MadError);
    EXPECT_THROW(MAD_CHECK(false, "x"), MadError);
}

TEST(ErrorTaxonomyTest, ErrorOpBreadcrumbIsCapturedAndScoped)
{
    try {
        MAD_ERROR_OP("Mult");
        MAD_ERROR_OP("KeySwitch");
        MAD_REQUIRE(false, "inner failure");
        FAIL();
    } catch (const UserError& e) {
        EXPECT_EQ(e.op(), "Mult > KeySwitch");
        EXPECT_NE(std::string(e.what()).find("Mult > KeySwitch"),
                  std::string::npos);
    }
    // Scopes popped: a fresh throw carries no stale breadcrumb.
    try {
        MAD_REQUIRE(false, "outer failure");
        FAIL();
    } catch (const UserError& e) {
        EXPECT_TRUE(e.op().empty());
    }
}

TEST(ErrorTaxonomyTest, CorruptStreamErrorIsAUserError)
{
    CorruptStreamError e("bad bytes");
    EXPECT_NE(dynamic_cast<const UserError*>(&e), nullptr);
    EXPECT_NE(dynamic_cast<const std::invalid_argument*>(&e), nullptr);
}

TEST(FaultInjectTest, ParseSpecRoundTrips)
{
    auto spec = faultinject::parseSpec("rns.ntt_fwd:3:bitflip:42");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->site, "rns.ntt_fwd");
    EXPECT_EQ(spec->nth, 3u);
    EXPECT_EQ(spec->kind, faultinject::Kind::BitFlip);
    EXPECT_EQ(spec->seed, 42u);

    auto defaulted = faultinject::parseSpec("ckks.moddown:0:taskthrow");
    ASSERT_TRUE(defaulted.has_value());
    EXPECT_EQ(defaulted->seed, 1u);

    EXPECT_FALSE(faultinject::parseSpec("").has_value());
    EXPECT_FALSE(faultinject::parseSpec("siteonly").has_value());
    EXPECT_FALSE(faultinject::parseSpec("a:b:bitflip").has_value());
    EXPECT_FALSE(faultinject::parseSpec("a:1:nosuchkind").has_value());
    EXPECT_FALSE(faultinject::parseSpec(":1:bitflip").has_value());
}

TEST(FaultInjectTest, ArmRejectsUnknownSiteAndInapplicableKind)
{
    faultinject::Spec spec;
    spec.site = "no.such.site";
    EXPECT_THROW(faultinject::arm(spec), UserError);
    // Stream kinds make no sense at a limb kernel site.
    spec.site = "rns.ntt_fwd";
    spec.kind = faultinject::Kind::Truncate;
    EXPECT_THROW(faultinject::arm(spec), UserError);
    EXPECT_FALSE(faultinject::armed());
}

TEST(FaultInjectTest, RegistryCoversTheDataPlane)
{
    // Sites register via static constructors, so an object file the
    // linker discards takes its sites with it. Anchor bootstrapper.o
    // (boot.modraise) — nothing else in this binary references it.
    volatile auto anchor = &Bootstrapper::bootstrap;
    (void)anchor;
    auto sites = faultinject::allSites();
    size_t limb_sites = 0;
    for (const auto& s : sites)
        if (s.kinds & faultinject::kindBit(faultinject::Kind::BitFlip) &&
            s.kinds & faultinject::kindBit(faultinject::Kind::TaskThrow))
            ++limb_sites;
    // The acceptance grid: >= 12 limb sites x 3 kinds.
    EXPECT_GE(limb_sites, 12u);
    EXPECT_GE(sites.size(), 16u);
}

class FaultInjectKernelTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        faultinject::disarm();
        integrity::setEnabled(false);
    }
};

TEST_F(FaultInjectKernelTest, InjectedBitFlipIsDetectedByIntegrityGuard)
{
    CkksHarness h(CkksParams::unitTest());
    auto v = randomSlots(h.ctx->slots(), 1);
    Plaintext pt = h.encoder->encode(v, h.ctx->scale(), 2);
    RnsPoly p = pt.poly;
    p.toCoeff();
    integrity::setEnabled(true);
    faultinject::arm({"rns.ntt_fwd", 0, faultinject::Kind::BitFlip, 9});
    EXPECT_THROW(p.toEval(), FaultDetectedError);
    EXPECT_EQ(faultinject::firedCount(), 1u);
}

TEST_F(FaultInjectKernelTest, BitFlipWithoutIntegrityIsSilent)
{
    // Without integrity checks the flip lands and nothing fires — the
    // contract the campaign's integrity mode exists to close.
    CkksHarness h(CkksParams::unitTest());
    auto v = randomSlots(h.ctx->slots(), 2);
    Plaintext pt = h.encoder->encode(v, h.ctx->scale(), 2);
    RnsPoly clean = pt.poly;
    RnsPoly flipped = pt.poly;
    clean.toCoeff();
    flipped.toCoeff();
    clean.toEval();
    faultinject::arm({"rns.ntt_fwd", 0, faultinject::Kind::BitFlip, 9});
    EXPECT_NO_THROW(flipped.toEval());
    EXPECT_EQ(faultinject::firedCount(), 1u);
    EXPECT_FALSE(clean.equals(flipped));
}

TEST_F(FaultInjectKernelTest, NthOccurrenceSelectsALaterFiring)
{
    CkksHarness h(CkksParams::unitTest());
    auto v = randomSlots(h.ctx->slots(), 3);
    Plaintext pt = h.encoder->encode(v, h.ctx->scale(), 3);
    RnsPoly p = pt.poly;
    p.toCoeff();
    // Fire on the last of the three forward-NTT'd limbs.
    faultinject::arm({"rns.ntt_fwd", 2, faultinject::Kind::BitFlip, 9});
    integrity::setEnabled(true);
    EXPECT_THROW(p.toEval(), FaultDetectedError);
    EXPECT_EQ(faultinject::firedCount(), 1u);
    EXPECT_EQ(faultinject::armedSiteOccurrences(), 3u);
}

TEST_F(FaultInjectKernelTest, DisarmStopsInjection)
{
    CkksHarness h(CkksParams::unitTest());
    faultinject::arm({"rns.ntt_fwd", 0, faultinject::Kind::BitFlip, 9});
    faultinject::disarm();
    integrity::setEnabled(true);
    auto v = randomSlots(h.ctx->slots(), 4);
    Plaintext pt = h.encoder->encode(v, h.ctx->scale(), 2);
    RnsPoly p = pt.poly;
    p.toCoeff();
    EXPECT_NO_THROW(p.toEval());
    EXPECT_EQ(faultinject::firedCount(), 0u);
}

TEST_F(FaultInjectKernelTest, SaveSideCorruptionIsCaughtOnLoad)
{
    CkksHarness h(CkksParams::unitTest());
    auto v = randomSlots(h.ctx->slots(), 5);
    Ciphertext ct = h.encryptSlots(v, 2);
    faultinject::arm(
        {"ckks.serialize_save", 6, faultinject::Kind::ByteCorrupt, 11});
    std::stringstream ss;
    saveCiphertext(ss, ct);
    faultinject::disarm();
    EXPECT_THROW(loadCiphertext(ss, h.ctx->ring()), CorruptStreamError);
}

} // namespace
} // namespace madfhe
