/**
 * @file
 * Power-basis polynomial evaluation tests against the Horner reference.
 */
#include <gtest/gtest.h>

#include "ckks/polyeval.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::randomReals;

class PolyEvalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CkksParams p = CkksParams::unitTest();
        p.num_levels = 12;
        h = std::make_unique<CkksHarness>(p);
    }

    void
    checkPoly(const std::vector<double>& coeffs, double tol)
    {
        PolynomialEvaluator pe(h->ctx, coeffs);
        auto xs = randomReals(h->ctx->slots(), 42);
        Plaintext pt = h->encoder->encodeReal(xs, h->ctx->scale(),
                                              h->ctx->maxLevel());
        Ciphertext ct = h->encryptor->encrypt(pt);
        Ciphertext out = pe.evaluate(*h->eval, *h->encoder, ct, h->rlk);
        auto w = h->encoder->decode(h->decryptor->decrypt(out));
        for (size_t i = 0; i < xs.size(); ++i)
            EXPECT_NEAR(w[i].real(), pe.evalPlain(xs[i]), tol)
                << "slot " << i;
    }

    std::unique_ptr<CkksHarness> h;
};

TEST_F(PolyEvalTest, Linear)
{
    checkPoly({0.5, -2.0}, 1e-4);
}

TEST_F(PolyEvalTest, CubicSigmoidSurrogate)
{
    checkPoly({0.5, 0.25, 0.0, -1.0 / 48.0}, 1e-4);
}

TEST_F(PolyEvalTest, DegreeSeven)
{
    checkPoly({0.1, -0.3, 0.2, 0.05, -0.4, 0.15, 0.02, -0.08}, 5e-3);
}

TEST_F(PolyEvalTest, DegreeTwelveUsesGiants)
{
    std::vector<double> c(13);
    for (size_t k = 0; k < c.size(); ++k)
        c[k] = (k % 2 ? -1.0 : 1.0) / static_cast<double>(k + 1);
    checkPoly(c, 1e-2);
}

TEST_F(PolyEvalTest, SparseCoefficients)
{
    // Only x and x^5 terms.
    checkPoly({0.0, 1.0, 0.0, 0.0, 0.0, -0.5}, 1e-3);
}

TEST_F(PolyEvalTest, HornerReference)
{
    PolynomialEvaluator pe(h->ctx, {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(pe.evalPlain(2.0), 1 + 4 + 12);
    EXPECT_EQ(pe.degree(), 2u);
    EXPECT_THROW(PolynomialEvaluator(h->ctx, {1.0}),
                 std::invalid_argument);
}

} // namespace
} // namespace madfhe
