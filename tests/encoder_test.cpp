/**
 * @file
 * Encoder tests: canonical-embedding roundtrip precision, slot semantics
 * under the automorphisms (rotation/conjugation act on slots exactly as
 * Table 2 specifies), and exact CRT decode.
 */
#include <gtest/gtest.h>

#include "test_util.h"

namespace madfhe {
namespace {

using test::maxError;
using test::randomSlots;

class EncoderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
        encoder = std::make_unique<CkksEncoder>(ctx);
    }
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
};

TEST_F(EncoderTest, RoundTripPrecision)
{
    auto v = randomSlots(ctx->slots(), 1);
    Plaintext pt = encoder->encode(v, ctx->scale(), 3);
    auto w = encoder->decode(pt);
    ASSERT_EQ(w.size(), ctx->slots());
    EXPECT_LT(maxError(v, w), 1e-6);
}

TEST_F(EncoderTest, RealRoundTrip)
{
    auto v = test::randomReals(ctx->slots(), 2);
    Plaintext pt = encoder->encodeReal(v, ctx->scale(), 2);
    auto w = encoder->decode(pt);
    for (size_t i = 0; i < v.size(); ++i) {
        EXPECT_NEAR(w[i].real(), v[i], 1e-6);
        EXPECT_NEAR(w[i].imag(), 0.0, 1e-6);
    }
}

TEST_F(EncoderTest, ScalarFillsAllSlots)
{
    Plaintext pt = encoder->encodeScalar({0.5, -0.25}, ctx->scale(), 1);
    auto w = encoder->decode(pt);
    for (auto z : w) {
        EXPECT_NEAR(z.real(), 0.5, 1e-6);
        EXPECT_NEAR(z.imag(), -0.25, 1e-6);
    }
}

TEST_F(EncoderTest, ShortInputIsZeroPadded)
{
    std::vector<std::complex<double>> v = {{1.0, 0.0}, {2.0, 0.0}};
    Plaintext pt = encoder->encode(v, ctx->scale(), 1);
    auto w = encoder->decode(pt);
    EXPECT_NEAR(w[0].real(), 1.0, 1e-6);
    EXPECT_NEAR(w[1].real(), 2.0, 1e-6);
    for (size_t i = 2; i < w.size(); ++i)
        EXPECT_LT(std::abs(w[i]), 1e-6);
}

TEST_F(EncoderTest, EncodingIsAdditive)
{
    auto a = randomSlots(ctx->slots(), 3);
    auto b = randomSlots(ctx->slots(), 4);
    Plaintext pa = encoder->encode(a, ctx->scale(), 2);
    Plaintext pb = encoder->encode(b, ctx->scale(), 2);
    pa.poly.add(pb.poly);
    auto w = encoder->decode(pa);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - (a[i] + b[i])), 1e-5);
}

TEST_F(EncoderTest, RotationAutomorphismShiftsSlots)
{
    auto v = randomSlots(ctx->slots(), 5);
    Plaintext pt = encoder->encode(v, ctx->scale(), 2);
    const int step = 3;
    u64 t = ctx->ring()->galoisElt(step);
    Plaintext rotated;
    rotated.poly = pt.poly.automorph(t);
    rotated.scale = pt.scale;
    auto w = encoder->decode(rotated);
    const size_t slots = ctx->slots();
    for (size_t k = 0; k < slots; ++k)
        EXPECT_LT(std::abs(w[k] - v[(k + step) % slots]), 1e-5)
            << "slot " << k;
}

TEST_F(EncoderTest, ConjugationAutomorphismConjugatesSlots)
{
    auto v = randomSlots(ctx->slots(), 6);
    Plaintext pt = encoder->encode(v, ctx->scale(), 2);
    Plaintext conj;
    conj.poly = pt.poly.automorph(ctx->ring()->conjugateElt());
    conj.scale = pt.scale;
    auto w = encoder->decode(conj);
    for (size_t k = 0; k < v.size(); ++k)
        EXPECT_LT(std::abs(w[k] - std::conj(v[k])), 1e-5);
}

TEST_F(EncoderTest, MultiplicationOfEncodingsMultipliesSlots)
{
    auto a = randomSlots(ctx->slots(), 7);
    auto b = randomSlots(ctx->slots(), 8);
    Plaintext pa = encoder->encode(a, ctx->scale(), 2);
    Plaintext pb = encoder->encode(b, ctx->scale(), 2);
    pa.poly.mulPointwise(pb.poly);
    pa.scale = pa.scale * pb.scale;
    auto w = encoder->decode(pa);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - a[i] * b[i]), 1e-5);
}

TEST_F(EncoderTest, RejectsBadArguments)
{
    std::vector<std::complex<double>> too_many(ctx->slots() + 1);
    EXPECT_THROW(encoder->encode(too_many, ctx->scale(), 1),
                 std::invalid_argument);
    std::vector<std::complex<double>> ok(4);
    EXPECT_THROW(encoder->encode(ok, -1.0, 1), std::invalid_argument);
    EXPECT_THROW(encoder->encode(ok, ctx->scale(), 0),
                 std::invalid_argument);
    EXPECT_THROW(encoder->encode(ok, ctx->scale(), ctx->maxLevel() + 1),
                 std::invalid_argument);
}

class EncoderLevelSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(EncoderLevelSweep, RoundTripAtEveryLevel)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    CkksEncoder encoder(ctx);
    size_t level = GetParam();
    auto v = randomSlots(ctx->slots(), 100 + level);
    Plaintext pt = encoder.encode(v, ctx->scale(), level);
    EXPECT_LT(maxError(v, encoder.decode(pt)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Levels, EncoderLevelSweep,
                         ::testing::Values(size_t(1), size_t(2), size_t(3),
                                           size_t(4), size_t(5)));

} // namespace
} // namespace madfhe
