/**
 * @file
 * Tests for the multi-tenant serving runtime: batched-vs-sequential
 * result-digest identity (bytes on the real backend, carried values on
 * the virtual one), key-cache LRU/budget behavior, eviction transparency,
 * tenant isolation, wire-frame robustness, and the TCP front end.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ckks/serialize.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "support/faultinject.h"
#include "support/resilience.h"
#include "test_util.h"
#include "virtual/backend.h"

namespace madfhe {
namespace {

using namespace serve;

std::string
ctBytes(const Ciphertext& ct)
{
    std::ostringstream os;
    saveCiphertext(os, ct);
    return os.str();
}

std::string
kskBytes(const SwitchingKey& key)
{
    std::ostringstream os;
    saveSwitchingKey(os, key);
    return os.str();
}

/** One tenant's client-side material, mirroring what the server holds. */
struct Tenant
{
    SecretKey sk;
    TenantKeys keys; ///< the copy registered with the server
    SwitchingKey rlk_expanded;
    GaloisKeys gks_expanded;
};

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::resetAll();
        telemetry::setLevel(telemetry::Level::Counters);
        ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
        encoder = std::make_unique<CkksEncoder>(ctx);
        eval = std::make_unique<Evaluator>(ctx);
    }

    void
    TearDown() override
    {
        telemetry::setLevel(telemetry::Level::Off);
    }

    /** Distinct tenants from one generator (its sampler is stateful). */
    Tenant
    makeTenant(KeyGenerator& keygen, const std::vector<int>& rot_steps)
    {
        Tenant t;
        t.sk = keygen.secretKey();
        t.keys.pk = keygen.publicKey(t.sk);
        t.keys.rlk = keygen.relinKey(t.sk);
        t.keys.gks = keygen.galoisKeys(t.sk, rot_steps);
        t.keys.sk = t.sk;
        t.rlk_expanded = t.keys.rlk;
        t.gks_expanded = t.keys.gks;
        return t;
    }

    Ciphertext
    encryptFor(const Tenant& t, const std::vector<double>& values, u64 seed)
    {
        const Plaintext pt =
            encoder->encodeReal(values, ctx->scale(), ctx->maxLevel());
        Encryptor enc(ctx, t.keys.pk, seed);
        return enc.encrypt(pt);
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<Evaluator> eval;
};

// --- acceptance: batched == sequential, digests included ------------------

TEST_F(ServeTest, FourTenantBatchedMatchesSequential)
{
    const std::vector<int> steps{1, 3};
    KeyGenerator keygen(ctx);
    std::vector<Tenant> tenants;
    for (int i = 0; i < 4; ++i)
        tenants.push_back(makeTenant(keygen, steps));

    // Budget sized so the four rlks (or four rotation keys) of one
    // coalesced batch fit pinned together, but the full working set
    // (4 tenants x 3 switching keys) does not — evictions must happen
    // and must stay invisible.
    const size_t key_bytes = tenants[0].keys.rlk.aBytes();
    ServerOptions opts;
    opts.keycache_bytes = 9 * key_bytes;
    opts.max_batch = 8;
    Server server(ctx, opts);

    std::vector<u64> ids;
    for (auto& t : tenants) {
        TenantKeys reg = t.keys; // keep the client-side copy expanded
        ids.push_back(server.addTenant(std::move(reg)));
    }

    // Per tenant: Put x, Encrypt v, EvalAdd(stored x, fresh), EvalMul,
    // Rotate{1,3} — submitted interleaved across tenants so the batcher
    // coalesces per-op runs spanning all four tenants.
    struct PerTenant
    {
        std::vector<double> v;
        Ciphertext x, y;
    };
    std::vector<PerTenant> in(4);
    for (size_t i = 0; i < 4; ++i) {
        in[i].v = test::randomReals(ctx->slots(), 100 + i);
        in[i].x = encryptFor(tenants[i], test::randomReals(ctx->slots(), i),
                             7000 + i);
        in[i].y = encryptFor(tenants[i], in[i].v, 8000 + i);
    }

    u64 next_id = 1;
    std::vector<std::future<Response>> futs;
    auto submit = [&](size_t i, Op op, Request req) {
        const u64 rid = next_id++;
        req.tenant = ids[i];
        req.id = rid;
        req.op = op;
        futs.push_back(server.submit(std::move(req)));
        return rid;
    };

    std::vector<u64> encrypt_ids(4);
    for (size_t i = 0; i < 4; ++i) {
        Request put;
        put.name = "x";
        put.cts = {in[i].x};
        submit(i, Op::Put, std::move(put));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request enc;
        enc.values = in[i].v;
        encrypt_ids[i] = submit(i, Op::Encrypt, std::move(enc));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request add;
        add.name = "x";
        add.cts = {in[i].y};
        submit(i, Op::EvalAdd, std::move(add));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request mul;
        mul.cts = {in[i].x, in[i].y};
        submit(i, Op::EvalMul, std::move(mul));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request rot;
        rot.steps = steps;
        rot.cts = {in[i].x};
        submit(i, Op::Rotate, std::move(rot));
    }
    server.drain();

    std::vector<Response> got;
    for (auto& f : futs)
        got.push_back(f.get());
    for (const Response& r : got)
        ASSERT_TRUE(r.ok) << r.error;

    // Sequential reference: same requests against a bare Evaluator with
    // the tenants' (never-compressed) client-side keys and the same
    // deterministic per-request encryption seeds. Identity is checked
    // through the backend's resultDigest — the determinism contract the
    // backend seam exposes (serialized bytes here on the real backend) —
    // so the same assertions hold verbatim in virtual mode below.
    const EvalBackend& be = server.backend();
    auto digest = [&](const Ciphertext& ct) { return be.resultDigest(ct); };
    for (size_t i = 0; i < 4; ++i) {
        const Tenant& t = tenants[i];
        const Ciphertext enc_ref = encryptFor(
            t, in[i].v, Server::encryptionSeedFor(ids[i], encrypt_ids[i]));
        EXPECT_EQ(digest(got[4 + i].cts[0]), digest(enc_ref));

        const Ciphertext add_ref = eval->addAligned(in[i].x, in[i].y);
        EXPECT_EQ(digest(got[8 + i].cts[0]), digest(add_ref));

        const Ciphertext mul_ref =
            eval->mul(in[i].x, in[i].y, t.rlk_expanded);
        EXPECT_EQ(digest(got[12 + i].cts[0]), digest(mul_ref));

        const std::vector<Ciphertext> rot_ref =
            eval->rotateHoisted(in[i].x, steps, t.gks_expanded);
        ASSERT_EQ(got[16 + i].cts.size(), rot_ref.size());
        for (size_t k = 0; k < rot_ref.size(); ++k)
            EXPECT_EQ(digest(got[16 + i].cts[k]), digest(rot_ref[k]));
    }

    // The cache honored its budget (the counter-backed acceptance
    // criterion) and actually had to evict to do so.
    const KeyCache::Stats stats = server.keyCacheStats();
    EXPECT_EQ(stats.budget_bytes, 9 * key_bytes);
    EXPECT_LE(stats.peak_bytes, stats.budget_bytes);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.overcommits, 0u);
    EXPECT_EQ(stats.entries, 4 * 3u);

    // Per-tenant attribution: every tenant shows its own request count.
    for (u64 id : ids) {
        const std::string base = "serve.tenant." + std::to_string(id);
        EXPECT_EQ(telemetry::counter(base + ".requests").value(), 5u);
        EXPECT_EQ(telemetry::counter(base + ".errors").value(), 0u);
        EXPECT_EQ(
            telemetry::histogram(base + ".latency_ns").snapshot().count, 5u);
    }
    EXPECT_EQ(telemetry::counter("serve.requests").value(), 20u);
    EXPECT_GT(telemetry::counter("serve.batch.coalesced").value(), 0u);
}

/**
 * The same batched-vs-sequential acceptance in virtual mode: the digest
 * seam validates value identity against a bare VirtualBackend reference
 * instead of silently skipping when bytes can't be compared. Operands
 * come from the backend itself — a virtual server rejects real
 * client-encrypted ciphertexts by design.
 */
TEST_F(ServeTest, FourTenantBatchedMatchesSequentialVirtual)
{
    const std::vector<int> steps{1, 3};
    KeyGenerator keygen(ctx);
    std::vector<Tenant> tenants;
    for (int i = 0; i < 4; ++i)
        tenants.push_back(makeTenant(keygen, steps));

    const size_t key_bytes = tenants[0].keys.rlk.aBytes();
    ServerOptions opts;
    opts.keycache_bytes = 9 * key_bytes;
    opts.max_batch = 8;
    opts.backend = BackendKind::Virtual;
    Server server(ctx, opts);
    ASSERT_EQ(server.backend().kind(), BackendKind::Virtual);

    const vbackend::VirtualBackend ref(ctx);

    std::vector<u64> ids;
    for (auto& t : tenants) {
        TenantKeys reg = t.keys;
        ids.push_back(server.addTenant(std::move(reg)));
    }

    struct PerTenant
    {
        std::vector<double> v;
        Ciphertext x, y;
    };
    std::vector<PerTenant> in(4);
    for (size_t i = 0; i < 4; ++i) {
        in[i].v = test::randomReals(ctx->slots(), 100 + i);
        in[i].x = ref.encryptReal(tenants[i].keys.pk,
                                  test::randomReals(ctx->slots(), i),
                                  7000 + i);
        in[i].y = ref.encryptReal(tenants[i].keys.pk, in[i].v, 8000 + i);
    }

    u64 next_id = 1;
    std::vector<std::future<Response>> futs;
    auto submit = [&](size_t i, Op op, Request req) {
        const u64 rid = next_id++;
        req.tenant = ids[i];
        req.id = rid;
        req.op = op;
        futs.push_back(server.submit(std::move(req)));
        return rid;
    };

    std::vector<u64> encrypt_ids(4);
    for (size_t i = 0; i < 4; ++i) {
        Request put;
        put.name = "x";
        put.cts = {in[i].x};
        submit(i, Op::Put, std::move(put));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request enc;
        enc.values = in[i].v;
        encrypt_ids[i] = submit(i, Op::Encrypt, std::move(enc));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request add;
        add.name = "x";
        add.cts = {in[i].y};
        submit(i, Op::EvalAdd, std::move(add));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request mul;
        mul.cts = {in[i].x, in[i].y};
        submit(i, Op::EvalMul, std::move(mul));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request rot;
        rot.steps = steps;
        rot.cts = {in[i].x};
        submit(i, Op::Rotate, std::move(rot));
    }
    server.drain();

    std::vector<Response> got;
    for (auto& f : futs)
        got.push_back(f.get());
    for (const Response& r : got)
        ASSERT_TRUE(r.ok) << r.error;

    auto digest = [&](const Ciphertext& ct) { return ref.resultDigest(ct); };
    for (size_t i = 0; i < 4; ++i) {
        const Tenant& t = tenants[i];
        // Virtual Encrypt is deterministic in the values alone; the
        // server-derived seed is accepted and ignored.
        const Ciphertext enc_ref = ref.encryptReal(
            t.keys.pk, in[i].v,
            Server::encryptionSeedFor(ids[i], encrypt_ids[i]));
        EXPECT_EQ(digest(got[4 + i].cts[0]), digest(enc_ref));

        const Ciphertext add_ref = ref.addAligned(in[i].x, in[i].y);
        EXPECT_EQ(digest(got[8 + i].cts[0]), digest(add_ref));

        const Ciphertext mul_ref = ref.mul(in[i].x, in[i].y, t.rlk_expanded);
        EXPECT_EQ(digest(got[12 + i].cts[0]), digest(mul_ref));

        const std::vector<Ciphertext> rot_ref =
            ref.rotateHoisted(in[i].x, steps, t.gks_expanded);
        ASSERT_EQ(got[16 + i].cts.size(), rot_ref.size());
        for (size_t k = 0; k < rot_ref.size(); ++k)
            EXPECT_EQ(digest(got[16 + i].cts[k]), digest(rot_ref[k]));
    }

    // The control plane behaved identically: same request accounting,
    // same key-cache budget discipline, batching still coalesced.
    const KeyCache::Stats stats = server.keyCacheStats();
    EXPECT_LE(stats.peak_bytes, stats.budget_bytes);
    EXPECT_EQ(stats.overcommits, 0u);
    EXPECT_EQ(telemetry::counter("serve.requests").value(), 20u);
    EXPECT_GT(telemetry::counter("serve.batch.coalesced").value(), 0u);
}

// --- key cache ------------------------------------------------------------

TEST_F(ServeTest, KeyCacheLruOrderDeterministic)
{
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    SwitchingKey k3 = keygen.galoisKey(sk, ctx->ring()->galoisElt(2));
    const size_t key_bytes = k1.aBytes();

    KeyCache cache(ctx, 2 * key_bytes);
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);
    const auto id3 = cache.insert(1, "k3", &k3);
    EXPECT_TRUE(k1.isCompressed()); // insert compresses

    { auto l = cache.acquire(id1); }
    { auto l = cache.acquire(id2); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k1", "k2"}));

    // Third expansion evicts the LRU entry (k1), deterministically.
    { auto l = cache.acquire(id3); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k2", "k3"}));
    EXPECT_FALSE(cache.isResident(id1));
    EXPECT_TRUE(k1.isCompressed());

    // A hit refreshes recency: k2 becomes MRU, so k3 is evicted next.
    { auto l = cache.acquire(id2); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k3", "k2"}));
    { auto l = cache.acquire(id1); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k2", "k1"}));

    const KeyCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_LE(stats.peak_bytes, stats.budget_bytes);
}

TEST_F(ServeTest, EvictionAndReexpansionAreByteIdentical)
{
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    const std::string original = kskBytes(k1); // fully expanded form

    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    {
        auto l = cache.acquire(id1);
        EXPECT_EQ(kskBytes(k1), original);
    }
    { auto l = cache.acquire(id2); } // evicts k1 back to seed-only
    EXPECT_FALSE(cache.isResident(id1));
    {
        auto l = cache.acquire(id1); // re-expansion from the seed
        EXPECT_EQ(kskBytes(k1), original);
    }
}

TEST_F(ServeTest, PinnedKeysAreNeverEvicted)
{
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));

    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    auto pin = cache.acquire(id1);
    // The budget only fits one key and k1 is pinned: acquiring k2 must
    // overcommit rather than rip k1 out from under its user.
    { auto l = cache.acquire(id2); }
    EXPECT_FALSE(k1.isCompressed());
    const KeyCache::Stats stats = cache.stats();
    EXPECT_GT(stats.overcommits, 0u);
    EXPECT_GT(stats.peak_bytes, stats.budget_bytes);
}

TEST_F(ServeTest, TenantEvictionIsolation)
{
    // Tenant A's results must be unaffected by tenant B thrashing the
    // shared budget between A's requests.
    const std::vector<int> steps{1};
    KeyGenerator keygen(ctx);
    Tenant a = makeTenant(keygen, steps);
    Tenant b = makeTenant(keygen, {1, 2, 3});

    ServerOptions opts;
    opts.keycache_bytes = 2 * a.keys.rlk.aBytes();
    Server server(ctx, opts);
    const u64 ta = server.addTenant(a.keys);
    const u64 tb = server.addTenant(b.keys);

    const Ciphertext ct_a =
        encryptFor(a, test::randomReals(ctx->slots(), 1), 42);
    const Ciphertext ct_b =
        encryptFor(b, test::randomReals(ctx->slots(), 2), 43);

    auto rotate = [&](u64 tenant, const Ciphertext& ct, int step) {
        Request req;
        req.tenant = tenant;
        req.id = tenant * 1000 + static_cast<u64>(step);
        req.op = Op::Rotate;
        req.steps = {step};
        req.cts = {ct};
        Response resp = server.submit(std::move(req)).get();
        EXPECT_TRUE(resp.ok) << resp.error;
        return resp.cts.at(0);
    };

    const Ciphertext before = rotate(ta, ct_a, 1);
    // Thrash: B's rotations evict A's Galois key several times over.
    for (int round = 0; round < 3; ++round)
        for (int step : {1, 2, 3})
            rotate(tb, ct_b, step);
    const Ciphertext after = rotate(ta, ct_a, 1);

    EXPECT_EQ(ctBytes(before), ctBytes(after));
    EXPECT_EQ(ctBytes(before),
              ctBytes(eval->rotate(ct_a, 1, a.gks_expanded)));
    EXPECT_GT(server.keyCacheStats().evictions, 0u);
}

// --- wire robustness ------------------------------------------------------

TEST_F(ServeTest, CorruptFrameYieldsTypedErrorResponse)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id;
    req.id = 9;
    req.op = Op::Encrypt;
    req.values = {1.0, 2.0};
    std::string frame = encodeRequest(req);

    // Clean round-trip first.
    Response ok = server.submitFrame(frame).get();
    ASSERT_TRUE(ok.ok) << ok.error;
    ASSERT_EQ(ok.cts.size(), 1u);

    // A flipped bit in the header must be rejected as CorruptStream —
    // never silently served — and must not take the server down.
    std::string bad = frame;
    bad[17] ^= 0x10; // inside the tenant-id field
    Response resp = server.submitFrame(bad).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::CorruptStream);
    EXPECT_THROW(throwIfError(resp), CorruptStreamError);

    // Truncation likewise.
    Response trunc = server.submitFrame(frame.substr(0, 20)).get();
    EXPECT_FALSE(trunc.ok);
    EXPECT_EQ(trunc.error_kind, ErrorKind::CorruptStream);

    // And the server still serves.
    Response again = server.submitFrame(frame).get();
    EXPECT_TRUE(again.ok) << again.error;
    EXPECT_EQ(ctBytes(again.cts[0]), ctBytes(ok.cts[0]));
}

TEST_F(ServeTest, UnknownTenantAndBadOpsReportUserErrors)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id + 999;
    req.op = Op::Get;
    req.name = "x";
    Response resp = server.submit(std::move(req)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::User);

    Request missing;
    missing.tenant = id;
    missing.op = Op::Get;
    missing.name = "nope";
    resp = server.submit(std::move(missing)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::User);
    EXPECT_THROW(throwIfError(resp), UserError);
    EXPECT_GT(telemetry::counter("serve.errors").value(), 0u);
}

TEST_F(ServeTest, ClassifyCurrentExceptionPreservesTaxonomy)
{
    auto classify = [](auto&& thrower) {
        try {
            thrower();
        } catch (...) {
            return classifyCurrentException();
        }
        return std::pair<ErrorKind, std::string>{ErrorKind::None, ""};
    };

    auto user = classify(
        [] { throw UserError("bad knob", __FILE__, __LINE__); });
    EXPECT_EQ(user.first, ErrorKind::User);
    EXPECT_NE(user.second.find("bad knob"), std::string::npos);
    // The file:line breadcrumb survives classification.
    EXPECT_NE(user.second.find("serve_test"), std::string::npos);

    auto corrupt = classify(
        [] { throw CorruptStreamError("short frame", __FILE__, __LINE__); });
    EXPECT_EQ(corrupt.first, ErrorKind::CorruptStream);
    EXPECT_NE(corrupt.second.find("short frame"), std::string::npos);

    auto fault = classify(
        [] { throw FaultDetectedError("digest mismatch"); });
    EXPECT_EQ(fault.first, ErrorKind::FaultDetected);

    // Invariant violations map to Other with the breadcrumbed what()
    // intact — never erased into a generic string — and are counted.
    const u64 before = telemetry::counter("serve.errors.invariant").value();
    auto inv = classify(
        [] { throw InvariantError("meta missing", __FILE__, __LINE__); });
    EXPECT_EQ(inv.first, ErrorKind::Other);
    EXPECT_NE(inv.second.find("meta missing"), std::string::npos);
    EXPECT_NE(inv.second.find("serve_test"), std::string::npos);
    EXPECT_GE(telemetry::counter("serve.errors.invariant").value(), before);

    auto plain = classify([] { throw std::runtime_error("plain"); });
    EXPECT_EQ(plain.first, ErrorKind::Other);
    EXPECT_NE(plain.second.find("plain"), std::string::npos);

    // Non-std::exception throws classify as Other/"unknown error" and
    // bump the unclassified counter instead of vanishing.
    const u64 uncls =
        telemetry::counter("serve.errors.unclassified").value();
    auto unknown = classify([] { throw 42; });
    EXPECT_EQ(unknown.first, ErrorKind::Other);
    EXPECT_NE(unknown.second.find("unknown error"), std::string::npos);
    EXPECT_GT(telemetry::counter("serve.errors.unclassified").value(),
              uncls);
}

// --- end-to-end over TCP --------------------------------------------------

TEST_F(ServeTest, TcpRoundTripServesEncryptedKv)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {1});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);
    TcpFrontEnd tcp(server, 0);
    ASSERT_NE(tcp.port(), 0);

    const Ciphertext value =
        encryptFor(t, test::randomReals(ctx->slots(), 5), 77);

    Request put;
    put.tenant = id;
    put.id = 1;
    put.op = Op::Put;
    put.name = "answer";
    put.cts = {value};
    Response put_resp = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), encodeRequest(put)),
        ctx->ring());
    ASSERT_TRUE(put_resp.ok) << put_resp.error;

    Request get;
    get.tenant = id;
    get.id = 2;
    get.op = Op::Get;
    get.name = "answer";
    Response get_resp = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), encodeRequest(get)),
        ctx->ring());
    ASSERT_TRUE(get_resp.ok) << get_resp.error;
    ASSERT_EQ(get_resp.cts.size(), 1u);
    EXPECT_EQ(ctBytes(get_resp.cts[0]), ctBytes(value));

    // A garbage frame gets an error response, not a dropped connection.
    Response bad = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), std::string(64, 'Z')),
        ctx->ring());
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error_kind, ErrorKind::CorruptStream);

    // A mid-dispatch throw (unknown tenant) must reach the client as the
    // typed User error, not a closed socket or an untyped Other.
    Request rogue;
    rogue.tenant = id + 999;
    rogue.id = 3;
    rogue.op = Op::Get;
    rogue.name = "answer";
    Response typed = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), encodeRequest(rogue)),
        ctx->ring());
    EXPECT_FALSE(typed.ok);
    EXPECT_EQ(typed.error_kind, ErrorKind::User);
    EXPECT_THROW(throwIfError(typed), UserError);
}

// --- fault injection through the serving path -----------------------------

TEST_F(ServeTest, InjectedDecodeFaultIsDetected)
{
    faultinject::Spec spec;
    spec.site = "serve.decode";
    spec.nth = 2;
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);

    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id;
    req.id = 1;
    req.op = Op::Encrypt;
    req.values = {3.0};
    Response resp = server.submitFrame(encodeRequest(req)).get();
    faultinject::disarm();

    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::CorruptStream);

    // Disarmed, the same frame decodes fine.
    Response clean = server.submitFrame(encodeRequest(req)).get();
    EXPECT_TRUE(clean.ok) << clean.error;
}

// --- key cache accounting under faults ------------------------------------

TEST_F(ServeTest, KeyCacheRollsBackAccountingWhenExpandFaults)
{
    // Regression: a fault thrown during re-expansion (the serve.evict
    // guard window) used to leave the entry charged/resident, stranding
    // budget bytes and — worse — leaving a corrupt a-half for the next
    // hit to serve silently. The miss path must roll back to seed-only.
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    const std::string original = kskBytes(k1);

    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);

    faultinject::Spec spec;
    spec.site = "serve.evict";
    spec.nth = 0;
    spec.kind = faultinject::Kind::TaskThrow;
    faultinject::arm(spec);
    EXPECT_THROW({ auto l = cache.acquire(id1); },
                 faultinject::InjectedFault);
    faultinject::disarm();

    // Nothing charged, nothing resident, key back in seed-only form.
    KeyCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.resident_bytes, 0u);
    EXPECT_EQ(stats.resident_entries, 0u);
    EXPECT_EQ(stats.pinned_entries, 0u);
    EXPECT_FALSE(cache.isResident(id1));
    EXPECT_TRUE(k1.isCompressed());

    // The next acquire re-expands cleanly and byte-identically.
    {
        auto l = cache.acquire(id1);
        EXPECT_EQ(kskBytes(k1), original);
        EXPECT_EQ(cache.stats().resident_bytes, k1.aBytes());
    }

    // Same rollback when the fault is a detected corruption (BitFlip
    // with integrity on): the corrupt half must not stay resident.
    const bool was_on = integrity::enabled();
    integrity::setEnabled(true);
    { auto l = cache.acquire(id1); } // still resident: evict first
    cache.evictUnpinned();
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);
    EXPECT_THROW({ auto l = cache.acquire(id1); }, FaultDetectedError);
    faultinject::disarm();
    integrity::setEnabled(was_on);
    EXPECT_FALSE(cache.isResident(id1));
    EXPECT_EQ(cache.stats().resident_bytes, 0u);
    {
        auto l = cache.acquire(id1); // re-expansion repairs the flip
        EXPECT_EQ(kskBytes(k1), original);
    }
}

TEST_F(ServeTest, ConcurrentLeasesSurviveProactiveEviction)
{
    // A governor eviction sweep racing evaluator leases must never rip
    // a pinned key out from under its user and must never deadlock.
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    std::vector<SwitchingKey> keys;
    for (int i = 1; i <= 4; ++i)
        keys.push_back(keygen.galoisKey(sk, ctx->ring()->galoisElt(i)));
    std::vector<std::string> originals;
    for (SwitchingKey& k : keys)
        originals.push_back(kskBytes(k));

    KeyCache cache(ctx, 2 * keys[0].aBytes());
    std::vector<KeyCache::EntryId> ids;
    for (size_t i = 0; i < keys.size(); ++i)
        ids.push_back(
            cache.insert(1, "k" + std::to_string(i), &keys[i]));

    std::atomic<bool> stop{false};
    std::atomic<bool> violation{false};
    std::vector<std::thread> users;
    for (int u = 0; u < 2; ++u) {
        users.emplace_back([&, u] {
            for (int iter = 0; iter < 400; ++iter) {
                const size_t i = static_cast<size_t>(u * 2 + iter % 2);
                auto l = cache.acquire(ids[i]);
                // Pinned: the sweeper must not compress this key.
                if (keys[i].isCompressed())
                    violation.store(true);
            }
        });
    }
    std::thread sweeper([&] {
        while (!stop.load())
            cache.evictUnpinned();
    });
    for (std::thread& t : users)
        t.join();
    stop.store(true);
    sweeper.join();

    EXPECT_FALSE(violation.load());
    KeyCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.pinned_entries, 0u);
    // Every key still round-trips byte-identically after the storm.
    for (size_t i = 0; i < keys.size(); ++i) {
        auto l = cache.acquire(ids[i]);
        EXPECT_EQ(kskBytes(keys[i]), originals[i]);
    }
}

// --- deadlines, retry, admission control ----------------------------------

TEST_F(ServeTest, DeadlineExpiresWhileQueuedYieldsTypedError)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    const Ciphertext x = encryptFor(t, test::randomReals(ctx->slots(), 1), 1);
    const Ciphertext y = encryptFor(t, test::randomReals(ctx->slots(), 2), 2);

    // Stuff the queue with work that far outlasts a 1 ms deadline, then
    // submit a cheap request that cannot possibly be served in time.
    std::vector<std::future<Response>> muls;
    for (int i = 0; i < 128; ++i) {
        Request mul;
        mul.tenant = id;
        mul.id = static_cast<u64>(100 + i);
        mul.op = Op::EvalMul;
        mul.cts = {x, y};
        muls.push_back(server.submit(std::move(mul)));
    }
    Request put;
    put.tenant = id;
    put.id = 1;
    put.op = Op::Put;
    put.name = "v";
    put.cts = {x};
    put.deadline_ms = 1;
    Response late = server.submit(std::move(put)).get();

    EXPECT_FALSE(late.ok);
    EXPECT_EQ(late.error_kind, ErrorKind::DeadlineExceeded);
    EXPECT_THROW(throwIfError(late), resilience::DeadlineExceededError);
    EXPECT_GT(telemetry::counter("serve.deadline_expired").value(), 0u);
    for (auto& f : muls)
        EXPECT_TRUE(f.get().ok);
    // The expired request never executed: nothing was stored.
    Request get;
    get.tenant = id;
    get.id = 2;
    get.op = Op::Get;
    get.name = "v";
    EXPECT_EQ(server.submit(std::move(get)).get().error_kind,
              ErrorKind::User);
}

TEST_F(ServeTest, DeadlineSurvivesWireRoundTrip)
{
    Request req;
    req.tenant = 3;
    req.id = 11;
    req.op = Op::Get;
    req.name = "x";
    req.deadline_ms = 2500;
    const Request back =
        decodeRequest(encodeRequest(req), ctx->ring());
    EXPECT_EQ(back.deadline_ms, 2500u);
}

TEST_F(ServeTest, RetryRecoversInjectedDecodeFaultByteIdentically)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    resilience::RetryPolicy rp;
    rp.max_attempts = 3;
    rp.base_backoff_ns = 1'000; // keep the test fast
    ServerOptions opts;
    opts.retry = rp;
    Server server(ctx, opts);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id;
    req.id = 1;
    req.op = Op::Encrypt;
    req.values = {3.0, 4.0};
    const std::string frame = encodeRequest(req);

    const Response clean = server.submitFrame(frame).get();
    ASSERT_TRUE(clean.ok) << clean.error;

    faultinject::Spec spec;
    spec.site = "serve.decode";
    spec.nth = 2;
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);
    const Response retried = server.submitFrame(frame).get();
    faultinject::disarm();

    // The fault fired (same spec fails outright without retries, see
    // InjectedDecodeFaultIsDetected) but the re-decode succeeded and
    // the result is byte-identical to the fault-free run.
    ASSERT_TRUE(retried.ok) << retried.error;
    ASSERT_EQ(retried.cts.size(), 1u);
    EXPECT_EQ(ctBytes(retried.cts[0]), ctBytes(clean.cts[0]));
    EXPECT_GT(telemetry::counter("serve.retry").value(), 0u);
}

TEST_F(ServeTest, RetryRecoversKeyExpansionFaultWithIntegrityOn)
{
    const bool was_on = integrity::enabled();
    integrity::setEnabled(true);

    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    resilience::RetryPolicy rp;
    rp.max_attempts = 2;
    rp.base_backoff_ns = 1'000;
    ServerOptions opts;
    opts.retry = rp;
    Server server(ctx, opts);
    const u64 id = server.addTenant(t.keys);

    const Ciphertext x = encryptFor(t, test::randomReals(ctx->slots(), 3), 5);
    const Ciphertext y = encryptFor(t, test::randomReals(ctx->slots(), 4), 6);

    // The first EvalMul misses the key cache; the guarded re-expansion
    // takes the bit flip, acquire() rolls back, and the server retries
    // the pin — the second expansion is clean and byte-identical.
    faultinject::Spec spec;
    spec.site = "serve.evict";
    spec.nth = 0;
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);
    Request mul;
    mul.tenant = id;
    mul.id = 1;
    mul.op = Op::EvalMul;
    mul.cts = {x, y};
    const Response resp = server.submit(std::move(mul)).get();
    faultinject::disarm();
    integrity::setEnabled(was_on);

    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(ctBytes(resp.cts[0]),
              ctBytes(eval->mul(x, y, t.rlk_expanded)));
    EXPECT_GT(telemetry::counter("serve.retry").value(), 0u);
}

TEST_F(ServeTest, CircuitBreakerTripsAndRecoversViaHalfOpenProbe)
{
    const bool was_on = integrity::enabled();
    integrity::setEnabled(true);

    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    GovernorOptions gov;
    gov.breaker_threshold = 2;
    gov.breaker_cooldown_ms = 50;
    ServerOptions opts;
    opts.governor = gov;
    Server server(ctx, opts);
    const u64 id = server.addTenant(t.keys);

    const Ciphertext x = encryptFor(t, test::randomReals(ctx->slots(), 7), 8);
    const Ciphertext y = encryptFor(t, test::randomReals(ctx->slots(), 8), 9);
    auto mulReq = [&](u64 rid) {
        Request mul;
        mul.tenant = id;
        mul.id = rid;
        mul.op = Op::EvalMul;
        mul.cts = {x, y};
        return mul;
    };

    // Two consecutive service-side failures (detected expansion faults)
    // trip the breaker. acquire() rolls back each time, so every
    // request re-expands and every armed fault fires.
    for (u64 i = 0; i < 2; ++i) {
        faultinject::Spec spec;
        spec.site = "serve.evict";
        spec.nth = 0;
        spec.kind = faultinject::Kind::BitFlip;
        faultinject::arm(spec);
        const Response resp = server.submit(mulReq(i)).get();
        EXPECT_FALSE(resp.ok);
        EXPECT_EQ(resp.error_kind, ErrorKind::FaultDetected);
        faultinject::disarm();
    }
    EXPECT_EQ(server.governor().breakerTrips(id), 1u);

    // Open: requests are rejected without executing.
    const Response rejected = server.submit(mulReq(10)).get();
    EXPECT_FALSE(rejected.ok);
    EXPECT_EQ(rejected.error_kind, ErrorKind::Overloaded);
    EXPECT_THROW(throwIfError(rejected), resilience::OverloadedError);
    EXPECT_GT(telemetry::counter("serve.breaker_open").value(), 0u);

    // After the cooldown the half-open probe runs, succeeds, and closes
    // the breaker for good.
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const Response probe = server.submit(mulReq(11)).get();
    ASSERT_TRUE(probe.ok) << probe.error;
    EXPECT_EQ(ctBytes(probe.cts[0]),
              ctBytes(eval->mul(x, y, t.rlk_expanded)));
    const Response after = server.submit(mulReq(12)).get();
    EXPECT_TRUE(after.ok) << after.error;

    integrity::setEnabled(was_on);
}

TEST(OverloadGovernorTest, AdmitReservesSlotAtomically)
{
    // admit() must check and reserve under one lock: the caps are hard
    // bounds, and every admission (even one the caller then rejects for
    // a full global queue) pairs with exactly one onFinish.
    GovernorOptions gov;
    gov.queue_depth = 2;
    gov.tenant_queue_depth = 2;
    OverloadGovernor g(gov);

    bool full = true;
    EXPECT_FALSE(g.admit(1, 0, full).has_value());
    EXPECT_FALSE(full);
    EXPECT_FALSE(g.admit(2, 0, full).has_value());
    EXPECT_FALSE(full);
    EXPECT_EQ(g.inflight(), 2u);

    // Global queue at depth: still admitted (the caller sheds a queued
    // victim or releases), but flagged.
    EXPECT_FALSE(g.admit(2, 0, full).has_value());
    EXPECT_TRUE(full);
    EXPECT_EQ(g.inflight(), 3u);
    // Nothing sheddable: the caller releases the reservation.
    g.onFinish(2, false, ErrorKind::Overloaded, /*executed=*/false, 0);
    EXPECT_EQ(g.inflight(), 2u);

    // Tenant cap is checked against the reserved count, so a third
    // same-tenant admit rejects outright (nothing to release).
    EXPECT_FALSE(g.admit(2, 0, full).has_value());
    EXPECT_TRUE(g.admit(2, 0, full).has_value());
    EXPECT_EQ(g.inflight(), 3u);
}

TEST(OverloadGovernorTest, ShedProbeReturnsToCooldownNotLockout)
{
    // Regression: a half-open probe that was admitted and then resolved
    // without executing (shed / deadline-expired) used to leak the
    // probe slot — no request of that tenant was ever admitted again.
    constexpr u64 kCooldownNs = 1'000'000; // = 1 ms, the config unit
    GovernorOptions gov;
    gov.breaker_threshold = 1;
    gov.breaker_cooldown_ms = 1;
    OverloadGovernor g(gov);

    bool full = false;
    ASSERT_FALSE(g.admit(7, 0, full).has_value());
    g.onFinish(7, false, ErrorKind::FaultDetected, /*executed=*/true, 0);
    EXPECT_EQ(g.breakerTrips(7), 1u);
    EXPECT_TRUE(g.admit(7, 10, full).has_value()); // Open: rejected

    // Cooldown elapses; the probe is admitted, then shed before it runs.
    ASSERT_FALSE(g.admit(7, kCooldownNs, full).has_value());
    g.onFinish(7, false, ErrorKind::Overloaded, /*executed=*/false,
               kCooldownNs + 100);

    // The slot came back: Open again, and one more cooldown later a
    // fresh probe is admitted and can close the breaker.
    EXPECT_TRUE(g.admit(7, kCooldownNs + 200, full).has_value());
    ASSERT_FALSE(g.admit(7, 2 * kCooldownNs + 100, full).has_value());
    g.onFinish(7, true, ErrorKind::None, /*executed=*/true,
               2 * kCooldownNs + 200);
    EXPECT_FALSE(g.admit(7, 2 * kCooldownNs + 300, full).has_value());
}

TEST_F(ServeTest, ProactiveEvictionFaultIsContainedByGovernor)
{
    // Regression: an injected serve.evict fault during the governor's
    // proactive eviction sweep used to unwind into the dispatcher
    // thread and std::terminate the server. observeCachePressure must
    // contain it (the cache stays consistent — the guard fires before
    // any accounting changes) and count it.
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(2));

    KeyCache cache(ctx, k1.aBytes()); // room for one expanded key
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    OverloadGovernor g(GovernorOptions{});
    {
        // Pin both: the second acquire overcommits (counted, not failed).
        auto l1 = cache.acquire(id1);
        auto l2 = cache.acquire(id2);
    }
    ASSERT_GT(cache.stats().overcommits, 0u);

    faultinject::Spec spec;
    spec.site = "serve.evict";
    spec.nth = 0;
    spec.kind = faultinject::Kind::TaskThrow;
    faultinject::arm(spec);
    EXPECT_NO_THROW(g.observeCachePressure(cache));
    faultinject::disarm();

    EXPECT_EQ(g.degradeLevel(), 1);
    EXPECT_GT(telemetry::counter("serve.degrade.evict_fault").value(), 0u);
    // The faulted sweep left the cache consistent; a clean sweep works.
    const KeyCache::Stats mid = cache.stats();
    EXPECT_EQ(mid.resident_bytes, 2 * k1.aBytes());
    EXPECT_EQ(cache.evictUnpinned(), 2 * k1.aBytes());
    EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST_F(ServeTest, BatcherShedsEarliestDeadlineOnly)
{
    Batcher b(ctx->maxLevel(), 4);
    auto pend = [&](u64 rid, u64 deadline_ns) {
        PendingRequest p;
        p.req.id = rid;
        p.req.op = Op::Encrypt;
        p.deadline_ns = deadline_ns;
        b.push(std::move(p));
    };
    pend(1, ~u64{0}); // no deadline: never a shed victim
    pend(2, 5'000);
    pend(3, 3'000);
    EXPECT_EQ(b.depth(), 3u);

    // Nothing queued expires before 1000: caller sheds the incoming.
    EXPECT_FALSE(b.shedEarliestDeadline(1'000).has_value());
    // Earliest strictly-below-bound victim is id 3.
    auto victim = b.shedEarliestDeadline(4'000);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->req.id, 3u);
    // An incoming request with no deadline sheds the earliest of all.
    victim = b.shedEarliestDeadline(~u64{0});
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->req.id, 2u);
    EXPECT_EQ(b.depth(), 1u);
}

TEST_F(ServeTest, EffectiveBatchCapShrinksBatches)
{
    Batcher b(ctx->maxLevel(), 8);
    b.setEffectiveMaxBatch(2);
    EXPECT_EQ(b.effectiveMaxBatch(), 2u);
    for (u64 i = 0; i < 6; ++i) {
        PendingRequest p;
        p.req.id = i;
        p.req.op = Op::Encrypt; // all share one coalescable key
        b.push(std::move(p));
    }
    const std::vector<Batch> batches = b.waitDrain();
    ASSERT_EQ(batches.size(), 3u);
    for (const Batch& batch : batches)
        EXPECT_EQ(batch.items.size(), 2u);
    b.setEffectiveMaxBatch(0); // restore
    EXPECT_EQ(b.effectiveMaxBatch(), 8u);
}

TEST_F(ServeTest, GlobalQueueFullShedsEarliestDeadlineRequest)
{
    KeyGenerator keygen(ctx);
    // A single 32-step hoisted rotation keeps the dispatcher busy for
    // many milliseconds — long enough that #2 and #3 (submitted
    // microseconds later) reliably find it still in flight.
    std::vector<int> steps;
    for (int s = 1; s <= 32; ++s)
        steps.push_back(s);
    Tenant t = makeTenant(keygen, steps);
    GovernorOptions gov;
    gov.queue_depth = 2;
    ServerOptions opts;
    opts.governor = gov;
    Server server(ctx, opts);
    const u64 id = server.addTenant(t.keys);

    const Ciphertext x = encryptFor(t, test::randomReals(ctx->slots(), 1), 3);
    const Ciphertext y = encryptFor(t, test::randomReals(ctx->slots(), 2), 4);

    // #1 occupies the dispatcher; #2 (deadlined) queues behind it; #3
    // (no deadline) finds the queue full and displaces #2, which is the
    // request most likely to miss its deadline anyway.
    Request slow;
    slow.tenant = id;
    slow.id = 1;
    slow.op = Op::Rotate;
    slow.steps = steps;
    slow.cts = {x};
    auto f1 = server.submit(std::move(slow));

    Request queued;
    queued.tenant = id;
    queued.id = 2;
    queued.op = Op::Put;
    queued.name = "a";
    queued.cts = {x};
    queued.deadline_ms = 10'000;
    auto f2 = server.submit(std::move(queued));

    Request incoming;
    incoming.tenant = id;
    incoming.id = 3;
    incoming.op = Op::Put;
    incoming.name = "b";
    incoming.cts = {y};
    auto f3 = server.submit(std::move(incoming));

    const Response r2 = f2.get();
    const Response r3 = f3.get();
    EXPECT_TRUE(f1.get().ok);
    // Exactly one of the two later requests is shed. Almost always it
    // is #2 (the queued, deadlined one — see BatcherShedsEarliest-
    // DeadlineOnly for the deterministic victim-selection test); if the
    // dispatcher already claimed #2 before #3 arrived, nothing is
    // sheddable and #3 is rejected instead.
    const bool shed2 = !r2.ok && r2.error_kind == ErrorKind::Overloaded;
    const bool shed3 = !r3.ok && r3.error_kind == ErrorKind::Overloaded;
    EXPECT_TRUE(shed2 != shed3);
    EXPECT_TRUE(shed2 ? r3.ok : r2.ok);
    EXPECT_GT(telemetry::counter("serve.shed").value(), 0u);
    server.drain();
    EXPECT_EQ(server.governor().inflight(), 0u);
}

TEST_F(ServeTest, GlobalQueueFullRejectsIncomingWhenNothingSheddable)
{
    KeyGenerator keygen(ctx);
    // Slow occupant (see GlobalQueueFullShedsEarliestDeadlineRequest).
    std::vector<int> steps;
    for (int s = 1; s <= 32; ++s)
        steps.push_back(s);
    Tenant t = makeTenant(keygen, steps);
    GovernorOptions gov;
    gov.queue_depth = 1;
    ServerOptions opts;
    opts.governor = gov;
    Server server(ctx, opts);
    const u64 id = server.addTenant(t.keys);

    const Ciphertext x = encryptFor(t, test::randomReals(ctx->slots(), 1), 3);

    Request slow;
    slow.tenant = id;
    slow.id = 1;
    slow.op = Op::Rotate;
    slow.steps = steps;
    slow.cts = {x};
    auto f1 = server.submit(std::move(slow));

    // The only in-flight request is already executing (not queued), so
    // the incoming request is rejected outright.
    Request extra;
    extra.tenant = id;
    extra.id = 2;
    extra.op = Op::Get;
    extra.name = "nope";
    const Response r2 = server.submit(std::move(extra)).get();
    EXPECT_FALSE(r2.ok);
    EXPECT_EQ(r2.error_kind, ErrorKind::Overloaded);
    EXPECT_TRUE(f1.get().ok);
}

TEST_F(ServeTest, MemoryPressureDegradesAndRecovers)
{
    // Budget of one key + hoisted two-step rotations = two simultaneous
    // pins from a single request: guaranteed overcommit, no batching
    // races. The governor must step down, proactively evict, and step
    // back up after pressure-free batches — with every request correct.
    const std::vector<int> steps{1, 2};
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, steps);

    ServerOptions opts;
    opts.keycache_bytes = t.keys.rlk.aBytes();
    Server server(ctx, opts);
    const u64 id = server.addTenant(t.keys);

    const Ciphertext x = encryptFor(t, test::randomReals(ctx->slots(), 9), 2);
    const std::vector<Ciphertext> ref =
        eval->rotateHoisted(x, steps, t.gks_expanded);

    auto rotate = [&](u64 rid) {
        Request rot;
        rot.tenant = id;
        rot.id = rid;
        rot.op = Op::Rotate;
        rot.steps = steps;
        rot.cts = {x};
        const Response resp = server.submit(std::move(rot)).get();
        ASSERT_TRUE(resp.ok) << resp.error;
        ASSERT_EQ(resp.cts.size(), ref.size());
        for (size_t k = 0; k < ref.size(); ++k)
            EXPECT_EQ(ctBytes(resp.cts[k]), ctBytes(ref[k]));
    };

    // The pressure observation runs on the dispatcher thread *after* the
    // response promise is fulfilled, so poll for the transition instead
    // of reading the level at the instant .get() returns.
    auto waitForLevel = [&](int want) {
        for (int spin = 0; spin < 5000; ++spin) {
            if (server.governor().degradeLevel() == want)
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return server.governor().degradeLevel() == want;
    };

    rotate(1); // overcommits -> level 1
    EXPECT_TRUE(waitForLevel(1)) << server.governor().degradeLevel();
    rotate(2); // still overcommitting -> level 2
    EXPECT_TRUE(waitForLevel(2)) << server.governor().degradeLevel();
    EXPECT_GT(telemetry::counter("serve.degrade.stepdown").value(), 0u);
    EXPECT_GT(
        telemetry::counter("serve.keycache.proactive_evictions").value(),
        0u);

    // Pressure-free traffic steps the level back to zero (4 clean
    // batches per step, two steps).
    for (u64 i = 0; i < 8; ++i) {
        Request put;
        put.tenant = id;
        put.id = 100 + i;
        put.op = Op::Put;
        put.name = "kv";
        put.cts = {x};
        ASSERT_TRUE(server.submit(std::move(put)).get().ok);
    }
    EXPECT_TRUE(waitForLevel(0)) << server.governor().degradeLevel();
    EXPECT_GT(telemetry::counter("serve.degrade.restore").value(), 0u);
    EXPECT_GT(telemetry::counter("serve.degrade.transitions").value(), 1u);
}

// --- TCP robustness -------------------------------------------------------

TEST_F(ServeTest, TcpMidFrameDisconnectDoesNotLeakConnections)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);
    TcpFrontEnd tcp(server, 0);

    // A client that dies mid-frame: length prefix promises 4096 bytes,
    // only 16 arrive before the socket closes.
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(tcp.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
        const u64 len = 4096;
        ASSERT_EQ(::send(fd, &len, sizeof(len), MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof(len)));
        const char junk[16] = {};
        ASSERT_EQ(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof(junk)));
        ::close(fd);
    }
    // A hostile length prefix likewise drops the connection — before
    // any allocation.
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(tcp.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
        const u64 hostile = ~u64{0};
        ::send(fd, &hostile, sizeof(hostile), MSG_NOSIGNAL);
        ::close(fd);
    }

    // Both handlers notice and clean up; no session leaks.
    for (int spin = 0; spin < 200 && tcp.liveConnections() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(tcp.liveConnections(), 0u);

    // And the front end still serves a well-formed client.
    Request req;
    req.tenant = id;
    req.id = 1;
    req.op = Op::Encrypt;
    req.values = {1.5};
    const Response resp = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), encodeRequest(req)),
        ctx->ring());
    EXPECT_TRUE(resp.ok) << resp.error;
}

// --- fault injection through the serving path -----------------------------

TEST_F(ServeTest, InjectedEvictFaultIsDetectedWithIntegrityOn)
{
    const bool was_on = integrity::enabled();
    integrity::setEnabled(true);

    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    faultinject::Spec spec;
    spec.site = "serve.evict";
    spec.nth = 0;
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);
    bool detected = false;
    try {
        { auto l = cache.acquire(id1); }
        { auto l = cache.acquire(id2); } // evicts k1: guarded hand-off
        { auto l = cache.acquire(id1); } // re-expansion: guarded hand-off
    } catch (const FaultDetectedError&) {
        detected = true;
    }
    faultinject::disarm();
    integrity::setEnabled(was_on);
    EXPECT_TRUE(detected);
}

} // namespace
} // namespace madfhe
