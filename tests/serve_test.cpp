/**
 * @file
 * Tests for the multi-tenant serving runtime: batched-vs-sequential
 * byte identity, key-cache LRU/budget behavior, eviction transparency,
 * tenant isolation, wire-frame robustness, and the TCP front end.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "ckks/serialize.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "support/faultinject.h"
#include "test_util.h"

namespace madfhe {
namespace {

using namespace serve;

std::string
ctBytes(const Ciphertext& ct)
{
    std::ostringstream os;
    saveCiphertext(os, ct);
    return os.str();
}

std::string
kskBytes(const SwitchingKey& key)
{
    std::ostringstream os;
    saveSwitchingKey(os, key);
    return os.str();
}

/** One tenant's client-side material, mirroring what the server holds. */
struct Tenant
{
    SecretKey sk;
    TenantKeys keys; ///< the copy registered with the server
    SwitchingKey rlk_expanded;
    GaloisKeys gks_expanded;
};

class ServeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::resetAll();
        telemetry::setLevel(telemetry::Level::Counters);
        ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
        encoder = std::make_unique<CkksEncoder>(ctx);
        eval = std::make_unique<Evaluator>(ctx);
    }

    void
    TearDown() override
    {
        telemetry::setLevel(telemetry::Level::Off);
    }

    /** Distinct tenants from one generator (its sampler is stateful). */
    Tenant
    makeTenant(KeyGenerator& keygen, const std::vector<int>& rot_steps)
    {
        Tenant t;
        t.sk = keygen.secretKey();
        t.keys.pk = keygen.publicKey(t.sk);
        t.keys.rlk = keygen.relinKey(t.sk);
        t.keys.gks = keygen.galoisKeys(t.sk, rot_steps);
        t.keys.sk = t.sk;
        t.rlk_expanded = t.keys.rlk;
        t.gks_expanded = t.keys.gks;
        return t;
    }

    Ciphertext
    encryptFor(const Tenant& t, const std::vector<double>& values, u64 seed)
    {
        const Plaintext pt =
            encoder->encodeReal(values, ctx->scale(), ctx->maxLevel());
        Encryptor enc(ctx, t.keys.pk, seed);
        return enc.encrypt(pt);
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<Evaluator> eval;
};

// --- acceptance: batched == sequential, bytes included --------------------

TEST_F(ServeTest, FourTenantBatchedMatchesSequential)
{
    const std::vector<int> steps{1, 3};
    KeyGenerator keygen(ctx);
    std::vector<Tenant> tenants;
    for (int i = 0; i < 4; ++i)
        tenants.push_back(makeTenant(keygen, steps));

    // Budget sized so the four rlks (or four rotation keys) of one
    // coalesced batch fit pinned together, but the full working set
    // (4 tenants x 3 switching keys) does not — evictions must happen
    // and must stay invisible.
    const size_t key_bytes = tenants[0].keys.rlk.aBytes();
    ServerOptions opts;
    opts.keycache_bytes = 9 * key_bytes;
    opts.max_batch = 8;
    Server server(ctx, opts);

    std::vector<u64> ids;
    for (auto& t : tenants) {
        TenantKeys reg = t.keys; // keep the client-side copy expanded
        ids.push_back(server.addTenant(std::move(reg)));
    }

    // Per tenant: Put x, Encrypt v, EvalAdd(stored x, fresh), EvalMul,
    // Rotate{1,3} — submitted interleaved across tenants so the batcher
    // coalesces per-op runs spanning all four tenants.
    struct PerTenant
    {
        std::vector<double> v;
        Ciphertext x, y;
    };
    std::vector<PerTenant> in(4);
    for (size_t i = 0; i < 4; ++i) {
        in[i].v = test::randomReals(ctx->slots(), 100 + i);
        in[i].x = encryptFor(tenants[i], test::randomReals(ctx->slots(), i),
                             7000 + i);
        in[i].y = encryptFor(tenants[i], in[i].v, 8000 + i);
    }

    u64 next_id = 1;
    std::vector<std::future<Response>> futs;
    auto submit = [&](size_t i, Op op, Request req) {
        const u64 rid = next_id++;
        req.tenant = ids[i];
        req.id = rid;
        req.op = op;
        futs.push_back(server.submit(std::move(req)));
        return rid;
    };

    std::vector<u64> encrypt_ids(4);
    for (size_t i = 0; i < 4; ++i) {
        Request put;
        put.name = "x";
        put.cts = {in[i].x};
        submit(i, Op::Put, std::move(put));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request enc;
        enc.values = in[i].v;
        encrypt_ids[i] = submit(i, Op::Encrypt, std::move(enc));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request add;
        add.name = "x";
        add.cts = {in[i].y};
        submit(i, Op::EvalAdd, std::move(add));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request mul;
        mul.cts = {in[i].x, in[i].y};
        submit(i, Op::EvalMul, std::move(mul));
    }
    for (size_t i = 0; i < 4; ++i) {
        Request rot;
        rot.steps = steps;
        rot.cts = {in[i].x};
        submit(i, Op::Rotate, std::move(rot));
    }
    server.drain();

    std::vector<Response> got;
    for (auto& f : futs)
        got.push_back(f.get());
    for (const Response& r : got)
        ASSERT_TRUE(r.ok) << r.error;

    // Sequential reference: same requests against a bare Evaluator with
    // the tenants' (never-compressed) client-side keys and the same
    // deterministic per-request encryption seeds.
    for (size_t i = 0; i < 4; ++i) {
        const Tenant& t = tenants[i];
        const Ciphertext enc_ref = encryptFor(
            t, in[i].v, Server::encryptionSeedFor(ids[i], encrypt_ids[i]));
        EXPECT_EQ(ctBytes(got[4 + i].cts[0]), ctBytes(enc_ref));

        const Ciphertext add_ref = eval->addAligned(in[i].x, in[i].y);
        EXPECT_EQ(ctBytes(got[8 + i].cts[0]), ctBytes(add_ref));

        const Ciphertext mul_ref =
            eval->mul(in[i].x, in[i].y, t.rlk_expanded);
        EXPECT_EQ(ctBytes(got[12 + i].cts[0]), ctBytes(mul_ref));

        const std::vector<Ciphertext> rot_ref =
            eval->rotateHoisted(in[i].x, steps, t.gks_expanded);
        ASSERT_EQ(got[16 + i].cts.size(), rot_ref.size());
        for (size_t k = 0; k < rot_ref.size(); ++k)
            EXPECT_EQ(ctBytes(got[16 + i].cts[k]), ctBytes(rot_ref[k]));
    }

    // The cache honored its budget (the counter-backed acceptance
    // criterion) and actually had to evict to do so.
    const KeyCache::Stats stats = server.keyCacheStats();
    EXPECT_EQ(stats.budget_bytes, 9 * key_bytes);
    EXPECT_LE(stats.peak_bytes, stats.budget_bytes);
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.overcommits, 0u);
    EXPECT_EQ(stats.entries, 4 * 3u);

    // Per-tenant attribution: every tenant shows its own request count.
    for (u64 id : ids) {
        const std::string base = "serve.tenant." + std::to_string(id);
        EXPECT_EQ(telemetry::counter(base + ".requests").value(), 5u);
        EXPECT_EQ(telemetry::counter(base + ".errors").value(), 0u);
        EXPECT_EQ(
            telemetry::histogram(base + ".latency_ns").snapshot().count, 5u);
    }
    EXPECT_EQ(telemetry::counter("serve.requests").value(), 20u);
    EXPECT_GT(telemetry::counter("serve.batch.coalesced").value(), 0u);
}

// --- key cache ------------------------------------------------------------

TEST_F(ServeTest, KeyCacheLruOrderDeterministic)
{
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    SwitchingKey k3 = keygen.galoisKey(sk, ctx->ring()->galoisElt(2));
    const size_t key_bytes = k1.aBytes();

    KeyCache cache(ctx, 2 * key_bytes);
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);
    const auto id3 = cache.insert(1, "k3", &k3);
    EXPECT_TRUE(k1.isCompressed()); // insert compresses

    { auto l = cache.acquire(id1); }
    { auto l = cache.acquire(id2); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k1", "k2"}));

    // Third expansion evicts the LRU entry (k1), deterministically.
    { auto l = cache.acquire(id3); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k2", "k3"}));
    EXPECT_FALSE(cache.isResident(id1));
    EXPECT_TRUE(k1.isCompressed());

    // A hit refreshes recency: k2 becomes MRU, so k3 is evicted next.
    { auto l = cache.acquire(id2); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k3", "k2"}));
    { auto l = cache.acquire(id1); }
    EXPECT_EQ(cache.residentNames(), (std::vector<std::string>{"k2", "k1"}));

    const KeyCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_LE(stats.peak_bytes, stats.budget_bytes);
}

TEST_F(ServeTest, EvictionAndReexpansionAreByteIdentical)
{
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    const std::string original = kskBytes(k1); // fully expanded form

    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    {
        auto l = cache.acquire(id1);
        EXPECT_EQ(kskBytes(k1), original);
    }
    { auto l = cache.acquire(id2); } // evicts k1 back to seed-only
    EXPECT_FALSE(cache.isResident(id1));
    {
        auto l = cache.acquire(id1); // re-expansion from the seed
        EXPECT_EQ(kskBytes(k1), original);
    }
}

TEST_F(ServeTest, PinnedKeysAreNeverEvicted)
{
    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));

    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    auto pin = cache.acquire(id1);
    // The budget only fits one key and k1 is pinned: acquiring k2 must
    // overcommit rather than rip k1 out from under its user.
    { auto l = cache.acquire(id2); }
    EXPECT_FALSE(k1.isCompressed());
    const KeyCache::Stats stats = cache.stats();
    EXPECT_GT(stats.overcommits, 0u);
    EXPECT_GT(stats.peak_bytes, stats.budget_bytes);
}

TEST_F(ServeTest, TenantEvictionIsolation)
{
    // Tenant A's results must be unaffected by tenant B thrashing the
    // shared budget between A's requests.
    const std::vector<int> steps{1};
    KeyGenerator keygen(ctx);
    Tenant a = makeTenant(keygen, steps);
    Tenant b = makeTenant(keygen, {1, 2, 3});

    ServerOptions opts;
    opts.keycache_bytes = 2 * a.keys.rlk.aBytes();
    Server server(ctx, opts);
    const u64 ta = server.addTenant(a.keys);
    const u64 tb = server.addTenant(b.keys);

    const Ciphertext ct_a =
        encryptFor(a, test::randomReals(ctx->slots(), 1), 42);
    const Ciphertext ct_b =
        encryptFor(b, test::randomReals(ctx->slots(), 2), 43);

    auto rotate = [&](u64 tenant, const Ciphertext& ct, int step) {
        Request req;
        req.tenant = tenant;
        req.id = tenant * 1000 + static_cast<u64>(step);
        req.op = Op::Rotate;
        req.steps = {step};
        req.cts = {ct};
        Response resp = server.submit(std::move(req)).get();
        EXPECT_TRUE(resp.ok) << resp.error;
        return resp.cts.at(0);
    };

    const Ciphertext before = rotate(ta, ct_a, 1);
    // Thrash: B's rotations evict A's Galois key several times over.
    for (int round = 0; round < 3; ++round)
        for (int step : {1, 2, 3})
            rotate(tb, ct_b, step);
    const Ciphertext after = rotate(ta, ct_a, 1);

    EXPECT_EQ(ctBytes(before), ctBytes(after));
    EXPECT_EQ(ctBytes(before),
              ctBytes(eval->rotate(ct_a, 1, a.gks_expanded)));
    EXPECT_GT(server.keyCacheStats().evictions, 0u);
}

// --- wire robustness ------------------------------------------------------

TEST_F(ServeTest, CorruptFrameYieldsTypedErrorResponse)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id;
    req.id = 9;
    req.op = Op::Encrypt;
    req.values = {1.0, 2.0};
    std::string frame = encodeRequest(req);

    // Clean round-trip first.
    Response ok = server.submitFrame(frame).get();
    ASSERT_TRUE(ok.ok) << ok.error;
    ASSERT_EQ(ok.cts.size(), 1u);

    // A flipped bit in the header must be rejected as CorruptStream —
    // never silently served — and must not take the server down.
    std::string bad = frame;
    bad[17] ^= 0x10; // inside the tenant-id field
    Response resp = server.submitFrame(bad).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::CorruptStream);
    EXPECT_THROW(throwIfError(resp), CorruptStreamError);

    // Truncation likewise.
    Response trunc = server.submitFrame(frame.substr(0, 20)).get();
    EXPECT_FALSE(trunc.ok);
    EXPECT_EQ(trunc.error_kind, ErrorKind::CorruptStream);

    // And the server still serves.
    Response again = server.submitFrame(frame).get();
    EXPECT_TRUE(again.ok) << again.error;
    EXPECT_EQ(ctBytes(again.cts[0]), ctBytes(ok.cts[0]));
}

TEST_F(ServeTest, UnknownTenantAndBadOpsReportUserErrors)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id + 999;
    req.op = Op::Get;
    req.name = "x";
    Response resp = server.submit(std::move(req)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::User);

    Request missing;
    missing.tenant = id;
    missing.op = Op::Get;
    missing.name = "nope";
    resp = server.submit(std::move(missing)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::User);
    EXPECT_THROW(throwIfError(resp), UserError);
    EXPECT_GT(telemetry::counter("serve.errors").value(), 0u);
}

// --- end-to-end over TCP --------------------------------------------------

TEST_F(ServeTest, TcpRoundTripServesEncryptedKv)
{
    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {1});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);
    TcpFrontEnd tcp(server, 0);
    ASSERT_NE(tcp.port(), 0);

    const Ciphertext value =
        encryptFor(t, test::randomReals(ctx->slots(), 5), 77);

    Request put;
    put.tenant = id;
    put.id = 1;
    put.op = Op::Put;
    put.name = "answer";
    put.cts = {value};
    Response put_resp = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), encodeRequest(put)),
        ctx->ring());
    ASSERT_TRUE(put_resp.ok) << put_resp.error;

    Request get;
    get.tenant = id;
    get.id = 2;
    get.op = Op::Get;
    get.name = "answer";
    Response get_resp = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), encodeRequest(get)),
        ctx->ring());
    ASSERT_TRUE(get_resp.ok) << get_resp.error;
    ASSERT_EQ(get_resp.cts.size(), 1u);
    EXPECT_EQ(ctBytes(get_resp.cts[0]), ctBytes(value));

    // A garbage frame gets an error response, not a dropped connection.
    Response bad = decodeResponse(
        tcpRequest("127.0.0.1", tcp.port(), std::string(64, 'Z')),
        ctx->ring());
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.error_kind, ErrorKind::CorruptStream);
}

// --- fault injection through the serving path -----------------------------

TEST_F(ServeTest, InjectedDecodeFaultIsDetected)
{
    faultinject::Spec spec;
    spec.site = "serve.decode";
    spec.nth = 2;
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);

    KeyGenerator keygen(ctx);
    Tenant t = makeTenant(keygen, {});
    Server server(ctx);
    const u64 id = server.addTenant(t.keys);

    Request req;
    req.tenant = id;
    req.id = 1;
    req.op = Op::Encrypt;
    req.values = {3.0};
    Response resp = server.submitFrame(encodeRequest(req)).get();
    faultinject::disarm();

    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_kind, ErrorKind::CorruptStream);

    // Disarmed, the same frame decodes fine.
    Response clean = server.submitFrame(encodeRequest(req)).get();
    EXPECT_TRUE(clean.ok) << clean.error;
}

TEST_F(ServeTest, InjectedEvictFaultIsDetectedWithIntegrityOn)
{
    const bool was_on = integrity::enabled();
    integrity::setEnabled(true);

    KeyGenerator keygen(ctx);
    const SecretKey sk = keygen.secretKey();
    SwitchingKey k1 = keygen.relinKey(sk);
    SwitchingKey k2 = keygen.galoisKey(sk, ctx->ring()->galoisElt(1));
    KeyCache cache(ctx, k1.aBytes());
    const auto id1 = cache.insert(1, "k1", &k1);
    const auto id2 = cache.insert(1, "k2", &k2);

    faultinject::Spec spec;
    spec.site = "serve.evict";
    spec.nth = 0;
    spec.kind = faultinject::Kind::BitFlip;
    faultinject::arm(spec);
    bool detected = false;
    try {
        { auto l = cache.acquire(id1); }
        { auto l = cache.acquire(id2); } // evicts k1: guarded hand-off
        { auto l = cache.acquire(id1); } // re-expansion: guarded hand-off
    } catch (const FaultDetectedError&) {
        detected = true;
    }
    faultinject::disarm();
    integrity::setEnabled(was_on);
    EXPECT_TRUE(detected);
}

} // namespace
} // namespace madfhe
