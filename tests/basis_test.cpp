/**
 * @file
 * RNS basis and fast basis-extension tests. The fast conversion is exact
 * up to an additive multiple of Q in [0, k*Q); for values well below Q/2
 * there is no overshoot term at all when interpreted centered, so we test
 * both the exact small-value regime and the bounded-error regime.
 */
#include <gtest/gtest.h>

#include "rns/basis.h"
#include "rns/primegen.h"
#include "support/random.h"

namespace madfhe {
namespace {

RnsBasis
makeBasis(unsigned bits, size_t count, u64 n = 1 << 8,
          const std::vector<u64>& exclude = {})
{
    auto primes = generateNttPrimes(bits, n, count, exclude);
    std::vector<Modulus> mods;
    for (u64 p : primes)
        mods.emplace_back(p);
    return RnsBasis(std::move(mods));
}

TEST(RnsBasis, InvPuncturedIsConsistent)
{
    auto basis = makeBasis(40, 5);
    // For each i: (Q/q_i) * invPunctured(i) = 1 mod q_i.
    for (size_t i = 0; i < basis.size(); ++i) {
        const Modulus& qi = basis[i];
        u64 punct = 1;
        for (size_t j = 0; j < basis.size(); ++j) {
            if (j == i)
                continue;
            punct = qi.mul(punct, qi.reduce(basis[j].value()));
        }
        EXPECT_EQ(qi.mul(punct, basis.invPunctured(i)), 1u);
    }
}

TEST(RnsBasis, ProductModMatchesDirectReduction)
{
    auto basis = makeBasis(30, 3);
    Modulus p(998244353);
    u128 q = 1;
    for (size_t i = 0; i < basis.size(); ++i)
        q *= basis[i].value();
    EXPECT_EQ(basis.productMod(p), static_cast<u64>(q % p.value()));
}

TEST(RnsBasis, LogProduct)
{
    auto basis = makeBasis(40, 4);
    EXPECT_NEAR(basis.logProduct(), 160.0, 0.2);
}

TEST(RnsBasis, RejectsDuplicates)
{
    std::vector<Modulus> mods{Modulus(998244353), Modulus(998244353)};
    EXPECT_THROW(RnsBasis(std::move(mods)), std::invalid_argument);
}

TEST(BasisConverter, SmallValuesConvertExactly)
{
    const size_t n = 64;
    auto from = makeBasis(30, 3, n);
    std::vector<u64> used;
    for (size_t i = 0; i < from.size(); ++i)
        used.push_back(from[i].value());
    auto to = makeBasis(31, 2, n, used);
    BasisConverter conv(from, to);

    // Values small relative to Q convert exactly.
    Prng rng(9);
    std::vector<std::vector<u64>> in(from.size(), std::vector<u64>(n));
    std::vector<i64> truth(n);
    for (size_t c = 0; c < n; ++c) {
        i64 v = static_cast<i64>(rng.uniform(1ULL << 20)) - (1 << 19);
        truth[c] = v;
        for (size_t i = 0; i < from.size(); ++i)
            in[i][c] = from[i].fromSigned(v);
    }
    std::vector<const u64*> in_ptrs;
    for (auto& limb : in)
        in_ptrs.push_back(limb.data());
    std::vector<std::vector<u64>> out(to.size(), std::vector<u64>(n));
    std::vector<u64*> out_ptrs;
    for (auto& limb : out)
        out_ptrs.push_back(limb.data());

    conv.convert(in_ptrs, n, out_ptrs);
    for (size_t j = 0; j < to.size(); ++j)
        for (size_t c = 0; c < n; ++c)
            EXPECT_EQ(out[j][c], to[j].fromSigned(truth[c]))
                << "limb " << j << " coeff " << c;
}

TEST(BasisConverter, LargeValuesErrIsMultipleOfQBelowKQ)
{
    // Use tiny moduli so we can do exact integer arithmetic in u128.
    const size_t n = 32;
    std::vector<Modulus> fm{Modulus(257), Modulus(769), Modulus(3329)};
    RnsBasis from(fm);
    std::vector<Modulus> tm{Modulus(7681)};
    RnsBasis to(tm);
    BasisConverter conv(from, to);

    u128 bigq = u128(257) * 769 * 3329;
    Prng rng(10);
    std::vector<std::vector<u64>> in(3, std::vector<u64>(n));
    std::vector<u128> truth(n);
    for (size_t c = 0; c < n; ++c) {
        u128 v = (static_cast<u128>(rng.next()) << 16 | rng.uniform(65536))
                 % bigq;
        truth[c] = v;
        in[0][c] = static_cast<u64>(v % 257);
        in[1][c] = static_cast<u64>(v % 769);
        in[2][c] = static_cast<u64>(v % 3329);
    }
    std::vector<const u64*> in_ptrs{in[0].data(), in[1].data(), in[2].data()};
    std::vector<u64> out(n);
    std::vector<u64*> out_ptrs{out.data()};
    conv.convert(in_ptrs, n, out_ptrs, ConvMode::Approx);

    for (size_t c = 0; c < n; ++c) {
        // out = (truth + e*Q) mod p for some 0 <= e < k.
        bool ok = false;
        for (u64 e = 0; e < 3 && !ok; ++e) {
            u64 expect = static_cast<u64>((truth[c] + e * bigq) % 7681);
            ok = (out[c] == expect);
        }
        EXPECT_TRUE(ok) << "coeff " << c;
    }
}

TEST(BasisConverter, ConvertLimbMatchesFullConvert)
{
    const size_t n = 128;
    auto from = makeBasis(35, 4, n);
    std::vector<u64> used;
    for (size_t i = 0; i < from.size(); ++i)
        used.push_back(from[i].value());
    auto to = makeBasis(36, 3, n, used);
    BasisConverter conv(from, to);

    Sampler s(123);
    std::vector<std::vector<u64>> in;
    std::vector<const u64*> in_ptrs;
    for (size_t i = 0; i < from.size(); ++i) {
        in.push_back(s.uniformMod(n, from[i].value()));
        in_ptrs.push_back(in.back().data());
    }
    std::vector<std::vector<u64>> full(to.size(), std::vector<u64>(n));
    std::vector<u64*> full_ptrs;
    for (auto& limb : full)
        full_ptrs.push_back(limb.data());
    conv.convert(in_ptrs, n, full_ptrs);

    for (size_t j = 0; j < to.size(); ++j) {
        std::vector<u64> single(n);
        conv.convertLimb(in_ptrs, n, j, single.data());
        EXPECT_EQ(single, full[j]) << "target limb " << j;
    }
}

TEST(BasisConverter, RejectsOverlappingBases)
{
    auto from = makeBasis(30, 2);
    EXPECT_THROW(BasisConverter(from, from), std::invalid_argument);
}

class ConverterSweep : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ConverterSweep, SmallValueExactnessAcrossShapes)
{
    auto [from_count, to_count] = GetParam();
    const size_t n = 32;
    auto from = makeBasis(32, from_count, n);
    std::vector<u64> used;
    for (size_t i = 0; i < from.size(); ++i)
        used.push_back(from[i].value());
    auto to = makeBasis(33, to_count, n, used);
    BasisConverter conv(from, to);

    Prng rng(from_count * 10 + to_count);
    std::vector<std::vector<u64>> in(from.size(), std::vector<u64>(n));
    std::vector<i64> truth(n);
    for (size_t c = 0; c < n; ++c) {
        i64 v = static_cast<i64>(rng.uniform(1ULL << 24)) - (1 << 23);
        truth[c] = v;
        for (size_t i = 0; i < from.size(); ++i)
            in[i][c] = from[i].fromSigned(v);
    }
    std::vector<const u64*> in_ptrs;
    for (auto& limb : in)
        in_ptrs.push_back(limb.data());
    std::vector<std::vector<u64>> out(to.size(), std::vector<u64>(n));
    std::vector<u64*> out_ptrs;
    for (auto& limb : out)
        out_ptrs.push_back(limb.data());
    conv.convert(in_ptrs, n, out_ptrs);
    for (size_t j = 0; j < to.size(); ++j)
        for (size_t c = 0; c < n; ++c)
            EXPECT_EQ(out[j][c], to[j].fromSigned(truth[c]));
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConverterSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 3, 6)));

} // namespace
} // namespace madfhe
