/**
 * @file
 * Tests for the telemetry layer: sharded-metric merging under real pool
 * concurrency, hierarchical span aggregation and attribution, traced-byte
 * accounting against memtrace, the JSON exporter round-trip through the
 * in-tree parser, fault-event recording, and the disarmed-overhead
 * contract.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "memtrace/trace.h"
#include "rns/basis.h"
#include "rns/primegen.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/export.h"
#include "telemetry/json.h"
#include "telemetry/simfhe_bridge.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace telemetry {
namespace {

/** Pin the level for one test; restores Off and clears state after. */
class LevelGuard
{
  public:
    explicit LevelGuard(Level l)
    {
        resetAll();
        setLevel(l);
    }
    ~LevelGuard()
    {
        setLevel(Level::Off);
        resetAll();
    }
};

TEST(TelemetryMetrics, CounterMergesAcrossPoolThreads)
{
    LevelGuard guard(Level::Counters);
    for (size_t threads : {size_t{1}, size_t{4}}) {
        ThreadPool::setGlobalThreads(threads);
        Counter& c = counter("test.counter_merge");
        c.reset();
        constexpr size_t kTasks = 256;
        parallelFor(kTasks, [&](size_t) { c.add(3); });
        EXPECT_EQ(c.value(), 3 * kTasks) << "threads=" << threads;
    }
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
}

TEST(TelemetryMetrics, GaugeAndHistogram)
{
    LevelGuard guard(Level::Counters);
    gauge("test.gauge").set(-7);
    EXPECT_EQ(gauge("test.gauge").value(), -7);

    Histogram& h = histogram("test.hist");
    h.record(0);
    h.record(1);
    h.record(1000);
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 1001u);
    EXPECT_GE(snap.quantileBound(1.0), 1000u);
}

TEST(TelemetryMetrics, QuantileBoundTotalOnEdgeCaseInputs)
{
    // Empty histogram: any quantile reads 0, never garbage.
    HistogramSnapshot empty;
    EXPECT_EQ(empty.quantileBound(0.0), 0u);
    EXPECT_EQ(empty.quantileBound(0.5), 0u);
    EXPECT_EQ(empty.quantileBound(1.0), 0u);

    // Single sample: every quantile reports that sample's bucket bound.
    LevelGuard guard(Level::Counters);
    Histogram& one = histogram("test.hist_single");
    one.reset();
    one.record(100);
    auto snap = one.snapshot();
    const u64 bound = snap.quantileBound(0.5);
    EXPECT_GE(bound, 100u);
    EXPECT_EQ(snap.quantileBound(0.95), bound);
    EXPECT_EQ(snap.quantileBound(0.99), bound);
    EXPECT_EQ(snap.quantileBound(1.0), bound);

    // Out-of-range and NaN quantiles clamp instead of misindexing.
    EXPECT_EQ(snap.quantileBound(-1.0), snap.quantileBound(0.0));
    EXPECT_EQ(snap.quantileBound(2.0), bound);
    EXPECT_EQ(snap.quantileBound(std::nan("")),
              snap.quantileBound(0.0));
}

TEST(TelemetryMetrics, QuantileBoundsAreMonotone)
{
    LevelGuard guard(Level::Counters);
    Histogram& h = histogram("test.hist_monotone");
    h.reset();
    for (u64 v : {1u, 2u, 4u, 70u, 3000u, 3000u, 1u << 20})
        h.record(v);
    auto snap = h.snapshot();
    const u64 p50 = snap.quantileBound(0.50);
    const u64 p95 = snap.quantileBound(0.95);
    const u64 p99 = snap.quantileBound(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, snap.quantileBound(1.0));
}

TEST(TelemetryMetrics, MacrosAreInertWhenOff)
{
    resetAll();
    setLevel(Level::Off);
    TELEM_COUNT("test.inert", 5);
    setLevel(Level::Counters);
    EXPECT_EQ(counter("test.inert").value(), 0u);
    setLevel(Level::Off);
    resetAll();
}

TEST(TelemetrySpans, NestingBuildsPaths)
{
    LevelGuard guard(Level::Spans);
    {
        TELEM_SPAN("Outer");
        {
            TELEM_SPAN("Inner");
        }
        {
            TELEM_SPAN("Inner");
        }
    }
    auto rows = spanRows();
    const SpanRow* outer = nullptr;
    const SpanRow* inner = nullptr;
    for (const auto& r : rows) {
        if (r.path == "Outer")
            outer = &r;
        if (r.path == "Outer/Inner")
            inner = &r;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 2u);
    EXPECT_EQ(outer->depth, 0u);
    EXPECT_EQ(inner->depth, 1u);
    EXPECT_GE(outer->total_ns, inner->total_ns);
    // Serial-spine spans never run inside a pool task.
    EXPECT_EQ(outer->pool_count, 0u);
}

TEST(TelemetrySpans, PoolTaskAttribution)
{
    LevelGuard guard(Level::Spans);
    ThreadPool::setGlobalThreads(2);
    parallelFor(8, [&](size_t) { TELEM_SPAN("InPool"); });
    ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
    auto rows = spanRows();
    const SpanRow* in_pool = nullptr;
    for (const auto& r : rows)
        if (r.name == std::string("InPool"))
            in_pool = &r;
    ASSERT_NE(in_pool, nullptr);
    EXPECT_EQ(in_pool->count, 8u);
    // With 2 workers plus the help-along spine, at least one execution
    // lands inside a pool task (all of them when the spine never helps).
    EXPECT_GT(in_pool->pool_count, 0u);
}

TEST(TelemetrySpans, TracedBytesAttributedToOpenSpan)
{
#ifdef MADFHE_MEMTRACE_DISABLED
    GTEST_SKIP() << "memtrace compiled out";
#else
    LevelGuard guard(Level::Spans);
    memtrace::TraceSink& sink = memtrace::TraceSink::instance();
    sink.clear();
    sink.enable();
    constexpr size_t kBytes = 4096;
    alignas(64) static u64 buf[kBytes / sizeof(u64)];
    {
        TELEM_SPAN("TracedRegion");
        MAD_TRACE_READ(buf, kBytes);
        MAD_TRACE_WRITE(buf, kBytes);
    }
    sink.disable();
    sink.clear();
    auto rows = spanRows();
    const SpanRow* row = nullptr;
    for (const auto& r : rows)
        if (r.path == "TracedRegion")
            row = &r;
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->traced_bytes, 2 * kBytes);
#endif
}

TEST(TelemetrySpans, ModelPredictionAndDivergence)
{
    LevelGuard guard(Level::Spans);
    setModelPrediction("Predicted", 1000.0);
    {
        TELEM_SPAN("Predicted");
    }
    auto snap = snapshot();
    const SpanRow* row = snap.span("Predicted");
    ASSERT_NE(row, nullptr);
    ASSERT_TRUE(row->model_bytes.has_value());
    EXPECT_DOUBLE_EQ(*row->model_bytes, 1000.0);
    ASSERT_TRUE(row->divergence().has_value());
    // No memtrace traffic flowed, so measured/modeled - 1 = -1.
    EXPECT_DOUBLE_EQ(*row->divergence(), -1.0);
}

TEST(TelemetryExport, JsonRoundTrip)
{
    LevelGuard guard(Level::Spans);
    counter("test.json_counter").add(42);
    gauge("test.json_gauge").set(17);
    {
        TELEM_SPAN("JsonOuter");
        {
            TELEM_SPAN("JsonInner");
        }
    }
    setModelPrediction("JsonOuter", 512.0);

    auto snap = snapshot();
    const std::string text = toJson(snap);
    auto doc = json::parse(text);
    ASSERT_TRUE(doc.has_value()) << text;
    EXPECT_EQ(doc->stringOr("schema", ""), "madfhe.telemetry.v1");

    const json::Value* counters = doc->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_TRUE(counters->isArray());
    bool found_counter = false;
    for (const auto& c : counters->array) {
        if (c.stringOr("name", "") == "test.json_counter") {
            found_counter = true;
            EXPECT_DOUBLE_EQ(c.numberOr("value", 0), 42.0);
        }
    }
    EXPECT_TRUE(found_counter);

    const json::Value* spans = doc->find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_TRUE(spans->isArray());
    bool found_outer = false;
    bool found_inner = false;
    for (const auto& s : spans->array) {
        const std::string path = s.stringOr("path", "");
        if (path == "JsonOuter") {
            found_outer = true;
            EXPECT_DOUBLE_EQ(s.numberOr("count", 0), 1.0);
            EXPECT_DOUBLE_EQ(s.numberOr("model_bytes", 0), 512.0);
        }
        if (path == "JsonOuter/JsonInner") {
            found_inner = true;
            EXPECT_DOUBLE_EQ(s.numberOr("depth", 0), 1.0);
        }
    }
    EXPECT_TRUE(found_outer);
    EXPECT_TRUE(found_inner);
}

TEST(TelemetryExport, ChromeTraceEventsAtTraceLevel)
{
    LevelGuard guard(Level::Trace);
    {
        TELEM_SPAN("ChromeSpan");
    }
    recordInstant("marker");
    const std::string trace = chromeTraceJson();
    auto doc = json::parse(trace);
    ASSERT_TRUE(doc.has_value()) << trace;
    const json::Value* events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    bool found_span = false;
    bool found_marker = false;
    for (const auto& e : events->array) {
        if (e.stringOr("name", "") == "ChromeSpan") {
            found_span = true;
            EXPECT_EQ(e.stringOr("ph", ""), "X");
        }
        if (e.stringOr("name", "") == "marker") {
            found_marker = true;
            EXPECT_EQ(e.stringOr("ph", ""), "i");
        }
    }
    EXPECT_TRUE(found_span);
    EXPECT_TRUE(found_marker);
}

TEST(TelemetryFaults, FiredFaultIsCounted)
{
    LevelGuard guard(Level::Counters);
    // Arm a task-throw on the basis-conversion site and trip it with a
    // real conversion; the telemetry fire hook must count the firing.
    const u64 before = counter("fault.fired").value();
    const size_t n = size_t(1) << 8;
    auto primes = generateNttPrimes(35, n, 3);
    RnsBasis from(std::vector<Modulus>{Modulus(primes[0]),
                                       Modulus(primes[1])});
    RnsBasis to(std::vector<Modulus>{Modulus(primes[2])});
    BasisConverter conv(from, to);
    std::vector<u64> a(n, 1), b(n, 2), out(n);
    std::vector<const u64*> src = {a.data(), b.data()};
    std::vector<u64*> dst = {out.data()};

    faultinject::Spec spec;
    spec.site = "rns.basis_convert";
    spec.nth = 0;
    spec.kind = faultinject::Kind::TaskThrow;
    faultinject::arm(spec);
    EXPECT_THROW(conv.convert(src, n, dst), faultinject::InjectedFault);
    faultinject::disarm();

    EXPECT_EQ(counter("fault.fired").value(), before + 1);
    EXPECT_EQ(counter("fault.fired.rns.basis_convert").value(), 1u);
}

TEST(TelemetryOverhead, DisarmedSitesStayCheap)
{
    // The disarmed contract: a TELEM_* site is one relaxed atomic load.
    // Compare a loop of disarmed sites against a pure arithmetic loop;
    // the generous 25x bound catches an accidental lock or allocation
    // on the fast path without making the test timing-sensitive.
    resetAll();
    setLevel(Level::Off);
    using Clock = std::chrono::steady_clock;
    constexpr size_t kIters = 1 << 18;

    volatile u64 sink = 0;
    auto t0 = Clock::now();
    for (size_t i = 0; i < kIters; ++i)
        sink = sink + i;
    auto t1 = Clock::now();
    for (size_t i = 0; i < kIters; ++i) {
        TELEM_COUNT("test.overhead", 1);
        TELEM_SPAN("OverheadProbe");
        sink = sink + i;
    }
    auto t2 = Clock::now();

    const double base =
        std::chrono::duration<double>(t1 - t0).count() + 1e-9;
    const double armed = std::chrono::duration<double>(t2 - t1).count();
    EXPECT_LT(armed / base, 25.0);
    // Nothing may have been recorded while off.
    setLevel(Level::Counters);
    EXPECT_EQ(counter("test.overhead").value(), 0u);
    auto rows = spanRows();
    for (const auto& r : rows)
        EXPECT_NE(r.path, "OverheadProbe");
    setLevel(Level::Off);
    resetAll();
}

TEST(TelemetryBridge, PredictionsScaleWithCalibration)
{
    // The model's bootstrap schedule needs the full toy chain (the
    // crossval reduced chain is too short for EvalMod's 9 levels).
    CkksParams p = CkksParams::bootstrapToy();
    p.log_n = 11;
    BootstrapShape shape;
    auto stages = bootstrapPredictions(p, shape);
    ASSERT_EQ(stages.size(), 5u);
    double sum = 0;
    double total = 0;
    for (const auto& s : stages) {
        EXPECT_GT(s.model_bytes, 0.0) << s.path;
        if (s.path == "Bootstrap")
            total = s.model_bytes;
        else
            sum += s.model_bytes / materializationFactor(s.path);
    }
    // Uncalibrated stage predictions sum to the uncalibrated total.
    EXPECT_NEAR(sum, total / materializationFactor("Bootstrap"),
                total * 1e-9);

    auto prims = primitivePredictions(p, 5, 8);
    ASSERT_EQ(prims.size(), 4u);
    for (const auto& s : prims)
        EXPECT_GT(s.model_bytes, 0.0) << s.path;
}

TEST(TelemetryJson, ParserRejectsMalformedInput)
{
    EXPECT_FALSE(json::parse("{").has_value());
    EXPECT_FALSE(json::parse("[1,]").has_value());
    EXPECT_FALSE(json::parse("{\"a\": 1} trailing").has_value());
    EXPECT_FALSE(json::parse("nul").has_value());
    auto ok = json::parse(
        " {\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"d\\n\"}, \"e\": true} ");
    ASSERT_TRUE(ok.has_value());
    const json::Value* a = ok->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
    const json::Value* b = ok->find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->stringOr("c", ""), "d\n");
}

} // namespace
} // namespace telemetry
} // namespace madfhe
