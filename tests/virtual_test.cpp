/**
 * @file
 * Virtual backend tests: the packed-carrier codec (round-trip, wire
 * validity, rejection of real ciphertexts), exact error-message parity
 * with the real evaluator's level/scale state machine, plaintext value
 * semantics of every Table-2 op, cross-validation of the analytic noise
 * estimate against real measured noise (the virtual estimate must
 * bracket what the real backend actually accumulates), SimFHE cost
 * charging, backend selection, and an end-to-end virtual-server smoke
 * run including Bootstrap.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>

#include "ckks/noise.h"
#include "ckks/serialize.h"
#include "serve/server.h"
#include "telemetry/telemetry.h"
#include "test_util.h"
#include "virtual/backend.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::randomReals;
using vbackend::VirtualBackend;
using vbackend::VirtualView;

/** Run `f`, expecting a UserError; returns its undecorated message. */
template <typename F>
std::string
userErrorMessage(F&& f)
{
    try {
        f();
    } catch (const UserError& e) {
        return e.message();
    } catch (const std::exception& e) {
        return std::string("<wrong exception type: ") + e.what() + ">";
    }
    return "<no error>";
}

class VirtualTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::resetAll();
        telemetry::setLevel(telemetry::Level::Counters);
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
        vb = std::make_unique<VirtualBackend>(h->ctx);
        rb = std::make_unique<RealBackend>(h->ctx);
    }

    void
    TearDown() override
    {
        telemetry::setLevel(telemetry::Level::Off);
    }

    /** A virtual ciphertext carrying `values` (fresh, max level). */
    Ciphertext
    venc(const std::vector<double>& values) const
    {
        return vb->encryptReal(h->pk, values, /*seed=*/7);
    }

    std::unique_ptr<CkksHarness> h;
    std::unique_ptr<VirtualBackend> vb;
    std::unique_ptr<RealBackend> rb;
};

// --- carrier codec --------------------------------------------------------

TEST_F(VirtualTest, PackRoundTripPreservesEveryField)
{
    VirtualView v;
    v.slots.resize(h->ctx->slots());
    for (size_t k = 0; k < v.slots.size(); ++k)
        v.slots[k] = {0.25 * static_cast<double>(k) - 3.0,
                      -1.0 / (1.0 + static_cast<double>(k))};
    v.level = 2;
    v.scale = h->ctx->scale() * 1.0000001; // not a round number
    v.noise_log2 = -31.737;

    const Ciphertext ct = packVirtual(*h->ctx, v);
    EXPECT_TRUE(vbackend::isVirtualCiphertext(ct));
    // Single-limb carrier whatever the logical level (the level rides
    // in metadata): the serving queues copy O(N) bytes, not O(N * L).
    EXPECT_EQ(ct.c0.numLimbs(), 1u);
    EXPECT_EQ(ct.c1.numLimbs(), 1u);

    const VirtualView back = vbackend::unpackVirtual(*h->ctx, ct);
    EXPECT_EQ(back.level, v.level);
    EXPECT_DOUBLE_EQ(back.scale, v.scale);
    EXPECT_DOUBLE_EQ(back.noise_log2, v.noise_log2);
    ASSERT_EQ(back.slots.size(), v.slots.size());
    for (size_t k = 0; k < v.slots.size(); ++k) {
        // Bit-exact: the codec splits the raw double bits.
        EXPECT_EQ(back.slots[k].real(), v.slots[k].real());
        EXPECT_EQ(back.slots[k].imag(), v.slots[k].imag());
    }
}

TEST_F(VirtualTest, RejectsRealCiphertextsWithClearMessage)
{
    const Ciphertext real_ct =
        h->encryptSlots(test::randomSlots(h->ctx->slots(), 1), 3);
    EXPECT_FALSE(vbackend::isVirtualCiphertext(real_ct));
    const std::string msg =
        userErrorMessage([&] { (void)vb->add(real_ct, real_ct); });
    EXPECT_NE(msg.find("virtual backend received a non-virtual ciphertext"),
              std::string::npos)
        << msg;
}

TEST_F(VirtualTest, CarrierSurvivesSerializeV2)
{
    const std::vector<double> v = randomReals(h->ctx->slots(), 3);
    Ciphertext ct = venc(v);
    ct = vb->mul(ct, ct, h->rlk); // non-trivial level/scale/noise state

    std::ostringstream os;
    saveCiphertext(os, ct);
    std::istringstream is(os.str());
    const Ciphertext back = loadCiphertext(is, h->ctx->ring());

    // The round trip preserves value identity (digest) and state.
    EXPECT_EQ(vb->resultDigest(back), vb->resultDigest(ct));
    const VirtualView a = vbackend::unpackVirtual(*h->ctx, ct);
    const VirtualView b = vbackend::unpackVirtual(*h->ctx, back);
    EXPECT_EQ(b.level, a.level);
    EXPECT_DOUBLE_EQ(b.noise_log2, a.noise_log2);
}

TEST_F(VirtualTest, DigestTracksValueIdentity)
{
    const std::vector<double> v = randomReals(h->ctx->slots(), 4);
    const Ciphertext a = venc(v);
    const Ciphertext b = venc(v);
    std::vector<double> w = v;
    w[5] += 1e-9;
    const Ciphertext c = venc(w);

    EXPECT_EQ(vb->resultDigest(a), vb->resultDigest(b));
    EXPECT_NE(vb->resultDigest(a), vb->resultDigest(c));
    EXPECT_EQ(vb->resultDigest(a).rfind("v:", 0), 0u)
        << "virtual digests carry the v: namespace";
    // The two backends can never collide on a digest.
    const Ciphertext real_ct = rb->encryptReal(h->pk, v, 11);
    EXPECT_NE(rb->resultDigest(real_ct).substr(0, 2), "v:");
}

// --- state-machine error parity -------------------------------------------

TEST_F(VirtualTest, ErrorMessagesMatchRealEvaluatorExactly)
{
    const std::vector<double> vals = randomReals(h->ctx->slots(), 5);
    const size_t top = h->ctx->maxLevel();

    // One real and one virtual operand pair with identical state.
    const Ciphertext rv = rb->encryptReal(h->pk, vals, 11);
    const Ciphertext vv = venc(vals);

    struct Case
    {
        const char* what;
        std::function<void(const EvalBackend&, const Ciphertext&)> run;
    };
    const std::vector<Case> cases = {
        {"ciphertext levels differ",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             (void)be.add(ct, be.dropToLevel(ct, 2));
         }},
        {"ciphertext scales differ; rescale/align first",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             (void)be.add(be.dropToLevel(ct, top - 1), be.rescale(ct));
         }},
        {"mul needs a level to rescale into",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             const Ciphertext low = be.dropToLevel(ct, 1);
             (void)be.mul(low, low, h->rlk);
         }},
        {"cannot rescale the last limb away",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             (void)be.rescale(be.dropToLevel(ct, 1));
         }},
        {"bad target level",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             (void)be.dropToLevel(ct, top + 1);
         }},
        {"missing Galois key for requested rotation",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             (void)be.rotate(ct, 3, GaloisKeys{});
         }},
        {"cannot scale-align at the last level",
         [&](const EvalBackend& be, const Ciphertext& ct) {
             // Two level-1 operands with mismatched scales: aligning
             // needs a level to rescale into and must refuse.
             (void)be.addAligned(be.dropToLevel(ct, 1),
                                 be.rescale(be.dropToLevel(ct, 2)));
         }},
    };

    for (const Case& c : cases) {
        const std::string real_msg =
            userErrorMessage([&] { c.run(*rb, rv); });
        const std::string virt_msg =
            userErrorMessage([&] { c.run(*vb, vv); });
        EXPECT_EQ(real_msg, c.what) << "real backend: " << c.what;
        EXPECT_EQ(virt_msg, c.what) << "virtual backend: " << c.what;
    }
}

// --- value semantics ------------------------------------------------------

TEST_F(VirtualTest, TableTwoOpsComputeOnSlots)
{
    const size_t n = h->ctx->slots();
    const std::vector<double> va = randomReals(n, 6);
    const std::vector<double> vb_vals = randomReals(n, 7);
    const Ciphertext a = venc(va);
    const Ciphertext b = venc(vb_vals);

    // encrypt/decrypt round trip is exact (plaintext carrier).
    const std::vector<double> dec = vb->decryptReal(h->sk, a);
    ASSERT_EQ(dec.size(), n);
    for (size_t k = 0; k < n; ++k)
        EXPECT_EQ(dec[k], va[k]);

    // add
    {
        const std::vector<double> got = vb->decryptReal(h->sk, vb->add(a, b));
        for (size_t k = 0; k < n; ++k)
            EXPECT_DOUBLE_EQ(got[k], va[k] + vb_vals[k]);
    }
    // mul: product values, one level consumed, scale = s*s/q.
    {
        const Ciphertext p = vb->mul(a, b, h->rlk);
        const VirtualView pv = vbackend::unpackVirtual(*h->ctx, p);
        EXPECT_EQ(pv.level, h->ctx->maxLevel() - 1);
        const double q =
            static_cast<double>(h->ctx->qValue(h->ctx->maxLevel() - 1));
        EXPECT_DOUBLE_EQ(pv.scale,
                         h->ctx->scale() * h->ctx->scale() / q);
        const std::vector<double> got = vb->decryptReal(h->sk, p);
        for (size_t k = 0; k < n; ++k)
            EXPECT_DOUBLE_EQ(got[k], va[k] * vb_vals[k]);
    }
    // rotate: left rotation by `steps` (matches the real evaluator).
    {
        const GaloisKeys gks = h->makeGaloisKeys({3});
        const std::vector<double> got =
            vb->decryptReal(h->sk, vb->rotate(a, 3, gks));
        for (size_t k = 0; k < n; ++k)
            EXPECT_EQ(got[k], va[(k + 3) % n]);
    }
    // rotateHoisted: step 0 passes through, others rotate.
    {
        const GaloisKeys gks = h->makeGaloisKeys({1, 2});
        const std::vector<Ciphertext> rots =
            vb->rotateHoisted(a, {0, 1, 2}, gks);
        ASSERT_EQ(rots.size(), 3u);
        EXPECT_EQ(vb->resultDigest(rots[0]), vb->resultDigest(a));
        const std::vector<double> r1 = vb->decryptReal(h->sk, rots[1]);
        for (size_t k = 0; k < n; ++k)
            EXPECT_EQ(r1[k], va[(k + 1) % n]);
    }
    // matvec: y[k] = d0[k]*x[k] + d1[k]*x[k+1], one level consumed.
    {
        std::map<int, std::vector<std::complex<double>>> diags;
        diags[0].assign(n, {0.5, 0.0});
        diags[1].assign(n, {0.25, 0.0});
        const LinearTransform t(h->ctx, std::move(diags), h->ctx->scale());
        const GaloisKeys gks = h->makeGaloisKeys(t.requiredRotations());
        const Ciphertext y = vb->matVec(t, a, gks);
        EXPECT_EQ(vbackend::unpackVirtual(*h->ctx, y).level,
                  h->ctx->maxLevel() - 1);
        const std::vector<double> got = vb->decryptReal(h->sk, y);
        for (size_t k = 0; k < n; ++k)
            EXPECT_NEAR(got[k], 0.5 * va[k] + 0.25 * va[(k + 1) % n],
                        1e-12);
    }
    // bootstrap: values survive, level refreshes to max, noise grows.
    {
        Ciphertext low = vb->mul(a, b, h->rlk);
        low = vb->mul(low, low, h->rlk);
        const double noise_before = -*vb->noiseBudgetBits(low);
        const Ciphertext fresh = vb->bootstrap(low);
        const VirtualView fv = vbackend::unpackVirtual(*h->ctx, fresh);
        EXPECT_EQ(fv.level, h->ctx->maxLevel());
        EXPECT_DOUBLE_EQ(fv.scale, h->ctx->scale());
        EXPECT_GT(fv.noise_log2, noise_before);
        const std::vector<double> got = vb->decryptReal(h->sk, fresh);
        const std::vector<double> want = vb->decryptReal(h->sk, low);
        for (size_t k = 0; k < n; ++k)
            EXPECT_EQ(got[k], want[k]);
    }
}

// --- noise cross-validation (virtual estimate vs real measurement) --------

TEST_F(VirtualTest, VirtualNoiseBracketsRealMeasuredNoise)
{
    const size_t n = h->ctx->slots();
    const std::vector<double> vals = randomReals(n, 9);
    std::vector<std::complex<double>> slots(n);
    for (size_t k = 0; k < n; ++k)
        slots[k] = {vals[k], 0.0};

    // The virtual estimate is an upper bound with a safety factor;
    // require measured <= estimate (the contract) and estimate within
    // ~2^26 of measured (not uselessly loose; same band style as
    // noise_test, widened for the deeper circuits here).
    auto checkBracket = [&](const Ciphertext& real_ct,
                            const Ciphertext& virt_ct,
                            const std::vector<std::complex<double>>& expect,
                            const char* what) {
        const double measured =
            measureSlotError(*h->encoder, *h->decryptor, real_ct, expect);
        const double estimate_log2 = -*vb->noiseBudgetBits(virt_ct);
        EXPECT_LE(std::log2(std::max(measured, 1e-300)), estimate_log2)
            << what << ": measured noise above the virtual estimate";
        EXPECT_GE(std::log2(measured) + 26.0, estimate_log2)
            << what << ": virtual estimate uselessly loose";
    };

    // Multiplication chain from the top level down to level 1.
    Ciphertext real_ct = h->encryptSlots(slots, h->ctx->maxLevel());
    Ciphertext virt_ct = venc(vals);
    std::vector<std::complex<double>> expect = slots;
    checkBracket(real_ct, virt_ct, expect, "fresh");
    for (size_t lvl = h->ctx->maxLevel(); lvl >= 2; --lvl) {
        real_ct = h->eval->square(real_ct, h->rlk);
        virt_ct = vb->mul(virt_ct, virt_ct, h->rlk);
        for (auto& z : expect)
            z *= z;
        checkBracket(real_ct, virt_ct, expect,
                     ("square@level" + std::to_string(lvl)).c_str());
    }

    // Rotation (key-switch noise floor).
    {
        const GaloisKeys gks = h->makeGaloisKeys({3});
        const Ciphertext rr =
            h->eval->rotate(h->encryptSlots(slots, h->ctx->maxLevel()), 3,
                            gks);
        const Ciphertext vr = vb->rotate(venc(vals), 3, gks);
        std::vector<std::complex<double>> rot(n);
        for (size_t k = 0; k < n; ++k)
            rot[k] = slots[(k + 3) % n];
        checkBracket(rr, vr, rot, "rotate");
    }

    // MatVec (keyswitch + plaintext products + diagonal sum).
    {
        std::map<int, std::vector<std::complex<double>>> diags;
        diags[0].assign(n, {0.5, 0.0});
        diags[1].assign(n, {0.25, 0.0});
        const LinearTransform t(h->ctx, std::move(diags), h->ctx->scale());
        const GaloisKeys gks = h->makeGaloisKeys(t.requiredRotations());
        const Ciphertext rm =
            rb->matVec(t, h->encryptSlots(slots, h->ctx->maxLevel()), gks);
        const Ciphertext vm = vb->matVec(t, venc(vals), gks);
        const std::vector<std::complex<double>> mv = t.applyPlain(slots);
        checkBracket(rm, vm, mv, "matvec");
    }
}

// --- cost charging --------------------------------------------------------

TEST_F(VirtualTest, ChargesSimfhePredictedCostPerOp)
{
    const std::vector<double> vals = randomReals(h->ctx->slots(), 10);
    const u64 ops_before = vb->chargedOps();
    const Ciphertext a = venc(vals);
    const Ciphertext p = vb->mul(a, a, h->rlk);
    (void)vb->rescale(p);
    EXPECT_EQ(vb->chargedOps(), ops_before + 3);

    const simfhe::Cost total = vb->chargedCost();
    const double ns =
        simfhe::OpCostQuery::modelNs(simfhe::HardwareDesign::gpu(), total);
    EXPECT_GT(ns, 0.0) << "charged cost must model to positive runtime";
    EXPECT_EQ(telemetry::counter("virtual.ops").value(), vb->chargedOps());
    EXPECT_GE(telemetry::counter("virtual.op.Mult").value(), 1u);

    // Bootstrap charges even on parameter sets too shallow for the
    // analytic Alg-2 accounting (coarse per-level fallback).
    const u64 before_boot = vb->chargedOps();
    (void)vb->bootstrap(a);
    EXPECT_EQ(vb->chargedOps(), before_boot + 1);
    EXPECT_GT(simfhe::OpCostQuery::modelNs(simfhe::HardwareDesign::gpu(),
                                           vb->chargedCost()),
              ns);
}

// --- backend selection ----------------------------------------------------

TEST_F(VirtualTest, FactoryAndEnvSelection)
{
    EXPECT_EQ(vbackend::makeEvalBackend(BackendKind::Real, h->ctx)->kind(),
              BackendKind::Real);
    EXPECT_EQ(vbackend::makeEvalBackend(BackendKind::Virtual, h->ctx)->kind(),
              BackendKind::Virtual);

    ::unsetenv("MADFHE_BACKEND");
    EXPECT_EQ(backendKindFromEnv(), BackendKind::Real);
    ::setenv("MADFHE_BACKEND", "real", 1);
    EXPECT_EQ(backendKindFromEnv(), BackendKind::Real);
    ::setenv("MADFHE_BACKEND", "virtual", 1);
    EXPECT_EQ(backendKindFromEnv(), BackendKind::Virtual);
    ::setenv("MADFHE_BACKEND", "quantum", 1);
    EXPECT_THROW(backendKindFromEnv(), UserError);
    ::unsetenv("MADFHE_BACKEND");
}

// --- end-to-end virtual server --------------------------------------------

TEST_F(VirtualTest, VirtualServerServesFullOpSurface)
{
    serve::ServerOptions opts;
    opts.backend = BackendKind::Virtual;
    serve::Server server(h->ctx, opts);
    ASSERT_EQ(server.backend().kind(), BackendKind::Virtual);

    std::map<int, std::vector<std::complex<double>>> diags;
    diags[0].assign(h->ctx->slots(), {0.5, 0.0});
    diags[1].assign(h->ctx->slots(), {0.25, 0.0});
    server.registerTransform(
        "layer", LinearTransform(h->ctx, std::move(diags), h->ctx->scale()));

    KeyGenerator keygen(h->ctx);
    const SecretKey sk = keygen.secretKey();
    serve::TenantKeys keys;
    keys.pk = keygen.publicKey(sk);
    keys.rlk = keygen.relinKey(sk);
    keys.gks = keygen.galoisKeys(sk, {1, 2});
    keys.sk = sk;
    const u64 tenant = server.addTenant(std::move(keys));

    u64 rid = 1;
    auto run = [&](serve::Request req) {
        req.tenant = tenant;
        req.id = rid++;
        serve::Response resp = server.submit(std::move(req)).get();
        EXPECT_TRUE(resp.ok) << resp.error;
        return resp;
    };

    const std::vector<double> vals = randomReals(h->ctx->slots(), 12);
    serve::Request enc;
    enc.op = serve::Op::Encrypt;
    enc.values = vals;
    const Ciphertext ct = run(std::move(enc)).cts.at(0);
    EXPECT_TRUE(vbackend::isVirtualCiphertext(ct));

    serve::Request mul;
    mul.op = serve::Op::EvalMul;
    mul.cts = {ct, ct};
    const Ciphertext prod = run(std::move(mul)).cts.at(0);

    serve::Request rot;
    rot.op = serve::Op::Rotate;
    rot.steps = {1, 2};
    rot.cts = {ct};
    EXPECT_EQ(run(std::move(rot)).cts.size(), 2u);

    serve::Request mv;
    mv.op = serve::Op::MatVec;
    mv.name = "layer";
    mv.cts = {ct};
    run(std::move(mv));

    serve::Request boot;
    boot.op = serve::Op::Bootstrap;
    boot.cts = {prod};
    const Ciphertext fresh = run(std::move(boot)).cts.at(0);
    EXPECT_EQ(vbackend::unpackVirtual(*h->ctx, fresh).level,
              h->ctx->maxLevel());

    serve::Request dec;
    dec.op = serve::Op::DecryptShare;
    dec.cts = {fresh};
    const serve::Response got = run(std::move(dec));
    ASSERT_EQ(got.values.size(), h->ctx->slots());
    for (size_t k = 0; k < got.values.size(); ++k)
        EXPECT_DOUBLE_EQ(got.values[k], vals[k] * vals[k]);
}

TEST_F(VirtualTest, RealServerRejectsBootstrap)
{
    serve::ServerOptions opts;
    opts.backend = BackendKind::Real;
    serve::Server server(h->ctx, opts);

    KeyGenerator keygen(h->ctx);
    const SecretKey sk = keygen.secretKey();
    serve::TenantKeys keys;
    keys.pk = keygen.publicKey(sk);
    keys.rlk = keygen.relinKey(sk);
    const u64 tenant = server.addTenant(std::move(keys));

    serve::Request boot;
    boot.tenant = tenant;
    boot.id = 1;
    boot.op = serve::Op::Bootstrap;
    boot.cts = {h->encryptSlots(test::randomSlots(h->ctx->slots(), 1), 2)};
    const serve::Response resp = server.submit(std::move(boot)).get();
    EXPECT_FALSE(resp.ok);
    EXPECT_NE(resp.error.find("does not serve bootstrap requests"),
              std::string::npos)
        << resp.error;
}

} // namespace
} // namespace madfhe
