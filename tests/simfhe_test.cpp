/**
 * @file
 * SimFHE model tests: Table 4 calibration bands, optimization invariants
 * (caching never changes compute; every optimization tier is monotone in
 * DRAM), cache feasibility gating, the Equation 3 throughput metric, and
 * the parameter search.
 */
#include <gtest/gtest.h>

#include "simfhe/hardware.h"
#include "simfhe/search.h"

namespace madfhe {
namespace simfhe {
namespace {

SchemeConfig
baseline()
{
    return SchemeConfig::baselineJung();
}

CostModel
baseModel(Optimizations o = Optimizations::none(), double cache_mb = 2)
{
    return CostModel(baseline(), CacheConfig::megabytes(cache_mb), o);
}

void
expectWithin(double got, double want, double rel_tol, const char* what)
{
    EXPECT_LE(std::abs(got - want), rel_tol * want)
        << what << ": got " << got << ", paper " << want;
}

TEST(SchemeConfig, DerivedQuantitiesMatchPaper)
{
    SchemeConfig s = baseline();
    EXPECT_EQ(s.n(), size_t(1) << 17);
    EXPECT_EQ(s.slots(), size_t(1) << 16);
    EXPECT_EQ(s.alpha(), 12u); // ceil(36/3)
    EXPECT_EQ(s.beta(35), 3u);
    EXPECT_EQ(s.raised(35), 48u); // 3*12 + 12
    EXPECT_NEAR(s.limbBytes(), 1048576.0, 1.0);
    // Baseline [20]: logQ1 = 1080 = (35 - 15) * 54.
    EXPECT_EQ(s.bootstrapDepth(), 15u);
    EXPECT_DOUBLE_EQ(s.logQ1(), 1080.0);

    SchemeConfig m = SchemeConfig::madOptimal();
    // Ours: logQ1 = 950 = (40 - 21) * 50 (Table 6 MAD rows).
    EXPECT_EQ(m.bootstrapDepth(), 21u);
    EXPECT_DOUBLE_EQ(m.logQ1(), 950.0);
}

TEST(CostModelTable4, PrimitiveOpsWithinTenPercent)
{
    CostModel m = baseModel();
    expectWithin(m.ptAdd(35).ops(), 0.0046e9, 0.10, "PtAdd ops");
    expectWithin(m.add(35).ops(), 0.0092e9, 0.10, "Add ops");
    expectWithin(m.ptMult(35).ops(), 0.2747e9, 0.10, "PtMult ops");
    expectWithin(m.decomp(35).ops(), 0.0092e9, 0.10, "Decomp ops");
    expectWithin(m.modUpDigit(35).ops(), 0.2847e9, 0.10, "ModUp ops");
    expectWithin(m.kskInnerProd(35).ops(), 0.0629e9, 0.25, "KSKIP ops");
    expectWithin(m.modDownPoly(35).ops(), 0.3000e9, 0.10, "ModDown ops");
    expectWithin(m.mult(35).ops(), 1.8333e9, 0.10, "Mult ops");
    expectWithin(m.rotate(35).ops(), 1.5310e9, 0.10, "Rotate ops");
    EXPECT_EQ(m.automorph(35).ops(), 0.0);
}

TEST(CostModelTable4, PrimitiveDramWithinBand)
{
    CostModel m = baseModel();
    expectWithin(m.ptAdd(35).bytes(), 0.1101e9, 0.02, "PtAdd GB");
    expectWithin(m.add(35).bytes(), 0.2202e9, 0.02, "Add GB");
    expectWithin(m.ptMult(35).bytes(), 0.3282e9, 0.02, "PtMult GB");
    expectWithin(m.decomp(35).bytes(), 0.0734e9, 0.02, "Decomp GB");
    expectWithin(m.modUpDigit(35).bytes(), 0.1510e9, 0.02, "ModUp GB");
    expectWithin(m.modDownPoly(35).bytes(), 0.1877e9, 0.02, "ModDown GB");
    expectWithin(m.automorph(35).bytes(), 0.1468e9, 0.02, "Automorph GB");
    expectWithin(m.kskInnerProd(35).bytes(), 0.4530e9, 0.25, "KSKIP GB");
    expectWithin(m.mult(35).bytes(), 1.9293e9, 0.15, "Mult GB");
    expectWithin(m.rotate(35).bytes(), 1.5645e9, 0.15, "Rotate GB");
}

TEST(CostModelTable4, BootstrapMagnitudes)
{
    CostModel m = baseModel();
    Cost b = m.bootstrap();
    // Paper: 149.5 Gops; our schedule lands within 10%.
    expectWithin(b.ops(), 149.546e9, 0.10, "Bootstrap ops");
    // Paper: 208 GB for the (already kernel-fused) Jung baseline; our
    // fully naive baseline is allowed to sit up to 50% above it.
    EXPECT_GT(b.bytes(), 200e9);
    EXPECT_LT(b.bytes(), 320e9);
    // All primitives and bootstrap are memory bound: AI < 1 op/byte.
    EXPECT_LT(b.intensity(), 1.0);
}

TEST(CostModelInvariants, CachingOptsNeverChangeCompute)
{
    Cost base = baseModel(Optimizations::none()).bootstrap();
    for (auto o : {Optimizations::o1(), Optimizations::upToBeta(),
                   Optimizations::upToAlpha(), Optimizations::allCaching()}) {
        Cost c = baseModel(o, 32).bootstrap();
        EXPECT_DOUBLE_EQ(c.ops(), base.ops()) << o.describe();
    }
}

TEST(CostModelInvariants, CachingTiersMonotoneInDram)
{
    double prev = baseModel(Optimizations::none()).bootstrap().bytes();
    for (auto o : {Optimizations::o1(), Optimizations::upToBeta(),
                   Optimizations::upToAlpha(), Optimizations::allCaching()}) {
        double cur = baseModel(o, 32).bootstrap().bytes();
        EXPECT_LT(cur, prev) << o.describe();
        prev = cur;
    }
}

TEST(CostModelInvariants, FullCachingReachesPaperReduction)
{
    double base = baseModel(Optimizations::none()).bootstrap().bytes();
    double full = baseModel(Optimizations::allCaching(), 32)
                      .bootstrap().bytes();
    double reduction = 1.0 - full / base;
    // Paper Figure 2: 52% cumulative reduction.
    EXPECT_GT(reduction, 0.40);
    EXPECT_LT(reduction, 0.65);
}

TEST(CostModelInvariants, CachingLiftsIntensityTowardPaper)
{
    double ai0 = baseModel(Optimizations::none()).bootstrap().intensity();
    double ai1 =
        baseModel(Optimizations::allCaching(), 32).bootstrap().intensity();
    // Paper: 0.72 -> 1.25 (~1.7x). Ours starts lower (more naive
    // baseline) but must land in the same band and gain >= 1.6x.
    EXPECT_GT(ai1, 1.0);
    EXPECT_LT(ai1, 1.5);
    EXPECT_GT(ai1 / ai0, 1.6);
}

TEST(CostModelInvariants, AlgorithmicOptsReduceCompute)
{
    SchemeConfig s = SchemeConfig::madOptimal();
    CacheConfig c32 = CacheConfig::megabytes(32);
    double caching = CostModel(s, c32, Optimizations::allCaching())
                         .bootstrap().ops();
    double merged = CostModel(s, c32, Optimizations::withMerge())
                        .bootstrap().ops();
    double hoisted = CostModel(s, c32, Optimizations::withHoist())
                         .bootstrap().ops();
    // ModDown merge trims compute a few percent (paper: 6%).
    EXPECT_LT(merged, caching);
    EXPECT_GT(merged, caching * 0.90);
    // ModDown hoisting is the big compute win (paper: 34%).
    EXPECT_LT(hoisted, merged * 0.75);
}

TEST(CostModelInvariants, KeyCompressionHalvesKeyReadsExactly)
{
    SchemeConfig s = SchemeConfig::madOptimal();
    CacheConfig c32 = CacheConfig::megabytes(32);
    Cost before = CostModel(s, c32, Optimizations::withHoist()).bootstrap();
    Cost after = CostModel(s, c32, Optimizations::all()).bootstrap();
    EXPECT_DOUBLE_EQ(after.key_read, before.key_read / 2.0);
    EXPECT_DOUBLE_EQ(after.ops(), before.ops());
    EXPECT_DOUBLE_EQ(after.ct_read, before.ct_read);
}

TEST(CostModelInvariants, FullMadTriplesArithmeticIntensity)
{
    // Paper headline: 3x bootstrapping AI vs the baseline benchmark.
    double base = baseModel(Optimizations::none()).bootstrap().intensity();
    SchemeConfig s = SchemeConfig::madOptimal();
    double full = CostModel(s, CacheConfig::megabytes(32),
                            Optimizations::all()).bootstrap().intensity();
    EXPECT_GT(full / base, 2.5);
    EXPECT_LT(full / base, 4.0);
}

TEST(Feasibility, SmallCachesDisableBigOptimizations)
{
    SchemeConfig s = baseline(); // alpha = 12
    auto all = Optimizations::all();

    auto at6 = all.feasible(s, CacheConfig::megabytes(6));
    EXPECT_TRUE(at6.cache_o1);
    EXPECT_TRUE(at6.cache_beta);
    EXPECT_FALSE(at6.cache_alpha);
    EXPECT_FALSE(at6.limb_reorder);

    auto at1 = all.feasible(s, CacheConfig::megabytes(1.5));
    EXPECT_TRUE(at1.cache_o1);
    EXPECT_FALSE(at1.cache_beta);

    auto at32 = all.feasible(s, CacheConfig::megabytes(32));
    EXPECT_TRUE(at32.cache_alpha);
    EXPECT_TRUE(at32.limb_reorder);
}

TEST(Feasibility, MoreCacheNeverHurts)
{
    SchemeConfig s = baseline();
    auto opts = Optimizations::all();
    double prev = 1e30;
    for (double mb : {1.0, 2.0, 6.0, 16.0, 32.0, 64.0, 256.0}) {
        CostModel m(s, CacheConfig::megabytes(mb), opts);
        double bytes = m.bootstrap().bytes();
        EXPECT_LE(bytes, prev + 1.0) << mb << " MB";
        prev = bytes;
    }
}

TEST(Hardware, ThroughputMetricMatchesTable6Arithmetic)
{
    // GPU row: 2^16 slots, logQ1 = 1080, bp 19, 328.7 ms -> 409.
    SchemeConfig s = baseline();
    double tput = bootstrapThroughput(s, 0.3287);
    EXPECT_NEAR(tput, 409.0, 2.0);

    // MAD row: logQ1 = 950, 39.35 ms -> 3006.
    SchemeConfig m = SchemeConfig::madOptimal();
    EXPECT_NEAR(bootstrapThroughput(m, 0.03935), 3006.0, 10.0);
}

TEST(Hardware, RooflineMath)
{
    HardwareDesign hw = HardwareDesign::gpu();
    Cost c;
    c.mul = 9e9;            // 9 Gops at 2250 Gop/s -> 4 ms
    c.ct_read = 9e9;        // 9 GB at 900 GB/s -> 10 ms
    EXPECT_NEAR(computeTimeSec(hw, c), 0.004, 1e-9);
    EXPECT_NEAR(memoryTimeSec(hw, c), 0.010, 1e-9);
    EXPECT_NEAR(runtimeSec(hw, c), 0.010, 1e-9);
    EXPECT_TRUE(memoryBound(hw, c));
}

TEST(Hardware, PresetsMatchTable6Columns)
{
    auto designs = HardwareDesign::all();
    ASSERT_EQ(designs.size(), 5u);
    EXPECT_EQ(designs[1].name, "F1");
    EXPECT_NEAR(designs[1].modmult_count, 18432, 1);
    EXPECT_NEAR(designs[2].onchip_mb, 512, 1);
    EXPECT_NEAR(designs[4].bandwidth, 2.4e12, 1e9);
    EXPECT_NEAR(designs[0].published_boot_ms, 328.7, 0.01);
}

TEST(Hardware, MadMakesBigCacheAsicsComputeBound)
{
    // The Section 4.2 claim: after MAD, BTS and CraterLake become
    // compute-bound, so growing the cache beyond 32 MB buys nothing.
    SchemeConfig s = SchemeConfig::madOptimal();
    Cost c = CostModel(s, CacheConfig::megabytes(32),
                       Optimizations::all()).bootstrap();
    EXPECT_FALSE(memoryBound(HardwareDesign::bts().withCache(32), c));
    EXPECT_FALSE(memoryBound(HardwareDesign::craterlake().withCache(32), c));
    // The GPU stays memory-bound.
    EXPECT_TRUE(memoryBound(HardwareDesign::gpu().withCache(32), c));
}

TEST(Search, FindsFeasibleHighThroughputParameters)
{
    SearchSpace space;
    space.min_limb_bits = 44;
    space.max_limb_bits = 58;
    space.min_limbs = 28;
    space.max_limbs = 44;
    space.dnums = {1, 2, 3, 4};
    space.fft_iters = {2, 3, 4, 5, 6, 7};

    HardwareDesign hw = HardwareDesign::gpu().withCache(32);
    auto results = searchParameters(space, hw, 5);
    ASSERT_FALSE(results.empty());

    const auto& best = results.front();
    // Security budget respected.
    double log_qp = (best.config.boot_limbs + 1 + best.config.alpha()) *
                    best.config.limb_bits;
    EXPECT_LE(log_qp, maxLogQP(17));
    // The search must beat (or match) the baseline parameter set.
    CostModel base_model(baseline(), CacheConfig::megabytes(32),
                         Optimizations::all());
    double base_tput = bootstrapThroughput(
        baseline(), runtimeSec(hw, base_model.bootstrap()));
    EXPECT_GE(best.throughput, base_tput);
    // Results are sorted descending.
    for (size_t i = 1; i < results.size(); ++i)
        EXPECT_GE(results[i - 1].throughput, results[i].throughput);
}


TEST(SparseBootstrap, FewerSlotsCostLess)
{
    SchemeConfig full = SchemeConfig::madOptimal();
    SchemeConfig sparse = full;
    sparse.boot_slots = 1 << 13;
    CacheConfig c32 = CacheConfig::megabytes(32);
    Cost cf = CostModel(full, c32, Optimizations::all()).bootstrap();
    Cost cs = CostModel(sparse, c32, Optimizations::all()).bootstrap();
    EXPECT_LT(cs.ops(), cf.ops());
    EXPECT_LT(cs.bytes(), cf.bytes());
    // Fully packed default is unchanged.
    EXPECT_EQ(full.bootSlots(), full.slots());
    EXPECT_EQ(sparse.bootSlots(), size_t(1) << 13);
}

TEST(SparseBootstrap, ThroughputScalesWithUsefulSlots)
{
    SchemeConfig sparse = SchemeConfig::madOptimal();
    sparse.boot_slots = 1 << 13;
    // Equation 3 counts only refreshed slots.
    double t_full = bootstrapThroughput(SchemeConfig::madOptimal(), 0.05);
    double t_sparse = bootstrapThroughput(sparse, 0.05);
    EXPECT_NEAR(t_full / t_sparse, 8.0, 1e-9);
}

class CacheSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(CacheSweep, EffectiveOptsRespectFeasibility)
{
    SchemeConfig s = baseline();
    CostModel m(s, CacheConfig::megabytes(GetParam()),
                Optimizations::all());
    auto eff = m.effective();
    auto expect = Optimizations::all().feasible(
        s, CacheConfig::megabytes(GetParam()));
    EXPECT_EQ(eff.cache_o1, expect.cache_o1);
    EXPECT_EQ(eff.cache_beta, expect.cache_beta);
    EXPECT_EQ(eff.cache_alpha, expect.cache_alpha);
    EXPECT_EQ(eff.limb_reorder, expect.limb_reorder);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 6.0, 16.0, 27.0,
                                           32.0, 64.0, 512.0));

} // namespace
} // namespace simfhe
} // namespace madfhe
