/**
 * @file
 * PtMatVecMult tests: BSGS with/without ModUp and ModDown hoisting against
 * the plaintext reference; all option combinations must agree.
 */
#include <gtest/gtest.h>

#include "ckks/matvec.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::maxError;
using test::randomSlots;

std::map<int, std::vector<std::complex<double>>>
randomDiagonals(size_t slots, const std::vector<int>& indices, u64 seed)
{
    std::map<int, std::vector<std::complex<double>>> diags;
    u64 s = seed;
    for (int d : indices)
        diags[d] = randomSlots(slots, s++);
    return diags;
}

class MatVecTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(MatVecTest, SingleDiagonalIsPointwiseProduct)
{
    const size_t slots = h->ctx->slots();
    auto diags = randomDiagonals(slots, {0}, 1);
    LinearTransform lt(h->ctx, diags, h->ctx->scale());
    auto x = randomSlots(slots, 2);
    auto ct = h->encryptSlots(x, 3);
    GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
    auto y = h->decryptSlots(lt.apply(*h->eval, *h->encoder, ct, gks));
    auto expect = lt.applyPlain(x);
    EXPECT_LT(maxError(expect, y), 1e-3);
}

TEST_F(MatVecTest, GeneralDiagonalsMatchPlainReference)
{
    const size_t slots = h->ctx->slots();
    auto diags = randomDiagonals(slots, {0, 1, 2, 5, 9}, 3);
    LinearTransform lt(h->ctx, diags, h->ctx->scale());
    auto x = randomSlots(slots, 4);
    auto ct = h->encryptSlots(x, 3);
    GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
    auto y = h->decryptSlots(lt.apply(*h->eval, *h->encoder, ct, gks));
    EXPECT_LT(maxError(lt.applyPlain(x), y), 1e-3);
}

TEST_F(MatVecTest, NegativeDiagonalIndicesWrap)
{
    const size_t slots = h->ctx->slots();
    auto diags = randomDiagonals(slots, {-1, 0, 1}, 5);
    LinearTransform lt(h->ctx, diags, h->ctx->scale());
    auto x = randomSlots(slots, 6);
    auto ct = h->encryptSlots(x, 3);
    GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
    auto y = h->decryptSlots(lt.apply(*h->eval, *h->encoder, ct, gks));
    EXPECT_LT(maxError(lt.applyPlain(x), y), 1e-3);
}

TEST_F(MatVecTest, ApplyConsumesExactlyOneLevel)
{
    const size_t slots = h->ctx->slots();
    auto diags = randomDiagonals(slots, {0, 3}, 7);
    LinearTransform lt(h->ctx, diags, h->ctx->scale());
    auto ct = h->encryptSlots(randomSlots(slots, 8), 4);
    GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
    auto out = lt.apply(*h->eval, *h->encoder, ct, gks);
    EXPECT_EQ(out.level(), 3u);
}

struct MatVecOptCase
{
    bool hoist_modup;
    bool hoist_moddown;
    bool double_hoist = false;
};

class MatVecOptionSweep : public ::testing::TestWithParam<MatVecOptCase>
{
};

TEST_P(MatVecOptionSweep, AllHoistingVariantsAgree)
{
    CkksHarness h(CkksParams::unitTest());
    const size_t slots = h.ctx->slots();
    auto diags = randomDiagonals(slots, {0, 1, 4, 6, 11, 13}, 9);

    MatVecOptions opts;
    opts.hoist_modup = GetParam().hoist_modup;
    opts.hoist_moddown = GetParam().hoist_moddown;
    opts.double_hoist = GetParam().double_hoist;
    LinearTransform lt(h.ctx, diags, h.ctx->scale(), opts);

    auto x = randomSlots(slots, 10);
    auto ct = h.encryptSlots(x, 3);
    GaloisKeys gks = h.makeGaloisKeys(lt.requiredRotations());
    auto y = h.decryptSlots(lt.apply(*h.eval, *h.encoder, ct, gks));
    EXPECT_LT(maxError(lt.applyPlain(x), y), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Options, MatVecOptionSweep,
    ::testing::Values(MatVecOptCase{false, false, false},
                      MatVecOptCase{true, false, false},
                      MatVecOptCase{true, true, false},
                      MatVecOptCase{true, true, true}));

TEST_F(MatVecTest, ExplicitBabyStepCount)
{
    const size_t slots = h->ctx->slots();
    auto diags = randomDiagonals(slots, {0, 1, 2, 3, 4, 5}, 11);
    MatVecOptions opts;
    opts.baby_steps = 2;
    LinearTransform lt(h->ctx, diags, h->ctx->scale(), opts);
    auto x = randomSlots(slots, 12);
    auto ct = h->encryptSlots(x, 3);
    GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
    auto y = h->decryptSlots(lt.apply(*h->eval, *h->encoder, ct, gks));
    EXPECT_LT(maxError(lt.applyPlain(x), y), 1e-3);
}

TEST_F(MatVecTest, ApplyFusedByteIdenticalToApply)
{
    const size_t slots = h->ctx->slots();
    auto diags = randomDiagonals(slots, {0, 1, 2, 3, 5, 8}, 13);
    LinearTransform lt(h->ctx, diags, h->ctx->scale());
    auto ct = h->encryptSlots(randomSlots(slots, 14), 3);
    GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
    Ciphertext a = lt.apply(*h->eval, *h->encoder, ct, gks);
    Ciphertext f = lt.applyFused(*h->eval, *h->encoder, ct, gks);
    EXPECT_TRUE(f.c0.equals(a.c0));
    EXPECT_TRUE(f.c1.equals(a.c1));
    EXPECT_EQ(f.scale, a.scale);
}

TEST_F(MatVecTest, ApplyFusedFallsBackWhenHoistingDisallows)
{
    // The fused accumulation requires hoist_modup && hoist_moddown and no
    // double hoisting; other configurations must silently take apply().
    const size_t slots = h->ctx->slots();
    for (MatVecOptions opts :
         {MatVecOptions{true, false, false, 0},
          MatVecOptions{false, false, false, 0},
          MatVecOptions{true, true, true, 0}}) {
        auto diags = randomDiagonals(slots, {0, 1, 3}, 15);
        LinearTransform lt(h->ctx, diags, h->ctx->scale(), opts);
        auto ct = h->encryptSlots(randomSlots(slots, 16), 3);
        GaloisKeys gks = h->makeGaloisKeys(lt.requiredRotations());
        Ciphertext a = lt.apply(*h->eval, *h->encoder, ct, gks);
        Ciphertext f = lt.applyFused(*h->eval, *h->encoder, ct, gks);
        EXPECT_TRUE(f.c0.equals(a.c0) && f.c1.equals(a.c1));
    }
}

TEST_F(MatVecTest, RejectsEmptyAndBadDiagonals)
{
    std::map<int, std::vector<std::complex<double>>> empty;
    EXPECT_THROW(LinearTransform(h->ctx, empty, h->ctx->scale()),
                 std::invalid_argument);
    std::map<int, std::vector<std::complex<double>>> bad;
    bad[0] = randomSlots(3, 1); // wrong length
    EXPECT_THROW(LinearTransform(h->ctx, bad, h->ctx->scale()),
                 std::invalid_argument);
}

} // namespace
} // namespace madfhe
