/**
 * @file
 * SimFHE model detail tests: per-primitive behavior under each
 * optimization, scaling in the scheme parameters, schedule structure,
 * and the area/cost model.
 */
#include <gtest/gtest.h>

#include "simfhe/area.h"
#include "simfhe/search.h"

namespace madfhe {
namespace simfhe {
namespace {

SchemeConfig
cfg()
{
    return SchemeConfig::baselineJung();
}

TEST(ModelDetail, RotateO1SavesExactlyThePaperFigure1Amount)
{
    // Figure 1: O(1) fusion on Rotate saves 140 limb transfers at l=35
    // from the Automorph/Decomp/iNTT chain, plus 2l from fusing the
    // other polynomial's automorph into the final add (3l reads + 3l
    // writes total).
    CostModel naive(cfg(), CacheConfig::megabytes(2),
                    Optimizations::none());
    CostModel o1(cfg(), CacheConfig::megabytes(2), Optimizations::o1());
    double saved = naive.rotate(35).bytes() - o1.rotate(35).bytes();
    double limb = cfg().limbBytes();
    EXPECT_NEAR(saved / limb, 6.0 * 35.0, 1.0);
}

TEST(ModelDetail, ModUpAlphaCachingSavings)
{
    // O(alpha): ModUp digit traffic drops from (2a + fresh) reads +
    // (a + 2 fresh) writes to a reads + fresh writes.
    CostModel naive(cfg(), CacheConfig::megabytes(2),
                    Optimizations::none());
    CostModel alpha(cfg(), CacheConfig::megabytes(32),
                    Optimizations::upToAlpha());
    double limb = cfg().limbBytes();
    EXPECT_NEAR(naive.modUpDigit(35).bytes() / limb, 144.0, 0.5);
    EXPECT_NEAR(alpha.modUpDigit(35).bytes() / limb, 12.0 + 36.0, 0.5);
    // Compute identical.
    EXPECT_DOUBLE_EQ(naive.modUpDigit(35).ops(), alpha.modUpDigit(35).ops());
}

TEST(ModelDetail, MergedMultSavesNttWork)
{
    CostModel merged(cfg(), CacheConfig::megabytes(32),
                     Optimizations::withMerge());
    CostModel unmerged(cfg(), CacheConfig::megabytes(32),
                       Optimizations::allCaching());
    EXPECT_LT(merged.mult(35).ops(), unmerged.mult(35).ops());
}

TEST(ModelDetail, HoistedMatvecNeedsFewerOpsThanBaseline)
{
    CostModel hoisted(cfg(), CacheConfig::megabytes(32),
                      Optimizations::withHoist());
    CostModel baseline(cfg(), CacheConfig::megabytes(32),
                       Optimizations::allCaching());
    Cost ch = hoisted.ptMatVecMult(35, 64);
    Cost cb = baseline.ptMatVecMult(35, 64);
    EXPECT_LT(ch.ops(), cb.ops());
    EXPECT_LT(ch.ct_read + ch.ct_write, cb.ct_read + cb.ct_write);
}

TEST(ModelDetail, MatvecCostGrowsWithDiagonals)
{
    CostModel m(cfg(), CacheConfig::megabytes(32), Optimizations::all());
    double prev = 0;
    for (size_t d : {4u, 16u, 64u, 256u}) {
        double ops = m.ptMatVecMult(35, d).ops();
        EXPECT_GT(ops, prev);
        prev = ops;
    }
}

TEST(ModelDetail, CostsScaleWithLimbCount)
{
    // Within a digit the raised basis is fixed and the ModDown drop
    // shrinks, so cost is only monotone across whole-digit strides.
    CostModel m(cfg(), CacheConfig::megabytes(2), Optimizations::none());
    const size_t alpha = cfg().alpha();
    for (size_t l : {12u, 23u}) {
        EXPECT_GT(m.mult(l + alpha).ops(), m.mult(l).ops());
        EXPECT_GT(m.rotate(l + alpha).bytes(), m.rotate(l).bytes());
    }
}

TEST(ModelDetail, RaisedBasisArithmetic)
{
    SchemeConfig s = cfg(); // L=35, dnum=3, alpha=12
    EXPECT_EQ(s.beta(1), 1u);
    EXPECT_EQ(s.beta(12), 1u);
    EXPECT_EQ(s.beta(13), 2u);
    EXPECT_EQ(s.beta(35), 3u);
    EXPECT_EQ(s.raised(12), 24u); // 1 digit + P
    EXPECT_EQ(s.raised(13), 36u); // 2 digits + P
    s.dnum = 2;
    EXPECT_EQ(s.alpha(), 18u);
    EXPECT_EQ(s.raised(35), 54u); // 2*18 + 18
}

TEST(ModelDetail, EvalModRequiresEnoughLevels)
{
    CostModel m(cfg(), CacheConfig::megabytes(32), Optimizations::all());
    EXPECT_THROW(m.evalMod(5), std::logic_error);
    EXPECT_NO_THROW(m.evalMod(12));
}

TEST(ModelDetail, DftFactorDiagonalsCoverAllStages)
{
    // The per-factor stage groups must sum to log2(slots).
    for (size_t iters : {1u, 2u, 3u, 4u, 6u, 8u}) {
        SchemeConfig s = cfg();
        s.fft_iter = iters;
        CostModel m(s, CacheConfig::megabytes(32), Optimizations::all());
        size_t stage_sum = 0;
        for (size_t i = 0; i < iters; ++i) {
            size_t d = m.dftFactorDiagonals(i);
            // d = 2^(g+1) - 1 -> g = log2(d+1) - 1.
            stage_sum += floorLog2(d + 1) - 1;
        }
        EXPECT_EQ(stage_sum, size_t(s.log_n - 1)) << "iters " << iters;
    }
}

TEST(ModelDetail, KeyReadBytesMatchKskLayout)
{
    CostModel m(cfg(), CacheConfig::megabytes(2), Optimizations::none());
    // 2 polys x beta digits x raised limbs x limb bytes.
    double expect = 2.0 * 3 * 48 * cfg().limbBytes();
    EXPECT_NEAR(m.keyReadBytes(35), expect, 1.0);
    CostModel comp(cfg(), CacheConfig::megabytes(2),
                   [] {
                       Optimizations o;
                       o.key_compression = true;
                       return o;
                   }());
    EXPECT_NEAR(comp.keyReadBytes(35), expect / 2, 1.0);
}

TEST(ModelDetail, BootstrapScalesWithRingDegree)
{
    for (unsigned logn : {15u, 16u, 17u}) {
        SchemeConfig s = cfg();
        s.log_n = logn;
        CostModel m(s, CacheConfig::megabytes(32), Optimizations::all());
        Cost c = m.bootstrap();
        EXPECT_GT(c.ops(), 0);
        if (logn > 15) {
            SchemeConfig prev = cfg();
            prev.log_n = logn - 1;
            CostModel mp(prev, CacheConfig::megabytes(32),
                         Optimizations::all());
            EXPECT_GT(c.ops(), mp.bootstrap().ops());
        }
    }
}


TEST(ModelDetail, BreakdownSumsToBootstrap)
{
    CostModel m(SchemeConfig::madOptimal(), CacheConfig::megabytes(32),
                Optimizations::all());
    auto bd = m.bootstrapBreakdown();
    Cost total = m.bootstrap();
    EXPECT_NEAR(bd.total().ops(), total.ops(), 1.0);
    EXPECT_NEAR(bd.total().bytes(), total.bytes(), 1.0);
    // Every phase contributes, and the DFT phases dominate DRAM.
    EXPECT_GT(bd.mod_raise.ops(), 0.0);
    EXPECT_GT(bd.coeff_to_slot.bytes(), bd.mod_raise.bytes());
    EXPECT_GT(bd.eval_mod.ops(), 0.0);
    EXPECT_GT(bd.slot_to_coeff.bytes(), 0.0);
}

TEST(AreaModelTest, MadPointsDominatePerArea)
{
    AreaModel area;
    SchemeConfig mad_cfg = SchemeConfig::madOptimal();
    for (const auto& hw : {HardwareDesign::bts(), HardwareDesign::ark(),
                           HardwareDesign::craterlake()}) {
        CostModel base_m(cfg(), CacheConfig::megabytes(hw.onchip_mb),
                         Optimizations::none());
        double base_eff =
            throughputPerArea(cfg(), hw, base_m.bootstrap(), area);

        HardwareDesign small = hw.withCache(32);
        CostModel mad_m(mad_cfg, CacheConfig::megabytes(32),
                        Optimizations::all());
        double mad_eff =
            throughputPerArea(mad_cfg, small, mad_m.bootstrap(), area);
        EXPECT_GT(mad_eff, base_eff) << hw.name;
    }
}

TEST(AreaModelTest, AreaArithmetic)
{
    AreaModel a;
    double chip = a.chipAreaMm2(10000, 100);
    EXPECT_NEAR(chip, 1.35 * (0.4 * 100 + 0.0025 * 10000), 1e-9);
    EXPECT_GT(a.relativeCost(200), 2 * a.relativeCost(100)); // superlinear
}

TEST(SearchDetail, RespectsSearchSpaceLists)
{
    SearchSpace space;
    space.min_limb_bits = 50;
    space.max_limb_bits = 52;
    space.min_limbs = 30;
    space.max_limbs = 34;
    space.dnums = {2};
    space.fft_iters = {4};
    auto results =
        searchParameters(space, HardwareDesign::gpu().withCache(32), 100);
    for (const auto& r : results) {
        EXPECT_EQ(r.config.dnum, 2u);
        EXPECT_EQ(r.config.fft_iter, 4u);
        EXPECT_GE(r.config.limb_bits, 50u);
        EXPECT_LE(r.config.limb_bits, 52u);
    }
}

TEST(SearchDetail, SecurityBudgetTableIsMonotone)
{
    for (unsigned logn = 14; logn <= 17; ++logn)
        EXPECT_GT(maxLogQP(logn), maxLogQP(logn - 1));
}

} // namespace
} // namespace simfhe
} // namespace madfhe
