/**
 * @file
 * NTT correctness: roundtrip, linearity, negacyclic convolution against
 * schoolbook multiplication, and evaluation-point semantics.
 */
#include <gtest/gtest.h>

#include "rns/ntt.h"
#include "rns/primegen.h"
#include "support/random.h"

namespace madfhe {
namespace {

std::vector<u64>
randomPoly(size_t n, const Modulus& q, u64 seed)
{
    Prng rng(seed);
    std::vector<u64> a(n);
    for (auto& v : a)
        v = rng.uniform(q.value());
    return a;
}

/** Schoolbook negacyclic product: x^n = -1. */
std::vector<u64>
negacyclicMul(const std::vector<u64>& a, const std::vector<u64>& b,
              const Modulus& q)
{
    size_t n = a.size();
    std::vector<u64> c(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            u64 prod = q.mul(a[i], b[j]);
            size_t k = i + j;
            if (k < n)
                c[k] = q.add(c[k], prod);
            else
                c[k - n] = q.sub(c[k - n], prod);
        }
    }
    return c;
}

TEST(Ntt, PrimitiveRootHasRightOrder)
{
    const size_t n = 1 << 8;
    Modulus q(generateNttPrimes(30, n, 1)[0]);
    u64 psi = findPrimitiveRoot(2 * n, q);
    EXPECT_EQ(q.pow(psi, n), q.value() - 1); // psi^n = -1
    EXPECT_EQ(q.pow(psi, 2 * n), 1u);
}

TEST(Ntt, RoundTripIdentity)
{
    const size_t n = 1 << 10;
    Modulus q(generateNttPrimes(45, n, 1)[0]);
    NttTables ntt(n, q);
    auto a = randomPoly(n, q, 1);
    auto b = a;
    ntt.forward(b.data());
    EXPECT_NE(a, b); // transform actually does something
    ntt.inverse(b.data());
    EXPECT_EQ(a, b);
}

TEST(Ntt, ForwardIsLinear)
{
    const size_t n = 1 << 9;
    Modulus q(generateNttPrimes(40, n, 1)[0]);
    NttTables ntt(n, q);
    auto a = randomPoly(n, q, 2);
    auto b = randomPoly(n, q, 3);
    std::vector<u64> sum(n);
    for (size_t i = 0; i < n; ++i)
        sum[i] = q.add(a[i], b[i]);
    ntt.forward(a.data());
    ntt.forward(b.data());
    ntt.forward(sum.data());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(sum[i], q.add(a[i], b[i]));
}

TEST(Ntt, PointwiseEqualsNegacyclicConvolution)
{
    const size_t n = 1 << 7; // schoolbook is O(n^2)
    Modulus q(generateNttPrimes(50, n, 1)[0]);
    NttTables ntt(n, q);
    auto a = randomPoly(n, q, 4);
    auto b = randomPoly(n, q, 5);
    auto expect = negacyclicMul(a, b, q);

    ntt.forward(a.data());
    ntt.forward(b.data());
    std::vector<u64> c(n);
    for (size_t i = 0; i < n; ++i)
        c[i] = q.mul(a[i], b[i]);
    ntt.inverse(c.data());
    EXPECT_EQ(c, expect);
}

TEST(Ntt, EvalSlotsHoldEvaluationsAtOddPsiPowers)
{
    const size_t n = 1 << 6;
    Modulus q(generateNttPrimes(30, n, 1)[0]);
    NttTables ntt(n, q);
    auto a = randomPoly(n, q, 6);
    auto ev = a;
    ntt.forward(ev.data());
    u64 psi = ntt.psi();
    // slot k should be a(psi^(2k+1)); check a few slots by Horner.
    for (size_t k : {size_t(0), size_t(1), n / 2, n - 1}) {
        u64 x = q.pow(psi, 2 * k + 1);
        u64 val = 0;
        for (size_t i = n; i-- > 0;)
            val = q.add(q.mul(val, x), a[i]);
        EXPECT_EQ(ev[k], val) << "slot " << k;
    }
}

TEST(Ntt, ConstantPolynomialTransformsToConstantSlots)
{
    const size_t n = 1 << 8;
    Modulus q(generateNttPrimes(30, n, 1)[0]);
    NttTables ntt(n, q);
    std::vector<u64> a(n, 0);
    a[0] = 7;
    ntt.forward(a.data());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(a[i], 7u);
}

class NttSweep
    : public ::testing::TestWithParam<std::tuple<size_t, unsigned>>
{
};

TEST_P(NttSweep, RoundTripAcrossSizesAndWidths)
{
    auto [logn, bits] = GetParam();
    const size_t n = size_t(1) << logn;
    Modulus q(generateNttPrimes(bits, n, 1)[0]);
    NttTables ntt(n, q);
    auto a = randomPoly(n, q, logn * 100 + bits);
    auto b = a;
    ntt.forward(b.data());
    ntt.inverse(b.data());
    EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(SizesWidths, NttSweep,
    ::testing::Combine(::testing::Values(size_t(3), size_t(6), size_t(10),
                                         size_t(12), size_t(13)),
                       ::testing::Values(28u, 40u, 54u, 60u)));

} // namespace
} // namespace madfhe
