/**
 * @file
 * Functional application-library tests: encrypted logistic-regression
 * training and encrypted MLP inference against their plaintext
 * references.
 */
#include <gtest/gtest.h>

#include "apps/lr.h"
#include "apps/mlp.h"
#include "test_util.h"

namespace madfhe {
namespace apps {
namespace {

CkksParams
lrParams()
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 33;
    p.first_prime_bits = 45;
    p.num_levels = 14;
    p.dnum = 3;
    return p;
}

TEST(LrDataset, TwoGaussiansShape)
{
    auto d = LrDataset::twoGaussians(128, 3, 1);
    EXPECT_EQ(d.features.size(), 3u);
    EXPECT_EQ(d.sampleCount(), 128u);
    size_t positives = 0;
    for (double y : d.labels) {
        EXPECT_TRUE(y == 0.0 || y == 1.0);
        positives += (y == 1.0);
    }
    EXPECT_EQ(positives, 64u);
}

TEST(LrDataset, ClassesAreSeparated)
{
    auto d = LrDataset::twoGaussians(512, 4, 2);
    // Mean feature value per class must differ clearly.
    double mean_pos = 0, mean_neg = 0;
    for (size_t i = 0; i < d.sampleCount(); ++i) {
        if (d.labels[i] > 0.5)
            mean_pos += d.features[0][i];
        else
            mean_neg += d.features[0][i];
    }
    EXPECT_GT(mean_pos / 256 - mean_neg / 256, 0.4);
}

TEST(SigmoidApprox, CloseToTrueSigmoidNearZero)
{
    for (double z = -1.5; z <= 1.5; z += 0.25) {
        double truth = 1.0 / (1.0 + std::exp(-z));
        EXPECT_NEAR(sigmoidApprox(z), truth, 0.02) << "z=" << z;
    }
}

TEST(EncryptedLr, TrainerMatchesPlainReference)
{
    auto ctx = std::make_shared<CkksContext>(lrParams());
    LrConfig cfg;
    cfg.features = 4;
    cfg.iterations = 2;
    EncryptedLrTrainer trainer(ctx, cfg);

    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, trainer.requiredRotations());
    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    auto data = LrDataset::twoGaussians(ctx->slots(), cfg.features, 7);
    auto cts = trainer.encryptFeatures(encoder, encryptor, data);
    auto labels = trainer.encryptLabels(encoder, encryptor, data);
    auto enc_w =
        trainer.train(eval, encoder, encryptor, cts, labels, rlk, gks);
    LrModel enc_model = trainer.decryptModel(encoder, decryptor, enc_w);
    LrModel ref_model = trainer.trainPlain(data);

    ASSERT_EQ(enc_model.weights.size(), cfg.features);
    for (size_t j = 0; j < cfg.features; ++j)
        EXPECT_NEAR(enc_model.weights[j], ref_model.weights[j], 1e-3);
    EXPECT_GT(enc_model.accuracy(data), 0.9);
}

TEST(EncryptedLr, RejectsInsufficientDepth)
{
    CkksParams p = lrParams();
    p.num_levels = 4;
    auto ctx = std::make_shared<CkksContext>(p);
    LrConfig cfg;
    cfg.iterations = 3;
    EXPECT_THROW(EncryptedLrTrainer(ctx, cfg), std::invalid_argument);
}

TEST(BlockDenseDiagonals, MatchesDirectBlockMatvec)
{
    const size_t dim = 4, slots = 16;
    std::vector<std::vector<double>> w = {
        {1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}};
    auto diags = blockDenseDiagonals(w, dim, slots);

    // Apply the diagonal map in plain slot space.
    std::vector<std::complex<double>> x(slots);
    Prng rng(3);
    for (auto& v : x)
        v = {2 * rng.uniformReal() - 1, 0.0};
    std::vector<std::complex<double>> y(slots, {0, 0});
    for (const auto& [d, diag] : diags) {
        size_t dd = static_cast<size_t>((d % int(slots) + int(slots))) %
                    slots;
        for (size_t k = 0; k < slots; ++k)
            y[k] += diag[k] * x[(k + dd) % slots];
    }

    for (size_t b = 0; b < slots / dim; ++b) {
        for (size_t r = 0; r < dim; ++r) {
            double expect = 0;
            if (r < w.size())
                for (size_t c = 0; c < dim; ++c)
                    expect += w[r][c] * x[b * dim + c].real();
            EXPECT_NEAR(y[b * dim + r].real(), expect, 1e-12)
                << "block " << b << " row " << r;
        }
    }
}

TEST(BlockDenseDiagonals, RejectsBadShapes)
{
    std::vector<std::vector<double>> w = {{1, 2}};
    EXPECT_THROW(blockDenseDiagonals(w, 3, 12), std::invalid_argument);
    EXPECT_THROW(blockDenseDiagonals(w, 4, 12), std::invalid_argument);
    std::vector<std::vector<double>> empty;
    EXPECT_THROW(blockDenseDiagonals(empty, 2, 8), std::invalid_argument);
}

TEST(EncryptedMlpTest, InferenceMatchesPlainForward)
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 34;
    p.first_prime_bits = 46;
    p.num_levels = 5;
    p.dnum = 2;
    auto ctx = std::make_shared<CkksContext>(p);
    const size_t dim = 4;

    Prng rng(11);
    auto randMat = [&](size_t rows) {
        std::vector<std::vector<double>> m(rows, std::vector<double>(dim));
        for (auto& row : m)
            for (auto& v : row)
                v = (2 * rng.uniformReal() - 1) * 0.5;
        return m;
    };
    EncryptedMlp mlp(ctx, {randMat(dim), randMat(2)}, dim);
    EXPECT_EQ(mlp.depth(), 3u);
    EXPECT_EQ(mlp.batch(), ctx->slots() / dim);

    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, mlp.requiredRotations());
    CkksEncoder encoder(ctx);
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, sk);
    Evaluator eval(ctx);

    std::vector<double> input(ctx->slots());
    for (auto& v : input)
        v = 2 * rng.uniformReal() - 1;
    Ciphertext ct = encryptor.encrypt(
        encoder.encodeReal(input, ctx->scale(), ctx->maxLevel()));
    Ciphertext out = mlp.infer(eval, encoder, ct, gks, rlk);
    auto slots = encoder.decode(decryptor.decrypt(out));

    for (size_t b = 0; b < mlp.batch(); ++b) {
        std::vector<double> sample(input.begin() + b * dim,
                                   input.begin() + (b + 1) * dim);
        auto ref = mlp.inferPlain(sample);
        for (size_t r = 0; r < dim; ++r)
            EXPECT_NEAR(slots[b * dim + r].real(), ref[r], 1e-3)
                << "block " << b << " out " << r;
    }
}

TEST(EncryptedMlpTest, RejectsInsufficientLevels)
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 34;
    p.first_prime_bits = 46;
    p.num_levels = 2;
    p.dnum = 2;
    auto ctx = std::make_shared<CkksContext>(p);
    std::vector<std::vector<double>> w(4, std::vector<double>(4, 0.1));
    EXPECT_THROW(EncryptedMlp(ctx, {w, w}, 4), std::invalid_argument);
}

} // namespace
} // namespace apps
} // namespace madfhe
