/**
 * @file
 * Security-budget table tests and the context security estimate.
 */
#include <gtest/gtest.h>

#include "ckks/context.h"
#include "support/security.h"

namespace madfhe {
namespace {

TEST(SecurityTable, StandardValues)
{
    EXPECT_DOUBLE_EQ(heStdMaxLogQP128(13), 218);
    EXPECT_DOUBLE_EQ(heStdMaxLogQP128(14), 438);
    EXPECT_DOUBLE_EQ(heStdMaxLogQP128(15), 881);
    EXPECT_DOUBLE_EQ(heStdMaxLogQP128(16), 1761);
    EXPECT_DOUBLE_EQ(heStdMaxLogQP128(17), 3524);
}

TEST(SecurityTable, ExtrapolationDoubles)
{
    EXPECT_NEAR(heStdMaxLogQP128(18), 27.0 * 256, 1e-6); // 27 * 2^8
}

TEST(SecurityEstimate, AnchoredAt128Bits)
{
    for (unsigned logn = 13; logn <= 17; ++logn)
        EXPECT_NEAR(estimateSecurityBits(logn, heStdMaxLogQP128(logn)),
                    128.0, 1e-9);
    // Half the modulus ~ twice the security (first order).
    EXPECT_NEAR(estimateSecurityBits(15, heStdMaxLogQP128(15) / 2), 256.0,
                1e-9);
}

TEST(SecurityEstimate, ContextReportsToyParamsAsInsecure)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    // N = 2^10 with a ~250-bit chain is nowhere near 128-bit security;
    // the estimate must say so loudly.
    EXPECT_GT(ctx->logQP(), 200.0);
    EXPECT_LT(ctx->securityBits(), 32.0);
}

TEST(SecurityEstimate, WiderModulusLowersSecurity)
{
    double a = estimateSecurityBits(16, 1000);
    double b = estimateSecurityBits(16, 2000);
    EXPECT_GT(a, b);
}

} // namespace
} // namespace madfhe
