/**
 * @file
 * Evaluator algebraic-property tests: homomorphic operations must respect
 * the ring axioms of the plaintext space (commutativity, associativity,
 * distributivity), rotation composition, and the interaction of level
 * management with every operation.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "ckks/stream.h"
#include "support/threadpool.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::maxError;
using test::randomSlots;

class EvaluatorProps : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(EvaluatorProps, AdditionCommutesAndAssociates)
{
    auto a = randomSlots(h->ctx->slots(), 1);
    auto b = randomSlots(h->ctx->slots(), 2);
    auto c = randomSlots(h->ctx->slots(), 3);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    auto cc = h->encryptSlots(c, 3);

    auto ab = h->eval->add(ca, cb);
    auto ba = h->eval->add(cb, ca);
    EXPECT_LT(maxError(h->decryptSlots(ab), h->decryptSlots(ba)), 1e-9);

    auto abc1 = h->eval->add(h->eval->add(ca, cb), cc);
    auto abc2 = h->eval->add(ca, h->eval->add(cb, cc));
    // Same additions in different order are bit-identical in RNS.
    EXPECT_TRUE(abc1.c0.equals(abc2.c0));
    EXPECT_TRUE(abc1.c1.equals(abc2.c1));
}

TEST_F(EvaluatorProps, MultiplicationCommutes)
{
    auto a = randomSlots(h->ctx->slots(), 4);
    auto b = randomSlots(h->ctx->slots(), 5);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    auto ab = h->decryptSlots(h->eval->mul(ca, cb, h->rlk));
    auto ba = h->decryptSlots(h->eval->mul(cb, ca, h->rlk));
    EXPECT_LT(maxError(ab, ba), 1e-6);
}

TEST_F(EvaluatorProps, MultiplicationDistributesOverAddition)
{
    auto a = randomSlots(h->ctx->slots(), 6);
    auto b = randomSlots(h->ctx->slots(), 7);
    auto c = randomSlots(h->ctx->slots(), 8);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    auto cc = h->encryptSlots(c, 3);

    auto lhs =
        h->decryptSlots(h->eval->mul(ca, h->eval->add(cb, cc), h->rlk));
    auto rhs = h->decryptSlots(h->eval->add(h->eval->mul(ca, cb, h->rlk),
                                            h->eval->mul(ca, cc, h->rlk)));
    EXPECT_LT(maxError(lhs, rhs), 1e-4);
}

TEST_F(EvaluatorProps, SubIsAddOfNegate)
{
    auto a = randomSlots(h->ctx->slots(), 9);
    auto b = randomSlots(h->ctx->slots(), 10);
    auto ca = h->encryptSlots(a, 2);
    auto cb = h->encryptSlots(b, 2);
    auto s1 = h->eval->sub(ca, cb);
    auto s2 = h->eval->add(ca, h->eval->negate(cb));
    EXPECT_TRUE(s1.c0.equals(s2.c0));
    EXPECT_TRUE(s1.c1.equals(s2.c1));
}

TEST_F(EvaluatorProps, RotationsCompose)
{
    const size_t slots = h->ctx->slots();
    auto a = randomSlots(slots, 11);
    auto ca = h->encryptSlots(a, 3);
    auto gks = h->makeGaloisKeys({2, 3, 5});
    auto r23 = h->eval->rotate(h->eval->rotate(ca, 2, gks), 3, gks);
    auto r5 = h->eval->rotate(ca, 5, gks);
    EXPECT_LT(maxError(h->decryptSlots(r23), h->decryptSlots(r5)), 1e-4);
}

TEST_F(EvaluatorProps, FullRotationIsIdentity)
{
    const size_t slots = h->ctx->slots();
    auto a = randomSlots(slots, 12);
    auto ca = h->encryptSlots(a, 2);
    // Rotating by the slot count maps to the identity Galois element.
    GaloisKeys empty;
    auto r = h->eval->rotate(ca, static_cast<int>(slots), empty);
    EXPECT_LT(maxError(a, h->decryptSlots(r)), 1e-5);
}

TEST_F(EvaluatorProps, DoubleConjugationIsIdentity)
{
    auto a = randomSlots(h->ctx->slots(), 13);
    auto ca = h->encryptSlots(a, 3);
    auto gks = h->makeGaloisKeys({}, /*conj=*/true);
    auto cc = h->eval->conjugate(h->eval->conjugate(ca, gks), gks);
    EXPECT_LT(maxError(a, h->decryptSlots(cc)), 1e-4);
}

TEST_F(EvaluatorProps, ConjugateOfProductIsProductOfConjugates)
{
    auto a = randomSlots(h->ctx->slots(), 14);
    auto b = randomSlots(h->ctx->slots(), 15);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(b, 3);
    auto gks = h->makeGaloisKeys({}, /*conj=*/true);

    auto lhs = h->decryptSlots(
        h->eval->conjugate(h->eval->mul(ca, cb, h->rlk), gks));
    auto rhs = h->decryptSlots(h->eval->mul(
        h->eval->conjugate(ca, gks), h->eval->conjugate(cb, gks), h->rlk));
    EXPECT_LT(maxError(lhs, rhs), 1e-4);
}

TEST_F(EvaluatorProps, MulByZeroPlaintextGivesZero)
{
    auto a = randomSlots(h->ctx->slots(), 16);
    auto ca = h->encryptSlots(a, 3);
    Plaintext zero = h->encoder->encodeScalar({0.0, 0.0}, h->ctx->scale(), 3);
    auto w = h->decryptSlots(h->eval->mulPlainRescale(ca, zero));
    for (auto z : w)
        EXPECT_LT(std::abs(z), 1e-5);
}

TEST_F(EvaluatorProps, DropThenMulEqualsMulThenDrop)
{
    auto a = randomSlots(h->ctx->slots(), 17);
    auto b = randomSlots(h->ctx->slots(), 18);
    auto ca = h->encryptSlots(a, 4);
    auto cb = h->encryptSlots(b, 4);

    // Path 1: multiply at level 4, result at level 3.
    auto p1 = h->decryptSlots(h->eval->mul(ca, cb, h->rlk));
    // Path 2: drop to level 3 first, multiply, result at level 2.
    auto p2 = h->decryptSlots(h->eval->mul(h->eval->dropToLevel(ca, 3),
                                           h->eval->dropToLevel(cb, 3),
                                           h->rlk));
    EXPECT_LT(maxError(p1, p2), 1e-4);
}

TEST_F(EvaluatorProps, ScalarOperationsMatchPlaintextAlgebra)
{
    auto a = randomSlots(h->ctx->slots(), 19);
    auto ca = h->encryptSlots(a, 3);
    // (2x + 1) - x - x - 1 == 0
    auto twox = h->eval->mulScalarRescale(ca, 2.0);
    auto expr = h->eval->addScalar(twox, 1.0, *h->encoder);
    auto ca_dropped = h->eval->dropToLevel(ca, expr.level());
    expr = h->eval->sub(expr, ca_dropped);
    expr = h->eval->sub(expr, ca_dropped);
    expr = h->eval->addScalar(expr, -1.0, *h->encoder);
    auto w = h->decryptSlots(expr);
    for (auto z : w)
        EXPECT_LT(std::abs(z), 1e-4);
}

TEST_F(EvaluatorProps, MonomialTimesMonomialComposes)
{
    auto a = randomSlots(h->ctx->slots(), 20);
    auto ca = h->encryptSlots(a, 2);
    auto m1 = h->eval->mulMonomial(h->eval->mulMonomial(ca, 5), 7);
    auto m2 = h->eval->mulMonomial(ca, 12);
    EXPECT_TRUE(m1.c0.equals(m2.c0));
    EXPECT_TRUE(m1.c1.equals(m2.c1));
}

TEST_F(EvaluatorProps, MonomialXToTheNIsMinusOne)
{
    auto a = randomSlots(h->ctx->slots(), 21);
    auto ca = h->encryptSlots(a, 2);
    // x^N = -1 in the ring.
    auto m = h->eval->mulMonomial(ca, h->ctx->degree());
    auto n = h->eval->negate(ca);
    EXPECT_TRUE(m.c0.equals(n.c0));
    EXPECT_TRUE(m.c1.equals(n.c1));
}


TEST_F(EvaluatorProps, AlignedAddHandlesLevelMismatch)
{
    auto a = randomSlots(h->ctx->slots(), 30);
    auto b = randomSlots(h->ctx->slots(), 31);
    auto ca = h->encryptSlots(a, 4);
    auto cb = h->encryptSlots(b, 2);
    // Plain add() refuses; addAligned drops and adds.
    EXPECT_THROW(h->eval->add(ca, cb), std::invalid_argument);
    auto w = h->decryptSlots(h->eval->addAligned(ca, cb));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - (a[i] + b[i])), 1e-4);
}

TEST_F(EvaluatorProps, AlignedAddHandlesScaleMismatch)
{
    auto a = randomSlots(h->ctx->slots(), 32);
    auto b = randomSlots(h->ctx->slots(), 33);
    auto ca = h->encryptSlots(a, 4);
    // cb carries a deliberately different scale (encoded at 1.7x Delta).
    Plaintext pb = h->encoder->encode(b, 1.7 * h->ctx->scale(), 4);
    Ciphertext cb = h->encryptor->encrypt(pb);
    EXPECT_THROW(h->eval->add(ca, cb), std::invalid_argument);
    auto w = h->decryptSlots(h->eval->addAligned(ca, cb));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(w[i] - (a[i] + b[i])), 1e-3);
    auto ws = h->decryptSlots(h->eval->subAligned(ca, cb));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_LT(std::abs(ws[i] - (a[i] - b[i])), 1e-3);
}

TEST_F(EvaluatorProps, AlignIsNoOpOnMatchingShapes)
{
    auto a = randomSlots(h->ctx->slots(), 34);
    auto ca = h->encryptSlots(a, 3);
    auto cb = h->encryptSlots(a, 3);
    auto [x, y] = h->eval->align(ca, cb);
    EXPECT_EQ(x.level(), 3u);
    EXPECT_EQ(y.level(), 3u);
    EXPECT_TRUE(x.c0.equals(ca.c0));
    EXPECT_TRUE(y.c0.equals(cb.c0));
}

class DepthSweep : public ::testing::TestWithParam<size_t>
{
};

TEST_P(DepthSweep, ProductChainsStayAccurate)
{
    CkksParams p = CkksParams::unitTest();
    p.num_levels = 8;
    CkksHarness h(p);
    const size_t depth = GetParam();
    const size_t slots = h.ctx->slots();

    std::vector<std::complex<double>> acc_ref(slots, {1.0, 0.0});
    auto ct = h.encryptSlots(acc_ref, h.ctx->maxLevel());
    for (size_t d = 0; d < depth; ++d) {
        auto v = randomSlots(slots, 100 + d);
        Plaintext pv = h.encoder->encode(v, h.ctx->scale(), ct.level());
        ct = h.eval->mulPlainRescale(ct, pv);
        for (size_t i = 0; i < slots; ++i)
            acc_ref[i] *= v[i];
    }
    EXPECT_LT(maxError(acc_ref, h.decryptSlots(ct)), 1e-3)
        << "depth " << depth;
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep,
                         ::testing::Values(size_t(1), size_t(3), size_t(5),
                                           size_t(7)));

/** Restore the global pool size when a sweep test exits. */
class ScopedThreads
{
  public:
    explicit ScopedThreads(size_t t)
        : prev(ThreadPool::global().size())
    {
        ThreadPool::setGlobalThreads(t);
    }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(prev); }

  private:
    size_t prev;
};

class StreamPolicySweep : public ::testing::Test
{
};

TEST_F(StreamPolicySweep, MulByteIdenticalAcrossPoliciesAndThreads)
{
    // Evaluator-level contract for the limb-streaming engine: Mult
    // (both the merged-ModDown path and the plain rescale path)
    // produces the exact same ciphertext bytes under every
    // MADFHE_STREAM policy and thread count.
    for (bool merged : {true, false}) {
        EvalOptions opts;
        opts.merged_moddown = merged;
        CkksHarness h(CkksParams::unitTest(), opts);
        auto a = randomSlots(h.ctx->slots(), 11);
        auto b = randomSlots(h.ctx->slots(), 12);
        for (size_t level : {size_t{2}, h.ctx->maxLevel()}) {
            auto ca = h.encryptSlots(a, level);
            auto cb = h.encryptSlots(b, level);
            Ciphertext ref;
            {
                ScopedStreamPolicy off(StreamPolicy::Off);
                ref = h.eval->mul(ca, cb, h.rlk);
            }
            for (StreamPolicy p : kStreamPolicies) {
                for (size_t threads : {size_t{1}, size_t{4}}) {
                    ScopedThreads st(threads);
                    ScopedStreamPolicy sp(p);
                    Ciphertext out = h.eval->mul(ca, cb, h.rlk);
                    EXPECT_TRUE(out.c0.equals(ref.c0) &&
                                out.c1.equals(ref.c1))
                        << "Mult diverges: policy " << streamPolicyName(p)
                        << " merged " << merged << " level " << level
                        << " threads " << threads;
                    EXPECT_EQ(out.scale, ref.scale);
                }
            }
        }
    }
}

TEST_F(StreamPolicySweep, RotateByteIdenticalAcrossPoliciesAndThreads)
{
    CkksHarness h(CkksParams::unitTest());
    auto gks = h.makeGaloisKeys({1, 3});
    auto v = randomSlots(h.ctx->slots(), 13);
    for (size_t level : {size_t{1}, h.ctx->maxLevel()}) {
        auto ct = h.encryptSlots(v, level);
        for (int steps : {1, 3}) {
            Ciphertext ref;
            {
                ScopedStreamPolicy off(StreamPolicy::Off);
                ref = h.eval->rotate(ct, steps, gks);
            }
            for (StreamPolicy p : kStreamPolicies) {
                for (size_t threads : {size_t{1}, size_t{4}}) {
                    ScopedThreads st(threads);
                    ScopedStreamPolicy sp(p);
                    Ciphertext out = h.eval->rotate(ct, steps, gks);
                    EXPECT_TRUE(out.c0.equals(ref.c0) &&
                                out.c1.equals(ref.c1))
                        << "Rotate diverges: policy "
                        << streamPolicyName(p) << " level " << level
                        << " steps " << steps << " threads " << threads;
                }
            }
        }
    }
}

TEST_F(EvaluatorProps, RotateHoistedEmptyStepListReturnsEmpty)
{
    auto gks = h->makeGaloisKeys({1});
    auto ct = h->encryptSlots(randomSlots(h->ctx->slots(), 21), 3);
    auto out = h->eval->rotateHoisted(ct, {}, gks);
    EXPECT_TRUE(out.empty());
}

TEST_F(EvaluatorProps, RotateHoistedZeroStepsAreExactCopies)
{
    // All-zero lists must not pay the Decomp+ModUp (it is lazy) and must
    // return the input bit-for-bit; keys for other steps are not needed.
    GaloisKeys no_keys;
    auto ct = h->encryptSlots(randomSlots(h->ctx->slots(), 22), 3);
    auto out = h->eval->rotateHoisted(ct, {0, 0, 0}, no_keys);
    ASSERT_EQ(out.size(), 3u);
    for (const auto& c : out) {
        EXPECT_TRUE(c.c0.equals(ct.c0));
        EXPECT_TRUE(c.c1.equals(ct.c1));
        EXPECT_EQ(c.scale, ct.scale);
    }
}

TEST_F(EvaluatorProps, RotateHoistedDuplicateStepsAreIdentical)
{
    auto gks = h->makeGaloisKeys({1, 2});
    auto ct = h->encryptSlots(randomSlots(h->ctx->slots(), 23), 3);
    auto out = h->eval->rotateHoisted(ct, {1, 2, 1, 1}, gks);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_TRUE(out[0].c0.equals(out[2].c0));
    EXPECT_TRUE(out[0].c1.equals(out[2].c1));
    EXPECT_TRUE(out[0].c0.equals(out[3].c0));
    EXPECT_TRUE(out[0].c1.equals(out[3].c1));
    EXPECT_FALSE(out[0].c0.equals(out[1].c0));
}

TEST_F(EvaluatorProps, RotateHoistedMixedZeroAndNonzeroSteps)
{
    auto gks = h->makeGaloisKeys({1});
    auto v = randomSlots(h->ctx->slots(), 24);
    auto ct = h->encryptSlots(v, 3);
    auto out = h->eval->rotateHoisted(ct, {0, 1}, gks);
    ASSERT_EQ(out.size(), 2u);
    // Port 0 is the untouched input; port 1 is a real rotation.
    EXPECT_TRUE(out[0].c0.equals(ct.c0));
    auto rotated = h->decryptSlots(out[1]);
    auto expect = v;
    std::rotate(expect.begin(), expect.begin() + 1, expect.end());
    EXPECT_LT(maxError(rotated, expect), 1e-3);
}

} // namespace
} // namespace madfhe
