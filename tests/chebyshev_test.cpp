/**
 * @file
 * Chebyshev machinery tests: interpolation accuracy, division identity,
 * and homomorphic evaluation against the plain Clenshaw reference.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "boot/chebyshev.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;

TEST(ChebyshevInterpolate, ReproducesPolynomials)
{
    // f(x) = 4x^3 - 3x = T_3 exactly.
    auto c = chebyshevInterpolate(
        [](double x) { return 4 * x * x * x - 3 * x; }, 5);
    EXPECT_NEAR(c[3], 1.0, 1e-12);
    for (size_t k : {0u, 1u, 2u, 4u, 5u})
        EXPECT_NEAR(c[k], 0.0, 1e-12);
}

TEST(ChebyshevInterpolate, ApproximatesSmoothFunctions)
{
    auto f = [](double x) { return std::exp(x); };
    auto c = chebyshevInterpolate(f, 15);
    for (double x = -1.0; x <= 1.0; x += 0.05)
        EXPECT_NEAR(chebyshevEval(c, x), f(x), 1e-12);
}

TEST(ChebyshevInterpolate, SineWithLargeFrequency)
{
    // The bootstrapping target: sin(2*pi*K*x), K = 8 -> needs degree
    // beyond 2*pi*K ~ 50 to converge.
    const double a = 2.0 * std::acos(-1.0) * 8.0;
    auto f = [a](double x) { return std::sin(a * x); };
    auto c = chebyshevInterpolate(f, 71);
    double max_err = 0;
    for (double x = -1.0; x <= 1.0; x += 0.01)
        max_err = std::max(max_err, std::abs(chebyshevEval(c, x) - f(x)));
    EXPECT_LT(max_err, 1e-5);
}

TEST(ChebyshevEvalPlain, ClenshawMatchesDirectSum)
{
    std::vector<double> c = {0.5, -1.25, 0.75, 0.3, -0.1};
    for (double x = -1.0; x <= 1.0; x += 0.1) {
        // Direct: T_k via recurrence.
        double t0 = 1, t1 = x, direct = c[0] + c[1] * x;
        for (size_t k = 2; k < c.size(); ++k) {
            double t2 = 2 * x * t1 - t0;
            direct += c[k] * t2;
            t0 = t1;
            t1 = t2;
        }
        EXPECT_NEAR(chebyshevEval(c, x), direct, 1e-12);
    }
}

class HomomorphicCheb : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CkksParams p = CkksParams::unitTest();
        p.num_levels = 12; // room for depth-8 evaluation
        p.log_scale = 35;
        p.first_prime_bits = 45;
        h = std::make_unique<CkksHarness>(p);
    }
    std::unique_ptr<CkksHarness> h;
};

TEST_F(HomomorphicCheb, LowDegreeMatchesReference)
{
    auto c = chebyshevInterpolate(
        [](double x) { return 0.25 + x - 0.5 * x * x; }, 7);
    ChebyshevEvaluator cheb(h->ctx, c);

    auto xs = test::randomReals(h->ctx->slots(), 1);
    Plaintext pt = h->encoder->encodeReal(xs, h->ctx->scale(),
                                          h->ctx->maxLevel());
    Ciphertext ct = h->encryptor->encrypt(pt);
    Ciphertext out = cheb.evaluate(*h->eval, *h->encoder, ct, h->rlk);
    auto w = h->encoder->decode(h->decryptor->decrypt(out));
    for (size_t i = 0; i < xs.size(); ++i) {
        double expect = 0.25 + xs[i] - 0.5 * xs[i] * xs[i];
        EXPECT_NEAR(w[i].real(), expect, 5e-3) << "slot " << i;
    }
}

TEST_F(HomomorphicCheb, DegreeSeventeenUsesGiantSteps)
{
    auto f = [](double x) { return std::cos(3.0 * x); };
    auto c = chebyshevInterpolate(f, 17);
    ChebyshevEvaluator cheb(h->ctx, c);
    EXPECT_LE(cheb.depth(), 8u);

    auto xs = test::randomReals(h->ctx->slots(), 2);
    Plaintext pt = h->encoder->encodeReal(xs, h->ctx->scale(),
                                          h->ctx->maxLevel());
    Ciphertext ct = h->encryptor->encrypt(pt);
    Ciphertext out = cheb.evaluate(*h->eval, *h->encoder, ct, h->rlk);
    auto w = h->encoder->decode(h->decryptor->decrypt(out));
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(w[i].real(), f(xs[i]), 1e-2) << "slot " << i;
}

TEST_F(HomomorphicCheb, RejectsTrivialSeries)
{
    EXPECT_THROW(ChebyshevEvaluator(h->ctx, {1.0}), std::invalid_argument);
}

} // namespace
} // namespace madfhe
