/**
 * @file
 * PRNG and sampler tests: determinism (the seed-compression contract),
 * range/shape properties of each sampler.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "support/random.h"

namespace madfhe {
namespace {

TEST(Prng, DeterministicFromSeed)
{
    Prng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, SeedRoundTripReproducesStream)
{
    Prng a(99);
    Prng b(a.seed()); // reconstruct from the expanded seed
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Prng, UniformStaysInRange)
{
    Prng rng(5);
    for (u64 bound : {1ULL, 2ULL, 3ULL, 1000ULL, (1ULL << 50) + 7}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniform(bound), bound);
    }
}

TEST(Prng, UniformRealInUnitInterval)
{
    Prng rng(6);
    double sum = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Prng, AllZeroSeedRejected)
{
    Prng::Seed zero{0, 0, 0, 0};
    EXPECT_THROW(Prng p(zero), std::invalid_argument);
}

TEST(Sampler, TernaryValuesAndBalance)
{
    Sampler s(7);
    auto v = s.ternary(30000);
    int counts[3] = {0, 0, 0};
    for (i64 x : v) {
        ASSERT_GE(x, -1);
        ASSERT_LE(x, 1);
        counts[x + 1]++;
    }
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(Sampler, SparseTernaryHammingWeight)
{
    Sampler s(8);
    auto v = s.sparseTernary(4096, 64);
    size_t nonzero = 0;
    for (i64 x : v) {
        ASSERT_GE(x, -1);
        ASSERT_LE(x, 1);
        nonzero += (x != 0);
    }
    EXPECT_EQ(nonzero, 64u);
    EXPECT_THROW(s.sparseTernary(10, 11), std::invalid_argument);
}

TEST(Sampler, CenteredBinomialMoments)
{
    Sampler s(9);
    const int n = 20000;
    auto v = s.centeredBinomial(n, 21);
    double mean = 0, var = 0;
    for (i64 x : v)
        mean += x;
    mean /= n;
    for (i64 x : v)
        var += (x - mean) * (x - mean);
    var /= n;
    EXPECT_NEAR(mean, 0.0, 0.1);
    // Var of CB(k) = k/2 = 10.5, sigma ~ 3.24.
    EXPECT_NEAR(var, 10.5, 0.8);
}

TEST(Sampler, UniformModInRange)
{
    Sampler s(10);
    const u64 q = 998244353;
    auto v = s.uniformMod(10000, q);
    double mean = 0;
    for (u64 x : v) {
        ASSERT_LT(x, q);
        mean += static_cast<double>(x);
    }
    mean /= v.size();
    EXPECT_NEAR(mean / q, 0.5, 0.02);
}

} // namespace
} // namespace madfhe
