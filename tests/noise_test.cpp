/**
 * @file
 * Noise estimator tests: measured error must stay below the heuristic
 * bound through realistic circuits, and the bound must not be absurdly
 * loose (within ~2^20 of measured).
 */
#include <gtest/gtest.h>

#include "ckks/noise.h"
#include "test_util.h"

namespace madfhe {
namespace {

using test::CkksHarness;
using test::randomSlots;

class NoiseTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
        est = std::make_unique<NoiseEstimator>(h->ctx);
    }

    void
    checkBand(double measured, const NoiseBound& predicted,
              const char* what)
    {
        EXPECT_LE(measured, predicted.bound()) << what << " bound violated";
        EXPECT_GE(measured, predicted.bound() / std::exp2(22.0))
            << what << " bound uselessly loose (measured " << measured
            << " vs bound " << predicted.bound() << ")";
    }

    std::unique_ptr<CkksHarness> h;
    std::unique_ptr<NoiseEstimator> est;
};

TEST_F(NoiseTest, FreshEncryption)
{
    auto v = randomSlots(h->ctx->slots(), 1);
    Ciphertext ct = h->encryptSlots(v, 3);
    double measured = measureSlotError(*h->encoder, *h->decryptor, ct, v);
    checkBand(measured, est->fresh(), "fresh");
}

TEST_F(NoiseTest, AdditionAccumulates)
{
    auto a = randomSlots(h->ctx->slots(), 2);
    auto b = randomSlots(h->ctx->slots(), 3);
    Ciphertext ca = h->encryptSlots(a, 3);
    Ciphertext cb = h->encryptSlots(b, 3);
    Ciphertext sum = h->eval->add(ca, cb);

    std::vector<std::complex<double>> expect(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] + b[i];
    double measured =
        measureSlotError(*h->encoder, *h->decryptor, sum, expect);
    checkBand(measured, est->add(est->fresh(), est->fresh()), "add");
}

TEST_F(NoiseTest, MultiplicationChain)
{
    auto a = randomSlots(h->ctx->slots(), 4);
    auto b = randomSlots(h->ctx->slots(), 5);
    Ciphertext ca = h->encryptSlots(a, 4);
    Ciphertext cb = h->encryptSlots(b, 4);
    Ciphertext prod = h->eval->mul(ca, cb, h->rlk);

    std::vector<std::complex<double>> expect(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * b[i];
    double measured =
        measureSlotError(*h->encoder, *h->decryptor, prod, expect);
    NoiseBound predicted =
        est->mul(est->fresh(), est->fresh(), 1.5, 1.5, 4);
    checkBand(measured, predicted, "mul");

    // Second multiplication: noise grows, prediction still holds.
    Ciphertext sq = h->eval->square(prod, h->rlk);
    for (size_t i = 0; i < a.size(); ++i)
        expect[i] *= expect[i];
    double measured2 =
        measureSlotError(*h->encoder, *h->decryptor, sq, expect);
    NoiseBound predicted2 = est->mul(predicted, predicted, 2.25, 2.25, 3);
    checkBand(measured2, predicted2, "mul^2");
    EXPECT_GT(predicted2.log2_error, predicted.log2_error);
}

TEST_F(NoiseTest, RotationAddsKeySwitchFloor)
{
    auto a = randomSlots(h->ctx->slots(), 6);
    Ciphertext ca = h->encryptSlots(a, 3);
    auto gks = h->makeGaloisKeys({1});
    Ciphertext rot = h->eval->rotate(ca, 1, gks);

    const size_t slots = h->ctx->slots();
    std::vector<std::complex<double>> expect(slots);
    for (size_t i = 0; i < slots; ++i)
        expect[i] = a[(i + 1) % slots];
    double measured =
        measureSlotError(*h->encoder, *h->decryptor, rot, expect);
    NoiseBound predicted = est->rotate(est->fresh(), 3);
    checkBand(measured, predicted, "rotate");
    EXPECT_GT(predicted.log2_error, est->fresh().log2_error);
}

TEST_F(NoiseTest, PlainMultiplication)
{
    auto a = randomSlots(h->ctx->slots(), 7);
    auto b = randomSlots(h->ctx->slots(), 8);
    Ciphertext ca = h->encryptSlots(a, 3);
    Plaintext pb = h->encoder->encode(b, h->ctx->scale(), 3);
    Ciphertext prod = h->eval->mulPlainRescale(ca, pb);

    std::vector<std::complex<double>> expect(a.size());
    for (size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * b[i];
    double measured =
        measureSlotError(*h->encoder, *h->decryptor, prod, expect);
    checkBand(measured, est->mulPlain(est->fresh(), 1.5, 1.5), "mulPlain");
}

TEST_F(NoiseTest, EstimatesAreFiniteAndOrdered)
{
    NoiseBound f = est->fresh();
    EXPECT_TRUE(std::isfinite(f.log2_error));
    // Key-switch floor grows with beta (level), weakly.
    EXPECT_LE(est->keySwitchFloorLog2(1), est->keySwitchFloorLog2(
        h->ctx->maxLevel()) + 1e-9);
    // Adding two equal bounds costs exactly one bit.
    NoiseBound two = est->add(f, f);
    EXPECT_NEAR(two.log2_error, f.log2_error + 1.0, 1e-9);
}

} // namespace
} // namespace madfhe
