/**
 * @file
 * Scalar-vs-SIMD bit-exactness suite. The contract under test is
 * stronger than correctness: every vector kernel must leave the exact
 * canonical residues the scalar path leaves — byte-identical buffers —
 * across ring sizes, prime shapes on both sides of the FP-kernel domain
 * boundary (q < 2^50), non-lane-multiple tails, thread counts, and with
 * fault injection armed. Byte identity is what keeps memtrace replay,
 * seed-compressed ciphertext expansion and the determinism suite valid
 * under any backend.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "ckks/encryptor.h"
#include "ckks/serialize.h"
#include "rns/basis.h"
#include "rns/ntt.h"
#include "rns/primegen.h"
#include "rns/simd/simd.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "support/random.h"
#include "test_util.h"

namespace madfhe {
namespace {

std::vector<u64>
randomResidues(size_t n, const Modulus& q, u64 seed)
{
    Prng rng(seed);
    std::vector<u64> a(n);
    for (auto& v : a)
        v = rng.uniform(q.value());
    return a;
}

std::vector<simd::Backend>
vectorBackends()
{
    std::vector<simd::Backend> out;
    for (simd::Backend b : {simd::Backend::Avx2, simd::Backend::Avx512})
        if (simd::supported(b))
            out.push_back(b);
    return out;
}

/** RAII: restore the scalar backend even when an assertion bails out. */
struct ScopedBackend
{
    explicit ScopedBackend(simd::Backend b) { simd::setBackend(b); }
    ~ScopedBackend() { simd::setBackend(simd::Backend::Scalar); }
};

TEST(SimdDispatch, ScalarIsAlwaysAvailable)
{
    EXPECT_TRUE(simd::supported(simd::Backend::Scalar));
    ASSERT_NE(simd::scalarKernels(), nullptr);
    EXPECT_STREQ(simd::scalarKernels()->name, "scalar");
    EXPECT_EQ(simd::scalarKernels()->lanes, 1u);
    // The scalar table is the reference: it has no fused FP kernel.
    EXPECT_EQ(simd::scalarKernels()->fp_transform, nullptr);
}

/**
 * NTT/iNTT byte identity over ring sizes and prime widths spanning both
 * kernel regimes: < 2^50 engages the fused error-free FMA transform on
 * vector backends, >= 2^50 falls back to the integer Harvey path, and
 * 61 bits sits just under the q < 2^62 lazy-reduction ceiling.
 */
TEST(SimdNtt, BitExactAcrossSizesAndPrimeShapes)
{
    const auto backends = vectorBackends();
    if (backends.empty())
        GTEST_SKIP() << "no vector backend runnable on this host";

    for (size_t n : {size_t{8}, size_t{64}, size_t{1024}, size_t{8192}}) {
        for (unsigned bits : {28u, 40u, 45u, 49u, 50u, 54u, 60u, 61u}) {
            const Modulus q(generateNttPrimes(bits, n, 1)[0]);
            const NttTables tab(n, q);
            const auto coeff = randomResidues(n, q, 1000 + bits);

            auto fwd_ref = coeff;
            auto inv_ref = coeff;
            {
                ScopedBackend sb(simd::Backend::Scalar);
                tab.forward(fwd_ref.data());
                inv_ref = fwd_ref;
                tab.inverse(inv_ref.data());
            }
            ASSERT_EQ(inv_ref, coeff) << "scalar roundtrip broken";

            for (simd::Backend b : backends) {
                ScopedBackend sb(b);
                auto fwd = coeff;
                tab.forward(fwd.data());
                EXPECT_EQ(fwd, fwd_ref)
                    << simd::backendName(b) << " forward differs, n=" << n
                    << " bits=" << bits;
                auto inv = fwd_ref;
                tab.inverse(inv.data());
                EXPECT_EQ(inv, coeff)
                    << simd::backendName(b) << " inverse differs, n=" << n
                    << " bits=" << bits;
            }
        }
    }
}

/** forwardBatch must equal limb-by-limb forward() on every backend. */
TEST(SimdNtt, BatchMatchesPerLimb)
{
    const size_t n = 2048;
    const Modulus q(generateNttPrimes(45, n, 1)[0]);
    const NttTables tab(n, q);

    std::vector<std::vector<u64>> ref(3);
    for (size_t i = 0; i < ref.size(); ++i)
        ref[i] = randomResidues(n, q, 50 + i);
    auto batch = ref;

    ScopedBackend restore(simd::Backend::Scalar);
    for (simd::Backend b : vectorBackends()) {
        simd::setBackend(b);
        auto per_limb = ref;
        for (auto& limb : per_limb)
            tab.forward(limb.data());
        auto batched = batch;
        std::vector<u64*> ptrs;
        for (auto& limb : batched)
            ptrs.push_back(limb.data());
        tab.forwardBatch(ptrs.data(), ptrs.size());
        EXPECT_EQ(batched, per_limb) << simd::backendName(b);
    }
}

/**
 * Pointwise kernels compared table-against-table (no dispatch needed),
 * with n chosen off the lane grid so the scalar tail path runs too.
 */
TEST(SimdPointwise, BitExactIncludingTails)
{
    const size_t n = 1003; // not a multiple of 4 or 8: exercises tails
    for (unsigned bits : {30u, 45u, 61u}) {
        const Modulus q(generateNttPrimes(bits, 1 << 8, 1)[0]);
        const auto a0 = randomResidues(n, q, 7 * bits);
        const auto b0 = randomResidues(n, q, 9 * bits);
        const auto acc0 = randomResidues(n, q, 11 * bits);
        std::vector<u64> w(n), w_shoup(n);
        for (size_t i = 0; i < n; ++i) {
            w[i] = b0[i];
            w_shoup[i] = q.shoupPrecompute(w[i]);
        }
        const u64 ws = b0[0];
        const u64 ws_pre = q.shoupPrecompute(ws);

        const simd::Kernels* S = simd::scalarKernels();
        auto mul_ref = a0;
        S->mul_mod_vec(mul_ref.data(), b0.data(), n, q);
        auto fma_ref = acc0;
        S->add_mul_mod_vec(fma_ref.data(), a0.data(), b0.data(), n, q);
        auto shoup_ref = a0;
        S->mul_shoup_vec(shoup_ref.data(), w.data(), w_shoup.data(), n,
                         q.value());
        std::vector<u64> bcast_ref(n);
        S->mul_shoup_scalar(bcast_ref.data(), a0.data(), n, ws, ws_pre,
                            q.value());

        for (const simd::Kernels* V :
             {simd::avx2Kernels(), simd::avx512Kernels()}) {
            if (!V)
                continue;
            auto mul = a0;
            V->mul_mod_vec(mul.data(), b0.data(), n, q);
            EXPECT_EQ(mul, mul_ref) << V->name << " bits=" << bits;
            auto fma = acc0;
            V->add_mul_mod_vec(fma.data(), a0.data(), b0.data(), n, q);
            EXPECT_EQ(fma, fma_ref) << V->name << " bits=" << bits;
            auto shoup = a0;
            V->mul_shoup_vec(shoup.data(), w.data(), w_shoup.data(), n,
                             q.value());
            EXPECT_EQ(shoup, shoup_ref) << V->name << " bits=" << bits;
            std::vector<u64> bcast(n);
            V->mul_shoup_scalar(bcast.data(), a0.data(), n, ws, ws_pre,
                                q.value());
            EXPECT_EQ(bcast, bcast_ref) << V->name << " bits=" << bits;
        }
    }
}

/** Fast basis extension must be byte-identical under every backend. */
TEST(SimdBasis, ConvertBitExactAcrossBackends)
{
    const size_t n = 256;
    auto primes_from = generateNttPrimes(45, n, 4);
    auto primes_to = generateNttPrimes(46, n, 2, primes_from);
    std::vector<Modulus> from_m, to_m;
    for (u64 p : primes_from)
        from_m.emplace_back(p);
    for (u64 p : primes_to)
        to_m.emplace_back(p);
    RnsBasis from(std::move(from_m)), to(std::move(to_m));
    BasisConverter conv(from, to);

    std::vector<std::vector<u64>> in(from.size());
    std::vector<const u64*> in_ptrs;
    for (size_t i = 0; i < from.size(); ++i) {
        in[i] = randomResidues(n, from[i], 70 + i);
        in_ptrs.push_back(in[i].data());
    }

    auto run = [&](simd::Backend b) {
        ScopedBackend sb(b);
        std::vector<std::vector<u64>> out(to.size(), std::vector<u64>(n));
        std::vector<u64*> out_ptrs;
        for (auto& limb : out)
            out_ptrs.push_back(limb.data());
        conv.convert(in_ptrs, n, out_ptrs);
        return out;
    };

    const auto ref = run(simd::Backend::Scalar);
    for (simd::Backend b : vectorBackends())
        EXPECT_EQ(run(b), ref) << simd::backendName(b);
}

/**
 * The fused FP transform must refuse inputs outside its proven domain
 * (q >= 2^50, or rings too small to fill a vector) so the caller falls
 * back to the integer path instead of silently losing exactness.
 */
TEST(SimdFp, TransformRejectsOutOfDomainInputs)
{
    for (const simd::Kernels* V :
         {simd::avx2Kernels(), simd::avx512Kernels()}) {
        if (!V)
            continue;
        ASSERT_NE(V->fp_transform, nullptr) << V->name;
        u64 buf[16] = {0};
        // 54-bit modulus: the 2^53 error-free multiply budget is gone.
        EXPECT_FALSE(V->fp_transform(buf, 16, nullptr, nullptr, nullptr,
                                     (1ULL << 54) + 1));
        // Ring smaller than two vectors: no room for the lane shuffles.
        EXPECT_FALSE(V->fp_transform(buf, V->lanes, nullptr, nullptr,
                                     nullptr, (1ULL << 45) + 1));
    }
}

/**
 * The rns.ntt_fwd fault site must keep firing when the fused SIMD path
 * handles the transform — the guard hooks the batch entry points, not
 * the scalar stage loop, so arming a fault under MADFHE_SIMD=auto (or
 * any vector backend) still lands a bit flip in the produced limb.
 */
TEST(SimdFault, NttInjectionFiresUnderVectorBackends)
{
    const size_t n = 1024;
    const Modulus q(generateNttPrimes(45, n, 1)[0]);
    const NttTables tab(n, q);
    const auto coeff = randomResidues(n, q, 99);

    auto clean = coeff;
    {
        ScopedBackend sb(simd::Backend::Scalar);
        tab.forward(clean.data());
    }

    std::vector<simd::Backend> all = {simd::Backend::Scalar};
    for (simd::Backend b : vectorBackends())
        all.push_back(b);
    for (simd::Backend b : all) {
        ScopedBackend sb(b);
        // arm() zeroes the per-arm fired counter, so == 1 after one
        // forward proves this arming (not a previous one) fired.
        faultinject::arm({"rns.ntt_fwd", 0, faultinject::Kind::BitFlip, 3});
        auto buf = coeff;
        tab.forward(buf.data());
        faultinject::disarm();
        EXPECT_EQ(faultinject::firedCount(), 1u) << simd::backendName(b);
        EXPECT_NE(buf, clean)
            << simd::backendName(b) << ": armed bit flip left no trace";
    }
}

/**
 * Satellite: seed-compressed ciphertext expansion. The c1 component is
 * regenerated from a 32-byte PRNG seed on the receiving side, so both
 * halves of the wire must derive bit-identical polynomials no matter
 * which SIMD backend or thread count they run — this test rebuilds the
 * whole stack per configuration (all sampling is seeded from
 * params.seed) and compares every limb byte-for-byte.
 */
TEST(SimdSeeded, CiphertextExpansionBitExactAcrossBackendsAndThreads)
{
    CkksParams params;
    params.log_n = 10;
    params.log_scale = 30;
    params.first_prime_bits = 40;
    params.num_levels = 3;

    struct Snapshot
    {
        std::vector<std::vector<u64>> c0, c1;
        double scale;
    };
    auto run = [&](simd::Backend b, size_t threads) {
        ScopedBackend sb(b);
        ThreadPool::setGlobalThreads(threads);
        auto ctx = std::make_shared<CkksContext>(params);
        CkksEncoder encoder(ctx);
        KeyGenerator keygen(ctx);
        SecretKey sk = keygen.secretKey();
        Encryptor enc(ctx, keygen.publicKey(sk));
        auto slots = test::randomSlots(ctx->slots(), 21);
        Plaintext pt = encoder.encode(slots, ctx->scale(), ctx->maxLevel());
        SeededCiphertext sct = enc.encryptSymmetricSeeded(pt, sk);
        Ciphertext ct = expandSeeded(*ctx, sct);
        Snapshot s;
        s.scale = ct.scale;
        for (size_t i = 0; i < ct.c0.numLimbs(); ++i) {
            s.c0.emplace_back(ct.c0.limb(i), ct.c0.limb(i) + ct.c0.degree());
            s.c1.emplace_back(ct.c1.limb(i), ct.c1.limb(i) + ct.c1.degree());
        }
        ThreadPool::setGlobalThreads(ThreadPool::defaultThreads());
        return s;
    };

    const Snapshot ref = run(simd::Backend::Scalar, 1);
    std::vector<simd::Backend> all = {simd::Backend::Scalar};
    for (simd::Backend b : vectorBackends())
        all.push_back(b);
    for (simd::Backend b : all) {
        for (size_t threads : {size_t{1}, size_t{4}}) {
            if (b == simd::Backend::Scalar && threads == 1)
                continue;
            const Snapshot got = run(b, threads);
            EXPECT_EQ(got.c1, ref.c1)
                << simd::backendName(b) << " threads=" << threads
                << ": reconstructed c1 not byte-identical";
            EXPECT_EQ(got.c0, ref.c0)
                << simd::backendName(b) << " threads=" << threads;
            EXPECT_EQ(got.scale, ref.scale);
        }
    }
}

} // namespace
} // namespace madfhe
