/**
 * @file
 * Evaluation-graph IR tests: shape inference mirrors the Evaluator's
 * level/scale state machine (same UserError messages), the pass pipeline
 * places drops/rescales and hoists/fuses correctly, and — the load-bearing
 * invariant — graph execution is byte-identical to the imperative
 * schedule on the real backend at every stream policy and thread count,
 * and value-identical on the virtual backend.
 */
#include <gtest/gtest.h>

#include "apps/lr.h"
#include "apps/mlp.h"
#include "ckks/backend.h"
#include "ckks/stream.h"
#include "graph/exec.h"
#include "graph/passes.h"
#include "support/threadpool.h"
#include "test_util.h"
#include "virtual/backend.h"

namespace madfhe {
namespace {

using namespace apps;
using test::CkksHarness;
using test::randomSlots;

bool
sameBytes(const Ciphertext& a, const Ciphertext& b)
{
    return a.c0.equals(b.c0) && a.c1.equals(b.c1) && a.scale == b.scale;
}

/** Restores the previous global pool size on scope exit. */
struct ScopedThreads
{
    explicit ScopedThreads(size_t n) { ThreadPool::setGlobalThreads(n); }
    ~ScopedThreads() { ThreadPool::setGlobalThreads(0); }
};

// ---------------------------------------------------------------------------
// Shape inference
// ---------------------------------------------------------------------------

class GraphShapes : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    }
    std::shared_ptr<CkksContext> ctx;
};

TEST_F(GraphShapes, MulChainTracksEvaluatorLevelAndScale)
{
    const double s = ctx->scale();
    graph::GraphBuilder b;
    auto a = b.input(3, s);
    auto c = b.input(3, s);
    auto m = b.mul(a, c);
    b.output(m);
    graph::Graph g = b.build();
    graph::runPasses(g, *ctx); // resolves the rescale into merged ModDown

    const graph::ValueMeta& meta = g.metaOf(g.outputs()[0]);
    EXPECT_EQ(meta.level, 2u);
    // Merged Mult: scale = sa * sb / q_{level-1}, the Evaluator formula.
    EXPECT_DOUBLE_EQ(meta.scale, s * s / ctx->qValue(2));
    EXPECT_EQ(meta.slots, ctx->slots());
}

TEST_F(GraphShapes, MirrorsEvaluatorErrorsWithoutAlignment)
{
    const double s = ctx->scale();
    {
        graph::GraphBuilder b;
        auto m = b.add(b.input(3, s), b.input(2, s));
        b.output(m);
        graph::Graph g = b.build();
        graph::PassOptions po;
        po.align_levels = false;
        try {
            graph::runPasses(g, *ctx, po);
            FAIL() << "expected UserError";
        } catch (const UserError& e) {
            EXPECT_NE(std::string(e.what()).find("ciphertext levels differ"),
                      std::string::npos);
        }
    }
    {
        graph::GraphBuilder b;
        b.output(b.mul(b.input(1, s), b.input(1, s)));
        graph::Graph g = b.build();
        try {
            graph::runPasses(g, *ctx);
            FAIL() << "expected UserError";
        } catch (const UserError& e) {
            EXPECT_NE(std::string(e.what())
                          .find("mul needs a level to rescale into"),
                      std::string::npos);
        }
    }
    {
        graph::GraphBuilder b;
        b.output(b.mulScalar(b.input(1, s), 0.5));
        graph::Graph g = b.build();
        try {
            graph::runPasses(g, *ctx);
            FAIL() << "expected UserError";
        } catch (const UserError& e) {
            EXPECT_NE(std::string(e.what())
                          .find("no level left to rescale into"),
                      std::string::npos);
        }
    }
}

TEST_F(GraphShapes, MetaBeforeInferShapesThrows)
{
    graph::GraphBuilder b;
    b.output(b.input(2, ctx->scale()));
    graph::Graph g = b.build();
    EXPECT_THROW((void)g.metaOf(g.outputs()[0]), InvariantError);
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

TEST_F(GraphShapes, AlignInsertsDropsAndUnmergedPlacesRescales)
{
    const double s = ctx->scale();
    graph::GraphBuilder b;
    auto a = b.input(3, s);
    auto c = b.input(3, s);
    auto m = b.mul(a, c);    // level 2 after rescale
    auto sum = b.add(m, a);  // operand levels 2 vs 3: needs a drop
    b.output(sum);
    graph::Graph g = b.build();

    graph::PassOptions po;
    po.merge_moddown = false;
    const graph::PassStats st = graph::runPasses(g, *ctx, po);
    EXPECT_EQ(st.drops_inserted, 1u);
    EXPECT_EQ(st.rescales_placed, 1u);
    EXPECT_EQ(st.moddowns_merged, 0u);
    // The drop lowered `a` to the product's level; add type-checks.
    EXPECT_EQ(g.metaOf(g.outputs()[0]).level, 2u);
}

TEST_F(GraphShapes, HoistCollapsesSameSourceRotationsOnly)
{
    const double s = ctx->scale();
    graph::GraphBuilder b;
    auto a = b.input(3, s);
    auto r1 = b.rotate(a, 1);
    auto r2 = b.rotate(a, 2);
    auto r3 = b.rotate(a, 3);
    auto other = b.rotate(r1, 1); // different source: stays a Rotate
    b.outputs({r1, r2, r3, other});
    graph::Graph g = b.build();
    const graph::PassStats st = graph::runPasses(g, *ctx);
    EXPECT_EQ(st.hoist_groups, 1u);
    EXPECT_EQ(st.rotations_hoisted, 3u);

    size_t hoisted = 0, plain = 0;
    for (const auto& n : g.nodes()) {
        hoisted += (n.kind == graph::OpKind::HoistedRotation);
        plain += (n.kind == graph::OpKind::Rotate);
    }
    EXPECT_EQ(hoisted, 1u);
    EXPECT_EQ(plain, 1u);
}

TEST_F(GraphShapes, PruneRemovesDeadNodesButKeepsInputs)
{
    const double s = ctx->scale();
    graph::GraphBuilder b;
    auto a = b.input(3, s);
    auto unused_in = b.input(3, s);
    auto dead = b.mulScalar(a, 2.0); // never consumed
    (void)dead;
    (void)unused_in;
    b.output(b.addScalar(a, 1.0));
    graph::Graph g = b.build();
    const graph::PassStats st = graph::runPasses(g, *ctx);
    EXPECT_GE(st.nodes_pruned, 1u);
    // Inputs survive pruning: run() binding is positional.
    EXPECT_EQ(g.numInputs(), 2u);
}

// ---------------------------------------------------------------------------
// Execution: byte identity against the imperative Evaluator (real backend)
// ---------------------------------------------------------------------------

class GraphExec : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        h = std::make_unique<CkksHarness>(CkksParams::unitTest());
        backend = std::make_unique<RealBackend>(h->ctx);
        gks = h->makeGaloisKeys({1, 2, 3});
    }

    /** The micro schedule: d = (a*b + rot(c,1)) * 0.5 + 1.0, minus c. */
    Ciphertext
    imperative(const Ciphertext& a, const Ciphertext& b, const Ciphertext& c)
    {
        const Evaluator& e = *h->eval;
        Ciphertext prod = e.mul(a, b, h->rlk);
        Ciphertext sum = e.add(prod, e.dropToLevel(e.rotate(c, 1, gks),
                                                   prod.level()));
        Ciphertext scaled = e.mulScalarRescale(sum, 0.5);
        return e.sub(e.addScalar(scaled, 1.0, *h->encoder),
                     e.dropToLevel(c, scaled.level()));
    }

    graph::Graph
    buildMicro(size_t level)
    {
        graph::GraphBuilder b;
        auto a = b.input(level, h->ctx->scale());
        auto bb = b.input(level, h->ctx->scale());
        auto c = b.input(level, h->ctx->scale());
        auto sum = b.add(b.mul(a, bb), b.rotate(c, 1));
        b.output(b.sub(b.addScalar(b.mulScalar(sum, 0.5), 1.0), c));
        graph::Graph g = b.build();
        graph::runPasses(g, *h->ctx);
        return g;
    }

    std::unique_ptr<CkksHarness> h;
    std::unique_ptr<RealBackend> backend;
    GaloisKeys gks;
};

TEST_F(GraphExec, MicroScheduleByteIdenticalAcrossPoliciesAndThreads)
{
    const size_t L = 3;
    auto ca = h->encryptSlots(randomSlots(h->ctx->slots(), 1), L);
    auto cb = h->encryptSlots(randomSlots(h->ctx->slots(), 2), L);
    auto cc = h->encryptSlots(randomSlots(h->ctx->slots(), 3), L);
    graph::Graph g = buildMicro(L);

    for (StreamPolicy policy : kStreamPolicies) {
        ScopedStreamPolicy sp(policy);
        Ciphertext want = imperative(ca, cb, cc);
        for (size_t threads : {size_t(1), size_t(4)}) {
            ScopedThreads st(threads);
            graph::GraphExecutor exec(*backend, &h->rlk, &gks);
            auto got = exec.run(g, {ca, cb, cc});
            ASSERT_EQ(got.size(), 1u);
            EXPECT_TRUE(sameBytes(got[0], want))
                << "policy " << streamPolicyName(policy) << " threads "
                << threads;
        }
    }
}

TEST_F(GraphExec, UnmergedPipelineMatchesMulNoRescalePlusRescale)
{
    const size_t L = 3;
    auto ca = h->encryptSlots(randomSlots(h->ctx->slots(), 4), L);
    auto cb = h->encryptSlots(randomSlots(h->ctx->slots(), 5), L);

    graph::GraphBuilder b;
    b.output(b.mul(b.input(L, h->ctx->scale()), b.input(L, h->ctx->scale())));
    graph::Graph g = b.build();
    graph::PassOptions po;
    po.merge_moddown = false;
    graph::runPasses(g, *h->ctx, po);

    graph::GraphExecutor exec(*backend, &h->rlk);
    auto got = exec.run(g, {ca, cb});
    Ciphertext want = h->eval->rescale(h->eval->mulNoRescale(ca, cb, h->rlk));
    EXPECT_TRUE(sameBytes(got.at(0), want));
}

TEST_F(GraphExec, HoistedGroupMatchesRotateHoistedAndApproximatesRotate)
{
    const size_t L = 3;
    auto cc = h->encryptSlots(randomSlots(h->ctx->slots(), 6), L);
    const std::vector<int> steps = {1, 2, 3};

    graph::GraphBuilder b;
    auto in = b.input(L, h->ctx->scale());
    std::vector<graph::NodeRef> outs;
    for (int s : steps)
        outs.push_back(b.rotate(in, s));
    b.outputs(outs);
    graph::Graph g = b.build();
    const graph::PassStats st = graph::runPasses(g, *h->ctx);
    ASSERT_EQ(st.rotations_hoisted, steps.size());

    graph::GraphExecutor exec(*backend, &h->rlk, &gks);
    auto got = exec.run(g, {cc});
    ASSERT_EQ(got.size(), steps.size());

    // The hoisted path is its own byte oracle (hoisting changes where the
    // approximate basis conversion happens, so it is NOT byte-identical
    // to per-step rotate)...
    auto want = h->eval->rotateHoisted(cc, steps, gks);
    for (size_t i = 0; i < steps.size(); ++i)
        EXPECT_TRUE(sameBytes(got[i], want[i])) << "step " << steps[i];

    // ...but it must decrypt to the same rotation.
    auto plain = randomSlots(h->ctx->slots(), 6);
    for (size_t i = 0; i < steps.size(); ++i) {
        auto slots = h->decryptSlots(got[i]);
        double err = 0;
        for (size_t k = 0; k < slots.size(); ++k) {
            size_t src = (k + static_cast<size_t>(steps[i])) % slots.size();
            err = std::max(err, std::abs(slots[k] - plain[src]));
        }
        EXPECT_LT(err, 1e-3) << "step " << steps[i];
    }
}

TEST_F(GraphExec, ExecutorValidatesGraphAndKeys)
{
    const size_t L = 3;
    auto ca = h->encryptSlots(randomSlots(h->ctx->slots(), 7), L);
    auto cb = h->encryptSlots(randomSlots(h->ctx->slots(), 8), L);

    // Unresolved rescale (passes never ran).
    {
        graph::GraphBuilder b;
        b.output(b.mul(b.input(L, h->ctx->scale()),
                       b.input(L, h->ctx->scale())));
        graph::Graph g = b.build();
        graph::inferShapes(g, *h->ctx);
        graph::GraphExecutor exec(*backend, &h->rlk);
        EXPECT_THROW((void)exec.run(g, {ca, cb}), UserError);
    }
    // Wrong input count.
    {
        graph::GraphBuilder b;
        b.output(b.add(b.input(L, h->ctx->scale()),
                       b.input(L, h->ctx->scale())));
        graph::Graph g = b.build();
        graph::runPasses(g, *h->ctx);
        graph::GraphExecutor exec(*backend);
        EXPECT_THROW((void)exec.run(g, {ca}), UserError);
    }
    // Missing relinearization / Galois keys.
    {
        graph::GraphBuilder b;
        b.output(b.mul(b.input(L, h->ctx->scale()),
                       b.input(L, h->ctx->scale())));
        graph::Graph g = b.build();
        graph::runPasses(g, *h->ctx);
        graph::GraphExecutor exec(*backend);
        EXPECT_THROW((void)exec.run(g, {ca, cb}), UserError);
    }
    {
        graph::GraphBuilder b;
        b.output(b.rotate(b.input(L, h->ctx->scale()), 1));
        graph::Graph g = b.build();
        graph::runPasses(g, *h->ctx);
        graph::GraphExecutor exec(*backend, &h->rlk);
        EXPECT_THROW((void)exec.run(g, {ca}), UserError);
    }
}

// ---------------------------------------------------------------------------
// Fused PtMatVecMult
// ---------------------------------------------------------------------------

TEST(GraphMatVec, FusedGraphMatVecByteIdenticalToApply)
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 34;
    p.first_prime_bits = 46;
    p.num_levels = 5;
    p.dnum = 2;
    CkksHarness h(p);

    std::map<int, std::vector<std::complex<double>>> diags;
    for (int d = 0; d < 6; ++d)
        diags[d] = randomSlots(h.ctx->slots(), 30 + static_cast<u64>(d));
    LinearTransform lt(h.ctx, std::move(diags), h.ctx->scale());
    GaloisKeys gks = h.makeGaloisKeys(lt.requiredRotations());
    RealBackend backend(h.ctx);

    auto ct = h.encryptSlots(randomSlots(h.ctx->slots(), 9),
                             h.ctx->maxLevel());

    graph::GraphBuilder b;
    b.output(b.matVec(b.input(h.ctx->maxLevel(), h.ctx->scale()), &lt));
    graph::Graph g = b.build();
    const graph::PassStats st = graph::runPasses(g, *h.ctx);
    EXPECT_EQ(st.matvecs_fused, 1u);

    for (StreamPolicy policy : kStreamPolicies) {
        ScopedStreamPolicy sp(policy);
        Ciphertext want = lt.apply(*h.eval, *h.encoder, ct, gks);
        graph::GraphExecutor exec(backend, &h.rlk, &gks);
        auto got = exec.run(g, {ct});
        EXPECT_TRUE(sameBytes(got.at(0), want))
            << "policy " << streamPolicyName(policy);
    }
}

TEST(GraphMatVec, FusionPassRespectsTransformOptions)
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 34;
    p.first_prime_bits = 46;
    p.num_levels = 5;
    p.dnum = 2;
    auto ctx = std::make_shared<CkksContext>(p);

    MatVecOptions naive;
    naive.hoist_moddown = false;
    std::map<int, std::vector<std::complex<double>>> diags;
    for (int d = 0; d < 4; ++d)
        diags[d] = randomSlots(ctx->slots(), 50 + static_cast<u64>(d));
    LinearTransform lt(ctx, std::move(diags), ctx->scale(), naive);

    graph::GraphBuilder b;
    b.output(b.matVec(b.input(ctx->maxLevel(), ctx->scale()), &lt));
    graph::Graph g = b.build();
    const graph::PassStats st = graph::runPasses(g, *ctx);
    // Unhoisted transforms cannot take the fused path.
    EXPECT_EQ(st.matvecs_fused, 0u);
}

// ---------------------------------------------------------------------------
// App schedules through the IR
// ---------------------------------------------------------------------------

CkksParams
lrParams()
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 33;
    p.first_prime_bits = 45;
    p.num_levels = 14;
    p.dnum = 3;
    return p;
}

TEST(GraphApps, LrTrainGraphByteIdenticalToImperative)
{
    auto ctx = std::make_shared<CkksContext>(lrParams());
    LrConfig cfg;
    cfg.features = 2;
    cfg.iterations = 2;
    EncryptedLrTrainer trainer(ctx, cfg);

    CkksHarness h(lrParams());
    GaloisKeys gks = h.makeGaloisKeys(trainer.requiredRotations());
    RealBackend backend(h.ctx);

    auto data = LrDataset::twoGaussians(h.ctx->slots(), cfg.features, 7);
    auto features =
        trainer.encryptFeatures(*h.encoder, *h.encryptor, data);
    auto labels = trainer.encryptLabels(*h.encoder, *h.encryptor, data);
    auto w0 = trainer.initialWeights(*h.encoder, *h.encryptor);

    auto want = trainer.train(*h.eval, *h.encoder, w0, features, labels,
                              h.rlk, gks);

    graph::PassStats stats;
    for (size_t threads : {size_t(1), size_t(4)}) {
        ScopedThreads st(threads);
        auto got = trainer.trainGraph(backend, w0, features, labels, h.rlk,
                                      gks, {}, &stats);
        ASSERT_EQ(got.size(), want.size());
        for (size_t j = 0; j < got.size(); ++j)
            EXPECT_TRUE(sameBytes(got[j], want[j]))
                << "weight " << j << " threads " << threads;
    }
    // The align pass reproduced the imperative schedule's manual drops.
    EXPECT_GT(stats.drops_inserted, 0u);
    EXPECT_GT(stats.moddowns_merged, 0u);
    // LR's reduction rotations chain (each has a distinct source), so
    // the hoist pass must not fire — byte identity depends on it.
    EXPECT_EQ(stats.rotations_hoisted, 0u);
}

TEST(GraphApps, MlpInferGraphByteIdenticalToImperative)
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 34;
    p.first_prime_bits = 46;
    p.num_levels = 5;
    p.dnum = 2;
    CkksHarness h(p);
    const size_t dim = 4;

    Prng rng(11);
    auto randMat = [&](size_t rows) {
        std::vector<std::vector<double>> m(rows, std::vector<double>(dim));
        for (auto& row : m)
            for (auto& v : row)
                v = (2 * rng.uniformReal() - 1) * 0.5;
        return m;
    };
    EncryptedMlp mlp(h.ctx, {randMat(dim), randMat(2)}, dim);
    GaloisKeys gks = h.makeGaloisKeys(mlp.requiredRotations());
    RealBackend backend(h.ctx);

    auto ct = h.encryptSlots(randomSlots(h.ctx->slots(), 13),
                             h.ctx->maxLevel());
    Ciphertext want = mlp.infer(*h.eval, *h.encoder, ct, gks, h.rlk);

    graph::PassStats stats;
    for (size_t threads : {size_t(1), size_t(4)}) {
        ScopedThreads st(threads);
        Ciphertext got =
            mlp.inferGraph(backend, ct, gks, h.rlk, {}, &stats);
        EXPECT_TRUE(sameBytes(got, want)) << "threads " << threads;
    }
    EXPECT_EQ(stats.matvecs_fused, mlp.numLayers());
}

// ---------------------------------------------------------------------------
// Virtual backend
// ---------------------------------------------------------------------------

TEST(GraphVirtual, LrTrainGraphMatchesPlainReference)
{
    auto ctx = std::make_shared<CkksContext>(lrParams());
    LrConfig cfg;
    cfg.features = 2;
    cfg.iterations = 2;
    EncryptedLrTrainer trainer(ctx, cfg);

    vbackend::VirtualBackend backend(ctx, {});
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);
    SwitchingKey rlk = keygen.relinKey(sk);
    GaloisKeys gks = keygen.galoisKeys(sk, trainer.requiredRotations());

    auto data = LrDataset::twoGaussians(ctx->slots(), cfg.features, 7);
    std::vector<Ciphertext> features;
    for (const auto& column : data.features)
        features.push_back(backend.encryptReal(pk, column, 1));
    Ciphertext labels = backend.encryptReal(pk, data.labels, 2);
    std::vector<Ciphertext> w0;
    for (size_t j = 0; j < cfg.features; ++j)
        w0.push_back(backend.encryptReal(
            pk, std::vector<double>(ctx->slots(), 0.0), 3 + j));

    auto got = trainer.trainGraph(backend, w0, features, labels, rlk, gks);
    ASSERT_EQ(got.size(), cfg.features);

    // The virtual backend computes the schedule in exact slot arithmetic,
    // so the trained weights match the plaintext reference trainer.
    LrModel ref = trainer.trainPlain(data);
    for (size_t j = 0; j < cfg.features; ++j) {
        auto vals = backend.decryptReal(sk, got[j]);
        EXPECT_NEAR(vals.at(0), ref.weights[j], 1e-9) << "weight " << j;
    }
}

TEST(GraphVirtual, BootstrapNodeServedByVirtualRejectedByReal)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::loadTest());
    vbackend::VirtualBackend backend(ctx, {});
    KeyGenerator keygen(ctx);
    SecretKey sk = keygen.secretKey();
    PublicKey pk = keygen.publicKey(sk);

    graph::GraphBuilder b;
    // Drop to the bottom, then refresh: the virtual Bootstrap restores
    // max level.
    b.output(b.bootstrap(b.dropToLevel(b.input(ctx->maxLevel(),
                                               ctx->scale()),
                                       1)));
    graph::Graph g = b.build();
    graph::runPasses(g, *ctx);

    std::vector<double> vals(ctx->slots(), 0.25);
    Ciphertext ct = backend.encryptReal(pk, vals, 4);
    graph::GraphExecutor exec(backend);
    auto out = exec.run(g, {ct});
    auto round = backend.decryptReal(sk, out.at(0));
    EXPECT_NEAR(round.at(0), 0.25, 1e-6);

    CkksHarness h(CkksParams::unitTest());
    RealBackend real(h.ctx);
    graph::GraphBuilder b2;
    b2.output(b2.bootstrap(b2.dropToLevel(
        b2.input(h.ctx->maxLevel(), h.ctx->scale()), 1)));
    graph::Graph g2 = b2.build();
    graph::runPasses(g2, *h.ctx);
    auto rct = h.encryptSlots(randomSlots(h.ctx->slots(), 17),
                              h.ctx->maxLevel());
    graph::GraphExecutor rexec(real);
    EXPECT_THROW((void)rexec.run(g2, {rct}), UserError);
}

} // namespace
} // namespace madfhe
