/**
 * @file
 * Parameter and context tests: validation rejects inconsistent sets,
 * derived quantities are right, the modulus chain has the shape the
 * scheme expects, and the cached converters agree with fresh ones.
 */
#include <gtest/gtest.h>

#include "ckks/context.h"
#include "rns/primegen.h"

namespace madfhe {
namespace {

TEST(CkksParamsTest, PresetsValidate)
{
    EXPECT_NO_THROW(CkksParams::unitTest().validate());
    EXPECT_NO_THROW(CkksParams::medium().validate());
    EXPECT_NO_THROW(CkksParams::bootstrapToy().validate());
}

TEST(CkksParamsTest, RejectsInconsistentSets)
{
    CkksParams p = CkksParams::unitTest();
    p.log_n = 2;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = CkksParams::unitTest();
    p.log_scale = 10;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = CkksParams::unitTest();
    p.first_prime_bits = p.log_scale; // must be strictly wider
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = CkksParams::unitTest();
    p.num_levels = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);

    p = CkksParams::unitTest();
    p.dnum = p.chainLength() + 1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(CkksParamsTest, DerivedQuantities)
{
    CkksParams p = CkksParams::unitTest(); // log_n=10, 4 levels, dnum=2
    EXPECT_EQ(p.n(), 1024u);
    EXPECT_EQ(p.slots(), 512u);
    EXPECT_EQ(p.chainLength(), 5u);
    EXPECT_EQ(p.alpha(), 3u); // ceil(5/2)
    EXPECT_DOUBLE_EQ(p.scale(), static_cast<double>(1ULL << 35));
}

TEST(CkksContextTest, ChainShape)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    // q_0 is the wide base prime; scale primes hug 2^log_scale.
    EXPECT_GT(ctx->qValue(0), 1ULL << 44);
    for (size_t i = 1; i < ctx->maxLevel(); ++i) {
        double ratio = static_cast<double>(ctx->qValue(i)) /
                       ctx->params().scale();
        EXPECT_GT(ratio, 0.999) << "limb " << i;
        EXPECT_LT(ratio, 1.001) << "limb " << i;
    }
    // All chain moduli are distinct NTT primes.
    auto ring = ctx->ring();
    for (size_t i = 0; i < ring->numModuli(); ++i) {
        EXPECT_TRUE(isPrime(ring->modulus(i).value()));
        EXPECT_EQ(ring->modulus(i).value() % (2 * ring->degree()), 1u);
        for (size_t j = i + 1; j < ring->numModuli(); ++j)
            EXPECT_NE(ring->modulus(i).value(), ring->modulus(j).value());
    }
}

TEST(CkksContextTest, DigitGeometry)
{
    CkksParams p = CkksParams::unitTest(); // 5 limbs, dnum=2, alpha=3
    auto ctx = std::make_shared<CkksContext>(p);
    EXPECT_EQ(ctx->numDigits(5), 2u);
    EXPECT_EQ(ctx->numDigits(3), 1u);
    EXPECT_EQ(ctx->digitStart(1), 3u);
    EXPECT_EQ(ctx->digitSize(0, 5), 3u);
    EXPECT_EQ(ctx->digitSize(1, 5), 2u); // truncated last digit
    EXPECT_THROW(ctx->digitSize(1, 3), std::logic_error);
}

TEST(CkksContextTest, RaisedIndicesLayout)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    auto idx = ctx->raisedIndices(2);
    ASSERT_EQ(idx.size(), 2 + ctx->ring()->numP());
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 1u);
    // P limbs follow the Q prefix and sit after the full Q chain.
    for (size_t i = 2; i < idx.size(); ++i)
        EXPECT_GE(idx[i], ctx->maxLevel());
}

TEST(CkksContextTest, ScalarTablesAreConsistent)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    auto ring = ctx->ring();
    for (size_t i = 0; i < ctx->maxLevel(); ++i) {
        const Modulus& qi = ring->modulus(i);
        // P * P^{-1} = 1 mod q_i.
        EXPECT_EQ(qi.mul(ctx->pModQ(i), ctx->pInvModQ(i)), 1u);
    }
    for (size_t lvl = 2; lvl <= ctx->maxLevel(); ++lvl) {
        u64 q_top = ctx->qValue(lvl - 1);
        for (size_t i = 0; i + 1 < lvl; ++i) {
            const Modulus& qi = ring->modulus(i);
            EXPECT_EQ(qi.mul(ctx->rescaleInv(lvl, i), qi.reduce(q_top)),
                      1u);
            // mergedInv = (P * q_top)^{-1}.
            u64 pq = qi.mul(ctx->pModQ(i), qi.reduce(q_top));
            EXPECT_EQ(qi.mul(ctx->mergedInv(lvl, i), pq), 1u);
        }
    }
}

TEST(CkksContextTest, ConvertersAreCachedByIdentity)
{
    auto ctx = std::make_shared<CkksContext>(CkksParams::unitTest());
    const BasisConverter& a = ctx->modUpConverter(0, 5);
    const BasisConverter& b = ctx->modUpConverter(0, 5);
    EXPECT_EQ(&a, &b);
    const BasisConverter& c = ctx->modDownConverter(4);
    const BasisConverter& d = ctx->modDownConverter(4);
    EXPECT_EQ(&c, &d);
}

} // namespace
} // namespace madfhe
