/**
 * @file
 * Tests for NTT-friendly prime generation.
 */
#include <gtest/gtest.h>

#include "rns/primegen.h"
#include "rns/modarith.h"

namespace madfhe {
namespace {

TEST(PrimeGen, ProducesDistinctNttPrimes)
{
    const u64 n = 1 << 12;
    auto primes = generateNttPrimes(40, n, 8);
    ASSERT_EQ(primes.size(), 8u);
    for (size_t i = 0; i < primes.size(); ++i) {
        EXPECT_TRUE(isPrime(primes[i]));
        EXPECT_EQ(primes[i] % (2 * n), 1u);
        EXPECT_LT(primes[i], 1ULL << 40);
        EXPECT_GT(primes[i], 1ULL << 39);
        for (size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
    }
}

TEST(PrimeGen, HonorsExcludeList)
{
    const u64 n = 1 << 10;
    auto first = generateNttPrimes(30, n, 3);
    auto second = generateNttPrimes(30, n, 3, first);
    for (u64 p : second)
        for (u64 e : first)
            EXPECT_NE(p, e);
}

TEST(PrimeGen, NearTargetIsClose)
{
    const u64 n = 1 << 11;
    const u64 target = 1ULL << 40;
    u64 p = generateNttPrimeNear(target, n);
    EXPECT_TRUE(isPrime(p));
    EXPECT_EQ(p % (2 * n), 1u);
    double rel = std::abs(static_cast<double>(p) - static_cast<double>(target))
                 / static_cast<double>(target);
    EXPECT_LT(rel, 0.01);
}

TEST(PrimeGen, RejectsBadArguments)
{
    EXPECT_THROW(generateNttPrimes(40, 100, 1), std::invalid_argument);
    EXPECT_THROW(generateNttPrimes(10, 1 << 10, 1), std::invalid_argument);
    EXPECT_THROW(generateNttPrimes(63, 1 << 10, 1), std::invalid_argument);
}

class PrimeWidthSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PrimeWidthSweep, WidthIsRespected)
{
    unsigned bits = GetParam();
    auto primes = generateNttPrimes(bits, 1 << 10, 2);
    for (u64 p : primes) {
        EXPECT_LT(p, 1ULL << bits);
        EXPECT_GT(p, 1ULL << (bits - 1));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, PrimeWidthSweep,
                         ::testing::Values(28u, 35u, 40u, 45u, 50u, 54u, 60u));

} // namespace
} // namespace madfhe
