/**
 * @file
 * Shared fixtures/helpers for CKKS-level tests.
 */
#ifndef MADFHE_TESTS_TEST_UTIL_H
#define MADFHE_TESTS_TEST_UTIL_H

#include <complex>
#include <memory>
#include <vector>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "support/random.h"

namespace madfhe {
namespace test {

/** Random complex vector with entries in the unit box. */
inline std::vector<std::complex<double>>
randomSlots(size_t count, u64 seed)
{
    Prng rng(seed);
    std::vector<std::complex<double>> v(count);
    for (auto& z : v)
        z = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
    return v;
}

inline std::vector<double>
randomReals(size_t count, u64 seed)
{
    Prng rng(seed);
    std::vector<double> v(count);
    for (auto& x : v)
        x = 2.0 * rng.uniformReal() - 1.0;
    return v;
}

/** Max |a - b| over paired entries. */
inline double
maxError(const std::vector<std::complex<double>>& a,
         const std::vector<std::complex<double>>& b)
{
    double m = 0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/** Everything needed to run end-to-end CKKS in a test. */
struct CkksHarness
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    SecretKey sk;
    PublicKey pk;
    SwitchingKey rlk;
    std::unique_ptr<Encryptor> encryptor;
    std::unique_ptr<Decryptor> decryptor;
    std::unique_ptr<Evaluator> eval;

    explicit CkksHarness(const CkksParams& params, EvalOptions opts = {})
    {
        ctx = std::make_shared<CkksContext>(params);
        encoder = std::make_unique<CkksEncoder>(ctx);
        KeyGenerator keygen(ctx);
        sk = keygen.secretKey();
        pk = keygen.publicKey(sk);
        rlk = keygen.relinKey(sk);
        encryptor = std::make_unique<Encryptor>(ctx, pk);
        decryptor = std::make_unique<Decryptor>(ctx, sk);
        eval = std::make_unique<Evaluator>(ctx, opts);
    }

    Ciphertext
    encryptSlots(const std::vector<std::complex<double>>& v, size_t level)
    {
        Plaintext pt = encoder->encode(v, ctx->scale(), level);
        return encryptor->encrypt(pt);
    }

    std::vector<std::complex<double>>
    decryptSlots(const Ciphertext& ct)
    {
        return encoder->decode(decryptor->decrypt(ct));
    }

    GaloisKeys
    makeGaloisKeys(const std::vector<int>& steps, bool conj = false)
    {
        KeyGenerator keygen(ctx);
        // Re-derive the same secret key stream is not possible; generate
        // keys from the stored secret key directly.
        return keygen.galoisKeys(sk, steps, conj);
    }
};

} // namespace test
} // namespace madfhe

#endif // MADFHE_TESTS_TEST_UTIL_H
