/**
 * @file
 * Table/format utility tests (the printers behind every bench binary).
 */
#include <gtest/gtest.h>

#include "simfhe/report.h"

namespace madfhe {
namespace simfhe {
namespace {

TEST(ReportTable, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1.00"});
    t.addRow({"a-much-longer-name", "12345.67"});
    std::string s = t.render();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    // Every line has the same width (alignment).
    size_t first_nl = s.find('\n');
    size_t width = first_nl;
    size_t pos = 0;
    while (pos < s.size()) {
        size_t nl = s.find('\n', pos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
}

TEST(ReportTable, RejectsRaggedRows)
{
    Table t({"a", "b", "c"});
    EXPECT_THROW(t.addRow({"1", "2"}), std::invalid_argument);
}

TEST(ReportFormat, NumberFormatting)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmtGiga(2.5e9, 1), "2.5");
    EXPECT_EQ(fmtPercent(0.523, 1), "52.3%");
    EXPECT_EQ(fmtPercent(-0.05, 0), "-5%");
}

} // namespace
} // namespace simfhe
} // namespace madfhe
