#include "memtrace/crossval.h"

#include <cmath>
#include <complex>
#include <functional>
#include <iomanip>
#include <map>
#include <sstream>

#include "boot/bootstrapper.h"
#include "ckks/backend.h"
#include "ckks/encryptor.h"
#include "ckks/matvec.h"
#include "graph/exec.h"
#include "graph/passes.h"
#include "memtrace/trace.h"
#include "simfhe/model.h"
#include "support/random.h"

namespace madfhe {
namespace memtrace {

CrossValConfig::CrossValConfig()
    : params(crossvalParams()), stream_policy(streamPolicy())
{
}

simfhe::Optimizations
cachingOptsFor(StreamPolicy p)
{
    switch (p) {
    case StreamPolicy::Fuse:
        return simfhe::Optimizations::o1();
    case StreamPolicy::Cache:
        return simfhe::Optimizations::upToAlpha();
    case StreamPolicy::Full:
        return simfhe::Optimizations::allCaching();
    default:
        return simfhe::Optimizations::none();
    }
}

CkksParams
crossvalParams()
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 35;
    p.first_prime_bits = 45;
    // chainLength = 6 with dnum = 3 gives alpha = 2 and whole digits at
    // the top level, so the model's padded raised basis (beta*alpha +
    // alpha) equals the implementation's (level + alpha).
    p.num_levels = 5;
    p.dnum = 3;
    return p;
}

simfhe::SchemeConfig
matchedScheme(const CkksParams& p)
{
    simfhe::SchemeConfig s;
    s.log_n = p.log_n;
    s.limb_bits = p.log_scale;
    // Model alpha = ceil((boot_limbs + 1) / dnum); the implementation's
    // alpha = ceil(chainLength / dnum), so boot_limbs = num_levels.
    s.boot_limbs = p.num_levels;
    s.dnum = p.dnum;
    return s;
}

ReplayConfig
scaledReplayConfig(const CkksParams& p, size_t cache_limbs,
                   ReplayConfig::Policy policy)
{
    ReplayConfig rc;
    rc.policy = policy;
    rc.block_bytes = p.n() * sizeof(u64);
    rc.capacity_bytes = std::max<size_t>(1, cache_limbs) * rc.block_bytes;
    return rc;
}

namespace {

std::vector<std::complex<double>>
randomSlots(size_t count, u64 seed)
{
    Prng rng(seed);
    std::vector<std::complex<double>> v(count);
    for (auto& z : v)
        z = {2.0 * rng.uniformReal() - 1.0, 2.0 * rng.uniformReal() - 1.0};
    return v;
}

/** The executable stack a comparison runs against. */
struct CkksStack
{
    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> encoder;
    SecretKey sk;
    PublicKey pk;
    SwitchingKey rlk;
    std::unique_ptr<Encryptor> encryptor;
    std::unique_ptr<Evaluator> eval;

    explicit CkksStack(const CkksParams& params)
    {
        ctx = std::make_shared<CkksContext>(params);
        encoder = std::make_unique<CkksEncoder>(ctx);
        KeyGenerator keygen(ctx);
        sk = keygen.secretKey();
        pk = keygen.publicKey(sk);
        rlk = keygen.relinKey(sk);
        encryptor = std::make_unique<Encryptor>(ctx, pk);
        eval = std::make_unique<Evaluator>(ctx);
    }

    Ciphertext
    encryptRandom(u64 seed, size_t level)
    {
        Plaintext pt = encoder->encode(randomSlots(ctx->slots(), seed),
                                       ctx->scale(), level);
        return encryptor->encrypt(pt);
    }
};

/** Trace `op`, replay under `rc`, and return the named scope's traffic. */
Traffic
traceAndReplay(const std::function<void()>& op, const char* scope_name,
               const ReplayConfig& rc, Trace* keep_trace = nullptr)
{
    TraceSink& sink = TraceSink::instance();
    sink.clear();
    sink.enable();
    op();
    sink.disable();
    Trace trace = sink.snapshot();
    sink.clear();
    ReplayResult res = replay(trace, rc);
    if (keep_trace)
        *keep_trace = std::move(trace);
    const ScopeStats* s = res.scope(scope_name);
    return s ? s->traffic : Traffic{};
}

double
kb(double bytes)
{
    return bytes / 1024.0;
}

/** Tolerance band plus divergence note for one (primitive, policy). */
struct Band
{
    double lo;
    double hi;
    const char* note;
};

/**
 * Empirically calibrated traced/analytic bands per stream policy. The
 * Off rows are the historical materializing bands; the streaming rows
 * were measured after the limb-streaming engine landed (both sides of
 * the ratio change: the implementation stops spilling intermediates and
 * the model turns on the matching Section 3.1 toggles).
 */
Band
bandFor(const std::string& prim, StreamPolicy p)
{
    if (prim == "KeySwitch") {
        switch (p) {
        case StreamPolicy::Off:
            return {0.8, 1.4,
                    "temporaries (x_coeff copy, conversion buffers) add "
                    "traffic; cache reuse across sub-ops removes some "
                    "(observed ~1.06)"};
        case StreamPolicy::Fuse:
            return {0.55, 0.95,
                    "fused digits beat the model's o1 accounting, which "
                    "still charges digit writes (observed ~0.70)"};
        case StreamPolicy::Cache:
            return {0.65, 1.10,
                    "pinned digit/drop caches vs model upToAlpha (observed "
                    "~0.86)"};
        case StreamPolicy::Full:
            return {0.55, 0.95,
                    "nothing raised touches DRAM; model allCaching still "
                    "charges partial spills (observed ~0.72)"};
        }
    }
    if (prim == "Mult") {
        switch (p) {
        case StreamPolicy::Off:
            return {0.8, 1.4,
                    "merged-ModDown path on both sides (observed ~1.18)"};
        case StreamPolicy::Fuse:
            return {0.70, 1.20,
                    "tensor temporaries offset the fused key switch "
                    "(observed ~0.92)"};
        case StreamPolicy::Cache:
            return {0.85, 1.35,
                    "tensor/rescale traffic the caching toggles don't "
                    "model (observed ~1.11)"};
        case StreamPolicy::Full:
            return {0.80, 1.30,
                    "streamed merged key switch + unmodeled tensor "
                    "temporaries (observed ~1.04)"};
        }
    }
    if (prim == "Rotate") {
        switch (p) {
        case StreamPolicy::Off:
            return {0.8, 1.4,
                    "Automorph output + KeySwitch temporaries vs model's "
                    "unfused accounting (observed ~1.06)"};
        case StreamPolicy::Fuse:
            return {0.65, 1.15,
                    "automorph copy offsets the fused digits (observed "
                    "~0.87)"};
        case StreamPolicy::Cache:
            return {0.80, 1.30,
                    "automorph copy vs pinned caches (observed ~1.03)"};
        case StreamPolicy::Full:
            return {0.70, 1.20,
                    "streamed key switch behind the automorph copy "
                    "(observed ~0.93)"};
        }
    }
    return {0.5, 2.0, ""};
}

/**
 * The three key-switch-bound primitives under one stream policy, each
 * compared against the model at the matching opt level. Shared by the
 * default cross-validation (ambient policy) and the per-opt-level sweep.
 */
std::vector<PrimitiveComparison>
runKeySwitchTrio(CkksStack& stack, const ReplayConfig& rc,
                 const simfhe::SchemeConfig& scheme,
                 const simfhe::CacheConfig& cache, StreamPolicy policy,
                 Trace* mult_trace)
{
    ScopedStreamPolicy sp(policy);
    const size_t L = stack.ctx->maxLevel();
    const simfhe::Optimizations caching = cachingOptsFor(policy);
    simfhe::Optimizations merge = caching;
    merge.moddown_merge = true; // Evaluator::mul defaults to merged ModDown

    std::vector<PrimitiveComparison> out;

    {
        Ciphertext ct = stack.encryptRandom(11, L);
        const KeySwitcher& ksw = stack.eval->keySwitcher();
        Traffic t = traceAndReplay(
            [&] { (void)ksw.keySwitch(ct.c1, stack.rlk); }, "KeySwitch", rc);
        PrimitiveComparison c;
        c.name = "KeySwitch";
        c.traced = t;
        c.analytic = simfhe::CostModel(scheme, cache, caching).keySwitch(L);
        const Band b = bandFor(c.name, policy);
        c.tol_lo = b.lo;
        c.tol_hi = b.hi;
        c.note = b.note;
        out.push_back(std::move(c));
    }

    {
        Ciphertext a = stack.encryptRandom(21, L);
        Ciphertext b2 = stack.encryptRandom(22, L);
        Traffic t = traceAndReplay(
            [&] { (void)stack.eval->mul(a, b2, stack.rlk); }, "Mult", rc,
            mult_trace);
        PrimitiveComparison c;
        c.name = "Mult";
        c.traced = t;
        c.analytic = simfhe::CostModel(scheme, cache, merge).mult(L);
        const Band b = bandFor(c.name, policy);
        c.tol_lo = b.lo;
        c.tol_hi = b.hi;
        c.note = b.note;
        out.push_back(std::move(c));
    }

    {
        KeyGenerator keygen(stack.ctx);
        GaloisKeys gks = keygen.galoisKeys(stack.sk, {1}, false);
        Ciphertext ct = stack.encryptRandom(31, L);
        Traffic t = traceAndReplay(
            [&] { (void)stack.eval->rotate(ct, 1, gks); }, "Rotate", rc);
        PrimitiveComparison c;
        c.name = "Rotate";
        c.traced = t;
        c.analytic = simfhe::CostModel(scheme, cache, caching).rotate(L);
        const Band b = bandFor(c.name, policy);
        c.tol_lo = b.lo;
        c.tol_hi = b.hi;
        c.note = b.note;
        out.push_back(std::move(c));
    }

    return out;
}

} // namespace

bool
CrossValReport::allOk() const
{
    for (const auto& p : primitives)
        if (!p.ok())
            return false;
    return o1.ok();
}

std::string
CrossValReport::format() const
{
    std::ostringstream os;
    os << std::fixed;
    os << std::setw(14) << std::left << "primitive" << std::right
       << std::setw(12) << "traced KB" << std::setw(13) << "analytic KB"
       << std::setw(8) << "ratio" << std::setw(15) << "band"
       << std::setw(10) << "status" << "\n";
    for (const auto& p : primitives) {
        std::ostringstream band;
        band << "[" << std::fixed << std::setprecision(2) << p.tol_lo << ", "
             << p.tol_hi << "]";
        os << std::setw(14) << std::left << p.name << std::right
           << std::setprecision(1) << std::setw(12) << kb(p.tracedBytes())
           << std::setw(13) << kb(p.analyticBytes()) << std::setprecision(3)
           << std::setw(8) << p.ratio() << std::setw(15) << band.str()
           << std::setw(10) << (p.ok() ? "ok" : "DIVERGED") << "\n";
        os << std::setprecision(1) << "    traced   ct_r " << std::setw(9)
           << kb(p.traced.ct_read) << "  ct_w " << std::setw(9)
           << kb(p.traced.ct_write) << "  key_r " << std::setw(9)
           << kb(p.traced.key_read) << "  pt_r " << std::setw(9)
           << kb(p.traced.pt_read) << "\n";
        os << "    analytic ct_r " << std::setw(9) << kb(p.analytic.ct_read)
           << "  ct_w " << std::setw(9) << kb(p.analytic.ct_write)
           << "  key_r " << std::setw(9) << kb(p.analytic.key_read)
           << "  pt_r " << std::setw(9) << kb(p.analytic.pt_read) << "\n";
        if (!p.note.empty())
            os << "    note: " << p.note << "\n";
    }
    os << std::setprecision(1) << "O(1)-fusion direction: traced "
       << kb(o1.traced_stream) << " KB (2-limb cache) vs "
       << kb(o1.traced_cached) << " KB (scaled cache); analytic "
       << kb(o1.analytic_none) << " KB (none) vs " << kb(o1.analytic_o1)
       << " KB (cache_o1) -- " << (o1.ok() ? "ok" : "WRONG DIRECTION")
       << "\n";
    return os.str();
}

CrossValReport
runCrossValidation(const CrossValConfig& cfg)
{
    CrossValReport report;

    const ReplayConfig rc =
        scaledReplayConfig(cfg.params, cfg.cache_limbs, cfg.policy);
    const simfhe::SchemeConfig scheme = matchedScheme(cfg.params);
    const simfhe::CacheConfig cache{
        static_cast<double>(cfg.cache_limbs) * scheme.limbBytes()};

    CkksStack stack(cfg.params);
    const size_t L = stack.ctx->maxLevel();
    ScopedStreamPolicy sp(cfg.stream_policy);

    // The caching side of the comparison is policy-aware: the functional
    // primitives execute under cfg.stream_policy and the model gets the
    // matching Section 3.1 toggles. Algorithmic toggles follow the
    // executed code path as before.
    simfhe::Optimizations caching = cachingOptsFor(cfg.stream_policy);
    simfhe::Optimizations hoist = simfhe::Optimizations::none();
    hoist.moddown_hoist = true; // MatVecOptions default hoisting

    // --- KeySwitch / Mult / Rotate (policy-aware) ------------------------
    Trace mult_trace;
    for (auto& c : runKeySwitchTrio(stack, rc, scheme, cache,
                                    cfg.stream_policy, &mult_trace))
        report.primitives.push_back(std::move(c));

    // --- PtMatVecMult (BSGS, hoisted) ------------------------------------
    {
        const size_t slots = stack.ctx->slots();
        std::map<int, std::vector<std::complex<double>>> diags;
        for (size_t d = 0; d < cfg.diagonals; ++d)
            diags[static_cast<int>(d)] =
                randomSlots(slots, 40 + static_cast<u64>(d));
        LinearTransform lt(stack.ctx, std::move(diags), stack.ctx->scale());
        KeyGenerator keygen(stack.ctx);
        GaloisKeys gks =
            keygen.galoisKeys(stack.sk, lt.requiredRotations(), false);
        Ciphertext ct = stack.encryptRandom(41, L);
        Traffic t = traceAndReplay(
            [&] { (void)lt.apply(*stack.eval, *stack.encoder, ct, gks); },
            "PtMatVecMult", rc);
        PrimitiveComparison c;
        c.name = "PtMatVecMult";
        c.traced = t;
        c.analytic = simfhe::CostModel(scheme, cache, hoist)
                         .ptMatVecMult(L, cfg.diagonals);
        // The model's hoisted schedule assumes the paper's limb-major
        // fusion (digits read once, per-giant accumulators never
        // spilled); the implementation materializes one RaisedCiphertext
        // per baby step and copies it per diagonal, so it moves ~3.8x the
        // modeled bytes. The band is centered on that known gap: a ratio
        // below it means someone implemented the fusion (retune), above
        // it means a traffic regression.
        c.tol_lo = 2.5;
        c.tol_hi = 5.5;
        c.note = "implementation is not limb-major fused: per-baby raised "
                 "products spill and re-load (expected ratio ~3.8)";
        report.primitives.push_back(std::move(c));
    }

    // --- O(1)-fusion direction check on the Mult trace -------------------
    {
        ReplayConfig stream = rc;
        stream.capacity_bytes = 2 * rc.block_bytes;
        const ScopeStats* s;
        ReplayResult r_stream = replay(mult_trace, stream);
        s = r_stream.scope("Mult");
        report.o1.traced_stream = s ? s->traffic.bytes() : 0;
        ReplayResult r_cached = replay(mult_trace, rc);
        s = r_cached.scope("Mult");
        report.o1.traced_cached = s ? s->traffic.bytes() : 0;
        // Model side of the direction check is fixed at none-vs-o1 (both
        // with merged ModDown) regardless of the executed policy: it
        // checks the model's slope, the replays above check the trace's.
        simfhe::Optimizations merge = simfhe::Optimizations::none();
        merge.moddown_merge = true;
        simfhe::Optimizations merge_o1 = merge;
        merge_o1.cache_o1 = true;
        report.o1.analytic_none =
            simfhe::CostModel(scheme, cache, merge).mult(L).bytes();
        report.o1.analytic_o1 =
            simfhe::CostModel(scheme, cache, merge_o1).mult(L).bytes();
    }

    // --- Bootstrap (toy parameters, own stack) ---------------------------
    if (cfg.run_bootstrap) {
        CkksParams bp = CkksParams::bootstrapToy();
        bp.log_n = 11;
        bp.hamming_weight = 16;
        CkksStack boot_stack(bp);

        BootstrapParams boot_parms;
        boot_parms.ctos_iters = 3;
        boot_parms.stoc_iters = 3;
        boot_parms.sine_degree = 71;
        boot_parms.k_bound = 8.0;
        Bootstrapper boot(boot_stack.ctx, boot_parms);
        KeyGenerator keygen(boot_stack.ctx);
        GaloisKeys gks = keygen.galoisKeys(boot_stack.sk,
                                           boot.requiredRotations(), true);
        Ciphertext ct = boot_stack.encryptRandom(51, 1);

        const ReplayConfig boot_rc =
            scaledReplayConfig(bp, cfg.cache_limbs, cfg.policy);
        Traffic t = traceAndReplay(
            [&] {
                (void)boot.bootstrap(*boot_stack.eval, *boot_stack.encoder,
                                     ct, gks, boot_stack.rlk);
            },
            "Bootstrap", boot_rc);

        simfhe::SchemeConfig boot_scheme = matchedScheme(bp);
        boot_scheme.fft_iter = boot_parms.ctos_iters;
        const simfhe::CacheConfig boot_cache{
            static_cast<double>(cfg.cache_limbs) * boot_scheme.limbBytes()};
        simfhe::Optimizations boot_opts = caching;
        boot_opts.moddown_merge = true;
        boot_opts.moddown_hoist = true;

        PrimitiveComparison c;
        c.name = "Bootstrap";
        c.traced = t;
        c.analytic = simfhe::CostModel(boot_scheme, boot_cache, boot_opts)
                         .bootstrap();
        // Two structural gaps stack here: the executable EvalMod runs two
        // independent degree-71 Chebyshev evaluations (~2x the model's
        // shared 9-level/22-mult schedule) and the DFT PtMatVecMults
        // carry the ~3.8x fusion gap above. Observed ~5.7.
        c.tol_lo = 3.0;
        c.tol_hi = 9.0;
        c.note = "EvalMod schedule mismatch (2x degree-71 Chebyshev vs "
                 "fixed 9-level model) on top of the matvec fusion gap "
                 "(expected ratio ~5.7)";
        report.primitives.push_back(std::move(c));
    }

    return report;
}

bool
PolicySweepReport::monotonicOk(const std::string& primitive) const
{
    double prev = -1.0;
    for (const auto& row : rows) {
        for (const auto& p : row.primitives) {
            if (p.name != primitive)
                continue;
            if (prev >= 0.0 && p.tracedBytes() >= prev)
                return false;
            prev = p.tracedBytes();
        }
    }
    return prev >= 0.0;
}

bool
PolicySweepReport::allOk() const
{
    for (const auto& row : rows)
        for (const auto& p : row.primitives)
            if (!p.ok())
                return false;
    return monotonicOk("KeySwitch") && monotonicOk("Mult") &&
           monotonicOk("Rotate");
}

std::string
PolicySweepReport::format() const
{
    std::ostringstream os;
    os << std::fixed;
    os << std::setw(8) << std::left << "policy" << std::setw(14)
       << "primitive" << std::right << std::setw(12) << "traced KB"
       << std::setw(13) << "analytic KB" << std::setw(8) << "ratio"
       << std::setw(15) << "band" << std::setw(10) << "status" << "\n";
    for (const auto& row : rows) {
        for (const auto& p : row.primitives) {
            std::ostringstream band;
            band << "[" << std::fixed << std::setprecision(2) << p.tol_lo
                 << ", " << p.tol_hi << "]";
            os << std::setw(8) << std::left
               << streamPolicyName(row.policy) << std::setw(14) << p.name
               << std::right << std::setprecision(1) << std::setw(12)
               << kb(p.tracedBytes()) << std::setw(13)
               << kb(p.analyticBytes()) << std::setprecision(3)
               << std::setw(8) << p.ratio() << std::setw(15) << band.str()
               << std::setw(10) << (p.ok() ? "ok" : "DIVERGED") << "\n";
        }
    }
    for (const char* prim : {"KeySwitch", "Mult", "Rotate"})
        os << "monotone off > fuse > cache > full [" << prim
           << "]: " << (monotonicOk(prim) ? "ok" : "VIOLATED") << "\n";
    return os.str();
}

bool
GraphFusionReport::ok() const
{
    return matvec_imperative > 0 && matvec_fused > 0 &&
           matvec_analytic > 0 && matvec_fused < matvec_imperative &&
           rotations_hoisted == rotations && rotations >= 2 &&
           modups_unhoisted == rotations && modups_hoisted == 1;
}

std::string
GraphFusionReport::format() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    os << "PtMatVecMult DRAM: imperative " << kb(matvec_imperative)
       << " KB, graph-fused " << kb(matvec_fused) << " KB, analytic "
       << kb(matvec_analytic) << " KB\n";
    os << std::setprecision(3) << "  traced/analytic ratio: "
       << imperativeRatio() << " (imperative) -> " << fusedRatio()
       << " (fused) -- "
       << (matvec_fused < matvec_imperative ? "gap shrinks"
                                            : "NO IMPROVEMENT")
       << "\n";
    os << std::setprecision(1) << "Hoisted rotations: " << rotations_hoisted
       << "/" << rotations << " collapsed; Decomp+ModUp runs "
       << modups_unhoisted << " -> " << modups_hoisted << " -- "
       << (modups_hoisted == 1 && modups_unhoisted == rotations
               ? "ok"
               : "NOT COLLAPSED")
       << "\n";
    os << "  DRAM (materializing policy, informational): "
       << kb(rotate_unhoisted) << " KB (unhoisted) vs "
       << kb(rotate_hoisted) << " KB (hoisted)\n";
    os << "graph fusion: " << (ok() ? "ok" : "FAILED") << "\n";
    return os.str();
}

GraphFusionReport
runGraphFusion(const CrossValConfig& cfg)
{
    GraphFusionReport rep;
    const ReplayConfig rc =
        scaledReplayConfig(cfg.params, cfg.cache_limbs, cfg.policy);
    const simfhe::SchemeConfig scheme = matchedScheme(cfg.params);
    const simfhe::CacheConfig cache{
        static_cast<double>(cfg.cache_limbs) * scheme.limbBytes()};

    CkksStack stack(cfg.params);
    const size_t L = stack.ctx->maxLevel();
    ScopedStreamPolicy sp(cfg.stream_policy);

    const std::vector<int> hoist_steps = {1, 2, 3, 4};

    std::map<int, std::vector<std::complex<double>>> diags;
    for (size_t d = 0; d < cfg.diagonals; ++d)
        diags[static_cast<int>(d)] =
            randomSlots(stack.ctx->slots(), 40 + static_cast<u64>(d));
    LinearTransform lt(stack.ctx, std::move(diags), stack.ctx->scale());

    KeyGenerator keygen(stack.ctx);
    std::vector<int> key_steps = lt.requiredRotations();
    key_steps.insert(key_steps.end(), hoist_steps.begin(), hoist_steps.end());
    GaloisKeys gks = keygen.galoisKeys(stack.sk, key_steps, false);

    RealBackend backend(stack.ctx);
    Ciphertext ct = stack.encryptRandom(41, L);

    // --- PtMatVecMult: imperative apply vs graph-fused ------------------
    rep.matvec_imperative =
        traceAndReplay(
            [&] { (void)lt.apply(*stack.eval, *stack.encoder, ct, gks); },
            "PtMatVecMult", rc)
            .bytes();
    {
        graph::GraphBuilder b;
        b.output(b.matVec(b.input(L, ct.scale), &lt));
        graph::Graph g = b.build();
        graph::runPasses(g, *stack.ctx);
        graph::GraphExecutor exec(backend, &stack.rlk, &gks);
        rep.matvec_fused =
            traceAndReplay([&] { (void)exec.run(g, {ct}); }, "PtMatVecMult",
                           rc)
                .bytes();
    }
    simfhe::Optimizations hoist = simfhe::Optimizations::none();
    hoist.moddown_hoist = true;
    rep.matvec_analytic = simfhe::CostModel(scheme, cache, hoist)
                              .ptMatVecMult(L, cfg.diagonals)
                              .bytes();

    // --- Hoisted rotations: same graph, pass off vs on ------------------
    // The structural claim: the per-rotate path decomposes the source N
    // times, the HoistedRotation group exactly once. Counted from the raw
    // trace's DecompModUp scope events under the materializing policy
    // (streaming key switches never open that scope); replayed DRAM
    // totals are kept for context only.
    auto traceRun = [&](const std::function<void()>& op, size_t* modups,
                        double* bytes) {
        ScopedStreamPolicy off(StreamPolicy::Off);
        TraceSink& sink = TraceSink::instance();
        sink.clear();
        sink.enable();
        op();
        sink.disable();
        Trace trace = sink.snapshot();
        sink.clear();
        size_t count = 0;
        for (const Event& e : trace.events) {
            if (e.kind == Kind::ScopeBegin &&
                trace.scope_names.at(static_cast<size_t>(e.addr)) ==
                    "DecompModUp")
                ++count;
        }
        *modups = count;
        *bytes = replay(trace, rc).total.bytes();
    };
    rep.rotations = hoist_steps.size();
    Ciphertext rct = stack.encryptRandom(42, L);
    auto buildRotations = [&](bool hoist_pass) {
        graph::GraphBuilder b;
        const graph::NodeRef in = b.input(L, rct.scale);
        std::vector<graph::NodeRef> outs;
        for (int s : hoist_steps)
            outs.push_back(b.rotate(in, s));
        b.outputs(outs);
        graph::Graph g = b.build();
        graph::PassOptions po;
        po.hoist_rotations = hoist_pass;
        const graph::PassStats st = graph::runPasses(g, *stack.ctx, po);
        if (hoist_pass)
            rep.rotations_hoisted = st.rotations_hoisted;
        return g;
    };
    {
        graph::Graph g = buildRotations(false);
        graph::GraphExecutor exec(backend, &stack.rlk, &gks);
        traceRun([&] { (void)exec.run(g, {rct}); }, &rep.modups_unhoisted,
                 &rep.rotate_unhoisted);
    }
    {
        graph::Graph g = buildRotations(true);
        graph::GraphExecutor exec(backend, &stack.rlk, &gks);
        traceRun([&] { (void)exec.run(g, {rct}); }, &rep.modups_hoisted,
                 &rep.rotate_hoisted);
    }
    return rep;
}

PolicySweepReport
runPolicySweep(const CrossValConfig& cfg)
{
    PolicySweepReport report;
    const ReplayConfig rc =
        scaledReplayConfig(cfg.params, cfg.cache_limbs, cfg.policy);
    const simfhe::SchemeConfig scheme = matchedScheme(cfg.params);
    const simfhe::CacheConfig cache{
        static_cast<double>(cfg.cache_limbs) * scheme.limbBytes()};
    CkksStack stack(cfg.params);
    for (StreamPolicy p : kStreamPolicies) {
        PolicySweepReport::Row row;
        row.policy = p;
        row.primitives =
            runKeySwitchTrio(stack, rc, scheme, cache, p, nullptr);
        report.rows.push_back(std::move(row));
    }
    return report;
}

} // namespace memtrace
} // namespace madfhe
