#include "memtrace/trace.h"

#include <algorithm>

namespace madfhe {
namespace memtrace {

namespace {

/** Staging buffer bound to this thread, or nullptr for direct recording. */
thread_local TraceBuffer* tl_buffer = nullptr;

} // namespace

TraceSink&
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

void
TraceSink::bindThreadBuffer(TraceBuffer* buf)
{
    tl_buffer = buf;
}

void
TraceSink::enable()
{
#ifndef MADFHE_MEMTRACE_DISABLED
    tracingFlag().store(true, std::memory_order_relaxed);
#endif
}

void
TraceSink::disable()
{
#ifndef MADFHE_MEMTRACE_DISABLED
    tracingFlag().store(false, std::memory_order_relaxed);
#endif
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
    // Restart the virtual address space: each measured region then maps
    // its buffers purely by its own Alloc/first-access order, so stale
    // regions from earlier measurements can never alias recycled heap
    // addresses into it.
    vregions.clear();
    next_vaddr = 1ull << 20;
}

Class
TraceSink::classify(u64 addr) const
{
    // regions is sorted by start and non-overlapping; find the greatest
    // start <= addr.
    auto it = std::upper_bound(
        regions.begin(), regions.end(), addr,
        [](u64 a, const auto& r) { return a < r.first; });
    if (it == regions.begin())
        return Class::Ct;
    --it;
    return addr < it->second.first ? it->second.second : Class::Ct;
}

void
TraceSink::recordLocked(Kind kind, u64 a, u32 bytes)
{
    if (kind == Kind::Alloc) {
        // A new buffer over a previously tagged range retires the tag:
        // the allocator recycled the address for ordinary working data.
        auto overlaps = [a, bytes](const auto& r) {
            return a < r.second.first && r.first < a + bytes;
        };
        regions.erase(
            std::remove_if(regions.begin(), regions.end(), overlaps),
            regions.end());
    }
    const u64 va = translate(kind, a, bytes);
    events.push_back(Event{va, bytes, kind, classify(a)});
}

u64
TraceSink::translate(Kind kind, u64 a, u32 bytes)
{
    // The event stream commits in a deterministic order (parallel chunks
    // flush in ascending chunk order), so handing out virtual bases in
    // commit order yields addresses that are independent of the actual
    // heap layout — replayed DRAM traffic is then reproducible run to run
    // and identical across thread counts.
    auto overlaps = [a, bytes](const auto& r) {
        return a < r.second.first && r.first < a + bytes;
    };
    if (kind != Kind::Alloc) {
        // Greatest region start <= a.
        auto it = std::upper_bound(
            vregions.begin(), vregions.end(), a,
            [](u64 x, const auto& r) { return x < r.first; });
        if (it != vregions.begin()) {
            --it;
            if (a < it->second.first)
                return it->second.second + (a - it->first);
        }
    }
    // Alloc, or first access to a buffer created before tracing started
    // (keys, plaintexts, the input ciphertext): open a fresh virtual
    // region. Recycled real addresses retire whatever they overlap.
    vregions.erase(
        std::remove_if(vregions.begin(), vregions.end(), overlaps),
        vregions.end());
    const u64 vbase = next_vaddr;
    // 64-byte-aligned bump with one page of padding between regions so a
    // stray over-long span cannot alias the next buffer's blocks.
    next_vaddr += (static_cast<u64>(bytes) + 63) / 64 * 64 + 4096;
    auto pos = std::upper_bound(
        vregions.begin(), vregions.end(), a,
        [](u64 x, const auto& r) { return x < r.first; });
    vregions.insert(pos, {a, {a + bytes, vbase}});
    return vbase;
}

void
TraceSink::record(Kind kind, const void* addr, size_t bytes)
{
    if (!tracingEnabled() || bytes == 0)
        return;
    if (kind == Kind::Read || kind == Kind::Write)
        dataBytesCounter().fetch_add(bytes, std::memory_order_relaxed);
    const u64 a = reinterpret_cast<u64>(addr);
    if (TraceBuffer* buf = tl_buffer) {
        buf->staged.push_back({a, static_cast<u32>(bytes), kind, -1});
        return;
    }
    std::lock_guard<std::mutex> lock(mu);
    recordLocked(kind, a, static_cast<u32>(bytes));
}

void
TraceSink::beginScope(const std::string& name)
{
    if (!tracingEnabled())
        return;
    if (TraceBuffer* buf = tl_buffer) {
        buf->local_names.push_back(name);
        buf->staged.push_back(
            {0, 0, Kind::ScopeBegin,
             static_cast<i32>(buf->local_names.size() - 1)});
        return;
    }
    std::lock_guard<std::mutex> lock(mu);
    u32 id = internScopeName(name);
    events.push_back(Event{id, 0, Kind::ScopeBegin, Class::Ct});
}

void
TraceSink::endScope()
{
    if (!tracingEnabled())
        return;
    if (TraceBuffer* buf = tl_buffer) {
        buf->staged.push_back({0, 0, Kind::ScopeEnd, -1});
        return;
    }
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(Event{0, 0, Kind::ScopeEnd, Class::Ct});
}

void
TraceSink::flush(TraceBuffer& buf)
{
    if (buf.staged.empty()) {
        buf.clear();
        return;
    }
    std::lock_guard<std::mutex> lock(mu);
    for (const auto& s : buf.staged) {
        switch (s.kind) {
        case Kind::ScopeBegin:
            events.push_back(
                Event{internScopeName(buf.local_names[s.name]), 0,
                      Kind::ScopeBegin, Class::Ct});
            break;
        case Kind::ScopeEnd:
            events.push_back(Event{0, 0, Kind::ScopeEnd, Class::Ct});
            break;
        default:
            recordLocked(s.kind, s.addr, s.bytes);
            break;
        }
    }
    buf.clear();
}

u32
TraceSink::internScopeName(const std::string& name)
{
    for (size_t i = 0; i < scope_names.size(); ++i)
        if (scope_names[i] == name)
            return static_cast<u32>(i);
    scope_names.push_back(name);
    return static_cast<u32>(scope_names.size() - 1);
}

void
TraceSink::tagRegion(const void* addr, size_t bytes, Class cls)
{
#ifdef MADFHE_MEMTRACE_DISABLED
    (void)addr;
    (void)bytes;
    (void)cls;
#else
    if (bytes == 0)
        return;
    const u64 a = reinterpret_cast<u64>(addr);
    std::lock_guard<std::mutex> lock(mu);
    // Replace anything the new tag overlaps, then keep `regions` sorted.
    auto overlaps = [a, bytes](const auto& r) {
        return a < r.second.first && r.first < a + bytes;
    };
    regions.erase(std::remove_if(regions.begin(), regions.end(), overlaps),
                  regions.end());
    auto pos = std::upper_bound(
        regions.begin(), regions.end(), a,
        [](u64 x, const auto& r) { return x < r.first; });
    regions.insert(pos, {a, {a + bytes, cls}});
#endif
}

Trace
TraceSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return Trace{events, scope_names};
}

size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

} // namespace memtrace
} // namespace madfhe
