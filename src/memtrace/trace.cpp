#include "memtrace/trace.h"

#include <algorithm>

namespace madfhe {
namespace memtrace {

TraceSink&
TraceSink::instance()
{
    static TraceSink sink;
    return sink;
}

void
TraceSink::enable()
{
#ifndef MADFHE_MEMTRACE_DISABLED
    tracingFlag().store(true, std::memory_order_relaxed);
#endif
}

void
TraceSink::disable()
{
#ifndef MADFHE_MEMTRACE_DISABLED
    tracingFlag().store(false, std::memory_order_relaxed);
#endif
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    events.clear();
}

Class
TraceSink::classify(u64 addr) const
{
    // regions is sorted by start and non-overlapping; find the greatest
    // start <= addr.
    auto it = std::upper_bound(
        regions.begin(), regions.end(), addr,
        [](u64 a, const auto& r) { return a < r.first; });
    if (it == regions.begin())
        return Class::Ct;
    --it;
    return addr < it->second.first ? it->second.second : Class::Ct;
}

void
TraceSink::record(Kind kind, const void* addr, size_t bytes)
{
    if (!tracingEnabled() || bytes == 0)
        return;
    const u64 a = reinterpret_cast<u64>(addr);
    std::lock_guard<std::mutex> lock(mu);
    if (kind == Kind::Alloc) {
        // A new buffer over a previously tagged range retires the tag:
        // the allocator recycled the address for ordinary working data.
        auto overlaps = [a, bytes](const auto& r) {
            return a < r.second.first && r.first < a + bytes;
        };
        regions.erase(
            std::remove_if(regions.begin(), regions.end(), overlaps),
            regions.end());
    }
    events.push_back(Event{a, static_cast<u32>(bytes), kind, classify(a)});
}

void
TraceSink::beginScope(const std::string& name)
{
    if (!tracingEnabled())
        return;
    std::lock_guard<std::mutex> lock(mu);
    u32 id = internScopeName(name);
    events.push_back(Event{id, 0, Kind::ScopeBegin, Class::Ct});
}

void
TraceSink::endScope()
{
    if (!tracingEnabled())
        return;
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(Event{0, 0, Kind::ScopeEnd, Class::Ct});
}

u32
TraceSink::internScopeName(const std::string& name)
{
    for (size_t i = 0; i < scope_names.size(); ++i)
        if (scope_names[i] == name)
            return static_cast<u32>(i);
    scope_names.push_back(name);
    return static_cast<u32>(scope_names.size() - 1);
}

void
TraceSink::tagRegion(const void* addr, size_t bytes, Class cls)
{
#ifdef MADFHE_MEMTRACE_DISABLED
    (void)addr;
    (void)bytes;
    (void)cls;
#else
    if (bytes == 0)
        return;
    const u64 a = reinterpret_cast<u64>(addr);
    std::lock_guard<std::mutex> lock(mu);
    // Replace anything the new tag overlaps, then keep `regions` sorted.
    auto overlaps = [a, bytes](const auto& r) {
        return a < r.second.first && r.first < a + bytes;
    };
    regions.erase(std::remove_if(regions.begin(), regions.end(), overlaps),
                  regions.end());
    auto pos = std::upper_bound(
        regions.begin(), regions.end(), a,
        [](u64 x, const auto& r) { return x < r.first; });
    regions.insert(pos, {a, {a + bytes, cls}});
#endif
}

Trace
TraceSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return Trace{events, scope_names};
}

size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

} // namespace memtrace
} // namespace madfhe
