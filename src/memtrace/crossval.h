/**
 * @file
 * Cross-validation of SimFHE's analytical DRAM model against the
 * executable CKKS stack: run a real (reduced-parameter) primitive under
 * memory tracing, replay the trace through a cache model scaled the way
 * the paper scales its on-chip memory (capacity measured in limbs), and
 * compare the replayed DRAM bytes against the CostModel prediction for a
 * SchemeConfig matched to the same CkksParams.
 *
 * The comparison is necessarily approximate — the implementation
 * materializes intermediates (digit polynomials, conversion temporaries)
 * that the model's fused accounting never spills, and the replay cache
 * captures reuse the model's per-sub-operation accounting ignores — so
 * each primitive carries an empirically calibrated tolerance band plus a
 * note naming the dominant divergence source.
 */
#ifndef MADFHE_MEMTRACE_CROSSVAL_H
#define MADFHE_MEMTRACE_CROSSVAL_H

#include <string>
#include <vector>

#include "ckks/params.h"
#include "ckks/stream.h"
#include "memtrace/replay.h"
#include "simfhe/config.h"
#include "simfhe/cost.h"

namespace madfhe {
namespace memtrace {

/** One primitive's traced-vs-analytical comparison. */
struct PrimitiveComparison
{
    std::string name;
    /** Replayed DRAM traffic of the primitive's trace scope. */
    Traffic traced;
    /** CostModel prediction (only the DRAM fields are meaningful here). */
    simfhe::Cost analytic;
    /** Acceptable traced/analytic total-bytes ratio band. */
    double tol_lo = 0.5;
    double tol_hi = 2.0;
    /** Dominant known divergence source (documentation, not excuse). */
    std::string note;

    double tracedBytes() const { return traced.bytes(); }
    double analyticBytes() const { return analytic.bytes(); }
    double
    ratio() const
    {
        return analyticBytes() > 0 ? tracedBytes() / analyticBytes() : 0.0;
    }
    bool ok() const { return ratio() >= tol_lo && ratio() <= tol_hi; }
};

/**
 * Direction check for the O(1)-limb fusion story (Section 3.1): shrinking
 * the replay cache to a couple of limbs must increase traced Mult traffic,
 * the same direction the analytical model moves when cache_o1 turns off.
 */
struct O1DirectionCheck
{
    double traced_stream = 0; ///< Mult DRAM bytes, 2-limb cache.
    double traced_cached = 0; ///< Mult DRAM bytes, scaled cache.
    double analytic_none = 0; ///< Model Mult bytes, no caching opts.
    double analytic_o1 = 0;   ///< Model Mult bytes, cache_o1 enabled.
    bool
    ok() const
    {
        return traced_stream > traced_cached && analytic_none > analytic_o1;
    }
};

struct CrossValConfig
{
    /** Functional parameter set to execute (see crossvalParams()). */
    CkksParams params;
    /**
     * On-chip capacity in limbs. The paper's 32 MB budget holds 32 of its
     * 1 MB limbs (N = 2^17); measuring capacity in limbs transfers that
     * budget to the reduced ring.
     */
    size_t cache_limbs = 32;
    ReplayConfig::Policy policy = ReplayConfig::Policy::Lru;
    /** Include the (slow) full-bootstrap comparison. */
    bool run_bootstrap = true;
    /** Diagonal count for the PtMatVecMult comparison. */
    size_t diagonals = 8;
    /**
     * Limb-streaming policy the functional primitives execute under.
     * The analytic side gets the matching Section 3.1 caching toggles
     * (cachingOptsFor), so the comparison stays apples-to-apples at
     * every opt level. Defaults to the ambient MADFHE_STREAM policy.
     */
    StreamPolicy stream_policy;

    CrossValConfig();
};

struct CrossValReport
{
    std::vector<PrimitiveComparison> primitives;
    O1DirectionCheck o1;

    bool allOk() const;
    /** Human-readable table of the comparisons. */
    std::string format() const;
};

/**
 * The default cross-validation parameter set: chainLength divisible by
 * dnum, so the model's digit padding (raised = beta*alpha + alpha) agrees
 * exactly with the implementation's raised basis (level + alpha) at the
 * top level.
 */
CkksParams crossvalParams();

/** SchemeConfig whose alpha/beta/raised match the executable context. */
simfhe::SchemeConfig matchedScheme(const CkksParams& p);

/** Replay config with limb-sized blocks and a capacity of `cache_limbs`
 *  limbs. */
ReplayConfig scaledReplayConfig(const CkksParams& p, size_t cache_limbs,
                                ReplayConfig::Policy policy);

/** Run every primitive comparison. Uses the global TraceSink (clears it;
 *  leaves tracing disabled on return). */
CrossValReport runCrossValidation(const CrossValConfig& cfg);

/**
 * Section 3.1 model toggles matching a MADFHE_STREAM policy: Off -> none,
 * Fuse -> o1, Cache -> upToAlpha, Full -> allCaching.
 */
simfhe::Optimizations cachingOptsFor(StreamPolicy p);

/**
 * The per-opt-level sweep (trace_validate --per-opt-level): run the
 * key-switch primitives (KeySwitch, Mult, Rotate) under every stream
 * policy, compare each against the analytic model at the matching opt
 * level, and check that the traced DRAM bytes drop strictly
 * monotonically along off -> fuse -> cache -> full.
 */
struct PolicySweepReport
{
    struct Row
    {
        StreamPolicy policy;
        std::vector<PrimitiveComparison> primitives;
    };
    std::vector<Row> rows;

    /** Traced bytes of `primitive` strictly decrease in lattice order. */
    bool monotonicOk(const std::string& primitive) const;
    bool allOk() const;
    std::string format() const;
};

PolicySweepReport runPolicySweep(const CrossValConfig& cfg);

/**
 * The graph-mode comparison (trace_validate --graph): the same
 * PtMatVecMult executed imperatively (LinearTransform::apply — each
 * diagonal copies the raised baby ciphertext, multiplies, adds) and
 * through the evaluation-graph executor with the fusion pass enabled
 * (applyFused — in-place raised MACs, one write + three reads per limb
 * per non-leading diagonal), both traces replayed under the same scaled
 * cache. Fusion must strictly reduce the traced DRAM bytes, closing part
 * of the ~3.8x traced/analytic gap the imperative band documents. A
 * second check demonstrates the hoisted-rotation pass: N same-source
 * rotations pay N Decomp+ModUps on the per-rotate path but exactly one
 * through the graph's HoistedRotation group. The ModUp count is the
 * structural claim (it is also the NTT/compute saving); the DRAM totals
 * are reported for context but not gated — at reduced parameters the
 * per-step digit automorphs offset the saved conversions, and under
 * streaming policies the per-rotate path never materializes digits at
 * all. Both rotation runs execute under the materializing (Off) policy
 * so the Decomp+ModUp scopes are observable in the trace.
 */
struct GraphFusionReport
{
    double matvec_imperative = 0; ///< PtMatVecMult DRAM bytes, lt.apply
    double matvec_fused = 0;      ///< PtMatVecMult DRAM bytes, graph-fused
    double matvec_analytic = 0;   ///< hoisted-model prediction
    size_t rotations = 0;         ///< same-source rotation count
    size_t rotations_hoisted = 0; ///< rotations the pass collapsed
    size_t modups_unhoisted = 0;  ///< Decomp+ModUp runs, per-rotate path
    size_t modups_hoisted = 0;    ///< Decomp+ModUp runs, hoisted group
    double rotate_unhoisted = 0;  ///< total DRAM bytes, N plain rotates
    double rotate_hoisted = 0;    ///< total DRAM bytes, hoisted group

    double imperativeRatio() const
    {
        return matvec_analytic > 0 ? matvec_imperative / matvec_analytic : 0;
    }
    double fusedRatio() const
    {
        return matvec_analytic > 0 ? matvec_fused / matvec_analytic : 0;
    }
    bool ok() const;
    std::string format() const;
};

GraphFusionReport runGraphFusion(const CrossValConfig& cfg);

} // namespace memtrace
} // namespace madfhe

#endif // MADFHE_MEMTRACE_CROSSVAL_H
