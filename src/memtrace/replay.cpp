#include "memtrace/replay.h"

#include <algorithm>
#include <limits>
#include <list>
#include <set>
#include <unordered_map>

namespace madfhe {
namespace memtrace {

namespace {

constexpr u64 kNever = std::numeric_limits<u64>::max();
constexpr u32 kNoScope = std::numeric_limits<u32>::max();

enum class Op : u8
{
    Read,
    Write,
    Alloc,
    Flush, ///< Outermost scope closed: write back dirty, invalidate all.
};

/** One block-granular cache access, pre-resolved to an output scope. */
struct Access
{
    u64 block = 0;
    Op op = Op::Read;
    Class cls = Class::Ct;
    u32 scope = kNoScope; ///< Index into ReplayResult::scopes.
};

/** Mutable accounting shared by every policy. */
struct Accounting
{
    ReplayResult& res;
    double block_bytes;

    ScopeStats&
    at(u32 scope)
    {
        return res.scopes[scope == kNoScope ? 0 : scope];
    }

    void
    chargeRead(const Access& a)
    {
        ScopeStats& s = at(a.scope);
        switch (a.cls) {
        case Class::Ct:
            s.traffic.ct_read += block_bytes;
            res.total.ct_read += block_bytes;
            break;
        case Class::Key:
            s.traffic.key_read += block_bytes;
            res.total.key_read += block_bytes;
            break;
        case Class::Pt:
            s.traffic.pt_read += block_bytes;
            res.total.pt_read += block_bytes;
            break;
        }
    }

    void
    chargeWriteback(u32 writer_scope, Class cls)
    {
        // Key/Pt material is read-only input in the analytical model (its
        // generation happens offline), so only ciphertext-class blocks
        // charge their eviction as DRAM write traffic.
        if (cls != Class::Ct)
            return;
        ScopeStats& s = at(writer_scope);
        s.traffic.ct_write += block_bytes;
        s.writebacks += 1;
        res.total.ct_write += block_bytes;
        res.writebacks += 1;
    }

    void
    countAccess(const Access& a, bool hit)
    {
        ScopeStats& s = at(a.scope);
        s.accesses += 1;
        res.accesses += 1;
        if (hit) {
            s.hits += 1;
            res.hits += 1;
        } else {
            s.misses += 1;
            res.misses += 1;
        }
    }
};

class Cache
{
  public:
    virtual ~Cache() = default;
    virtual void access(const Access& a, Accounting& acct) = 0;
    virtual void flush(Accounting& acct) = 0;
};

/** No capacity limit: every miss is compulsory. */
class InfiniteCache : public Cache
{
  public:
    void
    access(const Access& a, Accounting& acct) override
    {
        auto it = lines.find(a.block);
        const bool present = it != lines.end();
        if (a.op == Op::Alloc) {
            // Fresh buffer: dead previous contents, installed clean.
            lines[a.block] = Line{false, a.scope, a.cls};
            return;
        }
        acct.countAccess(a, present);
        if (a.op == Op::Read) {
            if (!present) {
                acct.chargeRead(a);
                lines[a.block] = Line{false, a.scope, a.cls};
            }
        } else { // Write: write-validate, no fetch.
            lines[a.block] = Line{true, a.scope, a.cls};
        }
    }

    void
    flush(Accounting& acct) override
    {
        for (const auto& [block, line] : lines) {
            (void)block;
            if (line.dirty)
                acct.chargeWriteback(line.writer, line.cls);
        }
        lines.clear();
    }

  private:
    struct Line
    {
        bool dirty;
        u32 writer;
        Class cls;
    };
    std::unordered_map<u64, Line> lines;
};

/** Set-associative LRU (ways = 0 means fully associative). */
class LruCache : public Cache
{
  public:
    LruCache(size_t capacity_blocks, size_t ways)
    {
        capacity_blocks = std::max<size_t>(1, capacity_blocks);
        if (ways == 0 || ways >= capacity_blocks) {
            num_sets = 1;
            set_ways = capacity_blocks;
        } else {
            num_sets = std::max<size_t>(1, capacity_blocks / ways);
            set_ways = ways;
        }
        sets.resize(num_sets);
    }

    void
    access(const Access& a, Accounting& acct) override
    {
        Set& set = sets[a.block % num_sets];
        auto it = set.index.find(a.block);
        const bool present = it != set.index.end();

        if (a.op == Op::Alloc) {
            if (present) {
                // Contents are dead: drop the dirty bit, no writeback.
                it->second->dirty = false;
                it->second->writer = a.scope;
                it->second->cls = a.cls;
                touch(set, it->second);
            } else {
                install(set, a, /*dirty=*/false, acct);
            }
            return;
        }

        acct.countAccess(a, present);
        if (present) {
            if (a.op == Op::Write) {
                it->second->dirty = true;
                it->second->writer = a.scope;
                it->second->cls = a.cls;
            }
            touch(set, it->second);
            return;
        }
        if (a.op == Op::Read)
            acct.chargeRead(a);
        install(set, a, /*dirty=*/a.op == Op::Write, acct);
    }

    void
    flush(Accounting& acct) override
    {
        for (Set& set : sets) {
            for (const Line& line : set.lru)
                if (line.dirty)
                    acct.chargeWriteback(line.writer, line.cls);
            set.lru.clear();
            set.index.clear();
        }
    }

  private:
    struct Line
    {
        u64 block;
        bool dirty;
        u32 writer;
        Class cls;
    };
    struct Set
    {
        std::list<Line> lru; ///< MRU at front.
        std::unordered_map<u64, std::list<Line>::iterator> index;
    };

    void
    touch(Set& set, std::list<Line>::iterator it)
    {
        set.lru.splice(set.lru.begin(), set.lru, it);
    }

    void
    install(Set& set, const Access& a, bool dirty, Accounting& acct)
    {
        if (set.lru.size() >= set_ways) {
            const Line& victim = set.lru.back();
            if (victim.dirty)
                acct.chargeWriteback(victim.writer, victim.cls);
            set.index.erase(victim.block);
            set.lru.pop_back();
        }
        set.lru.push_front(Line{a.block, dirty, a.scope, a.cls});
        set.index[a.block] = set.lru.begin();
    }

    size_t num_sets = 1;
    size_t set_ways = 1;
    std::vector<Set> sets;
};

/**
 * Belady/OPT: fully associative, evicts the block whose next use is
 * farthest in the future. Requires the per-access next-use indices
 * (precomputed by the caller), so it runs as an offline lower bound.
 */
class BeladyCache : public Cache
{
  public:
    BeladyCache(size_t capacity_blocks, const std::vector<u64>& next_use)
        : capacity(std::max<size_t>(1, capacity_blocks)), nu(next_use)
    {
    }

    /** The caller must bump cursor in lockstep with the access stream. */
    u64 cursor = 0;

    void
    access(const Access& a, Accounting& acct) override
    {
        const u64 my_next = nu[cursor];
        auto it = lines.find(a.block);
        const bool present = it != lines.end();

        if (a.op == Op::Alloc) {
            if (present) {
                it->second.dirty = false;
                it->second.writer = a.scope;
                it->second.cls = a.cls;
                reorder(a.block, it->second, my_next);
            } else {
                install(a, /*dirty=*/false, my_next, acct);
            }
            return;
        }

        acct.countAccess(a, present);
        if (present) {
            if (a.op == Op::Write) {
                it->second.dirty = true;
                it->second.writer = a.scope;
                it->second.cls = a.cls;
            }
            reorder(a.block, it->second, my_next);
            return;
        }
        if (a.op == Op::Read)
            acct.chargeRead(a);
        install(a, /*dirty=*/a.op == Op::Write, my_next, acct);
    }

    void
    flush(Accounting& acct) override
    {
        for (const auto& [block, line] : lines) {
            (void)block;
            if (line.dirty)
                acct.chargeWriteback(line.writer, line.cls);
        }
        lines.clear();
        order.clear();
    }

  private:
    struct Line
    {
        bool dirty;
        u32 writer;
        Class cls;
        u64 next_use;
    };

    void
    reorder(u64 block, Line& line, u64 next)
    {
        order.erase({line.next_use, block});
        line.next_use = next;
        order.insert({next, block});
    }

    void
    install(const Access& a, bool dirty, u64 next, Accounting& acct)
    {
        lines[a.block] = Line{dirty, a.scope, a.cls, next};
        order.insert({next, a.block});
        if (lines.size() > capacity) {
            // Evict the farthest-next-use block (possibly the one just
            // installed — equivalent to cache bypass, which OPT allows).
            auto victim = std::prev(order.end());
            auto vit = lines.find(victim->second);
            if (vit->second.dirty)
                acct.chargeWriteback(vit->second.writer, vit->second.cls);
            lines.erase(vit);
            order.erase(victim);
        }
    }

    size_t capacity;
    const std::vector<u64>& nu;
    std::unordered_map<u64, Line> lines;
    std::set<std::pair<u64, u64>> order; ///< (next_use, block).
};

} // namespace

const ScopeStats*
ReplayResult::scope(const std::string& name) const
{
    for (const ScopeStats& s : scopes)
        if (s.name == name)
            return &s;
    return nullptr;
}

ReplayResult
replay(const Trace& trace, const ReplayConfig& config)
{
    MAD_REQUIRE(config.block_bytes > 0, "replay needs a nonzero block size");

    ReplayResult res;
    res.scopes.push_back(ScopeStats{"(unscoped)", {}, 0, 0, 0, 0});

    // Resolve scope names to aggregated output slots (by name, in order
    // of first appearance as an *outermost* scope).
    std::unordered_map<std::string, u32> scope_slot;
    auto slotFor = [&](const std::string& name) -> u32 {
        auto it = scope_slot.find(name);
        if (it != scope_slot.end())
            return it->second;
        u32 id = static_cast<u32>(res.scopes.size());
        res.scopes.push_back(ScopeStats{name, {}, 0, 0, 0, 0});
        scope_slot.emplace(name, id);
        return id;
    };

    // Pass 1: flatten events into block-granular accesses with resolved
    // outermost-scope attribution and explicit flush markers.
    std::vector<Access> accesses;
    accesses.reserve(trace.events.size() * 2);
    size_t depth = 0;
    u32 current = kNoScope;
    for (const Event& ev : trace.events) {
        switch (ev.kind) {
        case Kind::ScopeBegin:
            if (depth == 0) {
                MAD_CHECK(ev.addr < trace.scope_names.size(),
                      "trace scope id out of range");
                current = slotFor(trace.scope_names[ev.addr]);
            }
            ++depth;
            continue;
        case Kind::ScopeEnd:
            if (depth > 0)
                --depth;
            if (depth == 0) {
                current = kNoScope;
                if (config.flush_at_top_scope)
                    accesses.push_back(Access{0, Op::Flush, Class::Ct, 0});
            }
            continue;
        case Kind::Read:
        case Kind::Write:
        case Kind::Alloc: {
            const Op op = ev.kind == Kind::Read    ? Op::Read
                          : ev.kind == Kind::Write ? Op::Write
                                                   : Op::Alloc;
            const u64 first = ev.addr / config.block_bytes;
            const u64 last = (ev.addr + ev.bytes - 1) / config.block_bytes;
            for (u64 b = first; b <= last; ++b)
                accesses.push_back(Access{b, op, ev.cls, current});
            continue;
        }
        }
    }

    const size_t capacity_blocks =
        std::max<size_t>(1, config.capacity_bytes / config.block_bytes);

    // Belady needs the next-use index of every access.
    std::vector<u64> next_use;
    if (config.policy == ReplayConfig::Policy::Belady) {
        next_use.assign(accesses.size(), kNever);
        std::unordered_map<u64, u64> seen;
        for (size_t i = accesses.size(); i-- > 0;) {
            if (accesses[i].op == Op::Flush)
                continue;
            auto [it, inserted] = seen.try_emplace(accesses[i].block, i);
            if (!inserted) {
                next_use[i] = it->second;
                it->second = i;
            }
        }
    }

    InfiniteCache infinite;
    LruCache lru(capacity_blocks, config.ways);
    BeladyCache belady(capacity_blocks, next_use);
    Cache* cache = nullptr;
    switch (config.policy) {
    case ReplayConfig::Policy::Infinite:
        cache = &infinite;
        break;
    case ReplayConfig::Policy::Lru:
        cache = &lru;
        break;
    case ReplayConfig::Policy::Belady:
        cache = &belady;
        break;
    }

    Accounting acct{res, static_cast<double>(config.block_bytes)};
    for (size_t i = 0; i < accesses.size(); ++i) {
        belady.cursor = i;
        if (accesses[i].op == Op::Flush)
            cache->flush(acct);
        else
            cache->access(accesses[i], acct);
    }
    cache->flush(acct); // final writeback of anything still dirty

    return res;
}

} // namespace memtrace
} // namespace madfhe
