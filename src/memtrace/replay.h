/**
 * @file
 * Trace replay: turn a captured limb-access event stream (trace.h) into
 * DRAM bytes moved under a pluggable on-chip cache model. This is the
 * executable counterpart of SimFHE's analytical DRAM accounting — the
 * cross-validation driver compares the two per primitive.
 *
 * Cache semantics (chosen to mirror the analytical model's conventions):
 *  - block-granular, write-back, write-validate (a write miss installs
 *    the block dirty without fetching it — kernels produce whole limbs,
 *    so there is nothing to fetch), LRU or Belady/OPT replacement;
 *  - an Alloc event installs its blocks clean at zero traffic (the model
 *    never charges for materializing a fresh buffer);
 *  - a dirty block pays one DRAM write when evicted or flushed;
 *  - traffic is attributed to the *outermost* enclosing trace scope, so
 *    one scope per primitive op yields per-op DRAM totals.
 */
#ifndef MADFHE_MEMTRACE_REPLAY_H
#define MADFHE_MEMTRACE_REPLAY_H

#include <string>
#include <vector>

#include "memtrace/trace.h"

namespace madfhe {
namespace memtrace {

/** DRAM bytes by traffic class; mirrors simfhe::Cost's DRAM fields. */
struct Traffic
{
    double ct_read = 0;
    double ct_write = 0;
    double key_read = 0;
    double pt_read = 0;

    double readBytes() const { return ct_read + key_read + pt_read; }
    double bytes() const { return readBytes() + ct_write; }

    Traffic&
    operator+=(const Traffic& o)
    {
        ct_read += o.ct_read;
        ct_write += o.ct_write;
        key_read += o.key_read;
        pt_read += o.pt_read;
        return *this;
    }
};

struct ReplayConfig
{
    enum class Policy
    {
        Infinite, ///< Compulsory misses only (footprint lower bound).
        Lru,      ///< Set-associative LRU.
        Belady,   ///< Fully-associative OPT (offline upper bound).
    };

    Policy policy = Policy::Lru;
    /** On-chip capacity in bytes (ignored by Infinite). */
    size_t capacity_bytes = 32ull * 1024 * 1024;
    /** Associativity for Lru; 0 = fully associative. */
    size_t ways = 0;
    /** Cache block (line) size. Limb-sized blocks match the analytical
     *  model's limb-granularity accounting. */
    size_t block_bytes = 8192;
    /**
     * Write back and invalidate everything when the outermost scope
     * closes, so each primitive is measured cold — the same independence
     * assumption the analytical per-primitive costs make.
     */
    bool flush_at_top_scope = true;
};

/** Per-(outermost-)scope replay accounting. */
struct ScopeStats
{
    std::string name;
    Traffic traffic;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
};

struct ReplayResult
{
    Traffic total;
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;
    /** Aggregated by scope name, in order of first appearance. Events
     *  outside any scope land in "(unscoped)". */
    std::vector<ScopeStats> scopes;

    /** Lookup by scope name; nullptr when absent. */
    const ScopeStats* scope(const std::string& name) const;
};

/** Replay a captured trace through the configured cache. */
ReplayResult replay(const Trace& trace, const ReplayConfig& config);

} // namespace memtrace
} // namespace madfhe

#endif // MADFHE_MEMTRACE_REPLAY_H
