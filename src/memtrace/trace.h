/**
 * @file
 * Limb-granularity memory-access tracing — the observability layer that
 * lets the executable CKKS stack (src/ring, src/ckks, src/boot) be
 * cross-checked against SimFHE's analytical DRAM model.
 *
 * The hot kernels (NTT/iNTT, basis conversion, key-switch inner product,
 * automorphism, rescale, pointwise ops) emit one Read/Write event per limb
 * they touch — the same granularity SimFHE accounts DRAM traffic at. A
 * replay engine (replay.h) then turns the event stream into DRAM bytes
 * moved under a chosen cache model.
 *
 * Overhead contract: every instrumentation site is guarded by a single
 * relaxed atomic load (`tracingEnabled()`), placed outside the coefficient
 * loops (at most a handful of checks per limb per kernel call). Defining
 * MADFHE_MEMTRACE_DISABLED compiles all of it out entirely.
 */
#ifndef MADFHE_MEMTRACE_TRACE_H
#define MADFHE_MEMTRACE_TRACE_H

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "support/common.h"

namespace madfhe {
namespace memtrace {

/** What a trace event describes. */
enum class Kind : u8
{
    Read,       ///< A kernel consumed [addr, addr + bytes).
    Write,      ///< A kernel produced [addr, addr + bytes).
    Alloc,      ///< A buffer came into existence (contents undefined/zero).
    ScopeBegin, ///< Start of a named operation scope (addr = name id).
    ScopeEnd,   ///< End of the innermost scope (addr = name id).
};

/** Traffic class, mirroring simfhe::Cost's DRAM categories. */
enum class Class : u8
{
    Ct,  ///< Ciphertext / working-set limbs (the default).
    Key, ///< Switching-key material.
    Pt,  ///< Encoded plaintext operands.
};

struct Event
{
    /**
     * Normalized byte address (scope-name id for Scope* events). The sink
     * translates raw pointers into a deterministic virtual address space
     * keyed by Alloc/first-access order, so replay results do not depend
     * on the run-to-run heap layout (or on which pool thread's allocator
     * arena a temporary came from).
     */
    u64 addr = 0;
    u32 bytes = 0;  ///< Span length; 0 for scope events.
    Kind kind = Kind::Read;
    Class cls = Class::Ct;
};

/** A captured event stream plus the scope-name table it refers to. */
struct Trace
{
    std::vector<Event> events;
    std::vector<std::string> scope_names;

    bool empty() const { return events.empty(); }
};

/**
 * Monotonic flow meter: total data bytes (Read + Write events) recorded
 * since process start, bumped at record() time. Monotonic on purpose —
 * consumers (telemetry spans) diff two readings, so TraceSink::clear()
 * must not rewind it mid-span. Within a serial-spine span the delta is
 * exact: parallelForRange flushes every chunk buffer before returning.
 * Declared in both configs so TraceSink::record compiles under
 * MADFHE_MEMTRACE_DISABLED (where the bump is dead code).
 */
inline std::atomic<u64>&
dataBytesCounter()
{
    static std::atomic<u64> counter{0};
    return counter;
}

#ifndef MADFHE_MEMTRACE_DISABLED

/** Global on/off switch; one relaxed load on every instrumentation site. */
inline std::atomic<bool>&
tracingFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

inline bool
tracingEnabled()
{
    return tracingFlag().load(std::memory_order_relaxed);
}

inline u64
tracedDataBytes()
{
    return dataBytesCounter().load(std::memory_order_relaxed);
}

#else

constexpr bool
tracingEnabled()
{
    return false;
}

constexpr u64
tracedDataBytes()
{
    return 0;
}

#endif // MADFHE_MEMTRACE_DISABLED

/**
 * Thread-local staging buffer for events recorded inside one chunk of a
 * parallel region. While a buffer is bound (bindThreadBuffer), the
 * recording thread appends raw events here without touching the global
 * sink; TraceSink::flush() then commits the buffer under the sink lock.
 * Classification against region tags and scope-name interning are
 * deferred to flush time, so as long as chunks are flushed in ascending
 * chunk order the committed stream is bit-identical to a serial run of
 * the same code (parallelForRange guarantees that order).
 */
class TraceBuffer
{
  public:
    bool empty() const { return staged.empty(); }
    size_t size() const { return staged.size(); }
    void
    clear()
    {
        staged.clear();
        local_names.clear();
    }

  private:
    friend class TraceSink;
    struct Staged
    {
        u64 addr = 0;
        u32 bytes = 0;
        Kind kind = Kind::Read;
        i32 name = -1; ///< index into local_names for ScopeBegin events
    };
    std::vector<Staged> staged;
    std::vector<std::string> local_names;
};

/**
 * The process-wide trace collector. Thread-safe (one mutex around the
 * event stream). Scope nesting is recorded in-stream, so scoped
 * attribution assumes scopes open and close on the serial spine of the
 * computation; parallel chunks record data events into TraceBuffers that
 * are committed in deterministic order (see TraceBuffer).
 */
class TraceSink
{
  public:
    static TraceSink& instance();

    /** Start recording (does not clear previously recorded events). */
    void enable();
    /** Stop recording; region tags are kept. */
    void disable();
    /** Drop all recorded events (keeps region tags and scope names). */
    void clear();

    /** Record a data event. No-op unless tracing is enabled. */
    void record(Kind kind, const void* addr, size_t bytes);

    /** Push/pop a named operation scope. */
    void beginScope(const std::string& name);
    void endScope();

    /**
     * Classify the address range as Key or Pt material (Ct is the
     * default and needs no tag). Tags are advisory metadata consulted at
     * record() time; an Alloc event over a tagged range retires the tag,
     * so recycled heap addresses fall back to Ct. Unlike record(), tags
     * are accepted while tracing is disabled — key material is typically
     * created during setup, before the measured region starts.
     */
    void tagRegion(const void* addr, size_t bytes, Class cls);

    /** Copy out everything recorded so far. */
    Trace snapshot() const;

    size_t eventCount() const;

    /**
     * Redirect this thread's record()/scope calls into `buf` (nullptr
     * restores direct recording). Used by parallelForRange; prefer the
     * RAII ThreadBufferBinding over calling this directly.
     */
    static void bindThreadBuffer(TraceBuffer* buf);

    /**
     * Commit a staged buffer to the global stream and clear it. Callers
     * must flush the buffers of a parallel region in ascending chunk
     * order to keep the stream deterministic.
     */
    void flush(TraceBuffer& buf);

  private:
    TraceSink() = default;

    Class classify(u64 addr) const;
    u32 internScopeName(const std::string& name);
    /** record() body once the sink mutex is held. */
    void recordLocked(Kind kind, u64 addr, u32 bytes);
    /** Map a raw address into the deterministic virtual space. */
    u64 translate(Kind kind, u64 addr, u32 bytes);

    mutable std::mutex mu;
    std::vector<Event> events;
    std::vector<std::string> scope_names;
    /** start -> (end, class); non-overlapping by construction. */
    std::vector<std::pair<u64, std::pair<u64, Class>>> regions;
    /** real start -> (real end, virtual start): live traced buffers. */
    std::vector<std::pair<u64, std::pair<u64, u64>>> vregions;
    /** Bump pointer of the virtual space (Alloc/first-access order). */
    u64 next_vaddr = 1ull << 20;
};

/** RAII thread-buffer binding for one chunk of a parallel region. */
class ThreadBufferBinding
{
  public:
    explicit ThreadBufferBinding(TraceBuffer* buf)
    {
        TraceSink::bindThreadBuffer(buf);
    }
    ~ThreadBufferBinding() { TraceSink::bindThreadBuffer(nullptr); }
    ThreadBufferBinding(const ThreadBufferBinding&) = delete;
    ThreadBufferBinding& operator=(const ThreadBufferBinding&) = delete;
};

/**
 * RAII operation scope: `TraceScope s("KeySwitch");`. Captures nothing
 * when tracing is disabled at entry (and ignores a mid-scope enable, so
 * Begin/End events always pair up).
 */
class TraceScope
{
  public:
    explicit TraceScope(const char* name)
    {
        if (tracingEnabled()) {
            active = true;
            TraceSink::instance().beginScope(name);
        }
    }
    ~TraceScope()
    {
        if (active)
            TraceSink::instance().endScope();
    }
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

  private:
    bool active = false;
};

} // namespace memtrace
} // namespace madfhe

// Instrumentation macros. Sites pay one relaxed atomic load when tracing
// is compiled in, and disappear entirely under MADFHE_MEMTRACE_DISABLED.
#ifndef MADFHE_MEMTRACE_DISABLED

#define MAD_TRACE_READ(ptr, nbytes)                                        \
    do {                                                                   \
        if (::madfhe::memtrace::tracingEnabled())                          \
            ::madfhe::memtrace::TraceSink::instance().record(              \
                ::madfhe::memtrace::Kind::Read, (ptr), (nbytes));          \
    } while (0)
#define MAD_TRACE_WRITE(ptr, nbytes)                                       \
    do {                                                                   \
        if (::madfhe::memtrace::tracingEnabled())                          \
            ::madfhe::memtrace::TraceSink::instance().record(              \
                ::madfhe::memtrace::Kind::Write, (ptr), (nbytes));         \
    } while (0)
#define MAD_TRACE_ALLOC(ptr, nbytes)                                       \
    do {                                                                   \
        if (::madfhe::memtrace::tracingEnabled())                          \
            ::madfhe::memtrace::TraceSink::instance().record(              \
                ::madfhe::memtrace::Kind::Alloc, (ptr), (nbytes));         \
    } while (0)
#define MAD_TRACE_TAG(ptr, nbytes, cls)                                    \
    ::madfhe::memtrace::TraceSink::instance().tagRegion((ptr), (nbytes),   \
                                                        (cls))
#define MAD_TRACE_SCOPE_CAT2(a, b) a##b
#define MAD_TRACE_SCOPE_CAT(a, b) MAD_TRACE_SCOPE_CAT2(a, b)
#define MAD_TRACE_SCOPE(name)                                              \
    ::madfhe::memtrace::TraceScope MAD_TRACE_SCOPE_CAT(mad_trace_scope_,   \
                                                       __LINE__)(name)

#else

#define MAD_TRACE_READ(ptr, nbytes) ((void)0)
#define MAD_TRACE_WRITE(ptr, nbytes) ((void)0)
#define MAD_TRACE_ALLOC(ptr, nbytes) ((void)0)
#define MAD_TRACE_TAG(ptr, nbytes, cls) ((void)0)
#define MAD_TRACE_SCOPE(name) ((void)0)

#endif // MADFHE_MEMTRACE_DISABLED

#endif // MADFHE_MEMTRACE_TRACE_H
