/**
 * @file
 * Registry-backed counters, gauges and histograms for the always-on
 * telemetry layer.
 *
 * Hot-path writes never take a lock: each metric is split into a fixed
 * set of cache-line-sized shards and a writing thread lands on the
 * shard picked by its (process-unique, round-robin) slot id, so two
 * pool workers bumping the same counter touch different cache lines.
 * Reads (snapshot time) sum the shards with relaxed loads — totals are
 * exact once the writers have quiesced, which is the only time the
 * exporters run.
 *
 * Metric objects are interned by name in a process-wide registry and
 * never deallocated, so call sites may cache `Counter&` references in
 * function-local statics (the TELEM_* macros in telemetry.h do exactly
 * that).
 */
#ifndef MADFHE_TELEMETRY_METRICS_H
#define MADFHE_TELEMETRY_METRICS_H

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "support/common.h"

namespace madfhe {
namespace telemetry {

/** Shard count; a power of two comfortably above typical pool sizes. */
constexpr size_t kMetricShards = 16;

/** log2-bucketed histogram resolution: bucket i counts values in
 *  [2^(i-1), 2^i), bucket 0 counts zeros. */
constexpr size_t kHistogramBuckets = 48;

namespace detail {

/** Round-robin slot for the calling thread, stable for its lifetime. */
size_t threadShard();

struct alignas(64) Shard
{
    std::atomic<u64> value{0};
};

} // namespace detail

/** Monotonic event count (ops executed, limbs transformed, faults fired). */
class Counter
{
  public:
    void
    add(u64 delta)
    {
        shards[detail::threadShard()].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    u64
    value() const
    {
        u64 sum = 0;
        for (const auto& s : shards)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

    /** Zero every shard (test/reporting reset; writers must be quiet). */
    void
    reset()
    {
        for (auto& s : shards)
            s.value.store(0, std::memory_order_relaxed);
    }

  private:
    std::array<detail::Shard, kMetricShards> shards;
};

/** Last-writer-wins instantaneous value (pool size, live bytes, level). */
class Gauge
{
  public:
    void set(i64 v) { value_.store(v, std::memory_order_relaxed); }
    void add(i64 d) { value_.fetch_add(d, std::memory_order_relaxed); }
    i64 value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<i64> value_{0};
};

/** Aggregated view of one histogram (shards merged). */
struct HistogramSnapshot
{
    u64 count = 0;
    u64 sum = 0;
    std::array<u64, kHistogramBuckets> buckets{};

    double mean() const { return count ? static_cast<double>(sum) / count : 0; }
    /**
     * Upper bound of the smallest bucket prefix covering `q` of mass.
     * Total on every input: an empty histogram reports 0 for any q,
     * q is clamped to [0, 1] (NaN reads as 0), and quantiles are
     * monotone in q — a single-sample histogram reports that sample's
     * bucket bound at every quantile, so p50 <= p95 <= p99 always
     * holds.
     */
    u64 quantileBound(double q) const;
};

/**
 * Power-of-two bucket histogram. record() costs two relaxed RMWs plus a
 * bucket increment on the caller's shard; precision (one bucket per
 * octave) is deliberate — span timings and byte volumes are compared
 * across orders of magnitude, not percent.
 */
class Histogram
{
  public:
    void
    record(u64 v)
    {
        ShardData& s = shards[detail::threadShard()];
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
        s.buckets[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;
    void reset();

    static size_t
    bucketOf(u64 v)
    {
        size_t b = 0;
        while (v != 0 && b + 1 < kHistogramBuckets) {
            v >>= 1;
            ++b;
        }
        return b;
    }

    /** Inclusive upper bound of bucket b (0 for the zero bucket). */
    static u64
    bucketUpperBound(size_t b)
    {
        return b == 0 ? 0 : (u64{1} << b) - 1;
    }

  private:
    struct alignas(64) ShardData
    {
        std::atomic<u64> count{0};
        std::atomic<u64> sum{0};
        std::array<std::atomic<u64>, kHistogramBuckets> buckets{};
    };
    std::array<ShardData, kMetricShards> shards;
};

// --- Registry ------------------------------------------------------------
// Interned by name; returned references are valid for the process
// lifetime. Lookup takes a mutex — cache the reference at the call site.

Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

struct CounterRow
{
    std::string name;
    u64 value = 0;
};

struct GaugeRow
{
    std::string name;
    i64 value = 0;
};

struct HistogramRow
{
    std::string name;
    HistogramSnapshot stats;
};

/** Name-sorted snapshots of every registered metric (zeros included). */
std::vector<CounterRow> counterRows();
std::vector<GaugeRow> gaugeRows();
std::vector<HistogramRow> histogramRows();

/** Zero every registered metric (registrations are kept). */
void resetMetrics();

} // namespace telemetry
} // namespace madfhe

#endif // MADFHE_TELEMETRY_METRICS_H
