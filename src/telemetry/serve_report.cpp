#include "telemetry/serve_report.h"

#include <cstdio>
#include <thread>

namespace madfhe {
namespace telemetry {

namespace {

/** The resilience counters the artifact always reports (0 if unset). */
const char* const kServeCounters[] = {
    "serve.requests",          "serve.errors",
    "serve.shed",              "serve.retry",
    "serve.breaker_open",      "serve.deadline_expired",
    "serve.degrade.stepdown",  "serve.degrade.restore",
    "serve.batches",           "serve.batch.coalesced",
};

u64
counterValue(const Snapshot& snap, const std::string& name)
{
    for (const auto& row : snap.counters)
        if (row.name == name)
            return row.value;
    return 0;
}

} // namespace

bool
writeServeBenchJson(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::vector<ServeBenchRow>& rows, const Snapshot& snap)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"%s\",\n", bench.c_str());
    std::fprintf(f, "  \"params\": {");
    for (size_t i = 0; i < params.size(); ++i)
        std::fprintf(f, "%s\"%s\": %s", i ? ", " : "",
                     params[i].first.c_str(), params[i].second.c_str());
    std::fprintf(f, "},\n");
    std::fprintf(f, "  \"host\": {\"hardware_concurrency\": %u},\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"results\": [\n");
    for (size_t i = 0; i < rows.size(); ++i)
        std::fprintf(f,
                     "    {\"op\": \"%s\", \"threads\": %zu, \"ns_per_op\": "
                     "%.0f, \"backend\": \"%s\"}%s\n",
                     rows[i].op.c_str(), rows[i].threads, rows[i].ns_per_op,
                     rows[i].backend.c_str(),
                     i + 1 < rows.size() ? "," : "");
    std::fprintf(f, "  ],\n");

    std::fprintf(f, "  \"latency\": {");
    bool have_latency = false;
    for (const auto& row : snap.histograms) {
        if (row.name != "serve.latency_ns")
            continue;
        std::fprintf(f,
                     "\"count\": %llu, \"p50_ns\": %llu, \"p95_ns\": %llu, "
                     "\"p99_ns\": %llu",
                     static_cast<unsigned long long>(row.stats.count),
                     static_cast<unsigned long long>(
                         row.stats.quantileBound(0.50)),
                     static_cast<unsigned long long>(
                         row.stats.quantileBound(0.95)),
                     static_cast<unsigned long long>(
                         row.stats.quantileBound(0.99)));
        have_latency = true;
        break;
    }
    if (!have_latency)
        std::fprintf(f, "\"count\": 0");
    std::fprintf(f, "},\n");

    std::fprintf(f, "  \"counters\": {");
    bool first = true;
    for (const char* name : kServeCounters) {
        std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", name,
                     static_cast<unsigned long long>(
                         counterValue(snap, name)));
        first = false;
    }
    std::fprintf(f, "},\n");

    long long degrade_level = 0;
    for (const auto& row : snap.gauges)
        if (row.name == "serve.degrade_level")
            degrade_level = static_cast<long long>(row.value);
    std::fprintf(f, "  \"degrade_level\": %lld\n", degrade_level);
    std::fprintf(f, "}\n");
    std::fclose(f);
    return true;
}

} // namespace telemetry
} // namespace madfhe
