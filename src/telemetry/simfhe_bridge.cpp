#include "telemetry/simfhe_bridge.h"

#include "ckks/stream.h"
#include "simfhe/model.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace telemetry {

namespace {

/**
 * Raw-traced bytes per modeled DRAM byte, measured at the crossval
 * bootstrap parameters with `tools/boot_profile --calibrate`. The
 * factors fold in two implementation properties the model's fused
 * accounting abstracts away: materialized temporaries (digits,
 * conversion buffers, per-baby raised products) and the EvalMod
 * schedule mismatch (two independent Chebyshev evaluations vs the
 * model's shared 9-level schedule). They are code-structure constants,
 * not parameter-dependent — re-measure after restructuring a kernel.
 */
struct CalibEntry
{
    const char* path;
    double factor;
};

constexpr CalibEntry kCalib[] = {
    // Bootstrap stages: measured under the default limb-streaming
    // policy (MADFHE_STREAM=full), model at the matching allCaching
    // opts.
    {"Bootstrap", 6.68},
    {"Bootstrap/ModRaise", 3.40},
    {"Bootstrap/CoeffToSlot", 7.37},
    {"Bootstrap/EvalMod", 5.98},
    {"Bootstrap/SlotToCoeff", 8.39},
    // Primitives: measured at the materializing baseline
    // (MADFHE_STREAM=off, model opts none).
    {"KeySwitch", 1.53},
    {"Mult", 1.99},
    {"Rotate", 1.45},
    {"PtMatVecMult", 5.91},
};

/**
 * Optimization set matching the code paths the executable stack runs.
 * The Section 3.1 caching toggles now track the ambient limb-streaming
 * policy (MADFHE_STREAM), since the key-switch hot paths execute the
 * corresponding fusion/caching level for real.
 */
simfhe::Optimizations
executedOpts()
{
    simfhe::Optimizations o;
    switch (streamPolicy()) {
    case StreamPolicy::Fuse:
        o = simfhe::Optimizations::o1();
        break;
    case StreamPolicy::Cache:
        o = simfhe::Optimizations::upToAlpha();
        break;
    case StreamPolicy::Full:
        o = simfhe::Optimizations::allCaching();
        break;
    case StreamPolicy::Off:
        o = simfhe::Optimizations::none();
        break;
    }
    o.moddown_merge = true; // Evaluator::mul defaults to merged ModDown
    o.moddown_hoist = true; // MatVecOptions default hoisting
    return o;
}

} // namespace

double
materializationFactor(const std::string& path)
{
    for (const auto& e : kCalib)
        if (path == e.path)
            return e.factor;
    return 1.0;
}

simfhe::SchemeConfig
bridgeScheme(const CkksParams& p)
{
    simfhe::SchemeConfig s;
    s.log_n = p.log_n;
    s.limb_bits = p.log_scale;
    // Model alpha = ceil((boot_limbs + 1) / dnum); the implementation's
    // alpha = ceil(chainLength / dnum), so boot_limbs = num_levels.
    s.boot_limbs = p.num_levels;
    s.dnum = p.dnum;
    return s;
}

std::vector<StagePrediction>
bootstrapPredictions(const CkksParams& p, const BootstrapShape& shape)
{
    simfhe::SchemeConfig scheme = bridgeScheme(p);
    scheme.fft_iter = shape.ctos_iters;
    const simfhe::CostModel model(scheme, simfhe::CacheConfig{},
                                  executedOpts());
    const auto b = model.bootstrapBreakdown();

    auto calibrated = [](const char* path, double model_bytes) {
        return StagePrediction{path,
                               model_bytes * materializationFactor(path)};
    };
    std::vector<StagePrediction> out;
    out.push_back(
        calibrated("Bootstrap/ModRaise", b.mod_raise.bytes()));
    out.push_back(
        calibrated("Bootstrap/CoeffToSlot", b.coeff_to_slot.bytes()));
    out.push_back(calibrated("Bootstrap/EvalMod", b.eval_mod.bytes()));
    out.push_back(
        calibrated("Bootstrap/SlotToCoeff", b.slot_to_coeff.bytes()));
    out.push_back(calibrated("Bootstrap", b.total().bytes()));
    return out;
}

std::vector<StagePrediction>
primitivePredictions(const CkksParams& p, size_t level, size_t diagonals)
{
    const simfhe::CostModel model(bridgeScheme(p), simfhe::CacheConfig{},
                                  executedOpts());
    auto calibrated = [](const char* path, double model_bytes) {
        return StagePrediction{path,
                               model_bytes * materializationFactor(path)};
    };
    std::vector<StagePrediction> out;
    out.push_back(calibrated("KeySwitch", model.keySwitch(level).bytes()));
    out.push_back(calibrated("Mult", model.mult(level).bytes()));
    out.push_back(calibrated("Rotate", model.rotate(level).bytes()));
    if (diagonals > 0)
        out.push_back(calibrated(
            "PtMatVecMult", model.ptMatVecMult(level, diagonals).bytes()));
    return out;
}

void
installBootstrapPredictions(const CkksParams& p, const BootstrapShape& shape)
{
    for (const auto& s : bootstrapPredictions(p, shape))
        setModelPrediction(s.path, s.model_bytes);
}

void
installPrimitivePredictions(const CkksParams& p, size_t level,
                            size_t diagonals)
{
    for (const auto& s : primitivePredictions(p, level, diagonals))
        setModelPrediction(s.path, s.model_bytes);
}

} // namespace telemetry
} // namespace madfhe
