/**
 * @file
 * Telemetry exporters: a human-readable table, machine JSON
 * ("madfhe.telemetry.v1"), and Chrome trace-event JSON that loads
 * directly into chrome://tracing / Perfetto.
 *
 * Snapshots are taken with writers quiescent (between operations, at
 * process exit, or after ThreadPool work has drained); the rows carry
 * everything the formatters need so a snapshot can also be asserted on
 * directly in tests.
 */
#ifndef MADFHE_TELEMETRY_EXPORT_H
#define MADFHE_TELEMETRY_EXPORT_H

#include <optional>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace telemetry {

/** One aggregated span-tree node, flattened in DFS (creation) order. */
struct SpanRow
{
    std::string path; ///< "Bootstrap/EvalMod/Mult"
    std::string name; ///< leaf name
    size_t depth = 0; ///< nesting depth (top-level spans are 0)
    u64 count = 0;
    u64 total_ns = 0;
    u64 max_ns = 0;
    u64 traced_bytes = 0;
    u64 pool_count = 0;
    /** SimFHE-predicted DRAM bytes for this path, when installed. */
    std::optional<double> model_bytes;

    double
    meanNs() const
    {
        return count ? static_cast<double>(total_ns) / count : 0.0;
    }
    /** measured/modeled - 1; nullopt without a prediction. */
    std::optional<double>
    divergence() const
    {
        if (!model_bytes || *model_bytes <= 0.0)
            return std::nullopt;
        return static_cast<double>(traced_bytes) / *model_bytes - 1.0;
    }
};

struct Snapshot
{
    Level level = Level::Off;
    std::vector<CounterRow> counters;
    std::vector<GaugeRow> gauges;
    std::vector<HistogramRow> histograms;
    std::vector<SpanRow> spans;

    /** Span row with this exact path, or nullptr. */
    const SpanRow* span(const std::string& path) const;
};

/** Spans with count > 0, DFS order, predictions attached. */
std::vector<SpanRow> spanRows();

/** Full snapshot of every registered metric and span. */
Snapshot snapshot();

/** Fixed-width table: spans (tree-indented), then counters/gauges/hists. */
std::string formatTable(const Snapshot& snap);

/** Machine JSON, schema "madfhe.telemetry.v1". */
std::string toJson(const Snapshot& snap);

/** One buffered Chrome trace event (complete span or instant marker). */
struct ChromeEvent
{
    std::string name;
    u32 tid = 0;
    u64 ts_ns = 0;
    u64 dur_ns = 0;
    bool instant = false;
};

/** Copy of all buffered events, unsorted (exporters sort by timestamp). */
std::vector<ChromeEvent> collectChromeEvents();

/** Chrome trace-event JSON (the {"traceEvents": [...]} object form). */
std::string chromeTraceJson();

} // namespace telemetry
} // namespace madfhe

#endif // MADFHE_TELEMETRY_EXPORT_H
