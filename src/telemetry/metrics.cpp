#include "telemetry/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace madfhe {
namespace telemetry {

namespace detail {

size_t
threadShard()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
    return slot;
}

} // namespace detail

u64
HistogramSnapshot::quantileBound(double q) const
{
    if (count == 0)
        return 0;
    // Clamp q into [0, 1) rank space: NaN/negative read as the minimum,
    // q >= 1.0 as the maximum sample. Without the upper clamp the scan
    // target equals `count`, the prefix loop never fires, and a
    // single-sample histogram reports the 2^47-1 top-bucket bound
    // instead of its own bucket.
    u64 target = 0;
    if (q >= 1.0)
        target = count - 1;
    else if (q > 0.0)
        target = static_cast<u64>(q * static_cast<double>(count));
    u64 seen = 0;
    size_t last_nonempty = 0;
    for (size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        last_nonempty = b;
        seen += buckets[b];
        if (seen > target)
            return Histogram::bucketUpperBound(b);
    }
    // Shard-racy snapshots can leave sum(buckets) < count; fall back to
    // the highest bucket that actually holds samples, never the array
    // end.
    return Histogram::bucketUpperBound(last_nonempty);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    for (const auto& s : shards) {
        out.count += s.count.load(std::memory_order_relaxed);
        out.sum += s.sum.load(std::memory_order_relaxed);
        for (size_t b = 0; b < kHistogramBuckets; ++b)
            out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    return out;
}

void
Histogram::reset()
{
    for (auto& s : shards) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        for (auto& b : s.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

namespace {

/**
 * The registry maps are std::map so snapshot rows come out name-sorted
 * without a separate sort, and because node-based maps never move the
 * owned metric objects (call sites hold references across insertions).
 */
struct Registry
{
    std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry&
registry()
{
    static Registry* r = new Registry(); // leaked: outlives static dtors
    return *r;
}

} // namespace

Counter&
counter(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto& slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
gauge(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto& slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
histogram(const std::string& name)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto& slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<CounterRow>
counterRows()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<CounterRow> rows;
    rows.reserve(r.counters.size());
    for (const auto& [name, c] : r.counters)
        rows.push_back({name, c->value()});
    return rows;
}

std::vector<GaugeRow>
gaugeRows()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<GaugeRow> rows;
    rows.reserve(r.gauges.size());
    for (const auto& [name, g] : r.gauges)
        rows.push_back({name, g->value()});
    return rows;
}

std::vector<HistogramRow>
histogramRows()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<HistogramRow> rows;
    rows.reserve(r.histograms.size());
    for (const auto& [name, h] : r.histograms)
        rows.push_back({name, h->snapshot()});
    return rows;
}

void
resetMetrics()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto& [name, c] : r.counters)
        c->reset();
    for (auto& [name, g] : r.gauges)
        g->reset();
    for (auto& [name, h] : r.histograms)
        h->reset();
}

} // namespace telemetry
} // namespace madfhe
