#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>

namespace madfhe {
namespace telemetry {
namespace json {

namespace {

struct Parser
{
    std::string_view text;
    size_t pos = 0;
    bool failed = false;
    /** Defense against adversarial nesting blowing the real stack. */
    int depth = 0;
    static constexpr int kMaxDepth = 64;

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    Value
    fail()
    {
        failed = true;
        return Value{};
    }

    Value
    parseValue()
    {
        if (++depth > kMaxDepth)
            return fail();
        skipWs();
        Value v;
        if (pos >= text.size()) {
            v = fail();
        } else if (text[pos] == '{') {
            v = parseObject();
        } else if (text[pos] == '[') {
            v = parseArray();
        } else if (text[pos] == '"') {
            v.type = Value::Type::String;
            v.str = parseString();
        } else if (text.compare(pos, 4, "true") == 0) {
            v.type = Value::Type::Bool;
            v.boolean = true;
            pos += 4;
        } else if (text.compare(pos, 5, "false") == 0) {
            v.type = Value::Type::Bool;
            v.boolean = false;
            pos += 5;
        } else if (text.compare(pos, 4, "null") == 0) {
            v.type = Value::Type::Null;
            pos += 4;
        } else {
            v = parseNumber();
        }
        --depth;
        return v;
    }

    Value
    parseNumber()
    {
        const size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool any = false;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '-' || text[pos] == '+')) {
            any = true;
            ++pos;
        }
        if (!any)
            return fail();
        Value v;
        v.type = Value::Type::Number;
        v.number = std::strtod(std::string(text.substr(start, pos - start)).c_str(),
                               nullptr);
        return v;
    }

    std::string
    parseString()
    {
        std::string out;
        if (pos >= text.size() || text[pos] != '"') {
            failed = true;
            return out;
        }
        ++pos;
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size()) {
                failed = true;
                return out;
            }
            char e = text[pos++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                // Keep it simple: decode BMP escapes to UTF-8; the
                // telemetry emitters never produce them, but a hand-edited
                // baseline might.
                if (pos + 4 > text.size()) {
                    failed = true;
                    return out;
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        failed = true;
                        return out;
                    }
                }
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
            }
            default:
                failed = true;
                return out;
            }
        }
        if (pos >= text.size()) {
            failed = true;
            return out;
        }
        ++pos; // closing quote
        return out;
    }

    Value
    parseArray()
    {
        Value v;
        v.type = Value::Type::Array;
        ++pos; // '['
        skipWs();
        if (consume(']'))
            return v;
        while (!failed) {
            v.array.push_back(parseValue());
            if (failed)
                break;
            if (consume(']'))
                return v;
            if (!consume(','))
                return fail();
        }
        return fail();
    }

    Value
    parseObject()
    {
        Value v;
        v.type = Value::Type::Object;
        ++pos; // '{'
        skipWs();
        if (consume('}'))
            return v;
        while (!failed) {
            skipWs();
            std::string key = parseString();
            if (failed || !consume(':'))
                return fail();
            v.object.emplace_back(std::move(key), parseValue());
            if (failed)
                break;
            if (consume('}'))
                return v;
            if (!consume(','))
                return fail();
        }
        return fail();
    }
};

} // namespace

std::optional<Value>
parse(std::string_view text)
{
    Parser p{text};
    Value v = p.parseValue();
    if (p.failed)
        return std::nullopt;
    p.skipWs();
    if (p.pos != text.size())
        return std::nullopt;
    return v;
}

std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xFF);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace json
} // namespace telemetry
} // namespace madfhe
