/**
 * @file
 * Live measured-vs-modeled DRAM comparison: installs SimFHE CostModel
 * predictions onto telemetry span paths so the exporters can report
 * divergence between the bytes the instrumented kernels actually traced
 * and the bytes the analytical model says the primitive should move.
 *
 * Two accounting systems meet here, and they do not speak the same
 * units natively:
 *
 *  - Span `traced_bytes` are *raw* memtrace flow — every limb Read and
 *    Write the instrumented kernels emit while the span is open, with
 *    no cache model applied. Raw flow is deterministic (independent of
 *    replay cache size and thread count), which is what makes it safe
 *    to compare at runtime.
 *  - The CostModel predicts *DRAM* limb moves under its fused
 *    accounting, which assumes intermediates the implementation
 *    materializes (digit polynomials, conversion temporaries, per-baby
 *    raised products) are never spilled.
 *
 * The bridge reconciles them with per-stage materialization factors:
 * fixed ratios of raw-traced to modeled bytes that are a property of
 * the implementation's code structure (which temporaries it spills),
 * not of the ring size, and therefore stable across parameter sets.
 * They were measured with `tools/boot_profile --calibrate` and are
 * baked in below; re-run that tool after restructuring a kernel's
 * temporaries and update the table.
 */
#ifndef MADFHE_TELEMETRY_SIMFHE_BRIDGE_H
#define MADFHE_TELEMETRY_SIMFHE_BRIDGE_H

#include <string>
#include <vector>

#include "ckks/params.h"
#include "simfhe/config.h"

namespace madfhe {
namespace telemetry {

/** The bootstrap schedule shape the executable Bootstrapper runs. */
struct BootstrapShape
{
    size_t ctos_iters = 3;
    size_t stoc_iters = 3;
    size_t sine_degree = 71;
};

/** One span path and its calibrated predicted raw-traced bytes. */
struct StagePrediction
{
    std::string path;   ///< exact span-tree path, e.g. "Bootstrap/EvalMod"
    double model_bytes; ///< calibrated prediction in bytes
};

/**
 * Materialization factor for a span path (raw traced bytes per modeled
 * DRAM byte); 1.0 when the path has no measured factor.
 */
double materializationFactor(const std::string& path);

/** SchemeConfig matched to `p` (same mapping crossval uses). */
simfhe::SchemeConfig bridgeScheme(const CkksParams& p);

/**
 * Calibrated per-stage bootstrap predictions for the span paths the
 * Bootstrapper opens: Bootstrap, Bootstrap/ModRaise,
 * Bootstrap/CoeffToSlot, Bootstrap/EvalMod, Bootstrap/SlotToCoeff.
 */
std::vector<StagePrediction> bootstrapPredictions(const CkksParams& p,
                                                  const BootstrapShape& shape);

/**
 * Calibrated predictions for the top-level primitive spans (KeySwitch,
 * Mult, Rotate) at limb count `level`, plus PtMatVecMult when
 * `diagonals` > 0.
 */
std::vector<StagePrediction> primitivePredictions(const CkksParams& p,
                                                  size_t level,
                                                  size_t diagonals = 0);

/** Compute and install the bootstrap predictions (setModelPrediction). */
void installBootstrapPredictions(const CkksParams& p,
                                 const BootstrapShape& shape);

/** Compute and install the primitive predictions. */
void installPrimitivePredictions(const CkksParams& p, size_t level,
                                 size_t diagonals = 0);

} // namespace telemetry
} // namespace madfhe

#endif // MADFHE_TELEMETRY_SIMFHE_BRIDGE_H
