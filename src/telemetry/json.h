/**
 * @file
 * Minimal JSON value model + recursive-descent parser.
 *
 * The telemetry exporters emit JSON, the perf gate diffs two emitted
 * files, and the tests round-trip a snapshot through its JSON form —
 * all three need the same small reader, so it lives here rather than
 * pulling a third-party dependency into the build. Numbers are parsed
 * as double (every field we emit fits), object member order is
 * preserved, and inputs the grammar rejects yield std::nullopt rather
 * than a partially-filled value.
 */
#ifndef MADFHE_TELEMETRY_JSON_H
#define MADFHE_TELEMETRY_JSON_H

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/common.h"

namespace madfhe {
namespace telemetry {
namespace json {

struct Value
{
    enum class Type : u8
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Member lookup (first match); nullptr when absent or not an object. */
    const Value*
    find(std::string_view key) const
    {
        if (type != Type::Object)
            return nullptr;
        for (const auto& [k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    /** Member's number, or `fallback` when absent / not a number. */
    double
    numberOr(std::string_view key, double fallback) const
    {
        const Value* v = find(key);
        return v && v->isNumber() ? v->number : fallback;
    }

    /** Member's string, or `fallback` when absent / not a string. */
    std::string
    stringOr(std::string_view key, const std::string& fallback) const
    {
        const Value* v = find(key);
        return v && v->isString() ? v->str : fallback;
    }
};

/** Parse one JSON document (trailing whitespace allowed, nothing else). */
std::optional<Value> parse(std::string_view text);

/** Escape `s` for embedding inside a JSON string literal. */
std::string escape(std::string_view s);

} // namespace json
} // namespace telemetry
} // namespace madfhe

#endif // MADFHE_TELEMETRY_JSON_H
