/**
 * @file
 * Always-on observability for the CKKS stack: leveled gating, RAII
 * hierarchical spans, and Chrome-trace event capture.
 *
 * MAD's thesis is that FHE lives or dies by bytes moved per operation,
 * so the spans record exactly that: wall-clock, invocation count,
 * thread attribution (serial spine vs pool task), and — whenever the
 * memtrace instrumentation is live — the traced DRAM bytes that flowed
 * while the span was open. A per-span model hook (model predictions
 * installed by telemetry/simfhe_bridge.h) lets the exporters report
 * measured-vs-modeled DRAM divergence at runtime, per primitive.
 *
 * Gating: MADFHE_TELEMETRY=off|counters|spans|trace (read once, on
 * first use; setLevel() overrides programmatically).
 *
 *   off       every TELEM_* site is one relaxed atomic load
 *   counters  counters/gauges/histograms accumulate
 *   spans     + span tree (wall-clock, counts, traced bytes)
 *   trace     + per-span Chrome trace events (chrome://tracing)
 *
 * Overhead contract matches memtrace and faultinject: the disarmed
 * fast path is a single relaxed load, hot sites sit on the serial
 * spine (never inside per-coefficient loops), and armed counters cost
 * one sharded relaxed fetch_add.
 *
 * Exit hooks (opt-in, set alongside MADFHE_TELEMETRY):
 *   MADFHE_TELEMETRY_REPORT=table|json   print a report to stderr at exit
 *   MADFHE_TELEMETRY_TRACE_OUT=<path>    write the Chrome trace at exit
 */
#ifndef MADFHE_TELEMETRY_TELEMETRY_H
#define MADFHE_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <optional>
#include <string>
#include <string_view>

#include "support/common.h"
#include "telemetry/metrics.h"

namespace madfhe {
namespace telemetry {

enum class Level : u8
{
    Off = 0,
    Counters = 1,
    Spans = 2,
    Trace = 3,
};

const char* levelName(Level l);
std::optional<Level> levelFromName(std::string_view name);

namespace detail {
/**
 * The global level flag. First call reads MADFHE_TELEMETRY (and the
 * report/trace-out exit knobs) and installs the fault-injection fire
 * hook; afterwards it is one static-guard check plus the atomic.
 */
std::atomic<u8>& levelFlag();
} // namespace detail

inline Level
level()
{
    return static_cast<Level>(
        detail::levelFlag().load(std::memory_order_relaxed));
}

/** The single disarmed-cost check every TELEM_* site performs. */
inline bool
enabled(Level at)
{
    return level() >= at;
}

/** Programmatic override (tests, tools); also installs the fault hook. */
void setLevel(Level l);

/** Nanoseconds since process start (steady clock). */
u64 nowNs();

// --- Spans ---------------------------------------------------------------

/**
 * One node of the process-wide span aggregation tree. Identity is the
 * nesting path ("Bootstrap/EvalMod/Mult"); stats are relaxed atomics so
 * concurrent spans over the same node never serialize. Nodes are
 * created once (lock-free sibling-list lookup, mutex only on first
 * creation) and never freed.
 */
struct SpanNode
{
    const char* name;  ///< leaf name (string literal at the site)
    std::string path;  ///< "parent-path/name", root children are bare
    SpanNode* parent;  ///< nullptr only for the implicit root
    u64 seq;           ///< creation order, for stable report ordering

    std::atomic<SpanNode*> first_child{nullptr};
    std::atomic<SpanNode*> next_sibling{nullptr};

    std::atomic<u64> count{0};
    std::atomic<u64> total_ns{0};
    std::atomic<u64> max_ns{0};
    /** Traced DRAM bytes (memtrace) that flowed while the span was open. */
    std::atomic<u64> traced_bytes{0};
    /** How many of `count` entries ran inside a pool worker task. */
    std::atomic<u64> pool_count{0};

    SpanNode(const char* name_, std::string path_, SpanNode* parent_,
             u64 seq_)
        : name(name_), path(std::move(path_)), parent(parent_), seq(seq_)
    {
    }
};

namespace detail {
/** Find-or-create the child of `parent` named `name`. */
SpanNode* childNode(SpanNode* parent, const char* name);
/** This thread's innermost open span node (root when none). */
SpanNode*& currentNode();
/** Root of the span tree. */
SpanNode* rootNode();
/** Append one completed Chrome duration event for `node`. */
void emitChromeSpan(const SpanNode* node, u64 start_ns, u64 dur_ns);
/** Traced data bytes observed so far (0 when memtrace is compiled out). */
u64 tracedBytesNow();
} // namespace detail

/**
 * RAII hierarchical span. Constructed disarmed (one relaxed load) when
 * the level is below `spans`. The name must be a string literal (it is
 * stored by pointer and compared by content only on first encounter).
 */
class Span
{
  public:
    explicit Span(const char* name)
    {
        if (!enabled(Level::Spans))
            return;
        SpanNode*& cur = detail::currentNode();
        saved = cur;
        node = detail::childNode(cur ? cur : detail::rootNode(), name);
        cur = node;
        bytes0 = detail::tracedBytesNow();
        t0 = nowNs();
    }

    ~Span()
    {
        if (!node)
            return;
        const u64 dur = nowNs() - t0;
        const u64 bytes = detail::tracedBytesNow() - bytes0;
        node->count.fetch_add(1, std::memory_order_relaxed);
        node->total_ns.fetch_add(dur, std::memory_order_relaxed);
        node->traced_bytes.fetch_add(bytes, std::memory_order_relaxed);
        u64 prev = node->max_ns.load(std::memory_order_relaxed);
        while (dur > prev &&
               !node->max_ns.compare_exchange_weak(
                   prev, dur, std::memory_order_relaxed))
            ;
        if (inPoolTask())
            node->pool_count.fetch_add(1, std::memory_order_relaxed);
        detail::currentNode() = saved;
        if (enabled(Level::Trace))
            detail::emitChromeSpan(node, t0, dur);
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

  private:
    static bool inPoolTask();

    SpanNode* node = nullptr;
    SpanNode* saved = nullptr;
    u64 t0 = 0;
    u64 bytes0 = 0;
};

// --- Instant events (fault injection, annotations) -----------------------

/**
 * Record a fault-injection firing: bumps `fault.fired` (and a per-site
 * counter) at level >= counters, and appends an instant Chrome event at
 * level trace so fault-campaign timelines are visible next to the spans.
 */
void recordFaultEvent(const char* site, const char* kind, u64 nth);

/** Free-form instant marker on the Chrome timeline (trace level only). */
void recordInstant(const std::string& name);

// --- Model hook ----------------------------------------------------------

/**
 * Install the SimFHE-predicted DRAM bytes for the span at `path`
 * (exact span-tree path, e.g. "Bootstrap/EvalMod"). Exporters attach
 * the prediction and report measured/predicted divergence.
 */
void setModelPrediction(const std::string& path, double bytes);
void clearModelPredictions();
/** Prediction for `path`, or nullopt. */
std::optional<double> modelPrediction(const std::string& path);

// --- Maintenance ---------------------------------------------------------

/**
 * Zero all metrics and span stats and drop buffered Chrome events and
 * model predictions. Registrations and tree structure survive (call
 * sites hold references). Writers must be quiescent.
 */
void resetAll();

} // namespace telemetry
} // namespace madfhe

// --- Site macros ---------------------------------------------------------
// Each site is one relaxed load when telemetry is off. The metric
// reference is resolved once (function-local static) the first time the
// site runs armed.

#define MAD_TELEM_CAT2(a, b) a##b
#define MAD_TELEM_CAT(a, b) MAD_TELEM_CAT2(a, b)

/** RAII hierarchical span; `name` must be a string literal. */
#define TELEM_SPAN(name)                                                   \
    ::madfhe::telemetry::Span MAD_TELEM_CAT(mad_telem_span_,               \
                                            __LINE__)(name)

/** Add `delta` to the named counter. */
#define TELEM_COUNT(name, delta)                                           \
    do {                                                                   \
        if (::madfhe::telemetry::enabled(                                  \
                ::madfhe::telemetry::Level::Counters)) {                   \
            static ::madfhe::telemetry::Counter& mad_telem_c =             \
                ::madfhe::telemetry::counter(name);                        \
            mad_telem_c.add(delta);                                        \
        }                                                                  \
    } while (0)

/** Set the named gauge to `v`. */
#define TELEM_GAUGE_SET(name, v)                                           \
    do {                                                                   \
        if (::madfhe::telemetry::enabled(                                  \
                ::madfhe::telemetry::Level::Counters)) {                   \
            static ::madfhe::telemetry::Gauge& mad_telem_g =               \
                ::madfhe::telemetry::gauge(name);                          \
            mad_telem_g.set(v);                                            \
        }                                                                  \
    } while (0)

/** Record `v` into the named histogram. */
#define TELEM_HIST(name, v)                                                \
    do {                                                                   \
        if (::madfhe::telemetry::enabled(                                  \
                ::madfhe::telemetry::Level::Counters)) {                   \
            static ::madfhe::telemetry::Histogram& mad_telem_h =           \
                ::madfhe::telemetry::histogram(name);                      \
            mad_telem_h.record(v);                                         \
        }                                                                  \
    } while (0)

#endif // MADFHE_TELEMETRY_TELEMETRY_H
