/**
 * @file
 * BENCH_serve.json writer: the serving-side analogue of
 * BENCH_kernels.json (bench/kernels_common.h). One call captures a load
 * run — parameter block, per-op throughput rows in the same
 * {op, threads, ns_per_op, backend} shape, request-latency percentiles
 * from the serve.latency_ns histogram, and the resilience counters
 * (shed/retry/breaker/degrade) — so CI can archive serving performance
 * next to kernel performance with one artifact schema family.
 */
#ifndef MADFHE_TELEMETRY_SERVE_REPORT_H
#define MADFHE_TELEMETRY_SERVE_REPORT_H

#include <string>
#include <utility>
#include <vector>

#include "telemetry/export.h"

namespace madfhe {
namespace telemetry {

/** One throughput row (same shape as a BENCH_kernels.json result). */
struct ServeBenchRow
{
    std::string op;      ///< workload / primitive name
    size_t threads = 0;  ///< client workers driving the row
    double ns_per_op= 0; ///< wall-clock ns per completed request
    std::string backend; ///< "real" | "virtual"
};

/**
 * Write the artifact. `params` entries are (key, pre-rendered JSON
 * value) pairs — pass numbers bare ("1000") and strings quoted
 * ("\"virtual\""). Percentiles and the serve.* counters/gauges are
 * pulled out of `snap`. Returns false on I/O error.
 */
bool writeServeBenchJson(
    const std::string& path, const std::string& bench,
    const std::vector<std::pair<std::string, std::string>>& params,
    const std::vector<ServeBenchRow>& rows, const Snapshot& snap);

} // namespace telemetry
} // namespace madfhe

#endif // MADFHE_TELEMETRY_SERVE_REPORT_H
