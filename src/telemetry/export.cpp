#include "telemetry/export.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "telemetry/json.h"

namespace madfhe {
namespace telemetry {

namespace {

void
collectSpanRows(const SpanNode* node, size_t depth, std::vector<SpanRow>& out)
{
    // Sibling lists are head-inserted; gather and order by creation seq
    // so reports are stable run to run.
    std::vector<const SpanNode*> children;
    for (const SpanNode* c =
             node->first_child.load(std::memory_order_acquire);
         c; c = c->next_sibling.load(std::memory_order_relaxed))
        children.push_back(c);
    std::sort(children.begin(), children.end(),
              [](const SpanNode* a, const SpanNode* b) {
                  return a->seq < b->seq;
              });
    for (const SpanNode* c : children) {
        const u64 count = c->count.load(std::memory_order_relaxed);
        if (count > 0) {
            SpanRow row;
            row.path = c->path;
            row.name = c->name;
            row.depth = depth;
            row.count = count;
            row.total_ns = c->total_ns.load(std::memory_order_relaxed);
            row.max_ns = c->max_ns.load(std::memory_order_relaxed);
            row.traced_bytes =
                c->traced_bytes.load(std::memory_order_relaxed);
            row.pool_count = c->pool_count.load(std::memory_order_relaxed);
            row.model_bytes = modelPrediction(c->path);
            out.push_back(std::move(row));
            collectSpanRows(c, depth + 1, out);
        } else {
            // A never-entered node can still have entered descendants
            // (stats were reset mid-tree); surface them at this depth.
            collectSpanRows(c, depth, out);
        }
    }
}

std::string
humanBytes(double b)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1);
    if (b >= 1024.0 * 1024.0 * 1024.0)
        os << b / (1024.0 * 1024.0 * 1024.0) << " GiB";
    else if (b >= 1024.0 * 1024.0)
        os << b / (1024.0 * 1024.0) << " MiB";
    else if (b >= 1024.0)
        os << b / 1024.0 << " KiB";
    else
        os << b << " B";
    return os.str();
}

std::string
humanNs(double ns)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (ns >= 1e9)
        os << ns / 1e9 << " s";
    else if (ns >= 1e6)
        os << ns / 1e6 << " ms";
    else if (ns >= 1e3)
        os << ns / 1e3 << " us";
    else
        os << ns << " ns";
    return os.str();
}

} // namespace

const SpanRow*
Snapshot::span(const std::string& path) const
{
    for (const auto& row : spans)
        if (row.path == path)
            return &row;
    return nullptr;
}

std::vector<SpanRow>
spanRows()
{
    std::vector<SpanRow> rows;
    collectSpanRows(detail::rootNode(), 0, rows);
    return rows;
}

Snapshot
snapshot()
{
    Snapshot snap;
    snap.level = level();
    snap.counters = counterRows();
    snap.gauges = gaugeRows();
    snap.histograms = histogramRows();
    snap.spans = spanRows();
    return snap;
}

std::string
formatTable(const Snapshot& snap)
{
    std::ostringstream os;
    os << "== madfhe telemetry (level: " << levelName(snap.level) << ") ==\n";

    if (!snap.spans.empty()) {
        os << std::left << std::setw(36) << "span" << std::right
           << std::setw(10) << "count" << std::setw(12) << "total"
           << std::setw(12) << "mean" << std::setw(12) << "traced"
           << std::setw(12) << "model" << std::setw(8) << "div%"
           << std::setw(7) << "pool%" << "\n";
        for (const auto& row : snap.spans) {
            std::string label(2 * row.depth, ' ');
            label += row.name;
            if (label.size() > 35)
                label.resize(35);
            os << std::left << std::setw(36) << label << std::right
               << std::setw(10) << row.count << std::setw(12)
               << humanNs(static_cast<double>(row.total_ns)) << std::setw(12)
               << humanNs(row.meanNs()) << std::setw(12)
               << humanBytes(static_cast<double>(row.traced_bytes));
            if (row.model_bytes)
                os << std::setw(12) << humanBytes(*row.model_bytes);
            else
                os << std::setw(12) << "-";
            auto div = row.divergence();
            if (div) {
                std::ostringstream d;
                d << std::showpos << std::fixed << std::setprecision(1)
                  << *div * 100.0;
                os << std::setw(8) << d.str();
            } else {
                os << std::setw(8) << "-";
            }
            const double poolpct =
                row.count ? 100.0 * static_cast<double>(row.pool_count) /
                                static_cast<double>(row.count)
                          : 0.0;
            os << std::setw(6) << std::fixed << std::setprecision(0)
               << poolpct << "%\n";
        }
    }

    bool any_counter = false;
    for (const auto& c : snap.counters)
        any_counter |= c.value != 0;
    if (any_counter) {
        os << "-- counters --\n";
        for (const auto& c : snap.counters)
            if (c.value != 0)
                os << "  " << std::left << std::setw(40) << c.name
                   << std::right << std::setw(16) << c.value << "\n";
    }
    bool any_gauge = false;
    for (const auto& g : snap.gauges)
        any_gauge |= g.value != 0;
    if (any_gauge) {
        os << "-- gauges --\n";
        for (const auto& g : snap.gauges)
            if (g.value != 0)
                os << "  " << std::left << std::setw(40) << g.name
                   << std::right << std::setw(16) << g.value << "\n";
    }
    for (const auto& h : snap.histograms) {
        if (h.stats.count == 0)
            continue;
        os << "-- histogram " << h.name << " --\n";
        os << "  count " << h.stats.count << "  mean "
           << humanNs(h.stats.mean()) << "  ~p50 "
           << h.stats.quantileBound(0.50) << "  ~p99 "
           << h.stats.quantileBound(0.99) << "\n";
    }
    return os.str();
}

std::string
toJson(const Snapshot& snap)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"madfhe.telemetry.v1\",\n";
    os << "  \"level\": \"" << levelName(snap.level) << "\",\n";

    os << "  \"counters\": [";
    for (size_t i = 0; i < snap.counters.size(); ++i) {
        os << (i ? ", " : "") << "{\"name\": \""
           << json::escape(snap.counters[i].name)
           << "\", \"value\": " << snap.counters[i].value << "}";
    }
    os << "],\n";

    os << "  \"gauges\": [";
    for (size_t i = 0; i < snap.gauges.size(); ++i) {
        os << (i ? ", " : "") << "{\"name\": \""
           << json::escape(snap.gauges[i].name)
           << "\", \"value\": " << snap.gauges[i].value << "}";
    }
    os << "],\n";

    os << "  \"histograms\": [";
    for (size_t i = 0; i < snap.histograms.size(); ++i) {
        const auto& h = snap.histograms[i];
        os << (i ? ",\n    " : "") << "{\"name\": \""
           << json::escape(h.name) << "\", \"count\": " << h.stats.count
           << ", \"sum\": " << h.stats.sum << ", \"buckets\": [";
        // Trailing zero buckets are elided; the reader treats absent
        // buckets as zero.
        size_t last = h.stats.buckets.size();
        while (last > 0 && h.stats.buckets[last - 1] == 0)
            --last;
        for (size_t b = 0; b < last; ++b)
            os << (b ? ", " : "") << h.stats.buckets[b];
        os << "]}";
    }
    os << "],\n";

    os << "  \"spans\": [";
    for (size_t i = 0; i < snap.spans.size(); ++i) {
        const auto& row = snap.spans[i];
        os << (i ? ",\n    " : "") << "{\"path\": \""
           << json::escape(row.path) << "\", \"depth\": " << row.depth
           << ", \"count\": " << row.count
           << ", \"wall_ns\": " << row.total_ns
           << ", \"max_ns\": " << row.max_ns
           << ", \"traced_bytes\": " << row.traced_bytes
           << ", \"pool_count\": " << row.pool_count;
        if (row.model_bytes) {
            os << ", \"model_bytes\": " << std::fixed << std::setprecision(1)
               << *row.model_bytes;
            auto div = row.divergence();
            if (div)
                os << ", \"divergence\": " << std::setprecision(6) << *div;
        }
        os << "}";
    }
    os << "]\n}\n";
    return os.str();
}

std::string
chromeTraceJson()
{
    std::vector<ChromeEvent> events = collectChromeEvents();
    std::sort(events.begin(), events.end(),
              [](const ChromeEvent& a, const ChromeEvent& b) {
                  return a.ts_ns < b.ts_ns;
              });
    std::ostringstream os;
    os << "{\"traceEvents\": [\n";
    for (size_t i = 0; i < events.size(); ++i) {
        const ChromeEvent& e = events[i];
        os << (i ? ",\n" : "") << "  {\"name\": \"" << json::escape(e.name)
           << "\", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": "
           << std::fixed << std::setprecision(3)
           << static_cast<double>(e.ts_ns) / 1e3;
        if (e.instant)
            os << ", \"ph\": \"i\", \"s\": \"g\"}";
        else
            os << ", \"ph\": \"X\", \"dur\": "
               << static_cast<double>(e.dur_ns) / 1e3 << "}";
    }
    os << "\n], \"displayTimeUnit\": \"ms\"}\n";
    return os.str();
}

} // namespace telemetry
} // namespace madfhe
