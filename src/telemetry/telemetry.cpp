#include "telemetry/telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "memtrace/trace.h"
#include "support/faultinject.h"
#include "support/threadpool.h"
#include "telemetry/export.h"

namespace madfhe {
namespace telemetry {

const char*
levelName(Level l)
{
    switch (l) {
    case Level::Off:
        return "off";
    case Level::Counters:
        return "counters";
    case Level::Spans:
        return "spans";
    case Level::Trace:
        return "trace";
    }
    return "?";
}

std::optional<Level>
levelFromName(std::string_view name)
{
    for (Level l : {Level::Off, Level::Counters, Level::Spans, Level::Trace})
        if (name == levelName(l))
            return l;
    return std::nullopt;
}

u64
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
}

namespace {

/** Sequential id for Chrome-trace thread attribution. */
u32
threadId()
{
    static std::atomic<u32> next{0};
    thread_local const u32 id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

// --- Chrome event capture ------------------------------------------------
// Per-thread buffers, registered globally and owned jointly by the
// thread (thread_local shared_ptr) and the registry, so events survive
// pool reconfiguration (setGlobalThreads destroys worker threads).

struct EventBuffer
{
    std::mutex mu;
    std::vector<ChromeEvent> events;
};

struct EventRegistry
{
    std::mutex mu;
    std::vector<std::shared_ptr<EventBuffer>> buffers;
};

EventRegistry&
eventRegistry()
{
    static EventRegistry* r = new EventRegistry(); // outlives static dtors
    return *r;
}

EventBuffer&
threadEventBuffer()
{
    thread_local std::shared_ptr<EventBuffer> buf = [] {
        auto b = std::make_shared<EventBuffer>();
        EventRegistry& r = eventRegistry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
appendEvent(ChromeEvent ev)
{
    EventBuffer& b = threadEventBuffer();
    std::lock_guard<std::mutex> lock(b.mu);
    // Backstop against unbounded growth in long-running servers: the
    // trace level is a debugging mode, not a flight recorder.
    if (b.events.size() >= 1u << 20)
        return;
    b.events.push_back(std::move(ev));
}

// --- Model predictions ---------------------------------------------------

struct PredictionTable
{
    std::mutex mu;
    std::map<std::string, double> bytes_by_path;
};

PredictionTable&
predictions()
{
    static PredictionTable* t = new PredictionTable();
    return *t;
}

// --- Fault hook ----------------------------------------------------------

void
faultFired(const char* site, faultinject::Kind kind, u64 nth)
{
    recordFaultEvent(site, faultinject::kindName(kind), nth);
}

void
installFaultHook()
{
    faultinject::setFireHook(&faultFired);
}

// --- Exit reporting ------------------------------------------------------

void
atExitReport()
{
    const char* mode = std::getenv("MADFHE_TELEMETRY_REPORT");
    if (!mode)
        mode = "table"; // enabling telemetry implies an exit report
    if (mode[0] != '\0' && mode[0] != '0') {
        Snapshot snap = snapshot();
        std::string out = std::string_view(mode) == "json" ? toJson(snap)
                                                           : formatTable(snap);
        std::fputs(out.c_str(), stderr);
    }
    if (const char* path = std::getenv("MADFHE_TELEMETRY_TRACE_OUT")) {
        std::ofstream os(path);
        if (os)
            os << chromeTraceJson();
        else
            std::fprintf(stderr,
                         "madfhe: cannot write Chrome trace to '%s'\n", path);
    }
}

u8
initialLevel()
{
    Level l = Level::Off;
    if (const char* env = std::getenv("MADFHE_TELEMETRY")) {
        auto parsed = levelFromName(env);
        if (parsed) {
            l = *parsed;
        } else if (env[0] != '\0') {
            std::fprintf(stderr,
                         "madfhe: ignoring MADFHE_TELEMETRY='%s' "
                         "(expected off|counters|spans|trace)\n",
                         env);
        }
    }
    if (l != Level::Off) {
        installFaultHook();
        std::atexit(&atExitReport);
    }
    return static_cast<u8>(l);
}

} // namespace

namespace detail {

std::atomic<u8>&
levelFlag()
{
    static std::atomic<u8> flag{initialLevel()};
    return flag;
}

SpanNode*
rootNode()
{
    static SpanNode* root = new SpanNode("", "", nullptr, 0);
    return root;
}

SpanNode*&
currentNode()
{
    thread_local SpanNode* cur = nullptr;
    return cur;
}

SpanNode*
childNode(SpanNode* parent, const char* name)
{
    // Lock-free lookup: sibling lists only ever grow by head insertion.
    for (SpanNode* c = parent->first_child.load(std::memory_order_acquire);
         c; c = c->next_sibling.load(std::memory_order_relaxed)) {
        if (c->name == name || std::string_view(c->name) == name)
            return c;
    }
    static std::mutex create_mu;
    static std::atomic<u64> next_seq{1};
    std::lock_guard<std::mutex> lock(create_mu);
    // Re-check: another thread may have created it while we waited.
    for (SpanNode* c = parent->first_child.load(std::memory_order_acquire);
         c; c = c->next_sibling.load(std::memory_order_relaxed)) {
        if (c->name == name || std::string_view(c->name) == name)
            return c;
    }
    std::string path = parent->path.empty()
                           ? std::string(name)
                           : parent->path + "/" + name;
    SpanNode* node = new SpanNode(
        name, std::move(path), parent,
        next_seq.fetch_add(1, std::memory_order_relaxed));
    node->next_sibling.store(
        parent->first_child.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    parent->first_child.store(node, std::memory_order_release);
    return node;
}

void
emitChromeSpan(const SpanNode* node, u64 start_ns, u64 dur_ns)
{
    appendEvent(ChromeEvent{node->path, threadId(), start_ns, dur_ns,
                            /*instant=*/false});
}

u64
tracedBytesNow()
{
    return memtrace::tracedDataBytes();
}

} // namespace detail

bool
Span::inPoolTask()
{
    return ThreadPool::inTask();
}

void
setLevel(Level l)
{
    detail::levelFlag().store(static_cast<u8>(l), std::memory_order_relaxed);
    if (l != Level::Off)
        installFaultHook();
}

void
recordFaultEvent(const char* site, const char* kind, u64 nth)
{
    if (!enabled(Level::Counters))
        return;
    // Rare slow path (a fault actually fired): string composition and
    // registry lookup are fine here.
    counter("fault.fired").add(1);
    counter(std::string("fault.fired.") + site).add(1);
    if (enabled(Level::Trace))
        appendEvent(ChromeEvent{std::string("fault:") + site + ":" + kind +
                                    ":#" + std::to_string(nth),
                                threadId(), nowNs(), 0, /*instant=*/true});
}

void
recordInstant(const std::string& name)
{
    if (!enabled(Level::Trace))
        return;
    appendEvent(ChromeEvent{name, threadId(), nowNs(), 0, /*instant=*/true});
}

void
setModelPrediction(const std::string& path, double bytes)
{
    PredictionTable& t = predictions();
    std::lock_guard<std::mutex> lock(t.mu);
    t.bytes_by_path[path] = bytes;
}

void
clearModelPredictions()
{
    PredictionTable& t = predictions();
    std::lock_guard<std::mutex> lock(t.mu);
    t.bytes_by_path.clear();
}

std::optional<double>
modelPrediction(const std::string& path)
{
    PredictionTable& t = predictions();
    std::lock_guard<std::mutex> lock(t.mu);
    auto it = t.bytes_by_path.find(path);
    if (it == t.bytes_by_path.end())
        return std::nullopt;
    return it->second;
}

std::vector<ChromeEvent>
collectChromeEvents()
{
    EventRegistry& r = eventRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<ChromeEvent> out;
    for (const auto& buf : r.buffers) {
        std::lock_guard<std::mutex> block(buf->mu);
        out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
    return out;
}

namespace {

void
resetSpanStats(SpanNode* node)
{
    node->count.store(0, std::memory_order_relaxed);
    node->total_ns.store(0, std::memory_order_relaxed);
    node->max_ns.store(0, std::memory_order_relaxed);
    node->traced_bytes.store(0, std::memory_order_relaxed);
    node->pool_count.store(0, std::memory_order_relaxed);
    for (SpanNode* c = node->first_child.load(std::memory_order_acquire); c;
         c = c->next_sibling.load(std::memory_order_relaxed))
        resetSpanStats(c);
}

} // namespace

void
resetAll()
{
    resetMetrics();
    resetSpanStats(detail::rootNode());
    EventRegistry& r = eventRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto& buf : r.buffers) {
        std::lock_guard<std::mutex> block(buf->mu);
        buf->events.clear();
    }
    clearModelPredictions();
}

} // namespace telemetry
} // namespace madfhe
