#include "ckks/context.h"

#include <cmath>

#include "rns/primegen.h"
#include "support/security.h"

namespace madfhe {

CkksContext::CkksContext(const CkksParams& params) : parms(params)
{
    parms.validate();
    const size_t n = parms.n();

    // Base prime q_0 (wide, for decryption headroom), then L scale primes
    // chosen as close to 2^log_scale as possible so the running scale stays
    // near Delta through rescaling.
    std::vector<u64> q_primes =
        generateNttPrimes(parms.first_prime_bits, n, 1);
    {
        u64 target = 1ULL << parms.log_scale;
        for (size_t i = 0; i < parms.num_levels; ++i) {
            q_primes.push_back(
                generateNttPrimeNear(target, n, q_primes));
        }
    }

    // P primes: alpha primes of the widest class so that P covers any
    // single key-switching digit product (hybrid key switching).
    std::vector<u64> p_primes;
    for (size_t i = 0; i < parms.alpha(); ++i) {
        std::vector<u64> used = q_primes;
        used.insert(used.end(), p_primes.begin(), p_primes.end());
        p_primes.push_back(
            generateNttPrimeNear(1ULL << parms.first_prime_bits, n, used));
    }

    ring_ctx = std::make_shared<RingContext>(n, q_primes, p_primes);

    const size_t num_q = ring_ctx->numQ();
    p_mod_q.resize(num_q);
    p_inv_mod_q.resize(num_q);
    for (size_t i = 0; i < num_q; ++i) {
        const Modulus& qi = ring_ctx->modulus(i);
        u64 p_mod = 1;
        for (u64 p : p_primes)
            p_mod = qi.mul(p_mod, qi.reduce(p));
        p_mod_q[i] = p_mod;
        p_inv_mod_q[i] = qi.inverse(p_mod);
    }

    rescale_inv.resize(num_q + 1);
    merged_inv.resize(num_q + 1);
    for (size_t lvl = 2; lvl <= num_q; ++lvl) {
        u64 q_top = ring_ctx->modulus(lvl - 1).value();
        rescale_inv[lvl].resize(lvl - 1);
        merged_inv[lvl].resize(lvl - 1);
        for (size_t i = 0; i + 1 < lvl; ++i) {
            const Modulus& qi = ring_ctx->modulus(i);
            rescale_inv[lvl][i] = qi.inverse(qi.reduce(q_top));
            merged_inv[lvl][i] =
                qi.mul(rescale_inv[lvl][i], p_inv_mod_q[i]);
        }
    }
}

size_t
CkksContext::digitSize(size_t j, size_t level) const
{
    size_t start = digitStart(j);
    MAD_CHECK(start < level, "digit beyond ciphertext level");
    return std::min(alpha(), level - start);
}

std::vector<u32>
CkksContext::raisedIndices(size_t level) const
{
    std::vector<u32> idx = ring_ctx->qIndices(level);
    auto p = ring_ctx->pIndices();
    idx.insert(idx.end(), p.begin(), p.end());
    return idx;
}

std::vector<u32>
CkksContext::keyIndices() const
{
    return raisedIndices(maxLevel());
}

const BasisConverter&
CkksContext::modUpConverter(size_t digit, size_t level) const
{
    auto key = std::make_pair(digit, level);
    auto it = modup_cache.find(key);
    if (it != modup_cache.end())
        return *it->second;

    size_t start = digitStart(digit);
    size_t size = digitSize(digit, level);
    std::vector<u32> from_idx;
    for (size_t i = 0; i < size; ++i)
        from_idx.push_back(static_cast<u32>(start + i));
    std::vector<u32> to_idx;
    for (size_t i = 0; i < level; ++i) {
        if (i < start || i >= start + size)
            to_idx.push_back(static_cast<u32>(i));
    }
    for (u32 p : ring_ctx->pIndices())
        to_idx.push_back(p);

    auto conv = std::make_unique<BasisConverter>(ring_ctx->basisOf(from_idx),
                                                 ring_ctx->basisOf(to_idx));
    return *modup_cache.emplace(key, std::move(conv)).first->second;
}

const BasisConverter&
CkksContext::modDownConverter(size_t level) const
{
    auto it = moddown_cache.find(level);
    if (it != moddown_cache.end())
        return *it->second;
    auto conv = std::make_unique<BasisConverter>(
        ring_ctx->basisOf(ring_ctx->pIndices()),
        ring_ctx->basisOf(ring_ctx->qIndices(level)));
    return *moddown_cache.emplace(level, std::move(conv)).first->second;
}

const BasisConverter&
CkksContext::mergedModDownConverter(size_t level) const
{
    MAD_REQUIRE(level >= 2, "merged ModDown needs at least two limbs");
    auto it = merged_cache.find(level);
    if (it != merged_cache.end())
        return *it->second;
    std::vector<u32> from_idx;
    from_idx.push_back(static_cast<u32>(level - 1)); // the rescale limb
    for (u32 p : ring_ctx->pIndices())
        from_idx.push_back(p);
    auto conv = std::make_unique<BasisConverter>(
        ring_ctx->basisOf(from_idx),
        ring_ctx->basisOf(ring_ctx->qIndices(level - 1)));
    return *merged_cache.emplace(level, std::move(conv)).first->second;
}

double
CkksContext::logQP() const
{
    double acc = 0;
    for (size_t i = 0; i < ring_ctx->numModuli(); ++i)
        acc += std::log2(static_cast<double>(ring_ctx->modulus(i).value()));
    return acc;
}

double
CkksContext::securityBits() const
{
    return estimateSecurityBits(parms.log_n, logQP());
}

u64
CkksContext::rescaleInv(size_t level, size_t i) const
{
    MAD_CHECK(level >= 2 && level < rescale_inv.size() && i + 1 < level,
          "rescaleInv index out of range");
    return rescale_inv[level][i];
}

u64
CkksContext::mergedInv(size_t level, size_t i) const
{
    MAD_CHECK(level >= 2 && level < merged_inv.size() && i + 1 < level,
          "mergedInv index out of range");
    return merged_inv[level][i];
}

} // namespace madfhe
