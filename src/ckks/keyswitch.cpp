#include "ckks/keyswitch.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "memtrace/trace.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_decompose("ckks.decompose",
                                    faultinject::kLimbKinds);
faultinject::Site g_fault_innerprod("ckks.ksk_innerprod",
                                    faultinject::kLimbKinds);
faultinject::Site g_fault_moddown("ckks.moddown", faultinject::kLimbKinds);
faultinject::Site g_fault_moddown_merged("ckks.moddown_merged",
                                         faultinject::kLimbKinds);
faultinject::Site g_fault_pmodup("ckks.pmodup", faultinject::kLimbKinds);
/** Guards every limb the streaming engine produces (raised (u, v),
 *  pinned caches, final outputs) — the digest checkpoint for
 *  intermediates that never exist as materialized polynomials. */
faultinject::Site g_fault_stream("keyswitch.stream", faultinject::kLimbKinds);

/** Per-policy trace/telemetry label (string literals: stable pointers
 *  for the span tree and deterministic bytes in the trace stream). */
const char*
streamScopeName(StreamPolicy p)
{
    switch (p) {
    case StreamPolicy::Fuse:
        return "Stream[fuse]";
    case StreamPolicy::Cache:
        return "Stream[cache]";
    case StreamPolicy::Full:
        return "Stream[full]";
    default:
        return "Stream[off]";
    }
}

/** Track the high-water mark of pinned streaming cache bytes. */
void
notePeakResident(size_t bytes)
{
    static std::atomic<i64> peak{0};
    i64 b = static_cast<i64>(bytes);
    i64 cur = peak.load(std::memory_order_relaxed);
    while (b > cur &&
           !peak.compare_exchange_weak(cur, b, std::memory_order_relaxed)) {
    }
    TELEM_GAUGE_SET("stream.peak_resident_bytes", std::max(b, cur));
}
} // namespace

KeySwitcher::KeySwitcher(std::shared_ptr<const CkksContext> ctx_)
    : ctx(std::move(ctx_))
{
}

size_t
KeySwitcher::qLevelOf(const RnsPoly& raised) const
{
    size_t total = raised.numLimbs();
    size_t num_p = ctx->ring()->numP();
    MAD_CHECK(total > num_p, "raised polynomial missing P limbs");
    return total - num_p;
}

std::vector<RnsPoly>
KeySwitcher::decomposeAndRaise(const RnsPoly& x) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "decomposeAndRaise expects eval rep");
    MAD_TRACE_SCOPE("DecompModUp");
    TELEM_SPAN("DecompModUp");
    const size_t level = x.numLimbs();
    const size_t beta = ctx->numDigits(level);
    const size_t n = x.degree();
    auto raised_basis = ctx->raisedIndices(level);

    // iNTT all limbs once (limb-wise pass shared by every digit).
    RnsPoly x_coeff = x;
    x_coeff.toCoeff();

    // Converted limbs that still need the forward NTT, grouped by raised
    // basis position so every digit sharing a modulus goes through one
    // batched table walk (forwardBatch) instead of beta separate ones.
    std::vector<std::vector<u64*>> to_ntt(raised_basis.size());

    std::vector<RnsPoly> digits;
    digits.reserve(beta);
    for (size_t j = 0; j < beta; ++j) {
        const size_t start = ctx->digitStart(j);
        const size_t size = ctx->digitSize(j, level);

        RnsPoly raised(x.context(), raised_basis, Rep::Eval);

        // Source limbs of this digit, in coefficient rep.
        std::vector<const u64*> src;
        for (size_t i = 0; i < size; ++i)
            src.push_back(x_coeff.limb(start + i));

        // NewLimb (slot-wise) into every other limb of the raised basis;
        // targets are in coefficient rep and are NTT'd in the batched pass
        // below.
        const BasisConverter& conv = ctx->modUpConverter(j, level);
        std::vector<u64*> dst;
        for (size_t i = 0; i < raised_basis.size(); ++i) {
            u32 chain_idx = raised_basis[i];
            if (chain_idx >= start && chain_idx < start + size &&
                chain_idx < level) {
                continue; // own limb, copied below
            }
            dst.push_back(raised.limb(i));
            to_ntt[i].push_back(raised.limb(i));
        }
        conv.convert(src, n, dst);

        // Own limbs: reuse the evaluation-rep input directly
        // (Algorithm 1, line 4: no NTT needed on the input limbs).
        for (size_t i = 0; i < size; ++i) {
            MAD_TRACE_READ(x.limb(start + i), n * sizeof(u64));
            MAD_TRACE_WRITE(raised.limb(start + i), n * sizeof(u64));
            std::copy(x.limb(start + i), x.limb(start + i) + n,
                      raised.limb(start + i));
        }

        digits.push_back(std::move(raised));
    }

    // One batched NTT per raised-basis position, positions fanned out
    // across the pool: each (stage, twiddle) load is shared by all digits
    // that carry this modulus.
    parallelFor(raised_basis.size(), [&](size_t i) {
        if (!to_ntt[i].empty())
            ctx->ring()->ntt(raised_basis[i])
                .forwardBatch(to_ntt[i].data(), to_ntt[i].size());
    });
    for (RnsPoly& d : digits)
        for (size_t i = 0; i < d.numLimbs(); ++i)
            faultinject::guardLimb(g_fault_decompose, d.limb(i), n);
    return digits;
}

RaisedCiphertext
KeySwitcher::innerProduct(const std::vector<RnsPoly>& digits,
                          const SwitchingKey& ksk) const
{
    MAD_REQUIRE(!digits.empty(), "no digits to key switch");
    MAD_REQUIRE(digits.size() <= ksk.numDigits(),
            "more digits than switching-key columns");
    const size_t n = digits[0].degree();
    const auto& raised_basis = digits[0].basis();

    RaisedCiphertext out;
    out.c0 = RnsPoly(digits[0].context(), raised_basis, Rep::Eval);
    out.c1 = RnsPoly(digits[0].context(), raised_basis, Rep::Eval);
    out.q_level = qLevelOf(digits[0]);

    // When beta < dnum the trailing ksk columns are simply unused
    // (Algorithm 3, note on line 3).
    //
    // Limb-position-major so every raised-basis position is an independent
    // parallel task accumulating its own (u, v) pair; the per-(digit,
    // limb) trace events match the digit-major formulation event for
    // event, just grouped by position.
    MAD_TRACE_SCOPE("KskInnerProd");
    TELEM_SPAN("KskInnerProd");
    parallelFor(raised_basis.size(), [&](size_t i) {
        const u32 chain_idx = raised_basis[i];
        const Modulus& q = ctx->ring()->modulus(chain_idx);
        u64* u = out.c0.limb(i);
        u64* v = out.c1.limb(i);
        for (size_t j = 0; j < digits.size(); ++j) {
            const RnsPoly& d = digits[j];
            // The key basis is the identity chain, so limb position ==
            // chain index in the switching-key polynomials.
            const u64* dl = d.limb(i);
            const u64* bl = ksk.b(j).limb(chain_idx);
            const u64* al = ksk.a(j).limb(chain_idx);
            MAD_TRACE_READ(dl, n * sizeof(u64));
            MAD_TRACE_READ(bl, n * sizeof(u64));
            MAD_TRACE_READ(al, n * sizeof(u64));
            MAD_TRACE_READ(u, n * sizeof(u64));
            MAD_TRACE_READ(v, n * sizeof(u64));
            MAD_TRACE_WRITE(u, n * sizeof(u64));
            MAD_TRACE_WRITE(v, n * sizeof(u64));
            for (size_t c = 0; c < n; ++c) {
                u[c] = q.add(u[c], q.mul(dl[c], bl[c]));
                v[c] = q.add(v[c], q.mul(dl[c], al[c]));
            }
        }
    });
    // Limb-sum spot check after the inner product: the accumulated (u, v)
    // pair is the longest-lived DRAM-resident intermediate in key switch.
    for (size_t i = 0; i < raised_basis.size(); ++i) {
        faultinject::guardLimb(g_fault_innerprod, out.c0.limb(i), n);
        faultinject::guardLimb(g_fault_innerprod, out.c1.limb(i), n);
    }
    return out;
}

RnsPoly
KeySwitcher::modDown(const RnsPoly& x) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "modDown expects eval rep");
    MAD_TRACE_SCOPE("ModDown");
    TELEM_SPAN("ModDown");
    const size_t level = qLevelOf(x);
    const size_t num_p = ctx->ring()->numP();
    const size_t n = x.degree();

    // iNTT the P limbs (limb-wise).
    std::vector<std::vector<u64>> p_coeff(num_p, std::vector<u64>(n));
    auto p_indices = ctx->ring()->pIndices();
    parallelFor(num_p, [&](size_t i) {
        const u64* src = x.limb(level + i);
        MAD_TRACE_ALLOC(p_coeff[i].data(), n * sizeof(u64));
        MAD_TRACE_READ(src, n * sizeof(u64));
        MAD_TRACE_WRITE(p_coeff[i].data(), n * sizeof(u64));
        std::copy(src, src + n, p_coeff[i].data());
        ctx->ring()->ntt(p_indices[i]).inverse(p_coeff[i].data());
    });

    // NewLimb (slot-wise): correction = [x]_P converted to each q_i.
    std::vector<const u64*> src;
    for (auto& limb : p_coeff)
        src.push_back(limb.data());
    std::vector<std::vector<u64>> corr(level, std::vector<u64>(n));
    std::vector<u64*> dst;
    for (auto& limb : corr) {
        MAD_TRACE_ALLOC(limb.data(), n * sizeof(u64));
        dst.push_back(limb.data());
    }
    ctx->modDownConverter(level).convert(src, n, dst);

    // Per kept limb: NTT the correction, subtract, scale by P^{-1}.
    RnsPoly out(x.context(), ctx->ring()->qIndices(level), Rep::Eval);
    parallelFor(level, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        ctx->ring()->ntt(i).forward(corr[i].data());
        const u64 p_inv = ctx->pInvModQ(i);
        const u64 p_inv_shoup = q.shoupPrecompute(p_inv);
        const u64* xi = x.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(xi, n * sizeof(u64));
        MAD_TRACE_READ(corr[i].data(), n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = q.mulShoup(q.sub(xi[c], corr[i][c]), p_inv, p_inv_shoup);
    });
    for (size_t i = 0; i < level; ++i)
        faultinject::guardLimb(g_fault_moddown, out.limb(i), n);
    return out;
}

RnsPoly
KeySwitcher::modDownMerged(const RnsPoly& x) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "modDownMerged expects eval rep");
    MAD_TRACE_SCOPE("ModDownMerged");
    TELEM_SPAN("ModDownMerged");
    const size_t level = qLevelOf(x);
    MAD_REQUIRE(level >= 2, "merged ModDown needs at least two Q limbs");
    const size_t num_p = ctx->ring()->numP();
    const size_t n = x.degree();

    // Dropped limbs: q_(level-1) followed by the P limbs — matching the
    // source basis of mergedModDownConverter().
    std::vector<std::vector<u64>> drop_coeff(1 + num_p, std::vector<u64>(n));
    auto p_indices = ctx->ring()->pIndices();
    parallelFor(1 + num_p, [&](size_t i) {
        const u32 chain_idx = i == 0 ? static_cast<u32>(level - 1)
                                     : p_indices[i - 1];
        const u64* src = i == 0 ? x.limb(level - 1) : x.limb(level + (i - 1));
        MAD_TRACE_ALLOC(drop_coeff[i].data(), n * sizeof(u64));
        MAD_TRACE_READ(src, n * sizeof(u64));
        MAD_TRACE_WRITE(drop_coeff[i].data(), n * sizeof(u64));
        std::copy(src, src + n, drop_coeff[i].data());
        ctx->ring()->ntt(chain_idx).inverse(drop_coeff[i].data());
    });

    std::vector<const u64*> src;
    for (auto& limb : drop_coeff)
        src.push_back(limb.data());
    std::vector<std::vector<u64>> corr(level - 1, std::vector<u64>(n));
    std::vector<u64*> dst;
    for (auto& limb : corr) {
        MAD_TRACE_ALLOC(limb.data(), n * sizeof(u64));
        dst.push_back(limb.data());
    }
    ctx->mergedModDownConverter(level).convert(src, n, dst);

    RnsPoly out(x.context(), ctx->ring()->qIndices(level - 1), Rep::Eval);
    parallelFor(level - 1, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        ctx->ring()->ntt(i).forward(corr[i].data());
        const u64 inv = ctx->mergedInv(level, i);
        const u64 inv_shoup = q.shoupPrecompute(inv);
        const u64* xi = x.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(xi, n * sizeof(u64));
        MAD_TRACE_READ(corr[i].data(), n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = q.mulShoup(q.sub(xi[c], corr[i][c]), inv, inv_shoup);
    });
    for (size_t i = 0; i + 1 < level; ++i)
        faultinject::guardLimb(g_fault_moddown_merged, out.limb(i), n);
    return out;
}

RnsPoly
KeySwitcher::pModUp(const RnsPoly& y) const
{
    MAD_CHECK(y.rep() == Rep::Eval, "pModUp expects eval rep");
    MAD_TRACE_SCOPE("PModUp");
    TELEM_SPAN("PModUp");
    const size_t level = y.numLimbs();
    const size_t n = y.degree();
    RnsPoly out(y.context(), ctx->raisedIndices(level), Rep::Eval);
    parallelFor(level, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        const u64 p_mod = ctx->pModQ(i);
        const u64 p_shoup = q.shoupPrecompute(p_mod);
        const u64* yi = y.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(yi, n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = q.mulShoup(yi[c], p_mod, p_shoup);
    });
    for (size_t i = 0; i < level; ++i)
        faultinject::guardLimb(g_fault_pmodup, out.limb(i), n);
    // P limbs of P*y are identically zero (Algorithm 5, line 3).
    return out;
}

std::pair<RnsPoly, RnsPoly>
KeySwitcher::keySwitch(const RnsPoly& x, const SwitchingKey& ksk) const
{
    MAD_TRACE_SCOPE("KeySwitch");
    TELEM_SPAN("KeySwitch");
    const StreamPolicy policy = streamPolicy();
    if (policy != StreamPolicy::Off)
        return streamKeySwitch(x, ksk, policy, false, nullptr, nullptr);
    auto digits = decomposeAndRaise(x);
    RaisedCiphertext raised = innerProduct(digits, ksk);
    return {modDown(raised.c0), modDown(raised.c1)};
}

std::pair<RnsPoly, RnsPoly>
KeySwitcher::keySwitchMerged(const RnsPoly& d2, const SwitchingKey& ksk,
                             const RnsPoly& d0, const RnsPoly& d1) const
{
    const StreamPolicy policy = streamPolicy();
    if (policy != StreamPolicy::Off)
        return streamKeySwitch(d2, ksk, policy, true, &d0, &d1);
    auto digits = decomposeAndRaise(d2);
    RaisedCiphertext raised = innerProduct(digits, ksk);
    raised.c0.add(pModUp(d0));
    raised.c1.add(pModUp(d1));
    return {modDownMerged(raised.c0), modDownMerged(raised.c1)};
}

/**
 * The limb-streaming engine (Section 3.1 made functional). One pass
 * over the raised basis, scheduled limb-by-limb across the pool:
 *
 *  Fuse  — per raised position, each digit's contribution is converted
 *          (NewLimb) + NTT'd into an O(1) scratch limb and multiplied
 *          into the (u, v) accumulators in cache; the beta digit
 *          polynomials of the materializing path never exist. The
 *          coefficient-rep spine x_coeff is still materialized and
 *          ModDown runs materializing.
 *  Cache — the spine is replaced by a pinned O(L)-limb cache of iNTT'd,
 *          pre-scaled digit source limbs (the O(beta) digit cache whose
 *          residues double as the O(alpha) basis-change partials:
 *          scale-by-(Q_j/q_i)^{-1} happens once per source limb instead
 *          of once per (digit, target)), and ModDown streams its
 *          correction limbs through the same pinned-scale treatment —
 *          p_coeff/corr are never materialized.
 *  Full  — limb re-ordering: the dropped (rescale + P) positions of the
 *          inner product are computed FIRST and consumed directly into
 *          the ModDown drop cache, so the raised (u, v) pair is never
 *          written to DRAM; kept positions then fuse MAC, correction
 *          and the final subtract-and-scale into a single output write.
 *
 * Every policy is byte-identical to the materializing composition: the
 * raw kernel entry points (convertLimbRaw / accumulateScaledRaw /
 * forwardBatchRaw / inverseBatchRaw) are bit-exact factorizations of
 * the traced ones, and the accumulation orders match term for term.
 */
std::pair<RnsPoly, RnsPoly>
KeySwitcher::streamKeySwitch(const RnsPoly& x, const SwitchingKey& ksk,
                             StreamPolicy policy, bool merged,
                             const RnsPoly* lift0, const RnsPoly* lift1) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "streamKeySwitch expects eval rep");
    MAD_CHECK(policy != StreamPolicy::Off,
              "streaming engine called with policy off");
    const size_t level = x.numLimbs();
    const size_t beta = ctx->numDigits(level);
    MAD_REQUIRE(beta <= ksk.numDigits(),
            "more digits than switching-key columns");
    if (merged)
        MAD_REQUIRE(level >= 2, "merged ModDown needs at least two Q limbs");
    const size_t n = x.degree();
    const size_t alpha = ctx->alpha();
    const auto raised_basis = ctx->raisedIndices(level);
    const size_t r = raised_basis.size();
    const size_t kept = merged ? level - 1 : level;
    const size_t dropn = r - kept;
    const size_t limb_bytes = n * sizeof(u64);

    // Degrade Cache/Full to Fuse when the pinned working set would not
    // fit the MADFHE_STREAM_CACHE_BYTES budget (see DESIGN.md for the
    // sizing math: (L + beta) limbs of digit cache + (2*drop + 2) limbs
    // of ModDown drop cache).
    if (policy != StreamPolicy::Fuse) {
        const size_t pinned =
            (level + beta) * limb_bytes + (2 * dropn + 2) * limb_bytes;
        const size_t budget = streamCacheBytes();
        if (budget != 0 && pinned > budget) {
            TELEM_COUNT("stream.digit_cache.evictions", 1);
            policy = StreamPolicy::Fuse;
        } else {
            notePeakResident(pinned);
        }
    }

    memtrace::TraceScope scope(streamScopeName(policy));
    telemetry::Span span(streamScopeName(policy));

    // --- Digit-source state -------------------------------------------
    // Fuse materializes the coefficient-rep spine exactly like the
    // materializing Decomp; Cache/Full pin pre-scaled sources instead.
    std::optional<RnsPoly> x_coeff;
    std::vector<std::vector<std::vector<u64>>> scaled;
    std::vector<std::vector<u64>> us;
    std::vector<std::vector<const u64*>> scaled_ptrs(beta);
    if (policy == StreamPolicy::Fuse) {
        x_coeff.emplace(x);
        x_coeff->toCoeff();
    } else {
        scaled.resize(beta);
        us.assign(beta, std::vector<u64>(n));
        for (size_t j = 0; j < beta; ++j)
            scaled[j].assign(ctx->digitSize(j, level), std::vector<u64>(n));
        // Pin each source limb once: one DRAM read, iNTT, pre-scale by
        // the digit's (Q_j/q_i)^{-1} factor. The pinned buffers are
        // on-chip by construction (budget-checked above) and carry no
        // further trace events — matching the model's cache_alpha
        // accounting where a digit's sources are read once.
        parallelFor(level, [&](size_t l) {
            const size_t j = l / alpha;
            const size_t i = l - ctx->digitStart(j);
            u64* dst = scaled[j][i].data();
            MAD_TRACE_READ(x.limb(l), limb_bytes);
            std::copy(x.limb(l), x.limb(l) + n, dst);
            ctx->ring()->ntt(raised_basis[l]).inverseRaw(dst);
            ctx->modUpConverter(j, level).scaleSourceRaw(dst, n, i, dst);
        });
        for (size_t j = 0; j < beta; ++j) {
            for (auto& limb : scaled[j])
                scaled_ptrs[j].push_back(limb.data());
            ctx->modUpConverter(j, level)
                .overshootRaw(scaled_ptrs[j], n, us[j].data());
            for (auto& limb : scaled[j])
                faultinject::guardLimb(g_fault_stream, limb.data(), n);
        }
    }

    // Converter target index for every (digit, raised position); npos
    // marks own limbs (reused straight from the eval-rep input).
    constexpr size_t npos = static_cast<size_t>(-1);
    std::vector<std::vector<size_t>> conv_idx(beta,
                                              std::vector<size_t>(r, npos));
    for (size_t j = 0; j < beta; ++j) {
        const size_t start = ctx->digitStart(j);
        const size_t size = ctx->digitSize(j, level);
        size_t t = 0;
        for (size_t i = 0; i < r; ++i) {
            const u32 chain_idx = raised_basis[i];
            if (chain_idx >= start && chain_idx < start + size &&
                chain_idx < level)
                continue;
            conv_idx[j][i] = t++;
        }
    }

    // MAC one raised position into (uacc, vacc): digit contributions in
    // ascending-j order (bit-identical to the materializing
    // innerProduct), then the optional merged P-lift — the same
    // per-coefficient op sequence RnsPoly::add(pModUp(d)) produces.
    auto macPosition = [&](size_t i, u64* uacc, u64* vacc, u64* scratch) {
        const u32 chain_idx = raised_basis[i];
        const Modulus& q = ctx->ring()->modulus(chain_idx);
        std::fill(uacc, uacc + n, 0);
        std::fill(vacc, vacc + n, 0);
        for (size_t j = 0; j < beta; ++j) {
            const u64* dl;
            if (conv_idx[j][i] == npos) {
                dl = x.limb(chain_idx);
                MAD_TRACE_READ(dl, limb_bytes);
            } else {
                const BasisConverter& conv = ctx->modUpConverter(j, level);
                if (policy == StreamPolicy::Fuse) {
                    const size_t start = ctx->digitStart(j);
                    const size_t size = ctx->digitSize(j, level);
                    std::vector<const u64*> src;
                    src.reserve(size);
                    for (size_t s = 0; s < size; ++s) {
                        MAD_TRACE_READ(x_coeff->limb(start + s), limb_bytes);
                        src.push_back(x_coeff->limb(start + s));
                    }
                    conv.convertLimbRaw(src, n, conv_idx[j][i], scratch);
                } else {
                    conv.accumulateScaledRaw(scaled_ptrs[j], us[j].data(), n,
                                             conv_idx[j][i], scratch);
                }
                ctx->ring()->ntt(chain_idx).forwardRaw(scratch);
                dl = scratch;
            }
            const u64* bl = ksk.b(j).limb(chain_idx);
            const u64* al = ksk.a(j).limb(chain_idx);
            MAD_TRACE_READ(bl, limb_bytes);
            MAD_TRACE_READ(al, limb_bytes);
            for (size_t c = 0; c < n; ++c) {
                uacc[c] = q.add(uacc[c], q.mul(dl[c], bl[c]));
                vacc[c] = q.add(vacc[c], q.mul(dl[c], al[c]));
            }
        }
        if (merged && chain_idx < level) {
            // PModUp fused into the accumulation; its P limbs are
            // identically zero (Algorithm 5, line 3), so only Q
            // positions carry the lift.
            const u64 p_mod = ctx->pModQ(chain_idx);
            const u64 p_shoup = q.shoupPrecompute(p_mod);
            const u64* l0 = lift0->limb(chain_idx);
            const u64* l1 = lift1->limb(chain_idx);
            MAD_TRACE_READ(l0, limb_bytes);
            MAD_TRACE_READ(l1, limb_bytes);
            for (size_t c = 0; c < n; ++c) {
                uacc[c] = q.add(uacc[c], q.mulShoup(l0[c], p_mod, p_shoup));
                vacc[c] = q.add(vacc[c], q.mulShoup(l1[c], p_mod, p_shoup));
            }
        }
    };

    const BasisConverter& down_conv =
        merged ? ctx->mergedModDownConverter(level)
               : ctx->modDownConverter(level);

    // Streamed ModDown (Cache): pin the iNTT'd, pre-scaled dropped limbs
    // and produce each kept limb with a single fused
    // accumulate -> NTT -> subtract-and-scale pass; p_coeff and the
    // correction polynomial are never materialized.
    auto streamModDown = [&](const RnsPoly& rx) -> RnsPoly {
        std::vector<std::vector<u64>> dropc(dropn, std::vector<u64>(n));
        std::vector<u64> usd(n);
        parallelFor(dropn, [&](size_t d) {
            const size_t pos = kept + d;
            MAD_TRACE_READ(rx.limb(pos), limb_bytes);
            std::copy(rx.limb(pos), rx.limb(pos) + n, dropc[d].data());
            ctx->ring()->ntt(raised_basis[pos]).inverseRaw(dropc[d].data());
            down_conv.scaleSourceRaw(dropc[d].data(), n, d, dropc[d].data());
        });
        std::vector<const u64*> dp;
        for (auto& limb : dropc)
            dp.push_back(limb.data());
        down_conv.overshootRaw(dp, n, usd.data());
        for (auto& limb : dropc)
            faultinject::guardLimb(g_fault_stream, limb.data(), n);
        RnsPoly out(rx.context(), ctx->ring()->qIndices(kept), Rep::Eval);
        parallelFor(kept, [&](size_t i) {
            const Modulus& q = ctx->ring()->modulus(i);
            std::vector<u64> corr(n);
            down_conv.accumulateScaledRaw(dp, usd.data(), n, i, corr.data());
            ctx->ring()->ntt(i).forwardRaw(corr.data());
            const u64 inv = merged ? ctx->mergedInv(level, i)
                                   : ctx->pInvModQ(i);
            const u64 inv_shoup = q.shoupPrecompute(inv);
            const u64* xi = rx.limb(i);
            u64* oi = out.limb(i);
            MAD_TRACE_READ(xi, limb_bytes);
            MAD_TRACE_WRITE(oi, limb_bytes);
            for (size_t c = 0; c < n; ++c)
                oi[c] = q.mulShoup(q.sub(xi[c], corr[c]), inv, inv_shoup);
        });
        for (size_t i = 0; i < kept; ++i)
            faultinject::guardLimb(g_fault_stream, out.limb(i), n);
        TELEM_COUNT("stream.limbs_fused", kept);
        TELEM_COUNT("stream.digit_cache.hits", kept);
        return out;
    };

    if (policy != StreamPolicy::Full) {
        // Fuse / Cache: the raised (u, v) pair is still materialized;
        // each limb is produced by one fused pass and written once.
        RnsPoly ru(x.context(), raised_basis, Rep::Eval);
        RnsPoly rv(x.context(), raised_basis, Rep::Eval);
        parallelFor(r, [&](size_t i) {
            std::vector<u64> scratch(n);
            macPosition(i, ru.limb(i), rv.limb(i), scratch.data());
            MAD_TRACE_WRITE(ru.limb(i), limb_bytes);
            MAD_TRACE_WRITE(rv.limb(i), limb_bytes);
        });
        TELEM_COUNT("stream.limbs_fused", 2 * r);
        if (policy == StreamPolicy::Cache)
            TELEM_COUNT("stream.digit_cache.hits", beta * r - level);
        for (size_t i = 0; i < r; ++i) {
            faultinject::guardLimb(g_fault_stream, ru.limb(i), n);
            faultinject::guardLimb(g_fault_stream, rv.limb(i), n);
        }
        if (policy == StreamPolicy::Fuse) {
            if (merged)
                return {modDownMerged(ru), modDownMerged(rv)};
            return {modDown(ru), modDown(rv)};
        }
        return {streamModDown(ru), streamModDown(rv)};
    }

    // Full: phase A — dropped positions first (the Section 3.1 limb
    // re-ordering), consumed straight into the pinned ModDown drop
    // cache; the raised (u, v) never exists.
    std::vector<std::vector<u64>> dropu(dropn, std::vector<u64>(n));
    std::vector<std::vector<u64>> dropv(dropn, std::vector<u64>(n));
    std::vector<u64> usu(n), usv(n);
    parallelFor(dropn, [&](size_t d) {
        const size_t pos = kept + d;
        const u32 chain_idx = raised_basis[pos];
        std::vector<u64> uacc(n), vacc(n), scratch(n);
        macPosition(pos, uacc.data(), vacc.data(), scratch.data());
        ctx->ring()->ntt(chain_idx).inverseRaw(uacc.data());
        ctx->ring()->ntt(chain_idx).inverseRaw(vacc.data());
        down_conv.scaleSourceRaw(uacc.data(), n, d, dropu[d].data());
        down_conv.scaleSourceRaw(vacc.data(), n, d, dropv[d].data());
    });
    std::vector<const u64*> dpu, dpv;
    for (size_t d = 0; d < dropn; ++d) {
        dpu.push_back(dropu[d].data());
        dpv.push_back(dropv[d].data());
    }
    down_conv.overshootRaw(dpu, n, usu.data());
    down_conv.overshootRaw(dpv, n, usv.data());
    for (size_t d = 0; d < dropn; ++d) {
        faultinject::guardLimb(g_fault_stream, dropu[d].data(), n);
        faultinject::guardLimb(g_fault_stream, dropv[d].data(), n);
    }

    // Phase B — kept positions: MAC, streamed correction, and the final
    // subtract-and-scale fused into one output write per limb.
    RnsPoly ou(x.context(), ctx->ring()->qIndices(kept), Rep::Eval);
    RnsPoly ov(x.context(), ctx->ring()->qIndices(kept), Rep::Eval);
    parallelFor(kept, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        std::vector<u64> uacc(n), vacc(n), scratch(n), corr(n);
        macPosition(i, uacc.data(), vacc.data(), scratch.data());
        const u64 inv = merged ? ctx->mergedInv(level, i) : ctx->pInvModQ(i);
        const u64 inv_shoup = q.shoupPrecompute(inv);
        u64* ui = ou.limb(i);
        u64* vi = ov.limb(i);
        down_conv.accumulateScaledRaw(dpu, usu.data(), n, i, corr.data());
        ctx->ring()->ntt(i).forwardRaw(corr.data());
        MAD_TRACE_WRITE(ui, limb_bytes);
        for (size_t c = 0; c < n; ++c)
            ui[c] = q.mulShoup(q.sub(uacc[c], corr[c]), inv, inv_shoup);
        down_conv.accumulateScaledRaw(dpv, usv.data(), n, i, corr.data());
        ctx->ring()->ntt(i).forwardRaw(corr.data());
        MAD_TRACE_WRITE(vi, limb_bytes);
        for (size_t c = 0; c < n; ++c)
            vi[c] = q.mulShoup(q.sub(vacc[c], corr[c]), inv, inv_shoup);
    });
    TELEM_COUNT("stream.limbs_fused", 2 * r);
    TELEM_COUNT("stream.digit_cache.hits", (beta * r - level) + 2 * kept);
    for (size_t i = 0; i < kept; ++i) {
        faultinject::guardLimb(g_fault_stream, ou.limb(i), n);
        faultinject::guardLimb(g_fault_stream, ov.limb(i), n);
    }
    return {std::move(ou), std::move(ov)};
}

} // namespace madfhe
