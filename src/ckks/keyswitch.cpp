#include "ckks/keyswitch.h"

#include "memtrace/trace.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_decompose("ckks.decompose",
                                    faultinject::kLimbKinds);
faultinject::Site g_fault_innerprod("ckks.ksk_innerprod",
                                    faultinject::kLimbKinds);
faultinject::Site g_fault_moddown("ckks.moddown", faultinject::kLimbKinds);
faultinject::Site g_fault_moddown_merged("ckks.moddown_merged",
                                         faultinject::kLimbKinds);
faultinject::Site g_fault_pmodup("ckks.pmodup", faultinject::kLimbKinds);
} // namespace

KeySwitcher::KeySwitcher(std::shared_ptr<const CkksContext> ctx_)
    : ctx(std::move(ctx_))
{
}

size_t
KeySwitcher::qLevelOf(const RnsPoly& raised) const
{
    size_t total = raised.numLimbs();
    size_t num_p = ctx->ring()->numP();
    MAD_CHECK(total > num_p, "raised polynomial missing P limbs");
    return total - num_p;
}

std::vector<RnsPoly>
KeySwitcher::decomposeAndRaise(const RnsPoly& x) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "decomposeAndRaise expects eval rep");
    MAD_TRACE_SCOPE("DecompModUp");
    TELEM_SPAN("DecompModUp");
    const size_t level = x.numLimbs();
    const size_t beta = ctx->numDigits(level);
    const size_t n = x.degree();
    auto raised_basis = ctx->raisedIndices(level);

    // iNTT all limbs once (limb-wise pass shared by every digit).
    RnsPoly x_coeff = x;
    x_coeff.toCoeff();

    // Converted limbs that still need the forward NTT, grouped by raised
    // basis position so every digit sharing a modulus goes through one
    // batched table walk (forwardBatch) instead of beta separate ones.
    std::vector<std::vector<u64*>> to_ntt(raised_basis.size());

    std::vector<RnsPoly> digits;
    digits.reserve(beta);
    for (size_t j = 0; j < beta; ++j) {
        const size_t start = ctx->digitStart(j);
        const size_t size = ctx->digitSize(j, level);

        RnsPoly raised(x.context(), raised_basis, Rep::Eval);

        // Source limbs of this digit, in coefficient rep.
        std::vector<const u64*> src;
        for (size_t i = 0; i < size; ++i)
            src.push_back(x_coeff.limb(start + i));

        // NewLimb (slot-wise) into every other limb of the raised basis;
        // targets are in coefficient rep and are NTT'd in the batched pass
        // below.
        const BasisConverter& conv = ctx->modUpConverter(j, level);
        std::vector<u64*> dst;
        for (size_t i = 0; i < raised_basis.size(); ++i) {
            u32 chain_idx = raised_basis[i];
            if (chain_idx >= start && chain_idx < start + size &&
                chain_idx < level) {
                continue; // own limb, copied below
            }
            dst.push_back(raised.limb(i));
            to_ntt[i].push_back(raised.limb(i));
        }
        conv.convert(src, n, dst);

        // Own limbs: reuse the evaluation-rep input directly
        // (Algorithm 1, line 4: no NTT needed on the input limbs).
        for (size_t i = 0; i < size; ++i) {
            MAD_TRACE_READ(x.limb(start + i), n * sizeof(u64));
            MAD_TRACE_WRITE(raised.limb(start + i), n * sizeof(u64));
            std::copy(x.limb(start + i), x.limb(start + i) + n,
                      raised.limb(start + i));
        }

        digits.push_back(std::move(raised));
    }

    // One batched NTT per raised-basis position, positions fanned out
    // across the pool: each (stage, twiddle) load is shared by all digits
    // that carry this modulus.
    parallelFor(raised_basis.size(), [&](size_t i) {
        if (!to_ntt[i].empty())
            ctx->ring()->ntt(raised_basis[i])
                .forwardBatch(to_ntt[i].data(), to_ntt[i].size());
    });
    for (RnsPoly& d : digits)
        for (size_t i = 0; i < d.numLimbs(); ++i)
            faultinject::guardLimb(g_fault_decompose, d.limb(i), n);
    return digits;
}

RaisedCiphertext
KeySwitcher::innerProduct(const std::vector<RnsPoly>& digits,
                          const SwitchingKey& ksk) const
{
    MAD_REQUIRE(!digits.empty(), "no digits to key switch");
    MAD_REQUIRE(digits.size() <= ksk.numDigits(),
            "more digits than switching-key columns");
    const size_t n = digits[0].degree();
    const auto& raised_basis = digits[0].basis();

    RaisedCiphertext out;
    out.c0 = RnsPoly(digits[0].context(), raised_basis, Rep::Eval);
    out.c1 = RnsPoly(digits[0].context(), raised_basis, Rep::Eval);
    out.q_level = qLevelOf(digits[0]);

    // When beta < dnum the trailing ksk columns are simply unused
    // (Algorithm 3, note on line 3).
    //
    // Limb-position-major so every raised-basis position is an independent
    // parallel task accumulating its own (u, v) pair; the per-(digit,
    // limb) trace events match the digit-major formulation event for
    // event, just grouped by position.
    MAD_TRACE_SCOPE("KskInnerProd");
    TELEM_SPAN("KskInnerProd");
    parallelFor(raised_basis.size(), [&](size_t i) {
        const u32 chain_idx = raised_basis[i];
        const Modulus& q = ctx->ring()->modulus(chain_idx);
        u64* u = out.c0.limb(i);
        u64* v = out.c1.limb(i);
        for (size_t j = 0; j < digits.size(); ++j) {
            const RnsPoly& d = digits[j];
            // The key basis is the identity chain, so limb position ==
            // chain index in the switching-key polynomials.
            const u64* dl = d.limb(i);
            const u64* bl = ksk.b(j).limb(chain_idx);
            const u64* al = ksk.a(j).limb(chain_idx);
            MAD_TRACE_READ(dl, n * sizeof(u64));
            MAD_TRACE_READ(bl, n * sizeof(u64));
            MAD_TRACE_READ(al, n * sizeof(u64));
            MAD_TRACE_READ(u, n * sizeof(u64));
            MAD_TRACE_READ(v, n * sizeof(u64));
            MAD_TRACE_WRITE(u, n * sizeof(u64));
            MAD_TRACE_WRITE(v, n * sizeof(u64));
            for (size_t c = 0; c < n; ++c) {
                u[c] = q.add(u[c], q.mul(dl[c], bl[c]));
                v[c] = q.add(v[c], q.mul(dl[c], al[c]));
            }
        }
    });
    // Limb-sum spot check after the inner product: the accumulated (u, v)
    // pair is the longest-lived DRAM-resident intermediate in key switch.
    for (size_t i = 0; i < raised_basis.size(); ++i) {
        faultinject::guardLimb(g_fault_innerprod, out.c0.limb(i), n);
        faultinject::guardLimb(g_fault_innerprod, out.c1.limb(i), n);
    }
    return out;
}

RnsPoly
KeySwitcher::modDown(const RnsPoly& x) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "modDown expects eval rep");
    MAD_TRACE_SCOPE("ModDown");
    TELEM_SPAN("ModDown");
    const size_t level = qLevelOf(x);
    const size_t num_p = ctx->ring()->numP();
    const size_t n = x.degree();

    // iNTT the P limbs (limb-wise).
    std::vector<std::vector<u64>> p_coeff(num_p, std::vector<u64>(n));
    auto p_indices = ctx->ring()->pIndices();
    parallelFor(num_p, [&](size_t i) {
        const u64* src = x.limb(level + i);
        MAD_TRACE_ALLOC(p_coeff[i].data(), n * sizeof(u64));
        MAD_TRACE_READ(src, n * sizeof(u64));
        MAD_TRACE_WRITE(p_coeff[i].data(), n * sizeof(u64));
        std::copy(src, src + n, p_coeff[i].data());
        ctx->ring()->ntt(p_indices[i]).inverse(p_coeff[i].data());
    });

    // NewLimb (slot-wise): correction = [x]_P converted to each q_i.
    std::vector<const u64*> src;
    for (auto& limb : p_coeff)
        src.push_back(limb.data());
    std::vector<std::vector<u64>> corr(level, std::vector<u64>(n));
    std::vector<u64*> dst;
    for (auto& limb : corr) {
        MAD_TRACE_ALLOC(limb.data(), n * sizeof(u64));
        dst.push_back(limb.data());
    }
    ctx->modDownConverter(level).convert(src, n, dst);

    // Per kept limb: NTT the correction, subtract, scale by P^{-1}.
    RnsPoly out(x.context(), ctx->ring()->qIndices(level), Rep::Eval);
    parallelFor(level, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        ctx->ring()->ntt(i).forward(corr[i].data());
        const u64 p_inv = ctx->pInvModQ(i);
        const u64 p_inv_shoup = q.shoupPrecompute(p_inv);
        const u64* xi = x.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(xi, n * sizeof(u64));
        MAD_TRACE_READ(corr[i].data(), n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = q.mulShoup(q.sub(xi[c], corr[i][c]), p_inv, p_inv_shoup);
    });
    for (size_t i = 0; i < level; ++i)
        faultinject::guardLimb(g_fault_moddown, out.limb(i), n);
    return out;
}

RnsPoly
KeySwitcher::modDownMerged(const RnsPoly& x) const
{
    MAD_CHECK(x.rep() == Rep::Eval, "modDownMerged expects eval rep");
    MAD_TRACE_SCOPE("ModDownMerged");
    TELEM_SPAN("ModDownMerged");
    const size_t level = qLevelOf(x);
    MAD_REQUIRE(level >= 2, "merged ModDown needs at least two Q limbs");
    const size_t num_p = ctx->ring()->numP();
    const size_t n = x.degree();

    // Dropped limbs: q_(level-1) followed by the P limbs — matching the
    // source basis of mergedModDownConverter().
    std::vector<std::vector<u64>> drop_coeff(1 + num_p, std::vector<u64>(n));
    auto p_indices = ctx->ring()->pIndices();
    parallelFor(1 + num_p, [&](size_t i) {
        const u32 chain_idx = i == 0 ? static_cast<u32>(level - 1)
                                     : p_indices[i - 1];
        const u64* src = i == 0 ? x.limb(level - 1) : x.limb(level + (i - 1));
        MAD_TRACE_ALLOC(drop_coeff[i].data(), n * sizeof(u64));
        MAD_TRACE_READ(src, n * sizeof(u64));
        MAD_TRACE_WRITE(drop_coeff[i].data(), n * sizeof(u64));
        std::copy(src, src + n, drop_coeff[i].data());
        ctx->ring()->ntt(chain_idx).inverse(drop_coeff[i].data());
    });

    std::vector<const u64*> src;
    for (auto& limb : drop_coeff)
        src.push_back(limb.data());
    std::vector<std::vector<u64>> corr(level - 1, std::vector<u64>(n));
    std::vector<u64*> dst;
    for (auto& limb : corr) {
        MAD_TRACE_ALLOC(limb.data(), n * sizeof(u64));
        dst.push_back(limb.data());
    }
    ctx->mergedModDownConverter(level).convert(src, n, dst);

    RnsPoly out(x.context(), ctx->ring()->qIndices(level - 1), Rep::Eval);
    parallelFor(level - 1, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        ctx->ring()->ntt(i).forward(corr[i].data());
        const u64 inv = ctx->mergedInv(level, i);
        const u64 inv_shoup = q.shoupPrecompute(inv);
        const u64* xi = x.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(xi, n * sizeof(u64));
        MAD_TRACE_READ(corr[i].data(), n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = q.mulShoup(q.sub(xi[c], corr[i][c]), inv, inv_shoup);
    });
    for (size_t i = 0; i + 1 < level; ++i)
        faultinject::guardLimb(g_fault_moddown_merged, out.limb(i), n);
    return out;
}

RnsPoly
KeySwitcher::pModUp(const RnsPoly& y) const
{
    MAD_CHECK(y.rep() == Rep::Eval, "pModUp expects eval rep");
    MAD_TRACE_SCOPE("PModUp");
    TELEM_SPAN("PModUp");
    const size_t level = y.numLimbs();
    const size_t n = y.degree();
    RnsPoly out(y.context(), ctx->raisedIndices(level), Rep::Eval);
    parallelFor(level, [&](size_t i) {
        const Modulus& q = ctx->ring()->modulus(i);
        const u64 p_mod = ctx->pModQ(i);
        const u64 p_shoup = q.shoupPrecompute(p_mod);
        const u64* yi = y.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(yi, n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = q.mulShoup(yi[c], p_mod, p_shoup);
    });
    for (size_t i = 0; i < level; ++i)
        faultinject::guardLimb(g_fault_pmodup, out.limb(i), n);
    // P limbs of P*y are identically zero (Algorithm 5, line 3).
    return out;
}

std::pair<RnsPoly, RnsPoly>
KeySwitcher::keySwitch(const RnsPoly& x, const SwitchingKey& ksk) const
{
    MAD_TRACE_SCOPE("KeySwitch");
    TELEM_SPAN("KeySwitch");
    auto digits = decomposeAndRaise(x);
    RaisedCiphertext raised = innerProduct(digits, ksk);
    return {modDown(raised.c0), modDown(raised.c1)};
}

} // namespace madfhe
