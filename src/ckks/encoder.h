/**
 * @file
 * CKKS encoder: maps complex vectors of length n = N/2 into ring elements
 * through the canonical embedding (slot j lives at the evaluation point
 * zeta^(5^j), zeta = exp(i*pi/N)), and decodes back via exact CRT
 * recomposition plus the forward embedding.
 */
#ifndef MADFHE_CKKS_ENCODER_H
#define MADFHE_CKKS_ENCODER_H

#include <complex>
#include <map>

#include "ckks/context.h"
#include "ckks/ciphertext.h"

namespace madfhe {

class CkksEncoder
{
  public:
    explicit CkksEncoder(std::shared_ptr<const CkksContext> ctx);
    ~CkksEncoder(); // out-of-line: CrtTables is an incomplete type here

    size_t slots() const { return num_slots; }

    /**
     * Encode `values` (padded with zeros up to n/2 slots) at the given
     * scale into a plaintext with `level` limbs, evaluation representation.
     */
    Plaintext encode(const std::vector<std::complex<double>>& values,
                     double scale, size_t level) const;

    /** Convenience overload for real vectors. */
    Plaintext encodeReal(const std::vector<double>& values, double scale,
                         size_t level) const;

    /** Encode the same scalar into every slot. */
    Plaintext encodeScalar(std::complex<double> value, double scale,
                           size_t level) const;

    /**
     * Encode over the raised basis Q[0,level) + P, for multiplying
     * raised-basis ciphertexts (ModDown hoisting keeps PtMult operands in
     * the raised basis — Section 3.2).
     */
    Plaintext encodeRaised(const std::vector<std::complex<double>>& values,
                           double scale, size_t level) const;

    /** Decode a plaintext back to n/2 complex slot values. */
    std::vector<std::complex<double>> decode(const Plaintext& pt) const;

    /**
     * Exact centered CRT recomposition of one polynomial (coefficient rep)
     * to doubles. Exposed for tests and for noise measurement.
     */
    std::vector<double> decodeCoefficients(const RnsPoly& poly) const;

  private:
    struct CrtTables;
    const CrtTables& crtTables(size_t level) const;

    void fftInverse(std::vector<std::complex<double>>& a) const;
    void fftForward(std::vector<std::complex<double>>& a) const;

    std::shared_ptr<const CkksContext> ctx;
    size_t n;
    size_t num_slots;
    /** index of slot j in the full odd-power evaluation array. */
    std::vector<u32> slot_index;
    /** index of the conjugate evaluation point of slot j. */
    std::vector<u32> conj_index;
    /** 2N-th complex roots of unity zeta^i, i in [0, 2N). */
    std::vector<std::complex<double>> zeta;
    std::vector<u32> bitrev;

    mutable std::map<size_t, std::unique_ptr<CrtTables>> crt_cache;
};

} // namespace madfhe

#endif // MADFHE_CKKS_ENCODER_H
