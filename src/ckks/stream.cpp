#include "ckks/stream.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/common.h"
#include "support/env.h"

namespace madfhe {

namespace {

StreamPolicy
parsePolicy(const char* text, const char* var)
{
    const std::string s(text);
    if (s == "off")
        return StreamPolicy::Off;
    if (s == "fuse")
        return StreamPolicy::Fuse;
    if (s == "cache")
        return StreamPolicy::Cache;
    if (s == "full")
        return StreamPolicy::Full;
    MAD_REQUIRE(false, std::string("cannot parse ") + var + "='" + s +
                           "' (expected off|fuse|cache|full)");
    return StreamPolicy::Full; // unreachable
}

StreamPolicy
policyFromEnv()
{
    const char* s = std::getenv("MADFHE_STREAM");
    if (!s || !*s)
        return StreamPolicy::Full;
    return parsePolicy(s, "MADFHE_STREAM");
}

std::atomic<StreamPolicy>&
policySlot()
{
    static std::atomic<StreamPolicy> slot{policyFromEnv()};
    return slot;
}

} // namespace

StreamPolicy
streamPolicy()
{
    return policySlot().load(std::memory_order_relaxed);
}

void
setStreamPolicy(StreamPolicy p)
{
    policySlot().store(p, std::memory_order_relaxed);
}

const char*
streamPolicyName(StreamPolicy p)
{
    switch (p) {
    case StreamPolicy::Off:
        return "off";
    case StreamPolicy::Fuse:
        return "fuse";
    case StreamPolicy::Cache:
        return "cache";
    case StreamPolicy::Full:
        return "full";
    }
    return "off";
}

size_t
streamCacheBytes()
{
    static const size_t bytes =
        static_cast<size_t>(env::bytesOr("MADFHE_STREAM_CACHE_BYTES", 0));
    return bytes;
}

} // namespace madfhe
