/**
 * @file
 * CKKS noise tracking: heuristic average-case predictions of the
 * slot-domain error after each primitive operation (following the CKKS
 * noise-analysis literature), and exact measurement against known
 * plaintexts. Predictions carry a safety factor so that
 * measured <= predicted holds with overwhelming probability; tests pin
 * the band from both sides.
 */
#ifndef MADFHE_CKKS_NOISE_H
#define MADFHE_CKKS_NOISE_H

#include "ckks/encoder.h"
#include "ckks/encryptor.h"

namespace madfhe {

/** An upper estimate of the max slot-domain error of a ciphertext. */
struct NoiseBound
{
    /** log2 of the bound on |decoded - true| per slot. */
    double log2_error = -1e9;

    double bound() const { return std::exp2(log2_error); }

    static NoiseBound
    fromError(double err)
    {
        return NoiseBound{std::log2(std::max(err, 1e-300))};
    }
};

/**
 * Heuristic noise estimator for a given context. All bounds are on the
 * *slot-domain* error (after decode at the ciphertext's scale).
 */
class NoiseEstimator
{
  public:
    explicit NoiseEstimator(std::shared_ptr<const CkksContext> ctx);

    /** Fresh public-key encryption of an encoding at scale Delta. */
    NoiseBound fresh() const;
    /** Encoding-only error (rounding of scaled values). */
    NoiseBound encoding() const;

    NoiseBound add(const NoiseBound& a, const NoiseBound& b) const;
    /**
     * Ciphertext x plaintext product followed by rescale; `pt_mag` bounds
     * the plaintext slot magnitudes, `ct_mag` the ciphertext's.
     */
    NoiseBound mulPlain(const NoiseBound& a, double pt_mag,
                        double ct_mag) const;
    /** Ciphertext product (relinearized + rescaled). */
    NoiseBound mul(const NoiseBound& a, const NoiseBound& b, double mag_a,
                   double mag_b, size_t level) const;
    /** Key switching adds a level-dependent additive term (Rotate and
     *  Conjugate are automorph + key switch; automorph itself is
     *  noise-free). */
    NoiseBound keySwitch(const NoiseBound& a, size_t level) const;
    NoiseBound rotate(const NoiseBound& a, size_t level) const
    {
        return keySwitch(a, level);
    }
    /** Rescale rounding: at most ~sqrt(N)/Delta per slot. */
    NoiseBound rescale(const NoiseBound& a) const;

    /** The additive key-switch noise floor at a given level. */
    double keySwitchFloorLog2(size_t level) const;

  private:
    std::shared_ptr<const CkksContext> ctx;
    double sqrt_n;
    double sigma; // error sampler standard deviation
};

/**
 * Measure the actual max slot error of `ct` against the expected slot
 * values (requires the secret key via the decryptor).
 */
double measureSlotError(const CkksEncoder& encoder, Decryptor& decryptor,
                        const Ciphertext& ct,
                        const std::vector<std::complex<double>>& expected);

} // namespace madfhe

#endif // MADFHE_CKKS_NOISE_H
