/**
 * @file
 * Plaintext and Ciphertext value types. A ciphertext is a pair (c0, c1)
 * decrypting as m ~ c0 + c1*s; `scale` tracks the CKKS scaling factor
 * Delta through the computation, and the limb count of the polynomials is
 * the ciphertext "level" (the paper's current limb count l).
 */
#ifndef MADFHE_CKKS_CIPHERTEXT_H
#define MADFHE_CKKS_CIPHERTEXT_H

#include "ring/poly.h"

namespace madfhe {

/** An encoded (unencrypted) message: one ring element plus its scale. */
struct Plaintext
{
    RnsPoly poly;
    double scale = 0.0;

    size_t level() const { return poly.numLimbs(); }
};

/** An encryption of a complex vector under CKKS. */
struct Ciphertext
{
    RnsPoly c0; ///< The "b" component (message-bearing).
    RnsPoly c1; ///< The "a" component (key-bearing).
    double scale = 0.0;

    /** Current limb count l. */
    size_t level() const { return c0.numLimbs(); }
    size_t degree() const { return c0.degree(); }
};

/**
 * An additively homomorphic ciphertext over the *raised* basis PQ — the
 * intermediate KeySwitch output before ModDown (Algorithm 3, line 3). The
 * MAD raised-basis optimizations (PModUp / ModDown merge / ModDown
 * hoisting, Section 3.2) accumulate linear combinations of these and defer
 * the single ModDown to the end.
 */
struct RaisedCiphertext
{
    RnsPoly c0;
    RnsPoly c1;
    double scale = 0.0;
    /** Limb count of the Q part (the P limbs follow it in the basis). */
    size_t q_level = 0;
};

} // namespace madfhe

#endif // MADFHE_CKKS_CIPHERTEXT_H
