#include "ckks/params.h"

namespace madfhe {

void
CkksParams::validate() const
{
    MAD_REQUIRE(log_n >= 3 && log_n <= 17, "log_n out of supported range [3,17]");
    MAD_REQUIRE(log_scale >= 20 && log_scale <= 55, "log_scale out of [20,55]");
    MAD_REQUIRE(first_prime_bits > log_scale,
            "base prime must be wider than the scale");
    MAD_REQUIRE(first_prime_bits <= 60, "first_prime_bits must be <= 60");
    MAD_REQUIRE(num_levels >= 1, "need at least one level");
    MAD_REQUIRE(dnum >= 1 && dnum <= chainLength(),
            "dnum must be in [1, L + 1]");
}

CkksParams
CkksParams::unitTest()
{
    CkksParams p;
    p.log_n = 10;
    p.log_scale = 35;
    p.first_prime_bits = 45;
    p.num_levels = 4;
    p.dnum = 2;
    return p;
}

CkksParams
CkksParams::loadTest()
{
    CkksParams p;
    p.log_n = 8;
    p.log_scale = 35;
    p.first_prime_bits = 45;
    p.num_levels = 3;
    p.dnum = 2;
    return p;
}

CkksParams
CkksParams::medium()
{
    CkksParams p;
    p.log_n = 12;
    p.log_scale = 40;
    p.first_prime_bits = 52;
    p.num_levels = 8;
    p.dnum = 3;
    return p;
}

CkksParams
CkksParams::bootstrapToy()
{
    CkksParams p;
    p.log_n = 12;
    // A small q0/Delta ratio keeps the SlotToCoeff amplification of the
    // EvalMod noise floor low (the "message ratio" of the bootstrapping
    // literature): q0*K/Delta = 2^(53+3-45) = 2^11 here.
    p.log_scale = 45;
    p.first_prime_bits = 53;
    p.num_levels = 20;
    p.dnum = 3;
    p.hamming_weight = 64;
    return p;
}

} // namespace madfhe
