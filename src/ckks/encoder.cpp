#include "ckks/encoder.h"

#include <cmath>

#include "memtrace/trace.h"
#include "support/bigint.h"

namespace madfhe {

/** Per-level exact CRT recomposition tables. */
struct CkksEncoder::CrtTables
{
    BigUint q;             ///< Q = prod of the first `level` limbs.
    BigUint q_half;        ///< floor(Q / 2), for centering.
    std::vector<BigUint> q_star;   ///< Q / q_i.
    std::vector<u64> q_tilde;      ///< (Q/q_i)^{-1} mod q_i.
};

CkksEncoder::~CkksEncoder() = default;

CkksEncoder::CkksEncoder(std::shared_ptr<const CkksContext> ctx_)
    : ctx(std::move(ctx_))
{
    n = ctx->degree();
    num_slots = n / 2;

    zeta.resize(2 * n);
    const double pi = std::acos(-1.0);
    for (size_t i = 0; i < 2 * n; ++i) {
        double angle = pi * static_cast<double>(i) / static_cast<double>(n);
        zeta[i] = {std::cos(angle), std::sin(angle)};
    }

    slot_index.resize(num_slots);
    conj_index.resize(num_slots);
    u64 pow5 = 1;
    const u64 m = 2 * n;
    for (size_t j = 0; j < num_slots; ++j) {
        slot_index[j] = static_cast<u32>((pow5 - 1) / 2);
        conj_index[j] = static_cast<u32>((m - pow5 - 1) / 2);
        pow5 = (pow5 * 5) % m;
    }

    unsigned logn = floorLog2(n);
    bitrev.resize(n);
    for (size_t i = 0; i < n; ++i) {
        u32 r = 0;
        for (unsigned b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        bitrev[i] = r;
    }
}

namespace {

void
cyclicFft(std::vector<std::complex<double>>& a,
          const std::vector<std::complex<double>>& zeta,
          const std::vector<u32>& bitrev, bool inverse)
{
    const size_t n = a.size();
    for (size_t i = 0; i < n; ++i) {
        u32 r = bitrev[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
    // omega = zeta^2 is a primitive n-th root; stage twiddles are powers of
    // omega^(n/2m) = zeta^(n/m).
    for (size_t mstage = 1; mstage < n; mstage <<= 1) {
        size_t stride = n / mstage; // exponent step in zeta table (2n-sized)
        for (size_t i = 0; i < n; i += 2 * mstage) {
            for (size_t j = 0; j < mstage; ++j) {
                size_t e = (j * stride) % (2 * n);
                std::complex<double> w =
                    inverse ? std::conj(zeta[e]) : zeta[e];
                auto x = a[i + j];
                auto y = a[i + j + mstage] * w;
                a[i + j] = x + y;
                a[i + j + mstage] = x - y;
            }
        }
    }
}

} // namespace

void
CkksEncoder::fftForward(std::vector<std::complex<double>>& a) const
{
    // Twist by zeta^i then cyclic FFT: output t = a(zeta^(2t+1)).
    for (size_t i = 0; i < n; ++i)
        a[i] *= zeta[i];
    cyclicFft(a, zeta, bitrev, /*inverse=*/false);
}

void
CkksEncoder::fftInverse(std::vector<std::complex<double>>& a) const
{
    cyclicFft(a, zeta, bitrev, /*inverse=*/true);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (size_t i = 0; i < n; ++i)
        a[i] *= inv_n * std::conj(zeta[i]);
}

Plaintext
CkksEncoder::encode(const std::vector<std::complex<double>>& values,
                    double scale, size_t level) const
{
    MAD_REQUIRE(values.size() <= num_slots, "too many values for slot count");
    MAD_REQUIRE(scale > 0, "scale must be positive");
    MAD_REQUIRE(level >= 1 && level <= ctx->maxLevel(), "bad level");

    std::vector<std::complex<double>> a(n, {0.0, 0.0});
    for (size_t j = 0; j < values.size(); ++j) {
        a[slot_index[j]] = values[j];
        a[conj_index[j]] = std::conj(values[j]);
    }
    fftInverse(a);

    std::vector<i64> coeffs(n);
    for (size_t i = 0; i < n; ++i) {
        double v = a[i].real() * scale;
        MAD_REQUIRE(std::abs(v) < 9.0e18,
                "encoded coefficient overflows 63 bits; reduce scale");
        coeffs[i] = static_cast<i64>(std::llround(v));
    }

    Plaintext pt;
    pt.poly = RnsPoly(ctx->ring(), ctx->ring()->qIndices(level), Rep::Coeff);
    // Tag before filling: the fill/NTT writes below are plaintext
    // generation, which the analytical model treats as offline.
    MAD_TRACE_TAG(pt.poly.limb(0),
                  pt.poly.numLimbs() * pt.poly.degree() * sizeof(u64),
                  memtrace::Class::Pt);
    pt.poly.setFromSigned(coeffs);
    pt.poly.toEval();
    pt.scale = scale;
    return pt;
}

Plaintext
CkksEncoder::encodeReal(const std::vector<double>& values, double scale,
                        size_t level) const
{
    std::vector<std::complex<double>> cv(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        cv[i] = {values[i], 0.0};
    return encode(cv, scale, level);
}

Plaintext
CkksEncoder::encodeScalar(std::complex<double> value, double scale,
                          size_t level) const
{
    std::vector<std::complex<double>> cv(num_slots, value);
    return encode(cv, scale, level);
}

Plaintext
CkksEncoder::encodeRaised(const std::vector<std::complex<double>>& values,
                          double scale, size_t level) const
{
    MAD_REQUIRE(values.size() <= num_slots, "too many values for slot count");
    std::vector<std::complex<double>> a(n, {0.0, 0.0});
    for (size_t j = 0; j < values.size(); ++j) {
        a[slot_index[j]] = values[j];
        a[conj_index[j]] = std::conj(values[j]);
    }
    fftInverse(a);
    std::vector<i64> coeffs(n);
    for (size_t i = 0; i < n; ++i)
        coeffs[i] = static_cast<i64>(std::llround(a[i].real() * scale));

    Plaintext pt;
    pt.poly = RnsPoly(ctx->ring(), ctx->raisedIndices(level), Rep::Coeff);
    MAD_TRACE_TAG(pt.poly.limb(0),
                  pt.poly.numLimbs() * pt.poly.degree() * sizeof(u64),
                  memtrace::Class::Pt);
    pt.poly.setFromSigned(coeffs);
    pt.poly.toEval();
    pt.scale = scale;
    return pt;
}

const CkksEncoder::CrtTables&
CkksEncoder::crtTables(size_t level) const
{
    auto it = crt_cache.find(level);
    if (it != crt_cache.end())
        return *it->second;

    auto tables = std::make_unique<CrtTables>();
    std::vector<u64> primes;
    for (size_t i = 0; i < level; ++i)
        primes.push_back(ctx->qValue(i));
    tables->q = BigUint::product(primes);
    tables->q_half = tables->q;
    tables->q_half.divModWord(2);
    tables->q_star.resize(level);
    tables->q_tilde.resize(level);
    for (size_t i = 0; i < level; ++i) {
        std::vector<u64> others;
        for (size_t j = 0; j < level; ++j)
            if (j != i)
                others.push_back(primes[j]);
        tables->q_star[i] = others.empty() ? BigUint(1)
                                           : BigUint::product(others);
        const Modulus& qi = ctx->ring()->modulus(i);
        tables->q_tilde[i] =
            qi.inverse(tables->q_star[i].modWord(qi.value()));
    }
    return *crt_cache.emplace(level, std::move(tables)).first->second;
}

std::vector<double>
CkksEncoder::decodeCoefficients(const RnsPoly& poly) const
{
    MAD_CHECK(poly.rep() == Rep::Coeff, "decodeCoefficients needs coeff rep");
    const size_t level = poly.numLimbs();
    const CrtTables& t = crtTables(level);

    std::vector<double> out(n);
    for (size_t c = 0; c < n; ++c) {
        // x = sum_i ((v_i * q~_i) mod q_i) * q*_i  (mod Q), centered.
        BigUint acc;
        for (size_t i = 0; i < level; ++i) {
            const Modulus& qi = poly.modulus(i);
            u64 scaled = qi.mul(poly.limb(i)[c], t.q_tilde[i]);
            acc.addMulWord(t.q_star[i], scaled);
        }
        // acc < level * Q; reduce mod Q by repeated subtraction.
        while (!(acc < t.q))
            acc.sub(t.q);
        if (t.q_half < acc) {
            BigUint neg = t.q;
            neg.sub(acc);
            out[c] = -neg.toDouble();
        } else {
            out[c] = acc.toDouble();
        }
    }
    return out;
}

std::vector<std::complex<double>>
CkksEncoder::decode(const Plaintext& pt) const
{
    MAD_REQUIRE(pt.scale > 0, "plaintext has no scale");
    RnsPoly poly = pt.poly;
    poly.setRep(Rep::Coeff);
    std::vector<double> coeffs = decodeCoefficients(poly);

    std::vector<std::complex<double>> a(n);
    const double inv_scale = 1.0 / pt.scale;
    for (size_t i = 0; i < n; ++i)
        a[i] = {coeffs[i] * inv_scale, 0.0};
    fftForward(a);

    std::vector<std::complex<double>> slots(num_slots);
    for (size_t j = 0; j < num_slots; ++j)
        slots[j] = a[slot_index[j]];
    return slots;
}

} // namespace madfhe
