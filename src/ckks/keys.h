/**
 * @file
 * Key material: secret, public, and switching keys (relinearization and
 * Galois keys are switching keys for s^2 and sigma_t(s)). Switching keys
 * support the MAD "key compression" optimization (Section 3.2): the
 * uniformly random `a` half of each digit is represented by a PRNG seed
 * and re-expanded on demand, halving key storage/DRAM traffic.
 */
#ifndef MADFHE_CKKS_KEYS_H
#define MADFHE_CKKS_KEYS_H

#include <map>
#include <optional>

#include "ckks/context.h"
#include "ckks/ciphertext.h"
#include "support/random.h"

namespace madfhe {

struct SecretKey
{
    /** s over the full key basis QP, evaluation representation. */
    RnsPoly s;
    /** s as signed coefficients (needed to derive s^2 / sigma_t(s) keys). */
    std::vector<i64> s_coeffs;
};

struct PublicKey
{
    RnsPoly b; ///< -a*s + e over Q (max level), eval rep.
    RnsPoly a;
};

/**
 * A switching key ksk_{s' -> s}: dnum digit pairs (b_j, a_j) over the full
 * QP basis (Equation 2 of the paper). When compressed, the a_j half is not
 * stored; expandA() regenerates it from the seed.
 */
class SwitchingKey
{
  public:
    SwitchingKey() = default;
    SwitchingKey(std::vector<RnsPoly> b, std::vector<RnsPoly> a,
                 Prng::Seed seed);

    size_t numDigits() const { return b_polys.size(); }
    const RnsPoly& b(size_t j) const { return b_polys[j]; }
    const RnsPoly& a(size_t j) const;

    /** Drop the stored a_j halves, keeping only the seed. */
    void compress();
    /** Regenerate all a_j from the seed (idempotent, bit-exact). */
    void expandA(const CkksContext& ctx);
    /** Alias for expandA(), kept for existing call sites. */
    void expand(const CkksContext& ctx) { expandA(ctx); }
    bool isCompressed() const { return a_polys.empty(); }

    /** Bytes of polynomial material currently stored. */
    size_t storedBytes() const;
    /** Bytes a fully expanded key occupies. */
    size_t expandedBytes() const;
    /** Bytes the seed-expandable a_j halves occupy when resident — the
     *  portion a key-cache eviction reclaims. */
    size_t aBytes() const { return expandedBytes() / 2; }

    const Prng::Seed& seed() const { return prng_seed; }

    /**
     * Deterministically sample the a_j polynomials for a seed over the
     * given basis (shared by key generation and expansion).
     */
    static std::vector<RnsPoly> sampleA(const CkksContext& ctx,
                                        const Prng::Seed& seed,
                                        size_t num_digits);

  private:
    std::vector<RnsPoly> b_polys;
    std::vector<RnsPoly> a_polys;
    Prng::Seed prng_seed{};
};

/** Galois keys: one switching key per Galois element. */
using GaloisKeys = std::map<u64, SwitchingKey>;

/**
 * Generates all key material for a CkksContext.
 */
class KeyGenerator
{
  public:
    explicit KeyGenerator(std::shared_ptr<const CkksContext> ctx);

    SecretKey secretKey();
    PublicKey publicKey(const SecretKey& sk);
    /** Relinearization key: switches s^2 -> s. */
    SwitchingKey relinKey(const SecretKey& sk);
    /** Galois key for the automorphism x -> x^t: switches sigma_t(s) -> s. */
    SwitchingKey galoisKey(const SecretKey& sk, u64 galois_elt);
    /** Galois keys for a set of rotation steps (plus conjugation if asked). */
    GaloisKeys galoisKeys(const SecretKey& sk, const std::vector<int>& steps,
                          bool include_conjugate = false);

  private:
    /** Build a switching key encrypting P * s_from under s. */
    SwitchingKey makeSwitchingKey(const SecretKey& sk,
                                  const RnsPoly& s_from_keybasis);

    std::shared_ptr<const CkksContext> ctx;
    Sampler sampler;
    u64 next_key_seed;
};

} // namespace madfhe

#endif // MADFHE_CKKS_KEYS_H
