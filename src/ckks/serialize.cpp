#include "ckks/serialize.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "support/faultinject.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {

/**
 * Wire format v2. Every public entry point writes a 16-byte file header
 * (format magic + version), then the object body using the same
 * per-section magics as v1. A running FNV-1a checksum over every byte
 * since the start of the blob is emitted as an 8-byte checkpoint after
 * each section header and after each limb, so any flipped byte is
 * caught at the next checkpoint and every blob ends on one. All size
 * and count fields are validated against the ring (degree, modulus
 * count) *before* any allocation, so a hostile length field cannot
 * trigger a multi-GB resize.
 */
constexpr u64 kFileMagic = 0x4d41444648453032ULL; // "MADFHE02"
constexpr u64 kFormatVersion = 2;

constexpr u64 kPolyMagic = 0x4d414450504f4c59ULL; // "MADPPOLY"
constexpr u64 kCtMagic = 0x4d41445043545854ULL;   // "MADPCTXT"
constexpr u64 kPtMagic = 0x4d41445050545854ULL;   // "MADPPTXT"
constexpr u64 kKskMagic = 0x4d414450204b534bULL;  // "MADP KSK"
constexpr u64 kSctMagic = 0x4d41445053435458ULL;  // "MADPSCTX"
constexpr u64 kGksMagic = 0x4d41445020474b53ULL;  // "MADP GKS"
constexpr u64 kPkMagic = 0x4d41445020504b30ULL;   // "MADP PK0"
constexpr u64 kSkMagic = 0x4d41445020534b30ULL;   // "MADP SK0"

constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
constexpr u64 kFnvPrime = 0x100000001b3ULL;

/** Reject with a typed corrupt-stream error carrying the check site. */
#define STREAM_CHECK(cond, msg)                                               \
    do {                                                                      \
        if (!(cond))                                                          \
            throw ::madfhe::CorruptStreamError((msg), __FILE__, __LINE__);    \
    } while (0)

faultinject::Site g_fault_save("ckks.serialize_save",
                               faultinject::kStreamKinds);
faultinject::Site g_fault_load("ckks.serialize_load",
                               faultinject::kStreamKinds);

/**
 * Checksumming writer. One Writer spans one blob (nested objects share
 * it), so each checkpoint covers every byte emitted since the header.
 */
class Writer
{
  public:
    explicit Writer(std::ostream& os_) : os(os_)
    {
        faultinject::initFromEnvOnce();
        u64v(kFileMagic);
        u64v(kFormatVersion);
    }

    void bytes(const void* p, size_t len)
    {
        if (truncated)
            return;
        auto t = faultinject::touchStream(g_fault_save, len);
        if (t.action == faultinject::StreamTouch::Action::Truncate) {
            truncated = true;
            return;
        }
        const u8* src = static_cast<const u8*>(p);
        // The checksum always covers the intended bytes: an injected
        // corruption models damage after checksumming (in transit or at
        // rest), which is exactly what the checkpoints must catch.
        fold(src, len);
        if (t.action == faultinject::StreamTouch::Action::Corrupt) {
            std::vector<u8> copy(src, src + len);
            copy[t.offset % len] ^= t.bit;
            os.write(reinterpret_cast<const char*>(copy.data()),
                     static_cast<std::streamsize>(len));
            return;
        }
        os.write(reinterpret_cast<const char*>(src),
                 static_cast<std::streamsize>(len));
    }

    void u64v(u64 v) { bytes(&v, sizeof(v)); }
    void dbl(double v) { bytes(&v, sizeof(v)); }

    /** Emit the running checksum (not folded into itself). */
    void checkpoint()
    {
        if (truncated)
            return;
        os.write(reinterpret_cast<const char*>(&csum), sizeof(csum));
    }

  private:
    void fold(const u8* p, size_t len)
    {
        for (size_t i = 0; i < len; ++i) {
            csum ^= p[i];
            csum *= kFnvPrime;
        }
    }

    std::ostream& os;
    u64 csum = kFnvOffset;
    bool truncated = false;
};

/** Checksum-verifying reader, mirroring Writer. */
class Reader
{
  public:
    explicit Reader(std::istream& is_) : is(is_)
    {
        faultinject::initFromEnvOnce();
        STREAM_CHECK(u64v() == kFileMagic,
                     "not a madfhe blob (bad file magic)");
        u64 version = u64v();
        STREAM_CHECK(version == kFormatVersion,
                     "unsupported wire-format version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kFormatVersion) + ")");
    }

    void bytes(void* p, size_t len)
    {
        rawRead(p, len);
        auto t = faultinject::touchStream(g_fault_load, len);
        if (t.action == faultinject::StreamTouch::Action::Truncate)
            injected_eof = true; // next read behaves as a short stream
        else if (t.action == faultinject::StreamTouch::Action::Corrupt)
            static_cast<u8*>(p)[t.offset % len] ^= t.bit;
        const u8* src = static_cast<const u8*>(p);
        for (size_t i = 0; i < len; ++i) {
            csum ^= src[i];
            csum *= kFnvPrime;
        }
    }

    u64 u64v()
    {
        u64 v = 0;
        bytes(&v, sizeof(v));
        return v;
    }

    double dbl()
    {
        double v = 0;
        bytes(&v, sizeof(v));
        return v;
    }

    /** Read a stored checksum and compare against the running one. */
    void checkpoint(const char* what)
    {
        u64 stored = 0;
        rawRead(&stored, sizeof(stored));
        STREAM_CHECK(stored == csum,
                     std::string("checksum mismatch in ") + what +
                         " section; stream is corrupted");
    }

  private:
    void rawRead(void* p, size_t len)
    {
        if (!injected_eof)
            is.read(static_cast<char*>(p),
                    static_cast<std::streamsize>(len));
        STREAM_CHECK(!injected_eof && static_cast<bool>(is),
                     "truncated stream");
    }

    std::istream& is;
    u64 csum = kFnvOffset;
    bool injected_eof = false;
};

void
polyBody(Writer& w, const RnsPoly& poly)
{
    MAD_REQUIRE(!poly.empty(), "cannot serialize an empty polynomial");
    w.u64v(kPolyMagic);
    w.u64v(poly.degree());
    w.u64v(poly.numLimbs());
    w.u64v(poly.rep() == Rep::Eval ? 1 : 0);
    for (u32 idx : poly.basis())
        w.u64v(idx);
    w.checkpoint();
    for (size_t i = 0; i < poly.numLimbs(); ++i) {
        w.bytes(poly.limb(i), poly.degree() * sizeof(u64));
        w.checkpoint();
    }
}

RnsPoly
polyBody(Reader& r, const std::shared_ptr<const RingContext>& ring)
{
    STREAM_CHECK(r.u64v() == kPolyMagic, "bad magic for polynomial");
    const u64 degree = r.u64v();
    STREAM_CHECK(degree == ring->degree(), "ring degree mismatch");
    const u64 limbs = r.u64v();
    STREAM_CHECK(limbs >= 1 && limbs <= ring->numModuli(), "bad limb count");
    const u64 rep_field = r.u64v();
    STREAM_CHECK(rep_field <= 1, "bad representation field");
    const Rep rep = rep_field ? Rep::Eval : Rep::Coeff;
    std::vector<u32> basis(limbs);
    for (auto& b : basis) {
        u64 v = r.u64v();
        STREAM_CHECK(v < ring->numModuli(), "chain index out of range");
        b = static_cast<u32>(v);
    }
    r.checkpoint("polynomial header");
    // All allocation inputs (degree, limbs) are now validated against the
    // ring, so this is bounded by degree * numModuli * 8 bytes.
    RnsPoly poly(ring, basis, rep);
    for (size_t i = 0; i < limbs; ++i) {
        r.bytes(poly.limb(i), degree * sizeof(u64));
        r.checkpoint("polynomial limb");
        const Modulus& q = poly.modulus(i);
        for (size_t c = 0; c < degree; ++c)
            STREAM_CHECK(poly.limb(i)[c] < q.value(),
                         "limb value out of range for modulus");
    }
    return poly;
}

void
kskBody(Writer& w, const SwitchingKey& key, bool force_compressed = false)
{
    const bool compressed = force_compressed || key.isCompressed();
    w.u64v(kKskMagic);
    w.u64v(key.numDigits());
    w.u64v(compressed ? 1 : 0);
    for (u64 word : key.seed())
        w.u64v(word);
    w.checkpoint();
    for (size_t j = 0; j < key.numDigits(); ++j)
        polyBody(w, key.b(j));
    if (!compressed) {
        for (size_t j = 0; j < key.numDigits(); ++j)
            polyBody(w, key.a(j));
    }
}

SwitchingKey
kskBody(Reader& r, const std::shared_ptr<const RingContext>& ring)
{
    STREAM_CHECK(r.u64v() == kKskMagic, "bad magic for switching key");
    const u64 digits = r.u64v();
    STREAM_CHECK(digits >= 1 && digits <= 64, "implausible digit count");
    const bool compressed = r.u64v() != 0;
    Prng::Seed seed{};
    for (auto& word : seed)
        word = r.u64v();
    r.checkpoint("switching-key header");
    std::vector<RnsPoly> b, a;
    b.reserve(digits);
    for (u64 j = 0; j < digits; ++j)
        b.push_back(polyBody(r, ring));
    if (!compressed) {
        a.reserve(digits);
        for (u64 j = 0; j < digits; ++j)
            a.push_back(polyBody(r, ring));
    }
    return SwitchingKey(std::move(b), std::move(a), seed);
}

} // namespace

void
savePoly(std::ostream& os, const RnsPoly& poly)
{
    Writer w(os);
    polyBody(w, poly);
}

RnsPoly
loadPoly(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    return polyBody(r, ring);
}

void
saveCiphertext(std::ostream& os, const Ciphertext& ct)
{
    TELEM_SPAN("Serialize.Save");
    Writer w(os);
    w.u64v(kCtMagic);
    w.dbl(ct.scale);
    polyBody(w, ct.c0);
    polyBody(w, ct.c1);
}

Ciphertext
loadCiphertext(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    TELEM_SPAN("Serialize.Load");
    Reader r(is);
    STREAM_CHECK(r.u64v() == kCtMagic, "bad magic for ciphertext");
    Ciphertext ct;
    ct.scale = r.dbl();
    STREAM_CHECK(std::isfinite(ct.scale) && ct.scale > 0,
                 "non-positive ciphertext scale");
    ct.c0 = polyBody(r, ring);
    ct.c1 = polyBody(r, ring);
    STREAM_CHECK(ct.c0.basis() == ct.c1.basis(),
                 "mismatched component bases");
    return ct;
}

void
saveSeededCiphertext(std::ostream& os, const SeededCiphertext& sct)
{
    Writer w(os);
    w.u64v(kSctMagic);
    w.dbl(sct.scale);
    for (u64 word : sct.seed)
        w.u64v(word);
    polyBody(w, sct.c0);
}

SeededCiphertext
loadSeededCiphertext(std::istream& is,
                     std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    STREAM_CHECK(r.u64v() == kSctMagic, "bad magic for seeded ciphertext");
    SeededCiphertext sct;
    sct.scale = r.dbl();
    STREAM_CHECK(std::isfinite(sct.scale) && sct.scale > 0,
                 "non-positive ciphertext scale");
    for (auto& word : sct.seed)
        word = r.u64v();
    sct.c0 = polyBody(r, ring);
    return sct;
}

void
savePlaintext(std::ostream& os, const Plaintext& pt)
{
    Writer w(os);
    w.u64v(kPtMagic);
    w.dbl(pt.scale);
    polyBody(w, pt.poly);
}

Plaintext
loadPlaintext(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    STREAM_CHECK(r.u64v() == kPtMagic, "bad magic for plaintext");
    Plaintext pt;
    pt.scale = r.dbl();
    STREAM_CHECK(std::isfinite(pt.scale), "non-finite plaintext scale");
    pt.poly = polyBody(r, ring);
    return pt;
}

void
saveSwitchingKey(std::ostream& os, const SwitchingKey& key)
{
    Writer w(os);
    kskBody(w, key);
}

SwitchingKey
loadSwitchingKey(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    return kskBody(r, ring);
}

void
saveSwitchingKeyCompressed(std::ostream& os, const SwitchingKey& key)
{
    Writer w(os);
    kskBody(w, key, /*force_compressed=*/true);
}

void
saveGaloisKeys(std::ostream& os, const GaloisKeys& keys)
{
    Writer w(os);
    w.u64v(kGksMagic);
    w.u64v(keys.size());
    for (const auto& [elt, key] : keys) {
        w.u64v(elt);
        kskBody(w, key);
    }
    w.checkpoint();
}

GaloisKeys
loadGaloisKeys(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    STREAM_CHECK(r.u64v() == kGksMagic, "bad magic for Galois keys");
    const u64 count = r.u64v();
    STREAM_CHECK(count <= 4096, "implausible Galois key count");
    GaloisKeys keys;
    for (u64 i = 0; i < count; ++i) {
        u64 elt = r.u64v();
        STREAM_CHECK((elt & 1) == 1 && elt < 2 * ring->degree(),
                     "invalid Galois element");
        keys.emplace(elt, kskBody(r, ring));
    }
    r.checkpoint("Galois key set");
    return keys;
}

void
saveGaloisKeysCompressed(std::ostream& os, const GaloisKeys& keys)
{
    Writer w(os);
    w.u64v(kGksMagic);
    w.u64v(keys.size());
    for (const auto& [elt, key] : keys) {
        w.u64v(elt);
        kskBody(w, key, /*force_compressed=*/true);
    }
    w.checkpoint();
}

void
savePublicKey(std::ostream& os, const PublicKey& pk)
{
    Writer w(os);
    w.u64v(kPkMagic);
    polyBody(w, pk.b);
    polyBody(w, pk.a);
}

PublicKey
loadPublicKey(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    STREAM_CHECK(r.u64v() == kPkMagic, "bad magic for public key");
    PublicKey pk;
    pk.b = polyBody(r, ring);
    pk.a = polyBody(r, ring);
    STREAM_CHECK(pk.b.basis() == pk.a.basis(),
                 "mismatched public-key bases");
    return pk;
}

void
saveSecretKey(std::ostream& os, const SecretKey& sk)
{
    MAD_REQUIRE(sk.s_coeffs.size() == sk.s.degree(),
                "secret key coefficient count must equal ring degree");
    Writer w(os);
    w.u64v(kSkMagic);
    polyBody(w, sk.s);
    w.u64v(sk.s_coeffs.size());
    w.bytes(sk.s_coeffs.data(), sk.s_coeffs.size() * sizeof(i64));
    w.checkpoint();
}

SecretKey
loadSecretKey(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    Reader r(is);
    STREAM_CHECK(r.u64v() == kSkMagic, "bad magic for secret key");
    SecretKey sk;
    sk.s = polyBody(r, ring);
    const u64 count = r.u64v();
    STREAM_CHECK(count == ring->degree(),
                 "secret coefficient count must equal ring degree");
    sk.s_coeffs.resize(count);
    r.bytes(sk.s_coeffs.data(), count * sizeof(i64));
    r.checkpoint("secret key");
    for (i64 v : sk.s_coeffs)
        STREAM_CHECK(v >= -1 && v <= 1,
                     "secret coefficient outside the ternary range");
    return sk;
}

namespace {

/** polyBody bytes: section header + checkpoint, then per-limb data. */
size_t
polyBodySize(const RnsPoly& poly)
{
    return 8 * 4 + poly.numLimbs() * 8 + 8 +
           poly.numLimbs() * (poly.degree() * sizeof(u64) + 8);
}

constexpr size_t kFileHeaderSize = 16;

} // namespace

size_t
polyWireSize(const RnsPoly& poly)
{
    return kFileHeaderSize + polyBodySize(poly);
}

size_t
switchingKeyWireSize(const SwitchingKey& key)
{
    size_t bytes = kFileHeaderSize + 8 * 3 + 8 * 4 + 8; // headers + seed
    for (size_t j = 0; j < key.numDigits(); ++j)
        bytes += polyBodySize(key.b(j));
    if (!key.isCompressed())
        for (size_t j = 0; j < key.numDigits(); ++j)
            bytes += polyBodySize(key.a(j));
    return bytes;
}

} // namespace madfhe
