#include "ckks/serialize.h"

#include <istream>
#include <ostream>

namespace madfhe {

namespace {

constexpr u64 kPolyMagic = 0x4d414450504f4c59ULL; // "MADPPOLY"
constexpr u64 kCtMagic = 0x4d41445043545854ULL;   // "MADPCTXT"
constexpr u64 kPtMagic = 0x4d41445050545854ULL;   // "MADPPTXT"
constexpr u64 kKskMagic = 0x4d414450204b534bULL;  // "MADP KSK"

void
writeU64(std::ostream& os, u64 v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

u64
readU64(std::istream& is)
{
    u64 v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    require(static_cast<bool>(is), "truncated stream");
    return v;
}

void
writeDouble(std::ostream& os, double v)
{
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

double
readDouble(std::istream& is)
{
    double v = 0;
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    require(static_cast<bool>(is), "truncated stream");
    return v;
}

void
expectMagic(std::istream& is, u64 magic, const char* what)
{
    u64 got = readU64(is);
    require(got == magic, std::string("bad magic for ") + what);
}

} // namespace

void
savePoly(std::ostream& os, const RnsPoly& poly)
{
    require(!poly.empty(), "cannot serialize an empty polynomial");
    writeU64(os, kPolyMagic);
    writeU64(os, poly.degree());
    writeU64(os, poly.numLimbs());
    writeU64(os, poly.rep() == Rep::Eval ? 1 : 0);
    for (u32 idx : poly.basis())
        writeU64(os, idx);
    for (size_t i = 0; i < poly.numLimbs(); ++i) {
        os.write(reinterpret_cast<const char*>(poly.limb(i)),
                 static_cast<std::streamsize>(poly.degree() * sizeof(u64)));
    }
}

RnsPoly
loadPoly(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kPolyMagic, "polynomial");
    u64 degree = readU64(is);
    require(degree == ring->degree(), "ring degree mismatch");
    u64 limbs = readU64(is);
    require(limbs >= 1 && limbs <= ring->numModuli(), "bad limb count");
    Rep rep = readU64(is) ? Rep::Eval : Rep::Coeff;
    std::vector<u32> basis(limbs);
    for (auto& b : basis) {
        u64 v = readU64(is);
        require(v < ring->numModuli(), "chain index out of range");
        b = static_cast<u32>(v);
    }
    RnsPoly poly(std::move(ring), basis, rep);
    for (size_t i = 0; i < limbs; ++i) {
        is.read(reinterpret_cast<char*>(poly.limb(i)),
                static_cast<std::streamsize>(degree * sizeof(u64)));
        require(static_cast<bool>(is), "truncated polynomial data");
        const Modulus& q = poly.modulus(i);
        for (size_t c = 0; c < degree; ++c)
            require(poly.limb(i)[c] < q.value(),
                    "limb value out of range for modulus");
    }
    return poly;
}

void
saveCiphertext(std::ostream& os, const Ciphertext& ct)
{
    writeU64(os, kCtMagic);
    writeDouble(os, ct.scale);
    savePoly(os, ct.c0);
    savePoly(os, ct.c1);
}

Ciphertext
loadCiphertext(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kCtMagic, "ciphertext");
    Ciphertext ct;
    ct.scale = readDouble(is);
    require(ct.scale > 0, "non-positive ciphertext scale");
    ct.c0 = loadPoly(is, ring);
    ct.c1 = loadPoly(is, ring);
    require(ct.c0.basis() == ct.c1.basis(), "mismatched component bases");
    return ct;
}

namespace {
constexpr u64 kSctMagic = 0x4d41445053435458ULL; // "MADPSCTX"
} // namespace

void
saveSeededCiphertext(std::ostream& os, const SeededCiphertext& sct)
{
    writeU64(os, kSctMagic);
    writeDouble(os, sct.scale);
    for (u64 w : sct.seed)
        writeU64(os, w);
    savePoly(os, sct.c0);
}

SeededCiphertext
loadSeededCiphertext(std::istream& is,
                     std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kSctMagic, "seeded ciphertext");
    SeededCiphertext sct;
    sct.scale = readDouble(is);
    require(sct.scale > 0, "non-positive ciphertext scale");
    for (auto& w : sct.seed)
        w = readU64(is);
    sct.c0 = loadPoly(is, ring);
    return sct;
}

void
savePlaintext(std::ostream& os, const Plaintext& pt)
{
    writeU64(os, kPtMagic);
    writeDouble(os, pt.scale);
    savePoly(os, pt.poly);
}

Plaintext
loadPlaintext(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kPtMagic, "plaintext");
    Plaintext pt;
    pt.scale = readDouble(is);
    pt.poly = loadPoly(is, ring);
    return pt;
}

void
saveSwitchingKey(std::ostream& os, const SwitchingKey& key)
{
    writeU64(os, kKskMagic);
    writeU64(os, key.numDigits());
    writeU64(os, key.isCompressed() ? 1 : 0);
    for (u64 w : key.seed())
        writeU64(os, w);
    for (size_t j = 0; j < key.numDigits(); ++j)
        savePoly(os, key.b(j));
    if (!key.isCompressed()) {
        for (size_t j = 0; j < key.numDigits(); ++j)
            savePoly(os, key.a(j));
    }
}

SwitchingKey
loadSwitchingKey(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kKskMagic, "switching key");
    u64 digits = readU64(is);
    require(digits >= 1 && digits <= 64, "implausible digit count");
    bool compressed = readU64(is) != 0;
    Prng::Seed seed{};
    for (auto& w : seed)
        w = readU64(is);
    std::vector<RnsPoly> b, a;
    for (u64 j = 0; j < digits; ++j)
        b.push_back(loadPoly(is, ring));
    if (!compressed) {
        for (u64 j = 0; j < digits; ++j)
            a.push_back(loadPoly(is, ring));
    }
    return SwitchingKey(std::move(b), std::move(a), seed);
}

namespace {
constexpr u64 kGksMagic = 0x4d41445020474b53ULL; // "MADP GKS"
constexpr u64 kPkMagic = 0x4d41445020504b30ULL;  // "MADP PK0"
} // namespace

void
saveGaloisKeys(std::ostream& os, const GaloisKeys& keys)
{
    writeU64(os, kGksMagic);
    writeU64(os, keys.size());
    for (const auto& [elt, key] : keys) {
        writeU64(os, elt);
        saveSwitchingKey(os, key);
    }
}

GaloisKeys
loadGaloisKeys(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kGksMagic, "Galois keys");
    u64 count = readU64(is);
    require(count <= 4096, "implausible Galois key count");
    GaloisKeys keys;
    for (u64 i = 0; i < count; ++i) {
        u64 elt = readU64(is);
        require((elt & 1) == 1 && elt < 2 * ring->degree(),
                "invalid Galois element");
        keys.emplace(elt, loadSwitchingKey(is, ring));
    }
    return keys;
}

void
savePublicKey(std::ostream& os, const PublicKey& pk)
{
    writeU64(os, kPkMagic);
    savePoly(os, pk.b);
    savePoly(os, pk.a);
}

PublicKey
loadPublicKey(std::istream& is, std::shared_ptr<const RingContext> ring)
{
    expectMagic(is, kPkMagic, "public key");
    PublicKey pk;
    pk.b = loadPoly(is, ring);
    pk.a = loadPoly(is, ring);
    require(pk.b.basis() == pk.a.basis(), "mismatched public-key bases");
    return pk;
}

size_t
polyWireSize(const RnsPoly& poly)
{
    return 8 * 4 + poly.numLimbs() * 8 +
           poly.numLimbs() * poly.degree() * sizeof(u64);
}

size_t
switchingKeyWireSize(const SwitchingKey& key)
{
    size_t bytes = 8 * 3 + 8 * 4; // header + seed
    for (size_t j = 0; j < key.numDigits(); ++j)
        bytes += polyWireSize(key.b(j));
    if (!key.isCompressed())
        for (size_t j = 0; j < key.numDigits(); ++j)
            bytes += polyWireSize(key.a(j));
    return bytes;
}

} // namespace madfhe
