/**
 * @file
 * CkksContext: the shared immutable state of one CKKS instantiation — the
 * ring, the modulus chain split into key-switching digits, the raised basis
 * P, and every cached basis converter / scalar table that ModUp, ModDown,
 * Rescale and the merged/hoisted variants (Section 3.2 of the paper) need.
 */
#ifndef MADFHE_CKKS_CONTEXT_H
#define MADFHE_CKKS_CONTEXT_H

#include <map>
#include <memory>

#include "ckks/params.h"
#include "ring/poly.h"

namespace madfhe {

class CkksContext
{
  public:
    explicit CkksContext(const CkksParams& params);

    const CkksParams& params() const { return parms; }
    std::shared_ptr<const RingContext> ring() const { return ring_ctx; }
    size_t degree() const { return ring_ctx->degree(); }
    size_t slots() const { return parms.slots(); }

    /** Limbs in a fresh ciphertext (L + 1). */
    size_t maxLevel() const { return parms.chainLength(); }
    size_t dnum() const { return parms.dnum; }
    size_t alpha() const { return parms.alpha(); }

    /** beta: digits spanned by a ciphertext with `level` limbs. */
    size_t numDigits(size_t level) const { return ceilDiv(level, alpha()); }
    /** First chain index of digit j. */
    size_t digitStart(size_t j) const { return j * alpha(); }
    /** Number of limbs of digit j for a ciphertext with `level` limbs. */
    size_t digitSize(size_t j, size_t level) const;

    /** Chain indices of the raised basis Q[0,level) + P. */
    std::vector<u32> raisedIndices(size_t level) const;
    /** Chain indices of the full key basis Q[0,L+1) + P. */
    std::vector<u32> keyIndices() const;

    /**
     * Converter from the limbs of digit j (at `level` limbs) to the rest of
     * the raised basis (the ModUp NewLimb step, Algorithm 1).
     */
    const BasisConverter& modUpConverter(size_t digit, size_t level) const;

    /** Converter P -> Q[0,level) (the ModDown step, Algorithm 2). */
    const BasisConverter& modDownConverter(size_t level) const;

    /**
     * Converter (P u {q_(level-1)}) -> Q[0,level-1): the *merged* ModDown
     * that divides by P and rescales by the top limb in one pass
     * (the "Merging ModDown in Mult" optimization, Figure 4).
     */
    const BasisConverter& mergedModDownConverter(size_t level) const;

    /** P mod q_i. */
    u64 pModQ(size_t i) const { return p_mod_q[i]; }
    /** P^{-1} mod q_i. */
    u64 pInvModQ(size_t i) const { return p_inv_mod_q[i]; }
    /** q_{level-1}^{-1} mod q_i, for Rescale at `level` limbs. */
    u64 rescaleInv(size_t level, size_t i) const;
    /** (P * q_{level-1})^{-1} mod q_i, for the merged ModDown. */
    u64 mergedInv(size_t level, size_t i) const;

    /** The scale a ciphertext at `level` limbs is rescaled to track: the
     *  actual prime values drift slightly from 2^log_scale, so the exact
     *  running scale is data. */
    double scale() const { return parms.scale(); }

    /** Modulus value of Q-chain limb i. */
    u64 qValue(size_t i) const { return ring_ctx->modulus(i).value(); }

    /** log2 of the full modulus QP (all Q and P limbs). */
    double logQP() const;
    /** Coarse Ring-LWE security estimate for this parameter set (see
     *  support/security.h; toy test parameters score far below 128). */
    double securityBits() const;

  private:
    CkksParams parms;
    std::shared_ptr<RingContext> ring_ctx;

    std::vector<u64> p_mod_q;
    std::vector<u64> p_inv_mod_q;
    /** rescale_inv[lvl][i] = q_(lvl-1)^{-1} mod q_i (i < lvl-1). */
    std::vector<std::vector<u64>> rescale_inv;
    /** merged_inv[lvl][i] = (P*q_(lvl-1))^{-1} mod q_i (i < lvl-1). */
    std::vector<std::vector<u64>> merged_inv;

    mutable std::map<std::pair<size_t, size_t>,
                     std::unique_ptr<BasisConverter>> modup_cache;
    mutable std::map<size_t, std::unique_ptr<BasisConverter>> moddown_cache;
    mutable std::map<size_t, std::unique_ptr<BasisConverter>> merged_cache;
};

} // namespace madfhe

#endif // MADFHE_CKKS_CONTEXT_H
