#include "ckks/noise.h"

#include <cmath>

namespace madfhe {

namespace {

/** Safety factor applied to every heuristic bound (log2). */
constexpr double kSafetyLog2 = 5.0; // 32x

double
log2Sum(double a, double b)
{
    // log2(2^a + 2^b), stable.
    double hi = std::max(a, b), lo = std::min(a, b);
    return hi + std::log2(1.0 + std::exp2(lo - hi));
}

} // namespace

NoiseEstimator::NoiseEstimator(std::shared_ptr<const CkksContext> ctx_)
    : ctx(std::move(ctx_))
{
    sqrt_n = std::sqrt(static_cast<double>(ctx->degree()));
    sigma = 3.24; // centered binomial CB(21)
}

NoiseBound
NoiseEstimator::encoding() const
{
    // Rounding each coefficient to an integer contributes <= 1/2 per
    // coefficient; in the slot domain that is ~sqrt(N)/(2*Delta).
    double err = sqrt_n / (2.0 * ctx->scale());
    return NoiseBound{std::log2(err) + kSafetyLog2};
}

NoiseBound
NoiseEstimator::fresh() const
{
    // e_total = e0 + u*e_pk + e1*s: coefficient-domain std dev
    // ~ sigma * sqrt(1 + 2N/3 + h'); slot error ~ sqrt(N) * that / Delta.
    double n = static_cast<double>(ctx->degree());
    double h = ctx->params().hamming_weight
                   ? static_cast<double>(ctx->params().hamming_weight)
                   : 2.0 * n / 3.0;
    double coeff_sigma = sigma * std::sqrt(1.0 + 2.0 * n / 3.0 + h);
    double err = sqrt_n * coeff_sigma / ctx->scale();
    return NoiseBound{log2Sum(std::log2(err), encoding().log2_error) +
                      kSafetyLog2};
}

NoiseBound
NoiseEstimator::add(const NoiseBound& a, const NoiseBound& b) const
{
    return NoiseBound{log2Sum(a.log2_error, b.log2_error)};
}

NoiseBound
NoiseEstimator::mulPlain(const NoiseBound& a, double pt_mag,
                         double ct_mag) const
{
    // err(x*p) ~ err_x * |p| + encoding(p) * |x|, then rescale rounding.
    double term1 = a.log2_error + std::log2(std::max(pt_mag, 1e-12));
    double term2 =
        encoding().log2_error + std::log2(std::max(ct_mag, 1e-12));
    NoiseBound prod{log2Sum(term1, term2)};
    return rescale(prod);
}

double
NoiseEstimator::keySwitchFloorLog2(size_t level) const
{
    // Hybrid key switching: sum_j x~_j * e_j scaled down by P. The digit
    // lifts are bounded by their digit product; with P chosen to cover
    // the largest digit the residual is ~ beta * sqrt(N) * sigma in the
    // coefficient domain, divided by the scale in the slot domain.
    double beta = static_cast<double>(ctx->numDigits(level));
    double err = beta * sqrt_n * sigma *
                 std::sqrt(static_cast<double>(ctx->degree())) /
                 ctx->scale();
    return std::log2(err) + kSafetyLog2;
}

NoiseBound
NoiseEstimator::keySwitch(const NoiseBound& a, size_t level) const
{
    return NoiseBound{log2Sum(a.log2_error, keySwitchFloorLog2(level))};
}

NoiseBound
NoiseEstimator::mul(const NoiseBound& a, const NoiseBound& b, double mag_a,
                    double mag_b, size_t level) const
{
    // err(xy) ~ err_x*|y| + err_y*|x|, plus relinearization noise, then
    // rescale rounding.
    double term1 = a.log2_error + std::log2(std::max(mag_b, 1e-12));
    double term2 = b.log2_error + std::log2(std::max(mag_a, 1e-12));
    double combined =
        log2Sum(log2Sum(term1, term2), keySwitchFloorLog2(level));
    return rescale(NoiseBound{combined});
}

NoiseBound
NoiseEstimator::rescale(const NoiseBound& a) const
{
    double rounding = std::log2(sqrt_n / ctx->scale()) + kSafetyLog2;
    return NoiseBound{log2Sum(a.log2_error, rounding)};
}

double
measureSlotError(const CkksEncoder& encoder, Decryptor& decryptor,
                 const Ciphertext& ct,
                 const std::vector<std::complex<double>>& expected)
{
    auto slots = encoder.decode(decryptor.decrypt(ct));
    MAD_REQUIRE(expected.size() <= slots.size(), "too many expected values");
    double max_err = 0;
    for (size_t i = 0; i < expected.size(); ++i)
        max_err = std::max(max_err, std::abs(slots[i] - expected[i]));
    return max_err;
}

} // namespace madfhe
