#include "ckks/encryptor.h"

namespace madfhe {

Encryptor::Encryptor(std::shared_ptr<const CkksContext> ctx_, PublicKey pk_,
                     u64 seed)
    : ctx(std::move(ctx_)), pk(std::move(pk_)), sampler(seed)
{
}

Ciphertext
Encryptor::encrypt(const Plaintext& pt)
{
    MAD_REQUIRE(pt.poly.rep() == Rep::Eval, "plaintext must be in eval rep");
    const size_t level = pt.level();
    const size_t n = ctx->degree();
    auto basis = ctx->ring()->qIndices(level);

    RnsPoly u(ctx->ring(), basis, Rep::Coeff);
    u.setFromSigned(sampler.ternary(n));
    u.toEval();

    RnsPoly e0(ctx->ring(), basis, Rep::Coeff);
    e0.setFromSigned(sampler.centeredBinomial(n));
    e0.toEval();
    RnsPoly e1(ctx->ring(), basis, Rep::Coeff);
    e1.setFromSigned(sampler.centeredBinomial(n));
    e1.toEval();

    Ciphertext ct;
    ct.c0 = extractLimbs(pk.b, basis);
    ct.c0.mulPointwise(u);
    ct.c0.add(e0);
    ct.c0.add(pt.poly);
    ct.c1 = extractLimbs(pk.a, basis);
    ct.c1.mulPointwise(u);
    ct.c1.add(e1);
    ct.scale = pt.scale;
    return ct;
}

Ciphertext
Encryptor::encryptSymmetric(const Plaintext& pt, const SecretKey& sk)
{
    MAD_REQUIRE(pt.poly.rep() == Rep::Eval, "plaintext must be in eval rep");
    const size_t level = pt.level();
    const size_t n = ctx->degree();
    auto basis = ctx->ring()->qIndices(level);

    Ciphertext ct;
    ct.c1 = RnsPoly(ctx->ring(), basis, Rep::Eval);
    Prng& rng = sampler.rng();
    for (size_t i = 0; i < ct.c1.numLimbs(); ++i) {
        const u64 q = ct.c1.modulus(i).value();
        u64* limb = ct.c1.limb(i);
        for (size_t c = 0; c < n; ++c)
            limb[c] = rng.uniform(q);
    }

    RnsPoly e(ctx->ring(), basis, Rep::Coeff);
    e.setFromSigned(sampler.centeredBinomial(n));
    e.toEval();

    RnsPoly s_q = extractLimbs(sk.s, basis);
    ct.c0 = ct.c1;
    ct.c0.mulPointwise(s_q);
    ct.c0.negate();
    ct.c0.add(e);
    ct.c0.add(pt.poly);
    ct.scale = pt.scale;
    return ct;
}

namespace {

/** Deterministically expand a seed into a uniform c1 over `basis`
 *  (limb-major order, the wire contract of SeededCiphertext). */
RnsPoly
sampleC1(const CkksContext& ctx, const Prng::Seed& seed,
         const std::vector<u32>& basis)
{
    Prng rng(seed);
    RnsPoly c1(ctx.ring(), basis, Rep::Eval);
    for (size_t i = 0; i < c1.numLimbs(); ++i) {
        const u64 q = c1.modulus(i).value();
        u64* limb = c1.limb(i);
        for (size_t c = 0; c < c1.degree(); ++c)
            limb[c] = rng.uniform(q);
    }
    return c1;
}

} // namespace

SeededCiphertext
Encryptor::encryptSymmetricSeeded(const Plaintext& pt, const SecretKey& sk)
{
    MAD_REQUIRE(pt.poly.rep() == Rep::Eval, "plaintext must be in eval rep");
    const size_t level = pt.level();
    auto basis = ctx->ring()->qIndices(level);

    Prng::Seed seed = Prng(sampler.rng().next()).seed();
    RnsPoly c1 = sampleC1(*ctx, seed, basis);

    RnsPoly e(ctx->ring(), basis, Rep::Coeff);
    e.setFromSigned(sampler.centeredBinomial(ctx->degree()));
    e.toEval();

    RnsPoly s_q = extractLimbs(sk.s, basis);
    SeededCiphertext sct;
    sct.c0 = std::move(c1);
    sct.c0.mulPointwise(s_q);
    sct.c0.negate();
    sct.c0.add(e);
    sct.c0.add(pt.poly);
    sct.seed = seed;
    sct.scale = pt.scale;
    return sct;
}

Ciphertext
expandSeeded(const CkksContext& ctx, const SeededCiphertext& sct)
{
    Ciphertext ct;
    ct.c0 = sct.c0;
    ct.c1 = sampleC1(ctx, sct.seed,
                     ctx.ring()->qIndices(sct.level()));
    ct.scale = sct.scale;
    return ct;
}

Ciphertext
Encryptor::encryptZero(size_t level, double scale)
{
    Plaintext zero;
    zero.poly = RnsPoly(ctx->ring(), ctx->ring()->qIndices(level), Rep::Eval);
    zero.scale = scale;
    return encrypt(zero);
}

Decryptor::Decryptor(std::shared_ptr<const CkksContext> ctx_, SecretKey sk_)
    : ctx(std::move(ctx_)), sk(std::move(sk_))
{
}

Plaintext
Decryptor::decrypt(const Ciphertext& ct)
{
    MAD_REQUIRE(!ct.c0.empty(), "cannot decrypt an empty ciphertext");
    auto basis = ct.c0.basis();
    RnsPoly s_q = extractLimbs(sk.s, basis);

    Plaintext pt;
    pt.poly = ct.c1;
    pt.poly.mulPointwise(s_q);
    pt.poly.add(ct.c0);
    pt.scale = ct.scale;
    return pt;
}

} // namespace madfhe
