#include "ckks/matvec.h"

#include <cmath>

#include "memtrace/trace.h"
#include "telemetry/telemetry.h"

namespace madfhe {

LinearTransform::LinearTransform(
    std::shared_ptr<const CkksContext> ctx_,
    std::map<int, std::vector<std::complex<double>>> diagonals,
    double pt_scale_, MatVecOptions options)
    : ctx(std::move(ctx_)), pt_scale(pt_scale_), opts(options)
{
    MAD_REQUIRE(!diagonals.empty(), "transform needs at least one diagonal");
    const size_t slots = ctx->slots();
    for (auto& [d, v] : diagonals) {
        MAD_REQUIRE(v.size() == slots, "diagonal length must equal slot count");
        int dd = d % static_cast<int>(slots);
        if (dd < 0)
            dd += static_cast<int>(slots);
        // Merge aliased diagonals (d and d mod slots describe the same
        // rotation).
        auto [it, inserted] = diags.emplace(dd, v);
        if (!inserted) {
            for (size_t k = 0; k < slots; ++k)
                it->second[k] += v[k];
        }
    }
}

size_t
LinearTransform::babySteps() const
{
    if (opts.baby_steps)
        return opts.baby_steps;
    size_t bs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(diags.size()))));
    return std::max<size_t>(1, bs);
}

std::vector<int>
LinearTransform::requiredRotations() const
{
    std::vector<int> steps;
    const size_t bs = babySteps();
    for (const auto& [d, v] : diags) {
        (void)v;
        if (!opts.hoist_modup && !opts.hoist_moddown) {
            steps.push_back(d); // naive path rotates by the raw index
            continue;
        }
        int j = d % static_cast<int>(bs);
        int giant = d - j;
        steps.push_back(j);
        steps.push_back(giant);
    }
    return steps;
}

double
LinearTransform::maxDiagonalMagnitude() const
{
    double mag = 0.0;
    for (const auto& [d, v] : diags) {
        (void)d;
        for (const std::complex<double>& c : v)
            mag = std::max(mag, std::abs(c));
    }
    return mag;
}

std::vector<std::complex<double>>
LinearTransform::applyPlain(const std::vector<std::complex<double>>& x) const
{
    const size_t slots = ctx->slots();
    MAD_REQUIRE(x.size() == slots, "input length must equal slot count");
    std::vector<std::complex<double>> y(slots, {0.0, 0.0});
    for (const auto& [d, diag] : diags) {
        for (size_t k = 0; k < slots; ++k)
            y[k] += diag[k] * x[(k + d) % slots];
    }
    return y;
}

Ciphertext
LinearTransform::apply(const Evaluator& eval, const CkksEncoder& encoder,
                       const Ciphertext& ct, const GaloisKeys& gks) const
{
    MAD_TRACE_SCOPE("PtMatVecMult");
    TELEM_SPAN("PtMatVecMult");
    if (!opts.hoist_modup && !opts.hoist_moddown)
        return applyNaive(eval, encoder, ct, gks);
    return applyBsgs(eval, encoder, ct, gks);
}

Ciphertext
LinearTransform::applyFused(const Evaluator& eval, const CkksEncoder& encoder,
                            const Ciphertext& ct, const GaloisKeys& gks) const
{
    if (!opts.hoist_modup || !opts.hoist_moddown || opts.double_hoist)
        return apply(eval, encoder, ct, gks);

    MAD_TRACE_SCOPE("PtMatVecMult");
    TELEM_SPAN("PtMatVecMult");
    TELEM_COUNT("matvec.fused", 1);
    const size_t slots = ctx->slots();
    const size_t bs = babySteps();
    const KeySwitcher& ksw = eval.keySwitcher();

    std::map<int, std::map<int, const std::vector<std::complex<double>>*>>
        groups;
    for (const auto& [d, diag] : diags) {
        int j = d % static_cast<int>(bs);
        groups[d - j][j] = &diag;
    }

    auto digits = ksw.decomposeAndRaise(ct.c1);
    std::map<int, RaisedCiphertext> baby_raised;
    for (const auto& [giant, cols] : groups) {
        (void)giant;
        for (const auto& [j, diag] : cols) {
            (void)diag;
            if (!baby_raised.count(j))
                baby_raised.emplace(j, eval.rotateRaised(digits, ct, j, gks));
        }
    }

    Ciphertext acc;
    bool first = true;
    for (const auto& [giant, cols] : groups) {
        // The leading diagonal seeds the accumulator exactly as the
        // unfused path does (raised copy + pointwise product); every
        // further diagonal lands as an in-place fused MAC, which is
        // byte-identical to copy + mulPointwise + add over canonical
        // [0, q) residues but touches one raised operand less.
        RaisedCiphertext inner;
        bool inner_first = true;
        for (const auto& [j, diag] : cols) {
            std::vector<std::complex<double>> rotated(slots);
            for (size_t k = 0; k < slots; ++k)
                rotated[k] = (*diag)[(k + slots - giant % slots) % slots];
            Plaintext pt = encoder.encodeRaised(rotated, pt_scale,
                                                ct.level());
            const RaisedCiphertext& baby = baby_raised.at(j);
            if (inner_first) {
                inner = baby;
                eval.mulPlainRaised(inner, pt);
                inner_first = false;
            } else {
                MAD_CHECK(pt.poly.numLimbs() == baby.c0.numLimbs(),
                          "raised plaintext limb mismatch");
                inner.c0.addMul(baby.c0, pt.poly);
                inner.c1.addMul(baby.c1, pt.poly);
            }
        }
        Ciphertext inner_ct = eval.modDownPair(inner);
        Ciphertext outer = eval.rotate(inner_ct, giant, gks);
        if (first) {
            acc = std::move(outer);
            first = false;
        } else {
            acc = eval.add(acc, outer);
        }
    }
    return eval.rescale(acc);
}

Ciphertext
LinearTransform::applyNaive(const Evaluator& eval, const CkksEncoder& encoder,
                            const Ciphertext& ct, const GaloisKeys& gks) const
{
    // Baseline path: one full Rotate (ModUp + ModDown) per diagonal.
    Ciphertext acc;
    bool first = true;
    for (const auto& [d, diag] : diags) {
        Ciphertext rot = eval.rotate(ct, d, gks);
        Plaintext pt = encoder.encode(diag, pt_scale, rot.level());
        Ciphertext term = eval.mulPlain(rot, pt);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = eval.add(acc, term);
        }
    }
    return eval.rescale(acc);
}

Ciphertext
LinearTransform::applyBsgs(const Evaluator& eval, const CkksEncoder& encoder,
                           const Ciphertext& ct, const GaloisKeys& gks) const
{
    const size_t slots = ctx->slots();
    const size_t bs = babySteps();
    const KeySwitcher& ksw = eval.keySwitcher();

    // Group diagonals by giant step: d = giant + j, 0 <= j < bs.
    std::map<int, std::map<int, const std::vector<std::complex<double>>*>>
        groups;
    for (const auto& [d, diag] : diags) {
        int j = d % static_cast<int>(bs);
        groups[d - j][j] = &diag;
    }

    // Baby rotations with ModUp hoisting: Decomp+ModUp once.
    auto digits = ksw.decomposeAndRaise(ct.c1);

    std::map<int, RaisedCiphertext> baby_raised;
    std::map<int, Ciphertext> baby_cts;
    for (const auto& [giant, cols] : groups) {
        (void)giant;
        for (const auto& [j, diag] : cols) {
            (void)diag;
            if (opts.hoist_moddown) {
                if (!baby_raised.count(j))
                    baby_raised.emplace(j,
                        eval.rotateRaised(digits, ct, j, gks));
            } else if (!baby_cts.count(j)) {
                RaisedCiphertext r = eval.rotateRaised(digits, ct, j, gks);
                baby_cts.emplace(j, eval.modDownPair(r));
            }
        }
    }

    const bool double_hoist = opts.double_hoist && opts.hoist_moddown;
    Ciphertext acc;
    RaisedCiphertext racc;
    bool first = true;
    for (const auto& [giant, cols] : groups) {
        Ciphertext inner_ct;
        if (opts.hoist_moddown) {
            // Accumulate plaintext products in the raised basis; a single
            // ModDown pair per giant step (MAD ModDown hoisting).
            RaisedCiphertext inner;
            bool inner_first = true;
            for (const auto& [j, diag] : cols) {
                std::vector<std::complex<double>> rotated(slots);
                for (size_t k = 0; k < slots; ++k)
                    rotated[k] =
                        (*diag)[(k + slots - giant % slots) % slots];
                Plaintext pt = encoder.encodeRaised(rotated, pt_scale,
                                                    ct.level());
                RaisedCiphertext term = baby_raised.at(j);
                eval.mulPlainRaised(term, pt);
                if (inner_first) {
                    inner = std::move(term);
                    inner_first = false;
                } else {
                    eval.addRaised(inner, term);
                }
            }
            inner_ct = eval.modDownPair(inner);
        } else {
            bool inner_first = true;
            for (const auto& [j, diag] : cols) {
                std::vector<std::complex<double>> rotated(slots);
                for (size_t k = 0; k < slots; ++k)
                    rotated[k] =
                        (*diag)[(k + slots - giant % slots) % slots];
                Plaintext pt = encoder.encode(rotated, pt_scale, ct.level());
                Ciphertext term = eval.mulPlain(baby_cts.at(j), pt);
                if (inner_first) {
                    inner_ct = std::move(term);
                    inner_first = false;
                } else {
                    inner_ct = eval.add(inner_ct, term);
                }
            }
        }
        if (double_hoist) {
            // Keep the rotated giant in the raised basis and defer the
            // ModDown pair to the very end.
            auto giant_digits = ksw.decomposeAndRaise(inner_ct.c1);
            RaisedCiphertext outer =
                eval.rotateRaised(giant_digits, inner_ct, giant, gks);
            if (first) {
                racc = std::move(outer);
                first = false;
            } else {
                eval.addRaised(racc, outer);
            }
        } else {
            Ciphertext outer = eval.rotate(inner_ct, giant, gks);
            if (first) {
                acc = std::move(outer);
                first = false;
            } else {
                acc = eval.add(acc, outer);
            }
        }
    }
    if (double_hoist)
        acc = eval.modDownPair(racc);
    return eval.rescale(acc);
}

} // namespace madfhe
