/**
 * @file
 * Limb-streaming policy for the key-switch hot path — the runtime knob
 * that selects which of the MAD Section 3.1 caching optimizations the
 * functional evaluator actually executes (MADFHE_STREAM=off|fuse|cache|
 * full, default full). Every policy produces byte-identical ciphertexts;
 * they differ only in scheduling, DRAM traffic and wall-clock time. See
 * DESIGN.md "Limb-streaming executor" for the policy lattice and the
 * cache sizing math.
 */
#ifndef MADFHE_CKKS_STREAM_H
#define MADFHE_CKKS_STREAM_H

#include <cstddef>

namespace madfhe {

/**
 * Each policy strictly extends the previous one, mirroring the
 * simfhe::Optimizations lattice (none -> o1 -> upToAlpha -> allCaching):
 *
 *  - Off:   materialize every stage intermediate (Decomp digits, raised
 *           (u, v), P-lifts, ModDown correction limbs) — the historical
 *           path, kept as the byte-identity and fault-coverage oracle.
 *  - Fuse:  O(1)-limb fusion — each raised limb of KSKInnerProd is
 *           produced by converting + NTT-ing its ModUp contributions in
 *           scratch and accumulating in cache; digits are never
 *           materialized.
 *  - Cache: + O(beta)/O(alpha) pinned caches — decomposed digit source
 *           limbs are iNTT'd and pre-scaled once into a pinned
 *           basis-change cache reused by every target limb, and ModDown
 *           streams its correction limbs the same way.
 *  - Full:  + limb re-ordering — the dropped (P and rescale) positions
 *           of the inner product are computed first and consumed
 *           directly into the ModDown cache, so the raised (u, v) pair
 *           is never written to DRAM at all.
 */
enum class StreamPolicy
{
    Off,
    Fuse,
    Cache,
    Full,
};

/** Active policy: parsed once from MADFHE_STREAM (default full) unless
 *  overridden with setStreamPolicy(). */
StreamPolicy streamPolicy();
void setStreamPolicy(StreamPolicy p);

/** Lower-case knob spelling: "off", "fuse", "cache", "full". */
const char* streamPolicyName(StreamPolicy p);

/** All policies in lattice order — for sweeps. */
inline constexpr StreamPolicy kStreamPolicies[] = {
    StreamPolicy::Off,
    StreamPolicy::Fuse,
    StreamPolicy::Cache,
    StreamPolicy::Full,
};

/**
 * Pinned-cache byte budget (MADFHE_STREAM_CACHE_BYTES, 0 = unlimited).
 * An op whose pinned working set would not fit degrades Cache/Full
 * scheduling to Fuse for that op and counts a
 * `stream.digit_cache.evictions` telemetry event.
 */
size_t streamCacheBytes();

/** RAII policy override for tests and tools. */
class ScopedStreamPolicy
{
  public:
    explicit ScopedStreamPolicy(StreamPolicy p) : prev(streamPolicy())
    {
        setStreamPolicy(p);
    }
    ~ScopedStreamPolicy() { setStreamPolicy(prev); }
    ScopedStreamPolicy(const ScopedStreamPolicy&) = delete;
    ScopedStreamPolicy& operator=(const ScopedStreamPolicy&) = delete;

  private:
    StreamPolicy prev;
};

} // namespace madfhe

#endif // MADFHE_CKKS_STREAM_H
