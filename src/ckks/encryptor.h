/**
 * @file
 * Public-key and symmetric encryption, and decryption, for CKKS.
 */
#ifndef MADFHE_CKKS_ENCRYPTOR_H
#define MADFHE_CKKS_ENCRYPTOR_H

#include "ckks/keys.h"

namespace madfhe {

/**
 * A symmetric ciphertext with the uniform c1 component replaced by the
 * PRNG seed that generates it — half the bytes on the wire. This is the
 * ciphertext-side analogue of the switching-key compression the paper
 * analyzes ("a folklore technique often used to reduce communication",
 * Section 3.2); expandSeeded() reconstructs the full ciphertext.
 */
struct SeededCiphertext
{
    RnsPoly c0;
    Prng::Seed seed{};
    double scale = 0.0;

    size_t level() const { return c0.numLimbs(); }
};

class Encryptor
{
  public:
    Encryptor(std::shared_ptr<const CkksContext> ctx, PublicKey pk,
              u64 seed = 0xEC47);

    /** Public-key encryption of an encoded plaintext. */
    Ciphertext encrypt(const Plaintext& pt);

    /** Symmetric encryption (fresh uniform c1). */
    Ciphertext encryptSymmetric(const Plaintext& pt, const SecretKey& sk);

    /** Symmetric encryption with a seed-compressed c1 component. */
    SeededCiphertext encryptSymmetricSeeded(const Plaintext& pt,
                                            const SecretKey& sk);

    /** Encryption of zero at the given level/scale (for padding, tests). */
    Ciphertext encryptZero(size_t level, double scale);

  private:
    std::shared_ptr<const CkksContext> ctx;
    PublicKey pk;
    Sampler sampler;
};

/** Reconstruct the full ciphertext from a seeded one (bit-exact c1). */
Ciphertext expandSeeded(const CkksContext& ctx, const SeededCiphertext& sct);

class Decryptor
{
  public:
    Decryptor(std::shared_ptr<const CkksContext> ctx, SecretKey sk);

    /** m = c0 + c1 * s. */
    Plaintext decrypt(const Ciphertext& ct);

  private:
    std::shared_ptr<const CkksContext> ctx;
    SecretKey sk;
};

} // namespace madfhe

#endif // MADFHE_CKKS_ENCRYPTOR_H
