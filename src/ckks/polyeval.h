/**
 * @file
 * Power-basis polynomial evaluation on ciphertexts via baby-step/giant-
 * step (Paterson–Stockmeyer): O(sqrt(d)) ciphertext multiplications and
 * O(log d) depth. For high-degree approximations on [-1,1] prefer the
 * Chebyshev evaluator in boot/chebyshev.h (numerically far better
 * conditioned); this one is for the small polynomials applications use
 * (sigmoid, ReLU surrogates, calibration curves) whose coefficients are
 * naturally given in the monomial basis.
 */
#ifndef MADFHE_CKKS_POLYEVAL_H
#define MADFHE_CKKS_POLYEVAL_H

#include "ckks/evaluator.h"

namespace madfhe {

class PolynomialEvaluator
{
  public:
    /** @param coeffs c_0 + c_1 x + ... + c_d x^d (d >= 1). */
    PolynomialEvaluator(std::shared_ptr<const CkksContext> ctx,
                        std::vector<double> coeffs);

    size_t degree() const { return coeffs.size() - 1; }
    /** Levels evaluate() consumes (upper bound). */
    size_t depth() const;

    /** Reference plain evaluation (Horner). */
    double evalPlain(double x) const;

    Ciphertext evaluate(const Evaluator& eval, const CkksEncoder& encoder,
                        const Ciphertext& x, const SwitchingKey& rlk) const;

  private:
    Ciphertext combo(const Evaluator& eval, const CkksEncoder& encoder,
                     const std::vector<double>& c,
                     const std::vector<Ciphertext>& powers,
                     size_t target_level) const;

    std::shared_ptr<const CkksContext> ctx;
    std::vector<double> coeffs;
    size_t baby; // power of two
};

} // namespace madfhe

#endif // MADFHE_CKKS_POLYEVAL_H
