#include "ckks/backend.h"

#include <cstdlib>
#include <sstream>

#include "ckks/serialize.h"

namespace madfhe {

const char*
backendKindName(BackendKind kind)
{
    switch (kind) {
    case BackendKind::Real:
        return "real";
    case BackendKind::Virtual:
        return "virtual";
    }
    return "unknown";
}

BackendKind
backendKindFromEnv()
{
    const char* v = std::getenv("MADFHE_BACKEND");
    if (v == nullptr || *v == '\0')
        return BackendKind::Real;
    const std::string s(v);
    if (s == "real")
        return BackendKind::Real;
    if (s == "virtual")
        return BackendKind::Virtual;
    throw UserError("MADFHE_BACKEND must be 'real' or 'virtual', got '" + s +
                        "'",
                    __FILE__, __LINE__);
}

EvalBackend::EvalBackend(std::shared_ptr<const CkksContext> ctx_)
    : ctx(std::move(ctx_))
{
    MAD_REQUIRE(ctx != nullptr, "backend needs a context");
}

EvalBackend::~EvalBackend() = default;

Ciphertext
EvalBackend::bootstrap(const Ciphertext& a) const
{
    (void)a;
    throw UserError(std::string("the '") + name() +
                        "' backend does not serve bootstrap requests",
                    __FILE__, __LINE__);
}

Ciphertext
EvalBackend::mulNoRescale(const Ciphertext& a, const Ciphertext& b,
                          const SwitchingKey& rlk) const
{
    (void)a;
    (void)b;
    (void)rlk;
    throw UserError(std::string("the '") + name() +
                        "' backend does not serve unrescaled Mult",
                    __FILE__, __LINE__);
}

// --- RealBackend ----------------------------------------------------------

RealBackend::RealBackend(std::shared_ptr<const CkksContext> ctx_)
    : EvalBackend(std::move(ctx_)), encoder_(ctx), eval_(ctx)
{
}

Ciphertext
RealBackend::encryptReal(const PublicKey& pk,
                         const std::vector<double>& values, u64 seed) const
{
    const Plaintext pt =
        encoder_.encodeReal(values, ctx->scale(), ctx->maxLevel());
    Encryptor enc(ctx, pk, seed);
    return enc.encrypt(pt);
}

std::vector<double>
RealBackend::decryptReal(const SecretKey& sk, const Ciphertext& ct) const
{
    Decryptor dec(ctx, sk);
    const Plaintext pt = dec.decrypt(ct);
    const std::vector<std::complex<double>> slots = encoder_.decode(pt);
    std::vector<double> out;
    out.reserve(slots.size());
    for (const std::complex<double>& s : slots)
        out.push_back(s.real());
    return out;
}

Ciphertext
RealBackend::add(const Ciphertext& a, const Ciphertext& b) const
{
    return eval_.add(a, b);
}

Ciphertext
RealBackend::sub(const Ciphertext& a, const Ciphertext& b) const
{
    return eval_.sub(a, b);
}

Ciphertext
RealBackend::addAligned(const Ciphertext& a, const Ciphertext& b) const
{
    return eval_.addAligned(a, b);
}

Ciphertext
RealBackend::mul(const Ciphertext& a, const Ciphertext& b,
                 const SwitchingKey& rlk) const
{
    return eval_.mul(a, b, rlk);
}

Ciphertext
RealBackend::mulNoRescale(const Ciphertext& a, const Ciphertext& b,
                          const SwitchingKey& rlk) const
{
    return eval_.mulNoRescale(a, b, rlk);
}

Ciphertext
RealBackend::mulScalarRescale(const Ciphertext& a, double scalar) const
{
    return eval_.mulScalarRescale(a, scalar);
}

Ciphertext
RealBackend::addScalar(const Ciphertext& a, double scalar) const
{
    return eval_.addScalar(a, scalar, encoder_);
}

Ciphertext
RealBackend::rescale(const Ciphertext& a) const
{
    return eval_.rescale(a);
}

Ciphertext
RealBackend::dropToLevel(const Ciphertext& a, size_t level) const
{
    return eval_.dropToLevel(a, level);
}

Ciphertext
RealBackend::rotate(const Ciphertext& a, int steps,
                    const GaloisKeys& gks) const
{
    return eval_.rotate(a, steps, gks);
}

std::vector<Ciphertext>
RealBackend::rotateHoisted(const Ciphertext& a, const std::vector<int>& steps,
                           const GaloisKeys& gks) const
{
    return eval_.rotateHoisted(a, steps, gks);
}

Ciphertext
RealBackend::matVec(const LinearTransform& t, const Ciphertext& ct,
                    const GaloisKeys& gks) const
{
    return t.apply(eval_, encoder_, ct, gks);
}

Ciphertext
RealBackend::matVecFused(const LinearTransform& t, const Ciphertext& ct,
                         const GaloisKeys& gks) const
{
    return t.applyFused(eval_, encoder_, ct, gks);
}

std::string
RealBackend::resultDigest(const Ciphertext& ct) const
{
    std::ostringstream os;
    saveCiphertext(os, ct);
    const std::string bytes = os.str();
    u64 h = 0xCBF29CE484222325ULL; // FNV-1a 64
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "r:%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

} // namespace madfhe
