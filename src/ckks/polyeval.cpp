#include "ckks/polyeval.h"

#include <cmath>
#include <functional>

namespace madfhe {

PolynomialEvaluator::PolynomialEvaluator(
    std::shared_ptr<const CkksContext> ctx_, std::vector<double> coeffs_)
    : ctx(std::move(ctx_)), coeffs(std::move(coeffs_))
{
    MAD_REQUIRE(coeffs.size() >= 2, "need degree >= 1");
    size_t d = coeffs.size() - 1;
    baby = 1;
    while (baby * baby < d + 1)
        baby <<= 1;
}

size_t
PolynomialEvaluator::depth() const
{
    size_t d = coeffs.size() - 1;
    return static_cast<size_t>(
               std::ceil(std::log2(static_cast<double>(d + 1)))) + 2;
}

double
PolynomialEvaluator::evalPlain(double x) const
{
    double acc = 0;
    for (size_t k = coeffs.size(); k-- > 0;)
        acc = acc * x + coeffs[k];
    return acc;
}

Ciphertext
PolynomialEvaluator::combo(const Evaluator& eval, const CkksEncoder& encoder,
                           const std::vector<double>& c,
                           const std::vector<Ciphertext>& powers,
                           size_t target_level) const
{
    // sum_{j>=1} c_j x^j as plaintext-scalar products, then + c_0.
    Ciphertext acc;
    bool first = true;
    for (size_t j = 1; j < c.size(); ++j) {
        if (c[j] == 0.0)
            continue;
        Ciphertext t = eval.dropToLevel(powers[j], target_level);
        Plaintext pc = encoder.encodeScalar({c[j], 0.0}, ctx->scale(),
                                            target_level);
        Ciphertext term = eval.mulPlain(t, pc);
        if (first) {
            acc = std::move(term);
            first = false;
        } else {
            acc = eval.add(acc, term);
        }
    }
    if (first) {
        Ciphertext t = eval.dropToLevel(powers[1], target_level);
        Plaintext pc =
            encoder.encodeScalar({0.0, 0.0}, ctx->scale(), target_level);
        acc = eval.mulPlain(t, pc);
    }
    acc = eval.rescale(acc);
    if (c[0] != 0.0)
        acc = eval.addScalar(acc, c[0], encoder);
    return acc;
}

Ciphertext
PolynomialEvaluator::evaluate(const Evaluator& eval,
                              const CkksEncoder& encoder,
                              const Ciphertext& x,
                              const SwitchingKey& rlk) const
{
    const size_t d = coeffs.size() - 1;

    // Baby powers x^1..x^(baby-1) by balanced products, then giant
    // powers x^baby, x^(2*baby), x^(4*baby), ... by squaring.
    std::vector<Ciphertext> powers(std::max<size_t>(baby, 2));
    powers[1] = x;
    for (size_t j = 2; j < baby; ++j) {
        size_t a = (j + 1) / 2, b = j / 2;
        Ciphertext pa = powers[a], pb = powers[b];
        size_t lvl = std::min(pa.level(), pb.level());
        pa = eval.dropToLevel(pa, lvl);
        pb = eval.dropToLevel(pb, lvl);
        powers[j] = eval.mul(pa, pb, rlk);
    }
    std::vector<Ciphertext> giants; // giants[k] = x^(baby * 2^k)
    if (d >= baby) {
        size_t half = baby / 2;
        Ciphertext g0 = half >= 1 && baby >= 2
                            ? eval.square(powers[std::max<size_t>(half, 1)],
                                          rlk)
                            : x;
        giants.push_back(g0);
        size_t m = baby;
        while (m * 2 <= d) {
            giants.push_back(eval.square(giants.back(), rlk));
            m *= 2;
        }
    }

    size_t target_level = x.level();
    for (const auto& p : powers)
        if (!p.c0.empty())
            target_level = std::min(target_level, p.level());
    for (const auto& g : giants)
        target_level = std::min(target_level, g.level());

    // Recursive split: f = q(x) * x^g + r(x) — in the power basis the
    // division by x^g is just a coefficient split.
    std::function<Ciphertext(const std::vector<double>&)> rec =
        [&](const std::vector<double>& c) -> Ciphertext {
        if (c.size() <= baby)
            return combo(eval, encoder, c, powers, target_level);
        size_t deg = c.size() - 1;
        size_t k = 0;
        while (baby * (size_t(2) << k) <= deg)
            ++k;
        size_t g = baby << k;
        std::vector<double> r(c.begin(), c.begin() + g);
        std::vector<double> q(c.begin() + g, c.end());
        Ciphertext qc = rec(q);
        Ciphertext rc = rec(r);
        Ciphertext gk = giants[k];
        size_t lvl = std::min(qc.level(), gk.level());
        Ciphertext prod = eval.mul(eval.dropToLevel(qc, lvl),
                                   eval.dropToLevel(gk, lvl), rlk);
        lvl = std::min(prod.level(), rc.level());
        return eval.addAligned(prod, rc);
    };
    return rec(coeffs);
}

} // namespace madfhe
