/**
 * @file
 * The CKKS evaluator: the primitive-operation API of Table 2 (PtAdd, Add,
 * PtMult, Mult, Rotate, Conjugate) plus Rescale, level management, and the
 * hoisted/raised-basis variants used by the MAD algorithmic optimizations.
 */
#ifndef MADFHE_CKKS_EVALUATOR_H
#define MADFHE_CKKS_EVALUATOR_H

#include "ckks/encoder.h"
#include "ckks/keyswitch.h"

namespace madfhe {

/** Toggles for the MAD algorithmic optimizations (Section 3.2). */
struct EvalOptions
{
    /** Fuse the KeySwitch ModDown with Rescale in Mult (Figure 4). */
    bool merged_moddown = true;
};

class Evaluator
{
  public:
    explicit Evaluator(std::shared_ptr<const CkksContext> ctx,
                       EvalOptions options = {});

    const CkksContext& context() const { return *ctx; }
    const KeySwitcher& keySwitcher() const { return ksw; }
    const EvalOptions& options() const { return opts; }

    /** Add two ciphertexts (same level; scales must agree closely). */
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext negate(const Ciphertext& a) const;

    /**
     * Level/scale-aligning addition: operands at different levels are
     * dropped to the lower one; if the scales differ beyond tolerance,
     * the larger-scale operand is scalar-adjusted (consuming one level).
     * Convenience for application code; the strict add() is cheaper when
     * the shapes already match.
     */
    Ciphertext addAligned(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext subAligned(const Ciphertext& a, const Ciphertext& b) const;

    /** Bring two ciphertexts to a common level and matching scale. */
    std::pair<Ciphertext, Ciphertext> align(const Ciphertext& a,
                                            const Ciphertext& b) const;

    /** PtAdd: add an encoded plaintext. */
    Ciphertext addPlain(const Ciphertext& a, const Plaintext& pt) const;
    Ciphertext subPlain(const Ciphertext& a, const Plaintext& pt) const;

    /**
     * PtMult without rescale: scale becomes a.scale * pt.scale; callers
     * follow with rescale() (or rely on mulPlainRescale()).
     */
    Ciphertext mulPlain(const Ciphertext& a, const Plaintext& pt) const;
    /** PtMult followed by Rescale (the Table 2 contract). */
    Ciphertext mulPlainRescale(const Ciphertext& a, const Plaintext& pt) const;

    /**
     * Mult (Table 2): tensor, relinearize with `rlk`, rescale. With
     * merged_moddown the KeySwitch ModDown and the Rescale are one fused
     * ModDown in the raised basis; otherwise they run separately.
     */
    Ciphertext mul(const Ciphertext& a, const Ciphertext& b,
                   const SwitchingKey& rlk) const;
    /** Mult without the final rescale (scale = sa * sb). */
    Ciphertext mulNoRescale(const Ciphertext& a, const Ciphertext& b,
                            const SwitchingKey& rlk) const;
    Ciphertext square(const Ciphertext& a, const SwitchingKey& rlk) const;

    /** Divide by the top limb, dropping one level (scale /= q_top). */
    Ciphertext rescale(const Ciphertext& a) const;

    /** Drop limbs to `level` without changing the scale (modulus switch
     *  by truncation — exact in RNS). */
    Ciphertext dropToLevel(const Ciphertext& a, size_t level) const;

    /** Rotate slots left by `steps` (Table 2 Rotate; Automorph +
     *  KeySwitch). */
    Ciphertext rotate(const Ciphertext& a, int steps,
                      const GaloisKeys& gks) const;
    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext& a, const GaloisKeys& gks) const;

    /**
     * Hoisted rotations (ModUp hoisting, Figure 5(c)): Decomp+ModUp once,
     * then one inner product + ModDown per step. Returns one ciphertext
     * per requested step; step 0 returns the input unchanged. Edge cases
     * are well-defined: an empty step list returns an empty vector, an
     * all-zero list returns copies of the input (neither pays the
     * Decomp+ModUp, which is computed lazily on the first key-switching
     * step), and duplicate steps yield identical ciphertexts.
     */
    std::vector<Ciphertext> rotateHoisted(const Ciphertext& a,
                                          const std::vector<int>& steps,
                                          const GaloisKeys& gks) const;

    /**
     * Raised-basis rotation for ModDown hoisting (Figure 5(b)): same as a
     * hoisted rotation, but the result stays in the raised basis PQ so the
     * caller can accumulate linear combinations and ModDown once.
     */
    RaisedCiphertext rotateRaised(const std::vector<RnsPoly>& digits,
                                  const Ciphertext& a, int steps,
                                  const GaloisKeys& gks) const;

    /** Finish a raised accumulation: two ModDowns. */
    Ciphertext modDownPair(const RaisedCiphertext& r) const;

    /** Multiply a raised ciphertext by a plaintext (linear functions stay
     *  valid in the raised basis — Section 3.2). */
    void mulPlainRaised(RaisedCiphertext& r, const Plaintext& pt) const;
    /** Accumulate raised ciphertexts. */
    void addRaised(RaisedCiphertext& acc, const RaisedCiphertext& r) const;

    /**
     * Multiply the underlying ring element by the monomial x^power —
     * exact and noiseless, no level consumed. Slot j gets multiplied by
     * zeta^(power * 5^j); power = N/2 multiplies every slot by the
     * imaginary unit (the bootstrapping conjugation-split trick).
     */
    Ciphertext mulMonomial(const Ciphertext& a, size_t power) const;
    /** mulMonomial(a, N/2): multiply every slot by i. */
    Ciphertext
    mulImaginary(const Ciphertext& a) const
    {
        return mulMonomial(a, ctx->degree() / 2);
    }

    /** Multiply every slot by a real scalar, consuming one level. */
    Ciphertext mulScalarRescale(const Ciphertext& a, double scalar) const;
    /** Add a scalar to every slot (no level consumed). */
    Ciphertext addScalar(const Ciphertext& a, double scalar,
                         const CkksEncoder& encoder) const;

    /** The galois key lookup used by rotate/conjugate (public for reuse). */
    const SwitchingKey& galoisKeyFor(u64 elt, const GaloisKeys& gks) const;

  private:
    void requireSameShape(const Ciphertext& a, const Ciphertext& b) const;

    std::shared_ptr<const CkksContext> ctx;
    KeySwitcher ksw;
    EvalOptions opts;
};

} // namespace madfhe

#endif // MADFHE_CKKS_EVALUATOR_H
