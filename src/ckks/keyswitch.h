/**
 * @file
 * Hybrid key switching (Algorithms 1-3 of the paper): Decomp, ModUp,
 * KSKInnerProd, ModDown — plus the raised-basis primitives the MAD
 * algorithmic optimizations build on: PModUp (Algorithm 5) and the merged
 * ModDown that divides by P and the rescale prime in one pass (Figure 4).
 */
#ifndef MADFHE_CKKS_KEYSWITCH_H
#define MADFHE_CKKS_KEYSWITCH_H

#include "ckks/keys.h"

namespace madfhe {

class KeySwitcher
{
  public:
    explicit KeySwitcher(std::shared_ptr<const CkksContext> ctx);

    const CkksContext& context() const { return *ctx; }

    /**
     * Decomp + ModUp (Algorithm 3 lines 1-2): split `x` (evaluation rep
     * over Q[0,level)) into beta digits and extend each to the raised basis
     * Q[0,level) + P, evaluation rep. Input limbs are reused without
     * re-transforming (Algorithm 1 line 4).
     */
    std::vector<RnsPoly> decomposeAndRaise(const RnsPoly& x) const;

    /**
     * KSKInnerProd (Algorithm 3 line 3): (u, v) = sum_j digits[j] * ksk_j
     * over the raised basis.
     */
    RaisedCiphertext innerProduct(const std::vector<RnsPoly>& digits,
                                  const SwitchingKey& ksk) const;

    /** ModDown (Algorithm 2): divide by P, drop the P limbs. */
    RnsPoly modDown(const RnsPoly& x) const;

    /**
     * Merged ModDown: divide by P * q_(level-1) and drop both the P limbs
     * and the top Q limb — KeySwitch completion and Rescale fused into one
     * orientation switch (the "Merging ModDown in Mult" optimization).
     */
    RnsPoly modDownMerged(const RnsPoly& x) const;

    /** PModUp (Algorithm 5): lift y over Q[0,level) to P*y over the raised
     *  basis at zero compute on the P limbs. */
    RnsPoly pModUp(const RnsPoly& y) const;

    /** Full KeySwitch (Algorithm 3): returns (u, v) over Q[0,level). */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly& x,
                                          const SwitchingKey& ksk) const;

  private:
    size_t qLevelOf(const RnsPoly& raised) const;

    std::shared_ptr<const CkksContext> ctx;
};

} // namespace madfhe

#endif // MADFHE_CKKS_KEYSWITCH_H
