/**
 * @file
 * Hybrid key switching (Algorithms 1-3 of the paper): Decomp, ModUp,
 * KSKInnerProd, ModDown — plus the raised-basis primitives the MAD
 * algorithmic optimizations build on: PModUp (Algorithm 5) and the merged
 * ModDown that divides by P and the rescale prime in one pass (Figure 4).
 */
#ifndef MADFHE_CKKS_KEYSWITCH_H
#define MADFHE_CKKS_KEYSWITCH_H

#include "ckks/keys.h"
#include "ckks/stream.h"

namespace madfhe {

class KeySwitcher
{
  public:
    explicit KeySwitcher(std::shared_ptr<const CkksContext> ctx);

    const CkksContext& context() const { return *ctx; }

    /**
     * Decomp + ModUp (Algorithm 3 lines 1-2): split `x` (evaluation rep
     * over Q[0,level)) into beta digits and extend each to the raised basis
     * Q[0,level) + P, evaluation rep. Input limbs are reused without
     * re-transforming (Algorithm 1 line 4).
     */
    std::vector<RnsPoly> decomposeAndRaise(const RnsPoly& x) const;

    /**
     * KSKInnerProd (Algorithm 3 line 3): (u, v) = sum_j digits[j] * ksk_j
     * over the raised basis.
     */
    RaisedCiphertext innerProduct(const std::vector<RnsPoly>& digits,
                                  const SwitchingKey& ksk) const;

    /** ModDown (Algorithm 2): divide by P, drop the P limbs. */
    RnsPoly modDown(const RnsPoly& x) const;

    /**
     * Merged ModDown: divide by P * q_(level-1) and drop both the P limbs
     * and the top Q limb — KeySwitch completion and Rescale fused into one
     * orientation switch (the "Merging ModDown in Mult" optimization).
     */
    RnsPoly modDownMerged(const RnsPoly& x) const;

    /** PModUp (Algorithm 5): lift y over Q[0,level) to P*y over the raised
     *  basis at zero compute on the P limbs. */
    RnsPoly pModUp(const RnsPoly& y) const;

    /**
     * Full KeySwitch (Algorithm 3): returns (u, v) over Q[0,level).
     * Dispatches on streamPolicy(): Off composes the materializing
     * primitives above; Fuse/Cache/Full run the limb-streaming engine
     * (byte-identical outputs, less DRAM traffic).
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly& x,
                                          const SwitchingKey& ksk) const;

    /**
     * Mult tail (Figure 4): KeySwitch of d2 with the P-lifted d0/d1
     * added in the raised basis and one merged ModDown per component.
     * Returns (c0', c1') over Q[0, level-1). Byte-identical across
     * stream policies; under Off it composes decomposeAndRaise +
     * innerProduct + pModUp + modDownMerged exactly as Evaluator::mul
     * historically did.
     */
    std::pair<RnsPoly, RnsPoly> keySwitchMerged(const RnsPoly& d2,
                                                const SwitchingKey& ksk,
                                                const RnsPoly& d0,
                                                const RnsPoly& d1) const;

  private:
    size_t qLevelOf(const RnsPoly& raised) const;

    /**
     * The limb-streaming engine (policy != Off): Decomp, ModUp,
     * KSKInnerProd, the optional merged P-lift, and ModDown scheduled
     * limb-by-limb over the pool. `lift0`/`lift1` are only read when
     * `merged` is true.
     */
    std::pair<RnsPoly, RnsPoly> streamKeySwitch(const RnsPoly& x,
                                                const SwitchingKey& ksk,
                                                StreamPolicy policy,
                                                bool merged,
                                                const RnsPoly* lift0,
                                                const RnsPoly* lift1) const;

    std::shared_ptr<const CkksContext> ctx;
};

} // namespace madfhe

#endif // MADFHE_CKKS_KEYSWITCH_H
