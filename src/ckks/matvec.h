/**
 * @file
 * PtMatVecMult: homomorphic plaintext-matrix x ciphertext-vector products
 * via the diagonal (BSGS) method, with the two hoisting levels the paper
 * analyzes (Figure 5): classic ModUp hoisting across the baby-step
 * rotations and MAD ModDown hoisting, which keeps the baby products in the
 * raised basis and defers ModDown to one pair per giant step.
 */
#ifndef MADFHE_CKKS_MATVEC_H
#define MADFHE_CKKS_MATVEC_H

#include "ckks/evaluator.h"

namespace madfhe {

struct MatVecOptions
{
    /** Decomp+ModUp once for all baby rotations (Figure 5(c)). */
    bool hoist_modup = true;
    /** Accumulate baby products in the raised basis; ModDown once per
     *  giant step (Figure 5(b)). */
    bool hoist_moddown = true;
    /**
     * Double hoisting: also accumulate the giant-step key-switch outputs
     * in the raised basis, deferring to a single final ModDown pair for
     * the whole PtMatVecMult (the "one ModUp + two ModDown" accounting
     * of Section 3.2). Requires hoist_moddown.
     */
    bool double_hoist = false;
    /** Baby-step count; 0 = ceil(sqrt(#diagonals)). */
    size_t baby_steps = 0;
};

/**
 * A linear map on slot vectors, given by its nonzero (generalized)
 * diagonals: y[k] = sum_d diag_d[k] * x[(k + d) mod slots].
 */
class LinearTransform
{
  public:
    LinearTransform(std::shared_ptr<const CkksContext> ctx,
                    std::map<int, std::vector<std::complex<double>>> diagonals,
                    double pt_scale, MatVecOptions options = {});

    /** Rotation steps apply() will need Galois keys for. */
    std::vector<int> requiredRotations() const;

    /**
     * Apply to a ciphertext; consumes one level (the product is rescaled).
     */
    Ciphertext apply(const Evaluator& eval, const CkksEncoder& encoder,
                     const Ciphertext& ct, const GaloisKeys& gks) const;

    /**
     * Limb-fused apply: byte-identical to apply(), but the per-giant
     * raised accumulation runs as in-place multiply-accumulates
     * (RnsPoly::addMul) instead of materializing one raised temporary
     * per diagonal — per non-leading diagonal this replaces a raised
     * copy + pointwise-mul + add (3 writes + 4 reads per limb) with a
     * single fused MAC pass (1 write + 3 reads), shrinking the traced
     * DRAM footprint the trace_validate PtMatVecMult row measures.
     * Requires hoist_modup && hoist_moddown without double_hoist; other
     * configurations fall back to apply().
     */
    Ciphertext applyFused(const Evaluator& eval, const CkksEncoder& encoder,
                          const Ciphertext& ct, const GaloisKeys& gks) const;

    /** Reference slot-domain evaluation, for testing. */
    std::vector<std::complex<double>>
    applyPlain(const std::vector<std::complex<double>>& x) const;

    const MatVecOptions& options() const { return opts; }
    size_t numDiagonals() const { return diags.size(); }
    /** Plaintext encoding scale apply() uses (the virtual backend mirrors
     *  the resulting output scale: in.scale * ptScale() / q_top). */
    double ptScale() const { return pt_scale; }
    /** Largest |diagonal entry| — the pt_mag bound noise tracking needs. */
    double maxDiagonalMagnitude() const;

  private:
    Ciphertext applyNaive(const Evaluator& eval, const CkksEncoder& encoder,
                          const Ciphertext& ct, const GaloisKeys& gks) const;
    Ciphertext applyBsgs(const Evaluator& eval, const CkksEncoder& encoder,
                         const Ciphertext& ct, const GaloisKeys& gks) const;

    size_t babySteps() const;

    std::shared_ptr<const CkksContext> ctx;
    std::map<int, std::vector<std::complex<double>>> diags;
    double pt_scale;
    MatVecOptions opts;
};

} // namespace madfhe

#endif // MADFHE_CKKS_MATVEC_H
