#include "ckks/keys.h"

#include "memtrace/trace.h"

namespace madfhe {

namespace {

/** Tag a key polynomial's buffer so replay classifies it as key traffic. */
inline void
tagKeyPoly(const RnsPoly& p)
{
    if (!p.empty())
        MAD_TRACE_TAG(p.limb(0), p.numLimbs() * p.degree() * sizeof(u64),
                      memtrace::Class::Key);
}

} // namespace

SwitchingKey::SwitchingKey(std::vector<RnsPoly> b, std::vector<RnsPoly> a,
                           Prng::Seed seed)
    : b_polys(std::move(b)), a_polys(std::move(a)), prng_seed(seed)
{
    MAD_CHECK(b_polys.size() == a_polys.size() || a_polys.empty(),
          "digit count mismatch in switching key");
    for (const auto& p : b_polys)
        tagKeyPoly(p);
    for (const auto& p : a_polys)
        tagKeyPoly(p);
}

const RnsPoly&
SwitchingKey::a(size_t j) const
{
    MAD_REQUIRE(!a_polys.empty(),
            "switching key is compressed; call expand() first");
    return a_polys[j];
}

void
SwitchingKey::compress()
{
    a_polys.clear();
}

void
SwitchingKey::expandA(const CkksContext& ctx)
{
    if (!a_polys.empty())
        return;
    a_polys = sampleA(ctx, prng_seed, b_polys.size());
    for (const auto& p : a_polys)
        tagKeyPoly(p);
}

size_t
SwitchingKey::storedBytes() const
{
    size_t bytes = 0;
    for (const auto& p : b_polys)
        bytes += p.numLimbs() * p.degree() * sizeof(u64);
    for (const auto& p : a_polys)
        bytes += p.numLimbs() * p.degree() * sizeof(u64);
    return bytes;
}

size_t
SwitchingKey::expandedBytes() const
{
    size_t bytes = 0;
    for (const auto& p : b_polys)
        bytes += 2 * p.numLimbs() * p.degree() * sizeof(u64);
    return bytes;
}

std::vector<RnsPoly>
SwitchingKey::sampleA(const CkksContext& ctx, const Prng::Seed& seed,
                      size_t num_digits)
{
    // One continuous stream; generation order (digit-major, limb-major)
    // is part of the key format, so expansion is bit-exact.
    Prng rng(seed);
    auto key_basis = ctx.keyIndices();
    std::vector<RnsPoly> out;
    out.reserve(num_digits);
    for (size_t j = 0; j < num_digits; ++j) {
        // Uniform in evaluation representation (equivalent to uniform in
        // coefficient representation since the NTT is a bijection).
        RnsPoly a(ctx.ring(), key_basis, Rep::Eval);
        for (size_t i = 0; i < a.numLimbs(); ++i) {
            const u64 q = a.modulus(i).value();
            u64* limb = a.limb(i);
            for (size_t c = 0; c < a.degree(); ++c)
                limb[c] = rng.uniform(q);
        }
        out.push_back(std::move(a));
    }
    return out;
}

KeyGenerator::KeyGenerator(std::shared_ptr<const CkksContext> ctx_)
    : ctx(std::move(ctx_)), sampler(ctx->params().seed),
      next_key_seed(ctx->params().seed * 0x9e3779b97f4a7c15ULL + 1)
{
}

SecretKey
KeyGenerator::secretKey()
{
    const auto& parms = ctx->params();
    std::vector<i64> coeffs =
        parms.hamming_weight > 0
            ? sampler.sparseTernary(ctx->degree(), parms.hamming_weight)
            : sampler.ternary(ctx->degree());

    SecretKey sk;
    sk.s_coeffs = coeffs;
    sk.s = RnsPoly(ctx->ring(), ctx->keyIndices(), Rep::Coeff);
    sk.s.setFromSigned(coeffs);
    sk.s.toEval();
    return sk;
}

PublicKey
KeyGenerator::publicKey(const SecretKey& sk)
{
    auto q_basis = ctx->ring()->qIndices(ctx->maxLevel());

    PublicKey pk;
    pk.a = RnsPoly(ctx->ring(), q_basis, Rep::Eval);
    Prng& rng = sampler.rng();
    for (size_t i = 0; i < pk.a.numLimbs(); ++i) {
        const u64 q = pk.a.modulus(i).value();
        u64* limb = pk.a.limb(i);
        for (size_t c = 0; c < pk.a.degree(); ++c)
            limb[c] = rng.uniform(q);
    }

    RnsPoly e(ctx->ring(), q_basis, Rep::Coeff);
    e.setFromSigned(sampler.centeredBinomial(ctx->degree()));
    e.toEval();

    RnsPoly s_q = extractLimbs(sk.s, q_basis);
    pk.b = pk.a;
    pk.b.mulPointwise(s_q);
    pk.b.negate();
    pk.b.add(e);
    return pk;
}

SwitchingKey
KeyGenerator::makeSwitchingKey(const SecretKey& sk,
                               const RnsPoly& s_from_keybasis)
{
    const size_t dnum = ctx->dnum();
    const size_t alpha = ctx->alpha();
    const size_t max_level = ctx->maxLevel();
    const size_t n = ctx->degree();

    Prng::Seed seed = Prng(next_key_seed++).seed();
    std::vector<RnsPoly> a_polys = SwitchingKey::sampleA(*ctx, seed, dnum);

    std::vector<RnsPoly> b_polys;
    b_polys.reserve(dnum);
    auto key_basis = ctx->keyIndices();
    for (size_t j = 0; j < dnum; ++j) {
        RnsPoly e(ctx->ring(), key_basis, Rep::Coeff);
        e.setFromSigned(sampler.centeredBinomial(n));
        e.toEval();

        // b_j = -a_j * s + e_j + P * T_j * s_from, where T_j is 1 on the
        // limbs of digit j and 0 on every other Q limb, and P*T_j vanishes
        // on the P limbs (see DESIGN.md / Han-Ki hybrid key switching).
        RnsPoly b = a_polys[j];
        b.mulPointwise(sk.s);
        b.negate();
        b.add(e);

        size_t start = j * alpha;
        size_t end = std::min(start + alpha, max_level);
        for (size_t limb_idx = start; limb_idx < end; ++limb_idx) {
            const Modulus& q = ctx->ring()->modulus(limb_idx);
            u64 p_mod = ctx->pModQ(limb_idx);
            u64 p_shoup = q.shoupPrecompute(p_mod);
            u64* dst = b.limb(limb_idx);
            const u64* sf = s_from_keybasis.limb(limb_idx);
            for (size_t c = 0; c < n; ++c)
                dst[c] = q.add(dst[c], q.mulShoup(sf[c], p_mod, p_shoup));
        }
        b_polys.push_back(std::move(b));
    }
    return SwitchingKey(std::move(b_polys), std::move(a_polys), seed);
}

SwitchingKey
KeyGenerator::relinKey(const SecretKey& sk)
{
    RnsPoly s2 = sk.s;
    s2.mulPointwise(sk.s);
    return makeSwitchingKey(sk, s2);
}

SwitchingKey
KeyGenerator::galoisKey(const SecretKey& sk, u64 galois_elt)
{
    RnsPoly s_t = sk.s.automorph(galois_elt);
    return makeSwitchingKey(sk, s_t);
}

GaloisKeys
KeyGenerator::galoisKeys(const SecretKey& sk, const std::vector<int>& steps,
                         bool include_conjugate)
{
    GaloisKeys keys;
    for (int s : steps) {
        u64 t = ctx->ring()->galoisElt(s);
        if (t != 1 && !keys.count(t))
            keys.emplace(t, galoisKey(sk, t));
    }
    if (include_conjugate) {
        u64 t = ctx->ring()->conjugateElt();
        keys.emplace(t, galoisKey(sk, t));
    }
    return keys;
}

} // namespace madfhe
