/**
 * @file
 * CKKS parameter set (the knobs of Table 1 in the paper): ring degree N,
 * modulus chain shape, scaling factor Delta, key-switching digit count dnum,
 * and secret sparsity. Functional parameters here are deliberately small
 * (N = 2^10..2^14) so tests and examples run in seconds; the SimFHE model
 * in src/simfhe handles the paper-scale N = 2^17 parameter sets.
 */
#ifndef MADFHE_CKKS_PARAMS_H
#define MADFHE_CKKS_PARAMS_H

#include <cstddef>

#include "support/common.h"

namespace madfhe {

struct CkksParams
{
    /** log2 of the ring degree N. */
    unsigned log_n = 12;
    /** log2 of the scaling factor Delta. */
    unsigned log_scale = 40;
    /** Bit width of the base modulus q_0 (> log_scale for decryption
     *  headroom). */
    unsigned first_prime_bits = 54;
    /** Multiplicative levels: the chain is q_0 .. q_L with L = num_levels. */
    size_t num_levels = 8;
    /** Number of key-switching digits (dnum in Table 1). */
    size_t dnum = 3;
    /**
     * Hamming weight of the (sparse ternary) secret; 0 means dense ternary.
     * Bootstrapping presets use sparse secrets as in the bootstrapping
     * literature the paper builds on.
     */
    size_t hamming_weight = 0;
    /** Seed for all randomness (key generation, encryption). */
    u64 seed = 2023;

    size_t n() const { return size_t(1) << log_n; }
    /** Plaintext slot count n = N/2. */
    size_t slots() const { return n() / 2; }
    /** Chain length = L + 1 limbs. */
    size_t chainLength() const { return num_levels + 1; }
    /** alpha = ceil((L + 1) / dnum): limbs per key-switching digit. */
    size_t alpha() const { return ceilDiv(chainLength(), dnum); }
    double scale() const { return static_cast<double>(1ULL << log_scale); }

    /** Throws std::invalid_argument when inconsistent. */
    void validate() const;

    /** Small parameter set for fast unit tests (N = 2^10, 4 levels). */
    static CkksParams unitTest();
    /** Tiny set for thousand-tenant load harnesses (N = 2^8, 3 levels):
     *  small enough that per-tenant key material stays ~100 KB, wide
     *  enough (q0 = 45 bits, 35-bit scale primes) for the virtual
     *  backend's in-ciphertext payload packing. */
    static CkksParams loadTest();
    /** Mid-size set exercising deeper circuits (N = 2^12, 8 levels). */
    static CkksParams medium();
    /** Bootstrapping-capable toy set (N = 2^12, deep chain, sparse key). */
    static CkksParams bootstrapToy();
};

} // namespace madfhe

#endif // MADFHE_CKKS_PARAMS_H
