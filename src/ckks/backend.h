/**
 * @file
 * EvalBackend: the seam between the serving runtime and the evaluator.
 *
 * The serving stack (sessions, key-cache budgets, batching, overload
 * governor, deadlines, retries) is a pure control plane: nothing in it
 * needs to know whether a ciphertext is real CKKS material or a virtual
 * plaintext carrier, only that ops consume/produce `Ciphertext` values
 * with a (level, scale) state machine and the MadError taxonomy. This
 * interface captures exactly the operation surface `serve::Server`
 * executes, so a server can run the real `Evaluator` path or the
 * `src/virtual` plaintext backend (SimFHE-costed, ~100x+ faster) with
 * identical control-plane behavior.
 *
 * Backend selection: `MADFHE_BACKEND=real|virtual` (default real), or
 * explicitly via `serve::ServerOptions::backend`.
 *
 * Determinism contract: every op is a pure function of its arguments,
 * and `resultDigest` maps a ciphertext to a stable fingerprint of its
 * *result identity* — serialized bytes for the real backend (batched
 * execution is byte-identical to sequential), carried plaintext values
 * for the virtual backend (batched execution is value-identical). Tests
 * assert batching invariance through this method instead of assuming
 * real-evaluator byte layouts.
 */
#ifndef MADFHE_CKKS_BACKEND_H
#define MADFHE_CKKS_BACKEND_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/matvec.h"

namespace madfhe {

enum class BackendKind : u8
{
    Real = 0,    ///< full CKKS via Evaluator/Encryptor
    Virtual = 1, ///< src/virtual plaintext state-machine backend
};

const char* backendKindName(BackendKind kind);

/** Parse MADFHE_BACKEND (unset/"real" -> Real, "virtual" -> Virtual;
 *  anything else raises UserError). */
BackendKind backendKindFromEnv();

class EvalBackend
{
  public:
    explicit EvalBackend(std::shared_ptr<const CkksContext> ctx);
    virtual ~EvalBackend();

    EvalBackend(const EvalBackend&) = delete;
    EvalBackend& operator=(const EvalBackend&) = delete;

    const CkksContext& context() const { return *ctx; }
    std::shared_ptr<const CkksContext> contextPtr() const { return ctx; }
    virtual BackendKind kind() const = 0;
    const char* name() const { return backendKindName(kind()); }

    /** Encode `values` at (ctx scale, max level) and encrypt under `pk`
     *  with encryption randomness derived from `seed`. */
    virtual Ciphertext encryptReal(const PublicKey& pk,
                                   const std::vector<double>& values,
                                   u64 seed) const = 0;
    /** Decrypt + decode, returning the real parts of every slot. */
    virtual std::vector<double> decryptReal(const SecretKey& sk,
                                            const Ciphertext& ct) const = 0;

    /** Strict add: levels equal, scales within tolerance. */
    virtual Ciphertext add(const Ciphertext& a,
                           const Ciphertext& b) const = 0;
    /** Strict subtract (same shape requirements as add). */
    virtual Ciphertext sub(const Ciphertext& a,
                           const Ciphertext& b) const = 0;
    /** Level/scale-aligning add (Evaluator::addAligned semantics). */
    virtual Ciphertext addAligned(const Ciphertext& a,
                                  const Ciphertext& b) const = 0;
    /** Mult (Table 2): tensor + relinearize + rescale. */
    virtual Ciphertext mul(const Ciphertext& a, const Ciphertext& b,
                           const SwitchingKey& rlk) const = 0;
    /** Tensor + relinearize at full scale, no rescale (the unmerged
     *  two-pass Mult pipeline); the base throws UserError. */
    virtual Ciphertext mulNoRescale(const Ciphertext& a, const Ciphertext& b,
                                    const SwitchingKey& rlk) const;
    /** Scalar product folded into one rescale: level-1, scale kept. */
    virtual Ciphertext mulScalarRescale(const Ciphertext& a,
                                        double scalar) const = 0;
    /** Scalar addition; no level consumed. */
    virtual Ciphertext addScalar(const Ciphertext& a,
                                 double scalar) const = 0;
    virtual Ciphertext rescale(const Ciphertext& a) const = 0;
    virtual Ciphertext dropToLevel(const Ciphertext& a,
                                   size_t level) const = 0;
    virtual Ciphertext rotate(const Ciphertext& a, int steps,
                              const GaloisKeys& gks) const = 0;
    virtual std::vector<Ciphertext>
    rotateHoisted(const Ciphertext& a, const std::vector<int>& steps,
                  const GaloisKeys& gks) const = 0;
    /** PtMatVecMult via a server-hosted transform (consumes one level). */
    virtual Ciphertext matVec(const LinearTransform& t, const Ciphertext& ct,
                              const GaloisKeys& gks) const = 0;
    /** Limb-fused PtMatVecMult (byte-identical to matVec on the real
     *  backend, less DRAM traffic); default falls back to matVec. */
    virtual Ciphertext matVecFused(const LinearTransform& t,
                                   const Ciphertext& ct,
                                   const GaloisKeys& gks) const
    {
        return matVec(t, ct, gks);
    }

    /** Whether bootstrap() is implemented; the base throws UserError. */
    virtual bool supportsBootstrap() const { return false; }
    virtual Ciphertext bootstrap(const Ciphertext& a) const;

    /**
     * Stable fingerprint of a result ciphertext for determinism checks
     * (batched-vs-sequential). Real: serialized-v2 bytes. Virtual:
     * canonical (level, scale, slots, noise) value digest.
     */
    virtual std::string resultDigest(const Ciphertext& ct) const = 0;

    /** Remaining slot-precision bits, when the backend tracks noise
     *  analytically (virtual only; real returns nullopt). */
    virtual std::optional<double>
    noiseBudgetBits(const Ciphertext& ct) const
    {
        (void)ct;
        return std::nullopt;
    }

  protected:
    std::shared_ptr<const CkksContext> ctx;
};

/**
 * The real CKKS backend: thin adapter over Evaluator + CkksEncoder,
 * preserving the exact pre-seam serve execution paths.
 */
class RealBackend final : public EvalBackend
{
  public:
    explicit RealBackend(std::shared_ptr<const CkksContext> ctx);

    BackendKind kind() const override { return BackendKind::Real; }
    const Evaluator& evaluator() const { return eval_; }
    const CkksEncoder& encoder() const { return encoder_; }

    Ciphertext encryptReal(const PublicKey& pk,
                           const std::vector<double>& values,
                           u64 seed) const override;
    std::vector<double> decryptReal(const SecretKey& sk,
                                    const Ciphertext& ct) const override;
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const override;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const override;
    Ciphertext addAligned(const Ciphertext& a,
                          const Ciphertext& b) const override;
    Ciphertext mul(const Ciphertext& a, const Ciphertext& b,
                   const SwitchingKey& rlk) const override;
    Ciphertext mulNoRescale(const Ciphertext& a, const Ciphertext& b,
                            const SwitchingKey& rlk) const override;
    Ciphertext mulScalarRescale(const Ciphertext& a,
                                double scalar) const override;
    Ciphertext addScalar(const Ciphertext& a, double scalar) const override;
    Ciphertext rescale(const Ciphertext& a) const override;
    Ciphertext dropToLevel(const Ciphertext& a, size_t level) const override;
    Ciphertext rotate(const Ciphertext& a, int steps,
                      const GaloisKeys& gks) const override;
    std::vector<Ciphertext> rotateHoisted(const Ciphertext& a,
                                          const std::vector<int>& steps,
                                          const GaloisKeys& gks) const override;
    Ciphertext matVec(const LinearTransform& t, const Ciphertext& ct,
                      const GaloisKeys& gks) const override;
    Ciphertext matVecFused(const LinearTransform& t, const Ciphertext& ct,
                           const GaloisKeys& gks) const override;
    std::string resultDigest(const Ciphertext& ct) const override;

  private:
    CkksEncoder encoder_;
    Evaluator eval_;
};

} // namespace madfhe

#endif // MADFHE_CKKS_BACKEND_H
