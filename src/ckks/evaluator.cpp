#include "ckks/evaluator.h"

#include <cmath>

#include "memtrace/trace.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_rescale("ckks.rescale", faultinject::kLimbKinds);
} // namespace

Evaluator::Evaluator(std::shared_ptr<const CkksContext> ctx_,
                     EvalOptions options)
    : ctx(ctx_), ksw(ctx_), opts(options)
{
}

void
Evaluator::requireSameShape(const Ciphertext& a, const Ciphertext& b) const
{
    MAD_REQUIRE(a.level() == b.level(), "ciphertext levels differ");
    double rel = std::abs(a.scale - b.scale) / a.scale;
    MAD_REQUIRE(rel < 1e-3, "ciphertext scales differ; rescale/align first");
}

Ciphertext
Evaluator::add(const Ciphertext& a, const Ciphertext& b) const
{
    requireSameShape(a, b);
    Ciphertext out = a;
    out.c0.add(b.c0);
    out.c1.add(b.c1);
    return out;
}

Ciphertext
Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const
{
    requireSameShape(a, b);
    Ciphertext out = a;
    out.c0.sub(b.c0);
    out.c1.sub(b.c1);
    return out;
}

Ciphertext
Evaluator::negate(const Ciphertext& a) const
{
    Ciphertext out = a;
    out.c0.negate();
    out.c1.negate();
    return out;
}

std::pair<Ciphertext, Ciphertext>
Evaluator::align(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext x = a, y = b;
    size_t lvl = std::min(x.level(), y.level());
    if (x.level() > lvl)
        x = dropToLevel(x, lvl);
    if (y.level() > lvl)
        y = dropToLevel(y, lvl);
    double rel = std::abs(x.scale - y.scale) / std::max(x.scale, y.scale);
    if (rel >= 1e-3) {
        // Scalar-adjust the larger-scale operand down to the smaller
        // scale (consumes one level on both, to keep levels equal).
        MAD_REQUIRE(lvl >= 2, "cannot scale-align at the last level");
        if (x.scale > y.scale) {
            x = mulScalarRescale(x, y.scale / x.scale);
            x.scale = y.scale; // exact by construction of the ratio
            y = dropToLevel(y, x.level());
        } else {
            y = mulScalarRescale(y, x.scale / y.scale);
            y.scale = x.scale;
            x = dropToLevel(x, y.level());
        }
    }
    return {std::move(x), std::move(y)};
}

Ciphertext
Evaluator::addAligned(const Ciphertext& a, const Ciphertext& b) const
{
    auto [x, y] = align(a, b);
    return add(x, y);
}

Ciphertext
Evaluator::subAligned(const Ciphertext& a, const Ciphertext& b) const
{
    auto [x, y] = align(a, b);
    return sub(x, y);
}

Ciphertext
Evaluator::addPlain(const Ciphertext& a, const Plaintext& pt) const
{
    MAD_REQUIRE(a.level() == pt.level(), "plaintext level mismatch");
    MAD_REQUIRE(std::abs(a.scale - pt.scale) / a.scale < 1e-3,
            "plaintext scale mismatch");
    Ciphertext out = a;
    out.c0.add(pt.poly);
    return out;
}

Ciphertext
Evaluator::subPlain(const Ciphertext& a, const Plaintext& pt) const
{
    MAD_REQUIRE(a.level() == pt.level(), "plaintext level mismatch");
    MAD_REQUIRE(std::abs(a.scale - pt.scale) / a.scale < 1e-3,
            "plaintext scale mismatch");
    Ciphertext out = a;
    out.c0.sub(pt.poly);
    return out;
}

Ciphertext
Evaluator::mulPlain(const Ciphertext& a, const Plaintext& pt) const
{
    MAD_REQUIRE(a.level() == pt.level(), "plaintext level mismatch");
    Ciphertext out = a;
    out.c0.mulPointwise(pt.poly);
    out.c1.mulPointwise(pt.poly);
    out.scale = a.scale * pt.scale;
    return out;
}

Ciphertext
Evaluator::mulPlainRescale(const Ciphertext& a, const Plaintext& pt) const
{
    return rescale(mulPlain(a, pt));
}

Ciphertext
Evaluator::mulNoRescale(const Ciphertext& a, const Ciphertext& b,
                        const SwitchingKey& rlk) const
{
    MAD_TRACE_SCOPE("Mult");
    TELEM_SPAN("Mult");
    requireSameShape(a, b);
    // Tensor: d0 + d1*s + d2*s^2 = (a0 + a1 s)(b0 + b1 s).
    RnsPoly d0 = a.c0;
    d0.mulPointwise(b.c0);
    RnsPoly d1 = a.c0;
    d1.mulPointwise(b.c1);
    d1.addMul(a.c1, b.c0);
    RnsPoly d2 = a.c1;
    d2.mulPointwise(b.c1);

    auto [u, v] = ksw.keySwitch(d2, rlk);
    Ciphertext out;
    out.c0 = std::move(d0);
    out.c0.add(u);
    out.c1 = std::move(d1);
    out.c1.add(v);
    out.scale = a.scale * b.scale;
    return out;
}

Ciphertext
Evaluator::mul(const Ciphertext& a, const Ciphertext& b,
               const SwitchingKey& rlk) const
{
    MAD_ERROR_OP("Mult");
    if (!opts.merged_moddown)
        return rescale(mulNoRescale(a, b, rlk));

    MAD_TRACE_SCOPE("Mult");
    TELEM_SPAN("Mult");
    requireSameShape(a, b);
    MAD_REQUIRE(a.level() >= 2, "mul needs a level to rescale into");

    RnsPoly d0 = a.c0;
    d0.mulPointwise(b.c0);
    RnsPoly d1 = a.c0;
    d1.mulPointwise(b.c1);
    d1.addMul(a.c1, b.c0);
    RnsPoly d2 = a.c1;
    d2.mulPointwise(b.c1);

    // Raised-basis KeySwitch, with the linear Add lifted above ModDown
    // (Figure 4(b)) and a single merged ModDown dividing by P * q_top
    // (Figure 4(c)). keySwitchMerged dispatches on MADFHE_STREAM: Off
    // composes the materializing primitives, the streaming policies run
    // the fused limb-by-limb engine (byte-identical outputs).
    auto [u, v] = ksw.keySwitchMerged(d2, rlk, d0, d1);

    Ciphertext out;
    out.c0 = std::move(u);
    out.c1 = std::move(v);
    out.scale = a.scale * b.scale /
                static_cast<double>(ctx->qValue(a.level() - 1));
    return out;
}

Ciphertext
Evaluator::square(const Ciphertext& a, const SwitchingKey& rlk) const
{
    return mul(a, a, rlk);
}

namespace {

/**
 * Divide one polynomial (eval rep) by its top limb with rounding:
 * out_i = (x_i - lift([x]_q_top)) * q_top^{-1} mod q_i.
 */
RnsPoly
rescalePoly(const RnsPoly& x, const CkksContext& ctx)
{
    MAD_TRACE_SCOPE("Rescale");
    TELEM_SPAN("Rescale");
    const size_t level = x.numLimbs();
    const size_t n = x.degree();
    const Modulus& q_top = ctx.ring()->modulus(level - 1);

    std::vector<u64> top(x.limb(level - 1), x.limb(level - 1) + n);
    MAD_TRACE_ALLOC(top.data(), n * sizeof(u64));
    MAD_TRACE_READ(x.limb(level - 1), n * sizeof(u64));
    MAD_TRACE_WRITE(top.data(), n * sizeof(u64));
    ctx.ring()->ntt(level - 1).inverse(top.data());

    RnsPoly out(x.context(), ctx.ring()->qIndices(level - 1), Rep::Eval);
    // One correction slice per kept limb so the limbs are independent
    // parallel tasks (a single shared buffer would serialize them).
    std::vector<u64> corr((level - 1) * n);
    MAD_TRACE_ALLOC(corr.data(), corr.size() * sizeof(u64));
    parallelFor(level - 1, [&](size_t i) {
        const Modulus& qi = ctx.ring()->modulus(i);
        u64* ci = corr.data() + i * n;
        MAD_TRACE_READ(top.data(), n * sizeof(u64));
        MAD_TRACE_WRITE(ci, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            ci[c] = qi.fromSigned(q_top.toSigned(top[c]));
        ctx.ring()->ntt(i).forward(ci);
        const u64 inv = ctx.rescaleInv(level, i);
        const u64 inv_shoup = qi.shoupPrecompute(inv);
        const u64* xi = x.limb(i);
        u64* oi = out.limb(i);
        MAD_TRACE_READ(xi, n * sizeof(u64));
        MAD_TRACE_READ(ci, n * sizeof(u64));
        MAD_TRACE_WRITE(oi, n * sizeof(u64));
        for (size_t c = 0; c < n; ++c)
            oi[c] = qi.mulShoup(qi.sub(xi[c], ci[c]), inv, inv_shoup);
    });
    for (size_t i = 0; i + 1 < level; ++i)
        faultinject::guardLimb(g_fault_rescale, out.limb(i), n);
    return out;
}

} // namespace

Ciphertext
Evaluator::rescale(const Ciphertext& a) const
{
    MAD_ERROR_OP("Rescale");
    MAD_REQUIRE(a.level() >= 2, "cannot rescale the last limb away");
    Ciphertext out;
    out.c0 = rescalePoly(a.c0, *ctx);
    out.c1 = rescalePoly(a.c1, *ctx);
    out.scale = a.scale / static_cast<double>(ctx->qValue(a.level() - 1));
    if (integrity::enabled()) {
        // Scale/level sanity: rescale must drop exactly one limb and land
        // on a finite positive scale, or downstream math quietly degrades.
        if (out.level() != a.level() - 1 || !std::isfinite(out.scale) ||
            out.scale <= 0.0)
            throw FaultDetectedError("rescale produced an insane "
                                     "scale/level pair",
                                     __FILE__, __LINE__);
    }
    return out;
}

Ciphertext
Evaluator::dropToLevel(const Ciphertext& a, size_t level) const
{
    MAD_REQUIRE(level >= 1 && level <= a.level(), "bad target level");
    Ciphertext out = a;
    out.c0.truncateLimbs(level);
    out.c1.truncateLimbs(level);
    return out;
}

const SwitchingKey&
Evaluator::galoisKeyFor(u64 elt, const GaloisKeys& gks) const
{
    auto it = gks.find(elt);
    MAD_REQUIRE(it != gks.end(), "missing Galois key for requested rotation");
    return it->second;
}

Ciphertext
Evaluator::rotate(const Ciphertext& a, int steps, const GaloisKeys& gks) const
{
    MAD_ERROR_OP("Rotate");
    const u64 t = ctx->ring()->galoisElt(steps);
    if (t == 1)
        return a;
    MAD_TRACE_SCOPE("Rotate");
    TELEM_SPAN("Rotate");
    const SwitchingKey& gk = galoisKeyFor(t, gks);

    RnsPoly c0t = a.c0.automorph(t);
    RnsPoly c1t = a.c1.automorph(t);
    auto [u, v] = ksw.keySwitch(c1t, gk);
    Ciphertext out;
    out.c0 = std::move(c0t);
    out.c0.add(u);
    out.c1 = std::move(v);
    out.scale = a.scale;
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext& a, const GaloisKeys& gks) const
{
    const u64 t = ctx->ring()->conjugateElt();
    MAD_TRACE_SCOPE("Conjugate");
    TELEM_SPAN("Conjugate");
    const SwitchingKey& gk = galoisKeyFor(t, gks);
    RnsPoly c0t = a.c0.automorph(t);
    RnsPoly c1t = a.c1.automorph(t);
    auto [u, v] = ksw.keySwitch(c1t, gk);
    Ciphertext out;
    out.c0 = std::move(c0t);
    out.c0.add(u);
    out.c1 = std::move(v);
    out.scale = a.scale;
    return out;
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext& a, const std::vector<int>& steps,
                         const GaloisKeys& gks) const
{
    // Decomp + ModUp once (Figure 5(c)); per step only Automorph +
    // KSKInnerProd + ModDown remain. The digits are computed lazily on
    // the first step that actually key-switches, so an empty step list
    // (-> empty result) or an all-zero one (-> copies of the input)
    // never pays or traces a wasted Decomp+ModUp. Duplicate steps are
    // well-defined: each occurrence yields an identical ciphertext off
    // the shared digits.
    std::vector<RnsPoly> digits;
    bool have_digits = false;

    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    for (int s : steps) {
        const u64 t = ctx->ring()->galoisElt(s);
        if (t == 1) {
            out.push_back(a);
            continue;
        }
        const SwitchingKey& gk = galoisKeyFor(t, gks);
        if (!have_digits) {
            digits = ksw.decomposeAndRaise(a.c1);
            have_digits = true;
        }
        std::vector<RnsPoly> rotated;
        rotated.reserve(digits.size());
        for (const auto& d : digits)
            rotated.push_back(d.automorph(t));
        RaisedCiphertext raised = ksw.innerProduct(rotated, gk);

        Ciphertext ct;
        ct.c0 = a.c0.automorph(t);
        ct.c0.add(ksw.modDown(raised.c0));
        ct.c1 = ksw.modDown(raised.c1);
        ct.scale = a.scale;
        out.push_back(std::move(ct));
    }
    return out;
}

RaisedCiphertext
Evaluator::rotateRaised(const std::vector<RnsPoly>& digits,
                        const Ciphertext& a, int steps,
                        const GaloisKeys& gks) const
{
    const u64 t = ctx->ring()->galoisElt(steps);
    RaisedCiphertext raised;
    if (t == 1) {
        raised.c0 = ksw.pModUp(a.c0);
        raised.c1 = ksw.pModUp(a.c1);
        raised.q_level = a.level();
        raised.scale = a.scale;
        return raised;
    }
    const SwitchingKey& gk = galoisKeyFor(t, gks);
    std::vector<RnsPoly> rotated;
    rotated.reserve(digits.size());
    for (const auto& d : digits)
        rotated.push_back(d.automorph(t));
    raised = ksw.innerProduct(rotated, gk);
    raised.c0.add(ksw.pModUp(a.c0.automorph(t)));
    raised.scale = a.scale;
    return raised;
}

Ciphertext
Evaluator::modDownPair(const RaisedCiphertext& r) const
{
    Ciphertext out;
    out.c0 = ksw.modDown(r.c0);
    out.c1 = ksw.modDown(r.c1);
    out.scale = r.scale;
    return out;
}

void
Evaluator::mulPlainRaised(RaisedCiphertext& r, const Plaintext& pt) const
{
    MAD_REQUIRE(pt.poly.numLimbs() == r.c0.numLimbs(),
            "raised plaintext must cover the full PQ basis");
    r.c0.mulPointwise(pt.poly);
    r.c1.mulPointwise(pt.poly);
    r.scale *= pt.scale;
}

void
Evaluator::addRaised(RaisedCiphertext& acc, const RaisedCiphertext& r) const
{
    MAD_REQUIRE(acc.q_level == r.q_level, "raised level mismatch");
    MAD_REQUIRE(std::abs(acc.scale - r.scale) / acc.scale < 1e-3,
            "raised scale mismatch");
    acc.c0.add(r.c0);
    acc.c1.add(r.c1);
}

Ciphertext
Evaluator::mulMonomial(const Ciphertext& a, size_t power) const
{
    MAD_REQUIRE(a.c0.rep() == Rep::Eval, "mulMonomial expects eval rep");
    const size_t n = ctx->degree();
    Ciphertext out = a;
    parallelFor(a.level(), [&](size_t i) {
        const u32 chain_idx = a.c0.basis()[i];
        const NttTables& ntt = ctx->ring()->ntt(chain_idx);
        const Modulus& q = ctx->ring()->modulus(chain_idx);
        u64* c0 = out.c0.limb(i);
        u64* c1 = out.c1.limb(i);
        MAD_TRACE_READ(c0, n * sizeof(u64));
        MAD_TRACE_READ(c1, n * sizeof(u64));
        MAD_TRACE_WRITE(c0, n * sizeof(u64));
        MAD_TRACE_WRITE(c1, n * sizeof(u64));
        for (size_t k = 0; k < n; ++k) {
            // Evaluation slot k holds a(psi^(2k+1)); multiplying by
            // x^power scales it by psi^(power * (2k+1)).
            u64 w = ntt.psiPower(power * (2 * k + 1));
            c0[k] = q.mul(c0[k], w);
            c1[k] = q.mul(c1[k], w);
        }
    });
    return out;
}

Ciphertext
Evaluator::mulScalarRescale(const Ciphertext& a, double scalar) const
{
    MAD_REQUIRE(a.level() >= 2, "no level left to rescale into");
    const u64 q_top = ctx->qValue(a.level() - 1);
    const double target = scalar * static_cast<double>(q_top);
    MAD_REQUIRE(std::abs(target) < 9.0e18, "scalar too large for one limb");
    const i64 k = static_cast<i64>(std::llround(target));

    Ciphertext out = a;
    std::vector<u64> per0(a.level()), per1(a.level());
    for (size_t i = 0; i < a.level(); ++i) {
        per0[i] = out.c0.modulus(i).fromSigned(k);
        per1[i] = per0[i];
    }
    out.c0.mulScalarPerLimb(per0);
    out.c1.mulScalarPerLimb(per1);
    out.scale = a.scale * static_cast<double>(q_top);
    return rescale(out);
}

Ciphertext
Evaluator::addScalar(const Ciphertext& a, double scalar,
                     const CkksEncoder& encoder) const
{
    Plaintext pt = encoder.encodeScalar({scalar, 0.0}, a.scale, a.level());
    return addPlain(a, pt);
}

} // namespace madfhe
