/**
 * @file
 * Binary serialization for ring elements, ciphertexts, and switching
 * keys. Switching keys honor seed compression: a compressed key writes
 * only the b-half polynomials plus the 32-byte PRNG seed — the on-wire
 * analogue of the MAD key-compression optimization, halving key size.
 *
 * Format v2: little-endian; every blob opens with a 16-byte versioned
 * file header ("MADFHE02" + format version) followed by the per-object
 * sections (fixed 8-byte magic each). A running FNV-1a checksum is
 * emitted after each section header and each limb, so deserialization
 * rejects any flipped byte or truncation with a typed
 * CorruptStreamError; all size/count fields are bounds-checked against
 * the ring before any allocation.
 */
#ifndef MADFHE_CKKS_SERIALIZE_H
#define MADFHE_CKKS_SERIALIZE_H

#include <iosfwd>

#include "ckks/encryptor.h"
#include "ckks/keys.h"

namespace madfhe {

/** Serialize one polynomial (basis indices, rep, limb data). */
void savePoly(std::ostream& os, const RnsPoly& poly);
/** Deserialize a polynomial onto the given ring. */
RnsPoly loadPoly(std::istream& is, std::shared_ptr<const RingContext> ring);

/** Serialize a ciphertext (both polynomials + scale). */
void saveCiphertext(std::ostream& os, const Ciphertext& ct);
Ciphertext loadCiphertext(std::istream& is,
                          std::shared_ptr<const RingContext> ring);

/** Serialize a seed-compressed symmetric ciphertext (~half size). */
void saveSeededCiphertext(std::ostream& os, const SeededCiphertext& sct);
SeededCiphertext loadSeededCiphertext(std::istream& is,
                                      std::shared_ptr<const RingContext> ring);

/** Serialize a plaintext. */
void savePlaintext(std::ostream& os, const Plaintext& pt);
Plaintext loadPlaintext(std::istream& is,
                        std::shared_ptr<const RingContext> ring);

/**
 * Serialize a switching key. If the key is compressed (a-halves
 * dropped), only the seed and b-halves are written; loading such a key
 * re-expands the a-halves from the seed on demand via expand().
 */
void saveSwitchingKey(std::ostream& os, const SwitchingKey& key);
SwitchingKey loadSwitchingKey(std::istream& is,
                              std::shared_ptr<const RingContext> ring);

/**
 * Serialize a switching key in compressed (seed + b-halves) form even
 * when the a-halves are resident, without mutating the key. This is the
 * form serving sessions ship: seeds travel, digits are re-expanded at
 * the receiver via SwitchingKey::expandA().
 */
void saveSwitchingKeyCompressed(std::ostream& os, const SwitchingKey& key);

/** Serialize a full Galois-key set (Galois element -> switching key). */
void saveGaloisKeys(std::ostream& os, const GaloisKeys& keys);
GaloisKeys loadGaloisKeys(std::istream& is,
                          std::shared_ptr<const RingContext> ring);

/** Galois-key set in compressed form (see saveSwitchingKeyCompressed). */
void saveGaloisKeysCompressed(std::ostream& os, const GaloisKeys& keys);

/** Serialize a public key (two polynomials). */
void savePublicKey(std::ostream& os, const PublicKey& pk);
PublicKey loadPublicKey(std::istream& is,
                        std::shared_ptr<const RingContext> ring);

/** Serialize a secret key (s over QP plus its signed coefficients). */
void saveSecretKey(std::ostream& os, const SecretKey& sk);
SecretKey loadSecretKey(std::istream& is,
                        std::shared_ptr<const RingContext> ring);

/** Bytes savePoly would emit, for size accounting in tests/tools. */
size_t polyWireSize(const RnsPoly& poly);
/** Bytes saveSwitchingKey would emit. */
size_t switchingKeyWireSize(const SwitchingKey& key);

} // namespace madfhe

#endif // MADFHE_CKKS_SERIALIZE_H
