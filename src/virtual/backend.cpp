#include "virtual/backend.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "support/env.h"
#include "telemetry/simfhe_bridge.h"
#include "telemetry/telemetry.h"

namespace madfhe {
namespace vbackend {

VirtualOptions
VirtualOptions::fromEnv()
{
    VirtualOptions o;
    o.latency_ppm = env::u64Or("MADFHE_VIRTUAL_LATENCY", 0);
    return o;
}

VirtualBackend::VirtualBackend(std::shared_ptr<const CkksContext> ctx_,
                               VirtualOptions options)
    : EvalBackend(std::move(ctx_)), opts(options), est_(ctx),
      query_(telemetry::bridgeScheme(ctx->params())),
      latency_hw_(simfhe::HardwareDesign::gpu())
{
    requirePackable(*ctx);
}

VirtualView
VirtualBackend::view(const Ciphertext& ct) const
{
    return unpackVirtual(*ctx, ct);
}

void
VirtualBackend::requireSameShape(const VirtualView& a,
                                 const VirtualView& b) const
{
    MAD_REQUIRE(a.level == b.level, "ciphertext levels differ");
    double rel = std::abs(a.scale - b.scale) / a.scale;
    MAD_REQUIRE(rel < 1e-3, "ciphertext scales differ; rescale/align first");
}

void
VirtualBackend::charge(simfhe::PrimOp op, const simfhe::Cost& cost) const
{
    {
        std::lock_guard<std::mutex> lock(cost_mu_);
        charged_ += cost;
        ++charged_ops_;
    }
    if (telemetry::enabled(telemetry::Level::Counters)) {
        telemetry::counter("virtual.ops").add(1);
        telemetry::counter(std::string("virtual.op.") + simfhe::primOpName(op))
            .add(1);
    }
    if (opts.latency_ppm > 0) {
        const double ns = simfhe::OpCostQuery::modelNs(latency_hw_, cost) *
                          static_cast<double>(opts.latency_ppm) / 1e6;
        if (ns >= 1.0)
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(static_cast<u64>(ns)));
    }
}

simfhe::Cost
VirtualBackend::chargedCost() const
{
    std::lock_guard<std::mutex> lock(cost_mu_);
    return charged_;
}

u64
VirtualBackend::chargedOps() const
{
    std::lock_guard<std::mutex> lock(cost_mu_);
    return charged_ops_;
}

Ciphertext
VirtualBackend::encryptReal(const PublicKey& pk,
                            const std::vector<double>& values, u64 seed) const
{
    (void)pk;
    (void)seed; // values are carried verbatim; no randomness to derive
    MAD_REQUIRE(values.size() <= ctx->slots(), "too many values for slots");
    VirtualView v;
    v.slots.reserve(values.size());
    for (double x : values)
        v.slots.push_back({x, 0.0});
    v.level = ctx->maxLevel();
    v.scale = ctx->scale();
    v.noise_log2 = est_.fresh().log2_error;
    charge(simfhe::PrimOp::PtAdd, query_.cost(simfhe::PrimOp::PtAdd, v.level));
    return packVirtual(*ctx, v);
}

std::vector<double>
VirtualBackend::decryptReal(const SecretKey& sk, const Ciphertext& ct) const
{
    (void)sk;
    const VirtualView v = view(ct);
    charge(simfhe::PrimOp::PtAdd, query_.cost(simfhe::PrimOp::PtAdd, v.level));
    std::vector<double> out;
    out.reserve(v.slots.size());
    for (const std::complex<double>& s : v.slots)
        out.push_back(s.real());
    return out;
}

Ciphertext
VirtualBackend::add(const Ciphertext& a, const Ciphertext& b) const
{
    VirtualView x = view(a);
    const VirtualView y = view(b);
    requireSameShape(x, y);
    for (size_t k = 0; k < x.slots.size(); ++k)
        x.slots[k] += y.slots[k];
    x.noise_log2 =
        est_.add(NoiseBound{x.noise_log2}, NoiseBound{y.noise_log2})
            .log2_error;
    charge(simfhe::PrimOp::Add, query_.cost(simfhe::PrimOp::Add, x.level));
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::sub(const Ciphertext& a, const Ciphertext& b) const
{
    VirtualView x = view(a);
    const VirtualView y = view(b);
    requireSameShape(x, y);
    for (size_t k = 0; k < x.slots.size(); ++k)
        x.slots[k] -= y.slots[k];
    // Error magnitudes add under subtraction exactly as under addition.
    x.noise_log2 =
        est_.add(NoiseBound{x.noise_log2}, NoiseBound{y.noise_log2})
            .log2_error;
    charge(simfhe::PrimOp::Add, query_.cost(simfhe::PrimOp::Add, x.level));
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::mulScalarRescale(const Ciphertext& a, double scalar) const
{
    VirtualView x = view(a);
    MAD_REQUIRE(x.level >= 2, "no level left to rescale into");
    const double mag = x.magnitude();
    for (std::complex<double>& s : x.slots)
        s *= scalar;
    // The real path folds the scalar into q_top then rescales: slot
    // scale is unchanged, one level consumed (same accounting as
    // alignViews' scale adjustment).
    x.noise_log2 =
        est_.rescale(est_.mulPlain(NoiseBound{x.noise_log2},
                                   std::abs(scalar), mag))
            .log2_error;
    charge(simfhe::PrimOp::PtMult,
           query_.cost(simfhe::PrimOp::PtMult, x.level));
    x.level -= 1;
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::addScalar(const Ciphertext& a, double scalar) const
{
    VirtualView x = view(a);
    for (std::complex<double>& s : x.slots)
        s += scalar;
    // Plaintext addition contributes one encoding's worth of error.
    x.noise_log2 =
        est_.add(NoiseBound{x.noise_log2}, est_.encoding()).log2_error;
    charge(simfhe::PrimOp::PtAdd, query_.cost(simfhe::PrimOp::PtAdd, x.level));
    return packVirtual(*ctx, x);
}

std::pair<VirtualView, VirtualView>
VirtualBackend::alignViews(const VirtualView& a, const VirtualView& b) const
{
    VirtualView x = a, y = b;
    const size_t lvl = std::min(x.level, y.level);
    x.level = lvl;
    y.level = lvl;
    double rel = std::abs(x.scale - y.scale) / std::max(x.scale, y.scale);
    if (rel >= 1e-3) {
        // Scalar-adjust the larger-scale operand down to the smaller
        // scale (consumes one level on both, to keep levels equal).
        MAD_REQUIRE(lvl >= 2, "cannot scale-align at the last level");
        VirtualView& big = x.scale > y.scale ? x : y;
        const double small_scale = std::min(x.scale, y.scale);
        const double ratio = small_scale / big.scale;
        // mulScalarRescale: slot values are unchanged (the scalar and
        // the scale change cancel); one PtMult+Rescale worth of noise
        // lands on the adjusted operand.
        big.noise_log2 = est_.mulPlain(NoiseBound{big.noise_log2},
                                       std::abs(ratio), big.magnitude())
                             .log2_error;
        big.scale = small_scale;
        charge(simfhe::PrimOp::PtMult,
               query_.cost(simfhe::PrimOp::PtMult, lvl));
        x.level = lvl - 1;
        y.level = lvl - 1;
    }
    return {std::move(x), std::move(y)};
}

Ciphertext
VirtualBackend::addAligned(const Ciphertext& a, const Ciphertext& b) const
{
    auto [x, y] = alignViews(view(a), view(b));
    requireSameShape(x, y);
    for (size_t k = 0; k < x.slots.size(); ++k)
        x.slots[k] += y.slots[k];
    x.noise_log2 =
        est_.add(NoiseBound{x.noise_log2}, NoiseBound{y.noise_log2})
            .log2_error;
    charge(simfhe::PrimOp::Add, query_.cost(simfhe::PrimOp::Add, x.level));
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::mul(const Ciphertext& a, const Ciphertext& b,
                    const SwitchingKey& rlk) const
{
    (void)rlk; // presence is the control plane's (key cache) concern
    VirtualView x = view(a);
    const VirtualView y = view(b);
    requireSameShape(x, y);
    MAD_REQUIRE(x.level >= 2, "mul needs a level to rescale into");
    const double mag_a = x.magnitude();
    const double mag_b = y.magnitude();
    for (size_t k = 0; k < x.slots.size(); ++k)
        x.slots[k] *= y.slots[k];
    x.noise_log2 = est_.mul(NoiseBound{x.noise_log2},
                            NoiseBound{y.noise_log2}, mag_a, mag_b, x.level)
                       .log2_error;
    x.scale = x.scale * y.scale /
              static_cast<double>(ctx->qValue(x.level - 1));
    charge(simfhe::PrimOp::Mult, query_.cost(simfhe::PrimOp::Mult, x.level));
    x.level -= 1;
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::rescale(const Ciphertext& a) const
{
    VirtualView x = view(a);
    MAD_REQUIRE(x.level >= 2, "cannot rescale the last limb away");
    x.scale /= static_cast<double>(ctx->qValue(x.level - 1));
    x.noise_log2 = est_.rescale(NoiseBound{x.noise_log2}).log2_error;
    charge(simfhe::PrimOp::Rescale,
           query_.cost(simfhe::PrimOp::Rescale, x.level));
    x.level -= 1;
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::dropToLevel(const Ciphertext& a, size_t level) const
{
    VirtualView x = view(a);
    MAD_REQUIRE(level >= 1 && level <= x.level, "bad target level");
    x.level = level;
    return packVirtual(*ctx, x);
}

namespace {

/** Slot permutation of a left-rotation by `steps` (matches the real
 *  evaluator / LinearTransform convention: out[k] = in[(k+steps) % n]). */
std::vector<std::complex<double>>
rotateSlots(const std::vector<std::complex<double>>& in, int steps)
{
    const long long n = static_cast<long long>(in.size());
    std::vector<std::complex<double>> out(in.size());
    for (long long k = 0; k < n; ++k) {
        long long src = (k + steps) % n;
        if (src < 0)
            src += n;
        out[static_cast<size_t>(k)] = in[static_cast<size_t>(src)];
    }
    return out;
}

} // namespace

Ciphertext
VirtualBackend::rotate(const Ciphertext& a, int steps,
                       const GaloisKeys& gks) const
{
    const u64 t = ctx->ring()->galoisElt(steps);
    if (t == 1)
        return a;
    MAD_REQUIRE(gks.find(t) != gks.end(),
                "missing Galois key for requested rotation");
    VirtualView x = view(a);
    x.slots = rotateSlots(x.slots, steps);
    x.noise_log2 =
        est_.rotate(NoiseBound{x.noise_log2}, x.level).log2_error;
    charge(simfhe::PrimOp::Rotate,
           query_.cost(simfhe::PrimOp::Rotate, x.level));
    return packVirtual(*ctx, x);
}

std::vector<Ciphertext>
VirtualBackend::rotateHoisted(const Ciphertext& a,
                              const std::vector<int>& steps,
                              const GaloisKeys& gks) const
{
    const VirtualView in = view(a);
    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    size_t keyswitched = 0;
    for (int s : steps) {
        const u64 t = ctx->ring()->galoisElt(s);
        if (t == 1) {
            out.push_back(a);
            continue;
        }
        MAD_REQUIRE(gks.find(t) != gks.end(),
                    "missing Galois key for requested rotation");
        VirtualView x = in;
        x.slots = rotateSlots(in.slots, s);
        x.noise_log2 =
            est_.rotate(NoiseBound{in.noise_log2}, in.level).log2_error;
        out.push_back(packVirtual(*ctx, x));
        ++keyswitched;
    }
    // One Decomp+ModUp amortized over the batch, per-step automorph +
    // inner product + ModDown (Figure 5(c) accounting).
    charge(simfhe::PrimOp::Rotate,
           query_.rotateHoisted(in.level, keyswitched));
    return out;
}

Ciphertext
VirtualBackend::matVec(const LinearTransform& t, const Ciphertext& ct,
                       const GaloisKeys& gks) const
{
    VirtualView x = view(ct);
    // Real apply() rotates before its final rescale, so a missing Galois
    // key must win over a level-1 input for error parity.
    for (int s : t.requiredRotations()) {
        const u64 elt = ctx->ring()->galoisElt(s);
        if (elt == 1)
            continue;
        MAD_REQUIRE(gks.find(elt) != gks.end(),
                    "missing Galois key for requested rotation");
    }
    MAD_REQUIRE(x.level >= 2, "cannot rescale the last limb away");

    const double mag = x.magnitude();
    const size_t diagonals = std::max<size_t>(t.numDiagonals(), 1);
    x.slots = t.applyPlain(x.slots);
    NoiseBound nb = est_.keySwitch(NoiseBound{x.noise_log2}, x.level);
    nb = est_.mulPlain(nb, t.maxDiagonalMagnitude(), mag);
    // D rescaled diagonal products are summed into the output.
    nb.log2_error += std::log2(static_cast<double>(diagonals));
    x.noise_log2 = nb.log2_error;
    x.scale = x.scale * t.ptScale() /
              static_cast<double>(ctx->qValue(x.level - 1));
    charge(simfhe::PrimOp::PtMatVecMult,
           query_.cost(simfhe::PrimOp::PtMatVecMult, x.level, diagonals));
    x.level -= 1;
    return packVirtual(*ctx, x);
}

Ciphertext
VirtualBackend::bootstrap(const Ciphertext& a) const
{
    VirtualView x = view(a);
    // Level refresh: values survive, the chain resets to max, and the
    // output noise is the input noise plus a roughly-fresh bootstrap
    // residual (EvalMod approximation error dominates; ~8 bits above a
    // fresh encryption is the conventional budget).
    x.level = ctx->maxLevel();
    x.scale = ctx->scale();
    x.noise_log2 =
        est_.add(NoiseBound{x.noise_log2},
                 NoiseBound{est_.fresh().log2_error + 8.0})
            .log2_error;
    charge(simfhe::PrimOp::Bootstrap, bootstrapCost());
    return packVirtual(*ctx, x);
}

simfhe::Cost
VirtualBackend::bootstrapCost() const
{
    {
        std::lock_guard<std::mutex> lock(cost_mu_);
        if (boot_cost_)
            return *boot_cost_;
    }
    simfhe::Cost cost;
    try {
        cost = query_.cost(simfhe::PrimOp::Bootstrap, ctx->maxLevel());
    } catch (const MadError&) {
        // The analytic Alg-2 accounting needs the paper-scale deep
        // chain; functional presets (e.g. the 3-level load-test set)
        // cannot place EvalMod in it. Approximate with the dominant
        // terms at this depth: ModRaise plus one Mult + KeySwitch +
        // Rescale pass per chain level (CtS / EvalMod / StC all reduce
        // to rescaled keyswitched products).
        cost = query_.cost(simfhe::PrimOp::ModRaise, ctx->maxLevel());
        for (size_t l = ctx->maxLevel(); l >= 1; --l) {
            cost += query_.cost(simfhe::PrimOp::Mult, l);
            cost += query_.cost(simfhe::PrimOp::KeySwitch, l);
            if (l >= 2)
                cost += query_.cost(simfhe::PrimOp::Rescale, l);
        }
    }
    std::lock_guard<std::mutex> lock(cost_mu_);
    boot_cost_ = cost;
    return cost;
}

std::string
VirtualBackend::resultDigest(const Ciphertext& ct) const
{
    return virtualDigest(*ctx, ct);
}

std::optional<double>
VirtualBackend::noiseBudgetBits(const Ciphertext& ct) const
{
    return -view(ct).noise_log2;
}

std::unique_ptr<EvalBackend>
makeEvalBackend(BackendKind kind, std::shared_ptr<const CkksContext> ctx)
{
    switch (kind) {
    case BackendKind::Real:
        return std::make_unique<RealBackend>(std::move(ctx));
    case BackendKind::Virtual:
        return std::make_unique<VirtualBackend>(std::move(ctx));
    }
    throw InvariantError("unhandled BackendKind", __FILE__, __LINE__);
}

} // namespace vbackend
} // namespace madfhe
