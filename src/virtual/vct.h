/**
 * @file
 * Virtual-ciphertext codec: how the virtual backend smuggles plaintext
 * slot values and analytic noise state through the standard `Ciphertext`
 * type, so the entire serving stack (wire frames, serialize-v2
 * validation, KV store, batch keys, level-based admission) runs
 * unchanged.
 *
 * Layout (a "packed" virtual ciphertext at logical level l):
 *  - c0/c1 are single-limb (q0-only) RnsPolys over the real ring
 *    context in Rep::Coeff. One limb regardless of level keeps the
 *    carrier O(N) — copying requests/responses through the serving
 *    queues is the virtual backend's dominant cost, and a full l-limb
 *    carrier would scale it with the modulus chain for no information
 *    gain (the extra limbs would be all-zero padding).
 *  - Slot k's real part (a double) is split into two 32-bit halves
 *    stored in bits [0,32) of c0.limb(0)[2k] and c0.limb(0)[2k+1]; the
 *    imaginary part likewise in c1.limb(0). N = 2*slots coefficients
 *    exactly hold the payload.
 *  - Metadata rides in bits [32,44) of the first coefficients of
 *    c0.limb(0): two magic words, a format version, the noise estimate
 *    (log2 slot error) as chunked double bits, and the logical level
 *    (ct.level() of the carrier is always 1; the state machine runs on
 *    the metadata level).
 *
 * Every stored coefficient is < 2^44, so the payload passes the
 * serialize-v2 "coefficient < modulus" validation as long as q0 has at
 * least 45 bits and every other prime more than 32 — true of all
 * shipped parameter presets. `requirePackable` checks this once.
 */
#ifndef MADFHE_VIRTUAL_VCT_H
#define MADFHE_VIRTUAL_VCT_H

#include <complex>
#include <string>
#include <vector>

#include "ckks/ciphertext.h"
#include "ckks/context.h"

namespace madfhe {
namespace vbackend {

/** The unpacked state a virtual ciphertext carries. */
struct VirtualView
{
    std::vector<std::complex<double>> slots; ///< one per context slot
    size_t level = 0;
    double scale = 0.0;
    /** log2 upper bound on |decoded - true| per slot (NoiseBound). */
    double noise_log2 = -1e9;

    /** Largest |slot| — the magnitude bound noise tracking feeds on. */
    double magnitude() const;
};

/** Throws UserError when the parameter set cannot hold the packed
 *  payload (q0 < 45 bits or a scale prime <= 2^33). */
void requirePackable(const CkksContext& ctx);

/** True when `ct` carries the virtual magic words. */
bool isVirtualCiphertext(const Ciphertext& ct);

/** Pack a view into a wire-valid Ciphertext (slots padded/truncated to
 *  the context slot count; level must be in [1, maxLevel]). */
Ciphertext packVirtual(const CkksContext& ctx, const VirtualView& v);

/** Unpack; throws UserError when `ct` is not a virtual ciphertext. */
VirtualView unpackVirtual(const CkksContext& ctx, const Ciphertext& ct);

/** Canonical value digest of a packed virtual ciphertext: FNV-1a over
 *  (level, scale bits, noise bits, slot value bits). Two virtual
 *  ciphertexts digest equal iff they are value-identical. */
std::string virtualDigest(const CkksContext& ctx, const Ciphertext& ct);

} // namespace vbackend
} // namespace madfhe

#endif // MADFHE_VIRTUAL_VCT_H
