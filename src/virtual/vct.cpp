#include "virtual/vct.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "ckks/ciphertext.h"

namespace madfhe {
namespace vbackend {

namespace {

// Metadata channel: bits [32, 32+kMetaBits) of the first coefficients
// of c0.limb(0). The payload halves live in bits [0,32) of the same
// coefficients, so metadata and payload never collide.
constexpr unsigned kMetaBits = 12;
constexpr u64 kMetaMask = (u64(1) << kMetaBits) - 1;
constexpr u64 kMagic0 = 0xACE; // "a clearly evaluable" ciphertext
constexpr u64 kMagic1 = 0x5C1;
constexpr u64 kVersion = 1;
// Words: [0]=magic0 [1]=magic1 [2]=version [3..9)=noise double bits
// (6 x 12-bit chunks cover 64 bits) [9]=logical level.
constexpr size_t kNoiseWords = 6;
constexpr size_t kLevelWord = 3 + kNoiseWords;
constexpr size_t kMetaWords = kLevelWord + 1;

u64
metaWord(const Ciphertext& ct, size_t j)
{
    return (ct.c0.limb(0)[j] >> 32) & kMetaMask;
}

void
setMetaWord(Ciphertext& ct, size_t j, u64 value)
{
    u64& c = ct.c0.limb(0)[j];
    c = (c & 0xFFFFFFFFULL) | ((value & kMetaMask) << 32);
}

u64
doubleBits(double d)
{
    u64 bits = 0;
    static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

double
bitsDouble(u64 bits)
{
    double d = 0;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

void
fnv(u64& h, u64 word)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (word >> (8 * i)) & 0xFF;
        h *= 0x100000001B3ULL;
    }
}

} // namespace

double
VirtualView::magnitude() const
{
    double mag = 0.0;
    for (const std::complex<double>& s : slots)
        mag = std::max(mag, std::abs(s));
    return mag;
}

void
requirePackable(const CkksContext& ctx)
{
    const auto ring = ctx.ring();
    MAD_REQUIRE(ring->modulus(0).value() > (u64(1) << (32 + kMetaBits)),
                "virtual backend needs first_prime_bits >= 45 to hold the "
                "packed payload + metadata");
    for (size_t i = 1; i < ctx.maxLevel(); ++i)
        MAD_REQUIRE(ring->modulus(i).value() > (u64(1) << 32),
                    "virtual backend needs every scale prime above 2^32 to "
                    "hold the packed payload halves");
}

bool
isVirtualCiphertext(const Ciphertext& ct)
{
    if (ct.c0.numLimbs() == 0 || ct.c0.rep() != Rep::Coeff ||
        ct.c0.degree() < 2 * kMetaWords)
        return false;
    return metaWord(ct, 0) == kMagic0 && metaWord(ct, 1) == kMagic1;
}

Ciphertext
packVirtual(const CkksContext& ctx, const VirtualView& v)
{
    MAD_REQUIRE(v.level >= 1 && v.level <= ctx.maxLevel(),
                "virtual pack: level out of range");
    MAD_REQUIRE(std::isfinite(v.scale) && v.scale > 0,
                "virtual pack: non-finite scale");
    const size_t slots = ctx.slots();
    MAD_REQUIRE(v.slots.size() <= slots, "virtual pack: too many slots");

    // Single-limb carrier whatever the logical level: the level lives
    // in the metadata channel, and every byte the serving queues copy
    // is payload (see the header-comment layout rationale).
    Ciphertext ct;
    ct.c0 = RnsPoly(ctx.ring(), ctx.ring()->qIndices(1), Rep::Coeff);
    ct.c1 = RnsPoly(ctx.ring(), ctx.ring()->qIndices(1), Rep::Coeff);
    ct.scale = v.scale;

    u64* re = ct.c0.limb(0);
    u64* im = ct.c1.limb(0);
    for (size_t k = 0; k < slots; ++k) {
        const std::complex<double> s =
            k < v.slots.size() ? v.slots[k] : std::complex<double>(0, 0);
        MAD_REQUIRE(std::isfinite(s.real()) && std::isfinite(s.imag()),
                    "virtual pack: non-finite slot value");
        const u64 rb = doubleBits(s.real());
        const u64 ib = doubleBits(s.imag());
        re[2 * k] = rb & 0xFFFFFFFFULL;
        re[2 * k + 1] = rb >> 32;
        im[2 * k] = ib & 0xFFFFFFFFULL;
        im[2 * k + 1] = ib >> 32;
    }

    setMetaWord(ct, 0, kMagic0);
    setMetaWord(ct, 1, kMagic1);
    setMetaWord(ct, 2, kVersion);
    const u64 noise = doubleBits(v.noise_log2);
    for (size_t j = 0; j < kNoiseWords; ++j)
        setMetaWord(ct, 3 + j, (noise >> (kMetaBits * j)) & kMetaMask);
    setMetaWord(ct, kLevelWord, static_cast<u64>(v.level));
    return ct;
}

VirtualView
unpackVirtual(const CkksContext& ctx, const Ciphertext& ct)
{
    if (!isVirtualCiphertext(ct))
        throw UserError("virtual backend received a non-virtual ciphertext; "
                        "clients must obtain operands from a virtual-mode "
                        "server (e.g. via Encrypt)",
                        __FILE__, __LINE__);
    MAD_REQUIRE(metaWord(ct, 2) == kVersion,
                "virtual ciphertext format version mismatch");
    MAD_REQUIRE(ct.c0.degree() == ctx.degree(),
                "virtual ciphertext ring degree mismatch");

    VirtualView v;
    v.level = static_cast<size_t>(metaWord(ct, kLevelWord));
    MAD_REQUIRE(v.level >= 1 && v.level <= ctx.maxLevel(),
                "virtual ciphertext carries an out-of-range level");
    v.scale = ct.scale;
    u64 noise = 0;
    for (size_t j = 0; j < kNoiseWords; ++j)
        noise |= metaWord(ct, 3 + j) << (kMetaBits * j);
    v.noise_log2 = bitsDouble(noise);

    const size_t slots = ctx.slots();
    v.slots.resize(slots);
    const u64* re = ct.c0.limb(0);
    const u64* im = ct.c1.limb(0);
    for (size_t k = 0; k < slots; ++k) {
        const u64 rb =
            (re[2 * k] & 0xFFFFFFFFULL) | ((re[2 * k + 1] & 0xFFFFFFFFULL)
                                           << 32);
        const u64 ib =
            (im[2 * k] & 0xFFFFFFFFULL) | ((im[2 * k + 1] & 0xFFFFFFFFULL)
                                           << 32);
        v.slots[k] = {bitsDouble(rb), bitsDouble(ib)};
    }
    return v;
}

std::string
virtualDigest(const CkksContext& ctx, const Ciphertext& ct)
{
    const VirtualView v = unpackVirtual(ctx, ct);
    u64 h = 0xCBF29CE484222325ULL;
    fnv(h, static_cast<u64>(v.level));
    fnv(h, doubleBits(v.scale));
    fnv(h, doubleBits(v.noise_log2));
    for (const std::complex<double>& s : v.slots) {
        fnv(h, doubleBits(s.real()));
        fnv(h, doubleBits(s.imag()));
    }
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "v:%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

} // namespace vbackend
} // namespace madfhe
