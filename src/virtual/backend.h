/**
 * @file
 * VirtualBackend: the plaintext twin of the real evaluator path.
 *
 * A virtual ciphertext carries its slot values in the clear (see
 * virtual/vct.h) plus the full (level, scale, noise-estimate) state
 * machine. Every Table-2 primitive updates that state exactly as the
 * real `Evaluator` would — same level/scale arithmetic, same UserError
 * messages on invalid transitions — and charges the SimFHE-predicted
 * cost of the operation it stands in for via `simfhe::OpCostQuery`.
 * Noise evolves through the same `NoiseEstimator` the real path is
 * validated against, so virtual noise budgets bracket real measured
 * noise (tests/virtual_test.cpp pins this cross-validation).
 *
 * This makes thousand-tenant load experiments (tools/loadgen) run at
 * plaintext speed while the whole serving control plane — sessions,
 * key-cache budgets, batching, overload governor, deadlines, retries —
 * behaves identically to a real deployment.
 *
 * Optional simulated latency: MADFHE_VIRTUAL_LATENCY=<ppm> sleeps each
 * op for latency_ppm/1e6 of its modeled GPU runtime, so queueing
 * behavior under the governor resembles the modeled hardware instead of
 * collapsing to memcpy speed. Default 0 (off).
 */
#ifndef MADFHE_VIRTUAL_BACKEND_H
#define MADFHE_VIRTUAL_BACKEND_H

#include <mutex>

#include "ckks/backend.h"
#include "ckks/noise.h"
#include "simfhe/query.h"
#include "virtual/vct.h"

namespace madfhe {
namespace vbackend {

struct VirtualOptions
{
    /** Parts-per-million of the modeled GPU runtime to sleep per op
     *  (0 = no simulated latency). */
    u64 latency_ppm = 0;

    /** Reads MADFHE_VIRTUAL_LATENCY (ppm, default 0). */
    static VirtualOptions fromEnv();
};

class VirtualBackend final : public EvalBackend
{
  public:
    explicit VirtualBackend(std::shared_ptr<const CkksContext> ctx,
                            VirtualOptions options = VirtualOptions::fromEnv());

    BackendKind kind() const override { return BackendKind::Virtual; }

    Ciphertext encryptReal(const PublicKey& pk,
                           const std::vector<double>& values,
                           u64 seed) const override;
    std::vector<double> decryptReal(const SecretKey& sk,
                                    const Ciphertext& ct) const override;
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const override;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const override;
    Ciphertext addAligned(const Ciphertext& a,
                          const Ciphertext& b) const override;
    Ciphertext mul(const Ciphertext& a, const Ciphertext& b,
                   const SwitchingKey& rlk) const override;
    Ciphertext mulScalarRescale(const Ciphertext& a,
                                double scalar) const override;
    Ciphertext addScalar(const Ciphertext& a, double scalar) const override;
    Ciphertext rescale(const Ciphertext& a) const override;
    Ciphertext dropToLevel(const Ciphertext& a, size_t level) const override;
    Ciphertext rotate(const Ciphertext& a, int steps,
                      const GaloisKeys& gks) const override;
    std::vector<Ciphertext> rotateHoisted(const Ciphertext& a,
                                          const std::vector<int>& steps,
                                          const GaloisKeys& gks) const override;
    Ciphertext matVec(const LinearTransform& t, const Ciphertext& ct,
                      const GaloisKeys& gks) const override;

    /** The virtual backend serves Bootstrap (level refresh to max, noise
     *  reset to roughly-fresh, full modeled bootstrap cost charged). */
    bool supportsBootstrap() const override { return true; }
    Ciphertext bootstrap(const Ciphertext& a) const override;

    std::string resultDigest(const Ciphertext& ct) const override;
    std::optional<double> noiseBudgetBits(const Ciphertext& ct) const override;

    /** The cost oracle ops are charged against. */
    const simfhe::OpCostQuery& query() const { return query_; }
    /** Accumulated SimFHE-predicted cost of every op served so far. */
    simfhe::Cost chargedCost() const;
    /** Number of primitive ops charged so far. */
    u64 chargedOps() const;

  private:
    /** Unpack an operand or raise the canonical UserError. */
    VirtualView view(const Ciphertext& ct) const;
    /** Mirror of Evaluator::requireSameShape (same messages). */
    void requireSameShape(const VirtualView& a, const VirtualView& b) const;
    /** Account one primitive: accumulate predicted cost, bump telemetry,
     *  optionally sleep the simulated latency. */
    void charge(simfhe::PrimOp op, const simfhe::Cost& cost) const;
    /** align() twin: returns views at equal level and scale. */
    std::pair<VirtualView, VirtualView> alignViews(const VirtualView& a,
                                                   const VirtualView& b) const;
    /** Modeled bootstrap cost, with a coarse fallback on parameter sets
     *  too shallow for the analytic Alg-2 accounting. Cached. */
    simfhe::Cost bootstrapCost() const;

    VirtualOptions opts;
    NoiseEstimator est_;
    simfhe::OpCostQuery query_;
    simfhe::HardwareDesign latency_hw_;

    mutable std::mutex cost_mu_;
    mutable simfhe::Cost charged_{};
    mutable u64 charged_ops_ = 0;
    mutable std::optional<simfhe::Cost> boot_cost_; ///< under cost_mu_
};

/** Construct the selected backend over `ctx`. */
std::unique_ptr<EvalBackend>
makeEvalBackend(BackendKind kind, std::shared_ptr<const CkksContext> ctx);

} // namespace vbackend
} // namespace madfhe

#endif // MADFHE_VIRTUAL_BACKEND_H
