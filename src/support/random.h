/**
 * @file
 * Deterministic PRNG and the samplers CKKS key generation and encryption
 * need: uniform mod-q, ternary (sparse and dense), and centered binomial
 * as a discrete-Gaussian stand-in.
 *
 * The PRNG is also the substrate for the MAD "key compression" optimization
 * (Section 3.2 of the paper): the uniformly random first polynomial of every
 * switching key is regenerated on the fly from a short seed instead of being
 * stored or transferred.
 */
#ifndef MADFHE_SUPPORT_RANDOM_H
#define MADFHE_SUPPORT_RANDOM_H

#include <array>
#include <vector>

#include "support/common.h"

namespace madfhe {

/**
 * xoshiro256** PRNG. Small, fast, and seedable so that seed-compressed
 * switching keys can be re-expanded bit-exactly.
 */
class Prng
{
  public:
    using Seed = std::array<u64, 4>;

    /** Construct from a 4-word seed (must not be all zero). */
    explicit Prng(const Seed& seed);

    /** Construct from a single word, expanded via splitmix64. */
    explicit Prng(u64 seed);

    /** Next raw 64-bit output. */
    u64 next();

    /** Uniform value in [0, bound) with rejection sampling (bound > 0). */
    u64 uniform(u64 bound);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** The seed this PRNG was constructed from. */
    const Seed& seed() const { return _seed; }

  private:
    Seed _seed;
    std::array<u64, 4> s;
};

/**
 * Samplers used by CKKS key generation and encryption. All output is in
 * signed representation (small integers), to be reduced per RNS limb later.
 */
class Sampler
{
  public:
    explicit Sampler(u64 seed) : prng(seed) {}
    explicit Sampler(const Prng::Seed& seed) : prng(seed) {}

    /** Dense ternary vector with entries in {-1, 0, 1}, each 1/3. */
    std::vector<i64> ternary(size_t n);

    /**
     * Sparse ternary secret of Hamming weight h (used by bootstrappable
     * CKKS: a sparse secret keeps the modular-reduction input interval
     * small, shrinking the degree of the sine approximation).
     */
    std::vector<i64> sparseTernary(size_t n, size_t hamming_weight);

    /** Centered binomial with standard deviation ~sqrt(k/2); k = 21 gives
     *  sigma ~ 3.2, the HE-standard error width. */
    std::vector<i64> centeredBinomial(size_t n, unsigned k = 21);

    /** Uniform values in [0, q). */
    std::vector<u64> uniformMod(size_t n, u64 q);

    Prng& rng() { return prng; }

  private:
    Prng prng;
};

} // namespace madfhe

#endif // MADFHE_SUPPORT_RANDOM_H
