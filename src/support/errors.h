/**
 * @file
 * Structured error taxonomy for the CKKS stack.
 *
 * Every error madfhe raises is one of four types, all carrying the
 * throw site (file:line) and an operation breadcrumb (the stack of
 * ErrorOp scopes active on the throwing thread):
 *
 *   MadError (interface)
 *   +-- UserError          : std::invalid_argument  - caller misuse
 *   |   +-- CorruptStreamError                      - hostile/damaged bytes
 *   +-- InvariantError     : std::logic_error       - library bug
 *   +-- FaultDetectedError : std::runtime_error     - integrity check fired
 *
 * The std:: bases are load-bearing: pre-taxonomy call sites (and tests)
 * that catch std::invalid_argument / std::logic_error keep working
 * unchanged. New code should catch MadError (or a concrete subclass)
 * to get the file/line/breadcrumb accessors.
 */
#ifndef MADFHE_SUPPORT_ERRORS_H
#define MADFHE_SUPPORT_ERRORS_H

#include <stdexcept>
#include <string>
#include <vector>

namespace madfhe {

namespace detail {

/** Per-thread operation breadcrumb stack (pushed by ErrorOp scopes). */
inline thread_local std::vector<const char*> tl_error_ops;

/** Current breadcrumb rendered as "Mult > KeySwitch > ModDown". */
inline std::string
currentErrorOps()
{
    std::string out;
    for (const char* op : tl_error_ops) {
        if (!out.empty())
            out += " > ";
        out += op;
    }
    return out;
}

/** Full what() text: message, breadcrumb, and throw site. */
inline std::string
formatError(const std::string& msg, const char* file, int line)
{
    std::string out = msg;
    std::string ops = currentErrorOps();
    if (!ops.empty())
        out += " [op: " + ops + "]";
    if (file) {
        out += " (";
        out += file;
        out += ":" + std::to_string(line) + ")";
    }
    return out;
}

} // namespace detail

/**
 * RAII breadcrumb scope: names the operation in flight so any error
 * thrown below carries "where in the pipeline" context, not just the
 * failing predicate. Costs one vector push/pop, no allocation beyond
 * the first few scopes per thread.
 */
class ErrorOp
{
  public:
    explicit ErrorOp(const char* name) { detail::tl_error_ops.push_back(name); }
    ~ErrorOp() { detail::tl_error_ops.pop_back(); }
    ErrorOp(const ErrorOp&) = delete;
    ErrorOp& operator=(const ErrorOp&) = delete;
};

#define MAD_ERROR_OP_CAT2(a, b) a##b
#define MAD_ERROR_OP_CAT(a, b) MAD_ERROR_OP_CAT2(a, b)
/** Push `name` onto the error breadcrumb for the enclosing scope. */
#define MAD_ERROR_OP(name) \
    ::madfhe::ErrorOp MAD_ERROR_OP_CAT(mad_error_op_, __LINE__)(name)

/**
 * Interface base for all madfhe errors. Not derived from std::exception
 * itself — each concrete type picks the std:: branch that keeps legacy
 * catch sites working — so always catch by concrete type or MadError&.
 */
class MadError
{
  public:
    virtual ~MadError() = default;

    /** The undecorated failure message. */
    const std::string& message() const { return msg_; }
    /** Throw-site file, or nullptr for legacy (shim) throws. */
    const char* file() const { return file_; }
    /** Throw-site line, or 0 for legacy throws. */
    int line() const { return line_; }
    /** Breadcrumb of ErrorOp scopes active at throw time (may be empty). */
    const std::string& op() const { return op_; }

  protected:
    MadError(std::string msg, const char* file, int line)
        : msg_(std::move(msg)), op_(detail::currentErrorOps()), file_(file),
          line_(line)
    {
    }

  private:
    std::string msg_;
    std::string op_;
    const char* file_;
    int line_;
};

/** Caller misuse: bad arguments, mismatched shapes, missing keys. */
class UserError : public std::invalid_argument, public MadError
{
  public:
    explicit UserError(const std::string& msg, const char* file = nullptr,
                       int line = 0)
        : std::invalid_argument(detail::formatError(msg, file, line)),
          MadError(msg, file, line)
    {
    }
};

/**
 * Serialized input failed validation (bad magic/version, out-of-bounds
 * size field, checksum mismatch, truncation). Always a UserError — the
 * library state is untouched and the caller can discard the stream.
 */
class CorruptStreamError : public UserError
{
  public:
    explicit CorruptStreamError(const std::string& msg,
                                const char* file = nullptr, int line = 0)
        : UserError(msg, file, line)
    {
    }
};

/** Internal invariant violated: a madfhe bug, not a caller error. */
class InvariantError : public std::logic_error, public MadError
{
  public:
    explicit InvariantError(const std::string& msg, const char* file = nullptr,
                            int line = 0)
        : std::logic_error(detail::formatError(msg, file, line)),
          MadError(msg, file, line)
    {
    }
};

/**
 * A runtime integrity check caught corrupted data in flight (limb
 * digest mismatch, insane scale/level after rescale). The computation
 * that raised it must be discarded; keys and context remain valid.
 */
class FaultDetectedError : public std::runtime_error, public MadError
{
  public:
    explicit FaultDetectedError(const std::string& msg,
                                const char* file = nullptr, int line = 0)
        : std::runtime_error(detail::formatError(msg, file, line)),
          MadError(msg, file, line)
    {
    }
};

} // namespace madfhe

#endif // MADFHE_SUPPORT_ERRORS_H
