#include "support/bigint.h"

#include <cmath>

namespace madfhe {

BigUint::BigUint(u64 v)
{
    if (v)
        words.push_back(v);
}

void
BigUint::normalize()
{
    while (!words.empty() && words.back() == 0)
        words.pop_back();
}

void
BigUint::add(const BigUint& other)
{
    size_t n = std::max(words.size(), other.words.size());
    words.resize(n, 0);
    u64 carry = 0;
    for (size_t i = 0; i < n; ++i) {
        u128 s = static_cast<u128>(words[i]) + other.word(i) + carry;
        words[i] = static_cast<u64>(s);
        carry = static_cast<u64>(s >> 64);
    }
    if (carry)
        words.push_back(carry);
}

void
BigUint::sub(const BigUint& other)
{
    MAD_CHECK(compare(other) >= 0, "BigUint::sub would underflow");
    u64 borrow = 0;
    for (size_t i = 0; i < words.size(); ++i) {
        u128 need = static_cast<u128>(other.word(i)) + borrow;
        if (static_cast<u128>(words[i]) >= need) {
            words[i] = static_cast<u64>(static_cast<u128>(words[i]) - need);
            borrow = 0;
        } else {
            words[i] = static_cast<u64>((static_cast<u128>(1) << 64) +
                                        words[i] - need);
            borrow = 1;
        }
    }
    MAD_CHECK(borrow == 0, "BigUint::sub underflow");
    normalize();
}

void
BigUint::mulWord(u64 m)
{
    if (m == 0) {
        words.clear();
        return;
    }
    u64 carry = 0;
    for (auto& w : words) {
        u128 p = static_cast<u128>(w) * m + carry;
        w = static_cast<u64>(p);
        carry = static_cast<u64>(p >> 64);
    }
    if (carry)
        words.push_back(carry);
}

void
BigUint::addMulWord(const BigUint& a, u64 m)
{
    BigUint tmp = a;
    tmp.mulWord(m);
    add(tmp);
}

u64
BigUint::divModWord(u64 d)
{
    MAD_CHECK(d != 0, "division by zero");
    u64 rem = 0;
    for (size_t i = words.size(); i-- > 0;) {
        u128 cur = (static_cast<u128>(rem) << 64) | words[i];
        words[i] = static_cast<u64>(cur / d);
        rem = static_cast<u64>(cur % d);
    }
    normalize();
    return rem;
}

u64
BigUint::modWord(u64 d) const
{
    MAD_CHECK(d != 0, "division by zero");
    u64 rem = 0;
    for (size_t i = words.size(); i-- > 0;)
        rem = static_cast<u64>(((static_cast<u128>(rem) << 64) | words[i]) % d);
    return rem;
}

int
BigUint::compare(const BigUint& other) const
{
    if (words.size() != other.words.size())
        return words.size() < other.words.size() ? -1 : 1;
    for (size_t i = words.size(); i-- > 0;) {
        if (words[i] != other.words[i])
            return words[i] < other.words[i] ? -1 : 1;
    }
    return 0;
}

double
BigUint::toDouble() const
{
    double acc = 0;
    for (size_t i = words.size(); i-- > 0;)
        acc = acc * 0x1.0p64 + static_cast<double>(words[i]);
    return acc;
}

double
BigUint::log2() const
{
    MAD_CHECK(!isZero(), "log2 of zero");
    size_t top = words.size() - 1;
    double lead = static_cast<double>(words[top]);
    return std::log2(lead) + 64.0 * static_cast<double>(top);
}

BigUint
BigUint::product(const std::vector<u64>& factors)
{
    BigUint p(1);
    for (u64 f : factors)
        p.mulWord(f);
    return p;
}

} // namespace madfhe
