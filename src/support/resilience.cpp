#include "support/resilience.h"

#include <chrono>

#include "support/env.h"

namespace madfhe {
namespace resilience {

u64
monotonicNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace {

/** splitmix64 — the repo's standard seed mixer (see
 *  Server::encryptionSeedFor); good avalanche, no state. */
u64
mix(u64 x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

} // namespace

u64
RetryPolicy::backoffNs(u32 attempt) const
{
    if (attempt == 0)
        return 0;
    u64 delay = base_backoff_ns;
    for (u32 i = 1; i < attempt && delay < max_backoff_ns; ++i)
        delay *= 2;
    if (delay > max_backoff_ns)
        delay = max_backoff_ns;
    if (delay == 0)
        return 0;
    // Additive jitter in [0, delay/4), deterministic in (seed, attempt).
    const u64 jitter = mix(seed ^ (u64{attempt} << 32)) % (delay / 4 + 1);
    return delay + jitter;
}

RetryPolicy
RetryPolicy::fromEnv()
{
    RetryPolicy p;
    p.max_attempts = static_cast<u32>(env::u64Or("MADFHE_RETRY", 1));
    return p;
}

bool
CircuitBreaker::allow(u64 now_ns)
{
    if (cfg_.threshold == 0)
        return true;
    std::lock_guard<std::mutex> lock(mu_);
    switch (state_) {
    case State::Closed:
        return true;
    case State::Open:
        if (now_ns < open_until_ns_)
            return false;
        state_ = State::HalfOpen;
        probe_deadline_ns_ = now_ns + cfg_.cooldown_ns;
        return true;
    case State::HalfOpen:
        if (now_ns >= probe_deadline_ns_) {
            // The outstanding probe never reported back (e.g. it died
            // on a path that skipped the outcome hooks). Lend the slot
            // out again rather than locking the client out forever.
            probe_deadline_ns_ = now_ns + cfg_.cooldown_ns;
            return true;
        }
        return false; // one probe at a time
    }
    return true;
}

void
CircuitBreaker::onSuccess()
{
    if (cfg_.threshold == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::Open)
        return; // straggler admitted before the trip; mirror onFailure
    consecutive_failures_ = 0;
    state_ = State::Closed;
}

void
CircuitBreaker::onFailure(u64 now_ns)
{
    if (cfg_.threshold == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::HalfOpen) {
        // Failed probe: straight back to Open for another cooldown.
        state_ = State::Open;
        open_until_ns_ = now_ns + cfg_.cooldown_ns;
        return;
    }
    if (state_ == State::Open)
        return; // rejected traffic never reaches here; ignore stragglers
    if (++consecutive_failures_ >= cfg_.threshold) {
        state_ = State::Open;
        open_until_ns_ = now_ns + cfg_.cooldown_ns;
        ++trips_;
    }
}

void
CircuitBreaker::onAbandoned(u64 now_ns)
{
    if (cfg_.threshold == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::HalfOpen)
        return; // shed/expired traffic carries no health signal
    // The request holding the probe slot resolved without executing, so
    // the probe will never report. Take the slot back and re-open for a
    // fresh cooldown; a pre-trip straggler landing here merely delays
    // the next probe by one cooldown, it can never wedge the breaker.
    state_ = State::Open;
    open_until_ns_ = now_ns + cfg_.cooldown_ns;
}

CircuitBreaker::State
CircuitBreaker::state(u64 now_ns) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::Open && now_ns >= open_until_ns_)
        return State::HalfOpen; // what allow() would transition to
    return state_;
}

u64
CircuitBreaker::trips() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
}

} // namespace resilience
} // namespace madfhe
