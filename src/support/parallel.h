/**
 * @file
 * parallelFor / parallelForRange: the limb-parallel execution primitive.
 *
 * FHE kernels are embarrassingly parallel across RNS limbs (and, for the
 * slot-wise basis-conversion kernels, across coefficients), so every hot
 * loop in src/ring, src/rns, src/ckks and src/boot funnels through these
 * two functions. Work is partitioned statically into at most
 * ThreadPool::global().size() contiguous chunks and executed on the
 * fixed pool; with a pool of size 1 (MADFHE_THREADS=1) everything runs
 * serially inline, byte-identical to the pre-threading code.
 *
 * Memtrace interaction: when tracing is enabled each chunk records into
 * a private TraceBuffer, and the buffers are flushed to the global
 * TraceSink in ascending chunk order after the region completes. Chunks
 * are contiguous ascending index ranges, so the committed event stream
 * is bit-identical to a serial run — trace_validate cross-validation
 * does not depend on the thread count.
 *
 * Nesting: a parallelFor issued from inside a pool task runs serially in
 * that task (limb-level parallelism already owns the pool), so kernels
 * may be composed freely.
 */
#ifndef MADFHE_SUPPORT_PARALLEL_H
#define MADFHE_SUPPORT_PARALLEL_H

#include <algorithm>
#include <utility>
#include <vector>

#include "memtrace/trace.h"
#include "support/threadpool.h"

namespace madfhe {

namespace detail {

/** Bounds of chunk c when [0, count) splits into `chunks` even pieces. */
inline std::pair<size_t, size_t>
chunkBounds(size_t count, size_t chunks, size_t c)
{
    return {c * count / chunks, (c + 1) * count / chunks};
}

} // namespace detail

/**
 * Run fn(begin, end) over a static partition of [0, count). The range
 * form lets chunk-local scratch (conversion temporaries, per-thread
 * accumulators) be allocated once per chunk instead of once per index.
 */
template <typename Fn>
void
parallelForRange(size_t count, Fn&& fn)
{
    if (count == 0)
        return;
    ThreadPool& pool = ThreadPool::global();
    const size_t chunks = std::min(pool.size(), count);
    if (chunks <= 1 || ThreadPool::inTask()) {
        fn(size_t{0}, count);
        return;
    }
    if (memtrace::tracingEnabled()) {
        // Per-chunk staging keeps the committed event stream identical
        // to a serial run (buffers flush in chunk order below).
        std::vector<memtrace::TraceBuffer> buffers(chunks);
        pool.run(chunks, [&](size_t c) {
            memtrace::ThreadBufferBinding bind(&buffers[c]);
            auto [b, e] = detail::chunkBounds(count, chunks, c);
            fn(b, e);
        });
        for (auto& buf : buffers)
            memtrace::TraceSink::instance().flush(buf);
        return;
    }
    pool.run(chunks, [&](size_t c) {
        auto [b, e] = detail::chunkBounds(count, chunks, c);
        fn(b, e);
    });
}

/** Run fn(i) for every i in [0, count) — the per-limb form. */
template <typename Fn>
void
parallelFor(size_t count, Fn&& fn)
{
    parallelForRange(count, [&fn](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i)
            fn(i);
    });
}

} // namespace madfhe

#endif // MADFHE_SUPPORT_PARALLEL_H
