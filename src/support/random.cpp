#include "support/random.h"

namespace madfhe {

namespace {

u64
splitmix64(u64& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Prng::Prng(const Seed& seed) : _seed(seed), s(seed)
{
    bool all_zero = (s[0] | s[1] | s[2] | s[3]) == 0;
    MAD_REQUIRE(!all_zero, "Prng seed must not be all zero");
}

Prng::Prng(u64 seed)
{
    u64 x = seed;
    for (auto& w : s)
        w = splitmix64(x);
    _seed = s;
}

u64
Prng::next()
{
    u64 result = rotl(s[1] * 5, 7) * 9;
    u64 t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

u64
Prng::uniform(u64 bound)
{
    MAD_CHECK(bound > 0, "uniform bound must be positive");
    // Rejection sampling to remove modulo bias.
    u64 threshold = (0 - bound) % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Prng::uniformReal()
{
    return (next() >> 11) * 0x1.0p-53;
}

std::vector<i64>
Sampler::ternary(size_t n)
{
    std::vector<i64> out(n);
    for (auto& v : out)
        v = static_cast<i64>(prng.uniform(3)) - 1;
    return out;
}

std::vector<i64>
Sampler::sparseTernary(size_t n, size_t hamming_weight)
{
    MAD_REQUIRE(hamming_weight <= n, "hamming weight exceeds length");
    std::vector<i64> out(n, 0);
    size_t placed = 0;
    while (placed < hamming_weight) {
        size_t idx = prng.uniform(n);
        if (out[idx] != 0)
            continue;
        out[idx] = prng.uniform(2) ? 1 : -1;
        ++placed;
    }
    return out;
}

std::vector<i64>
Sampler::centeredBinomial(size_t n, unsigned k)
{
    std::vector<i64> out(n);
    for (auto& v : out) {
        i64 acc = 0;
        for (unsigned i = 0; i < k; ++i) {
            u64 bits = prng.next();
            acc += static_cast<i64>(bits & 1) - static_cast<i64>((bits >> 1) & 1);
        }
        v = acc;
    }
    return out;
}

std::vector<u64>
Sampler::uniformMod(size_t n, u64 q)
{
    std::vector<u64> out(n);
    for (auto& v : out)
        v = prng.uniform(q);
    return out;
}

} // namespace madfhe
