/**
 * @file
 * Common typedefs and small helpers shared by every madfhe module.
 */
#ifndef MADFHE_SUPPORT_COMMON_H
#define MADFHE_SUPPORT_COMMON_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/errors.h"

namespace madfhe {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;
using i128 = __int128;

/**
 * Validate a user-supplied condition; throws UserError (a
 * std::invalid_argument) carrying the call site and the active
 * ErrorOp breadcrumb. Mirrors gem5's fatal(): caller misuse, not a
 * library bug.
 */
#define MAD_REQUIRE(cond, msg)                                                \
    do {                                                                      \
        if (!(cond))                                                          \
            throw ::madfhe::UserError((msg), __FILE__, __LINE__);             \
    } while (0)

/**
 * Internal invariant check; throws InvariantError (a std::logic_error)
 * with the call site. A failure here is a madfhe bug.
 */
#define MAD_CHECK(cond, msg)                                                  \
    do {                                                                      \
        if (!(cond))                                                          \
            throw ::madfhe::InvariantError((msg), __FILE__, __LINE__);        \
    } while (0)

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); requires x > 0. */
constexpr unsigned
floorLog2(u64 x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Ceiling division for unsigned integers. */
constexpr u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

} // namespace madfhe

#endif // MADFHE_SUPPORT_COMMON_H
