/**
 * @file
 * Environment-variable parsing helpers shared by the runtime knobs
 * (MADFHE_KEYCACHE_BYTES, MADFHE_BATCH_MAX, MADFHE_THREADS, ...).
 * Centralized so every knob accepts the same syntax and fails the same
 * way: a malformed value throws UserError naming the variable instead
 * of being silently ignored.
 */
#ifndef MADFHE_SUPPORT_ENV_H
#define MADFHE_SUPPORT_ENV_H

#include <optional>
#include <string_view>

#include "support/common.h"

namespace madfhe {
namespace env {

/**
 * Parse a byte count with an optional K/M/G (binary, case-insensitive)
 * suffix: "65536", "64K", "16M", "1G". Returns nullopt for malformed
 * text or multiplication overflow.
 */
std::optional<u64> parseBytes(std::string_view text);

/**
 * Read `name` from the environment as a byte count. Unset or empty
 * returns `fallback`; a malformed value throws UserError naming the
 * variable.
 */
u64 bytesOr(const char* name, u64 fallback);

/** Read `name` as a plain decimal u64, same unset/malformed contract. */
u64 u64Or(const char* name, u64 fallback);

} // namespace env
} // namespace madfhe

#endif // MADFHE_SUPPORT_ENV_H
