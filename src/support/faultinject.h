/**
 * @file
 * Deterministic, seedable fault injection + runtime integrity checks
 * for the CKKS data plane.
 *
 * The hot kernels (NTT, basis extension, key-switch inner product,
 * ModDown, rescale, ModRaise, serialization, the thread pool) each
 * register a named injection Site. Arming a fault — programmatically
 * via arm(), or with MADFHE_FAULT=<site>:<nth>:<kind>[:<seed>] in the
 * environment — makes the nth dynamic occurrence of that site fire one
 * fault of the given kind:
 *
 *   bitflip      flip one deterministic bit of the produced limb
 *   truncate     stop emitting / pretend EOF on a serialized stream
 *   bytecorrupt  flip one byte of a serialized stream chunk
 *   allocfail    throw std::bad_alloc at the site
 *   taskthrow    throw InjectedFault (exercises pool propagation)
 *
 * Detection lives next to injection: with integrity checks enabled
 * (MADFHE_INTEGRITY=1 or integrity::setEnabled(true)), every limb
 * guard computes a wrapping-sum digest of the produced limb before the
 * fault window and verifies it after, throwing FaultDetectedError on
 * mismatch — a plain sum changes under any single bit flip, so the
 * check is sound for the injected fault model. The guard is the
 * code-level stand-in for "data sat in DRAM between producer and
 * consumer": a real resident-data fault would be caught at the same
 * hand-off.
 *
 * Cost when nothing is armed and integrity is off (the default): one
 * relaxed atomic load per guarded limb, same budget as the memtrace
 * instrumentation.
 */
#ifndef MADFHE_SUPPORT_FAULTINJECT_H
#define MADFHE_SUPPORT_FAULTINJECT_H

#include <atomic>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/common.h"

namespace madfhe {

namespace integrity {

/** True when runtime integrity self-checks are on (campaign mode). */
bool enabled();
/** Toggle integrity self-checks process-wide. */
void setEnabled(bool on);

/**
 * Wrapping 64-bit sum of a limb. Any single bit flip changes the sum
 * (it adds/subtracts a nonzero power of two mod 2^64), which is
 * exactly the fault model the injection engine produces.
 */
inline u64
limbDigest(const u64* d, size_t n)
{
    u64 acc = 0;
    for (size_t c = 0; c < n; ++c)
        acc += d[c];
    return acc;
}

} // namespace integrity

namespace faultinject {

enum class Kind : u8
{
    BitFlip,
    Truncate,
    ByteCorrupt,
    AllocFail,
    TaskThrow,
};

/** Bitmask helpers describing which kinds a site can fire. */
constexpr u32
kindBit(Kind k)
{
    return 1u << static_cast<u32>(k);
}
/** Limb-producing kernel sites. */
constexpr u32 kLimbKinds = kindBit(Kind::BitFlip) | kindBit(Kind::AllocFail) |
                           kindBit(Kind::TaskThrow);
/** Pointwise sites with no data buffer (allocation, task dispatch). */
constexpr u32 kPointKinds =
    kindBit(Kind::AllocFail) | kindBit(Kind::TaskThrow);
/** Serialized-stream sites. */
constexpr u32 kStreamKinds = kindBit(Kind::BitFlip) |
                             kindBit(Kind::Truncate) |
                             kindBit(Kind::ByteCorrupt);

const char* kindName(Kind k);
std::optional<Kind> kindFromName(std::string_view name);

/** One armed fault: which site, which dynamic occurrence, what to do. */
struct Spec
{
    std::string site;
    u64 nth = 0;  ///< fire on the nth occurrence of the site (0-based)
    Kind kind = Kind::BitFlip;
    u64 seed = 1; ///< picks the corrupted coefficient/bit/byte
};

/** Thrown by Kind::TaskThrow — a simulated defective worker task. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string& msg) : std::runtime_error(msg) {}
};

/** Parse "site:nth:kind[:seed]" (the MADFHE_FAULT syntax). */
std::optional<Spec> parseSpec(std::string_view text);

/** Arm `spec`; throws UserError when the site or kind is unknown. */
void arm(const Spec& spec);
/** Disarm any armed fault (integrity checks are unaffected). */
void disarm();
/** True while a fault is armed. */
bool armed();
/** How many times the armed fault actually fired (survives disarm). */
u64 firedCount();
/** Dynamic occurrences of the armed site since arm() (for probing). */
u64 armedSiteOccurrences();
/**
 * Read MADFHE_FAULT / MADFHE_INTEGRITY once per process and arm /
 * enable accordingly. Called from ThreadPool::global(), so any
 * workload that touches the data plane honors the environment.
 */
void initFromEnvOnce();

/**
 * Observer invoked (outside the engine lock) every time an armed fault
 * actually fires: (site name, kind, nth occurrence). The telemetry
 * layer installs one so fault-campaign timelines show up as instant
 * events in the Chrome trace; mad_support itself never depends on the
 * observer. At most one hook; installing replaces the previous one.
 */
using FireHook = void (*)(const char* site, Kind kind, u64 nth);
void setFireHook(FireHook hook);

struct SiteInfo
{
    const char* name;
    u32 kinds; ///< kindBit() mask of applicable kinds
};
/** Every registered injection site (stable order: registration). */
std::vector<SiteInfo> allSites();

class Site;

namespace detail {
/** Nonzero when a fault is armed or integrity checks are enabled. */
extern std::atomic<int> g_guard_active;
/** Claim the armed site's next occurrence; spec returned when it fires. */
std::optional<Spec> claim(Site& s);
} // namespace detail

/**
 * A named injection point. Define one static Site per guarded kernel;
 * construction registers it in the global registry.
 */
class Site
{
  public:
    Site(const char* name, u32 kinds);
    Site(const Site&) = delete;
    Site& operator=(const Site&) = delete;

    const char* name() const { return name_; }
    u32 kinds() const { return kinds_; }

  private:
    friend std::optional<Spec> detail::claim(Site&);
    friend void arm(const Spec&);
    friend u64 armedSiteOccurrences();

    const char* name_;
    u32 kinds_;
    u64 occurrences_ = 0; ///< guarded by the engine mutex
};

void guardLimbSlow(Site& s, u64* data, size_t n);
void touchPointSlow(Site& s);

/**
 * Guard one produced limb: digest -> fault window -> verify. With
 * nothing armed and integrity off this is a single relaxed load.
 */
inline void
guardLimb(Site& s, u64* data, size_t n)
{
    if (detail::g_guard_active.load(std::memory_order_relaxed) != 0)
        guardLimbSlow(s, data, n);
}

/** Fault point with no data buffer (allocation / task dispatch). */
inline void
touchPoint(Site& s)
{
    if (detail::g_guard_active.load(std::memory_order_relaxed) != 0)
        touchPointSlow(s);
}

/** What a stream site asks the serializer to do to the current chunk. */
struct StreamTouch
{
    enum class Action
    {
        None,
        Truncate, ///< drop this chunk and everything after it
        Corrupt,  ///< flip `bit` of byte `offset` (mod chunk size)
    };
    Action action = Action::None;
    size_t offset = 0;
    u8 bit = 0;

    /** Slow path; call via touchStream(). */
    static StreamTouch fire(Site& s, size_t chunk_len);
};

/** Per-chunk stream fault point (save and load sides of serialize). */
inline StreamTouch
touchStream(Site& s, size_t chunk_len)
{
    if (detail::g_guard_active.load(std::memory_order_relaxed) == 0)
        return {};
    return StreamTouch::fire(s, chunk_len);
}

} // namespace faultinject
} // namespace madfhe

#endif // MADFHE_SUPPORT_FAULTINJECT_H
