/**
 * @file
 * Ring-LWE security budgeting from the Homomorphic Encryption Standard
 * tables (ternary secret, classical attacks): for each ring degree the
 * maximum total modulus width that retains a target security level, plus
 * a coarse interpolated security estimate for arbitrary widths. Good for
 * parameter search and sanity checks, not a substitute for a lattice
 * estimator run.
 */
#ifndef MADFHE_SUPPORT_SECURITY_H
#define MADFHE_SUPPORT_SECURITY_H

namespace madfhe {

/**
 * Maximum log2(QP) at ring degree 2^log_n for ~128-bit classical
 * security (HE standard table, extended by doubling per degree step).
 */
double heStdMaxLogQP128(unsigned log_n);

/**
 * Coarse security estimate (bits) for a given (log_n, log_qp): 128 at
 * the standard budget, scaled inversely with the modulus width (the
 * usual first-order lattice-hardness behavior).
 */
double estimateSecurityBits(unsigned log_n, double log_qp);

} // namespace madfhe

#endif // MADFHE_SUPPORT_SECURITY_H
