#include "support/threadpool.h"

#include <cstdlib>

#include "support/faultinject.h"

namespace madfhe {

namespace {

thread_local bool tl_in_task = false;

faultinject::Site g_fault_pool_task("support.pool_task",
                                    faultinject::kPointKinds);

std::mutex&
globalMu()
{
    static std::mutex m;
    return m;
}

std::unique_ptr<ThreadPool>&
globalSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool::ThreadPool(size_t threads) : nthreads(threads == 0 ? 1 : threads)
{
    workers.reserve(nthreads - 1);
    for (size_t i = 0; i + 1 < nthreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    wake.notify_all();
    for (auto& w : workers)
        w.join();
}

bool
ThreadPool::inTask()
{
    return tl_in_task;
}

size_t
ThreadPool::defaultThreads()
{
    if (const char* env = std::getenv("MADFHE_THREADS")) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<size_t>(v > 256 ? 256 : v);
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
}

ThreadPool&
ThreadPool::global()
{
    // First use of the pool is the earliest data-plane touchpoint every
    // workload shares, so honor MADFHE_FAULT / MADFHE_INTEGRITY here.
    faultinject::initFromEnvOnce();
    std::lock_guard<std::mutex> lock(globalMu());
    auto& slot = globalSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(defaultThreads());
    return *slot;
}

void
ThreadPool::setGlobalThreads(size_t threads)
{
    auto pool = std::make_unique<ThreadPool>(
        threads == 0 ? defaultThreads() : threads);
    std::lock_guard<std::mutex> lock(globalMu());
    globalSlot() = std::move(pool);
}

void
ThreadPool::workerLoop()
{
    u64 seen = 0;
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        wake.wait(lock, [&] { return stopping || generation != seen; });
        if (stopping)
            return;
        seen = generation;
        std::shared_ptr<Job> job = current;
        lock.unlock();
        if (job)
            drainTasks(job);
        lock.lock();
    }
}

void
ThreadPool::drainTasks(const std::shared_ptr<Job>& job)
{
    const bool prev = tl_in_task;
    tl_in_task = true;
    for (;;) {
        const size_t t = job->next.fetch_add(1, std::memory_order_relaxed);
        if (t >= job->tasks)
            break;
        std::exception_ptr err;
        try {
            faultinject::touchPoint(g_fault_pool_task);
            (*job->fn)(t);
        } catch (...) {
            err = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mu);
        if (err && t < job->error_task) {
            job->error = err;
            job->error_task = t;
        }
        if (++job->completed == job->tasks)
            done.notify_all();
    }
    tl_in_task = prev;
}

void
ThreadPool::run(size_t tasks, const std::function<void(size_t)>& fn)
{
    if (tasks == 0)
        return;
    if (nthreads == 1 || tasks == 1 || tl_in_task) {
        for (size_t i = 0; i < tasks; ++i) {
            faultinject::touchPoint(g_fault_pool_task);
            fn(i);
        }
        return;
    }

    std::lock_guard<std::mutex> serial(run_mu);
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->tasks = tasks;
    {
        std::lock_guard<std::mutex> lock(mu);
        current = job;
        ++generation;
    }
    wake.notify_all();
    drainTasks(job);

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu);
        done.wait(lock, [&] { return job->completed == job->tasks; });
        err = job->error;
        current.reset();
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace madfhe
