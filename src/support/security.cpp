#include "support/security.h"

#include <cmath>

namespace madfhe {

double
heStdMaxLogQP128(unsigned log_n)
{
    switch (log_n) {
      case 10: return 27;
      case 11: return 54;
      case 12: return 109;
      case 13: return 218;
      case 14: return 438;
      case 15: return 881;
      case 16: return 1761;
      case 17: return 3524;
      default:
        return 27.0 * std::pow(2.0, static_cast<double>(log_n) - 10);
    }
}

double
estimateSecurityBits(unsigned log_n, double log_qp)
{
    if (log_qp <= 0)
        return 1e9;
    // First-order: security scales ~ N / log(Q); normalized so that the
    // standard budget gives exactly 128 bits.
    return 128.0 * heStdMaxLogQP128(log_n) / log_qp;
}

} // namespace madfhe
