/**
 * @file
 * Minimal leveled logging for examples and benches. Library code itself
 * stays silent; only tools log.
 */
#ifndef MADFHE_SUPPORT_LOGGING_H
#define MADFHE_SUPPORT_LOGGING_H

#include <string>

namespace madfhe {

enum class LogLevel { Debug, Info, Warn, Error };

/** Set the global threshold; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current threshold. */
LogLevel logLevel();

/** Emit one line to stderr if level passes the threshold. */
void logMessage(LogLevel level, const std::string& msg);

inline void logDebug(const std::string& m) { logMessage(LogLevel::Debug, m); }
inline void logInfo(const std::string& m) { logMessage(LogLevel::Info, m); }
inline void logWarn(const std::string& m) { logMessage(LogLevel::Warn, m); }
inline void logError(const std::string& m) { logMessage(LogLevel::Error, m); }

} // namespace madfhe

#endif // MADFHE_SUPPORT_LOGGING_H
