/**
 * @file
 * Minimal arbitrary-precision unsigned integer, just large enough to CRT-
 * compose multi-limb RNS coefficients back to the integers for decoding.
 * Not a general bignum: only the operations decoding needs.
 */
#ifndef MADFHE_SUPPORT_BIGINT_H
#define MADFHE_SUPPORT_BIGINT_H

#include <vector>

#include "support/common.h"

namespace madfhe {

/** Unsigned big integer, little-endian 64-bit words, normalized (no
 *  trailing zero words). Zero is the empty word vector. */
class BigUint
{
  public:
    BigUint() = default;
    explicit BigUint(u64 v);

    bool isZero() const { return words.empty(); }
    size_t wordCount() const { return words.size(); }
    u64 word(size_t i) const { return i < words.size() ? words[i] : 0; }

    /** this += other. */
    void add(const BigUint& other);
    /** this -= other; requires this >= other. */
    void sub(const BigUint& other);
    /** this *= m. */
    void mulWord(u64 m);
    /** this += a * m (fused multiply-accumulate of a word multiple). */
    void addMulWord(const BigUint& a, u64 m);
    /** this /= d, returns remainder (long division by one word). */
    u64 divModWord(u64 d);
    /** this mod d without modifying this. */
    u64 modWord(u64 d) const;

    /** Comparison: negative/zero/positive like memcmp. */
    int compare(const BigUint& other) const;
    bool operator<(const BigUint& o) const { return compare(o) < 0; }
    bool operator==(const BigUint& o) const { return compare(o) == 0; }

    /** Approximate conversion to double (may overflow to inf). */
    double toDouble() const;
    /** floor(log2(this)) for nonzero values. */
    double log2() const;

    /** Product of a list of word-sized factors. */
    static BigUint product(const std::vector<u64>& factors);

  private:
    void normalize();
    std::vector<u64> words;
};

} // namespace madfhe

#endif // MADFHE_SUPPORT_BIGINT_H
