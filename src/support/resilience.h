/**
 * @file
 * Resilience primitives for the serving stack: monotonic deadlines,
 * bounded retry with deterministic backoff, and a per-client circuit
 * breaker.
 *
 * MAD's thesis is that FHE is memory-bound, so at serving scale the
 * first resource to fail under load is the memory budget, not compute —
 * and the failure mode is a *slow* failure (eviction storms, overcommit,
 * queues backing up), exactly what deadlines and admission control are
 * for. These types are the mechanism layer; policy (which errors are
 * transient, when to shed, how to degrade) lives in src/serve.
 *
 * Every primitive is deterministic given its inputs: Deadline compares
 * caller-supplied monotonic timestamps, RetryPolicy derives its jitter
 * from a seed + attempt counter (never from wall-clock or a global
 * RNG), and CircuitBreaker transitions are pure functions of the
 * (event, now_ns) sequence — so the fault campaign can drive all three
 * through exact, repeatable schedules.
 */
#ifndef MADFHE_SUPPORT_RESILIENCE_H
#define MADFHE_SUPPORT_RESILIENCE_H

#include <mutex>

#include "support/common.h"

namespace madfhe {
namespace resilience {

/** Nanoseconds on the monotonic (steady) clock. Never wall-clock: a
 *  deadline must not move when NTP steps the system time. */
u64 monotonicNs();

/**
 * An absolute point on the monotonic clock by which a request must
 * finish. Default-constructed deadlines are inactive (never expire);
 * the serving layer treats "no deadline" as infinite patience, which
 * is the pre-resilience behavior.
 */
class Deadline
{
  public:
    Deadline() = default;

    /** Deadline `ms` milliseconds after `t0_ns` (monotonic). `ms` comes
     *  off the wire, so it is clamped: an unchecked multiply would wrap
     *  a huge "deadline" into an already-expired one (or land exactly on
     *  the inactive sentinel and silently disable enforcement). */
    static Deadline
    afterMs(u64 ms, u64 t0_ns)
    {
        Deadline d;
        constexpr u64 kMaxNs = kNone - 1; // largest active expiry
        const u64 budget_ns = ms <= kMaxNs / 1'000'000ULL
                                  ? ms * 1'000'000ULL
                                  : kMaxNs;
        d.abs_ns_ =
            t0_ns <= kMaxNs - budget_ns ? t0_ns + budget_ns : kMaxNs;
        return d;
    }

    /** Deadline `ms` milliseconds from now. */
    static Deadline afterMs(u64 ms) { return afterMs(ms, monotonicNs()); }

    /** Deadline at an absolute monotonic timestamp. */
    static Deadline
    at(u64 abs_ns)
    {
        Deadline d;
        d.abs_ns_ = abs_ns;
        return d;
    }

    bool active() const { return abs_ns_ != kNone; }
    bool expiredAt(u64 now_ns) const { return active() && now_ns >= abs_ns_; }
    bool expired() const { return expiredAt(monotonicNs()); }

    /** Remaining budget at `now_ns`: 0 when expired, ~u64{0} when the
     *  deadline is inactive. */
    u64
    remainingNsAt(u64 now_ns) const
    {
        if (!active())
            return kNone;
        return now_ns >= abs_ns_ ? 0 : abs_ns_ - now_ns;
    }
    u64 remainingNs() const { return remainingNsAt(monotonicNs()); }

    /** Absolute monotonic expiry, ~u64{0} when inactive. */
    u64 absNs() const { return abs_ns_; }

  private:
    static constexpr u64 kNone = ~u64{0};
    u64 abs_ns_ = kNone;
};

/**
 * Bounded retry with exponential backoff and seeded deterministic
 * jitter. `max_attempts` counts every try including the first, so 1
 * (the default) means "no retries" and 0 is normalized to 1. The caller
 * decides transience — this type never inspects exceptions — so the
 * same policy serves frame decoding, key expansion and evaluation.
 */
struct RetryPolicy
{
    u32 max_attempts = 1;
    u64 base_backoff_ns = 1'000'000;  ///< first retry delay (1 ms)
    u64 max_backoff_ns = 50'000'000;  ///< backoff growth cap (50 ms)
    u64 seed = 1;                     ///< jitter seed (deterministic)

    /** May attempt number `attempts_done + 1` proceed? */
    bool
    shouldRetry(u32 attempts_done, bool transient) const
    {
        return transient && attempts_done < effectiveAttempts();
    }

    /**
     * Delay before retry number `attempt` (1 = first retry):
     * base * 2^(attempt-1), capped at max, plus up to +25% jitter
     * derived from (seed, attempt) — never from a clock — so two runs
     * with the same seed back off identically.
     */
    u64 backoffNs(u32 attempt) const;

    bool enabled() const { return effectiveAttempts() > 1; }

    /** MADFHE_RETRY=<max_attempts> (default 1 = no retries). */
    static RetryPolicy fromEnv();

  private:
    u32 effectiveAttempts() const { return max_attempts == 0 ? 1 : max_attempts; }
};

/**
 * Per-client circuit breaker: Closed -> (threshold consecutive
 * failures) -> Open -> (cooldown elapses) -> HalfOpen -> one probe ->
 * Closed on success / Open again on failure. All transitions take the
 * caller's monotonic timestamp so tests drive exact schedules.
 *
 * The half-open probe slot can never leak: if the probe resolves
 * without executing (shed under overload, deadline-expired before
 * dispatch) the caller reports it via onAbandoned() and the breaker
 * returns to Open for another cooldown; and even an entirely
 * unreported probe only blocks HalfOpen for one cooldown, after which
 * allow() lends the slot out again.
 *
 * A threshold of 0 disables the breaker entirely (allow() is always
 * true), which is the default: breaking is a serving policy the
 * OverloadGovernor opts into per deployment.
 */
class CircuitBreaker
{
  public:
    struct Config
    {
        u32 threshold = 0;                   ///< consecutive failures to trip
        u64 cooldown_ns = 100'000'000;       ///< open duration before probing
    };

    enum class State : u8
    {
        Closed,
        Open,
        HalfOpen,
    };

    CircuitBreaker() = default;
    explicit CircuitBreaker(Config cfg) : cfg_(cfg) {}

    /**
     * May a request proceed at `now_ns`? Open breakers reject until the
     * cooldown elapses, then admit exactly one half-open probe; further
     * requests are rejected until the probe reports back.
     */
    bool allow(u64 now_ns);

    /** Report the outcome of an admitted request. Successes are ignored
     *  while Open (a straggler admitted before the trip must not defeat
     *  the cooldown); failures likewise only count from Closed/HalfOpen. */
    void onSuccess();
    void onFailure(u64 now_ns);
    /** Report an admitted request that resolved without executing (shed,
     *  deadline-expired). No health signal either way — but if it was
     *  holding the half-open probe slot, the breaker takes the slot back
     *  and re-opens for another cooldown instead of waiting forever. */
    void onAbandoned(u64 now_ns);

    State state(u64 now_ns) const;
    /** Closed -> Open transitions so far. */
    u64 trips() const;

  private:
    Config cfg_;
    mutable std::mutex mu_;
    State state_ = State::Closed;
    u32 consecutive_failures_ = 0;
    u64 open_until_ns_ = 0;
    u64 probe_deadline_ns_ = 0; ///< HalfOpen re-arms past this point
    u64 trips_ = 0;
};

/**
 * Typed overload rejection: the server shed this request (queue full,
 * breaker open) without executing it. Transient by construction — the
 * client may retry after backoff; nothing about the request was wrong.
 */
class OverloadedError : public std::runtime_error, public MadError
{
  public:
    explicit OverloadedError(const std::string& msg,
                             const char* file = nullptr, int line = 0)
        : std::runtime_error(detail::formatError(msg, file, line)),
          MadError(msg, file, line)
    {
    }
};

/** The request's deadline expired before (or while) it was served. The
 *  caller must extend the deadline to make a retry meaningful. */
class DeadlineExceededError : public std::runtime_error, public MadError
{
  public:
    explicit DeadlineExceededError(const std::string& msg,
                                   const char* file = nullptr, int line = 0)
        : std::runtime_error(detail::formatError(msg, file, line)),
          MadError(msg, file, line)
    {
    }
};

} // namespace resilience
} // namespace madfhe

#endif // MADFHE_SUPPORT_RESILIENCE_H
