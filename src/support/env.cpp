#include "support/env.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace madfhe {
namespace env {

std::optional<u64>
parseBytes(std::string_view text)
{
    if (text.empty())
        return std::nullopt;
    u64 mult = 1;
    char last = text.back();
    switch (std::toupper(static_cast<unsigned char>(last))) {
    case 'K':
        mult = u64{1} << 10;
        text.remove_suffix(1);
        break;
    case 'M':
        mult = u64{1} << 20;
        text.remove_suffix(1);
        break;
    case 'G':
        mult = u64{1} << 30;
        text.remove_suffix(1);
        break;
    default:
        break;
    }
    if (text.empty())
        return std::nullopt;
    u64 value = 0;
    for (char c : text) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return std::nullopt;
        u64 digit = static_cast<u64>(c - '0');
        if (value > (~u64{0} - digit) / 10)
            return std::nullopt;
        value = value * 10 + digit;
    }
    if (mult != 1 && value > ~u64{0} / mult)
        return std::nullopt;
    return value * mult;
}

u64
bytesOr(const char* name, u64 fallback)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    auto parsed = parseBytes(raw);
    MAD_REQUIRE(parsed.has_value(),
                std::string("cannot parse ") + name + "='" + raw +
                    "' as a byte count (expected digits with optional "
                    "K/M/G suffix)");
    return *parsed;
}

u64
u64Or(const char* name, u64 fallback)
{
    const char* raw = std::getenv(name);
    if (raw == nullptr || raw[0] == '\0')
        return fallback;
    char* end = nullptr;
    u64 value = std::strtoull(raw, &end, 10);
    MAD_REQUIRE(end != raw && *end == '\0',
                std::string("cannot parse ") + name + "='" + raw +
                    "' as an unsigned integer");
    return value;
}

} // namespace env
} // namespace madfhe
