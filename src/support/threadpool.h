/**
 * @file
 * Fixed-size thread pool for limb-parallel kernel execution.
 *
 * The pool is deliberately work-stealing-free: a parallel region is a
 * single job whose tasks are claimed from one shared atomic counter, the
 * caller participates, and run() blocks until every task has finished.
 * FHE kernels partition uniformly across RNS limbs (or coefficient
 * ranges), so static chunking plus a shared counter loses nothing to a
 * deque-per-thread design and keeps the pool auditable.
 *
 * Sizing: the global pool reads MADFHE_THREADS once on first use
 * (falling back to std::thread::hardware_concurrency when unset); size 1
 * means every run() executes serially inline. Tests and benchmarks that
 * sweep thread counts at runtime use setGlobalThreads().
 */
#ifndef MADFHE_SUPPORT_THREADPOOL_H
#define MADFHE_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/common.h"

namespace madfhe {

class ThreadPool
{
  public:
    /** @param threads Total workers including the calling thread (>= 1). */
    explicit ThreadPool(size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Worker count, counting the calling thread (>= 1; 1 = serial). */
    size_t size() const { return nthreads; }

    /**
     * Run fn(0) ... fn(tasks - 1), blocking until all tasks complete.
     * Task indices are claimed from a shared counter; the caller
     * participates. The first exception thrown by any task is rethrown
     * here after every task has finished. Calls from inside a task (and
     * any call when size() == 1) execute serially inline.
     */
    void run(size_t tasks, const std::function<void(size_t)>& fn);

    /** True while the current thread is executing a pool task. */
    static bool inTask();

    /** The process-global pool, sized by MADFHE_THREADS on first use. */
    static ThreadPool& global();

    /**
     * Replace the global pool with one of `threads` workers (0 restores
     * the MADFHE_THREADS / hardware default). Must not be called while
     * parallel work is in flight.
     */
    static void setGlobalThreads(size_t threads);

    /** MADFHE_THREADS env value, or hardware_concurrency when unset. */
    static size_t defaultThreads();

  private:
    /** One parallel region: tasks claimed from `next` until exhausted. */
    struct Job
    {
        const std::function<void(size_t)>* fn = nullptr;
        size_t tasks = 0;
        std::atomic<size_t> next{0};
        size_t completed = 0; ///< guarded by the pool mutex
        /**
         * Failure from the lowest-indexed failing task; both guarded by
         * the pool mutex. Keying on the task index (not arrival order)
         * makes which exception run() rethrows deterministic at any
         * thread count.
         */
        std::exception_ptr error;
        size_t error_task = SIZE_MAX;
    };

    void workerLoop();
    void drainTasks(const std::shared_ptr<Job>& job);

    size_t nthreads;
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable wake; ///< workers wait for a new generation
    std::condition_variable done; ///< run() waits for completed == tasks
    bool stopping = false;
    u64 generation = 0;
    std::shared_ptr<Job> current; ///< guarded by mu

    std::mutex run_mu; ///< serializes concurrent top-level run() callers
};

} // namespace madfhe

#endif // MADFHE_SUPPORT_THREADPOOL_H
