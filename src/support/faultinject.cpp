#include "support/faultinject.h"

#include <cstdlib>
#include <mutex>
#include <new>

namespace madfhe {

namespace integrity {

namespace {
std::atomic<bool> g_integrity{false};
} // namespace

bool
enabled()
{
    return g_integrity.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_integrity.store(on, std::memory_order_relaxed);
    // Guard fast path must wake up when either faults or integrity are on.
    if (on)
        faultinject::detail::g_guard_active.fetch_or(2);
    else
        faultinject::detail::g_guard_active.fetch_and(~2);
}

} // namespace integrity

namespace faultinject {

namespace detail {
std::atomic<int> g_guard_active{0};
} // namespace detail

namespace {

std::mutex&
engineMu()
{
    static std::mutex mu;
    return mu;
}

std::vector<Site*>&
registry()
{
    static std::vector<Site*> sites;
    return sites;
}

/** Armed state; all fields guarded by engineMu(). */
struct Armed
{
    Site* target = nullptr;
    Spec spec;
    u64 fired = 0;
};

Armed&
armedState()
{
    static Armed a;
    return a;
}

/** Which Site (if any) is the armed target — the lock-free filter. */
std::atomic<Site*> g_target{nullptr};

/** Fired-fault observer (telemetry); called outside the engine lock. */
std::atomic<FireHook> g_fire_hook{nullptr};

/** splitmix64: deterministic position derivation from the spec seed. */
u64
mix(u64 x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

namespace detail {

/**
 * Claim the nth occurrence of the armed site. Returns the spec to
 * execute when this call is the firing one. Caller holds no locks.
 */
std::optional<Spec>
claim(Site& s)
{
    if (g_target.load(std::memory_order_acquire) != &s)
        return std::nullopt;
    std::optional<Spec> fired;
    {
        std::lock_guard<std::mutex> lock(engineMu());
        Armed& a = armedState();
        if (a.target != &s)
            return std::nullopt;
        const u64 k = s.occurrences_++;
        if (k != a.spec.nth)
            return std::nullopt;
        ++a.fired;
        fired = a.spec;
    }
    // Notify outside the engine lock: the hook may take its own locks
    // (telemetry registries) and must never deadlock against arm/disarm.
    if (FireHook hook = g_fire_hook.load(std::memory_order_acquire))
        hook(s.name(), fired->kind, fired->nth);
    return fired;
}

} // namespace detail

const char*
kindName(Kind k)
{
    switch (k) {
    case Kind::BitFlip:
        return "bitflip";
    case Kind::Truncate:
        return "truncate";
    case Kind::ByteCorrupt:
        return "bytecorrupt";
    case Kind::AllocFail:
        return "allocfail";
    case Kind::TaskThrow:
        return "taskthrow";
    }
    return "?";
}

std::optional<Kind>
kindFromName(std::string_view name)
{
    for (Kind k : {Kind::BitFlip, Kind::Truncate, Kind::ByteCorrupt,
                   Kind::AllocFail, Kind::TaskThrow}) {
        if (name == kindName(k))
            return k;
    }
    return std::nullopt;
}

std::optional<Spec>
parseSpec(std::string_view text)
{
    // site:nth:kind[:seed]
    Spec spec;
    size_t a = text.find(':');
    if (a == std::string_view::npos || a == 0)
        return std::nullopt;
    spec.site = std::string(text.substr(0, a));
    size_t b = text.find(':', a + 1);
    if (b == std::string_view::npos)
        return std::nullopt;
    std::string nth_s(text.substr(a + 1, b - a - 1));
    char* end = nullptr;
    spec.nth = std::strtoull(nth_s.c_str(), &end, 10);
    if (end == nth_s.c_str() || *end != '\0')
        return std::nullopt;
    std::string_view rest = text.substr(b + 1);
    size_t c = rest.find(':');
    std::string_view kind_s = c == std::string_view::npos ? rest
                                                          : rest.substr(0, c);
    auto kind = kindFromName(kind_s);
    if (!kind)
        return std::nullopt;
    spec.kind = *kind;
    if (c != std::string_view::npos) {
        std::string seed_s(rest.substr(c + 1));
        spec.seed = std::strtoull(seed_s.c_str(), &end, 10);
        if (end == seed_s.c_str() || *end != '\0')
            return std::nullopt;
    }
    return spec;
}

Site::Site(const char* name, u32 kinds) : name_(name), kinds_(kinds)
{
    std::lock_guard<std::mutex> lock(engineMu());
    registry().push_back(this);
}

void
setFireHook(FireHook hook)
{
    g_fire_hook.store(hook, std::memory_order_release);
}

std::vector<SiteInfo>
allSites()
{
    std::lock_guard<std::mutex> lock(engineMu());
    std::vector<SiteInfo> out;
    out.reserve(registry().size());
    for (const Site* s : registry())
        out.push_back({s->name(), s->kinds()});
    return out;
}

void
arm(const Spec& spec)
{
    std::lock_guard<std::mutex> lock(engineMu());
    Site* target = nullptr;
    std::string known;
    for (Site* s : registry()) {
        if (spec.site == s->name()) {
            target = s;
            break;
        }
        known += known.empty() ? "" : ", ";
        known += s->name();
    }
    MAD_REQUIRE(target != nullptr,
                "unknown fault site '" + spec.site + "' (known: " + known +
                    ")");
    MAD_REQUIRE((target->kinds() & kindBit(spec.kind)) != 0,
                std::string("fault kind '") + kindName(spec.kind) +
                    "' not applicable at site '" + spec.site + "'");
    Armed& a = armedState();
    a.target = target;
    a.spec = spec;
    a.fired = 0;
    target->occurrences_ = 0;
    g_target.store(target, std::memory_order_release);
    detail::g_guard_active.fetch_or(1);
}

void
disarm()
{
    std::lock_guard<std::mutex> lock(engineMu());
    armedState().target = nullptr;
    g_target.store(nullptr, std::memory_order_release);
    detail::g_guard_active.fetch_and(~1);
}

bool
armed()
{
    return g_target.load(std::memory_order_acquire) != nullptr;
}

u64
firedCount()
{
    std::lock_guard<std::mutex> lock(engineMu());
    return armedState().fired;
}

u64
armedSiteOccurrences()
{
    std::lock_guard<std::mutex> lock(engineMu());
    const Armed& a = armedState();
    return a.target ? a.target->occurrences_ : 0;
}

void
initFromEnvOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char* env = std::getenv("MADFHE_INTEGRITY")) {
            if (env[0] != '\0' && env[0] != '0')
                integrity::setEnabled(true);
        }
        if (const char* env = std::getenv("MADFHE_FAULT")) {
            auto spec = parseSpec(env);
            MAD_REQUIRE(spec.has_value(),
                        std::string("cannot parse MADFHE_FAULT='") + env +
                            "'; expected <site>:<nth>:<kind>[:<seed>]");
            arm(*spec);
        }
    });
}

namespace {

/** Execute a fired fault against a limb buffer. */
void
executeLimbFault(const Spec& spec, const char* site, u64* data, size_t n)
{
    switch (spec.kind) {
    case Kind::BitFlip: {
        const size_t c = static_cast<size_t>(mix(spec.seed)) % n;
        const unsigned bit =
            static_cast<unsigned>(mix(spec.seed + 1) & 63);
        data[c] ^= u64{1} << bit;
        return;
    }
    case Kind::AllocFail:
        throw std::bad_alloc();
    case Kind::TaskThrow:
        throw InjectedFault(std::string("injected worker-task fault at '") +
                            site + "'");
    default:
        return; // stream kinds are inert at limb sites
    }
}

} // namespace

void
guardLimbSlow(Site& s, u64* data, size_t n)
{
    const bool verify = integrity::enabled();
    const u64 before = verify ? integrity::limbDigest(data, n) : 0;
    if (auto spec = detail::claim(s))
        executeLimbFault(*spec, s.name(), data, n);
    if (verify && integrity::limbDigest(data, n) != before)
        throw FaultDetectedError(
            std::string("limb integrity digest mismatch at site '") +
                s.name() + "' — data corrupted between produce and hand-off",
            __FILE__, __LINE__);
}

void
touchPointSlow(Site& s)
{
    if (auto spec = detail::claim(s)) {
        switch (spec->kind) {
        case Kind::AllocFail:
            throw std::bad_alloc();
        case Kind::TaskThrow:
            throw InjectedFault(
                std::string("injected worker-task fault at '") + s.name() +
                "'");
        default:
            break;
        }
    }
}

StreamTouch
StreamTouch::fire(Site& s, size_t chunk_len)
{
    StreamTouch t;
    if (auto spec = detail::claim(s)) {
        switch (spec->kind) {
        case Kind::Truncate:
            t.action = Action::Truncate;
            break;
        case Kind::ByteCorrupt:
            t.action = Action::Corrupt;
            t.offset = chunk_len ? static_cast<size_t>(mix(spec->seed)) %
                                       chunk_len
                                 : 0;
            t.bit = 0xFF; // whole-byte corruption: XOR all bits
            break;
        case Kind::BitFlip:
            t.action = Action::Corrupt;
            t.offset = chunk_len ? static_cast<size_t>(mix(spec->seed)) %
                                       chunk_len
                                 : 0;
            t.bit = static_cast<u8>(1u << (mix(spec->seed + 1) & 7));
            break;
        default:
            break;
        }
    }
    return t;
}

} // namespace faultinject
} // namespace madfhe
