/**
 * @file
 * ISA-generic bodies of the vector kernels, templated over a small trait
 * (`Ops`) that supplies lane width, loads/stores, 64-bit lane add/sub,
 * full 64x64 multiplies, unsigned conditional-subtract and borrow
 * detection. Included by kernels_avx2.cpp / kernels_avx512.cpp, each
 * compiled with its own -m flags; the dispatcher never lets these run on
 * hardware that lacks the ISA.
 *
 * Every kernel body follows the scalar reference (kernels_scalar.cpp)
 * operation-for-operation in exact integer arithmetic, so outputs are
 * bit-identical: modular results are canonical representatives and all
 * intermediates are computed mod 2^64 exactly as the scalar code does.
 * Vector main loops cover the largest multiple of Ops::W; remainders
 * fall through to the scalar table.
 */
#ifndef MADFHE_RNS_SIMD_KERNELS_VEC_INL_H
#define MADFHE_RNS_SIMD_KERNELS_VEC_INL_H

#include <vector>

#include "rns/simd/simd.h"

namespace madfhe {
namespace simd {
namespace vecimpl {

/** mulShoupLazy over one vector: a * w - mulhi(a, ws) * q, in [0, 2q). */
template <class Ops>
inline typename Ops::V
mulShoupLazyV(typename Ops::V a, typename Ops::V w, typename Ops::V ws,
              typename Ops::V vq)
{
    auto hi = Ops::mulhi64(a, ws);
    return Ops::sub(Ops::mullo64(a, w), Ops::mullo64(hi, vq));
}

template <class Ops>
void
nttStage(u64* p, size_t n, size_t m, const u64* tw, const u64* tw_shoup,
         u64 q, u64 two_q)
{
    constexpr size_t W = Ops::W;
    if (m < W) {
        // First log2(W) stages: too narrow to vectorize over j.
        scalarKernels()->ntt_stage(p, n, m, tw, tw_shoup, q, two_q);
        return;
    }
    const auto vq = Ops::set1(q);
    const auto v2q = Ops::set1(two_q);
    for (size_t i = 0; i < n; i += 2 * m) {
        u64* x_ptr = p + i;
        u64* y_ptr = p + i + m;
        for (size_t j = 0; j < m; j += W) {
            auto x = Ops::load(x_ptr + j);
            auto y = Ops::load(y_ptr + j);
            auto w = Ops::load(tw + j);
            auto ws = Ops::load(tw_shoup + j);
            x = Ops::csub(x, v2q);
            auto t = mulShoupLazyV<Ops>(y, w, ws, vq);
            Ops::store(x_ptr + j, Ops::add(x, t));
            Ops::store(y_ptr + j, Ops::sub(Ops::add(x, v2q), t));
        }
    }
}

template <class Ops>
void
reduce4q(u64* p, size_t n, u64 q, u64 two_q)
{
    constexpr size_t W = Ops::W;
    const auto vq = Ops::set1(q);
    const auto v2q = Ops::set1(two_q);
    size_t i = 0;
    for (; i + W <= n; i += W) {
        auto v = Ops::load(p + i);
        v = Ops::csub(v, v2q);
        v = Ops::csub(v, vq);
        Ops::store(p + i, v);
    }
    if (i < n)
        scalarKernels()->reduce_4q(p + i, n - i, q, two_q);
}

template <class Ops>
void
mulShoupVec(u64* a, const u64* w, const u64* w_shoup, size_t n, u64 q)
{
    constexpr size_t W = Ops::W;
    const auto vq = Ops::set1(q);
    size_t i = 0;
    for (; i + W <= n; i += W) {
        auto va = Ops::load(a + i);
        auto vw = Ops::load(w + i);
        auto vws = Ops::load(w_shoup + i);
        auto r = mulShoupLazyV<Ops>(va, vw, vws, vq);
        Ops::store(a + i, Ops::csub(r, vq));
    }
    if (i < n)
        scalarKernels()->mul_shoup_vec(a + i, w + i, w_shoup + i, n - i, q);
}

template <class Ops>
void
mulShoupScalar(u64* dst, const u64* src, size_t n, u64 w, u64 w_shoup,
               u64 q)
{
    constexpr size_t W = Ops::W;
    const auto vq = Ops::set1(q);
    const auto vw = Ops::set1(w);
    const auto vws = Ops::set1(w_shoup);
    size_t i = 0;
    for (; i + W <= n; i += W) {
        auto r = mulShoupLazyV<Ops>(Ops::load(src + i), vw, vws, vq);
        Ops::store(dst + i, Ops::csub(r, vq));
    }
    if (i < n)
        scalarKernels()->mul_shoup_scalar(dst + i, src + i, n - i, w,
                                          w_shoup, q);
}

/**
 * Vector Barrett for products of canonical residues: with L = q.bits()
 * and mu = floor(2^(2L) / q), the estimate
 *   qhat = floor( floor(a*b / 2^(L-1)) * mu / 2^(L+1) )
 * satisfies Q - 3 <= qhat <= Q (Q the true quotient), so
 * r = a*b - qhat*q lies in [0, 4q) and two conditional subtracts
 * canonicalize. All quantities fit: mu < 2^(L+1) <= 2^63 and
 * t = floor(a*b / 2^(L-1)) < 2^(L+1) <= 2^63 for q < 2^62.
 */
template <class Ops>
struct BarrettCtx
{
    typename Ops::V vq, v2q, vmu;
    unsigned sh_hi_t;  ///< 65 - L: hi contribution to t
    unsigned sh_lo_t;  ///< L - 1:  lo contribution to t
    unsigned sh_hi_q;  ///< 63 - L: hi contribution to qhat
    unsigned sh_lo_q;  ///< L + 1:  lo contribution to qhat

    explicit BarrettCtx(const Modulus& q)
    {
        const unsigned L = q.bits();
        const u64 mu = static_cast<u64>(
            (static_cast<u128>(1) << (2 * L)) / q.value());
        vq = Ops::set1(q.value());
        v2q = Ops::set1(2 * q.value());
        vmu = Ops::set1(mu);
        sh_hi_t = 65 - L;
        sh_lo_t = L - 1;
        sh_hi_q = 63 - L;
        sh_lo_q = L + 1;
    }

    typename Ops::V
    mulMod(typename Ops::V a, typename Ops::V b) const
    {
        typename Ops::V p_hi, p_lo;
        Ops::mul128(a, b, &p_hi, &p_lo);
        auto t = Ops::or_(Ops::sll(p_hi, sh_hi_t), Ops::srl(p_lo, sh_lo_t));
        typename Ops::V th, tl;
        Ops::mul128(t, vmu, &th, &tl);
        auto qhat = Ops::or_(Ops::sll(th, sh_hi_q), Ops::srl(tl, sh_lo_q));
        auto r = Ops::sub(p_lo, Ops::mullo64(qhat, vq));
        r = Ops::csub(r, v2q);
        return Ops::csub(r, vq);
    }
};

template <class Ops>
void
mulModVec(u64* a, const u64* b, size_t n, const Modulus& q)
{
    constexpr size_t W = Ops::W;
    if (q.bits() < 3) { // degenerate tiny moduli: shifts would misbehave
        scalarKernels()->mul_mod_vec(a, b, n, q);
        return;
    }
    const BarrettCtx<Ops> ctx(q);
    size_t i = 0;
    for (; i + W <= n; i += W)
        Ops::store(a + i, ctx.mulMod(Ops::load(a + i), Ops::load(b + i)));
    if (i < n)
        scalarKernels()->mul_mod_vec(a + i, b + i, n - i, q);
}

template <class Ops>
void
addMulModVec(u64* dst, const u64* a, const u64* b, size_t n,
             const Modulus& q)
{
    constexpr size_t W = Ops::W;
    if (q.bits() < 3) {
        scalarKernels()->add_mul_mod_vec(dst, a, b, n, q);
        return;
    }
    const BarrettCtx<Ops> ctx(q);
    size_t i = 0;
    for (; i + W <= n; i += W) {
        auto prod = ctx.mulMod(Ops::load(a + i), Ops::load(b + i));
        auto s = Ops::add(Ops::load(dst + i), prod);
        Ops::store(dst + i, Ops::csub(s, ctx.vq));
    }
    if (i < n)
        scalarKernels()->add_mul_mod_vec(dst + i, a + i, b + i, n - i, q);
}

/**
 * Fused whole-NTT kernel in double precision for q < 2^50 — the
 * error-free FMA modular multiply, with balanced (signed) residues that
 * free-run across stages. For |w| < q and |y| < G*q:
 *
 *   h = fl(w*y), l = fma(w, y, -h)        // w*y == h + l exactly
 *   b = fl(h * fl(1/q)), c = round(b)     // |c - w*y/q| < 1 when
 *                                         //   3*2^-53 * G*q <= 0.49
 *   d = fma(-c, q, h)                     // exact: |d| <= |t| + |l| < 2q
 *   t = d + l                             // exact: t == w*y - c*q,
 *                                         //   |t| < q
 *
 * Every step is exact integer arithmetic in binary64, independent of
 * how round() breaks ties (any c within 1 of the true quotient keeps
 * all the bounds), which is what makes the final output bit-identical
 * to the scalar path: both produce the unique canonical representative
 * of the same residue. The key property: |t| < q no matter how big the
 * inputs are, so butterflies x' = x +- t need NO per-butterfly
 * reduction — values grow by at most q per stage and are pulled back to
 * [-q/2, q/2] by a canonicalization sweep only when the growth ledger
 * says a bound is at risk:
 *
 *   products: G <= (0.49/3) * 2^53 / q   (quotient estimate within 1)
 *   adds:     G <= 2^53 / q - 1          (integer sums stay exact)
 *
 * For the 40-45-bit CKKS chain primes G allows far more than log2(n)
 * stages, so no mid-transform sweep ever runs; near the 2^50 gate the
 * sweeps approach one per stage and the kernel degenerates gracefully.
 *
 * The whole pipeline is fused around the FP domain:
 *   entry — one pass gathers p in bit-reversed order (lane l of output
 *     block k reads p[revbits(k) + revbits(l)*n/W], the split-radix
 *     decomposition of the bit-reversal), converts to double into a
 *     per-thread scratch, and multiplies in pre_rev (the forward twist,
 *     already stored in bit-reversed order) when present;
 *   stages — butterflies over scratch; stages with m < W keep blocks
 *     inside a vector pair, split()/join() shuffle x/y apart and back;
 *   exit — post-multiply (fused inverse untwist) or a final sweep,
 *     conditional +q to canonical, convert back into p.
 */
template <class Ops>
bool
fpTransform(u64* p, size_t n, const double* pre_rev, const double* tw,
            const double* post, u64 q)
{
    using D = typename Ops::D;
    constexpr size_t W = Ops::W;
    if (q >= (1ULL << 50) || n < 2 * W)
        return false;

    const double qs = static_cast<double>(q);
    const D qd = Ops::set1d(qs);
    const D qinv = Ops::set1d(1.0 / qs);

    static thread_local std::vector<double> scratch;
    if (scratch.size() < n)
        scratch.resize(n);
    double* pd = scratch.data();

    // t = w*y mod q, balanced in (-q, q), exact (see header comment).
    auto mulmod = [&](D w, D y) {
        D h = Ops::muld(w, y);
        D l = Ops::fmsubd(w, y, h);
        D c = Ops::roundd(Ops::muld(h, qinv));
        return Ops::addd(Ops::fnmaddd(c, qd, h), l);
    };
    auto butterfly = [&](D x, D y, D w, D* ox, D* oy) {
        D t = mulmod(w, y);
        *ox = Ops::addd(x, t);
        *oy = Ops::subd(x, t);
    };

    // Entry: bit-reversed gather + convert + optional twist.
    {
        const size_t n_w = n / W;
        unsigned wbits = 0;
        while ((size_t{1} << wbits) < W)
            ++wbits;
        u64 goff[W];
        for (size_t l = 0; l < W; ++l) {
            size_t rl = 0;
            for (unsigned b = 0; b < wbits; ++b)
                rl |= ((l >> b) & 1) << (wbits - 1 - b);
            goff[l] = rl * n_w;
        }
        const auto vidx = Ops::load(goff);
        size_t j = 0; // bit-reverse of k over log2(n/W) bits
        for (size_t k = 0; k < n_w; ++k) {
            D x = Ops::u64ToFp(Ops::loadIdx(p + j, vidx));
            if (pre_rev)
                x = mulmod(Ops::loadd(pre_rev + k * W), x);
            Ops::stored(pd + k * W, x);
            size_t bit = n_w >> 1;
            while (bit && (j & bit)) {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
        }
    }

    // Growth ledger: |values| < growth * q. A quotient tie in the sweep
    // can leave a residue just past q/2, so a sweep books 0.6, not 0.5.
    const double two53 = 9007199254740992.0;
    const double bound_prod = 0.49 / 3.0 * two53 / qs;
    const double bound_add = two53 / qs - 1.0;
    const double bound = bound_prod < bound_add ? bound_prod : bound_add;
    double growth = 1.0;
    auto sweep = [&] {
        for (size_t i = 0; i < n; i += W) {
            D x = Ops::loadd(pd + i);
            D c = Ops::roundd(Ops::muld(x, qinv));
            Ops::stored(pd + i, Ops::fnmaddd(c, qd, x));
        }
        growth = 0.6;
    };

    for (size_t m = 1; m < n; m <<= 1) {
        if (growth > bound)
            sweep();
        if (2 * m <= W) {
            // Butterfly blocks fit inside a vector pair: lane l of the
            // split-out x/y vectors uses twiddle j = l mod m.
            double wbuf[W];
            for (size_t l = 0; l < W; ++l)
                wbuf[l] = tw[m + (l & (m - 1))];
            const D w = Ops::loadd(wbuf);
            for (size_t i = 0; i < n; i += 2 * W) {
                D a = Ops::loadd(pd + i);
                D b = Ops::loadd(pd + i + W);
                D x, y;
                Ops::split(a, b, m, &x, &y);
                butterfly(x, y, w, &x, &y);
                Ops::join(x, y, m, &a, &b);
                Ops::stored(pd + i, a);
                Ops::stored(pd + i + W, b);
            }
        } else {
            for (size_t i = 0; i < n; i += 2 * m) {
                double* x_ptr = pd + i;
                double* y_ptr = pd + i + m;
                for (size_t j = 0; j < m; j += W) {
                    const D w = Ops::loadd(tw + m + j);
                    D x = Ops::loadd(x_ptr + j);
                    D y = Ops::loadd(y_ptr + j);
                    butterfly(x, y, w, &x, &y);
                    Ops::stored(x_ptr + j, x);
                    Ops::stored(y_ptr + j, y);
                }
            }
        }
        growth += 1.0;
    }

    // Exit: post-multiply lands balanced in (-q, q) on its own; without
    // one, a final sweep does. Then +q on the negatives -> canonical.
    if (post && growth > bound)
        sweep();
    for (size_t i = 0; i < n; i += W) {
        D x = Ops::loadd(pd + i);
        if (post) {
            x = mulmod(Ops::loadd(post + i), x);
        } else {
            D c = Ops::roundd(Ops::muld(x, qinv));
            x = Ops::fnmaddd(c, qd, x);
        }
        x = Ops::condAddQ(x, qd);
        Ops::store(p + i, Ops::fpToU64(x));
    }
    return true;
}

template <class Ops>
void
newlimbAcc(const u64* rows, size_t stride, const u64* punct, size_t k,
           u64 q, u64 r64, u64 r64_shoup, u64 pre1, u64* out)
{
    const auto vq = Ops::set1(q);
    const auto v2q = Ops::set1(2 * q);
    const auto vr64 = Ops::set1(r64);
    const auto vr64s = Ops::set1(r64_shoup);
    const auto vpre1 = Ops::set1(pre1);
    auto result = Ops::set1(0);
    for (size_t base = 0; base < k; base += 16) {
        const size_t chunk = k - base < 16 ? k - base : 16;
        auto acc_lo = Ops::set1(0);
        auto acc_hi = Ops::set1(0);
        for (size_t i = 0; i < chunk; ++i) {
            auto s = Ops::load(rows + (base + i) * stride);
            auto pb = Ops::set1(punct[base + i]);
            typename Ops::V hi, lo;
            Ops::mul128(s, pb, &hi, &lo);
            auto nlo = Ops::add(acc_lo, lo);
            auto carry = Ops::borrow1(nlo, lo); // 1 where the add wrapped
            acc_lo = nlo;
            acc_hi = Ops::add(acc_hi, Ops::add(hi, carry));
        }
        // Fold acc_hi:acc_lo into [0, q): hi * (2^64 mod q) by Shoup
        // (lazy, < 2q) plus lo reduced under 2q via pre1 = floor(2^64/q).
        auto m1 = mulShoupLazyV<Ops>(acc_hi, vr64, vr64s, vq);
        auto qe = Ops::mulhi64(acc_lo, vpre1);
        auto m2 = Ops::sub(acc_lo, Ops::mullo64(qe, vq));
        auto r = Ops::add(m1, m2); // < 4q < 2^64
        r = Ops::csub(r, v2q);
        r = Ops::csub(r, vq);
        result = Ops::csub(Ops::add(result, r), vq);
    }
    Ops::store(out, result);
}

} // namespace vecimpl
} // namespace simd
} // namespace madfhe

#endif // MADFHE_RNS_SIMD_KERNELS_VEC_INL_H
