/**
 * @file
 * AVX2 trait + dispatch table. 4 u64 lanes per __m256i; 64x64 multiplies
 * are assembled from vpmuludq 32x32 partial products, and unsigned
 * compares use the sign-flip trick (AVX2 has only signed vpcmpgtq).
 * Compiled with -mavx2 only when the compiler supports it; the factory
 * returns null unless the CPU reports AVX2 at runtime.
 */
#include "rns/simd/simd.h"

#ifdef MADFHE_SIMD_AVX2

#include <immintrin.h>

#include "rns/simd/kernels_vec_inl.h"

namespace madfhe {
namespace simd {
namespace {

struct Avx2Ops
{
    using V = __m256i;
    static constexpr size_t W = 4;

    static V load(const u64* p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    }
    static void store(u64* p, V v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
    }
    static V set1(u64 x) { return _mm256_set1_epi64x(static_cast<long long>(x)); }
    /** Gather base[idx[l]] per lane (element indices in a V). */
    static V loadIdx(const u64* base, V vidx)
    {
        return _mm256_i64gather_epi64(
            reinterpret_cast<const long long*>(base), vidx, 8);
    }
    static V add(V a, V b) { return _mm256_add_epi64(a, b); }
    static V sub(V a, V b) { return _mm256_sub_epi64(a, b); }
    static V srl(V a, unsigned s) { return _mm256_srli_epi64(a, static_cast<int>(s)); }
    static V sll(V a, unsigned s) { return _mm256_slli_epi64(a, static_cast<int>(s)); }
    static V or_(V a, V b) { return _mm256_or_si256(a, b); }

    /** All-ones lanes where a < b (unsigned). */
    static V ltMask(V a, V b)
    {
        const V sign = set1(0x8000000000000000ULL);
        return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign),
                                  _mm256_xor_si256(a, sign));
    }
    /** x >= b ? x - b : x (unsigned). */
    static V csub(V x, V b)
    {
        // Subtract b from lanes where NOT (x < b).
        return sub(x, _mm256_andnot_si256(ltMask(x, b), b));
    }
    /** 1 where a < b (unsigned), else 0. */
    static V borrow1(V a, V b) { return srl(ltMask(a, b), 63); }

    static V mullo64(V a, V b)
    {
        // lo64(a*b) = a0*b0 + ((a0*b1 + a1*b0) << 32)  (mod 2^64)
        V a1 = srl(a, 32), b1 = srl(b, 32);
        V cross = add(_mm256_mul_epu32(a, b1), _mm256_mul_epu32(a1, b));
        return add(_mm256_mul_epu32(a, b), sll(cross, 32));
    }
    static V mulhi64(V a, V b)
    {
        V hi, lo;
        mul128(a, b, &hi, &lo);
        return hi;
    }
    static void mul128(V a, V b, V* hi, V* lo)
    {
        const V lo32 = set1(0xFFFFFFFFULL);
        V a1 = srl(a, 32), b1 = srl(b, 32);
        V lolo = _mm256_mul_epu32(a, b);
        V lohi = _mm256_mul_epu32(a, b1);
        V hilo = _mm256_mul_epu32(a1, b);
        V hihi = _mm256_mul_epu32(a1, b1);
        V cross = add(srl(lolo, 32),
                      add(_mm256_and_si256(lohi, lo32),
                          _mm256_and_si256(hilo, lo32)));
        *hi = add(add(hihi, srl(cross, 32)), add(srl(lohi, 32), srl(hilo, 32)));
        *lo = add(lolo, sll(add(lohi, hilo), 32));
    }

    // --- double-precision ops for the error-free FMA transform ---
    using D = __m256d;

    static D loadd(const double* p) { return _mm256_loadu_pd(p); }
    static void stored(double* p, D v) { _mm256_storeu_pd(p, v); }
    static D set1d(double x) { return _mm256_set1_pd(x); }
    static D addd(D a, D b) { return _mm256_add_pd(a, b); }
    static D subd(D a, D b) { return _mm256_sub_pd(a, b); }
    static D muld(D a, D b) { return _mm256_mul_pd(a, b); }
    static D fmsubd(D a, D b, D c) { return _mm256_fmsub_pd(a, b, c); }
    static D fnmaddd(D a, D b, D c) { return _mm256_fnmadd_pd(a, b, c); }
    static D roundd(D x)
    {
        return _mm256_round_pd(x, _MM_FROUND_TO_NEAREST_INT |
                                      _MM_FROUND_NO_EXC);
    }
    /** t < 0 ? t + q : t */
    static D condAddQ(D t, D q)
    {
        D m = _mm256_cmp_pd(t, _mm256_setzero_pd(), _CMP_LT_OQ);
        return _mm256_add_pd(t, _mm256_and_pd(m, q));
    }
    /** s >= q ? s - q : s */
    static D condSubQ(D s, D q)
    {
        D m = _mm256_cmp_pd(s, q, _CMP_GE_OQ);
        return _mm256_sub_pd(s, _mm256_and_pd(m, q));
    }
    /**
     * Exact u64 -> double for x < 2^52: OR the exponent bits of 2^52
     * onto the mantissa (giving the double 2^52 + x) and subtract 2^52.
     */
    static D u64ToFp(V x)
    {
        const V magic = set1(0x4330000000000000ULL);
        return _mm256_sub_pd(_mm256_castsi256_pd(or_(x, magic)),
                             _mm256_castsi256_pd(magic));
    }
    /** Exact double -> u64 for integer d in [0, 2^52): reverse trick. */
    static V fpToU64(D d)
    {
        const V magic = set1(0x4330000000000000ULL);
        V bits = _mm256_castpd_si256(
            _mm256_add_pd(d, _mm256_castsi256_pd(magic)));
        return _mm256_and_si256(bits, set1(0xFFFFFFFFFFFFFULL));
    }
    /**
     * Deinterleave two adjacent vectors (one 2m-sized NTT block group)
     * into x/y butterfly operands for sub-vector stages m in {1, 2}.
     * Lane l of x pairs with lane l of y and uses twiddle index
     * l & (m - 1); join() is the exact inverse.
     */
    static void split(D a, D b, size_t m, D* x, D* y)
    {
        if (m == 1) {
            *x = _mm256_unpacklo_pd(a, b);
            *y = _mm256_unpackhi_pd(a, b);
        } else {
            *x = _mm256_permute2f128_pd(a, b, 0x20);
            *y = _mm256_permute2f128_pd(a, b, 0x31);
        }
    }
    static void join(D x, D y, size_t m, D* a, D* b)
    {
        if (m == 1) {
            *a = _mm256_unpacklo_pd(x, y);
            *b = _mm256_unpackhi_pd(x, y);
        } else {
            *a = _mm256_permute2f128_pd(x, y, 0x20);
            *b = _mm256_permute2f128_pd(x, y, 0x31);
        }
    }
};

const Kernels kAvx2 = {
    "avx2",
    "simd.avx2",
    Avx2Ops::W,
    vecimpl::nttStage<Avx2Ops>,
    vecimpl::reduce4q<Avx2Ops>,
    vecimpl::mulShoupVec<Avx2Ops>,
    vecimpl::mulShoupScalar<Avx2Ops>,
    vecimpl::mulModVec<Avx2Ops>,
    vecimpl::addMulModVec<Avx2Ops>,
    vecimpl::newlimbAcc<Avx2Ops>,
    vecimpl::fpTransform<Avx2Ops>,
};

} // namespace

const Kernels*
avx2Kernels()
{
    static const bool runnable =
        __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    return runnable ? &kAvx2 : nullptr;
}

} // namespace simd
} // namespace madfhe

#else // !MADFHE_SIMD_AVX2

namespace madfhe {
namespace simd {

const Kernels*
avx2Kernels()
{
    return nullptr;
}

} // namespace simd
} // namespace madfhe

#endif // MADFHE_SIMD_AVX2
