/**
 * @file
 * AVX-512 trait + dispatch table. 8 u64 lanes per __m512i; low 64-bit
 * products are native (vpmullq, AVX-512DQ), high halves are assembled
 * from vpmuludq partials, and unsigned compares use mask registers.
 * Compiled with -mavx512f/dq/vl only when the compiler supports them;
 * the factory returns null unless the CPU reports the features.
 */
#include "rns/simd/simd.h"

#ifdef MADFHE_SIMD_AVX512

#include <immintrin.h>

#include "rns/simd/kernels_vec_inl.h"

namespace madfhe {
namespace simd {
namespace {

struct Avx512Ops
{
    using V = __m512i;
    static constexpr size_t W = 8;

    static V load(const u64* p) { return _mm512_loadu_si512(p); }
    static void store(u64* p, V v) { _mm512_storeu_si512(p, v); }
    static V set1(u64 x) { return _mm512_set1_epi64(static_cast<long long>(x)); }
    /** Gather base[idx[l]] per lane (element indices in a V). */
    static V loadIdx(const u64* base, V vidx)
    {
        return _mm512_i64gather_epi64(vidx, base, 8);
    }
    static V add(V a, V b) { return _mm512_add_epi64(a, b); }
    static V sub(V a, V b) { return _mm512_sub_epi64(a, b); }
    static V srl(V a, unsigned s) { return _mm512_srli_epi64(a, s); }
    static V sll(V a, unsigned s) { return _mm512_slli_epi64(a, s); }
    static V or_(V a, V b) { return _mm512_or_si512(a, b); }

    /** x >= b ? x - b : x (unsigned). */
    static V csub(V x, V b)
    {
        return _mm512_mask_sub_epi64(x, _mm512_cmpge_epu64_mask(x, b), x, b);
    }
    /** 1 where a < b (unsigned), else 0. */
    static V borrow1(V a, V b)
    {
        return _mm512_maskz_set1_epi64(_mm512_cmplt_epu64_mask(a, b), 1);
    }

    static V mullo64(V a, V b) { return _mm512_mullo_epi64(a, b); }
    static V mulhi64(V a, V b)
    {
        const V lo32 = set1(0xFFFFFFFFULL);
        V a1 = srl(a, 32), b1 = srl(b, 32);
        V lolo = _mm512_mul_epu32(a, b);
        V lohi = _mm512_mul_epu32(a, b1);
        V hilo = _mm512_mul_epu32(a1, b);
        V hihi = _mm512_mul_epu32(a1, b1);
        V cross = add(srl(lolo, 32),
                      add(_mm512_and_si512(lohi, lo32),
                          _mm512_and_si512(hilo, lo32)));
        return add(add(hihi, srl(cross, 32)),
                   add(srl(lohi, 32), srl(hilo, 32)));
    }
    static void mul128(V a, V b, V* hi, V* lo)
    {
        *hi = mulhi64(a, b);
        *lo = _mm512_mullo_epi64(a, b);
    }

    // --- double-precision ops for the error-free FMA transform ---
    using D = __m512d;

    static D loadd(const double* p) { return _mm512_loadu_pd(p); }
    static void stored(double* p, D v) { _mm512_storeu_pd(p, v); }
    static D set1d(double x) { return _mm512_set1_pd(x); }
    static D addd(D a, D b) { return _mm512_add_pd(a, b); }
    static D subd(D a, D b) { return _mm512_sub_pd(a, b); }
    static D muld(D a, D b) { return _mm512_mul_pd(a, b); }
    static D fmsubd(D a, D b, D c) { return _mm512_fmsub_pd(a, b, c); }
    static D fnmaddd(D a, D b, D c) { return _mm512_fnmadd_pd(a, b, c); }
    static D roundd(D x)
    {
        return _mm512_roundscale_pd(x, _MM_FROUND_TO_NEAREST_INT |
                                           _MM_FROUND_NO_EXC);
    }
    /** t < 0 ? t + q : t */
    static D condAddQ(D t, D q)
    {
        __mmask8 m =
            _mm512_cmp_pd_mask(t, _mm512_setzero_pd(), _CMP_LT_OQ);
        return _mm512_mask_add_pd(t, m, t, q);
    }
    /** s >= q ? s - q : s */
    static D condSubQ(D s, D q)
    {
        __mmask8 m = _mm512_cmp_pd_mask(s, q, _CMP_GE_OQ);
        return _mm512_mask_sub_pd(s, m, s, q);
    }
    /** Exact conversions (AVX-512DQ has native u64 <-> f64). */
    static D u64ToFp(V x) { return _mm512_cvtepu64_pd(x); }
    static V fpToU64(D d) { return _mm512_cvtpd_epu64(d); }
    /**
     * Deinterleave two adjacent vectors (one 2m-sized NTT block group)
     * into x/y butterfly operands for sub-vector stages m in {1, 2, 4}.
     * Lane l of x pairs with lane l of y and uses twiddle index
     * l & (m - 1); join() is the exact inverse.
     */
    static void split(D a, D b, size_t m, D* x, D* y)
    {
        __m512i xi, yi;
        if (m == 1) {
            xi = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
            yi = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
        } else if (m == 2) {
            xi = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
            yi = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
        } else {
            xi = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
            yi = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
        }
        *x = _mm512_permutex2var_pd(a, xi, b);
        *y = _mm512_permutex2var_pd(a, yi, b);
    }
    static void join(D x, D y, size_t m, D* a, D* b)
    {
        __m512i ai, bi;
        if (m == 1) {
            ai = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
            bi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
        } else if (m == 2) {
            ai = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
            bi = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
        } else {
            ai = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
            bi = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
        }
        *a = _mm512_permutex2var_pd(x, ai, y);
        *b = _mm512_permutex2var_pd(x, bi, y);
    }
};

const Kernels kAvx512 = {
    "avx512",
    "simd.avx512",
    Avx512Ops::W,
    vecimpl::nttStage<Avx512Ops>,
    vecimpl::reduce4q<Avx512Ops>,
    vecimpl::mulShoupVec<Avx512Ops>,
    vecimpl::mulShoupScalar<Avx512Ops>,
    vecimpl::mulModVec<Avx512Ops>,
    vecimpl::addMulModVec<Avx512Ops>,
    vecimpl::newlimbAcc<Avx512Ops>,
    vecimpl::fpTransform<Avx512Ops>,
};

} // namespace

const Kernels*
avx512Kernels()
{
    static const bool runnable = __builtin_cpu_supports("avx512f") &&
                                 __builtin_cpu_supports("avx512dq") &&
                                 __builtin_cpu_supports("avx512vl");
    return runnable ? &kAvx512 : nullptr;
}

} // namespace simd
} // namespace madfhe

#else // !MADFHE_SIMD_AVX512

namespace madfhe {
namespace simd {

const Kernels*
avx512Kernels()
{
    return nullptr;
}

} // namespace simd
} // namespace madfhe

#endif // MADFHE_SIMD_AVX512
