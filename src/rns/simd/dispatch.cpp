#include "rns/simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace madfhe {
namespace simd {

namespace {

const Kernels*
tableFor(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return scalarKernels();
    case Backend::Avx2:
        return avx2Kernels();
    case Backend::Avx512:
        return avx512Kernels();
    }
    return nullptr;
}

/** Widest supported backend at or below `want`. */
Backend
bestAtMost(Backend want)
{
    if (want == Backend::Avx512 && supported(Backend::Avx512))
        return Backend::Avx512;
    if (want >= Backend::Avx2 && supported(Backend::Avx2))
        return Backend::Avx2;
    return Backend::Scalar;
}

Backend
resolveFromEnv()
{
    const char* env = std::getenv("MADFHE_SIMD");
    if (!env || std::strcmp(env, "auto") == 0)
        return bestAtMost(Backend::Avx512);
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0)
        return Backend::Scalar;
    Backend want;
    if (std::strcmp(env, "avx2") == 0)
        want = Backend::Avx2;
    else if (std::strcmp(env, "avx512") == 0)
        want = Backend::Avx512;
    else
        throw UserError("MADFHE_SIMD must be off|avx2|avx512|auto",
                        __FILE__, __LINE__);
    if (!supported(want)) {
        Backend got = bestAtMost(want);
        std::fprintf(stderr,
                     "madfhe: MADFHE_SIMD=%s not supported on this CPU/"
                     "build, falling back to %s\n",
                     env, backendName(got));
        return got;
    }
    return want;
}

/** Active table; resolved lazily, swappable by setBackend (tests). */
std::atomic<const Kernels*> g_active{nullptr};

const Kernels*
resolveOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const Kernels* t = tableFor(resolveFromEnv());
        MAD_CHECK(t != nullptr, "SIMD dispatch resolved to a null table");
        g_active.store(t, std::memory_order_release);
    });
    return g_active.load(std::memory_order_acquire);
}

} // namespace

bool
supported(Backend b)
{
    return tableFor(b) != nullptr;
}

const Kernels&
kernels()
{
    const Kernels* t = g_active.load(std::memory_order_acquire);
    return t ? *t : *resolveOnce();
}

Backend
backend()
{
    const Kernels& k = kernels();
    if (&k == avx512Kernels())
        return Backend::Avx512;
    if (&k == avx2Kernels())
        return Backend::Avx2;
    return Backend::Scalar;
}

void
setBackend(Backend b)
{
    const Kernels* t = tableFor(b);
    MAD_REQUIRE(t != nullptr,
            "requested SIMD backend is not supported on this CPU/build");
    resolveOnce(); // keep the once-flag consumed before overriding
    g_active.store(t, std::memory_order_release);
}

const char*
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return "scalar";
    case Backend::Avx2:
        return "avx2";
    case Backend::Avx512:
        return "avx512";
    }
    return "?";
}

const char*
activeName()
{
    return kernels().name;
}

const char*
activeSpanLabel()
{
    return kernels().span_label;
}

} // namespace simd
} // namespace madfhe
