/**
 * @file
 * Runtime-dispatched SIMD kernels for the modular hot loops: Harvey lazy
 * NTT/iNTT butterfly stages, Shoup/Barrett pointwise modular multiplies,
 * and the NewLimb fast-basis-extension accumulation.
 *
 * The backend is resolved once per process from `MADFHE_SIMD`
 * (`off|avx2|avx512|auto`, default `auto`) intersected with CPUID
 * feature bits; the scalar table is the always-correct fallback and the
 * reference semantics. Every vector kernel is *bit-exact* against the
 * scalar implementation — not merely value-equal modulo q but identical
 * canonical residues in [0, q) — so memtrace replay, the 1-vs-N-thread
 * determinism suite and seed-compressed ciphertext expansion remain
 * valid under any backend.
 *
 * Lazy-reduction invariant: the butterfly kernels keep coefficients in
 * [0, 4q) across stages (Harvey), which is overflow-free exactly when
 * q < 2^62 (4q < 2^64). That bound is enforced by `Modulus` and at
 * prime generation (rns/primegen.cpp); the kernels assume it.
 */
#ifndef MADFHE_RNS_SIMD_SIMD_H
#define MADFHE_RNS_SIMD_SIMD_H

#include "rns/modarith.h"

namespace madfhe {
namespace simd {

enum class Backend : u8
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/**
 * The dispatch table. All kernels operate on u64 residue arrays and
 * produce canonical outputs bit-identical to the scalar table.
 */
struct Kernels
{
    /** Backend display name ("scalar", "avx2", "avx512"). */
    const char* name;
    /** Telemetry span label ("simd.scalar", ...); a string literal. */
    const char* span_label;
    /** Native lane width in u64 (1, 4, 8). Block size for NewLimb. */
    size_t lanes;

    /**
     * One Harvey lazy butterfly stage of half-size m over p[0, n):
     * for every block i (step 2m) and j in [0, m),
     *   x = p[i+j] (conditionally reduced under 2q),
     *   y = mulShoupLazy(p[i+j+m], tw[j], tw_shoup[j]),
     *   p[i+j] = x + y, p[i+j+m] = x + 2q - y.
     * Values stay in [0, 4q); requires q < 2^62. `tw`/`tw_shoup` point
     * at the stage slice (NttTables::omega_tw.data() + m).
     */
    void (*ntt_stage)(u64* p, size_t n, size_t m, const u64* tw,
                      const u64* tw_shoup, u64 q, u64 two_q);

    /** Final lazy-NTT cleanup: map p[i] from [0, 4q) into [0, q). */
    void (*reduce_4q)(u64* p, size_t n, u64 q, u64 two_q);

    /**
     * Twist/untwist with a twiddle table:
     * a[i] = mulShoup(a[i], w[i], w_shoup[i]) for i in [0, n).
     */
    void (*mul_shoup_vec)(u64* a, const u64* w, const u64* w_shoup,
                          size_t n, u64 q);

    /**
     * Broadcast Shoup multiply: dst[i] = mulShoup(src[i], w, w_shoup).
     * dst may alias src (in-place).
     */
    void (*mul_shoup_scalar)(u64* dst, const u64* src, size_t n, u64 w,
                             u64 w_shoup, u64 q);

    /** Pointwise Barrett multiply: a[i] = a[i] * b[i] mod q. */
    void (*mul_mod_vec)(u64* a, const u64* b, size_t n, const Modulus& q);

    /** Fused multiply-add: dst[i] = (dst[i] + a[i] * b[i] mod q) mod q. */
    void (*add_mul_mod_vec)(u64* dst, const u64* a, const u64* b, size_t n,
                            const Modulus& q);

    /**
     * NewLimb inner accumulation over one lane block (exactly `lanes`
     * coefficients): out[l] = (sum_i rows[i*stride + l] * punct[i]) mod q.
     * `rows` is the k x stride row-major scaled-residue scratch.
     * r64 = 2^64 mod q with its Shoup preconditioner r64_shoup, and
     * pre1 = shoupPrecompute(1) = floor(2^64 / q) (the 128-bit folding
     * constants, precomputed per target modulus by the caller).
     */
    void (*newlimb_acc)(const u64* rows, size_t stride, const u64* punct,
                        size_t k, u64 q, u64 r64, u64 r64_shoup, u64 pre1,
                        u64* out);

    /**
     * Optional fused whole-NTT kernel: bit-reversal gather, optional
     * pre-twist, every butterfly stage, and an optional post-multiply,
     * leaving canonical residues in p. The caller supplies tables as
     * doubles (exact images of the u64 tables, precomputed by
     * NttTables when q < 2^50):
     *   pre_rev — psi^bitrev(i) at index i, multiplied in during the
     *             bit-reversed load (the forward twist); may be null.
     *   tw      — full stage-twiddle table (stage-m slice at index m).
     *   post    — pointwise multiplier applied on exit (the fused
     *             inverse untwist-and-scale table); may be null.
     * Returns false when (q, n) is outside the kernel's domain — the
     * caller must then run the unfused path (twist / bitrev / stages /
     * reduce). Null on backends without one.
     *
     * The vector backends implement this with the error-free FMA
     * modmul (Dekker product + quotient rounding): every intermediate
     * is an exactly-representable integer, so outputs are bit-identical
     * to the scalar path while a modular multiply costs ~6 FP ops
     * instead of ten 32x32 partial products.
     */
    bool (*fp_transform)(u64* p, size_t n, const double* pre_rev,
                         const double* tw, const double* post, u64 q);
};

/** True when this process can execute `b` (CPUID + compile support). */
bool supported(Backend b);

/**
 * The active backend. First call resolves MADFHE_SIMD against CPUID:
 * `auto` (default) picks the widest supported backend, `off` forces
 * scalar, and an explicitly requested but unsupported backend degrades
 * to the widest available one with a one-time stderr warning. An
 * unrecognized value throws UserError.
 */
Backend backend();

/** Dispatch table of the active backend. */
const Kernels& kernels();

/** Programmatic override (tests, perf_gate); requires supported(b). */
void setBackend(Backend b);

/** Display name of `b` ("scalar", "avx2", "avx512"). */
const char* backendName(Backend b);

/** Display name of the active backend. */
const char* activeName();

/** Telemetry span label of the active backend ("simd.avx2", ...). */
const char* activeSpanLabel();

/** Internal: per-ISA tables; null when not compiled or not runnable. */
const Kernels* scalarKernels();
const Kernels* avx2Kernels();
const Kernels* avx512Kernels();

} // namespace simd
} // namespace madfhe

#endif // MADFHE_RNS_SIMD_SIMD_H
