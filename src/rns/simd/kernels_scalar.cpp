/**
 * @file
 * Scalar reference implementations of the dispatch table. These are the
 * semantics every vector backend must reproduce bit-for-bit; they mirror
 * the pre-SIMD inner loops of rns/ntt.cpp, ring/poly.cpp and
 * rns/basis.cpp exactly.
 */
#include "rns/simd/simd.h"

namespace madfhe {
namespace simd {

namespace {

void
nttStage(u64* p, size_t n, size_t m, const u64* tw, const u64* tw_shoup,
         u64 q, u64 two_q)
{
    for (size_t i = 0; i < n; i += 2 * m) {
        for (size_t j = 0; j < m; ++j) {
            const u64 w = tw[j];
            const u64 ws = tw_shoup[j];
            u64 x = p[i + j];
            if (x >= two_q)
                x -= two_q;
            u64 hi = static_cast<u64>(
                (static_cast<u128>(p[i + j + m]) * ws) >> 64);
            u64 y = p[i + j + m] * w - hi * q;
            p[i + j] = x + y;
            p[i + j + m] = x + two_q - y;
        }
    }
}

void
reduce4q(u64* p, size_t n, u64 q, u64 two_q)
{
    for (size_t i = 0; i < n; ++i) {
        u64 v = p[i];
        if (v >= two_q)
            v -= two_q;
        if (v >= q)
            v -= q;
        p[i] = v;
    }
}

inline u64
mulShoup(u64 a, u64 w, u64 ws, u64 q)
{
    u64 hi = static_cast<u64>((static_cast<u128>(a) * ws) >> 64);
    u64 r = a * w - hi * q;
    return r >= q ? r - q : r;
}

void
mulShoupVec(u64* a, const u64* w, const u64* w_shoup, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = mulShoup(a[i], w[i], w_shoup[i], q);
}

void
mulShoupScalar(u64* dst, const u64* src, size_t n, u64 w, u64 w_shoup,
               u64 q)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = mulShoup(src[i], w, w_shoup, q);
}

void
mulModVec(u64* a, const u64* b, size_t n, const Modulus& q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
}

void
addMulModVec(u64* dst, const u64* a, const u64* b, size_t n,
             const Modulus& q)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = q.add(dst[i], q.mul(a[i], b[i]));
}

void
newlimbAcc(const u64* rows, size_t stride, const u64* punct, size_t k,
           u64 q, u64 r64, u64 r64_shoup, u64 pre1, u64* out)
{
    // 128-bit lazy accumulation, folded with the Shoup constants the
    // vector backends use: acc mod q = (acc_hi * (2^64 mod q) +
    // barrett64(acc_lo)) mod q. Flushing every 16 terms keeps the 128-bit
    // accumulator overflow-free for q up to the 2^62 bound (16 products
    // below 2^124 sum to under 2^128).
    u64 result = 0;
    for (size_t base = 0; base < k; base += 16) {
        const size_t chunk = k - base < 16 ? k - base : 16;
        u128 acc = 0;
        for (size_t i = 0; i < chunk; ++i)
            acc += static_cast<u128>(rows[(base + i) * stride]) *
                   punct[base + i];
        const u64 acc_hi = static_cast<u64>(acc >> 64);
        const u64 acc_lo = static_cast<u64>(acc);
        // hi * 2^64 mod q via Shoup (lazy, < 2q) ...
        u64 h = static_cast<u64>(
            (static_cast<u128>(acc_hi) * r64_shoup) >> 64);
        u64 m1 = acc_hi * r64 - h * q;
        // ... plus acc_lo reduced under 2q with the pre1 = floor(2^64/q)
        // quotient estimate.
        u64 qe = static_cast<u64>((static_cast<u128>(acc_lo) * pre1) >> 64);
        u64 m2 = acc_lo - qe * q;
        u64 r = m1 + m2; // < 4q < 2^64
        if (r >= 2 * q)
            r -= 2 * q;
        if (r >= q)
            r -= q;
        u64 s = result + r;
        result = s >= q ? s - q : s;
    }
    out[0] = result;
}

const Kernels kScalar = {
    "scalar", "simd.scalar", 1,        nttStage,     reduce4q,
    mulShoupVec, mulShoupScalar, mulModVec, addMulModVec, newlimbAcc,
    nullptr, // fp_transform: the unfused scalar path IS the reference
};

} // namespace

const Kernels*
scalarKernels()
{
    return &kScalar;
}

} // namespace simd
} // namespace madfhe
