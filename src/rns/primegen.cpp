#include "rns/primegen.h"

#include <algorithm>

#include "rns/modarith.h"

namespace madfhe {

namespace {

bool
contains(const std::vector<u64>& v, u64 x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

} // namespace

std::vector<u64>
generateNttPrimes(unsigned bit_size, u64 n, size_t count,
                  const std::vector<u64>& exclude)
{
    MAD_REQUIRE(isPowerOfTwo(n), "ring degree must be a power of two");
    // Cap at 61 bits so q < 2^62: the NTT's Harvey lazy reduction keeps
    // butterfly values in [0, 4q) and silently overflows 64 bits for any
    // modulus within 2 bits of 2^64.
    MAD_REQUIRE(bit_size >= 20 && bit_size <= 61,
            "prime width out of range (max 61 bits: NTT lazy reduction "
            "needs q < 2^62)");

    u64 step = 2 * n;
    // Largest candidate = 1 (mod 2N) strictly below 2^bit_size.
    u64 top = (1ULL << bit_size) - 1;
    u64 candidate = (top / step) * step + 1;

    std::vector<u64> primes;
    while (primes.size() < count) {
        MAD_REQUIRE(candidate > (1ULL << (bit_size - 1)),
                "ran out of NTT primes of the requested width");
        if (isPrime(candidate) && !contains(exclude, candidate) &&
            !contains(primes, candidate)) {
            primes.push_back(candidate);
        }
        candidate -= step;
    }
    return primes;
}

u64
generateNttPrimeNear(u64 target, u64 n, const std::vector<u64>& exclude)
{
    MAD_REQUIRE(isPowerOfTwo(n), "ring degree must be a power of two");
    // Same q < 2^62 bound as generateNttPrimes: a wider prime would
    // overflow the NTT's [0, 4q) lazy-reduction window. Checked here
    // (not just in Modulus) so the failure points at the caller's
    // target instead of surfacing later at table construction, and so
    // the upward walk below can never cross the limit.
    const u64 limit = 1ULL << 62;
    MAD_REQUIRE(target < limit,
            "NTT prime target must be < 2^62 (4q lazy-reduction headroom)");
    u64 step = 2 * n;
    u64 base = (target / step) * step + 1;
    // Walk outward: base, base+step, base-step, base+2step, ...
    for (u64 k = 0;; ++k) {
        u64 up = base + k * step;
        if (up < limit && isPrime(up) && !contains(exclude, up))
            return up;
        if (k > 0 && base > k * step) {
            u64 down = base - k * step;
            if (isPrime(down) && !contains(exclude, down))
                return down;
        }
        MAD_REQUIRE(up < limit || base > k * step,
                "ran out of NTT primes below 2^62 near the target");
    }
}

} // namespace madfhe
