#include "rns/modarith.h"

namespace madfhe {

Modulus::Modulus(u64 q)
{
    MAD_REQUIRE(q >= 3 && (q & 1) == 1, "modulus must be an odd number >= 3");
    MAD_REQUIRE(q < (1ULL << 62), "modulus must be < 2^62");
    _value = q;
    // floor(2^128 / q) computed by long division of 2^128 by q.
    u128 numer = ~static_cast<u128>(0); // 2^128 - 1
    barrett = numer / q;
    // Account for the remainder: floor((2^128 - 1)/q) == floor(2^128/q)
    // unless q divides 2^128, impossible for odd q > 1.
    _bits = floorLog2(q) + 1;
}

u64
Modulus::reduce128(u128 x) const
{
    // Barrett: quotient estimate via the top 128 bits of x * floor(2^128/q).
    u64 x_hi = static_cast<u64>(x >> 64);
    u64 x_lo = static_cast<u64>(x);
    u64 b_hi = static_cast<u64>(barrett >> 64);
    u64 b_lo = static_cast<u64>(barrett);

    // q_est = floor(x * barrett / 2^128); compute the 256-bit product's
    // top half using 64x64->128 partial products.
    u128 lo_lo = static_cast<u128>(x_lo) * b_lo;
    u128 lo_hi = static_cast<u128>(x_lo) * b_hi;
    u128 hi_lo = static_cast<u128>(x_hi) * b_lo;
    u128 hi_hi = static_cast<u128>(x_hi) * b_hi;

    u128 mid = lo_hi + hi_lo;
    u128 carry_mid = mid < lo_hi ? (static_cast<u128>(1) << 64) : 0;
    u128 mid_plus = mid + (lo_lo >> 64);
    u128 carry2 = mid_plus < mid ? (static_cast<u128>(1) << 64) : 0;
    u128 q_est = hi_hi + (mid_plus >> 64) + carry_mid + carry2;

    u128 r = x - q_est * _value;
    while (r >= _value)
        r -= _value;
    return static_cast<u64>(r);
}

u64
Modulus::pow(u64 a, u64 e) const
{
    u64 base = a >= _value ? reduce(a) : a;
    u64 result = 1;
    while (e) {
        if (e & 1)
            result = mul(result, base);
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

u64
Modulus::inverse(u64 a) const
{
    u64 r = a % _value;
    MAD_REQUIRE(r != 0, "inverse of zero mod q");
    // Fermat: a^(q-2) mod q.
    return pow(r, _value - 2);
}

namespace {

u64
mulmod64(u64 a, u64 b, u64 m)
{
    return static_cast<u64>((static_cast<u128>(a) * b) % m);
}

u64
powmod64(u64 a, u64 e, u64 m)
{
    u64 r = 1;
    a %= m;
    while (e) {
        if (e & 1)
            r = mulmod64(r, a, m);
        a = mulmod64(a, a, m);
        e >>= 1;
    }
    return r;
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                  19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0)
            return n == p;
    }
    u64 d = n - 1;
    unsigned s = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++s;
    }
    // This witness set is deterministic for all n < 2^64.
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                  19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        u64 x = powmod64(a, d, n);
        if (x == 1 || x == n - 1)
            continue;
        bool composite = true;
        for (unsigned i = 1; i < s; ++i) {
            x = mulmod64(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

} // namespace madfhe
