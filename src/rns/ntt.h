/**
 * @file
 * Negacyclic number-theoretic transform over one limb modulus.
 *
 * We use the twist formulation: multiply coefficient i by psi^i (a primitive
 * 2N-th root of unity), then run a standard cyclic NTT with omega = psi^2.
 * Both directions keep the data in *natural order*, so that in evaluation
 * representation slot k holds a(psi^(2k+1)). Natural ordering makes Galois
 * automorphisms (Rotate/Conjugate) pure index permutations in evaluation
 * representation — the property the MAD caching analysis relies on
 * (Automorph costs zero compute, Table 4).
 */
#ifndef MADFHE_RNS_NTT_H
#define MADFHE_RNS_NTT_H

#include <vector>

#include "rns/modarith.h"

namespace madfhe {

/**
 * Precomputed twiddle tables for a fixed (N, q) pair. Immutable after
 * construction and shareable across polynomials.
 */
class NttTables
{
  public:
    /**
     * @param n Ring degree, a power of two.
     * @param q Prime modulus with q = 1 (mod 2n).
     */
    NttTables(size_t n, const Modulus& q);

    size_t degree() const { return n; }
    const Modulus& modulus() const { return q; }

    /** In-place coefficient -> evaluation transform (size n buffer). */
    void forward(u64* a) const;

    /** In-place evaluation -> coefficient transform (size n buffer). */
    void inverse(u64* a) const;

    /** The primitive 2n-th root psi used by this table. */
    u64 psi() const { return psi_pow[1]; }

    /** psi^e mod q for any exponent (reduced mod 2n; psi^n = -1). */
    u64
    psiPower(u64 e) const
    {
        e %= 2 * n;
        bool negate = e >= n;
        if (negate)
            e -= n;
        u64 v = psi_pow[e];
        return negate ? q.neg(v) : v;
    }

  private:
    void cyclicTransform(u64* a, const std::vector<u64>& tw,
                         const std::vector<u64>& tw_shoup) const;

    size_t n;
    unsigned logn;
    Modulus q;

    /** psi^i and psi^{-i}, i in [0, n), with Shoup preconditioners. */
    std::vector<u64> psi_pow, psi_pow_shoup;
    std::vector<u64> ipsi_pow, ipsi_pow_shoup;

    /**
     * Stage twiddles for the cyclic transform: tw[m + j] = omega^(j * n/(2m))
     * for stage half-size m in {1, 2, 4, ..., n/2}, j in [0, m).
     */
    std::vector<u64> omega_tw, omega_tw_shoup;
    std::vector<u64> iomega_tw, iomega_tw_shoup;

    u64 n_inv, n_inv_shoup;
    std::vector<u32> bitrev;
};

/** Find a primitive 2n-th root of unity modulo q (q = 1 mod 2n). */
u64 findPrimitiveRoot(size_t two_n, const Modulus& q);

} // namespace madfhe

#endif // MADFHE_RNS_NTT_H
