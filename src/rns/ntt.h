/**
 * @file
 * Negacyclic number-theoretic transform over one limb modulus.
 *
 * We use the twist formulation: multiply coefficient i by psi^i (a primitive
 * 2N-th root of unity), then run a standard cyclic NTT with omega = psi^2.
 * Both directions keep the data in *natural order*, so that in evaluation
 * representation slot k holds a(psi^(2k+1)). Natural ordering makes Galois
 * automorphisms (Rotate/Conjugate) pure index permutations in evaluation
 * representation — the property the MAD caching analysis relies on
 * (Automorph costs zero compute, Table 4).
 *
 * Construction cost is paid once per (N, q) pair process-wide: get()
 * memoizes tables, the cyclic stage twiddles are sliced out of the psi
 * power table instead of being recomputed (omega = psi^2, so
 * omega^(j*N/2m) = psi^(j*N/m)), and the bit-reversal permutation is
 * stored as explicit swap pairs.
 *
 * The batch entry points (forwardBatch/inverseBatch) transform several
 * limbs that share this modulus with a single walk over the twiddle
 * tables: each (stage, twiddle) pair is loaded once and applied to every
 * buffer before advancing, which is how the key-switch digit fan-out
 * amortizes table traffic (MAD's limb-wise reuse, Table 3).
 */
#ifndef MADFHE_RNS_NTT_H
#define MADFHE_RNS_NTT_H

#include <memory>
#include <utility>
#include <vector>

#include "rns/modarith.h"

namespace madfhe {

/**
 * Precomputed twiddle tables for a fixed (N, q) pair. Immutable after
 * construction and shareable across polynomials, contexts and threads.
 */
class NttTables
{
  public:
    /**
     * @param n Ring degree, a power of two.
     * @param q Prime modulus with q = 1 (mod 2n).
     */
    NttTables(size_t n, const Modulus& q);

    /**
     * Process-wide memoized lookup keyed by (n, q). Every context
     * creation path should come through here so tables are built once
     * per process rather than once per context.
     */
    static std::shared_ptr<const NttTables> get(size_t n, const Modulus& q);

    size_t degree() const { return n; }
    const Modulus& modulus() const { return q; }

    /** In-place coefficient -> evaluation transform (size n buffer). */
    void forward(u64* a) const;

    /** In-place evaluation -> coefficient transform (size n buffer). */
    void inverse(u64* a) const;

    /**
     * Transform `count` size-n buffers (all residues mod this q) with
     * one shared walk over the twiddle tables. Equivalent to calling
     * forward() on each buffer, limb by limb, in order.
     */
    void forwardBatch(u64* const* a, size_t count) const;

    /** Batched inverse(); see forwardBatch. */
    void inverseBatch(u64* const* a, size_t count) const;

    /**
     * forwardBatch()/inverseBatch() without trace events or fault
     * guards: the limb-streaming engine (ckks/stream.h) transforms
     * scratch limbs that never reach DRAM and does its own traffic
     * accounting and output guarding. Bit-identical to the traced
     * entry points.
     */
    void forwardBatchRaw(u64* const* a, size_t count) const;
    void inverseBatchRaw(u64* const* a, size_t count) const;

    void
    forwardRaw(u64* a) const
    {
        u64* const one[1] = {a};
        forwardBatchRaw(one, 1);
    }

    void
    inverseRaw(u64* a) const
    {
        u64* const one[1] = {a};
        inverseBatchRaw(one, 1);
    }

    /** The primitive 2n-th root psi used by this table. */
    u64 psi() const { return psi_pow[1]; }

    /** psi^e mod q for any exponent (reduced mod 2n; psi^n = -1). */
    u64
    psiPower(u64 e) const
    {
        e %= 2 * n;
        bool negate = e >= n;
        if (negate)
            e -= n;
        u64 v = psi_pow[e];
        return negate ? q.neg(v) : v;
    }

  private:
    void cyclicTransform(u64* const* a, size_t count,
                         const std::vector<u64>& tw,
                         const std::vector<u64>& tw_shoup) const;
    void cyclicTransformOne(u64* a, const std::vector<u64>& tw,
                            const std::vector<u64>& tw_shoup) const;

    size_t n;
    unsigned logn;
    Modulus q;

    /** psi^i, i in [0, n), with Shoup preconditioners (forward twist). */
    std::vector<u64> psi_pow, psi_pow_shoup;
    /**
     * Fused inverse untwist-and-scale: psi^{-i} * n^{-1} mod q, so the
     * inverse transform pays one Shoup multiply per coefficient instead
     * of two.
     */
    std::vector<u64> ipsi_ninv, ipsi_ninv_shoup;

    /**
     * Stage twiddles for the cyclic transform: tw[m + j] = omega^(j * n/(2m))
     * for stage half-size m in {1, 2, 4, ..., n/2}, j in [0, m).
     */
    std::vector<u64> omega_tw, omega_tw_shoup;
    std::vector<u64> iomega_tw, iomega_tw_shoup;

    /** Bit-reversal permutation as (i, rev(i)) pairs with rev(i) > i. */
    std::vector<std::pair<u32, u32>> bitrev_swaps;

    /**
     * Double-precision images of the tables for the fused SIMD FP
     * transform (rns/simd), built only when q < 2^50 (all values below
     * 2^50 convert exactly). psi_rev_fp holds the forward twist in
     * bit-reversed order — psi^bitrev(i) at index i — because the FP
     * kernel applies it during its bit-reversed entry gather; the other
     * three are element-wise copies of the u64 tables.
     */
    std::vector<double> psi_rev_fp, omega_fp, iomega_fp, ipsi_ninv_fp;
};

/** Find a primitive 2n-th root of unity modulo q (q = 1 mod 2n). */
u64 findPrimitiveRoot(size_t two_n, const Modulus& q);

} // namespace madfhe

#endif // MADFHE_RNS_NTT_H
