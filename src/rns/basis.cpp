#include "rns/basis.h"

#include <cmath>

#include "memtrace/trace.h"
#include "rns/simd/simd.h"
#include "support/faultinject.h"
#include "support/parallel.h"
#include "telemetry/telemetry.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_basis("rns.basis_convert", faultinject::kLimbKinds);
} // namespace

RnsBasis::RnsBasis(std::vector<Modulus> moduli) : mods(std::move(moduli))
{
    MAD_REQUIRE(!mods.empty(), "RNS basis must contain at least one modulus");
    for (size_t i = 0; i < mods.size(); ++i)
        for (size_t j = i + 1; j < mods.size(); ++j)
            MAD_REQUIRE(mods[i].value() != mods[j].value(),
                    "RNS moduli must be distinct");

    inv_punctured.resize(mods.size());
    inv_punctured_shoup.resize(mods.size());
    for (size_t i = 0; i < mods.size(); ++i) {
        const Modulus& qi = mods[i];
        u64 prod = 1;
        for (size_t j = 0; j < mods.size(); ++j) {
            if (j == i)
                continue;
            prod = qi.mul(prod, qi.reduce(mods[j].value()));
        }
        inv_punctured[i] = qi.inverse(prod);
        inv_punctured_shoup[i] = qi.shoupPrecompute(inv_punctured[i]);
    }
}

u64
RnsBasis::productMod(const Modulus& p) const
{
    u64 prod = 1;
    for (const auto& q : mods)
        prod = p.mul(prod, p.reduce(q.value()));
    return prod;
}

double
RnsBasis::logProduct() const
{
    double acc = 0;
    for (const auto& q : mods)
        acc += std::log2(static_cast<double>(q.value()));
    return acc;
}

BasisConverter::BasisConverter(const RnsBasis& from_, const RnsBasis& to_)
    : from(from_), to(to_)
{
    for (size_t i = 0; i < from.size(); ++i)
        for (size_t j = 0; j < to.size(); ++j)
            MAD_REQUIRE(from[i].value() != to[j].value(),
                    "source and target bases must be disjoint");

    punctured_mod.resize(to.size());
    q_mod_target.resize(to.size());
    for (size_t j = 0; j < to.size(); ++j) {
        const Modulus& pj = to[j];
        punctured_mod[j].resize(from.size());
        for (size_t i = 0; i < from.size(); ++i) {
            u64 prod = 1;
            for (size_t k = 0; k < from.size(); ++k) {
                if (k == i)
                    continue;
                prod = pj.mul(prod, pj.reduce(from[k].value()));
            }
            punctured_mod[j][i] = prod;
        }
        q_mod_target[j] = from.productMod(pj);
    }
    inv_q.resize(from.size());
    for (size_t i = 0; i < from.size(); ++i)
        inv_q[i] = 1.0L / static_cast<long double>(from[i].value());

    r64_target.resize(to.size());
    r64_shoup_target.resize(to.size());
    pre1_target.resize(to.size());
    for (size_t j = 0; j < to.size(); ++j) {
        const Modulus& pj = to[j];
        r64_target[j] = pj.reduce128(static_cast<u128>(1) << 64);
        r64_shoup_target[j] = pj.shoupPrecompute(r64_target[j]);
        pre1_target[j] = pj.shoupPrecompute(1);
    }
}

namespace {

/**
 * Accumulate sum_i scaled[i] * punct[i] mod p with lazy 128-bit carries.
 */
u64
accumulate(const u64* scaled, const u64* punct, size_t k, const Modulus& p)
{
    // Flush every 16 terms, not more: each product is below 2^124 for
    // moduli up to the 2^62 cap, so 16 of them stay under 2^128 while a
    // 32-term window would silently wrap the 128-bit accumulator for
    // primes within two bits of the cap.
    u128 acc = 0;
    size_t pending = 0;
    u64 result = 0;
    for (size_t i = 0; i < k; ++i) {
        acc += static_cast<u128>(scaled[i]) * punct[i];
        if (++pending == 16) {
            result = p.add(result, p.reduce128(acc));
            acc = 0;
            pending = 0;
        }
    }
    if (pending)
        result = p.add(result, p.reduce128(acc));
    return result;
}

} // namespace

void
BasisConverter::convertLimb(const std::vector<const u64*>& in, size_t n,
                            size_t target_idx, u64* out, ConvMode mode) const
{
    const size_t k = from.size();
    MAD_CHECK(in.size() == k, "source limb count mismatch");
    for (size_t i = 0; i < k; ++i)
        MAD_TRACE_READ(in[i], n * sizeof(u64));
    MAD_TRACE_WRITE(out, n * sizeof(u64));
    convertLimbRaw(in, n, target_idx, out, mode);
    faultinject::guardLimb(g_fault_basis, out, n);
}

void
BasisConverter::convertLimbRaw(const std::vector<const u64*>& in, size_t n,
                               size_t target_idx, u64* out,
                               ConvMode mode) const
{
    MAD_CHECK(in.size() == from.size(), "source limb count mismatch");
    const Modulus& pj = to[target_idx];
    const size_t k = from.size();

    // Scale pass is recomputed per target limb to keep this entry point
    // stateless; convert() amortizes it across all target limbs.
    // Coefficients are independent, so split the index range across the
    // pool; each chunk carries its own scale scratch. Vector backends
    // process lane-width coefficient blocks: a k x W row-major scratch of
    // scaled residues feeds the newlimb_acc kernel, with the long-double
    // overshoot sum kept scalar and i-ascending so its rounding matches
    // the scalar path bit-for-bit.
    const auto& K = simd::kernels();
    const size_t W = K.lanes;
    parallelForRange(n, [&](size_t begin, size_t end) {
        size_t c = begin;
        if (W > 1) {
            std::vector<u64> rows(k * W);
            std::vector<u64> res(W);
            for (; c + W <= end; c += W) {
                for (size_t i = 0; i < k; ++i)
                    K.mul_shoup_scalar(rows.data() + i * W, in[i] + c, W,
                                       from.invPunctured(i),
                                       from.invPuncturedShoup(i),
                                       from[i].value());
                K.newlimb_acc(rows.data(), W,
                              punctured_mod[target_idx].data(), k,
                              pj.value(), r64_target[target_idx],
                              r64_shoup_target[target_idx],
                              pre1_target[target_idx], res.data());
                for (size_t l = 0; l < W; ++l) {
                    u64 result = res[l];
                    if (mode == ConvMode::SignedExact) {
                        long double frac = 0.5L;
                        for (size_t i = 0; i < k; ++i)
                            frac += static_cast<long double>(rows[i * W + l]) *
                                    inv_q[i];
                        u64 u = static_cast<u64>(frac);
                        result = pj.sub(result, pj.mul(pj.reduce(u),
                                                 q_mod_target[target_idx]));
                    }
                    out[c + l] = result;
                }
            }
        }
        std::vector<u64> scaled(k);
        for (; c < end; ++c) {
            long double frac = 0.5L;
            for (size_t i = 0; i < k; ++i) {
                scaled[i] = from[i].mulShoup(in[i][c], from.invPunctured(i),
                                             from.invPuncturedShoup(i));
                frac += static_cast<long double>(scaled[i]) * inv_q[i];
            }
            u64 result = accumulate(scaled.data(),
                                    punctured_mod[target_idx].data(), k, pj);
            if (mode == ConvMode::SignedExact) {
                // Subtract round(x/Q)*Q: sum_i scaled_i*Q_i^* = x + u*Q with
                // u = floor(sum_i scaled_i/q_i); rounding the centered value
                // means subtracting floor(sum + 0.5) copies of Q.
                u64 u = static_cast<u64>(frac);
                result = pj.sub(result,
                                pj.mul(pj.reduce(u), q_mod_target[target_idx]));
            }
            out[c] = result;
        }
    });
}

void
BasisConverter::scaleSourceRaw(const u64* in, size_t n, size_t src_idx,
                               u64* out) const
{
    MAD_CHECK(src_idx < from.size(), "source limb index out of range");
    // mul_shoup_scalar is elementwise and bit-identical to the scalar
    // mulShoup on every backend (the PR 5 bit-exactness contract), so
    // cached pre-scaled limbs reproduce the in-convert scale pass
    // exactly.
    simd::kernels().mul_shoup_scalar(out, in, n, from.invPunctured(src_idx),
                                     from.invPuncturedShoup(src_idx),
                                     from[src_idx].value());
}

void
BasisConverter::overshootRaw(const std::vector<const u64*>& scaled, size_t n,
                             u64* us) const
{
    const size_t k = from.size();
    MAD_CHECK(scaled.size() == k, "source limb count mismatch");
    // Kept scalar and i-ascending so the long-double rounding matches
    // the in-convert overshoot sum bit-for-bit.
    for (size_t c = 0; c < n; ++c) {
        long double frac = 0.5L;
        for (size_t i = 0; i < k; ++i)
            frac += static_cast<long double>(scaled[i][c]) * inv_q[i];
        us[c] = static_cast<u64>(frac);
    }
}

void
BasisConverter::accumulateScaledRaw(const std::vector<const u64*>& scaled,
                                    const u64* us, size_t n,
                                    size_t target_idx, u64* out) const
{
    const size_t k = from.size();
    MAD_CHECK(scaled.size() == k, "source limb count mismatch");
    const Modulus& pj = to[target_idx];
    const auto& K = simd::kernels();
    const size_t W = K.lanes;
    size_t c = 0;
    if (W > 1) {
        std::vector<u64> rows(k * W);
        std::vector<u64> res(W);
        for (; c + W <= n; c += W) {
            for (size_t i = 0; i < k; ++i)
                for (size_t l = 0; l < W; ++l)
                    rows[i * W + l] = scaled[i][c + l];
            K.newlimb_acc(rows.data(), W, punctured_mod[target_idx].data(),
                          k, pj.value(), r64_target[target_idx],
                          r64_shoup_target[target_idx],
                          pre1_target[target_idx], res.data());
            for (size_t l = 0; l < W; ++l) {
                u64 result = res[l];
                if (us != nullptr)
                    result = pj.sub(result, pj.mul(pj.reduce(us[c + l]),
                                                   q_mod_target[target_idx]));
                out[c + l] = result;
            }
        }
    }
    std::vector<u64> sc(k);
    for (; c < n; ++c) {
        for (size_t i = 0; i < k; ++i)
            sc[i] = scaled[i][c];
        u64 result = accumulate(sc.data(), punctured_mod[target_idx].data(),
                                k, pj);
        if (us != nullptr)
            result = pj.sub(result,
                            pj.mul(pj.reduce(us[c]), q_mod_target[target_idx]));
        out[c] = result;
    }
}

void
BasisConverter::convert(const std::vector<const u64*>& in, size_t n,
                        const std::vector<u64*>& out, ConvMode mode) const
{
    MAD_CHECK(in.size() == from.size(), "source limb count mismatch");
    MAD_CHECK(out.size() == to.size(), "target limb count mismatch");
    TELEM_SPAN("BasisConvert");
    TELEM_SPAN(simd::activeSpanLabel());
    TELEM_COUNT("rns.basis.src_limbs", in.size());
    TELEM_COUNT("rns.basis.dst_limbs", out.size());
    const size_t k = from.size();
    for (size_t i = 0; i < k; ++i)
        MAD_TRACE_READ(in[i], n * sizeof(u64));
    for (size_t j = 0; j < out.size(); ++j)
        MAD_TRACE_WRITE(out[j], n * sizeof(u64));

    // Process coefficient-by-coefficient (slot-wise access pattern): scale
    // each source residue once, then accumulate into every target limb.
    // Coefficient ranges are independent, so they fan out across the pool.
    // Vector backends work on lane-width coefficient blocks through the
    // same k x W scratch as convertLimb, reusing it across all targets.
    const auto& K = simd::kernels();
    const size_t W = K.lanes;
    parallelForRange(n, [&](size_t begin, size_t end) {
        size_t c = begin;
        if (W > 1) {
            std::vector<u64> rows(k * W);
            std::vector<u64> res(W);
            std::vector<u64> us(W);
            for (; c + W <= end; c += W) {
                for (size_t i = 0; i < k; ++i)
                    K.mul_shoup_scalar(rows.data() + i * W, in[i] + c, W,
                                       from.invPunctured(i),
                                       from.invPuncturedShoup(i),
                                       from[i].value());
                for (size_t l = 0; l < W; ++l) {
                    long double frac = 0.5L;
                    for (size_t i = 0; i < k; ++i)
                        frac += static_cast<long double>(rows[i * W + l]) *
                                inv_q[i];
                    us[l] = static_cast<u64>(frac);
                }
                for (size_t j = 0; j < to.size(); ++j) {
                    const Modulus& pj = to[j];
                    K.newlimb_acc(rows.data(), W, punctured_mod[j].data(),
                                  k, pj.value(), r64_target[j],
                                  r64_shoup_target[j], pre1_target[j],
                                  res.data());
                    for (size_t l = 0; l < W; ++l) {
                        u64 result = res[l];
                        if (mode == ConvMode::SignedExact) {
                            result = pj.sub(result, pj.mul(pj.reduce(us[l]),
                                                     q_mod_target[j]));
                        }
                        out[j][c + l] = result;
                    }
                }
            }
        }
        std::vector<u64> scaled(k);
        for (; c < end; ++c) {
            long double frac = 0.5L;
            for (size_t i = 0; i < k; ++i) {
                scaled[i] = from[i].mulShoup(in[i][c], from.invPunctured(i),
                                             from.invPuncturedShoup(i));
                frac += static_cast<long double>(scaled[i]) * inv_q[i];
            }
            u64 u = static_cast<u64>(frac);
            for (size_t j = 0; j < to.size(); ++j) {
                const Modulus& pj = to[j];
                u64 result = accumulate(scaled.data(), punctured_mod[j].data(),
                                        k, pj);
                if (mode == ConvMode::SignedExact) {
                    result = pj.sub(result,
                                    pj.mul(pj.reduce(u), q_mod_target[j]));
                }
                out[j][c] = result;
            }
        }
    });
    for (size_t j = 0; j < out.size(); ++j)
        faultinject::guardLimb(g_fault_basis, out[j], n);
}

} // namespace madfhe
