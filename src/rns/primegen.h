/**
 * @file
 * Generation of NTT-friendly RNS limb primes: primes q = 1 (mod 2N) so the
 * negacyclic NTT of degree N exists mod q.
 */
#ifndef MADFHE_RNS_PRIMEGEN_H
#define MADFHE_RNS_PRIMEGEN_H

#include <vector>

#include "support/common.h"

namespace madfhe {

/**
 * Generate `count` distinct primes congruent to 1 mod 2N, each close to
 * 2^bit_size (scanning downward from 2^bit_size), excluding any prime in
 * `exclude`.
 *
 * @param bit_size Target prime width in bits (<= 61).
 * @param n Ring degree N (power of two).
 * @param count Number of primes to produce.
 * @param exclude Primes that must not be reused across chains.
 */
std::vector<u64> generateNttPrimes(unsigned bit_size, u64 n, size_t count,
                                   const std::vector<u64>& exclude = {});

/**
 * Generate one prime = 1 mod 2N as close as possible to `target`
 * (used for scaling-factor-matched limb selection).
 */
u64 generateNttPrimeNear(u64 target, u64 n,
                         const std::vector<u64>& exclude = {});

} // namespace madfhe

#endif // MADFHE_RNS_PRIMEGEN_H
