/**
 * @file
 * RNS bases and the fast basis-extension primitive NewLimb (Equation 1 of
 * the paper). A basis B = {q_1, ..., q_k} represents Z_Q, Q = prod q_i; the
 * converter maps residues over a source basis to residues over a disjoint
 * target basis using the Halevi–Polyakov–Shoup fast conversion (result may
 * carry an additive multiple of Q below k*Q, absorbed by CKKS noise — this
 * is the standard full-RNS CKKS construction [Cheon et al., SAC'18]).
 */
#ifndef MADFHE_RNS_BASIS_H
#define MADFHE_RNS_BASIS_H

#include <vector>

#include "rns/modarith.h"

namespace madfhe {

/** An ordered set of coprime word-sized prime moduli with precomputations
 *  for conversions out of this basis. */
class RnsBasis
{
  public:
    explicit RnsBasis(std::vector<Modulus> moduli);

    size_t size() const { return mods.size(); }
    const Modulus& operator[](size_t i) const { return mods[i]; }
    const std::vector<Modulus>& moduli() const { return mods; }

    /** (Q/q_i)^{-1} mod q_i — the Q~_i factor in Equation (1). */
    u64 invPunctured(size_t i) const { return inv_punctured[i]; }
    u64 invPuncturedShoup(size_t i) const { return inv_punctured_shoup[i]; }

    /** Q mod p for an external modulus p. */
    u64 productMod(const Modulus& p) const;

    /** log2 of the basis product, as a double (for noise/size budgeting). */
    double logProduct() const;

  private:
    std::vector<Modulus> mods;
    std::vector<u64> inv_punctured;
    std::vector<u64> inv_punctured_shoup;
};

/** How the fast basis extension treats the +uQ overshoot of Equation (1). */
enum class ConvMode
{
    /**
     * Plain HPS conversion: output equals x + u*Q (mod p) for some
     * 0 <= u < k. Cheapest; the overshoot is absorbed by CKKS noise.
     */
    Approx,
    /**
     * Floating-point-corrected conversion: subtracts round(x/Q)*Q, i.e.
     * extends the *centered* representative exactly. This is the variant
     * the functional CKKS pipeline uses.
     */
    SignedExact,
};

/**
 * Fast conversion of RNS residues from a source basis to a target basis
 * (the slot-wise NewLimb kernel). Precomputes (Q/q_i) mod p_j for every
 * source limb i and target modulus p_j.
 */
class BasisConverter
{
  public:
    BasisConverter(const RnsBasis& from, const RnsBasis& to);

    const RnsBasis& source() const { return from; }
    const RnsBasis& target() const { return to; }

    /**
     * Convert n coefficients. `in[i]` points at the i-th source limb,
     * `out[j]` at the j-th target limb (all length n, coefficient rep).
     */
    void convert(const std::vector<const u64*>& in, size_t n,
                 const std::vector<u64*>& out,
                 ConvMode mode = ConvMode::SignedExact) const;

    /**
     * Convert into a single target limb j (the per-NewLimb granularity the
     * O(alpha) caching optimization schedules around).
     */
    void convertLimb(const std::vector<const u64*>& in, size_t n,
                     size_t target_idx, u64* out,
                     ConvMode mode = ConvMode::SignedExact) const;

    /**
     * convertLimb() without trace events or fault guards: the
     * limb-streaming engine (ckks/stream.h) converts into scratch limbs
     * that never reach DRAM and does its own accounting. Bit-identical
     * to convertLimb().
     */
    void convertLimbRaw(const std::vector<const u64*>& in, size_t n,
                        size_t target_idx, u64* out,
                        ConvMode mode = ConvMode::SignedExact) const;

    /**
     * Scale pass of Equation (1) for one source limb:
     * out[c] = in[c] * (Q/q_i)^{-1} mod q_i with i = src_idx. Feeding
     * the results of all source limbs to overshootRaw() +
     * accumulateScaledRaw() reproduces convert() bit-for-bit — this
     * split is what lets the streaming engine pin pre-scaled digits
     * (the O(alpha) basis-change cache) and reuse them across every
     * target limb without changing a single output byte. In-place
     * (out == in) is allowed. No trace events.
     */
    void scaleSourceRaw(const u64* in, size_t n, size_t src_idx,
                        u64* out) const;

    /**
     * Overshoot pass: us[c] = floor(0.5 + sum_i scaled[i][c] / q_i),
     * the round(x/Q) count ConvMode::SignedExact subtracts. `scaled`
     * are scaleSourceRaw() outputs, one per source limb. No trace
     * events.
     */
    void overshootRaw(const std::vector<const u64*>& scaled, size_t n,
                      u64* us) const;

    /**
     * Accumulate pre-scaled residues into target limb `target_idx`:
     * out[c] = sum_i scaled[i][c] * (Q/q_i) mod p_j, minus us[c] * Q
     * when `us` is non-null (ConvMode::SignedExact); pass nullptr for
     * ConvMode::Approx. No trace events or guards.
     */
    void accumulateScaledRaw(const std::vector<const u64*>& scaled,
                             const u64* us, size_t n, size_t target_idx,
                             u64* out) const;

  private:
    RnsBasis from;
    RnsBasis to;
    /** punctured_mod[j][i] = (Q/q_i) mod p_j. */
    std::vector<std::vector<u64>> punctured_mod;
    /** Q mod p_j, for the overshoot correction. */
    std::vector<u64> q_mod_target;
    /** 1/q_i as long double, for the overshoot estimate. */
    std::vector<long double> inv_q;
    /** 2^64 mod p_j, its Shoup preconditioner, and floor(2^64 / p_j):
     *  the 128-bit folding constants the SIMD NewLimb accumulator uses. */
    std::vector<u64> r64_target;
    std::vector<u64> r64_shoup_target;
    std::vector<u64> pre1_target;
};

} // namespace madfhe

#endif // MADFHE_RNS_BASIS_H
