/**
 * @file
 * Word-sized modular arithmetic. Every CKKS limb modulus is a prime below
 * 2^62; products fit in 128 bits. `Modulus` carries the Barrett constant so
 * reductions never divide, and exposes Shoup-style precomputed multiplication
 * for the NTT hot loop.
 */
#ifndef MADFHE_RNS_MODARITH_H
#define MADFHE_RNS_MODARITH_H

#include "support/common.h"

namespace madfhe {

/**
 * An odd prime modulus q < 2^62 with precomputed Barrett constant.
 * All operations assume inputs already reduced mod q unless stated.
 */
class Modulus
{
  public:
    Modulus() = default;

    /** @param q Prime modulus; must be odd and < 2^62. */
    explicit Modulus(u64 q);

    u64 value() const { return _value; }
    unsigned bits() const { return _bits; }

    /** (a + b) mod q. */
    u64
    add(u64 a, u64 b) const
    {
        u64 s = a + b;
        return s >= _value ? s - _value : s;
    }

    /** (a - b) mod q. */
    u64
    sub(u64 a, u64 b) const
    {
        return a >= b ? a - b : a + _value - b;
    }

    /** (-a) mod q. */
    u64
    neg(u64 a) const
    {
        return a == 0 ? 0 : _value - a;
    }

    /** Barrett reduction of a 128-bit value into [0, q). */
    u64 reduce128(u128 x) const;

    /** Reduce an arbitrary 64-bit value (not necessarily < q). */
    u64 reduce(u64 x) const { return reduce128(x); }

    /** (a * b) mod q via Barrett. */
    u64
    mul(u64 a, u64 b) const
    {
        return reduce128(static_cast<u128>(a) * b);
    }

    /**
     * Shoup precomputation for a fixed multiplicand w < q:
     * returns floor(w * 2^64 / q), enabling mulShoup().
     */
    u64
    shoupPrecompute(u64 w) const
    {
        return static_cast<u64>((static_cast<u128>(w) << 64) / _value);
    }

    /**
     * (a * w) mod q where w_precon = shoupPrecompute(w). One multiply-high,
     * one multiply-low, one conditional subtract — the NTT inner loop.
     * Result is in [0, 2q); callers in hot loops may defer the correction,
     * here we fold it in for safety.
     */
    u64
    mulShoup(u64 a, u64 w, u64 w_precon) const
    {
        u64 hi = static_cast<u64>((static_cast<u128>(a) * w_precon) >> 64);
        u64 r = a * w - hi * _value;
        return r >= _value ? r - _value : r;
    }

    /**
     * Lazy Shoup multiply: result in [0, 2q), valid for any 64-bit `a`
     * (the products wrap mod 2^64 by construction). The NTT keeps
     * butterfly values in [0, 4q) and defers the final reduction — the
     * Harvey lazy-reduction trick.
     */
    u64
    mulShoupLazy(u64 a, u64 w, u64 w_precon) const
    {
        u64 hi = static_cast<u64>((static_cast<u128>(a) * w_precon) >> 64);
        return a * w - hi * _value;
    }

    /** a^e mod q by square-and-multiply. */
    u64 pow(u64 a, u64 e) const;

    /** a^{-1} mod q (q prime); requires a != 0 mod q. */
    u64 inverse(u64 a) const;

    /** Map a signed value into [0, q). */
    u64
    fromSigned(i64 v) const
    {
        i64 r = v % static_cast<i64>(_value);
        if (r < 0)
            r += static_cast<i64>(_value);
        return static_cast<u64>(r);
    }

    /** Map x in [0, q) to the centered representative in (-q/2, q/2]. */
    i64
    toSigned(u64 x) const
    {
        return x > _value / 2 ? static_cast<i64>(x) - static_cast<i64>(_value)
                              : static_cast<i64>(x);
    }

    bool operator==(const Modulus& o) const { return _value == o._value; }

  private:
    u64 _value = 0;
    u128 barrett = 0; // floor(2^128 / q)
    unsigned _bits = 0;
};

/** Deterministic Miller–Rabin primality test, valid for all 64-bit inputs. */
bool isPrime(u64 n);

} // namespace madfhe

#endif // MADFHE_RNS_MODARITH_H
