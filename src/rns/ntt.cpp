#include "rns/ntt.h"

#include <map>
#include <mutex>

#include "memtrace/trace.h"
#include "rns/simd/simd.h"
#include "support/faultinject.h"

namespace madfhe {

namespace {
faultinject::Site g_fault_ntt_fwd("rns.ntt_fwd", faultinject::kLimbKinds);
faultinject::Site g_fault_ntt_inv("rns.ntt_inv", faultinject::kLimbKinds);
} // namespace

u64
findPrimitiveRoot(size_t two_n, const Modulus& q)
{
    MAD_REQUIRE((q.value() - 1) % two_n == 0, "q != 1 mod 2n");
    const u64 exponent = (q.value() - 1) / two_n;
    // Deterministic scan: candidate generators 2, 3, 4, ... One pow per
    // candidate: g^((q-1)/2) == -1 iff g is a quadratic non-residue, and
    // exactly then g^((q-1)/2n) has order 2n (its n-th power is -1).
    for (u64 g = 2; g < q.value(); ++g) {
        if (q.pow(g, (q.value() - 1) / 2) == q.value() - 1)
            return q.pow(g, exponent);
    }
    throw std::logic_error("no primitive root found (q not prime?)");
}

std::shared_ptr<const NttTables>
NttTables::get(size_t n, const Modulus& q)
{
    static std::mutex mu;
    static std::map<std::pair<size_t, u64>, std::weak_ptr<const NttTables>>
        cache;
    std::lock_guard<std::mutex> lock(mu);
    auto& slot = cache[{n, q.value()}];
    if (auto tables = slot.lock())
        return tables;
    auto tables = std::make_shared<const NttTables>(n, q);
    slot = tables;
    return tables;
}

NttTables::NttTables(size_t n_, const Modulus& q_) : n(n_), q(q_)
{
    MAD_REQUIRE(isPowerOfTwo(n), "NTT size must be a power of two");
    // The Harvey lazy butterflies keep values in [0, 4q) between stages,
    // which needs two headroom bits: q < 2^62 so 4q < 2^64. Modulus
    // already rejects wider moduli; this records the reliance at the
    // kernel that depends on it.
    MAD_REQUIRE(q.value() < (1ULL << 62),
            "NTT modulus must be < 2^62 (4q lazy-reduction headroom)");
    logn = floorLog2(n);

    const u64 psi = findPrimitiveRoot(2 * n, q);
    const u64 ipsi = q.inverse(psi);
    const u64 n_inv = q.inverse(static_cast<u64>(n % q.value()));

    // psi powers carry the forward twist and, via omega = psi^2, the
    // forward stage twiddles; ipsi powers are folded with n^{-1} into
    // the fused inverse untwist table.
    psi_pow.resize(n);
    psi_pow_shoup.resize(n);
    ipsi_ninv.resize(n);
    ipsi_ninv_shoup.resize(n);
    std::vector<u64> ipsi_pow(n);
    u64 p = 1, ip = 1;
    for (size_t i = 0; i < n; ++i) {
        psi_pow[i] = p;
        psi_pow_shoup[i] = q.shoupPrecompute(p);
        ipsi_pow[i] = ip;
        ipsi_ninv[i] = q.mul(ip, n_inv);
        ipsi_ninv_shoup[i] = q.shoupPrecompute(ipsi_ninv[i]);
        p = q.mul(p, psi);
        ip = q.mul(ip, ipsi);
    }

    // Stage twiddles are slices of the (i)psi power tables:
    // omega^(j * n/(2m)) = psi^(j * n/m), so no pow chains and no fresh
    // Shoup precomputations (a 128-bit division each) are needed for the
    // forward tables.
    omega_tw.resize(n);
    iomega_tw.resize(n);
    omega_tw_shoup.resize(n);
    iomega_tw_shoup.resize(n);
    for (size_t m = 1; m < n; m <<= 1) {
        const size_t stride = n / m;
        for (size_t j = 0; j < m; ++j) {
            const size_t e = j * stride;
            omega_tw[m + j] = psi_pow[e];
            omega_tw_shoup[m + j] = psi_pow_shoup[e];
            iomega_tw[m + j] = ipsi_pow[e];
            iomega_tw_shoup[m + j] = q.shoupPrecompute(ipsi_pow[e]);
        }
    }

    bitrev_swaps.reserve(n / 2);
    for (size_t i = 0; i < n; ++i) {
        u32 r = 0;
        for (unsigned b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        if (r > i)
            bitrev_swaps.emplace_back(static_cast<u32>(i), r);
    }

    // FP images for the fused SIMD transform; u64 values below 2^50 are
    // exactly representable as doubles, wider moduli stay on the integer
    // path and never read these.
    if (q.value() < (1ULL << 50)) {
        psi_rev_fp.resize(n);
        omega_fp.resize(n);
        iomega_fp.resize(n);
        ipsi_ninv_fp.resize(n);
        for (size_t i = 0; i < n; ++i) {
            u32 r = 0;
            for (unsigned b = 0; b < logn; ++b)
                r |= ((i >> b) & 1) << (logn - 1 - b);
            psi_rev_fp[i] = static_cast<double>(psi_pow[r]);
            omega_fp[i] = static_cast<double>(omega_tw[i]);
            iomega_fp[i] = static_cast<double>(iomega_tw[i]);
            ipsi_ninv_fp[i] = static_cast<double>(ipsi_ninv[i]);
        }
    }
}

void
NttTables::cyclicTransformOne(u64* p, const std::vector<u64>& tw,
                              const std::vector<u64>& tw_shoup) const
{
    for (const auto& [i, r] : bitrev_swaps)
        std::swap(p[i], p[r]);
    // Harvey lazy butterflies: values stay in [0, 4q) across stages (the
    // left operand is conditionally brought under 2q, the lazy Shoup
    // product is under 2q), with one final reduction pass. 4q < 2^64
    // holds because every limb modulus is below 2^62 (enforced in
    // Modulus and rns/primegen.cpp). The stage kernel is SIMD-dispatched
    // (rns/simd); every backend is bit-exact against the scalar table.
    const auto& K = simd::kernels();
    const u64 two_q = 2 * q.value();
    for (size_t m = 1; m < n; m <<= 1)
        K.ntt_stage(p, n, m, tw.data() + m, tw_shoup.data() + m, q.value(),
                    two_q);
    K.reduce_4q(p, n, q.value(), two_q);
}

void
NttTables::cyclicTransform(u64* const* a, size_t count,
                           const std::vector<u64>& tw,
                           const std::vector<u64>& tw_shoup) const
{
    if (count == 1) {
        cyclicTransformOne(a[0], tw, tw_shoup);
        return;
    }
    for (size_t b = 0; b < count; ++b) {
        u64* p = a[b];
        for (const auto& [i, r] : bitrev_swaps)
            std::swap(p[i], p[r]);
    }
    const auto& K = simd::kernels();
    const u64 two_q = 2 * q.value();
    if (K.lanes == 1) {
        // Scalar backend: share each (stage, twiddle) pair across the
        // whole batch so the twiddle tables are walked once (the MAD
        // limb-wise reuse the key-switch digit fan-out relies on).
        for (size_t m = 1; m < n; m <<= 1) {
            for (size_t i = 0; i < n; i += 2 * m) {
                for (size_t j = 0; j < m; ++j) {
                    const u64 w = tw[m + j];
                    const u64 ws = tw_shoup[m + j];
                    for (size_t b = 0; b < count; ++b) {
                        u64* p = a[b];
                        u64 x = p[i + j];
                        if (x >= two_q)
                            x -= two_q;
                        u64 y = q.mulShoupLazy(p[i + j + m], w, ws);
                        p[i + j] = x + y;
                        p[i + j + m] = x + two_q - y;
                    }
                }
            }
        }
    } else {
        // Vector backends read twiddles as vector loads, so buffers are
        // kept innermost per stage: the stage slice stays hot in L1
        // across the batch while each buffer streams through once.
        for (size_t m = 1; m < n; m <<= 1)
            for (size_t b = 0; b < count; ++b)
                K.ntt_stage(a[b], n, m, tw.data() + m, tw_shoup.data() + m,
                            q.value(), two_q);
    }
    for (size_t b = 0; b < count; ++b)
        K.reduce_4q(a[b], n, q.value(), two_q);
}

void
NttTables::forwardBatchRaw(u64* const* a, size_t count) const
{
    const auto& K = simd::kernels();
    // Vector backends fuse twist, bit-reversal and stages into one FP
    // kernel when the modulus fits its domain (it declines otherwise and
    // we run the unfused path below). Outputs are bit-identical either
    // way.
    if (K.fp_transform && !psi_rev_fp.empty() && count > 0 &&
        K.fp_transform(a[0], n, psi_rev_fp.data(), omega_fp.data(),
                       nullptr, q.value())) {
        // The kernel's domain depends only on (q, n), so the verdict is
        // uniform across the batch.
        for (size_t b = 1; b < count; ++b)
            MAD_CHECK(K.fp_transform(a[b], n, psi_rev_fp.data(),
                                     omega_fp.data(), nullptr, q.value()),
                      "fp transform verdict changed within a batch");
        return;
    }
    // Forward twist by psi^i. The twiddle-vector kernel covers index 0
    // too: psi^0 = 1 and mulShoup(x, 1, floor(2^64/q)) returns x exactly
    // for canonical x, so the result is bit-identical to starting at 1.
    if (K.lanes == 1 && count > 1) {
        for (size_t i = 1; i < n; ++i) {
            const u64 w = psi_pow[i];
            const u64 ws = psi_pow_shoup[i];
            for (size_t b = 0; b < count; ++b)
                a[b][i] = q.mulShoup(a[b][i], w, ws);
        }
    } else {
        for (size_t b = 0; b < count; ++b)
            K.mul_shoup_vec(a[b], psi_pow.data(), psi_pow_shoup.data(), n,
                            q.value());
    }
    cyclicTransform(a, count, omega_tw, omega_tw_shoup);
}

void
NttTables::forwardBatch(u64* const* a, size_t count) const
{
    for (size_t b = 0; b < count; ++b) {
        MAD_TRACE_READ(a[b], n * sizeof(u64));
        MAD_TRACE_WRITE(a[b], n * sizeof(u64));
    }
    forwardBatchRaw(a, count);
    for (size_t b = 0; b < count; ++b)
        faultinject::guardLimb(g_fault_ntt_fwd, a[b], n);
}

void
NttTables::inverseBatchRaw(u64* const* a, size_t count) const
{
    const auto& K = simd::kernels();
    // Fused FP path: bit-reversal, stages, and the untwist-and-scale
    // multiply in one kernel (see forwardBatch).
    if (K.fp_transform && !psi_rev_fp.empty() && count > 0 &&
        K.fp_transform(a[0], n, nullptr, iomega_fp.data(),
                       ipsi_ninv_fp.data(), q.value())) {
        for (size_t b = 1; b < count; ++b)
            MAD_CHECK(K.fp_transform(a[b], n, nullptr, iomega_fp.data(),
                                     ipsi_ninv_fp.data(), q.value()),
                      "fp transform verdict changed within a batch");
        return;
    }
    cyclicTransform(a, count, iomega_tw, iomega_tw_shoup);
    // Fused scale-by-n^{-1} and untwist: one Shoup multiply per
    // coefficient against the precombined psi^{-i} * n^{-1} table.
    if (K.lanes == 1 && count > 1) {
        for (size_t i = 0; i < n; ++i) {
            const u64 w = ipsi_ninv[i];
            const u64 ws = ipsi_ninv_shoup[i];
            for (size_t b = 0; b < count; ++b)
                a[b][i] = q.mulShoup(a[b][i], w, ws);
        }
    } else {
        for (size_t b = 0; b < count; ++b)
            K.mul_shoup_vec(a[b], ipsi_ninv.data(), ipsi_ninv_shoup.data(),
                            n, q.value());
    }
}

void
NttTables::inverseBatch(u64* const* a, size_t count) const
{
    for (size_t b = 0; b < count; ++b) {
        MAD_TRACE_READ(a[b], n * sizeof(u64));
        MAD_TRACE_WRITE(a[b], n * sizeof(u64));
    }
    inverseBatchRaw(a, count);
    for (size_t b = 0; b < count; ++b)
        faultinject::guardLimb(g_fault_ntt_inv, a[b], n);
}

void
NttTables::forward(u64* a) const
{
    u64* const one[1] = {a};
    forwardBatch(one, 1);
}

void
NttTables::inverse(u64* a) const
{
    u64* const one[1] = {a};
    inverseBatch(one, 1);
}

} // namespace madfhe
