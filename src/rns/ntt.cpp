#include "rns/ntt.h"

#include "memtrace/trace.h"

namespace madfhe {

u64
findPrimitiveRoot(size_t two_n, const Modulus& q)
{
    require((q.value() - 1) % two_n == 0, "q != 1 mod 2n");
    u64 exponent = (q.value() - 1) / two_n;
    // Deterministic scan: candidate generators 2, 3, 4, ...
    for (u64 g = 2; g < q.value(); ++g) {
        u64 root = q.pow(g, exponent);
        // root has order dividing 2n; it is primitive iff root^n == -1.
        if (q.pow(root, two_n / 2) == q.value() - 1)
            return root;
    }
    throw std::logic_error("no primitive root found (q not prime?)");
}

NttTables::NttTables(size_t n_, const Modulus& q_) : n(n_), q(q_)
{
    require(isPowerOfTwo(n), "NTT size must be a power of two");
    logn = floorLog2(n);

    u64 psi = findPrimitiveRoot(2 * n, q);
    u64 ipsi = q.inverse(psi);
    u64 omega = q.mul(psi, psi);
    u64 iomega = q.inverse(omega);

    psi_pow.resize(n);
    ipsi_pow.resize(n);
    psi_pow_shoup.resize(n);
    ipsi_pow_shoup.resize(n);
    u64 p = 1, ip = 1;
    for (size_t i = 0; i < n; ++i) {
        psi_pow[i] = p;
        ipsi_pow[i] = ip;
        psi_pow_shoup[i] = q.shoupPrecompute(p);
        ipsi_pow_shoup[i] = q.shoupPrecompute(ip);
        p = q.mul(p, psi);
        ip = q.mul(ip, ipsi);
    }

    omega_tw.resize(n);
    iomega_tw.resize(n);
    omega_tw_shoup.resize(n);
    iomega_tw_shoup.resize(n);
    for (size_t m = 1; m < n; m <<= 1) {
        u64 w_base = q.pow(omega, n / (2 * m));
        u64 iw_base = q.pow(iomega, n / (2 * m));
        u64 w = 1, iw = 1;
        for (size_t j = 0; j < m; ++j) {
            omega_tw[m + j] = w;
            iomega_tw[m + j] = iw;
            omega_tw_shoup[m + j] = q.shoupPrecompute(w);
            iomega_tw_shoup[m + j] = q.shoupPrecompute(iw);
            w = q.mul(w, w_base);
            iw = q.mul(iw, iw_base);
        }
    }

    n_inv = q.inverse(static_cast<u64>(n % q.value()));
    n_inv_shoup = q.shoupPrecompute(n_inv);

    bitrev.resize(n);
    for (size_t i = 0; i < n; ++i) {
        u32 r = 0;
        for (unsigned b = 0; b < logn; ++b)
            r |= ((i >> b) & 1) << (logn - 1 - b);
        bitrev[i] = r;
    }
}

void
NttTables::cyclicTransform(u64* a, const std::vector<u64>& tw,
                           const std::vector<u64>& tw_shoup) const
{
    for (size_t i = 0; i < n; ++i) {
        u32 r = bitrev[i];
        if (r > i)
            std::swap(a[i], a[r]);
    }
    // Harvey lazy butterflies: values stay in [0, 4q) across stages (the
    // left operand is conditionally brought under 2q, the lazy Shoup
    // product is under 2q), with one final reduction pass.
    const u64 two_q = 2 * q.value();
    for (size_t m = 1; m < n; m <<= 1) {
        for (size_t i = 0; i < n; i += 2 * m) {
            for (size_t j = 0; j < m; ++j) {
                u64 w = tw[m + j];
                u64 ws = tw_shoup[m + j];
                u64 x = a[i + j];
                if (x >= two_q)
                    x -= two_q;
                u64 y = q.mulShoupLazy(a[i + j + m], w, ws);
                a[i + j] = x + y;
                a[i + j + m] = x + two_q - y;
            }
        }
    }
    for (size_t i = 0; i < n; ++i) {
        u64 v = a[i];
        if (v >= two_q)
            v -= two_q;
        if (v >= q.value())
            v -= q.value();
        a[i] = v;
    }
}

void
NttTables::forward(u64* a) const
{
    MAD_TRACE_READ(a, n * sizeof(u64));
    MAD_TRACE_WRITE(a, n * sizeof(u64));
    for (size_t i = 1; i < n; ++i)
        a[i] = q.mulShoup(a[i], psi_pow[i], psi_pow_shoup[i]);
    cyclicTransform(a, omega_tw, omega_tw_shoup);
}

void
NttTables::inverse(u64* a) const
{
    MAD_TRACE_READ(a, n * sizeof(u64));
    MAD_TRACE_WRITE(a, n * sizeof(u64));
    cyclicTransform(a, iomega_tw, iomega_tw_shoup);
    // Scale by n^{-1} and untwist by psi^{-i} in one pass.
    a[0] = q.mulShoup(a[0], n_inv, n_inv_shoup);
    for (size_t i = 1; i < n; ++i) {
        u64 v = q.mulShoup(a[i], n_inv, n_inv_shoup);
        a[i] = q.mulShoup(v, ipsi_pow[i], ipsi_pow_shoup[i]);
    }
}

} // namespace madfhe
